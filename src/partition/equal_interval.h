#ifndef TRACLUS_PARTITION_EQUAL_INTERVAL_H_
#define TRACLUS_PARTITION_EQUAL_INTERVAL_H_

#include "partition/partitioner.h"

namespace traclus::partition {

/// Trivial baseline: a characteristic point every `stride` input points.
///
/// The weakest plausible partitioner — it ignores geometry entirely. Used in
/// ablation benches to quantify how much the MDL criterion contributes to
/// clustering quality, and in tests as a deterministic fixture.
class EqualIntervalPartitioner : public TrajectoryPartitioner {
 public:
  explicit EqualIntervalPartitioner(size_t stride) : stride_(stride) {
    TRACLUS_CHECK_GE(stride, 1u);
  }

  std::vector<size_t> CharacteristicPoints(
      const traj::Trajectory& tr) const override;

  size_t stride() const { return stride_; }

 private:
  size_t stride_;
};

}  // namespace traclus::partition

#endif  // TRACLUS_PARTITION_EQUAL_INTERVAL_H_
