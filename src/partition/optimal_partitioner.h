#ifndef TRACLUS_PARTITION_OPTIMAL_PARTITIONER_H_
#define TRACLUS_PARTITION_OPTIMAL_PARTITIONER_H_

#include "partition/mdl.h"
#include "partition/partitioner.h"

namespace traclus::partition {

/// Exact MDL-optimal trajectory partitioning.
///
/// §3.2 calls optimal partitioning prohibitive because "we need to consider
/// every subset of the points"; however, the MDL cost is *additive over
/// partitions*, so the optimum is a shortest path in the DAG whose nodes are
/// point indices and whose edge (i, j) costs MDL_par(p_i, p_j). Dynamic
/// programming solves it exactly with O(n²) edges / O(n³) arithmetic — far too
/// slow for the clustering pipeline but exactly what's needed to measure the
/// approximate algorithm's precision (§3.3 reports ≈80%).
///
/// Note: MDL_nopar never competes here; keeping raw sub-polylines corresponds
/// to selecting *every* intermediate point as characteristic, which is itself a
/// path in the DAG (each unit edge has L(D|H) = 0).
class OptimalPartitioner : public TrajectoryPartitioner {
 public:
  OptimalPartitioner() = default;
  explicit OptimalPartitioner(const MdlOptions& options) : cost_(options) {}

  std::vector<size_t> CharacteristicPoints(
      const traj::Trajectory& tr) const override;

  /// Total MDL cost of an arbitrary characteristic-point selection, used by
  /// tests to verify global optimality against brute-force enumeration.
  double TotalCost(const traj::Trajectory& tr,
                   const std::vector<size_t>& characteristic_points) const;

  const MdlCostModel& cost_model() const { return cost_; }

 private:
  MdlCostModel cost_;
};

}  // namespace traclus::partition

#endif  // TRACLUS_PARTITION_OPTIMAL_PARTITIONER_H_
