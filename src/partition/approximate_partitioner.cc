#include "partition/approximate_partitioner.h"

namespace traclus::partition {

std::vector<size_t> ApproximatePartitioner::CharacteristicPoints(
    const traj::Trajectory& tr) const {
  std::vector<size_t> cp;
  const size_t n = tr.size();
  if (n < 2) return cp;

  cp.push_back(0);  // The starting point (Fig. 8 line 01).
  size_t start_index = 0;
  size_t length = 1;
  while (start_index + length < n) {  // Fig. 8 line 03.
    const size_t curr_index = start_index + length;
    const double cost_par = cost_.MdlPar(tr, start_index, curr_index);
    const double cost_nopar = cost_.MdlNoPar(tr, start_index, curr_index);
    // A single-segment candidate (curr_index == start_index + 1) cannot be
    // partitioned any further; forcing growth here also guarantees progress.
    if (cost_par > cost_nopar && curr_index - 1 > start_index) {
      // Partition at the previous point (line 08).
      cp.push_back(curr_index - 1);
      start_index = curr_index - 1;
      length = 1;
    } else {
      ++length;  // Line 11.
    }
  }
  cp.push_back(n - 1);  // The ending point (line 12).
  return cp;
}

}  // namespace traclus::partition
