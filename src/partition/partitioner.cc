#include "partition/partitioner.h"

namespace traclus::partition {

std::vector<geom::Segment> MakePartitionSegments(
    const traj::Trajectory& tr,
    const std::vector<size_t>& characteristic_points,
    geom::SegmentId first_segment_id) {
  std::vector<geom::Segment> out;
  if (characteristic_points.size() < 2) return out;
  out.reserve(characteristic_points.size() - 1);
  geom::SegmentId next_id = first_segment_id;
  for (size_t c = 1; c < characteristic_points.size(); ++c) {
    const size_t a = characteristic_points[c - 1];
    const size_t b = characteristic_points[c];
    TRACLUS_DCHECK(a < b && b < tr.size());
    if (tr[a] == tr[b]) continue;
    out.emplace_back(tr[a], tr[b], next_id++, tr.id(), tr.weight());
  }
  return out;
}

}  // namespace traclus::partition
