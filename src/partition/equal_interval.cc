#include "partition/equal_interval.h"

namespace traclus::partition {

std::vector<size_t> EqualIntervalPartitioner::CharacteristicPoints(
    const traj::Trajectory& tr) const {
  std::vector<size_t> cp;
  const size_t n = tr.size();
  if (n < 2) return cp;
  for (size_t i = 0; i < n - 1; i += stride_) cp.push_back(i);
  cp.push_back(n - 1);
  return cp;
}

}  // namespace traclus::partition
