#ifndef TRACLUS_PARTITION_APPROXIMATE_PARTITIONER_H_
#define TRACLUS_PARTITION_APPROXIMATE_PARTITIONER_H_

#include "partition/mdl.h"
#include "partition/partitioner.h"

namespace traclus::partition {

/// The O(n) Approximate Trajectory Partitioning algorithm of Fig. 8.
///
/// Treats the set of local optima as the global optimum: it grows a candidate
/// partition from the current characteristic point and, at the first index
/// where MDL_par exceeds MDL_nopar, commits the previous point as a
/// characteristic point and restarts from it. Exactly n − 1 MDL evaluations per
/// trajectory (Lemma 1). May miss the true optimum (Fig. 9); §3.3 reports ≈80%
/// precision against the exact solution, which `eval::PartitioningPrecision`
/// measures.
class ApproximatePartitioner : public TrajectoryPartitioner {
 public:
  ApproximatePartitioner() = default;
  explicit ApproximatePartitioner(const MdlOptions& options) : cost_(options) {}

  std::vector<size_t> CharacteristicPoints(
      const traj::Trajectory& tr) const override;

  const MdlCostModel& cost_model() const { return cost_; }

 private:
  MdlCostModel cost_;
};

}  // namespace traclus::partition

#endif  // TRACLUS_PARTITION_APPROXIMATE_PARTITIONER_H_
