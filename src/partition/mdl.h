#ifndef TRACLUS_PARTITION_MDL_H_
#define TRACLUS_PARTITION_MDL_H_

#include <cstddef>

#include "distance/segment_distance.h"
#include "traj/trajectory.h"

namespace traclus::partition {

/// Encoding of a non-negative real quantity as a description length in bits.
///
/// The paper encodes reals with precision δ = 1, giving L(x) = log2(x) (§3.2),
/// which is undefined at 0 and negative below 1 — both routinely occur for the
/// perpendicular/angle deviations of nearly straight trajectories. Two
/// well-defined variants are provided (see DESIGN.md §2):
enum class MdlEncoding {
  /// L(x) = log2(1 + x): monotone, L(0) = 0, asymptotically log2(x). Charges
  /// for sub-precision deviations too, which over-partitions noisy data; kept
  /// as an ablation (see bench_ablation_partitioning).
  kLog2Plus1,
  /// L(x) = log2(max(x, 1)): the paper's formula (precision δ = 1) made total —
  /// deviations below the coordinate precision are free, which is what lets
  /// MDL compress noisy but straight runs into long partitions. Default.
  kLog2Clamped,
};

/// Options of the MDL partitioning cost (Formulas (6) and (7)).
struct MdlOptions {
  MdlEncoding encoding = MdlEncoding::kLog2Clamped;
  /// Constant (in bits) added to the no-partition cost to suppress
  /// partitioning, §4.1.3: suppression trades preciseness for longer trajectory
  /// partitions, which avoids the short-segment over-clustering pathology of
  /// Fig. 11. 0 disables suppression.
  double suppression_bits = 0.0;
  /// Angle-distance flavor used inside L(D|H); matches the clustering distance.
  bool directed = true;
};

/// MDL cost model for trajectory partitioning (§3.2, Fig. 7).
///
/// A hypothesis H is a set of trajectory partitions. L(H) is the total encoded
/// length of the partitions (Formula (6)); L(D|H) is the encoded deviation of
/// the original trajectory from them — the sum of perpendicular and angle
/// distances between each partition and each constituent line segment (Formula
/// (7); the parallel distance is omitted because a trajectory encloses its
/// partitions). L(H) is deliberately a function of segment *lengths*, not
/// endpoint coordinates, so partitioning is translation-invariant (Appendix C).
class MdlCostModel {
 public:
  MdlCostModel() : MdlCostModel(MdlOptions{}) {}
  explicit MdlCostModel(const MdlOptions& options);

  const MdlOptions& options() const { return options_; }

  /// Description length of a non-negative real under the configured encoding.
  double Encode(double x) const;

  /// L(H) for the single candidate partition p_i → p_j of `tr`.
  double LH(const traj::Trajectory& tr, size_t i, size_t j) const;

  /// L(D|H) for the single candidate partition p_i → p_j of `tr`: the encoded
  /// perpendicular + angle deviation of every enclosed line segment.
  double LDH(const traj::Trajectory& tr, size_t i, size_t j) const;

  /// MDL_par(p_i, p_j) = L(H) + L(D|H), assuming p_i and p_j are the only
  /// characteristic points between them (§3.3).
  double MdlPar(const traj::Trajectory& tr, size_t i, size_t j) const;

  /// MDL_nopar(p_i, p_j): the cost of keeping the original trajectory between
  /// p_i and p_j; L(D|H) is zero, so this is the encoded length of the raw
  /// polyline, plus the configured suppression constant.
  double MdlNoPar(const traj::Trajectory& tr, size_t i, size_t j) const;

 private:
  MdlOptions options_;
  distance::SegmentDistance distance_;
};

}  // namespace traclus::partition

#endif  // TRACLUS_PARTITION_MDL_H_
