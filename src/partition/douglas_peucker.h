#ifndef TRACLUS_PARTITION_DOUGLAS_PEUCKER_H_
#define TRACLUS_PARTITION_DOUGLAS_PEUCKER_H_

#include "partition/partitioner.h"

namespace traclus::partition {

/// Douglas–Peucker line simplification as a baseline partitioner.
///
/// Not part of the paper's algorithm; included as the natural ablation for the
/// MDL partitioner. It keeps a point whenever its perpendicular deviation from
/// the candidate chord exceeds `tolerance` — a purely positional criterion with
/// a hand-tuned threshold, whereas MDL balances preciseness against conciseness
/// without a scale parameter (§3.2). The ablation bench shows MDL adapting per
/// trajectory where DP needs per-data-set tolerance tuning.
class DouglasPeuckerPartitioner : public TrajectoryPartitioner {
 public:
  explicit DouglasPeuckerPartitioner(double tolerance) : tolerance_(tolerance) {
    TRACLUS_CHECK_GE(tolerance, 0.0);
  }

  std::vector<size_t> CharacteristicPoints(
      const traj::Trajectory& tr) const override;

  double tolerance() const { return tolerance_; }

 private:
  double tolerance_;
};

}  // namespace traclus::partition

#endif  // TRACLUS_PARTITION_DOUGLAS_PEUCKER_H_
