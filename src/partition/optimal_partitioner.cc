#include "partition/optimal_partitioner.h"

#include <algorithm>
#include <limits>

namespace traclus::partition {

std::vector<size_t> OptimalPartitioner::CharacteristicPoints(
    const traj::Trajectory& tr) const {
  std::vector<size_t> cp;
  const size_t n = tr.size();
  if (n < 2) return cp;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n, kInf);
  std::vector<size_t> parent(n, 0);
  best[0] = 0.0;
  for (size_t j = 1; j < n; ++j) {
    for (size_t i = 0; i < j; ++i) {
      if (best[i] == kInf) continue;
      const double c = best[i] + cost_.MdlPar(tr, i, j);
      if (c < best[j]) {
        best[j] = c;
        parent[j] = i;
      }
    }
  }

  for (size_t j = n - 1; j != 0; j = parent[j]) cp.push_back(j);
  cp.push_back(0);
  std::reverse(cp.begin(), cp.end());
  return cp;
}

double OptimalPartitioner::TotalCost(
    const traj::Trajectory& tr,
    const std::vector<size_t>& characteristic_points) const {
  TRACLUS_CHECK_GE(characteristic_points.size(), 2u);
  TRACLUS_CHECK_EQ(characteristic_points.front(), 0u);
  TRACLUS_CHECK_EQ(characteristic_points.back(), tr.size() - 1);
  double total = 0.0;
  for (size_t c = 1; c < characteristic_points.size(); ++c) {
    total += cost_.MdlPar(tr, characteristic_points[c - 1],
                          characteristic_points[c]);
  }
  return total;
}

}  // namespace traclus::partition
