#ifndef TRACLUS_PARTITION_PARTITIONER_H_
#define TRACLUS_PARTITION_PARTITIONER_H_

#include <cstddef>
#include <vector>

#include "geom/segment.h"
#include "traj/trajectory.h"

namespace traclus::partition {

/// Interface of the partitioning phase: maps a trajectory to the indices of its
/// characteristic points (§3.1). Implementations must include the first and
/// last point and return strictly increasing indices; a trajectory with fewer
/// than two points yields an empty result.
class TrajectoryPartitioner {
 public:
  virtual ~TrajectoryPartitioner() = default;

  /// Indices of the characteristic points of `tr`, in increasing order.
  virtual std::vector<size_t> CharacteristicPoints(
      const traj::Trajectory& tr) const = 0;
};

/// Materializes the trajectory partitions (line segments between consecutive
/// characteristic points, §3.1) with provenance: trajectory id, weight, and
/// sequential segment ids starting at `first_segment_id`.
/// Zero-length partitions (coincident characteristic points) are skipped.
std::vector<geom::Segment> MakePartitionSegments(
    const traj::Trajectory& tr,
    const std::vector<size_t>& characteristic_points,
    geom::SegmentId first_segment_id);

}  // namespace traclus::partition

#endif  // TRACLUS_PARTITION_PARTITIONER_H_
