#include "partition/mdl.h"

#include <algorithm>
#include <cmath>

namespace traclus::partition {

MdlCostModel::MdlCostModel(const MdlOptions& options) : options_(options) {
  distance::SegmentDistanceConfig cfg;
  cfg.directed = options.directed;
  distance_ = distance::SegmentDistance(cfg);
}

double MdlCostModel::Encode(double x) const {
  TRACLUS_DCHECK_GE(x, 0.0);
  switch (options_.encoding) {
    case MdlEncoding::kLog2Plus1:
      return std::log2(1.0 + x);
    case MdlEncoding::kLog2Clamped:
      return std::log2(std::max(x, 1.0));
  }
  return 0.0;
}

double MdlCostModel::LH(const traj::Trajectory& tr, size_t i, size_t j) const {
  TRACLUS_DCHECK(i < j && j < tr.size());
  return Encode(geom::Distance(tr[i], tr[j]));
}

double MdlCostModel::LDH(const traj::Trajectory& tr, size_t i, size_t j) const {
  TRACLUS_DCHECK(i < j && j < tr.size());
  const geom::Segment hypothesis(tr[i], tr[j]);
  double total = 0.0;
  for (size_t k = i; k < j; ++k) {
    // Zero-length data segment: no deviation.
    if (tr[k] == tr[k + 1]) continue;
    const geom::Segment data(tr[k], tr[k + 1]);
    if (hypothesis.Length() == 0.0) {
      // Degenerate hypothesis (p_i == p_j): deviation is the data segment's own
      // extent — perpendicular collapses to point distances, angle to length.
      total += Encode(geom::Distance(tr[k], tr[i])) + Encode(data.Length());
      continue;
    }
    total += Encode(distance_.Perpendicular(hypothesis, data));
    total += Encode(distance_.Angle(hypothesis, data));
  }
  return total;
}

double MdlCostModel::MdlPar(const traj::Trajectory& tr, size_t i,
                            size_t j) const {
  return LH(tr, i, j) + LDH(tr, i, j);
}

double MdlCostModel::MdlNoPar(const traj::Trajectory& tr, size_t i,
                              size_t j) const {
  TRACLUS_DCHECK(i < j && j < tr.size());
  double total = 0.0;
  for (size_t k = i; k < j; ++k) {
    total += Encode(geom::Distance(tr[k], tr[k + 1]));
  }
  return total + options_.suppression_bits;
}

}  // namespace traclus::partition
