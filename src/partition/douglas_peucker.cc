#include "partition/douglas_peucker.h"

#include <algorithm>
#include <vector>

#include "geom/vector_ops.h"

namespace traclus::partition {

namespace {

// Marks kept indices between [lo, hi] recursively (iterative stack to avoid
// deep recursion on long telemetry trajectories).
void Simplify(const traj::Trajectory& tr, double tolerance,
              std::vector<bool>* keep) {
  std::vector<std::pair<size_t, size_t>> stack;
  stack.emplace_back(0, tr.size() - 1);
  while (!stack.empty()) {
    const auto [lo, hi] = stack.back();
    stack.pop_back();
    if (hi <= lo + 1) continue;
    double worst = -1.0;
    size_t worst_idx = lo;
    for (size_t k = lo + 1; k < hi; ++k) {
      const double d =
          (tr[lo] == tr[hi])
              ? geom::Distance(tr[k], tr[lo])
              : geom::PointToSegmentDistance(tr[k], tr[lo], tr[hi]);
      if (d > worst) {
        worst = d;
        worst_idx = k;
      }
    }
    if (worst > tolerance) {
      (*keep)[worst_idx] = true;
      stack.emplace_back(lo, worst_idx);
      stack.emplace_back(worst_idx, hi);
    }
  }
}

}  // namespace

std::vector<size_t> DouglasPeuckerPartitioner::CharacteristicPoints(
    const traj::Trajectory& tr) const {
  std::vector<size_t> cp;
  const size_t n = tr.size();
  if (n < 2) return cp;
  std::vector<bool> keep(n, false);
  keep.front() = keep.back() = true;
  Simplify(tr, tolerance_, &keep);
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) cp.push_back(i);
  }
  return cp;
}

}  // namespace traclus::partition
