#ifndef TRACLUS_COMMON_LOGGING_H_
#define TRACLUS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace traclus::common {

namespace internal {

/// Accumulates a fatal-check message and aborts on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "[TRACLUS FATAL] " << file << ":" << line << " Check failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed message when a check passes.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace traclus::common

/// Always-on invariant check. Aborts with file/line and the streamed message.
#define TRACLUS_CHECK(condition)                                              \
  if (!(condition))                                                           \
  ::traclus::common::internal::FatalLogMessage(__FILE__, __LINE__, #condition) \
      .stream()

#define TRACLUS_CHECK_EQ(a, b) TRACLUS_CHECK((a) == (b))
#define TRACLUS_CHECK_NE(a, b) TRACLUS_CHECK((a) != (b))
#define TRACLUS_CHECK_LT(a, b) TRACLUS_CHECK((a) < (b))
#define TRACLUS_CHECK_LE(a, b) TRACLUS_CHECK((a) <= (b))
#define TRACLUS_CHECK_GT(a, b) TRACLUS_CHECK((a) > (b))
#define TRACLUS_CHECK_GE(a, b) TRACLUS_CHECK((a) >= (b))

/// Debug-only precondition check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define TRACLUS_DCHECK(condition) \
  if (false) ::traclus::common::internal::NullStream()
#else
#define TRACLUS_DCHECK(condition) TRACLUS_CHECK(condition)
#endif

#define TRACLUS_DCHECK_EQ(a, b) TRACLUS_DCHECK((a) == (b))
#define TRACLUS_DCHECK_LT(a, b) TRACLUS_DCHECK((a) < (b))
#define TRACLUS_DCHECK_LE(a, b) TRACLUS_DCHECK((a) <= (b))
#define TRACLUS_DCHECK_GT(a, b) TRACLUS_DCHECK((a) > (b))
#define TRACLUS_DCHECK_GE(a, b) TRACLUS_DCHECK((a) >= (b))

#endif  // TRACLUS_COMMON_LOGGING_H_
