#ifndef TRACLUS_COMMON_RNG_H_
#define TRACLUS_COMMON_RNG_H_

#include <cstdint>
#include <random>

#include "common/logging.h"

namespace traclus::common {

/// Deterministic random number generator used across data generators and
/// randomized algorithms (e.g. simulated annealing, EM initialization).
///
/// Wraps std::mt19937_64 behind a small convenience API so every consumer seeds
/// explicitly; nothing in the library draws from global entropy. Identical
/// seeds produce identical streams on every platform we target.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    TRACLUS_DCHECK(lo <= hi);
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    TRACLUS_DCHECK(lo <= hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Gaussian sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace traclus::common

#endif  // TRACLUS_COMMON_RNG_H_
