#ifndef TRACLUS_COMMON_SPAN_H_
#define TRACLUS_COMMON_SPAN_H_

// A minimal non-owning view over a contiguous array — the parameter currency
// of the batched distance kernels (distance/batch_kernels.h). The library
// targets C++17, which predates std::span; this covers the read/write subset
// the kernels need with the same shape, so a later migration to std::span is
// a type-alias change.

#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/logging.h"

namespace traclus::common {

template <typename T>
class Span {
 public:
  constexpr Span() : data_(nullptr), size_(0) {}
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}

  /// Views over vectors (and, via the const conversion below, vector<T> as
  /// Span<const T>).
  template <typename Alloc>
  Span(std::vector<T, Alloc>& v) : data_(v.data()), size_(v.size()) {}
  template <typename U, typename Alloc,
            typename = std::enable_if_t<std::is_same_v<const U, T>>>
  Span(const std::vector<U, Alloc>& v) : data_(v.data()), size_(v.size()) {}

  /// Span<T> → Span<const T>.
  template <typename U,
            typename = std::enable_if_t<std::is_same_v<const U, T>>>
  constexpr Span(Span<U> o) : data_(o.data()), size_(o.size()) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  T& operator[](size_t i) const {
    TRACLUS_DCHECK(i < size_);
    return data_[i];
  }

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  /// Subview [offset, offset + count); count is clamped to the remainder.
  Span<T> subspan(size_t offset, size_t count) const {
    TRACLUS_DCHECK(offset <= size_);
    const size_t n = size_ - offset < count ? size_ - offset : count;
    return Span<T>(data_ + offset, n);
  }

 private:
  T* data_;
  size_t size_;
};

}  // namespace traclus::common

#endif  // TRACLUS_COMMON_SPAN_H_
