#ifndef TRACLUS_COMMON_THREAD_ANNOTATIONS_H_
#define TRACLUS_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (no-ops on other compilers).
//
// These drive clang's `-Wthread-safety` static lock-discipline checker: a
// member declared TRACLUS_GUARDED_BY(mu_) may only be touched while `mu_` is
// held, a function declared TRACLUS_REQUIRES(mu_) may only be called with
// `mu_` held, and violations are compile errors in the clang CI jobs
// (`-Wthread-safety` is added for clang in CMakeLists.txt; the clang jobs run
// with TRACLUS_WERROR=ON). gcc ignores every macro here, so the annotations
// cost nothing outside clang builds.
//
// The attributes only understand capability types that are themselves
// annotated — the standard library's std::mutex is not (libstdc++ carries no
// annotations) — so lock-discipline checking in this codebase goes through
// the annotated wrappers in common/mutex.h (common::Mutex,
// common::MutexLock), not through raw std::mutex.
//
// Macro set and spelling follow the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); the legacy
// EXCLUSIVE_LOCKS_REQUIRED / LOCKS_EXCLUDED spellings are provided as aliases
// because some annotated call sites read better with the older names.

#if defined(__clang__)
#define TRACLUS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define TRACLUS_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Declares a class to be a capability (lockable) type. The string is the
/// capability kind used in diagnostics, e.g. "mutex".
#define TRACLUS_CAPABILITY(x) TRACLUS_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define TRACLUS_SCOPED_CAPABILITY \
  TRACLUS_THREAD_ANNOTATION__(scoped_lockable)

/// Data member may only be read or written while holding the given capability.
#define TRACLUS_GUARDED_BY(x) TRACLUS_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member: the *pointed-to* data is protected by the capability
/// (dereferencing requires the lock; copying the pointer does not).
#define TRACLUS_PT_GUARDED_BY(x) TRACLUS_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) when calling.
#define TRACLUS_REQUIRES(...) \
  TRACLUS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Legacy alias for TRACLUS_REQUIRES.
#define TRACLUS_EXCLUSIVE_LOCKS_REQUIRED(...) \
  TRACLUS_THREAD_ANNOTATION__(exclusive_locks_required(__VA_ARGS__))

/// Function acquires the capability and does not release it before returning.
#define TRACLUS_ACQUIRE(...) \
  TRACLUS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define TRACLUS_RELEASE(...) \
  TRACLUS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function attempts to acquire; first argument is the success return value.
#define TRACLUS_TRY_ACQUIRE(...) \
  TRACLUS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (guards against self-deadlock on a
/// non-reentrant mutex).
#define TRACLUS_EXCLUDES(...) \
  TRACLUS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Legacy alias for TRACLUS_EXCLUDES.
#define TRACLUS_LOCKS_EXCLUDED(...) \
  TRACLUS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Documents lock-acquisition ordering between capabilities.
#define TRACLUS_ACQUIRED_BEFORE(...) \
  TRACLUS_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define TRACLUS_ACQUIRED_AFTER(...) \
  TRACLUS_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define TRACLUS_RETURN_CAPABILITY(x) \
  TRACLUS_THREAD_ANNOTATION__(lock_returned(x))

/// Asserts (at runtime, to the analysis) that the capability is held.
#define TRACLUS_ASSERT_CAPABILITY(x) \
  TRACLUS_THREAD_ANNOTATION__(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use must carry
/// an inline justification.
#define TRACLUS_NO_THREAD_SAFETY_ANALYSIS \
  TRACLUS_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // TRACLUS_COMMON_THREAD_ANNOTATIONS_H_
