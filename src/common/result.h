#ifndef TRACLUS_COMMON_RESULT_H_
#define TRACLUS_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace traclus::common {

/// Value-or-Status, modeled after arrow::Result.
///
/// A Result<T> holds either a T (success) or a non-OK Status (failure).
/// Accessing the value of a failed result is a checked programming error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  // NOLINTNEXTLINE(runtime/explicit)
  Result(Status status) : state_(std::move(status)) {
    TRACLUS_CHECK(!std::get<Status>(state_).ok())
        << "Result<T> must not be constructed from an OK Status";
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// The failure status; Status::OK() when the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  const T& ValueOrDie() const& {
    TRACLUS_CHECK(ok()) << "ValueOrDie on failed Result: "
                        << status().ToString();
    return std::get<T>(state_);
  }
  T& ValueOrDie() & {
    TRACLUS_CHECK(ok()) << "ValueOrDie on failed Result: "
                        << status().ToString();
    return std::get<T>(state_);
  }
  T&& ValueOrDie() && {
    TRACLUS_CHECK(ok()) << "ValueOrDie on failed Result: "
                        << status().ToString();
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace traclus::common

/// Assigns the value of a Result expression to `lhs`, or propagates its Status.
#define TRACLUS_ASSIGN_OR_RETURN(lhs, rexpr)                \
  auto&& _result_tmp_##__LINE__ = (rexpr);                  \
  if (!_result_tmp_##__LINE__.ok())                         \
    return _result_tmp_##__LINE__.status();                 \
  lhs = std::move(_result_tmp_##__LINE__).ValueOrDie()

#endif  // TRACLUS_COMMON_RESULT_H_
