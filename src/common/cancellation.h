#ifndef TRACLUS_COMMON_CANCELLATION_H_
#define TRACLUS_COMMON_CANCELLATION_H_

#include <atomic>
#include <stdexcept>

namespace traclus::common {

/// Cooperative cancellation flag for long pipeline runs.
///
/// A caller keeps the token, hands a pointer to the run (e.g. through
/// core::RunContext), and calls `Cancel()` from any thread — typically a
/// signal handler, a UI thread, or a progress callback. The running pipeline
/// polls the flag between units of parallel work (chunks, blocks, seeds) and
/// abandons the run at the next check, surfacing StatusCode::kCancelled to the
/// caller.
///
/// Memory-ordering contract (every operation spells its order explicitly —
/// a defaulted seq_cst here would silently promise more than the type
/// delivers):
///
///   * `Cancel()` is a relaxed store, `cancelled()` a relaxed load. Relaxed
///     is sufficient AND the strongest guarantee offered: the token is a pure
///     "stop soon" level trigger carrying no payload, so no reader ever
///     dereferences data published by the cancelling thread on the strength
///     of having observed the flag. Nothing may be ordered "after
///     cancellation was observed" — any such protocol needs its own
///     synchronization (the pipeline's is the ThreadPool's mutex/condvar
///     handoff at ParallelFor join points).
///   * Atomicity (not ordering) is what makes cross-thread Cancel() race-free
///     under TSan; the flag may be observed arbitrarily late, which is fine —
///     the only liveness promise is "some subsequent poll sees it".
///   * Checks are a single relaxed load, cheap enough for inner loops.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread. Relaxed: see
  /// the class contract — the flag synchronizes nothing but itself.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once `Cancel()` has been called (possibly observed late; relaxed
  /// load per the class contract).
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Thrown by deep pipeline loops when their token fires; converted to
/// Status::Cancelled at the stage boundary (never escapes the engine API).
/// Propagates safely across ThreadPool::ParallelFor, which rethrows the first
/// task exception on the calling thread.
class OperationCancelled : public std::runtime_error {
 public:
  OperationCancelled() : std::runtime_error("operation cancelled") {}
};

/// Polls `token` (null = cancellation not requested) and throws
/// OperationCancelled once it fires.
inline void ThrowIfCancelled(const CancellationToken* token) {
  if (token != nullptr && token->cancelled()) throw OperationCancelled();
}

}  // namespace traclus::common

#endif  // TRACLUS_COMMON_CANCELLATION_H_
