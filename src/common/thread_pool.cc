#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>

#include "common/logging.h"

namespace traclus::common {

int ResolveNumThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveNumThreads(num_threads)) {
  // num_threads_ == 1 runs everything inline on the caller: no workers.
  workers_.reserve(num_threads_ > 1 ? num_threads_ : 0);
  for (int t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::RecordException(std::exception_ptr e) {
  MutexLock lock(mu_);
  if (!first_error_) first_error_ = std::move(e);
}

void ThreadPool::Submit(std::function<void()> task) {
  TRACLUS_DCHECK(task != nullptr);
  if (workers_.empty()) {
    // Single-threaded pool: run inline, exactly as the serial code would.
    try {
      task();
    } catch (...) {
      RecordException(std::current_exception());
    }
    return;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (!workers_.empty()) {
    // Drain the queue on the calling thread too: Wait() participates instead
    // of idling, which also keeps single-producer workloads latency-bound on
    // the slowest task rather than on queue handoff.
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        if (queue_.empty()) break;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      try {
        task();
      } catch (...) {
        RecordException(std::current_exception());
      }
      {
        MutexLock lock(mu_);
        --in_flight_;
      }
      all_done_.notify_all();
    }
    MutexLock lock(mu_);
    while (in_flight_ != 0) all_done_.wait(mu_);
  }
  std::exception_ptr err;
  {
    MutexLock lock(mu_);
    std::swap(err, first_error_);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) task_ready_.wait(mu_);
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      RecordException(std::current_exception());
    }
    {
      MutexLock lock(mu_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

namespace {

// Per-ParallelFor completion state. Each call owns its own counters and error
// slot so concurrent ParallelFor calls on one (shared) pool never observe each
// other's progress; worker tasks keep the state alive via shared_ptr in case
// a straggler task starts after the caller has already returned.
struct ParallelCallState {
  std::atomic<size_t> next_chunk{0};
  // Release on the finishing increment / acquire on the caller's check: the
  // edge that publishes every chunk body's writes to the caller even when the
  // caller never sleeps on the condition variable (see ParallelForChunked).
  std::atomic<size_t> chunks_done{0};
  size_t num_chunks = 0;
  size_t begin = 0;
  size_t end = 0;
  size_t chunk = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;
  Mutex mu;
  CondVar all_done;
  std::exception_ptr error TRACLUS_GUARDED_BY(mu);
};

// Claims chunks off `state` until none remain. Chunk -> index-range mapping is
// fixed up front, so which thread runs a chunk never affects what it computes.
void RunChunks(const std::shared_ptr<ParallelCallState>& state) {
  for (;;) {
    const size_t c = state->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= state->num_chunks) return;
    const size_t lo = state->begin + c * state->chunk;
    const size_t hi = std::min(lo + state->chunk, state->end);
    try {
      (*state->body)(lo, hi);
    } catch (...) {
      MutexLock lock(state->mu);
      if (!state->error) state->error = std::current_exception();
    }
    if (state->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->num_chunks) {
      // Lock pairs with the waiter's predicate check so the notify cannot
      // slip between its predicate evaluation and its sleep.
      MutexLock lock(state->mu);
      state->all_done.notify_all();
    }
  }
}

}  // namespace

void ThreadPool::ParallelForChunked(
    size_t begin, size_t end, const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t threads = static_cast<size_t>(num_threads_);
  if (threads == 1 || n == 1) {
    body(begin, end);
    return;
  }
  // Oversubscribe chunks 4x so stragglers (trajectories of uneven length,
  // dense vs sparse neighborhoods) load-balance, while keeping chunks
  // contiguous so outputs merge deterministically by index. After rounding
  // the chunk size up, recompute the chunk count so the last chunk ends
  // exactly at `end` — otherwise ceil-rounding would produce phantom chunks
  // with lo ≥ end (e.g. n=10 on 2 threads: 8 chunks of 2 covers 16 > 10).
  const size_t target_chunks = std::min(n, threads * 4);
  const size_t chunk = (n + target_chunks - 1) / target_chunks;
  const size_t num_chunks = (n + chunk - 1) / chunk;
  auto state = std::make_shared<ParallelCallState>();
  state->num_chunks = num_chunks;
  state->begin = begin;
  state->end = end;
  state->chunk = chunk;
  state->body = &body;

  // The caller claims chunks too, so progress is guaranteed even when every
  // worker is busy with other calls (e.g. a nested ParallelFor). If enqueuing
  // a helper throws (allocation failure), the error must not propagate until
  // every chunk has settled: already-queued helpers hold `state` and would
  // otherwise race a dead `body`.
  std::exception_ptr submit_error;
  const size_t helpers = std::min(threads - 1, num_chunks - 1);
  try {
    for (size_t t = 0; t < helpers; ++t) {
      Submit([state] { RunChunks(state); });
    }
  } catch (...) {
    submit_error = std::current_exception();
  }
  RunChunks(state);

  MutexLock lock(state->mu);
  while (state->chunks_done.load(std::memory_order_acquire) !=
         state->num_chunks) {
    state->all_done.wait(state->mu);
  }
  if (state->error) std::rethrow_exception(state->error);
  if (submit_error) std::rethrow_exception(submit_error);
}

void ThreadPool::ParallelForPairs(
    size_t n, const std::function<void(size_t, size_t)>& pair_body) {
  ParallelForChunked(0, n, [&pair_body, n](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      for (size_t j = i + 1; j < n; ++j) pair_body(i, j);
    }
  });
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  ParallelForChunked(begin, end, [&body](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) body(i);
  });
}

namespace {

// Owner of the shared pools. A function-local singleton with a real
// destructor: joining idle workers at static destruction is safe because
// every task a pool can still hold is a ParallelFor straggler whose state is
// kept alive by shared_ptr (see RunChunks) — no task touches other statics.
class SharedPoolRegistry {
 public:
  static SharedPoolRegistry& Instance() {
    static SharedPoolRegistry registry;
    return registry;
  }

  ThreadPool& Get(int resolved_threads) TRACLUS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto& slot = pools_[resolved_threads];
    if (!slot) slot = std::make_unique<ThreadPool>(resolved_threads);
    return *slot;
  }

  void Clear() TRACLUS_EXCLUDES(mu_) {
    // Joining under the lock is fine: callers must not have a run in flight,
    // and pool workers never call back into SharedPool while draining.
    MutexLock lock(mu_);
    pools_.clear();
  }

 private:
  Mutex mu_;
  std::map<int, std::unique_ptr<ThreadPool>> pools_ TRACLUS_GUARDED_BY(mu_);
};

}  // namespace

ThreadPool& SharedPool(int num_threads) {
  return SharedPoolRegistry::Instance().Get(ResolveNumThreads(num_threads));
}

void ShutdownSharedPools() { SharedPoolRegistry::Instance().Clear(); }

}  // namespace traclus::common
