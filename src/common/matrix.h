#ifndef TRACLUS_COMMON_MATRIX_H_
#define TRACLUS_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace traclus::common {

/// Minimal dense row-major matrix of doubles.
///
/// Supports exactly what the regression-mixture baseline needs: construction,
/// element access, multiply, transpose, and a symmetric positive-definite solve
/// (Cholesky with a diagonal ridge fallback). Not a general linear-algebra
/// library by design; TRACLUS itself is purely geometric.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    TRACLUS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    TRACLUS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Matrix product this * other.
  Matrix Multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-(semi)definite A via Cholesky.
///
/// Adds an escalating ridge to the diagonal if the factorization encounters a
/// non-positive pivot, which keeps EM iterations stable on degenerate designs.
/// Checks dimension agreement; returns the solution vector.
std::vector<double> SolveSpd(const Matrix& a, const std::vector<double>& b);

}  // namespace traclus::common

#endif  // TRACLUS_COMMON_MATRIX_H_
