#include "common/matrix.h"

#include <cmath>

namespace traclus::common {

Matrix Matrix::Multiply(const Matrix& other) const {
  TRACLUS_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

namespace {

// Attempts an in-place Cholesky factorization of `a` (lower triangle).
// Returns false on a non-positive pivot.
bool CholeskyFactor(Matrix* a) {
  const size_t n = a->rows();
  for (size_t j = 0; j < n; ++j) {
    double d = (*a)(j, j);
    for (size_t k = 0; k < j; ++k) d -= (*a)(j, k) * (*a)(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    (*a)(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = (*a)(i, j);
      for (size_t k = 0; k < j; ++k) s -= (*a)(i, k) * (*a)(j, k);
      (*a)(i, j) = s / ljj;
    }
  }
  return true;
}

}  // namespace

std::vector<double> SolveSpd(const Matrix& a, const std::vector<double>& b) {
  TRACLUS_CHECK_EQ(a.rows(), a.cols());
  TRACLUS_CHECK_EQ(a.rows(), b.size());
  const size_t n = a.rows();

  Matrix l = a;
  double ridge = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    l = a;
    if (ridge > 0.0) {
      for (size_t i = 0; i < n; ++i) l(i, i) += ridge;
    }
    if (CholeskyFactor(&l)) break;
    ridge = (ridge == 0.0) ? 1e-10 : ridge * 100.0;
    TRACLUS_CHECK(attempt < 7)
        << "SolveSpd: matrix is not factorizable even with ridge " << ridge;
  }

  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Backward substitution: L^T x = y.
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

}  // namespace traclus::common
