#ifndef TRACLUS_COMMON_STATUS_H_
#define TRACLUS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace traclus::common {

/// Machine-readable error category, modeled after the Arrow/RocksDB status
/// idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kFailedPrecondition,
  kCancelled,
};

/// Returns a short human-readable name for a status code (e.g.
/// "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation that produces no value.
///
/// Cheap to copy in the OK case (no allocation); carries a message otherwise.
/// Use the factory functions (`Status::OK()`, `Status::InvalidArgument(...)`)
/// and test with `ok()`. Algorithmic preconditions use TRACLUS_DCHECK instead;
/// Status is reserved for runtime-fallible paths (IO, parsing, user-supplied
/// config).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace traclus::common

/// Propagates a non-OK Status to the caller.
#define TRACLUS_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::traclus::common::Status _st = (expr);          \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // TRACLUS_COMMON_STATUS_H_
