#ifndef TRACLUS_COMMON_MUTEX_H_
#define TRACLUS_COMMON_MUTEX_H_

// Annotated mutex wrappers: the capability types clang's `-Wthread-safety`
// analysis tracks (see common/thread_annotations.h — raw std::mutex carries
// no annotations in libstdc++, so guarded members must be locked through
// these wrappers for the analysis to see the acquire/release).
//
// Zero-overhead by construction: Mutex is exactly a std::mutex and MutexLock
// is exactly a lock_guard; only the attributes differ. Condition waits use
// CondVar (std::condition_variable_any), which waits on the Mutex directly —
// the idiomatic pattern under the analysis is an explicit predicate loop
// inside the locked scope:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(mu_);   // ready_ is TRACLUS_GUARDED_BY(mu_)
//
// (A lambda predicate passed to wait() would be analyzed as an unlocked
// function and reject the guarded read; the explicit loop keeps every
// guarded access lexically inside the locked scope.)

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace traclus::common {

/// std::mutex with capability annotations. Non-reentrant.
class TRACLUS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TRACLUS_ACQUIRE() { mu_.lock(); }
  void unlock() TRACLUS_RELEASE() { mu_.unlock(); }
  bool try_lock() TRACLUS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section over a Mutex (lock_guard with a scoped-capability
/// annotation, so the analysis knows the lock is held for the block).
class TRACLUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TRACLUS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TRACLUS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits on a Mutex directly (BasicLockable). Always
/// use the explicit predicate-loop form shown in the file comment; wait()
/// releases and reacquires the Mutex internally, which the analysis does not
/// model — the surrounding scope simply stays "locked", which is exactly the
/// invariant at every point the predicate is evaluated.
using CondVar = std::condition_variable_any;

}  // namespace traclus::common

#endif  // TRACLUS_COMMON_MUTEX_H_
