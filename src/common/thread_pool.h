#ifndef TRACLUS_COMMON_THREAD_POOL_H_
#define TRACLUS_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace traclus::common {

/// Resolves a user-facing thread-count knob: any value ≤ 0 selects the
/// hardware concurrency (at least 1); positive values are used as given.
int ResolveNumThreads(int num_threads);

/// A fixed-size worker pool for the embarrassingly parallel phases of the
/// pipeline (per-trajectory MDL partitioning, batched ε-neighborhood queries,
/// pairwise distance evaluation).
///
/// Design constraints, in priority order:
///  1. Determinism of callers: the pool runs whatever closures it is given;
///     all helpers here (`ParallelFor`) index into caller-owned output slots so
///     results never depend on scheduling order.
///  2. `num_threads == 1` means *no worker threads at all*: tasks run inline on
///     the calling thread, byte-for-byte reproducing the serial seed behavior
///     (same allocation pattern, no synchronization overhead, trivially safe
///     for thread-compatible-but-not-thread-safe callees).
///  3. Exceptions thrown by tasks are captured and rethrown to the caller of
///     the owning `ParallelFor`/`Wait` — never lost, never `std::terminate`.
class ThreadPool {
 public:
  /// `num_threads` ≤ 0 selects hardware concurrency; 1 creates no workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute work (including the inline path: never 0).
  int num_threads() const { return num_threads_; }

  /// Enqueues a task. Tasks start in FIFO order (completion order is up to the
  /// scheduler). With one thread the task runs immediately, inline.
  void Submit(std::function<void()> task) TRACLUS_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception (in submission order of the failing tasks' observation) thrown
  /// by any task since the last Wait().
  void Wait() TRACLUS_EXCLUDES(mu_);

  /// Runs `body(i)` for every i in [begin, end), partitioned into contiguous
  /// chunks across the pool, and blocks until all iterations finish.
  ///
  /// `body` must be safe to invoke concurrently for distinct i and must write
  /// only to per-index state (or otherwise synchronize); under that contract
  /// the result is identical for every thread count. Empty ranges are a no-op;
  /// ranges smaller than the pool simply use fewer chunks. Exceptions from any
  /// iteration propagate to the caller after all chunks settle.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

  /// Chunked variant: `body(chunk_begin, chunk_end)` per contiguous chunk.
  /// Useful when per-iteration dispatch is too fine-grained.
  void ParallelForChunked(
      size_t begin, size_t end,
      const std::function<void(size_t, size_t)>& body);

  /// Runs `pair_body(i, j)` for every unordered pair 0 ≤ i < j < n, chunked
  /// by leading index across the pool. The chunk owning i issues all of i's
  /// pairs, so a body that writes only to (i, j)- and (j, i)-addressed slots
  /// has exactly one writer per slot — symmetric matrix fills parallelize
  /// race-freely and deterministically (see distance::PairwiseDistanceMatrix).
  void ParallelForPairs(size_t n,
                        const std::function<void(size_t, size_t)>& pair_body);

 private:
  void WorkerLoop() TRACLUS_EXCLUDES(mu_);
  void RecordException(std::exception_ptr e) TRACLUS_EXCLUDES(mu_);

  // Immutable after construction; safe to read from any thread unlocked.
  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar task_ready_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ TRACLUS_GUARDED_BY(mu_);
  /// Queued + currently executing tasks.
  size_t in_flight_ TRACLUS_GUARDED_BY(mu_) = 0;
  bool shutdown_ TRACLUS_GUARDED_BY(mu_) = false;
  /// First failure since the last Wait().
  std::exception_ptr first_error_ TRACLUS_GUARDED_BY(mu_);
};

/// Shared process-wide pool keyed by thread count, so repeated pipeline runs
/// (benchmarks, the CLI, tests) do not pay thread spawn cost per phase.
/// Returns a pool with `ResolveNumThreads(num_threads)` threads.
///
/// Ownership: the pools live in a registry with a real destructor, so every
/// worker thread is joined and every pool freed deterministically — at the
/// latest during static destruction, or earlier via `ShutdownSharedPools()`.
/// Do not call SharedPool from static destructors that run after the
/// registry's (it would be use-after-destroy), and do not hold the returned
/// reference across a `ShutdownSharedPools()` call.
ThreadPool& SharedPool(int num_threads);

/// Joins and destroys every pool the registry currently owns. Safe to call
/// when no pipeline run is in flight; subsequent `SharedPool` calls lazily
/// recreate pools. Intended for embedders that need worker threads gone at a
/// deterministic point (library unload, leak-checked test teardown).
void ShutdownSharedPools();

}  // namespace traclus::common

#endif  // TRACLUS_COMMON_THREAD_POOL_H_
