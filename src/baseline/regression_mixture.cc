#include "baseline/regression_mixture.h"

#include <algorithm>
#include <cmath>

#include "common/matrix.h"
#include "common/rng.h"

namespace traclus::baseline {

namespace {

// Normalized sample times 0..1 for a trajectory of n points.
double TimeOf(size_t idx, size_t n) {
  return n <= 1 ? 0.0 : static_cast<double>(idx) / static_cast<double>(n - 1);
}

// Evaluates a degree-major polynomial at t.
double PolyEval(const std::vector<double>& coeff, double t) {
  double acc = 0.0;
  double tp = 1.0;
  for (const double c : coeff) {
    acc += c * tp;
    tp *= t;
  }
  return acc;
}

// log N(v; mean, var).
double LogGaussian(double v, double mean, double var) {
  const double d = v - mean;
  return -0.5 * (std::log(2.0 * M_PI * var) + d * d / var);
}

}  // namespace

RegressionMixtureClusterer::RegressionMixtureClusterer(
    const RegressionMixtureConfig& config)
    : config_(config) {
  TRACLUS_CHECK_GE(config.num_components, 1);
  TRACLUS_CHECK_GE(config.poly_order, 0);
  TRACLUS_CHECK_GE(config.max_iterations, 1);
}

geom::Point RegressionMixtureClusterer::Predict(
    const RegressionMixtureResult& model, int k, double t) {
  TRACLUS_CHECK(k >= 0 && k < static_cast<int>(model.coeff_x.size()));
  return geom::Point(PolyEval(model.coeff_x[k], t),
                     PolyEval(model.coeff_y[k], t));
}

RegressionMixtureResult RegressionMixtureClusterer::Fit(
    const traj::TrajectoryDatabase& db) const {
  const size_t m = db.size();
  const int k_comp = config_.num_components;
  const int p = config_.poly_order + 1;  // Number of basis terms.
  TRACLUS_CHECK_GE(m, static_cast<size_t>(k_comp))
      << "need at least K trajectories";

  RegressionMixtureResult out;
  out.assignments.assign(m, 0);
  out.responsibilities.assign(m, std::vector<double>(k_comp, 0.0));
  out.coeff_x.assign(k_comp, std::vector<double>(p, 0.0));
  out.coeff_y.assign(k_comp, std::vector<double>(p, 0.0));
  out.weights.assign(k_comp, 1.0 / k_comp);
  out.variances.assign(k_comp, 1.0);

  // Random soft initialization (deterministic seed): Dirichlet-ish split.
  common::Rng rng(config_.seed);
  for (size_t i = 0; i < m; ++i) {
    double total = 0.0;
    for (int k = 0; k < k_comp; ++k) {
      out.responsibilities[i][k] = rng.Uniform(0.05, 1.0);
      total += out.responsibilities[i][k];
    }
    for (int k = 0; k < k_comp; ++k) out.responsibilities[i][k] /= total;
  }

  auto m_step = [&]() {
    for (int k = 0; k < k_comp; ++k) {
      // Weighted least squares over all points of all trajectories.
      common::Matrix xtx(p, p);
      std::vector<double> xty_x(p, 0.0);
      std::vector<double> xty_y(p, 0.0);
      double resp_sum = 0.0;
      double point_mass = 0.0;
      for (size_t i = 0; i < m; ++i) {
        const double r = out.responsibilities[i][k];
        resp_sum += r;
        const auto& pts = db[i].points();
        for (size_t j = 0; j < pts.size(); ++j) {
          const double t = TimeOf(j, pts.size());
          double basis[16];
          TRACLUS_CHECK_LE(p, 16);
          double tp = 1.0;
          for (int a = 0; a < p; ++a) {
            basis[a] = tp;
            tp *= t;
          }
          for (int a = 0; a < p; ++a) {
            for (int b = a; b < p; ++b) {
              xtx(a, b) += r * basis[a] * basis[b];
            }
            xty_x[a] += r * basis[a] * pts[j].x();
            xty_y[a] += r * basis[a] * pts[j].y();
          }
          point_mass += r;
        }
      }
      for (int a = 0; a < p; ++a) {
        for (int b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
        xtx(a, a) += 1e-9;  // Tikhonov guard for empty components.
      }
      out.coeff_x[k] = common::SolveSpd(xtx, xty_x);
      out.coeff_y[k] = common::SolveSpd(xtx, xty_y);

      // Noise variance: responsibility-weighted mean squared residual over both
      // coordinates.
      double sq = 0.0;
      for (size_t i = 0; i < m; ++i) {
        const double r = out.responsibilities[i][k];
        if (r == 0.0) continue;
        const auto& pts = db[i].points();
        for (size_t j = 0; j < pts.size(); ++j) {
          const double t = TimeOf(j, pts.size());
          const double dx = pts[j].x() - PolyEval(out.coeff_x[k], t);
          const double dy = pts[j].y() - PolyEval(out.coeff_y[k], t);
          sq += r * (dx * dx + dy * dy);
        }
      }
      out.variances[k] =
          std::max(config_.min_variance,
                   sq / std::max(1e-12, 2.0 * point_mass));
      out.weights[k] = resp_sum / static_cast<double>(m);
    }
  };

  auto e_step = [&]() -> double {
    double total_ll = 0.0;
    for (size_t i = 0; i < m; ++i) {
      // log p(TR_i | component k) = Σ_t log N(x) + log N(y).
      std::vector<double> log_like(k_comp, 0.0);
      const auto& pts = db[i].points();
      for (int k = 0; k < k_comp; ++k) {
        double ll = std::log(std::max(out.weights[k], 1e-300));
        for (size_t j = 0; j < pts.size(); ++j) {
          const double t = TimeOf(j, pts.size());
          ll += LogGaussian(pts[j].x(), PolyEval(out.coeff_x[k], t),
                            out.variances[k]);
          ll += LogGaussian(pts[j].y(), PolyEval(out.coeff_y[k], t),
                            out.variances[k]);
        }
        log_like[k] = ll;
      }
      const double mx = *std::max_element(log_like.begin(), log_like.end());
      double denom = 0.0;
      for (int k = 0; k < k_comp; ++k) denom += std::exp(log_like[k] - mx);
      total_ll += mx + std::log(denom);
      for (int k = 0; k < k_comp; ++k) {
        out.responsibilities[i][k] = std::exp(log_like[k] - mx) / denom;
      }
    }
    return total_ll;
  };

  double prev_ll = -std::numeric_limits<double>::infinity();
  for (int it = 0; it < config_.max_iterations; ++it) {
    m_step();
    const double ll = e_step();
    out.log_likelihood.push_back(ll);
    if (it > 0 && std::abs(ll - prev_ll) <=
                      config_.tolerance * (std::abs(prev_ll) + 1.0)) {
      out.converged = true;
      break;
    }
    prev_ll = ll;
  }

  for (size_t i = 0; i < m; ++i) {
    out.assignments[i] = static_cast<int>(
        std::max_element(out.responsibilities[i].begin(),
                         out.responsibilities[i].end()) -
        out.responsibilities[i].begin());
  }
  return out;
}

}  // namespace traclus::baseline
