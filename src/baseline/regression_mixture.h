#ifndef TRACLUS_BASELINE_REGRESSION_MIXTURE_H_
#define TRACLUS_BASELINE_REGRESSION_MIXTURE_H_

#include <cstdint>
#include <vector>

#include "traj/trajectory_database.h"

namespace traclus::baseline {

/// Configuration of the regression-mixture trajectory clusterer.
struct RegressionMixtureConfig {
  int num_components = 3;   ///< K, the number of whole-trajectory clusters.
  int poly_order = 3;       ///< Polynomial degree of each regression component.
  int max_iterations = 100; ///< EM iteration cap.
  double tolerance = 1e-6;  ///< Relative log-likelihood convergence threshold.
  double min_variance = 1e-6; ///< Variance floor for numerical stability.
  uint64_t seed = 7;        ///< Responsibility-initialization seed.
};

/// Result of fitting the mixture.
struct RegressionMixtureResult {
  /// Hard assignment of each trajectory: argmax_k responsibility. Indexed like
  /// the input database.
  std::vector<int> assignments;
  /// Soft responsibilities, assignments.size() × K.
  std::vector<std::vector<double>> responsibilities;
  /// Per-component polynomial coefficients for x(t) and y(t), degree-major
  /// (coeff[0] + coeff[1]·t + …), t normalized to [0, 1].
  std::vector<std::vector<double>> coeff_x;
  std::vector<std::vector<double>> coeff_y;
  /// Per-component mixing weights and noise variances.
  std::vector<double> weights;
  std::vector<double> variances;
  /// Total log-likelihood after each EM iteration (monotone non-decreasing).
  std::vector<double> log_likelihood;
  bool converged = false;
};

/// The Gaffney–Smyth model-based trajectory clusterer [7, 8]: the comparison
/// framework the paper argues against in §1/§6.
///
/// A set of trajectories is modeled as a mixture of polynomial regressions
/// y_j(t) = f_k(t) + noise over normalized arc time; EM estimates component
/// parameters and memberships, and each trajectory is assigned to its maximum-
/// responsibility component. The crucial property for our benches: the unit of
/// clustering is the WHOLE trajectory, so common sub-trajectories of otherwise
/// divergent trajectories cannot be detected (Example 1 / Fig. 1) — which
/// `bench_fig1_framework_comparison` demonstrates against TRACLUS.
class RegressionMixtureClusterer {
 public:
  explicit RegressionMixtureClusterer(const RegressionMixtureConfig& config);

  /// Fits the mixture to `db` with EM. Deterministic for a fixed seed.
  /// Requires at least `num_components` non-empty trajectories.
  RegressionMixtureResult Fit(const traj::TrajectoryDatabase& db) const;

  /// Evaluates component k of a fitted model at normalized time t ∈ [0, 1].
  static geom::Point Predict(const RegressionMixtureResult& model, int k,
                             double t);

 private:
  RegressionMixtureConfig config_;
};

}  // namespace traclus::baseline

#endif  // TRACLUS_BASELINE_REGRESSION_MIXTURE_H_
