#include "baseline/warping_distances.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace traclus::baseline {

namespace {

// Per-coordinate (Chebyshev-style) match predicate used by LCSS and EDR: the
// original definitions compare each dimension separately against eps.
bool MatchWithin(const geom::Point& p, const geom::Point& q, double eps) {
  for (int d = 0; d < p.dims(); ++d) {
    if (std::abs(p[d] - q[d]) > eps) return false;
  }
  return true;
}

}  // namespace

double DtwDistance(const traj::Trajectory& a, const traj::Trajectory& b) {
  TRACLUS_CHECK(!a.empty() && !b.empty());
  const auto& pa = a.points();
  const auto& pb = b.points();
  const size_t n = pa.size();
  const size_t m = pb.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = kInf;
    for (size_t j = 1; j <= m; ++j) {
      const double cost = geom::Distance(pa[i - 1], pb[j - 1]);
      curr[j] = cost + std::min({prev[j], curr[j - 1], prev[j - 1]});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

size_t LcssLength(const traj::Trajectory& a, const traj::Trajectory& b,
                  double eps, int delta) {
  const auto& pa = a.points();
  const auto& pb = b.points();
  const size_t n = pa.size();
  const size_t m = pb.size();
  if (n == 0 || m == 0) return 0;

  std::vector<size_t> prev(m + 1, 0);
  std::vector<size_t> curr(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const bool index_ok =
          delta < 0 || std::llabs(static_cast<long long>(i) -
                                  static_cast<long long>(j)) <= delta;
      if (index_ok && MatchWithin(pa[i - 1], pb[j - 1], eps)) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double LcssDistance(const traj::Trajectory& a, const traj::Trajectory& b,
                    double eps, int delta) {
  const size_t shorter = std::min(a.size(), b.size());
  if (shorter == 0) return 1.0;
  return 1.0 - static_cast<double>(LcssLength(a, b, eps, delta)) /
                   static_cast<double>(shorter);
}

double EdrDistance(const traj::Trajectory& a, const traj::Trajectory& b,
                   double eps) {
  const auto& pa = a.points();
  const auto& pb = b.points();
  const size_t n = pa.size();
  const size_t m = pb.size();
  if (n == 0) return static_cast<double>(m);
  if (m == 0) return static_cast<double>(n);

  std::vector<double> prev(m + 1);
  std::vector<double> curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<double>(i);
    for (size_t j = 1; j <= m; ++j) {
      const double subcost = MatchWithin(pa[i - 1], pb[j - 1], eps) ? 0.0 : 1.0;
      curr[j] = std::min(
          {prev[j - 1] + subcost, prev[j] + 1.0, curr[j - 1] + 1.0});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

}  // namespace traclus::baseline
