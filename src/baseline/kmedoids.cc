#include "baseline/kmedoids.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "common/span.h"
#include "common/thread_pool.h"

namespace traclus::baseline {

KMedoidsResult KMedoids(size_t n,
                        const std::function<double(size_t, size_t)>& dist,
                        const KMedoidsConfig& config) {
  // Adapt the per-pair callback onto the row-batched fill so both overloads
  // share one implementation (and produce identical matrices).
  return KMedoids(
      n,
      [&dist](size_t i, size_t j_begin, size_t j_end, double* out) {
        for (size_t j = j_begin; j < j_end; ++j) out[j - j_begin] = dist(i, j);
      },
      config);
}

KMedoidsResult KMedoids(size_t n, const KMedoidsRowFill& row_fill,
                        const KMedoidsConfig& config) {
  TRACLUS_CHECK_GE(config.k, 1);
  TRACLUS_CHECK_GE(n, static_cast<size_t>(config.k));
  const int k = config.k;
  common::Rng rng(config.seed);

  // Cache the (symmetric) distance matrix; n is small for whole-trajectory
  // use, but the entries (e.g. DTW warps) can be individually expensive, so
  // the fill is spread across the pool. The chunk owning row i fills the
  // whole upper stripe d[i][i+1..n) in one row_fill call and writes the
  // mirrored column — one writer per element, so the matrix is identical for
  // every thread count.
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  common::SharedPool(config.num_threads)
      .ParallelForChunked(0, n, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          if (i + 1 >= n) continue;
          row_fill(i, i + 1, n, d[i].data() + (i + 1));
          for (size_t j = i + 1; j < n; ++j) d[j][i] = d[i][j];
        }
      });

  KMedoidsResult out;
  // k-medoids++ seeding: first medoid random, then proportional-to-distance².
  out.medoids.push_back(static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
  while (out.medoids.size() < static_cast<size_t>(k)) {
    std::vector<double> w(n, 0.0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const size_t mi : out.medoids) nearest = std::min(nearest, d[i][mi]);
      w[i] = nearest * nearest;
      total += w[i];
    }
    size_t pick = 0;
    if (total > 0.0) {
      double target = rng.Uniform(0.0, total);
      for (size_t i = 0; i < n; ++i) {
        target -= w[i];
        if (target <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    if (std::find(out.medoids.begin(), out.medoids.end(), pick) ==
        out.medoids.end()) {
      out.medoids.push_back(pick);
    }
  }

  out.assignments.assign(n, 0);
  auto assign = [&]() {
    double cost = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_k = 0;
      for (int c = 0; c < k; ++c) {
        if (d[i][out.medoids[c]] < best) {
          best = d[i][out.medoids[c]];
          best_k = c;
        }
      }
      out.assignments[i] = best_k;
      cost += best;
    }
    return cost;
  };

  out.total_cost = assign();
  for (int it = 0; it < config.max_iterations; ++it) {
    ++out.iterations;
    bool changed = false;
    // Medoid update: within each cluster, pick the member minimizing the sum
    // of distances to the rest of the cluster.
    for (int c = 0; c < k; ++c) {
      double best_sum = std::numeric_limits<double>::infinity();
      size_t best_m = out.medoids[c];
      for (size_t cand = 0; cand < n; ++cand) {
        if (out.assignments[cand] != c) continue;
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
          if (out.assignments[i] == c) sum += d[cand][i];
        }
        if (sum < best_sum) {
          best_sum = sum;
          best_m = cand;
        }
      }
      if (best_m != out.medoids[c]) {
        out.medoids[c] = best_m;
        changed = true;
      }
    }
    const double cost = assign();
    if (!changed) break;
    out.total_cost = cost;
  }
  out.total_cost = assign();
  return out;
}

KMedoidsResult KMedoidsOverSegments(const traj::SegmentStore& store,
                                    const distance::SegmentDistance& dist,
                                    const KMedoidsConfig& config,
                                    distance::BatchKernel kernel) {
  return KMedoids(
      store.size(),
      [&store, &dist, kernel](size_t i, size_t j_begin, size_t j_end,
                              double* out) {
        distance::DistanceBatchRange(
            store, dist, i, j_begin, j_end,
            common::Span<double>(out, j_end - j_begin), kernel);
      },
      config);
}

}  // namespace traclus::baseline
