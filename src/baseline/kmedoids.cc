#include "baseline/kmedoids.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace traclus::baseline {

namespace {

/// Rows per fill tile: each tile hands the filler a contiguous
/// kFillTileRows × column-stripe block so tile-capable distance sources
/// (distance::DistanceTileRange) reuse candidate columns across the rows.
/// Only the tile's sub-diagonal corner (≤ kFillTileRows²/2 entries) is
/// evaluated without being used.
constexpr size_t kFillTileRows = 16;

}  // namespace

KMedoidsResult KMedoids(size_t n,
                        const std::function<double(size_t, size_t)>& dist,
                        const KMedoidsConfig& config) {
  // Adapt the per-pair callback onto the row-batched fill so all overloads
  // share one implementation (and produce identical matrices).
  return KMedoids(
      n,
      [&dist](size_t i, size_t j_begin, size_t j_end, double* out) {
        for (size_t j = j_begin; j < j_end; ++j) out[j - j_begin] = dist(i, j);
      },
      config);
}

KMedoidsResult KMedoids(size_t n, const KMedoidsRowFill& row_fill,
                        const KMedoidsConfig& config) {
  // Adapt the row callback onto the tiled fill: one row_fill call per tile
  // row, over the tile's shared column range.
  return KMedoids(
      n,
      [&row_fill](size_t i_begin, size_t i_end, size_t j_begin, size_t j_end,
                  double* out, size_t ldo) {
        for (size_t i = i_begin; i < i_end; ++i) {
          row_fill(i, j_begin, j_end, out + (i - i_begin) * ldo);
        }
      },
      config);
}

KMedoidsResult KMedoids(size_t n, const KMedoidsTileFill& tile_fill,
                        const KMedoidsConfig& config) {
  TRACLUS_CHECK_GE(config.k, 1);
  TRACLUS_CHECK_GE(n, static_cast<size_t>(config.k));
  const int k = config.k;
  common::Rng rng(config.seed);

  // Cache the (symmetric) distance matrix; n is small for whole-trajectory
  // use, but the entries (e.g. DTW warps) can be individually expensive, so
  // the fill is spread across the pool. The chunk owning rows [lo, hi)
  // requests kFillTileRows-row tiles over the shared column range
  // [ib+1, n) — tile-capable fillers reuse each candidate block across the
  // rows — then copies each row's upper stripe d[i][i+1..n) out of the tile
  // and writes the mirrored column. The chunk owning row i writes d[i][j]
  // and d[j][i] for every j > i: one writer per element, so the matrix is
  // identical for every thread count.
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  common::SharedPool(config.num_threads)
      .ParallelForChunked(0, n, [&](size_t lo, size_t hi) {
        std::vector<double> tile;
        for (size_t ib = lo; ib < hi; ib += kFillTileRows) {
          const size_t ie = std::min(hi, ib + kFillTileRows);
          const size_t j0 = ib + 1;
          if (j0 >= n) continue;
          const size_t width = n - j0;
          tile.resize((ie - ib) * width);
          tile_fill(ib, ie, j0, n, tile.data(), width);
          for (size_t i = ib; i < ie; ++i) {
            if (i + 1 >= n) continue;
            const double* row = tile.data() + (i - ib) * width;
            for (size_t j = i + 1; j < n; ++j) {
              d[i][j] = row[j - j0];
              d[j][i] = d[i][j];
            }
          }
        }
      });

  KMedoidsResult out;
  // k-medoids++ seeding: first medoid random, then proportional-to-distance².
  out.medoids.push_back(static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
  while (out.medoids.size() < static_cast<size_t>(k)) {
    std::vector<double> w(n, 0.0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const size_t mi : out.medoids) nearest = std::min(nearest, d[i][mi]);
      w[i] = nearest * nearest;
      total += w[i];
    }
    size_t pick = 0;
    if (total > 0.0) {
      double target = rng.Uniform(0.0, total);
      for (size_t i = 0; i < n; ++i) {
        target -= w[i];
        if (target <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    if (std::find(out.medoids.begin(), out.medoids.end(), pick) ==
        out.medoids.end()) {
      out.medoids.push_back(pick);
    }
  }

  out.assignments.assign(n, 0);
  auto assign = [&]() {
    double cost = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_k = 0;
      for (int c = 0; c < k; ++c) {
        if (d[i][out.medoids[c]] < best) {
          best = d[i][out.medoids[c]];
          best_k = c;
        }
      }
      out.assignments[i] = best_k;
      cost += best;
    }
    return cost;
  };

  out.total_cost = assign();
  for (int it = 0; it < config.max_iterations; ++it) {
    ++out.iterations;
    bool changed = false;
    // Medoid update: within each cluster, pick the member minimizing the sum
    // of distances to the rest of the cluster.
    for (int c = 0; c < k; ++c) {
      double best_sum = std::numeric_limits<double>::infinity();
      size_t best_m = out.medoids[c];
      for (size_t cand = 0; cand < n; ++cand) {
        if (out.assignments[cand] != c) continue;
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
          if (out.assignments[i] == c) sum += d[cand][i];
        }
        if (sum < best_sum) {
          best_sum = sum;
          best_m = cand;
        }
      }
      if (best_m != out.medoids[c]) {
        out.medoids[c] = best_m;
        changed = true;
      }
    }
    const double cost = assign();
    if (!changed) break;
    out.total_cost = cost;
  }
  out.total_cost = assign();
  return out;
}

KMedoidsResult KMedoidsOverSegments(const traj::SegmentStore& store,
                                    const distance::SegmentDistance& dist,
                                    const KMedoidsConfig& config,
                                    distance::BatchKernel kernel) {
  return KMedoids(
      store.size(),
      [&store, &dist, kernel](size_t i_begin, size_t i_end, size_t j_begin,
                              size_t j_end, double* out, size_t ldo) {
        distance::DistanceTileRange(store, dist, i_begin, i_end, j_begin,
                                    j_end, out, ldo, kernel);
      },
      config);
}

}  // namespace traclus::baseline
