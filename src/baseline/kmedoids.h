#ifndef TRACLUS_BASELINE_KMEDOIDS_H_
#define TRACLUS_BASELINE_KMEDOIDS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace traclus::baseline {

/// Configuration of the k-medoids clusterer.
struct KMedoidsConfig {
  int k = 3;
  int max_iterations = 50;
  uint64_t seed = 11;
  /// Worker threads for the upfront pairwise distance matrix (0 = hardware
  /// concurrency, 1 = serial). The distance callback must then be safe to
  /// invoke concurrently — true for the warping/trajectory distances, which
  /// are pure functions. Seeding and iteration stay serial (they are cheap
  /// and RNG-ordered), so results are identical for every value.
  int num_threads = 1;
};

/// k-medoids result.
struct KMedoidsResult {
  std::vector<size_t> medoids;   ///< Indices of the k medoid objects.
  std::vector<int> assignments;  ///< Per-object medoid index in [0, k).
  double total_cost = 0.0;       ///< Σ distance(object, its medoid).
  int iterations = 0;
};

/// PAM-style k-medoids over an arbitrary object set given by a pairwise
/// distance callback (objects are identified by index, 0..n−1).
///
/// Combined with a whole-trajectory distance (DTW/LCSS/EDR) this forms the
/// generic "cluster trajectories as a whole" strawman of §1: a reasonable
/// distance-based whole-trajectory clusterer that still cannot isolate common
/// sub-trajectories. Greedy k-medoids++ seeding, then alternating
/// assignment/medoid-update until stable. Deterministic for a fixed seed.
KMedoidsResult KMedoids(size_t n,
                        const std::function<double(size_t, size_t)>& dist,
                        const KMedoidsConfig& config);

}  // namespace traclus::baseline

#endif  // TRACLUS_BASELINE_KMEDOIDS_H_
