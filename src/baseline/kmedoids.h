#ifndef TRACLUS_BASELINE_KMEDOIDS_H_
#define TRACLUS_BASELINE_KMEDOIDS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "distance/batch_kernels.h"
#include "distance/segment_distance.h"
#include "traj/segment_store.h"

namespace traclus::baseline {

/// Configuration of the k-medoids clusterer.
struct KMedoidsConfig {
  int k = 3;
  int max_iterations = 50;
  uint64_t seed = 11;
  /// Worker threads for the upfront pairwise distance matrix (0 = hardware
  /// concurrency, 1 = serial). The distance callback must then be safe to
  /// invoke concurrently — true for the warping/trajectory distances, which
  /// are pure functions. Seeding and iteration stay serial (they are cheap
  /// and RNG-ordered), so results are identical for every value.
  int num_threads = 1;
};

/// k-medoids result.
struct KMedoidsResult {
  std::vector<size_t> medoids;   ///< Indices of the k medoid objects.
  std::vector<int> assignments;  ///< Per-object medoid index in [0, k).
  double total_cost = 0.0;       ///< Σ distance(object, its medoid).
  int iterations = 0;
};

/// Batched matrix-fill callback: writes dist(i, j) for every j in
/// [j_begin, j_end) into out[0 .. j_end − j_begin). Lets distance sources
/// that can evaluate one-vs-many batches (the segment-store kernels, a
/// vectorized DTW, a remote service) fill a whole row stripe per call
/// instead of being driven pair by pair. `j_begin` may be ≤ i (the tiled
/// fill below hands every row of a block the same column range); the filler
/// must handle it (any symmetric distance with dist(i, i) = 0 does).
using KMedoidsRowFill =
    std::function<void(size_t i, size_t j_begin, size_t j_end, double* out)>;

/// Tiled matrix-fill callback: writes dist(i, j) for every i in
/// [i_begin, i_end) and j in [j_begin, j_end) into
/// out[(i − i_begin) * ldo + (j − j_begin)] — the many-vs-many shape of
/// distance::DistanceTileRange, which lets the segment-store kernels reuse
/// each candidate block across all rows of the tile.
using KMedoidsTileFill =
    std::function<void(size_t i_begin, size_t i_end, size_t j_begin,
                       size_t j_end, double* out, size_t ldo)>;

/// PAM-style k-medoids over an arbitrary object set given by a pairwise
/// distance callback (objects are identified by index, 0..n−1).
///
/// Combined with a whole-trajectory distance (DTW/LCSS/EDR) this forms the
/// generic "cluster trajectories as a whole" strawman of §1: a reasonable
/// distance-based whole-trajectory clusterer that still cannot isolate common
/// sub-trajectories. Greedy k-medoids++ seeding, then alternating
/// assignment/medoid-update until stable. Deterministic for a fixed seed.
KMedoidsResult KMedoids(size_t n,
                        const std::function<double(size_t, size_t)>& dist,
                        const KMedoidsConfig& config);

/// Row-batched overload: adapts `row_fill` onto the tiled overload below
/// (one row per tile row). The per-pair overload above delegates here, so
/// all overloads share one fill/iterate implementation and produce identical
/// results for identical distances.
KMedoidsResult KMedoids(size_t n, const KMedoidsRowFill& row_fill,
                        const KMedoidsConfig& config);

/// Tiled overload — the primary implementation: the upfront symmetric
/// distance matrix is filled in row-block × column-stripe tiles (upper
/// triangle plus the tile's sub-diagonal corner, which is discarded; the
/// mirror is written by the filler loop, one writer per element, so the
/// matrix is identical for every thread count).
KMedoidsResult KMedoids(size_t n, const KMedoidsTileFill& tile_fill,
                        const KMedoidsConfig& config);

/// k-medoids over the segments of a SegmentStore with the §2.3 TRACLUS
/// distance: the matrix fill streams through the many-vs-many tile kernel
/// (distance::DistanceTileRange) instead of the pair-at-a-time path.
/// `kernel` selects scalar/SIMD; assignments are identical for every choice
/// (the kernels are bit-identical).
KMedoidsResult KMedoidsOverSegments(
    const traj::SegmentStore& store, const distance::SegmentDistance& dist,
    const KMedoidsConfig& config,
    distance::BatchKernel kernel = distance::BatchKernel::kAuto);

}  // namespace traclus::baseline

#endif  // TRACLUS_BASELINE_KMEDOIDS_H_
