#ifndef TRACLUS_BASELINE_KMEDOIDS_H_
#define TRACLUS_BASELINE_KMEDOIDS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "distance/batch_kernels.h"
#include "distance/segment_distance.h"
#include "traj/segment_store.h"

namespace traclus::baseline {

/// Configuration of the k-medoids clusterer.
struct KMedoidsConfig {
  int k = 3;
  int max_iterations = 50;
  uint64_t seed = 11;
  /// Worker threads for the upfront pairwise distance matrix (0 = hardware
  /// concurrency, 1 = serial). The distance callback must then be safe to
  /// invoke concurrently — true for the warping/trajectory distances, which
  /// are pure functions. Seeding and iteration stay serial (they are cheap
  /// and RNG-ordered), so results are identical for every value.
  int num_threads = 1;
};

/// k-medoids result.
struct KMedoidsResult {
  std::vector<size_t> medoids;   ///< Indices of the k medoid objects.
  std::vector<int> assignments;  ///< Per-object medoid index in [0, k).
  double total_cost = 0.0;       ///< Σ distance(object, its medoid).
  int iterations = 0;
};

/// Batched matrix-fill callback: writes dist(i, j) for every j in
/// [j_begin, j_end) into out[0 .. j_end − j_begin). Lets distance sources
/// that can evaluate one-vs-many batches (the segment-store kernels, a
/// vectorized DTW, a remote service) fill a whole row stripe per call
/// instead of being driven pair by pair.
using KMedoidsRowFill =
    std::function<void(size_t i, size_t j_begin, size_t j_end, double* out)>;

/// PAM-style k-medoids over an arbitrary object set given by a pairwise
/// distance callback (objects are identified by index, 0..n−1).
///
/// Combined with a whole-trajectory distance (DTW/LCSS/EDR) this forms the
/// generic "cluster trajectories as a whole" strawman of §1: a reasonable
/// distance-based whole-trajectory clusterer that still cannot isolate common
/// sub-trajectories. Greedy k-medoids++ seeding, then alternating
/// assignment/medoid-update until stable. Deterministic for a fixed seed.
KMedoidsResult KMedoids(size_t n,
                        const std::function<double(size_t, size_t)>& dist,
                        const KMedoidsConfig& config);

/// Row-batched overload: the upfront symmetric distance matrix is filled one
/// row stripe at a time through `row_fill` (upper triangle only; the mirror
/// is written by the filler loop). The per-pair overload above delegates
/// here, so both share one fill/iterate implementation and produce identical
/// results for identical distances.
KMedoidsResult KMedoids(size_t n, const KMedoidsRowFill& row_fill,
                        const KMedoidsConfig& config);

/// k-medoids over the segments of a SegmentStore with the §2.3 TRACLUS
/// distance: the matrix fill streams each row through the batched distance
/// kernels (distance::DistanceBatchRange) instead of the pair-at-a-time
/// path. `kernel` selects scalar/SIMD; assignments are identical for every
/// choice (the kernels are bit-identical).
KMedoidsResult KMedoidsOverSegments(
    const traj::SegmentStore& store, const distance::SegmentDistance& dist,
    const KMedoidsConfig& config,
    distance::BatchKernel kernel = distance::BatchKernel::kAuto);

}  // namespace traclus::baseline

#endif  // TRACLUS_BASELINE_KMEDOIDS_H_
