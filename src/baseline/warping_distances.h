#ifndef TRACLUS_BASELINE_WARPING_DISTANCES_H_
#define TRACLUS_BASELINE_WARPING_DISTANCES_H_

#include "traj/trajectory.h"

namespace traclus::baseline {

/// Whole-trajectory similarity measures from the related work (§6): DTW [12],
/// LCSS [20], and EDR [5]. The paper's point stands for all three — they
/// compare trajectories in their entirety, so "the distance could be large
/// although some portions of trajectories are very similar". They serve as
/// baselines for the Fig. 1 framework-comparison bench.

/// Dynamic time warping distance: minimum total point-to-point distance over
/// monotone alignments of the two sequences. O(n·m) time, O(min(n,m)) space.
/// Both trajectories must be non-empty.
double DtwDistance(const traj::Trajectory& a, const traj::Trajectory& b);

/// LCSS similarity count (Vlachos et al.): length of the longest common
/// subsequence where points match if both coordinate differences are < eps
/// and indices differ by at most `delta` (delta < 0 disables the index
/// constraint).
size_t LcssLength(const traj::Trajectory& a, const traj::Trajectory& b,
                  double eps, int delta = -1);

/// LCSS distance in [0, 1]: 1 − LCSS / min(|a|, |b|).
double LcssDistance(const traj::Trajectory& a, const traj::Trajectory& b,
                    double eps, int delta = -1);

/// Edit Distance on Real sequences (Chen et al.): edit distance where a match
/// (both coordinate differences ≤ eps) costs 0 and any edit costs 1.
double EdrDistance(const traj::Trajectory& a, const traj::Trajectory& b,
                   double eps);

}  // namespace traclus::baseline

#endif  // TRACLUS_BASELINE_WARPING_DISTANCES_H_
