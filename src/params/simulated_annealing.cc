#include "params/simulated_annealing.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace traclus::params {

namespace {

// Reflects x into [lo, hi] (billiard reflection handles overshoot of any size).
double Reflect(double x, double lo, double hi) {
  const double width = hi - lo;
  if (width <= 0.0) return lo;
  double t = std::fmod(x - lo, 2.0 * width);
  if (t < 0.0) t += 2.0 * width;
  return (t <= width) ? lo + t : hi - (t - width);
}

}  // namespace

AnnealingResult Minimize1D(const std::function<double(double)>& objective,
                           const AnnealingOptions& options) {
  TRACLUS_CHECK_LT(options.lo, options.hi);
  TRACLUS_CHECK_GT(options.iterations, 0);

  common::Rng rng(options.seed);
  const double width = options.hi - options.lo;
  const double step = options.step_fraction * width;

  double x = options.lo + 0.5 * width;
  double fx = objective(x);
  AnnealingResult result{x, fx, 1};
  double temp = options.initial_temp;

  for (int it = 0; it < options.iterations; ++it) {
    const double candidate = Reflect(x + rng.Gaussian(0.0, step), options.lo,
                                     options.hi);
    const double fc = objective(candidate);
    ++result.evaluations;
    const double delta = fc - fx;
    if (delta <= 0.0 ||
        (temp > 0.0 && rng.Uniform(0.0, 1.0) < std::exp(-delta / temp))) {
      x = candidate;
      fx = fc;
    }
    if (fx < result.best_value) {
      result.best_value = fx;
      result.best_x = x;
    }
    temp *= options.cooling;
  }
  return result;
}

}  // namespace traclus::params
