#include "params/entropy.h"

#include <algorithm>
#include <cmath>

namespace traclus::params {

namespace {

template <typename T>
double EntropyOfMasses(const std::vector<T>& masses) {
  double total = 0.0;
  for (const T m : masses) total += static_cast<double>(m);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const T m : masses) {
    if (m <= T{0}) continue;
    const double p = static_cast<double>(m) / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double NeighborhoodEntropy(const std::vector<size_t>& neighborhood_sizes) {
  return EntropyOfMasses(neighborhood_sizes);
}

double NeighborhoodEntropy(const std::vector<double>& neighborhood_masses) {
  return EntropyOfMasses(neighborhood_masses);
}

std::vector<size_t> NeighborhoodSizes(const cluster::NeighborhoodProvider& provider,
                                      double eps) {
  std::vector<size_t> sizes(provider.size());
  for (size_t i = 0; i < provider.size(); ++i) {
    sizes[i] = provider.Neighbors(i, eps).size();
  }
  return sizes;
}

NeighborhoodProfile::NeighborhoodProfile(
    const std::vector<geom::Segment>& segments,
    const distance::SegmentDistance& dist, std::vector<double> eps_grid)
    : eps_grid_(std::move(eps_grid)) {
  TRACLUS_CHECK(!eps_grid_.empty());
  TRACLUS_CHECK(std::is_sorted(eps_grid_.begin(), eps_grid_.end()));
  const size_t n = segments.size();
  const size_t g = eps_grid_.size();

  // delta[gi][i] counts pairs whose distance first fits at grid position gi.
  std::vector<std::vector<size_t>> delta(g, std::vector<size_t>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d = dist(segments[i], segments[j]);
      const auto it =
          std::lower_bound(eps_grid_.begin(), eps_grid_.end(), d);
      if (it == eps_grid_.end()) continue;  // Farther than the largest ε.
      const size_t gi = static_cast<size_t>(it - eps_grid_.begin());
      ++delta[gi][i];
      ++delta[gi][j];
    }
  }

  // counts_[gi][i] = 1 (self) + Σ_{g' ≤ gi} delta[g'][i].
  counts_.assign(g, std::vector<size_t>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    size_t running = 1;
    for (size_t gi = 0; gi < g; ++gi) {
      running += delta[gi][i];
      counts_[gi][i] = running;
    }
  }
}

double NeighborhoodProfile::EntropyAt(size_t g) const {
  return NeighborhoodEntropy(SizesAt(g));
}

double NeighborhoodProfile::AvgNeighborhoodSizeAt(size_t g) const {
  const auto& sizes = SizesAt(g);
  if (sizes.empty()) return 0.0;
  double total = 0.0;
  for (const size_t s : sizes) total += static_cast<double>(s);
  return total / static_cast<double>(sizes.size());
}

size_t NeighborhoodProfile::MinEntropyPosition() const {
  size_t best = 0;
  double best_h = EntropyAt(0);
  for (size_t g = 1; g < grid_size(); ++g) {
    const double h = EntropyAt(g);
    if (h < best_h) {
      best_h = h;
      best = g;
    }
  }
  return best;
}

}  // namespace traclus::params
