#include "params/entropy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "distance/batch_kernels.h"

namespace traclus::params {

namespace {

constexpr size_t kDefaultStagingBlock = size_t{64} * 1024;

/// Query rows per distance tile of the profile sweep. The candidate slice is
/// reused across this many rows while hot; the sub-diagonal corner of the
/// first slice each row block touches is evaluated but never bucketed
/// (~kTileRows²/2 wasted entries per block — noise next to the O(n²) sweep).
constexpr size_t kTileRows = 16;

/// Candidate columns per distance tile; bounds the scratch buffer at
/// kTileRows × kRowSlice doubles.
constexpr size_t kRowSlice = 1024;

/// Tiled upper-triangle sweep over leading rows [lo, hi): evaluates
/// kTileRows × kRowSlice blocks through the many-vs-many tile kernel and
/// invokes visit(i, j, d) for every pair i < j with leading index in
/// [lo, hi), in (i, then j) ascending order. Distances are bit-identical to
/// the per-pair path, so any bucketing built on top is unchanged.
template <typename VisitFn>
void SweepUpperTriangle(const traj::SegmentStore& store,
                        const distance::SegmentDistance& dist,
                        distance::BatchKernel kernel, size_t lo, size_t hi,
                        size_t n, const VisitFn& visit) {
  std::vector<double> tile(kTileRows * kRowSlice);
  for (size_t ib = lo; ib < hi; ib += kTileRows) {
    const size_t ie = std::min(hi, ib + kTileRows);
    for (size_t jb = ib + 1; jb < n; jb += kRowSlice) {
      const size_t je = std::min(n, jb + kRowSlice);
      const size_t width = je - jb;
      distance::DistanceTileRange(store, dist, ib, ie, jb, je, tile.data(),
                                  width, kernel);
      for (size_t i = ib; i < ie; ++i) {
        const double* row = tile.data() + (i - ib) * width;
        for (size_t j = std::max(i + 1, jb); j < je; ++j) {
          visit(i, j, row[j - jb]);
        }
      }
    }
  }
}

template <typename T>
double EntropyOfMasses(const std::vector<T>& masses) {
  double total = 0.0;
  for (const T m : masses) total += static_cast<double>(m);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const T m : masses) {
    if (m <= T{0}) continue;
    const double p = static_cast<double>(m) / total;
    h -= p * std::log2(p);
  }
  return h;
}

// Streams (grid position, segment) count increments into the shared delta
// table in bounded blocks: a worker never holds more than `cap` pending
// increments, and a full (or final) block is scatter-added under the mutex.
// Addition commutes, so the merged counts are independent of flush order and
// interleaving — bit-identical for every thread count and block size.
class BlockedIncrementSink {
 public:
  BlockedIncrementSink(std::vector<std::vector<size_t>>& delta,
                       common::Mutex& mu, size_t cap)
      : delta_(delta), mu_(mu), cap_(std::max<size_t>(1, cap)) {
    buffer_.reserve(cap_);
  }
  ~BlockedIncrementSink() { Flush(); }

  void Add(uint32_t grid_pos, uint32_t segment) {
    buffer_.emplace_back(grid_pos, segment);
    if (buffer_.size() >= cap_) Flush();
  }

  void Flush() TRACLUS_EXCLUDES(mu_) {
    if (buffer_.empty()) return;
    common::MutexLock lock(mu_);
    for (const auto& [g, i] : buffer_) ++delta_[g][i];
    buffer_.clear();
  }

 private:
  /// The shared merge table; every worker's sink aliases the same vectors,
  /// so scatter-adds happen only under mu_.
  std::vector<std::vector<size_t>>& delta_ TRACLUS_GUARDED_BY(mu_);
  common::Mutex& mu_;
  const size_t cap_;
  /// Thread-private pending increments; no guard needed.
  std::vector<std::pair<uint32_t, uint32_t>> buffer_;
};

}  // namespace

double NeighborhoodEntropy(const std::vector<size_t>& neighborhood_sizes) {
  return EntropyOfMasses(neighborhood_sizes);
}

double NeighborhoodEntropy(const std::vector<double>& neighborhood_masses) {
  return EntropyOfMasses(neighborhood_masses);
}

std::vector<size_t> NeighborhoodSizes(
    const cluster::NeighborhoodProvider& provider, double eps,
    int num_threads) {
  const int threads = common::ResolveNumThreads(num_threads);
  if (threads > 1) {
    // Size-only batch across the pool: no list is retained past counting.
    return provider.AllNeighborhoodSizes(eps, common::SharedPool(threads));
  }
  std::vector<size_t> sizes(provider.size());
  for (size_t i = 0; i < provider.size(); ++i) {
    sizes[i] = provider.Neighbors(i, eps).size();
  }
  return sizes;
}

NeighborhoodProfile::NeighborhoodProfile(
    const traj::SegmentStore& store, const distance::SegmentDistance& dist,
    std::vector<double> eps_grid, int num_threads, size_t staging_block,
    distance::BatchKernel kernel)
    : eps_grid_(std::move(eps_grid)) {
  TRACLUS_CHECK(!eps_grid_.empty());
  TRACLUS_CHECK(std::is_sorted(eps_grid_.begin(), eps_grid_.end()));
  const size_t n = store.size();
  const size_t g = eps_grid_.size();

  // delta[gi][i] counts pairs whose distance first fits at grid position gi.
  std::vector<std::vector<size_t>> delta(g, std::vector<size_t>(n, 0));
  const int threads = common::ResolveNumThreads(num_threads);
  if (threads == 1) {
    // Serial: tile the upper triangle, bucket straight into delta.
    SweepUpperTriangle(store, dist, kernel, 0, n, n,
                       [&](size_t i, size_t j, double d) {
                         const auto it = std::lower_bound(
                             eps_grid_.begin(), eps_grid_.end(), d);
                         if (it == eps_grid_.end()) return;  // > largest ε.
                         const size_t gi =
                             static_cast<size_t>(it - eps_grid_.begin());
                         ++delta[gi][i];
                         ++delta[gi][j];
                       });
  } else {
    // One contiguous leading-index band per worker. Row i owns n-1-i pairs —
    // cumulative work up to row x is ~nx - x²/2 — so equal-work boundaries
    // follow x_k = n(1 - sqrt(1 - k/K)). Each band streams its increments
    // through a bounded BlockedIncrementSink rather than staging a g × n
    // count buffer, so peak extra memory is O(threads · block), and the
    // commuting scatter-adds keep the merged counts scheduling-independent.
    TRACLUS_CHECK(n <= std::numeric_limits<uint32_t>::max());
    const size_t block =
        staging_block > 0 ? staging_block : kDefaultStagingBlock;
    const size_t bands = std::min<size_t>(static_cast<size_t>(threads), n);
    std::vector<size_t> bound(bands + 1, n);
    bound[0] = 0;
    for (size_t k = 1; k < bands; ++k) {
      const double frac = static_cast<double>(k) / static_cast<double>(bands);
      const size_t x = static_cast<size_t>(
          static_cast<double>(n) * (1.0 - std::sqrt(1.0 - frac)));
      bound[k] = std::max(bound[k - 1], std::min(x, n));
    }
    common::Mutex merge_mu;
    common::SharedPool(threads).ParallelFor(0, bands, [&](size_t band) {
      const size_t lo = bound[band];
      const size_t hi = bound[band + 1];
      if (lo >= hi) return;
      BlockedIncrementSink sink(delta, merge_mu, block);
      SweepUpperTriangle(store, dist, kernel, lo, hi, n,
                         [&](size_t i, size_t j, double d) {
                           const auto it = std::lower_bound(
                               eps_grid_.begin(), eps_grid_.end(), d);
                           if (it == eps_grid_.end()) return;  // > largest ε.
                           const auto gi =
                               static_cast<uint32_t>(it - eps_grid_.begin());
                           sink.Add(gi, static_cast<uint32_t>(i));
                           sink.Add(gi, static_cast<uint32_t>(j));
                         });
    });
  }

  // counts_[gi][i] = 1 (self) + Σ_{g' ≤ gi} delta[g'][i].
  counts_.assign(g, std::vector<size_t>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    size_t running = 1;
    for (size_t gi = 0; gi < g; ++gi) {
      running += delta[gi][i];
      counts_[gi][i] = running;
    }
  }
}

double NeighborhoodProfile::EntropyAt(size_t g) const {
  return NeighborhoodEntropy(SizesAt(g));
}

double NeighborhoodProfile::AvgNeighborhoodSizeAt(size_t g) const {
  const auto& sizes = SizesAt(g);
  if (sizes.empty()) return 0.0;
  double total = 0.0;
  for (const size_t s : sizes) total += static_cast<double>(s);
  return total / static_cast<double>(sizes.size());
}

size_t NeighborhoodProfile::MinEntropyPosition() const {
  size_t best = 0;
  double best_h = EntropyAt(0);
  for (size_t g = 1; g < grid_size(); ++g) {
    const double h = EntropyAt(g);
    if (h < best_h) {
      best_h = h;
      best = g;
    }
  }
  return best;
}

}  // namespace traclus::params
