#include "params/entropy.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/thread_pool.h"

namespace traclus::params {

namespace {

template <typename T>
double EntropyOfMasses(const std::vector<T>& masses) {
  double total = 0.0;
  for (const T m : masses) total += static_cast<double>(m);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const T m : masses) {
    if (m <= T{0}) continue;
    const double p = static_cast<double>(m) / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double NeighborhoodEntropy(const std::vector<size_t>& neighborhood_sizes) {
  return EntropyOfMasses(neighborhood_sizes);
}

double NeighborhoodEntropy(const std::vector<double>& neighborhood_masses) {
  return EntropyOfMasses(neighborhood_masses);
}

std::vector<size_t> NeighborhoodSizes(
    const cluster::NeighborhoodProvider& provider, double eps,
    int num_threads) {
  const int threads = common::ResolveNumThreads(num_threads);
  if (threads > 1) {
    // Size-only batch across the pool: no list is retained past counting.
    return provider.AllNeighborhoodSizes(eps, common::SharedPool(threads));
  }
  std::vector<size_t> sizes(provider.size());
  for (size_t i = 0; i < provider.size(); ++i) {
    sizes[i] = provider.Neighbors(i, eps).size();
  }
  return sizes;
}

NeighborhoodProfile::NeighborhoodProfile(
    const std::vector<geom::Segment>& segments,
    const distance::SegmentDistance& dist, std::vector<double> eps_grid,
    int num_threads)
    : eps_grid_(std::move(eps_grid)) {
  TRACLUS_CHECK(!eps_grid_.empty());
  TRACLUS_CHECK(std::is_sorted(eps_grid_.begin(), eps_grid_.end()));
  const size_t n = segments.size();
  const size_t g = eps_grid_.size();

  // delta[gi][i] counts pairs whose distance first fits at grid position gi.
  std::vector<std::vector<size_t>> delta(g, std::vector<size_t>(n, 0));
  const int threads = common::ResolveNumThreads(num_threads);
  if (threads == 1) {
    // Serial: bucket straight into delta, no staging buffer.
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const double d = dist(segments[i], segments[j]);
        const auto it = std::lower_bound(eps_grid_.begin(), eps_grid_.end(), d);
        if (it == eps_grid_.end()) continue;  // Farther than the largest ε.
        const size_t gi = static_cast<size_t>(it - eps_grid_.begin());
        ++delta[gi][i];
        ++delta[gi][j];
      }
    }
  } else {
    // One contiguous leading-index band per worker (not the pool's default 4x
    // oversubscription: each band carries a g x n staging buffer and an
    // O(g*n) locked merge, so fewer, balanced bands beat many small ones).
    // Row i owns n-1-i pairs — cumulative work up to row x is ~nx - x²/2 —
    // so equal-work boundaries follow x_k = n(1 - sqrt(1 - k/K)). Integer
    // addition commutes, making the merged counts scheduling-independent.
    const size_t bands = std::min<size_t>(static_cast<size_t>(threads), n);
    std::vector<size_t> bound(bands + 1, n);
    bound[0] = 0;
    for (size_t k = 1; k < bands; ++k) {
      const double frac = static_cast<double>(k) / static_cast<double>(bands);
      const size_t x = static_cast<size_t>(
          static_cast<double>(n) * (1.0 - std::sqrt(1.0 - frac)));
      bound[k] = std::max(bound[k - 1], std::min(x, n));
    }
    std::mutex merge_mu;
    common::SharedPool(threads).ParallelFor(0, bands, [&](size_t band) {
      const size_t lo = bound[band];
      const size_t hi = bound[band + 1];
      if (lo >= hi) return;
      std::vector<std::vector<size_t>> local(g, std::vector<size_t>(n, 0));
      for (size_t i = lo; i < hi; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          const double d = dist(segments[i], segments[j]);
          const auto it =
              std::lower_bound(eps_grid_.begin(), eps_grid_.end(), d);
          if (it == eps_grid_.end()) continue;  // Farther than the largest ε.
          const size_t gi = static_cast<size_t>(it - eps_grid_.begin());
          ++local[gi][i];
          ++local[gi][j];
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      for (size_t gi = 0; gi < g; ++gi) {
        for (size_t i = 0; i < n; ++i) delta[gi][i] += local[gi][i];
      }
    });
  }

  // counts_[gi][i] = 1 (self) + Σ_{g' ≤ gi} delta[g'][i].
  counts_.assign(g, std::vector<size_t>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    size_t running = 1;
    for (size_t gi = 0; gi < g; ++gi) {
      running += delta[gi][i];
      counts_[gi][i] = running;
    }
  }
}

double NeighborhoodProfile::EntropyAt(size_t g) const {
  return NeighborhoodEntropy(SizesAt(g));
}

double NeighborhoodProfile::AvgNeighborhoodSizeAt(size_t g) const {
  const auto& sizes = SizesAt(g);
  if (sizes.empty()) return 0.0;
  double total = 0.0;
  for (const size_t s : sizes) total += static_cast<double>(s);
  return total / static_cast<double>(sizes.size());
}

size_t NeighborhoodProfile::MinEntropyPosition() const {
  size_t best = 0;
  double best_h = EntropyAt(0);
  for (size_t g = 1; g < grid_size(); ++g) {
    const double h = EntropyAt(g);
    if (h < best_h) {
      best_h = h;
      best = g;
    }
  }
  return best;
}

}  // namespace traclus::params
