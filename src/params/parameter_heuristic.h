#ifndef TRACLUS_PARAMS_PARAMETER_HEURISTIC_H_
#define TRACLUS_PARAMS_PARAMETER_HEURISTIC_H_

#include <vector>

#include "distance/batch_kernels.h"
#include "distance/segment_distance.h"
#include "geom/segment.h"
#include "params/entropy.h"
#include "params/simulated_annealing.h"
#include "traj/segment_store.h"

namespace traclus::params {

/// Output of the §4.4 parameter-selection heuristic.
struct ParameterEstimate {
  double eps = 0.0;                      ///< Entropy-minimal ε.
  double entropy = 0.0;                  ///< H(X) at that ε.
  double avg_neighborhood_size = 0.0;    ///< avg|Nε(L)| at that ε.
  /// MinLns search range: avg|Nε(L)| + 1 through + 3 (§4.4).
  double min_lns_low = 0.0;
  double min_lns_high = 0.0;
  /// The full entropy curve when grid search was used (for Fig. 16/19 plots).
  std::vector<double> grid_eps;
  std::vector<double> grid_entropy;
};

/// Options of the heuristic.
struct HeuristicOptions {
  /// ε search interval. hi must exceed lo.
  double eps_lo = 1.0;
  double eps_hi = 60.0;
  /// Number of grid points for the sweep (Fig. 16 uses integer ε 1..60).
  int grid_points = 60;
  /// When true, refines the grid minimum with simulated annealing (§4.4
  /// prescribes SA; the grid supplies both the plot and a good starting basin).
  bool refine_with_annealing = false;
  AnnealingOptions annealing;
  /// Worker threads for the O(n²) profile pass and the per-ε neighborhood
  /// batches (0 = hardware concurrency, 1 = serial). Estimates are identical
  /// for every value.
  int num_threads = 1;
  /// Bounded staging block (increment entries) of the parallel profile pass;
  /// see NeighborhoodProfile. 0 = default. Estimates are identical for every
  /// value.
  size_t staging_block = 0;
  /// Batch distance kernel of the O(n²) profile pass and the per-ε refine
  /// queries (scalar / AVX2 SIMD / auto). Estimates are identical for every
  /// choice.
  distance::BatchKernel kernel = distance::BatchKernel::kAuto;
};

/// Runs the §4.4 heuristic: finds the ε minimizing the neighborhood-size
/// entropy, records avg|Nε(L)| there, and derives the MinLns range
/// (avg + 1 .. avg + 3). Uses a NeighborhoodProfile for the grid sweep (one
/// O(n²) distance pass for the entire curve, through the store's
/// invariant-cached distance fast path).
ParameterEstimate EstimateParameters(const traj::SegmentStore& store,
                                     const distance::SegmentDistance& dist,
                                     const HeuristicOptions& options);

}  // namespace traclus::params

#endif  // TRACLUS_PARAMS_PARAMETER_HEURISTIC_H_
