#ifndef TRACLUS_PARAMS_ENTROPY_H_
#define TRACLUS_PARAMS_ENTROPY_H_

#include <cstddef>
#include <vector>

#include "cluster/neighborhood.h"
#include "distance/batch_kernels.h"
#include "distance/segment_distance.h"
#include "traj/segment_store.h"

namespace traclus::params {

/// Shannon entropy H(X) of the ε-neighborhood-size distribution, Formula (10):
/// p(x_i) = |Nε(x_i)| / Σ_j |Nε(x_j)|. The §4.4 heuristic selects the ε
/// minimizing this entropy — uniform |Nε| (all 1, or all n) maximizes it, a
/// skewed distribution (real clusters) lowers it.
///
/// `neighborhood_sizes` must be the exact |Nε(L)| of every segment (each ≥ 1:
/// a neighborhood contains its own segment). Returns 0 for an empty input.
double NeighborhoodEntropy(const std::vector<size_t>& neighborhood_sizes);

/// Weighted-count overload used with the §4.2 weighted extension.
double NeighborhoodEntropy(const std::vector<double>& neighborhood_masses);

/// Computes |Nε(L)| for all L at one ε through a neighborhood provider.
/// `num_threads` batches the queries across a pool (0 = hardware concurrency);
/// the result is identical for every value.
std::vector<size_t> NeighborhoodSizes(
    const cluster::NeighborhoodProvider& provider, double eps,
    int num_threads = 1);

/// Precomputed neighborhood-size profile over a whole grid of ε values.
///
/// The Fig. 16/19 entropy curves need |Nε(L)| for every segment at every ε in a
/// sweep. Querying an index once per (ε, L) costs O(grid · n · query); this
/// profile instead makes a single O(n²) pass over segment pairs, bucketing each
/// pairwise distance into the first grid cell that admits it and
/// suffix-summing, which answers the whole sweep at once. Exact, and typically
/// ~grid-size times faster than repeated queries for sweep workloads. The
/// pairwise pass reads the store's invariant-cached distance fast path.
class NeighborhoodProfile {
 public:
  /// `eps_grid` must be strictly increasing. O(n²) construction; the pairwise
  /// distance pass is spread over `num_threads` workers (0 = hardware
  /// concurrency). Each row's distances stream through the batched kernels
  /// (distance::DistanceBatchRange) in bounded blocks rather than one
  /// pair-at-a-time call per bucket insert; `kernel` selects scalar/SIMD
  /// (bit-identical values either way). Parallel workers do not stage whole
  /// grid × n count buffers: each streams its (grid position, segment)
  /// increments through a bounded block (`staging_block` entries, 0 =
  /// default 64 Ki) that is scatter-added into the shared counts under a
  /// lock when full — the same bounded-residency treatment the blocked
  /// DBSCAN batch path uses. Peak extra memory is
  /// O(workers · staging_block) instead of the former O(workers · grid · n).
  /// Integer addition commutes, so the profile is identical for every thread
  /// count, block size, and kernel.
  NeighborhoodProfile(
      const traj::SegmentStore& store, const distance::SegmentDistance& dist,
      std::vector<double> eps_grid, int num_threads = 1,
      size_t staging_block = 0,
      distance::BatchKernel kernel = distance::BatchKernel::kAuto);

  size_t grid_size() const { return eps_grid_.size(); }
  const std::vector<double>& eps_grid() const { return eps_grid_; }

  /// |Nε(L)| for every segment at grid position g.
  const std::vector<size_t>& SizesAt(size_t g) const {
    TRACLUS_DCHECK(g < counts_.size());
    return counts_[g];
  }

  /// H(X) at grid position g.
  double EntropyAt(size_t g) const;

  /// avg|Nε(L)| at grid position g (§4.4 uses this to set MinLns).
  double AvgNeighborhoodSizeAt(size_t g) const;

  /// Grid position with minimal entropy (ties: smaller ε).
  size_t MinEntropyPosition() const;

 private:
  std::vector<double> eps_grid_;
  /// counts_[g][i] = |N_{eps_grid_[g]}(L_i)|.
  std::vector<std::vector<size_t>> counts_;
};

}  // namespace traclus::params

#endif  // TRACLUS_PARAMS_ENTROPY_H_
