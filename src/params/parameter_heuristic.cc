#include "params/parameter_heuristic.h"

#include "cluster/neighborhood_index.h"
#include "common/logging.h"

namespace traclus::params {

ParameterEstimate EstimateParameters(const traj::SegmentStore& store,
                                     const distance::SegmentDistance& dist,
                                     const HeuristicOptions& options) {
  TRACLUS_CHECK_LT(options.eps_lo, options.eps_hi);
  TRACLUS_CHECK_GE(options.grid_points, 2);

  std::vector<double> grid(options.grid_points);
  const double step = (options.eps_hi - options.eps_lo) /
                      static_cast<double>(options.grid_points - 1);
  for (int i = 0; i < options.grid_points; ++i) {
    grid[i] = options.eps_lo + step * i;
  }

  NeighborhoodProfile profile(store, dist, grid, options.num_threads,
                              options.staging_block, options.kernel);
  ParameterEstimate est;
  est.grid_eps = grid;
  est.grid_entropy.reserve(grid.size());
  for (size_t g = 0; g < profile.grid_size(); ++g) {
    est.grid_entropy.push_back(profile.EntropyAt(g));
  }

  const size_t best = profile.MinEntropyPosition();
  est.eps = grid[best];
  est.entropy = est.grid_entropy[best];
  est.avg_neighborhood_size = profile.AvgNeighborhoodSizeAt(best);

  if (options.refine_with_annealing) {
    // Refine around the grid minimum with SA over a single-ε entropy objective
    // evaluated through the exact grid index (batched refine kernels inside).
    cluster::GridNeighborhoodIndex index(store, dist, /*cell_size=*/0.0,
                                         options.kernel);
    auto objective = [&](double eps) {
      return NeighborhoodEntropy(
          NeighborhoodSizes(index, eps, options.num_threads));
    };
    AnnealingOptions sa = options.annealing;
    // Search the ±2 grid-step basin around the grid minimum.
    sa.lo = std::max(options.eps_lo, est.eps - 2.0 * step);
    sa.hi = std::min(options.eps_hi, est.eps + 2.0 * step);
    if (sa.lo < sa.hi) {
      const AnnealingResult r = Minimize1D(objective, sa);
      if (r.best_value < est.entropy) {
        est.eps = r.best_x;
        est.entropy = r.best_value;
        const std::vector<size_t> sizes =
            NeighborhoodSizes(index, est.eps, options.num_threads);
        double total = 0.0;
        for (const size_t s : sizes) total += static_cast<double>(s);
        est.avg_neighborhood_size =
            sizes.empty() ? 0.0 : total / static_cast<double>(sizes.size());
      }
    }
  }

  est.min_lns_low = est.avg_neighborhood_size + 1.0;
  est.min_lns_high = est.avg_neighborhood_size + 3.0;
  return est;
}

}  // namespace traclus::params
