#ifndef TRACLUS_PARAMS_SIMULATED_ANNEALING_H_
#define TRACLUS_PARAMS_SIMULATED_ANNEALING_H_

#include <functional>

#include "common/rng.h"

namespace traclus::params {

/// Options of the 1-D simulated-annealing minimizer.
struct AnnealingOptions {
  double lo = 0.0;            ///< Lower bound of the search interval.
  double hi = 1.0;            ///< Upper bound of the search interval.
  double initial_temp = 1.0;  ///< Initial temperature.
  double cooling = 0.95;      ///< Geometric cooling factor per iteration.
  int iterations = 200;       ///< Proposal count.
  double step_fraction = 0.1; ///< Step stddev as a fraction of (hi−lo).
  uint64_t seed = 42;         ///< RNG seed (deterministic runs).
};

/// Result of a minimization.
struct AnnealingResult {
  double best_x = 0.0;
  double best_value = 0.0;
  int evaluations = 0;
};

/// Minimizes `objective` over [lo, hi] with simulated annealing (Kirkpatrick et
/// al.), the technique §4.4 prescribes for finding the entropy-minimal ε.
///
/// Standard Metropolis acceptance with Gaussian proposals reflected into the
/// interval. Deterministic for a fixed seed. The objective is treated as a
/// black box (entropy requires neighborhood queries; no gradients exist).
AnnealingResult Minimize1D(const std::function<double(double)>& objective,
                           const AnnealingOptions& options);

}  // namespace traclus::params

#endif  // TRACLUS_PARAMS_SIMULATED_ANNEALING_H_
