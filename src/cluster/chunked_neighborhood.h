#ifndef TRACLUS_CLUSTER_CHUNKED_NEIGHBORHOOD_H_
#define TRACLUS_CLUSTER_CHUNKED_NEIGHBORHOOD_H_

// ε-neighborhood providers over a ChunkedSegmentStore — the query side of
// the out-of-core grouping path.
//
// Both providers replicate their monolithic counterparts exactly:
//
//   * Candidate generation runs entirely on the chunked store's
//     always-resident catalog (per-segment MBRs, midpoints, half-lengths).
//     The grid is built from the same bboxes with the same cell-size
//     heuristic and the same insertion order as GridNeighborhoodIndex over
//     the merged store, so the cell population is identical.
//   * Refinement faults payload chunks on demand: candidates are grouped by
//     chunk, the query's own chunk refines through distance::EpsilonRefine
//     (which owns the Definition 4 self-inclusion case), and every other
//     chunk refines through distance::EpsilonRefineCross /
//     EpsilonRefineCrossRange — the same blocked prune → batch pipeline,
//     with cross-store scalar and AVX2 kernels. Chunk-local stores cache
//     bit-identical invariants, so each accepted/rejected decision — prune
//     included — matches the monolithic refine bit-for-bit, and the final
//     per-query sort makes the emitted order independent of chunk grouping.
//     Lists are therefore byte-identical to the monolithic provider's for
//     every chunk capacity and residency cap.
//
// Residency: one query pins at most two chunks at a time (the query's chunk
// and the candidate chunk being refined); the store's LRU cache bounds
// cache-owned residency at its cap throughout. A spill-file I/O failure
// while faulting a chunk is a process-level failure (the provider interface
// has no error channel); it aborts via TRACLUS_CHECK.
//
// Thread-safety contract: the providers hold no mutex and need no
// capability annotations because they own no shared mutable state — the
// grid and catalog references are immutable after construction, query
// scratch is thread_local or caller-owned, and concurrent chunk faults
// synchronize inside ChunkedSegmentStore (whose spill/LRU state is
// TRACLUS_GUARDED_BY its internal common::Mutex). Concurrent Neighbors()
// calls from pool workers are safe and byte-deterministic.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/neighborhood.h"
#include "geom/bbox.h"
#include "traj/chunked_store.h"

namespace traclus::cluster {

/// Grid-indexed exact ε-neighborhoods over a finalized ChunkedSegmentStore.
/// The chunked analogue of GridNeighborhoodIndex: same cells, same prunes,
/// byte-identical lists.
class ChunkedGridNeighborhood : public NeighborhoodProvider {
 public:
  /// `store` (finalized) and `dist` must outlive the provider. `cell_size`
  /// ≤ 0 selects the automatic heuristic (twice the mean catalog-MBR
  /// extent); `kernel` selects the refinement kernel for same-chunk and
  /// cross-chunk batches alike (results identical for every choice by the
  /// SIMD lane-equivalence invariant).
  ChunkedGridNeighborhood(
      const traj::ChunkedSegmentStore& store,
      const distance::SegmentDistance& dist, double cell_size = 0.0,
      distance::BatchKernel kernel = distance::BatchKernel::kAuto);

  /// Per-caller query state: dedup stamps, the gathered global candidates,
  /// and chunk-local staging for the refine calls. One scratch must never be
  /// used by two threads at once.
  struct QueryScratch {
    std::vector<uint32_t> visit_stamp;
    uint32_t stamp = 0;
    std::vector<size_t> candidates;
    std::vector<size_t> local;
  };

  std::vector<size_t> Neighbors(size_t query_index, double eps) const override;

  /// Thread-safe query against caller-owned scratch.
  std::vector<size_t> Neighbors(size_t query_index, double eps,
                                QueryScratch* scratch) const;

  std::vector<std::vector<size_t>> AllNeighbors(
      double eps, common::ThreadPool& pool) const override;
  std::vector<size_t> AllNeighborhoodSizes(
      double eps, common::ThreadPool& pool) const override;
  std::vector<std::vector<size_t>> NeighborsBatch(
      const std::vector<size_t>& queries, double eps,
      common::ThreadPool& pool) const override;

  size_t size() const override { return store_.size(); }

  double cell_size() const { return cell_size_; }
  size_t NumCells() const { return cells_.size(); }

 private:
  struct CellCoord {
    int64_t x;
    int64_t y;
    int64_t z;
  };

  CellCoord CellOf(double x, double y, double z) const;
  static uint64_t CellKey(const CellCoord& c);

  const traj::ChunkedSegmentStore& store_;
  const distance::SegmentDistance& dist_;
  distance::BatchKernel kernel_;
  double cell_size_ = 1.0;
  int dims_ = 2;
  std::unordered_map<uint64_t, std::vector<size_t>> cells_;
};

/// Whole-database-scan provider over a chunked store — the chunked analogue
/// of BruteForceNeighborhood (the Lemma 3 "no index" configuration), walking
/// chunks in ascending order so lists come out in the same ascending index
/// order as the monolithic range scan. Byte-identical lists.
class ChunkedBruteForceNeighborhood : public NeighborhoodProvider {
 public:
  ChunkedBruteForceNeighborhood(
      const traj::ChunkedSegmentStore& store,
      const distance::SegmentDistance& dist,
      distance::BatchKernel kernel = distance::BatchKernel::kAuto)
      : store_(store),
        dist_(dist),
        kernel_(distance::ResolveBatchKernel(kernel)) {}

  std::vector<size_t> Neighbors(size_t query_index, double eps) const override;
  size_t size() const override { return store_.size(); }

 private:
  const traj::ChunkedSegmentStore& store_;
  const distance::SegmentDistance& dist_;
  /// Resolved through the shared distance::ResolveBatchKernel helper at
  /// construction, so capped streaming runs honor the knob exactly like
  /// eager runs (kAuto/kSimd degrade identically in every binary).
  distance::BatchKernel kernel_;
};

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_CHUNKED_NEIGHBORHOOD_H_
