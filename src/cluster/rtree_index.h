#ifndef TRACLUS_CLUSTER_RTREE_INDEX_H_
#define TRACLUS_CLUSTER_RTREE_INDEX_H_

#include <vector>

#include "cluster/neighborhood.h"
#include "geom/bbox.h"

namespace traclus::cluster {

/// Exact ε-neighborhood index over line segments: an STR bulk-loaded R-tree —
/// the index Lemma 3 names ("If we use an appropriate index such as the
/// R-tree [10] ... the time complexity is reduced to O(n log n)").
///
/// Same exactness contract as GridNeighborhoodIndex and the same pruning
/// theory: because the TRACLUS distance is not a metric (§4.2) the tree prunes
/// with the Euclidean lower bound dist ≥ min(w⊥/2, w∥) · mindist(MBRs), then
/// verifies every candidate with the exact distance. When the bound is
/// unusable (a zero weight) queries transparently degrade to a scan.
///
/// Built once over a fixed segment set by Sort-Tile-Recursive packing
/// (Leutenegger et al.): leaves hold `leaf_capacity` segments tiled by x then
/// y, upper levels pack the same way, giving near-100% node occupancy and
/// deterministic structure. Read-only thereafter — TRACLUS never mutates the
/// segment set between phases, so an update path would be dead code.
class StrRTreeIndex : public NeighborhoodProvider {
 public:
  /// Builds the tree; `store` and `dist` must outlive the index. Leaf MBRs
  /// come from the store's invariant cache; the tree walk gathers candidates
  /// and exact verification is delegated to the batched kernels (`kernel`
  /// selects scalar/SIMD; results identical for every choice).
  StrRTreeIndex(const traj::SegmentStore& store,
                const distance::SegmentDistance& dist, int leaf_capacity = 16,
                distance::BatchKernel kernel = distance::BatchKernel::kAuto);

  std::vector<size_t> Neighbors(size_t query_index, double eps) const override;
  size_t size() const override { return store_.size(); }

  /// Tree height (1 = a single leaf level); diagnostics/tests.
  int Height() const { return height_; }
  /// Total node count; diagnostics/tests.
  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    geom::BBox box;
    /// Children: node indices for internal nodes, segment indices for leaves.
    std::vector<size_t> children;
    bool leaf = true;
  };

  /// Packs one level of boxes into parent nodes; returns parent node indices.
  std::vector<size_t> PackLevel(const std::vector<size_t>& level,
                                bool leaf_level, int capacity);

  const traj::SegmentStore& store_;
  const distance::SegmentDistance& dist_;
  distance::BatchKernel kernel_;
  std::vector<Node> nodes_;
  size_t root_ = 0;
  int height_ = 0;
};

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_RTREE_INDEX_H_
