#include "cluster/cluster.h"

#include "common/logging.h"

namespace traclus::cluster {

std::unordered_set<geom::TrajectoryId> ParticipatingTrajectories(
    const std::vector<geom::Segment>& segments, const Cluster& cluster) {
  std::unordered_set<geom::TrajectoryId> out;
  out.reserve(cluster.member_indices.size());
  for (const size_t idx : cluster.member_indices) {
    TRACLUS_DCHECK(idx < segments.size());
    out.insert(segments[idx].trajectory_id());
  }
  return out;
}

size_t TrajectoryCardinality(const std::vector<geom::Segment>& segments,
                             const Cluster& cluster) {
  return ParticipatingTrajectories(segments, cluster).size();
}

std::unordered_set<geom::TrajectoryId> ParticipatingTrajectories(
    const traj::SegmentStore& store, const Cluster& cluster) {
  std::unordered_set<geom::TrajectoryId> out;
  out.reserve(cluster.member_indices.size());
  const auto& ids = store.trajectory_ids();
  for (const size_t idx : cluster.member_indices) {
    TRACLUS_DCHECK(idx < ids.size());
    out.insert(ids[idx]);
  }
  return out;
}

size_t TrajectoryCardinality(const traj::SegmentStore& store,
                             const Cluster& cluster) {
  return ParticipatingTrajectories(store, cluster).size();
}

}  // namespace traclus::cluster
