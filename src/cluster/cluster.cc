#include "cluster/cluster.h"

#include "common/logging.h"

namespace traclus::cluster {

std::unordered_set<geom::TrajectoryId> ParticipatingTrajectories(
    const std::vector<geom::Segment>& segments, const Cluster& cluster) {
  std::unordered_set<geom::TrajectoryId> out;
  out.reserve(cluster.member_indices.size());
  for (const size_t idx : cluster.member_indices) {
    TRACLUS_DCHECK(idx < segments.size());
    out.insert(segments[idx].trajectory_id());
  }
  return out;
}

size_t TrajectoryCardinality(const std::vector<geom::Segment>& segments,
                             const Cluster& cluster) {
  return ParticipatingTrajectories(segments, cluster).size();
}

std::unordered_set<geom::TrajectoryId> ParticipatingTrajectories(
    const traj::SegmentStore& store, const Cluster& cluster) {
  return ParticipatingTrajectories(SegmentSetView::Of(store), cluster);
}

size_t TrajectoryCardinality(const traj::SegmentStore& store,
                             const Cluster& cluster) {
  return ParticipatingTrajectories(store, cluster).size();
}

std::unordered_set<geom::TrajectoryId> ParticipatingTrajectories(
    const SegmentSetView& view, const Cluster& cluster) {
  std::unordered_set<geom::TrajectoryId> out;
  out.reserve(cluster.member_indices.size());
  const auto& ids = view.trajectory_ids;
  for (const size_t idx : cluster.member_indices) {
    TRACLUS_DCHECK(idx < ids.size());
    out.insert(ids[idx]);
  }
  return out;
}

size_t TrajectoryCardinality(const SegmentSetView& view,
                             const Cluster& cluster) {
  return ParticipatingTrajectories(view, cluster).size();
}

}  // namespace traclus::cluster
