#ifndef TRACLUS_CLUSTER_CLUSTER_H_
#define TRACLUS_CLUSTER_CLUSTER_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "geom/segment.h"
#include "traj/segment_store.h"

namespace traclus::cluster {

/// Label of a segment not (yet) assigned to any cluster.
inline constexpr int kUnclassified = -2;
/// Label of a segment classified as noise (Fig. 12 line 12).
inline constexpr int kNoise = -1;

/// A cluster: a set of trajectory partitions (line segments), identified by
/// their indices into the segment database D (§2.1).
struct Cluster {
  int id = 0;
  std::vector<size_t> member_indices;

  size_t size() const { return member_indices.size(); }
};

/// Output of the grouping phase.
struct ClusteringResult {
  /// Surviving clusters, re-numbered densely from 0 after the trajectory
  /// cardinality filter (Fig. 12 step 3).
  std::vector<Cluster> clusters;
  /// Per-segment label: cluster id, kNoise, or (never after completion)
  /// kUnclassified. Indexed like the input segment vector.
  std::vector<int> labels;
  /// Number of segments labelled noise.
  size_t num_noise = 0;
};

/// The set of participating trajectories PTR(C) of a cluster (Definition 10):
/// the distinct trajectories its member segments were extracted from.
std::unordered_set<geom::TrajectoryId> ParticipatingTrajectories(
    const std::vector<geom::Segment>& segments, const Cluster& cluster);

/// Store-backed overload: reads the contiguous trajectory-id column instead
/// of dereferencing whole segments.
std::unordered_set<geom::TrajectoryId> ParticipatingTrajectories(
    const traj::SegmentStore& store, const Cluster& cluster);

/// |PTR(C)|, the trajectory cardinality used by the Fig. 12 step-3 filter.
size_t TrajectoryCardinality(const std::vector<geom::Segment>& segments,
                             const Cluster& cluster);

/// Store-backed overload of TrajectoryCardinality.
size_t TrajectoryCardinality(const traj::SegmentStore& store,
                             const Cluster& cluster);

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_CLUSTER_H_
