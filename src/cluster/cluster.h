#ifndef TRACLUS_CLUSTER_CLUSTER_H_
#define TRACLUS_CLUSTER_CLUSTER_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "common/span.h"
#include "geom/segment.h"
#include "traj/segment_store.h"

namespace traclus::cluster {

/// Label of a segment not (yet) assigned to any cluster.
inline constexpr int kUnclassified = -2;
/// Label of a segment classified as noise (Fig. 12 line 12).
inline constexpr int kNoise = -1;

/// A cluster: a set of trajectory partitions (line segments), identified by
/// their indices into the segment database D (§2.1).
struct Cluster {
  int id = 0;
  std::vector<size_t> member_indices;

  size_t size() const { return member_indices.size(); }
};

/// Output of the grouping phase.
struct ClusteringResult {
  /// Surviving clusters, re-numbered densely from 0 after the trajectory
  /// cardinality filter (Fig. 12 step 3).
  std::vector<Cluster> clusters;
  /// Per-segment label: cluster id, kNoise, or (never after completion)
  /// kUnclassified. Indexed like the input segment vector.
  std::vector<int> labels;
  /// Number of segments labelled noise.
  size_t num_noise = 0;
};

/// Non-owning view of the per-segment catalog columns the grouping
/// algorithms read — count, weight, and trajectory provenance — without
/// touching segment payloads (endpoints, directions). Both the monolithic
/// SegmentStore and the chunked store's always-resident catalog
/// (traj/chunked_store.h) produce one, which is what lets DBSCAN's density
/// accounting and the Definition 10 cardinality filter run without faulting
/// a single payload chunk.
struct SegmentSetView {
  size_t count = 0;
  common::Span<const double> weights;
  common::Span<const geom::TrajectoryId> trajectory_ids;

  size_t size() const { return count; }

  static SegmentSetView Of(const traj::SegmentStore& store) {
    SegmentSetView view;
    view.count = store.size();
    view.weights = store.weights();
    view.trajectory_ids = store.trajectory_ids();
    return view;
  }
};

/// The set of participating trajectories PTR(C) of a cluster (Definition 10):
/// the distinct trajectories its member segments were extracted from.
std::unordered_set<geom::TrajectoryId> ParticipatingTrajectories(
    const std::vector<geom::Segment>& segments, const Cluster& cluster);

/// Store-backed overload: reads the contiguous trajectory-id column instead
/// of dereferencing whole segments.
std::unordered_set<geom::TrajectoryId> ParticipatingTrajectories(
    const traj::SegmentStore& store, const Cluster& cluster);

/// |PTR(C)|, the trajectory cardinality used by the Fig. 12 step-3 filter.
size_t TrajectoryCardinality(const std::vector<geom::Segment>& segments,
                             const Cluster& cluster);

/// Store-backed overload of TrajectoryCardinality.
size_t TrajectoryCardinality(const traj::SegmentStore& store,
                             const Cluster& cluster);

/// View-backed overloads: read the trajectory-id column through a
/// SegmentSetView (identical results to the store overloads, which delegate
/// to these through SegmentSetView::Of).
std::unordered_set<geom::TrajectoryId> ParticipatingTrajectories(
    const SegmentSetView& view, const Cluster& cluster);
size_t TrajectoryCardinality(const SegmentSetView& view,
                             const Cluster& cluster);

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_CLUSTER_H_
