#include "cluster/neighbor_cache_file.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "distance/hashing.h"

namespace traclus::cluster {
namespace {

// 'NBC1' little-endian.
constexpr uint32_t kMagic = 0x3143424Eu;
// Fixed-size header prefix: magic + version + key + n + eps + total_indices.
constexpr uint64_t kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 8;
// Queries per NeighborsBatch slice while writing — bounds the writer's peak
// resident lists the same way the blocked grouping pass bounds its own.
constexpr size_t kWriteBatch = 1024;

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

template <typename T>
void WriteRaw(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadRaw(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

common::Status Corrupt(const std::string& path, const std::string& what) {
  return common::Status::InvalidArgument("corrupt neighbor cache file " +
                                         path + ": " + what);
}

}  // namespace

std::string NeighborCacheFilePath(const std::string& directory, uint64_t key) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(key));
  return directory + "/nbc-" + hex + ".bin";
}

common::Result<NeighborCacheFileHeader> LoadNeighborCacheFileHeader(
    const std::string& path, uint64_t expected_key, uint64_t expected_n,
    double expected_eps) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::Status::NotFound("no neighbor cache file at " + path);
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (file_size < kHeaderBytes) {
    return common::Status::IOError("truncated neighbor cache file " + path +
                                   ": smaller than the fixed header");
  }

  uint32_t magic = 0;
  uint32_t version = 0;
  NeighborCacheFileHeader h;
  uint64_t eps_bits = 0;
  if (!ReadRaw(in, &magic) || !ReadRaw(in, &version) || !ReadRaw(in, &h.key) ||
      !ReadRaw(in, &h.n) || !ReadRaw(in, &eps_bits) ||
      !ReadRaw(in, &h.total_indices)) {
    return common::Status::IOError("unreadable neighbor cache header in " +
                                   path);
  }
  if (magic != kMagic) return Corrupt(path, "bad magic");
  if (version != kNeighborCacheFileVersion) {
    return Corrupt(path, "unsupported format version " +
                             std::to_string(version));
  }
  h.eps = BitsToDouble(eps_bits);
  // Stale checks before structural ones: a file written for different inputs
  // is expected (the caller recomputes), so report it as the precondition
  // failure it is rather than guessing at corruption.
  if (h.key != expected_key) {
    return common::Status::FailedPrecondition(
        "stale neighbor cache file " + path +
        ": key mismatch (inputs changed since it was written)");
  }
  if (h.n != expected_n) {
    return common::Status::FailedPrecondition(
        "stale neighbor cache file " + path + ": stores " +
        std::to_string(h.n) + " lists, expected " +
        std::to_string(expected_n));
  }
  if (eps_bits != DoubleBits(expected_eps)) {
    return common::Status::FailedPrecondition(
        "stale neighbor cache file " + path + ": eps mismatch");
  }

  // Exact size the header implies; any shortfall is a truncated write.
  const uint64_t offsets_bytes = (h.n + 1) * sizeof(uint64_t);
  const uint64_t expected_size = kHeaderBytes + offsets_bytes +
                                 h.total_indices * sizeof(uint64_t) +
                                 sizeof(uint32_t);
  if (file_size != expected_size) {
    return common::Status::IOError(
        "truncated neighbor cache file " + path + ": " +
        std::to_string(file_size) + " bytes, header implies " +
        std::to_string(expected_size));
  }

  h.offsets.resize(h.n + 1);
  in.read(reinterpret_cast<char*>(h.offsets.data()),
          static_cast<std::streamsize>(offsets_bytes));
  if (!in.good()) {
    return common::Status::IOError("unreadable offset table in " + path);
  }
  if (h.offsets.front() != 0 || h.offsets.back() != h.total_indices) {
    return Corrupt(path, "offset table does not span the payload");
  }
  for (uint64_t i = 0; i < h.n; ++i) {
    if (h.offsets[i] > h.offsets[i + 1]) {
      return Corrupt(path, "offset table is not monotone");
    }
  }
  h.payload_begin = kHeaderBytes + offsets_bytes;

  uint32_t trailing = 0;
  in.seekg(static_cast<std::streamoff>(expected_size - sizeof(uint32_t)));
  if (!ReadRaw(in, &trailing) || trailing != kMagic) {
    return Corrupt(path, "missing trailing sentinel");
  }
  return h;
}

common::Status WriteNeighborCacheFile(const std::string& path, uint64_t key,
                                      const NeighborhoodProvider& base,
                                      double eps, common::ThreadPool& pool) {
  const uint64_t n = base.size();
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) {
    return common::Status::IOError("cannot open " + tmp + " for writing");
  }

  // Placeholder header + offsets first; the payload streams behind them in
  // bounded slices, then one seek rewrites the real values. This keeps peak
  // memory at O(slice) instead of materializing all n lists.
  WriteRaw(out, kMagic);
  WriteRaw(out, kNeighborCacheFileVersion);
  WriteRaw(out, key);
  WriteRaw(out, n);
  WriteRaw(out, DoubleBits(eps));
  uint64_t total = 0;
  WriteRaw(out, total);
  std::vector<uint64_t> offsets(n + 1, 0);
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));

  std::vector<size_t> queries;
  std::vector<uint64_t> flat;
  for (uint64_t base_i = 0; base_i < n; base_i += kWriteBatch) {
    const uint64_t hi = std::min<uint64_t>(n, base_i + kWriteBatch);
    queries.clear();
    for (uint64_t i = base_i; i < hi; ++i) queries.push_back(i);
    const auto lists = base.NeighborsBatch(queries, eps, pool);
    flat.clear();
    for (uint64_t i = base_i; i < hi; ++i) {
      const auto& list = lists[i - base_i];
      offsets[i] = total;
      total += list.size();
      for (const size_t v : list) flat.push_back(v);
    }
    out.write(reinterpret_cast<const char*>(flat.data()),
              static_cast<std::streamsize>(flat.size() * sizeof(uint64_t)));
  }
  offsets[n] = total;
  WriteRaw(out, kMagic);

  out.seekp(static_cast<std::streamoff>(kHeaderBytes - sizeof(uint64_t)));
  WriteRaw(out, total);
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
  out.close();
  if (!out.good()) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return common::Status::IOError("failed writing neighbor cache file " +
                                   tmp);
  }

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return common::Status::IOError("cannot move " + tmp + " into place: " +
                                   ec.message());
  }
  return common::Status::OK();
}

common::Result<std::unique_ptr<FileNeighborhoodCache>>
FileNeighborhoodCache::Create(const NeighborhoodProvider& base,
                              const traj::SegmentStore& store,
                              const distance::SegmentDistanceConfig& config,
                              double eps, const std::string& directory,
                              common::ThreadPool& pool) {
  TRACLUS_DCHECK_EQ(base.size(), store.size());
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return common::Status::IOError("cannot create neighbor cache directory " +
                                   directory + ": " + ec.message());
  }
  const uint64_t key = distance::NeighborhoodCacheKey(store, config, eps);
  const std::string path = NeighborCacheFilePath(directory, key);

  auto header = LoadNeighborCacheFileHeader(path, key, store.size(), eps);
  bool loaded = header.ok();
  if (!loaded) {
    // Any load failure — missing, stale, truncated, corrupt — means the
    // file cannot be served; recompute through the base provider and
    // rewrite. Only a genuine write failure escapes.
    TRACLUS_RETURN_NOT_OK(
        WriteNeighborCacheFile(path, key, base, eps, pool));
    header = LoadNeighborCacheFileHeader(path, key, store.size(), eps);
    // A file we just wrote and cannot read back is an environment problem,
    // not a cache miss.
    TRACLUS_RETURN_NOT_OK(header.status());
  }

  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return common::Status::IOError("cannot reopen neighbor cache file " +
                                   path);
  }
  return std::unique_ptr<FileNeighborhoodCache>(new FileNeighborhoodCache(
      std::move(header).ValueOrDie(), path, std::move(file), eps, loaded));
}

FileNeighborhoodCache::FileNeighborhoodCache(NeighborCacheFileHeader header,
                                             std::string path,
                                             std::ifstream file, double eps,
                                             bool loaded_from_file)
    : header_(std::move(header)),
      path_(std::move(path)),
      eps_(eps),
      loaded_from_file_(loaded_from_file) {
  common::MutexLock lock(mu_);
  file_ = std::move(file);
}

std::vector<size_t> FileNeighborhoodCache::ReadList(size_t i) const {
  TRACLUS_DCHECK(i < header_.n);
  const uint64_t begin = header_.offsets[i];
  const uint64_t count = header_.offsets[i + 1] - begin;
  std::vector<uint64_t> raw(count);
  {
    common::MutexLock lock(mu_);
    file_.seekg(static_cast<std::streamoff>(header_.payload_begin +
                                            begin * sizeof(uint64_t)));
    file_.read(reinterpret_cast<char*>(raw.data()),
               static_cast<std::streamsize>(count * sizeof(uint64_t)));
    // Validated at load time; a failure here means the file changed
    // underneath us mid-run.
    TRACLUS_DCHECK(file_.good());
  }
  std::vector<size_t> list(raw.begin(), raw.end());
  return list;
}

std::vector<size_t> FileNeighborhoodCache::Neighbors(size_t query_index,
                                                     double eps) const {
  TRACLUS_DCHECK(eps == eps_);
  (void)eps;
  return ReadList(query_index);
}

std::vector<std::vector<size_t>> FileNeighborhoodCache::AllNeighbors(
    double eps, common::ThreadPool& pool) const {
  TRACLUS_DCHECK(eps == eps_);
  (void)eps;
  (void)pool;  // Reads serialize on the file cursor; fan-out buys nothing.
  std::vector<std::vector<size_t>> lists(header_.n);
  for (size_t i = 0; i < header_.n; ++i) lists[i] = ReadList(i);
  return lists;
}

std::vector<size_t> FileNeighborhoodCache::AllNeighborhoodSizes(
    double eps, common::ThreadPool& pool) const {
  TRACLUS_DCHECK(eps == eps_);
  (void)eps;
  (void)pool;
  std::vector<size_t> sizes(header_.n);
  for (size_t i = 0; i < header_.n; ++i) {
    sizes[i] = header_.offsets[i + 1] - header_.offsets[i];
  }
  return sizes;
}

std::vector<std::vector<size_t>> FileNeighborhoodCache::NeighborsBatch(
    const std::vector<size_t>& queries, double eps,
    common::ThreadPool& pool) const {
  TRACLUS_DCHECK(eps == eps_);
  (void)eps;
  (void)pool;
  std::vector<std::vector<size_t>> lists(queries.size());
  for (size_t k = 0; k < queries.size(); ++k) {
    lists[k] = ReadList(queries[k]);
  }
  return lists;
}

}  // namespace traclus::cluster
