#include "cluster/chunked_neighborhood.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"

namespace traclus::cluster {

namespace {

// Same cell-key mixer as GridNeighborhoodIndex (collisions are harmless;
// correctness never depends on the key).
uint64_t Mix(int64_t x, int64_t y, int64_t z) {
  const uint64_t a = static_cast<uint64_t>(x) * 0x9E3779B97F4A7C15ull;
  const uint64_t b = static_cast<uint64_t>(y) * 0xC2B2AE3D27D4EB4Full;
  const uint64_t c = static_cast<uint64_t>(z) * 0x165667B19E3779F9ull;
  uint64_t h = a ^ (b >> 1) ^ (c << 1);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

// Pins chunk c; a spill I/O failure has no channel to the provider API.
std::shared_ptr<const traj::SegmentStore> PinChunk(
    const traj::ChunkedSegmentStore& store, size_t c) {
  auto chunk = store.Chunk(c);
  TRACLUS_CHECK(chunk.ok());
  return *std::move(chunk);
}

}  // namespace

ChunkedGridNeighborhood::ChunkedGridNeighborhood(
    const traj::ChunkedSegmentStore& store,
    const distance::SegmentDistance& dist, double cell_size,
    distance::BatchKernel kernel)
    : store_(store),
      dist_(dist),
      // The shared resolve helper (distance::ResolveBatchKernel), not a
      // provider-local decision: capped streaming runs must honor the knob
      // with exactly the eager path's semantics.
      kernel_(distance::ResolveBatchKernel(kernel)) {
  TRACLUS_CHECK(store.finalized());
  // Identical heuristic to GridNeighborhoodIndex, fed by the catalog MBRs
  // (bit-identical to the monolithic store's): the cell population of this
  // grid equals the monolithic grid's exactly.
  double extent_sum = 0.0;
  for (const geom::BBox& b : store_.bboxes()) {
    for (int d = 0; d < b.dims(); ++d) extent_sum += b.Extent(d);
  }
  dims_ = store_.dims();

  if (cell_size > 0.0) {
    cell_size_ = cell_size;
  } else {
    const double denom =
        std::max<size_t>(1, store_.size()) * std::max(1, dims_);
    const double mean_extent = extent_sum / static_cast<double>(denom);
    cell_size_ = std::max(2.0 * mean_extent, 1e-9);
  }

  for (size_t i = 0; i < store_.size(); ++i) {
    const geom::BBox& b = store_.bbox(i);
    const CellCoord lo = CellOf(b.lo(0), b.lo(1), dims_ == 3 ? b.lo(2) : 0.0);
    const CellCoord hi = CellOf(b.hi(0), b.hi(1), dims_ == 3 ? b.hi(2) : 0.0);
    for (int64_t cx = lo.x; cx <= hi.x; ++cx) {
      for (int64_t cy = lo.y; cy <= hi.y; ++cy) {
        for (int64_t cz = lo.z; cz <= hi.z; ++cz) {
          cells_[CellKey({cx, cy, cz})].push_back(i);
        }
      }
    }
  }
}

ChunkedGridNeighborhood::CellCoord ChunkedGridNeighborhood::CellOf(
    double x, double y, double z) const {
  return CellCoord{static_cast<int64_t>(std::floor(x / cell_size_)),
                   static_cast<int64_t>(std::floor(y / cell_size_)),
                   static_cast<int64_t>(std::floor(z / cell_size_))};
}

uint64_t ChunkedGridNeighborhood::CellKey(const CellCoord& c) {
  return Mix(c.x, c.y, c.z);
}

std::vector<size_t> ChunkedGridNeighborhood::Neighbors(size_t query_index,
                                                       double eps) const {
  // Concurrency contract: this class holds no mutex because it has no
  // shared mutable state — the grid (`cells_`, `cell_size_`) is immutable
  // after construction, and all query-time scratch is thread_local or
  // caller-owned. Concurrent Neighbors() calls from pool workers are safe
  // without locking; any future mutable caching must move behind a
  // common::Mutex with TRACLUS_GUARDED_BY annotations (see
  // cluster/neighborhood.h's bounded mode for the pattern).
  thread_local QueryScratch per_thread_scratch;
  return Neighbors(query_index, eps, &per_thread_scratch);
}

std::vector<std::vector<size_t>> ChunkedGridNeighborhood::AllNeighbors(
    double eps, common::ThreadPool& pool) const {
  std::vector<std::vector<size_t>> lists(store_.size());
  pool.ParallelForChunked(
      0, store_.size(), [this, eps, &lists](size_t lo, size_t hi) {
        QueryScratch scratch;
        for (size_t i = lo; i < hi; ++i) {
          lists[i] = Neighbors(i, eps, &scratch);
        }
      });
  return lists;
}

std::vector<size_t> ChunkedGridNeighborhood::AllNeighborhoodSizes(
    double eps, common::ThreadPool& pool) const {
  std::vector<size_t> sizes(store_.size());
  pool.ParallelForChunked(
      0, store_.size(), [this, eps, &sizes](size_t lo, size_t hi) {
        QueryScratch scratch;
        for (size_t i = lo; i < hi; ++i) {
          sizes[i] = Neighbors(i, eps, &scratch).size();
        }
      });
  return sizes;
}

std::vector<std::vector<size_t>> ChunkedGridNeighborhood::NeighborsBatch(
    const std::vector<size_t>& queries, double eps,
    common::ThreadPool& pool) const {
  std::vector<std::vector<size_t>> lists(queries.size());
  pool.ParallelForChunked(
      0, queries.size(), [this, eps, &queries, &lists](size_t lo, size_t hi) {
        QueryScratch scratch;
        for (size_t k = lo; k < hi; ++k) {
          lists[k] = Neighbors(queries[k], eps, &scratch);
        }
      });
  return lists;
}

std::vector<size_t> ChunkedGridNeighborhood::Neighbors(
    size_t query_index, double eps, QueryScratch* scratch) const {
  TRACLUS_DCHECK(query_index < store_.size());
  const double factor = dist_.LowerBoundFactor();
  std::vector<size_t> out;
  distance::BatchOptions refine_options;
  refine_options.kernel = kernel_;

  const size_t query_chunk = store_.chunk_of(query_index);
  const size_t query_base = store_.chunk_begin(query_chunk);
  const std::shared_ptr<const traj::SegmentStore> query_store =
      PinChunk(store_, query_chunk);

  if (factor <= 0.0) {
    // No usable lower bound: full scan, chunks in ascending order — the same
    // ascending emission order as the monolithic whole-range refine.
    for (size_t c = 0; c < store_.num_chunks(); ++c) {
      const size_t base = store_.chunk_begin(c);
      const size_t m = store_.chunk_size(c);
      if (c == query_chunk) {
        const size_t before = out.size();
        distance::EpsilonRefineRange(*query_store, dist_,
                                     query_index - query_base, 0, m, eps, out,
                                     refine_options);
        for (size_t k = before; k < out.size(); ++k) out[k] += base;
        continue;
      }
      const std::shared_ptr<const traj::SegmentStore> chunk =
          PinChunk(store_, c);
      distance::EpsilonRefineCrossRange(*query_store, dist_,
                                        query_index - query_base, *chunk, 0,
                                        m, eps, base, out, refine_options);
    }
    return out;
  }

  const double radius = eps / factor;
  const geom::BBox& qbox = store_.bbox(query_index);

  std::vector<uint32_t>& visit_stamp = scratch->visit_stamp;
  visit_stamp.resize(store_.size(), 0u);
  ++scratch->stamp;
  if (scratch->stamp == 0) {  // Wrap-around: reset once every 2^32 queries.
    std::fill(visit_stamp.begin(), visit_stamp.end(), 0u);
    scratch->stamp = 1;
  }
  const uint32_t stamp = scratch->stamp;

  // Candidate generation — identical to the monolithic grid walk, reading
  // only catalog MBRs. Exact membership is decided by the refine below.
  std::vector<size_t>& candidates = scratch->candidates;
  candidates.clear();
  const CellCoord lo = CellOf(qbox.lo(0) - radius, qbox.lo(1) - radius,
                              dims_ == 3 ? qbox.lo(2) - radius : 0.0);
  const CellCoord hi = CellOf(qbox.hi(0) + radius, qbox.hi(1) + radius,
                              dims_ == 3 ? qbox.hi(2) + radius : 0.0);
  for (int64_t cx = lo.x; cx <= hi.x; ++cx) {
    for (int64_t cy = lo.y; cy <= hi.y; ++cy) {
      for (int64_t cz = lo.z; cz <= hi.z; ++cz) {
        const auto it = cells_.find(CellKey({cx, cy, cz}));
        if (it == cells_.end()) continue;
        for (const size_t i : it->second) {
          if (visit_stamp[i] == stamp) continue;
          visit_stamp[i] = stamp;
          if (i == query_index) {
            candidates.push_back(i);
            continue;
          }
          if (store_.bbox(i).MinDist(qbox) > radius) continue;
          candidates.push_back(i);
        }
      }
    }
  }

  // Group candidates by chunk (ascending), faulting each candidate chunk
  // once. Accept/reject decisions are order-independent and bit-identical to
  // the monolithic refine; the final sort matches the monolithic path's and
  // erases the grouping order entirely.
  std::sort(candidates.begin(), candidates.end());
  std::vector<size_t>& local = scratch->local;
  size_t k = 0;
  while (k < candidates.size()) {
    const size_t c = store_.chunk_of(candidates[k]);
    const size_t base = store_.chunk_begin(c);
    size_t end = k;
    while (end < candidates.size() && store_.chunk_of(candidates[end]) == c) {
      ++end;
    }
    local.clear();
    for (size_t m = k; m < end; ++m) local.push_back(candidates[m] - base);
    const common::Span<const size_t> span(local.data(), local.size());
    if (c == query_chunk) {
      const size_t before = out.size();
      distance::EpsilonRefine(*query_store, dist_, query_index - query_base,
                              span, eps, out, refine_options);
      for (size_t m = before; m < out.size(); ++m) out[m] += base;
    } else {
      const std::shared_ptr<const traj::SegmentStore> chunk =
          PinChunk(store_, c);
      distance::EpsilonRefineCross(*query_store, dist_,
                                   query_index - query_base, *chunk, span,
                                   eps, base, out, refine_options);
    }
    k = end;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> ChunkedBruteForceNeighborhood::Neighbors(
    size_t query_index, double eps) const {
  TRACLUS_DCHECK(query_index < store_.size());
  std::vector<size_t> out;
  distance::BatchOptions refine_options;
  refine_options.kernel = kernel_;
  const size_t query_chunk = store_.chunk_of(query_index);
  const size_t query_base = store_.chunk_begin(query_chunk);
  const std::shared_ptr<const traj::SegmentStore> query_store =
      PinChunk(store_, query_chunk);
  for (size_t c = 0; c < store_.num_chunks(); ++c) {
    const size_t base = store_.chunk_begin(c);
    const size_t m = store_.chunk_size(c);
    if (c == query_chunk) {
      const size_t before = out.size();
      distance::EpsilonRefineRange(*query_store, dist_,
                                   query_index - query_base, 0, m, eps, out,
                                   refine_options);
      for (size_t k = before; k < out.size(); ++k) out[k] += base;
      continue;
    }
    const std::shared_ptr<const traj::SegmentStore> chunk = PinChunk(store_, c);
    distance::EpsilonRefineCrossRange(*query_store, dist_,
                                      query_index - query_base, *chunk, 0, m,
                                      eps, base, out, refine_options);
  }
  return out;
}

}  // namespace traclus::cluster
