#ifndef TRACLUS_CLUSTER_SHARD_GRID_H_
#define TRACLUS_CLUSTER_SHARD_GRID_H_

// ShardGrid — the spatial decomposition underneath core::ShardedGroupStage:
// a uniform cell grid over segment midpoints, with occupied cells assigned to
// shards by an occupancy-balanced contiguous split of their lexicographic
// order, plus the halo (ghost) computation that makes per-shard clustering
// exact.
//
// Ownership: every segment belongs to exactly one cell — the cell containing
// its midpoint — and every occupied cell to exactly one shard, so the owned
// lists partition the store. Assignment walks the occupied cells in
// lexicographic (cx, cy, cz) order and cuts the walk into `num_shards`
// contiguous runs of near-equal segment count (greedy ceil(remaining /
// shards_left) targets), which keeps shards spatially coherent — small
// borders, small halos — while balancing work. Trailing shards may own
// nothing when there are fewer occupied cells than shards.
//
// Halo soundness: GhostLists(reach) must return, for each shard r, a
// superset of every non-owned segment within ε of some segment owned by r,
// where `reach` is ε converted into Euclidean segment-space (ε divided by
// the distance's triangle-inequality lower-bound factor; +∞ — ghost
// everything — when the factor is degenerate). The test is a box-overlap
// bound evaluated on a FINE uniform grid, decoupled from the coarse
// ownership cells (whose resolution is sized for load balancing, far too
// coarse for a tight halo): each owned segment's axis-aligned bounding box,
// dilated by reach, is rasterized into a per-shard bitmap, and segment j is
// ghosted to r when j's own bounding box overlaps a marked cell of r's
// bitmap. Soundness: dist(Li, Lj) ≤ ε implies the Euclidean
// mindist(seg_i, seg_j) ≤ reach (the Lemma 3 style lower bound), hence
// mindist(MBR_i, MBR_j) ≤ reach, hence MBR_j intersects MBR_i ⊕ reach, whose
// cell cover is marked — so every true ε-neighbor lands in the halo; cell
// rasterization only ever over-covers (by up to one fine cell per side), and
// the dilation carries a relative slack of 1e-9 so boundary cases stay
// inclusive. Per-segment boxes keep one long segment from widening the whole
// shard's halo: only the corridor it actually spans is marked. The result is
// a pure function of (store, num_shards, cell_size, reach) — independent of
// thread count and evaluation order.
//
// Tightness: on the hurricane corpus (ε = 0.94, heavy-tailed segment
// lengths) this bound measures within a few percent of the exact
// segment-distance halo floor (69% vs 65% of the store at S = 2) — the large
// halo there is a property of the densely interleaved data, not slack in the
// bound. On spatially separable data (basins further apart than the reach)
// the halo collapses to near zero; see bench/bench_shard_scaling.cc for both
// regimes.

#include <cstdint>
#include <vector>

#include "traj/segment_store.h"

namespace traclus::cluster {

/// Immutable after construction; holds a reference to the store, which must
/// outlive the grid. Thread-compatible (all accessors const, no mutable
/// state — no mutex needed).
class ShardGrid {
 public:
  /// Decomposes `store` into `num_shards` shards (must be ≥ 1). `cell_size`
  /// ≤ 0 selects the automatic heuristic: the midpoint bounding box's
  /// largest extent divided by ceil(sqrt(16 · num_shards)) cells per axis —
  /// roughly 16 occupied-cell granules per shard, enough for the balanced
  /// split to even out skew without shredding spatial coherence.
  ShardGrid(const traj::SegmentStore& store, size_t num_shards,
            double cell_size = 0.0);

  size_t num_shards() const { return owned_.size(); }
  double cell_size() const { return cell_size_; }
  /// Number of occupied grid cells (≤ store.size()).
  size_t num_cells() const { return cells_.size(); }

  /// Owning shard of segment `i` (the shard of the cell holding its
  /// midpoint).
  size_t owner_of(size_t i) const { return owner_[i]; }

  /// Per-shard owned segment indices, ascending. The lists partition
  /// [0, store.size()).
  const std::vector<std::vector<size_t>>& owned() const { return owned_; }

  /// Largest owned half-length per shard (0 for empty shards).
  const std::vector<double>& max_half_lengths() const { return h_max_; }

  /// Per-shard ghost lists for a midpoint-space radius `reach` (see the
  /// header comment), ascending, disjoint from the shard's owned list.
  /// `reach` = +∞ ghosts every non-owned segment to every non-empty shard.
  std::vector<std::vector<size_t>> GhostLists(double reach) const;

 private:
  struct Cell {
    int64_t x = 0;
    int64_t y = 0;
    int64_t z = 0;
    size_t count = 0;  ///< Segments whose midpoint falls in this cell.
    size_t shard = 0;
  };

  const traj::SegmentStore& store_;
  double cell_size_ = 1.0;
  int dims_ = 2;
  /// Occupied cells in lexicographic (x, y, z) order.
  std::vector<Cell> cells_;
  std::vector<size_t> owner_;
  std::vector<std::vector<size_t>> owned_;
  std::vector<double> h_max_;
};

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_SHARD_GRID_H_
