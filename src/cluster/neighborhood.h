#ifndef TRACLUS_CLUSTER_NEIGHBORHOOD_H_
#define TRACLUS_CLUSTER_NEIGHBORHOOD_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "distance/batch_kernels.h"
#include "distance/segment_distance.h"
#include "geom/segment.h"
#include "traj/segment_store.h"

namespace traclus::cluster {

/// Source of ε-neighborhood queries Nε(L) (Definition 4) over a fixed segment
/// database.
///
/// Implementations are bound to a traj::SegmentStore at construction and must
/// return the indices of ALL segments within distance ε of the query —
/// including the query segment itself, which Definition 4 includes since
/// dist(L, L) = 0. Exactness matters: DBSCAN's output (and the parameter
/// heuristic's entropy) are defined in terms of exact ε-neighborhoods.
///
/// Every provider follows the candidate-generate / refine split: the provider
/// emits index candidates (everything for brute force; a geometrically
/// pruned superset for the grid and R-tree indexes) and delegates the exact
/// membership decision to the batched distance kernels
/// (distance::EpsilonRefine), which lower-bound-prune and evaluate the §2.3
/// distance bit-identically to the per-pair cached path. The kernel choice
/// (scalar / AVX2 SIMD) is a construction-time knob on each provider.
class NeighborhoodProvider {
 public:
  virtual ~NeighborhoodProvider() = default;

  /// Indices of all segments within distance `eps` of segment `query_index`.
  virtual std::vector<size_t> Neighbors(size_t query_index,
                                        double eps) const = 0;

  /// Batch query: Nε(L) for every segment, computed across `pool`. Entry i is
  /// exactly `Neighbors(i, eps)` regardless of thread count — results land in
  /// index-addressed slots, so scheduling order cannot reorder them.
  ///
  /// The default implementation fans `Neighbors` out over the pool and
  /// therefore requires `Neighbors` to be safe for concurrent calls (true for
  /// the brute-force and R-tree providers, which keep no query-time state).
  /// Providers with per-query scratch must override (see
  /// GridNeighborhoodIndex).
  virtual std::vector<std::vector<size_t>> AllNeighbors(
      double eps, common::ThreadPool& pool) const;

  /// Size-only batch: |Nε(L)| for every segment. Same contract and default
  /// thread-safety requirement as `AllNeighbors`, but each list is discarded
  /// after counting, keeping peak memory at O(n) (the §4.4 entropy sweep
  /// evaluates this at large ε, where the lists themselves approach O(n²)).
  virtual std::vector<size_t> AllNeighborhoodSizes(
      double eps, common::ThreadPool& pool) const;

  /// Subset batch: Nε(L) for an explicit list of query indices, computed
  /// across `pool`; entry k is exactly `Neighbors(queries[k], eps)`. This is
  /// the block-streamed grouping phase's primitive — it fans a bounded block
  /// of queries out at once, so peak memory stays proportional to the block
  /// rather than to the whole database. Same default thread-safety
  /// requirement as `AllNeighbors`; providers with per-query scratch override
  /// (see GridNeighborhoodIndex).
  virtual std::vector<std::vector<size_t>> NeighborsBatch(
      const std::vector<size_t>& queries, double eps,
      common::ThreadPool& pool) const;

  /// Number of segments in the bound database.
  virtual size_t size() const = 0;
};

/// A provider that serves another provider's ε-neighborhoods from memory.
///
/// Two modes:
///   * Eager (`block` = 0, the historical behavior): every list is
///     materialized up front — in bounded NeighborsBatch slices across the
///     pool — and kept resident, so repeated queries run at memory speed.
///   * Bounded (`block` > 0): lists are materialized lazily in blocks of up
///     to `block` consecutive not-yet-served query indices via
///     base.NeighborsBatch, and each list is evicted when served — at most
///     `block` lists are ever resident. Built for consumers that stream each
///     list once (a blocked grouping or counting pass); a re-queried index
///     recomputes through the base provider, so results stay exact for any
///     access pattern. Bounded mode mutates interior state on query; that
///     state is guarded by an internal mutex (annotated, so clang's
///     -Wthread-safety enforces the discipline), which makes concurrent
///     queries race-free — though they serialize on the miss path, so the
///     intended use remains a single streaming consumer. `base` and `pool`
///     must outlive the cache.
///
/// Every served list equals base.Neighbors(i, eps) exactly, so cluster IDs
/// are byte-identical to the direct path in both modes. Bound to one ε at
/// construction; querying a different ε is a programming error (checked).
class NeighborhoodCache : public NeighborhoodProvider {
 public:
  NeighborhoodCache(const NeighborhoodProvider& base, double eps,
                    common::ThreadPool& pool, size_t block = 0);

  std::vector<size_t> Neighbors(size_t query_index, double eps) const override;
  std::vector<std::vector<size_t>> AllNeighbors(
      double eps, common::ThreadPool& pool) const override;
  std::vector<size_t> AllNeighborhoodSizes(
      double eps, common::ThreadPool& pool) const override;
  std::vector<std::vector<size_t>> NeighborsBatch(
      const std::vector<size_t>& queries, double eps,
      common::ThreadPool& pool) const override;
  size_t size() const override { return size_; }

  /// Eager mode only: the materialized lists.
  const std::vector<std::vector<size_t>>& lists() const { return lists_; }

  /// Lists currently held in memory.
  size_t resident_lists() const TRACLUS_EXCLUDES(mu_);
  /// High-water mark of resident lists over the cache's lifetime — the
  /// quantity bounded mode promises stays ≤ block
  /// (tests/neighborhood_test.cc asserts it).
  size_t peak_resident_lists() const TRACLUS_EXCLUDES(mu_);

 private:
  const NeighborhoodProvider* base_;
  common::ThreadPool* pool_;
  double eps_;
  size_t block_;
  size_t size_;
  /// Eager mode storage: immutable after construction, read lock-free.
  std::vector<std::vector<size_t>> lists_;
  /// Bounded mode: parked not-yet-served lists, served markers, high-water.
  /// Serve-and-evict mutates these on every query, so they live behind mu_.
  mutable common::Mutex mu_;
  mutable std::unordered_map<size_t, std::vector<size_t>> parked_
      TRACLUS_GUARDED_BY(mu_);
  mutable std::vector<char> served_ TRACLUS_GUARDED_BY(mu_);
  mutable size_t peak_resident_ TRACLUS_GUARDED_BY(mu_) = 0;
};

/// O(n)-per-query reference provider: every segment is a candidate, refined
/// through the batched kernels (with their lower-bound prune).
///
/// The "no index" configuration of Lemma 3 (O(n²) clustering) and the oracle
/// that property tests compare the grid index against.
class BruteForceNeighborhood : public NeighborhoodProvider {
 public:
  /// Both referents must outlive the provider. `kernel` selects the batch
  /// refinement kernel (results identical for every choice).
  BruteForceNeighborhood(
      const traj::SegmentStore& store, const distance::SegmentDistance& dist,
      distance::BatchKernel kernel = distance::BatchKernel::kAuto)
      : store_(store), dist_(dist), kernel_(kernel) {}

  std::vector<size_t> Neighbors(size_t query_index, double eps) const override;
  /// Tile-batched override: each chunk of queries runs as one
  /// distance::EpsilonRefineTile over the whole database, so every candidate
  /// block's SoA columns serve the chunk's queries while hot. Entry k is
  /// exactly Neighbors(queries[k], eps) — the tile's per-query emission
  /// equals the one-query refine bit for bit.
  std::vector<std::vector<size_t>> NeighborsBatch(
      const std::vector<size_t>& queries, double eps,
      common::ThreadPool& pool) const override;
  /// Whole-database batch through the same tiles.
  std::vector<std::vector<size_t>> AllNeighbors(
      double eps, common::ThreadPool& pool) const override;
  size_t size() const override { return store_.size(); }

 private:
  const traj::SegmentStore& store_;
  const distance::SegmentDistance& dist_;
  distance::BatchKernel kernel_;
};

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_NEIGHBORHOOD_H_
