#ifndef TRACLUS_CLUSTER_NEIGHBORHOOD_H_
#define TRACLUS_CLUSTER_NEIGHBORHOOD_H_

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "distance/segment_distance.h"
#include "geom/segment.h"
#include "traj/segment_store.h"

namespace traclus::cluster {

/// Source of ε-neighborhood queries Nε(L) (Definition 4) over a fixed segment
/// database.
///
/// Implementations are bound to a traj::SegmentStore at construction and must
/// return the indices of ALL segments within distance ε of the query —
/// including the query segment itself, which Definition 4 includes since
/// dist(L, L) = 0. Exactness matters: DBSCAN's output (and the parameter
/// heuristic's entropy) are defined in terms of exact ε-neighborhoods.
class NeighborhoodProvider {
 public:
  virtual ~NeighborhoodProvider() = default;

  /// Indices of all segments within distance `eps` of segment `query_index`.
  virtual std::vector<size_t> Neighbors(size_t query_index,
                                        double eps) const = 0;

  /// Batch query: Nε(L) for every segment, computed across `pool`. Entry i is
  /// exactly `Neighbors(i, eps)` regardless of thread count — results land in
  /// index-addressed slots, so scheduling order cannot reorder them.
  ///
  /// The default implementation fans `Neighbors` out over the pool and
  /// therefore requires `Neighbors` to be safe for concurrent calls (true for
  /// the brute-force and R-tree providers, which keep no query-time state).
  /// Providers with per-query scratch must override (see
  /// GridNeighborhoodIndex).
  virtual std::vector<std::vector<size_t>> AllNeighbors(
      double eps, common::ThreadPool& pool) const;

  /// Size-only batch: |Nε(L)| for every segment. Same contract and default
  /// thread-safety requirement as `AllNeighbors`, but each list is discarded
  /// after counting, keeping peak memory at O(n) (the §4.4 entropy sweep
  /// evaluates this at large ε, where the lists themselves approach O(n²)).
  virtual std::vector<size_t> AllNeighborhoodSizes(
      double eps, common::ThreadPool& pool) const;

  /// Subset batch: Nε(L) for an explicit list of query indices, computed
  /// across `pool`; entry k is exactly `Neighbors(queries[k], eps)`. This is
  /// the block-streamed grouping phase's primitive — it fans a bounded block
  /// of queries out at once, so peak memory stays proportional to the block
  /// rather than to the whole database. Same default thread-safety
  /// requirement as `AllNeighbors`; providers with per-query scratch override
  /// (see GridNeighborhoodIndex).
  virtual std::vector<std::vector<size_t>> NeighborsBatch(
      const std::vector<size_t>& queries, double eps,
      common::ThreadPool& pool) const;

  /// Number of segments in the bound database.
  virtual size_t size() const = 0;
};

/// A provider that materializes another provider's ε-neighborhoods up front
/// (in parallel) and serves them from memory.
///
/// This is how the grouping phase batches its Lemma 3 neighborhood queries:
/// DBSCAN's expansion loop is inherently sequential, but every query it will
/// ever issue is known in advance (some subset of {Nε(L) : L ∈ D}), so the
/// whole batch is computed across the pool and the sequential loop then runs
/// at memory speed. Cluster IDs stay byte-identical to the direct path because
/// each cached list is exactly what the wrapped provider would have returned.
///
/// Bound to one ε at construction; querying a different ε is a programming
/// error (checked).
class NeighborhoodCache : public NeighborhoodProvider {
 public:
  NeighborhoodCache(const NeighborhoodProvider& base, double eps,
                    common::ThreadPool& pool)
      : eps_(eps), lists_(base.AllNeighbors(eps, pool)) {}

  std::vector<size_t> Neighbors(size_t query_index, double eps) const override;
  std::vector<std::vector<size_t>> AllNeighbors(
      double eps, common::ThreadPool& pool) const override;
  std::vector<size_t> AllNeighborhoodSizes(
      double eps, common::ThreadPool& pool) const override;
  std::vector<std::vector<size_t>> NeighborsBatch(
      const std::vector<size_t>& queries, double eps,
      common::ThreadPool& pool) const override;
  size_t size() const override { return lists_.size(); }

  const std::vector<std::vector<size_t>>& lists() const { return lists_; }

 private:
  double eps_;
  std::vector<std::vector<size_t>> lists_;
};

/// O(n)-per-query reference provider: scans every segment.
///
/// The "no index" configuration of Lemma 3 (O(n²) clustering) and the oracle
/// that property tests compare the grid index against.
class BruteForceNeighborhood : public NeighborhoodProvider {
 public:
  /// Both referents must outlive the provider. Every exact distance check
  /// goes through the store's invariant-cached fast path.
  BruteForceNeighborhood(const traj::SegmentStore& store,
                         const distance::SegmentDistance& dist)
      : store_(store), dist_(dist) {}

  std::vector<size_t> Neighbors(size_t query_index, double eps) const override;
  size_t size() const override { return store_.size(); }

 private:
  const traj::SegmentStore& store_;
  const distance::SegmentDistance& dist_;
};

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_NEIGHBORHOOD_H_
