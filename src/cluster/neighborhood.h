#ifndef TRACLUS_CLUSTER_NEIGHBORHOOD_H_
#define TRACLUS_CLUSTER_NEIGHBORHOOD_H_

#include <cstddef>
#include <vector>

#include "distance/segment_distance.h"
#include "geom/segment.h"

namespace traclus::cluster {

/// Source of ε-neighborhood queries Nε(L) (Definition 4) over a fixed segment
/// database.
///
/// Implementations are bound to a segment vector at construction and must return
/// the indices of ALL segments within distance ε of the query — including the
/// query segment itself, which Definition 4 includes since dist(L, L) = 0.
/// Exactness matters: DBSCAN's output (and the parameter heuristic's entropy)
/// are defined in terms of exact ε-neighborhoods.
class NeighborhoodProvider {
 public:
  virtual ~NeighborhoodProvider() = default;

  /// Indices of all segments within distance `eps` of segment `query_index`.
  virtual std::vector<size_t> Neighbors(size_t query_index, double eps) const = 0;

  /// Number of segments in the bound database.
  virtual size_t size() const = 0;
};

/// O(n)-per-query reference provider: scans every segment.
///
/// The "no index" configuration of Lemma 3 (O(n²) clustering) and the oracle
/// that property tests compare the grid index against.
class BruteForceNeighborhood : public NeighborhoodProvider {
 public:
  /// Both referents must outlive the provider.
  BruteForceNeighborhood(const std::vector<geom::Segment>& segments,
                         const distance::SegmentDistance& dist)
      : segments_(segments), dist_(dist) {}

  std::vector<size_t> Neighbors(size_t query_index, double eps) const override;
  size_t size() const override { return segments_.size(); }

 private:
  const std::vector<geom::Segment>& segments_;
  const distance::SegmentDistance& dist_;
};

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_NEIGHBORHOOD_H_
