#include "cluster/dbscan_segments.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace traclus::cluster {

namespace {

constexpr size_t kDefaultBatchBlock = 1024;

// |Nε(L)| under the configured density: neighbor count, or the weighted count
// of the §4.2 extension (summed from the store's flat weight column).
double NeighborhoodMass(const SegmentSetView& view,
                        const std::vector<size_t>& neighbors,
                        const DbscanOptions& options) {
  if (!options.use_weights) return static_cast<double>(neighbors.size());
  double mass = 0.0;
  const common::Span<const double>& weights = view.weights;
  for (const size_t i : neighbors) mass += weights[i];
  return mass;
}

// Serves ε-neighborhood lists to the sequential expansion loop while keeping
// at most `block` lists resident.
//
// The expansion loop consumes each segment's list exactly once (a segment is
// fetched either when it seeds a cluster or when it is popped from the BFS
// queue — never both, because both transitions require it to have been
// unclassified). The fetcher exploits that: on a cache miss it batches the
// demanded query together with queries the loop is guaranteed to issue soon —
// pending queue members, then upcoming unclassified seeds — computes the whole
// block across the pool (one grid scratch per chunk, exact results), hands the
// demanded list back, and parks the rest. Parked lists are erased as they are
// consumed, so residency never exceeds `block` and peak memory is
// O(block · max|Nε|) rather than the O(Σ|Nε|) of a full up-front batch.
// Because every served list equals provider.Neighbors(i, eps) exactly, labels
// and cluster IDs are byte-identical to the serial path for any block size.
class BlockedNeighborFetcher {
 public:
  BlockedNeighborFetcher(const NeighborhoodProvider& provider, double eps,
                         size_t block, common::ThreadPool& pool)
      : provider_(provider),
        eps_(eps),
        block_(std::max<size_t>(1, block)),
        pool_(pool),
        fetched_(provider.size(), 0) {}

  std::vector<size_t> Fetch(size_t index, const std::deque<size_t>& queue,
                            const std::vector<int>& labels) {
    const auto it = cache_.find(index);
    if (it != cache_.end()) {
      std::vector<size_t> list = std::move(it->second);
      cache_.erase(it);
      return list;
    }

    std::vector<size_t> batch;
    batch.push_back(index);
    fetched_[index] = 1;
    // Never let parked lists exceed the block: the demanded list is returned,
    // the other batch.size() - 1 are parked next to the cache_.size() already
    // resident.
    const size_t room = block_ > cache_.size() ? block_ - cache_.size() : 0;
    const size_t max_batch = 1 + room;
    // Queue members are consumed soonest; scan a bounded prefix so assembling
    // a batch stays O(block) even when the queue is long.
    size_t scanned = 0;
    for (const size_t m : queue) {
      if (batch.size() >= max_batch || scanned >= 2 * block_) break;
      ++scanned;
      if (!fetched_[m]) {
        fetched_[m] = 1;
        batch.push_back(m);
      }
    }
    // Then upcoming seeds. The cursor only moves forward; an unclassified
    // segment it passes over is guaranteed to be fetched through the queue
    // later, so skipping it costs at worst a smaller batch, never correctness.
    while (batch.size() < max_batch && seed_cursor_ < labels.size()) {
      const size_t s = seed_cursor_++;
      if (!fetched_[s] && labels[s] == kUnclassified) {
        fetched_[s] = 1;
        batch.push_back(s);
      }
    }

    std::vector<std::vector<size_t>> lists =
        provider_.NeighborsBatch(batch, eps_, pool_);
    for (size_t k = 1; k < batch.size(); ++k) {
      cache_.emplace(batch[k], std::move(lists[k]));
    }
    return std::move(lists[0]);
  }

 private:
  const NeighborhoodProvider& provider_;
  const double eps_;
  const size_t block_;
  common::ThreadPool& pool_;
  std::unordered_map<size_t, std::vector<size_t>> cache_;
  std::vector<char> fetched_;  // Listed in a past batch (parked or consumed).
  size_t seed_cursor_ = 0;
};

}  // namespace

ClusteringResult DbscanSegments(const traj::SegmentStore& store,
                                const NeighborhoodProvider& provider,
                                const DbscanOptions& options) {
  return DbscanSegments(SegmentSetView::Of(store), provider, options);
}

ClusteringResult DbscanSegments(const SegmentSetView& view,
                                const NeighborhoodProvider& provider,
                                const DbscanOptions& options) {
  TRACLUS_CHECK_EQ(provider.size(), view.size());
  TRACLUS_CHECK_GT(options.eps, 0.0);
  TRACLUS_CHECK_GE(options.min_lns, 1.0);

  const size_t n = view.size();
  ClusteringResult result;
  result.labels.assign(n, kUnclassified);
  std::vector<Cluster> raw_clusters;
  std::deque<size_t> queue;

  // With >1 thread, ε-neighborhood queries are computed across the pool in
  // bounded blocks and served to the (inherently sequential) expansion loop
  // below. Every served list equals what `provider` would return inline, so
  // labels and cluster IDs are byte-identical at any thread count and block
  // size; the serial path computes each query inline, exactly as the seed did.
  const int num_threads = common::ResolveNumThreads(options.num_threads);
  std::unique_ptr<BlockedNeighborFetcher> fetcher;
  if (num_threads > 1) {
    const size_t block =
        options.batch_block > 0 ? options.batch_block : kDefaultBatchBlock;
    fetcher = std::make_unique<BlockedNeighborFetcher>(
        provider, options.eps, block, common::SharedPool(num_threads));
  }
  const auto fetch = [&](size_t i) -> std::vector<size_t> {
    if (fetcher) return fetcher->Fetch(i, queue, result.labels);
    return provider.Neighbors(i, options.eps);
  };
  const size_t progress_stride = std::max<size_t>(1, n / 64);

  int cluster_id = 0;  // Fig. 12 line 01.
  for (size_t seed = 0; seed < n; ++seed) {  // Step 1 (lines 03-12).
    common::ThrowIfCancelled(options.cancellation);
    if (options.progress && seed % progress_stride == 0) {
      options.progress(static_cast<double>(seed) / static_cast<double>(n));
    }
    if (result.labels[seed] != kUnclassified) continue;
    const std::vector<size_t> seed_neighbors = fetch(seed);
    if (NeighborhoodMass(view, seed_neighbors, options) < options.min_lns) {
      result.labels[seed] = kNoise;  // Line 12.
      continue;
    }

    // Lines 07-08: assign the whole neighborhood, enqueue Nε(L) − {L}.
    Cluster cluster;
    cluster.id = cluster_id;
    for (const size_t i : seed_neighbors) {
      // Previously-noise segments become border members here.
      if (result.labels[i] == kUnclassified && i != seed) queue.push_back(i);
      if (result.labels[i] == kUnclassified || result.labels[i] == kNoise) {
        result.labels[i] = cluster_id;
        cluster.member_indices.push_back(i);
      }
    }

    // Step 2 (ExpandCluster, lines 17-28).
    while (!queue.empty()) {
      common::ThrowIfCancelled(options.cancellation);
      const size_t m = queue.front();
      queue.pop_front();
      const std::vector<size_t> m_neighbors = fetch(m);
      if (NeighborhoodMass(view, m_neighbors, options) < options.min_lns) {
        continue;  // Not a core line segment: expand no further through it.
      }
      for (const size_t x : m_neighbors) {
        const bool was_unclassified = result.labels[x] == kUnclassified;
        if (was_unclassified || result.labels[x] == kNoise) {
          result.labels[x] = cluster_id;  // Line 24.
          cluster.member_indices.push_back(x);
        }
        if (was_unclassified) queue.push_back(x);  // Lines 25-26.
      }
    }

    raw_clusters.push_back(std::move(cluster));
    ++cluster_id;  // Line 10.
  }

  // Step 3 (lines 13-16): trajectory-cardinality filter.
  const double cardinality_threshold = options.min_trajectory_cardinality < 0.0
                                           ? options.min_lns
                                           : options.min_trajectory_cardinality;
  std::vector<int> remap(raw_clusters.size(), kNoise);
  int dense_id = 0;
  for (auto& cluster : raw_clusters) {
    const double ptr =
        static_cast<double>(TrajectoryCardinality(view, cluster));
    // Removed; members become noise.
    if (ptr < cardinality_threshold) continue;
    remap[cluster.id] = dense_id;
    cluster.id = dense_id;
    result.clusters.push_back(std::move(cluster));
    ++dense_id;
  }
  for (size_t i = 0; i < n; ++i) {
    if (result.labels[i] >= 0) {
      result.labels[i] = remap[result.labels[i]];
    }
    if (result.labels[i] == kNoise) ++result.num_noise;
    TRACLUS_DCHECK(result.labels[i] != kUnclassified);
  }
  if (options.progress) options.progress(1.0);
  return result;
}

}  // namespace traclus::cluster
