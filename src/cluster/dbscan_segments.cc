#include "cluster/dbscan_segments.h"

#include <deque>
#include <memory>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace traclus::cluster {

namespace {

// |Nε(L)| under the configured density: neighbor count, or the weighted count
// of the §4.2 extension.
double NeighborhoodMass(const std::vector<geom::Segment>& segments,
                        const std::vector<size_t>& neighbors,
                        const DbscanOptions& options) {
  if (!options.use_weights) return static_cast<double>(neighbors.size());
  double mass = 0.0;
  for (const size_t i : neighbors) mass += segments[i].weight();
  return mass;
}

}  // namespace

ClusteringResult DbscanSegments(const std::vector<geom::Segment>& segments,
                                const NeighborhoodProvider& provider,
                                const DbscanOptions& options) {
  TRACLUS_CHECK_EQ(provider.size(), segments.size());
  TRACLUS_CHECK_GT(options.eps, 0.0);
  TRACLUS_CHECK_GE(options.min_lns, 1.0);

  // With >1 thread, batch every ε-neighborhood query up front across the pool
  // and run the (inherently sequential) expansion below against the cache.
  // Each cached list equals what `provider` would return inline, so labels and
  // cluster IDs are byte-identical at any thread count.
  const int num_threads = common::ResolveNumThreads(options.num_threads);
  std::unique_ptr<NeighborhoodCache> cache;
  if (num_threads > 1) {
    cache = std::make_unique<NeighborhoodCache>(
        provider, options.eps, common::SharedPool(num_threads));
  }
  // Cached lists are served by reference (no per-query copy); the serial path
  // computes into `storage` exactly as the seed did.
  auto neighbors_of = [&](size_t i, std::vector<size_t>& storage)
      -> const std::vector<size_t>& {
    if (cache) return cache->lists()[i];
    storage = provider.Neighbors(i, options.eps);
    return storage;
  };

  const size_t n = segments.size();
  ClusteringResult result;
  result.labels.assign(n, kUnclassified);
  std::vector<Cluster> raw_clusters;

  int cluster_id = 0;  // Fig. 12 line 01.
  for (size_t seed = 0; seed < n; ++seed) {  // Step 1 (lines 03-12).
    if (result.labels[seed] != kUnclassified) continue;
    std::vector<size_t> seed_storage;
    const std::vector<size_t>& seed_neighbors =
        neighbors_of(seed, seed_storage);
    if (NeighborhoodMass(segments, seed_neighbors, options) < options.min_lns) {
      result.labels[seed] = kNoise;  // Line 12.
      continue;
    }

    // Lines 07-08: assign the whole neighborhood, enqueue Nε(L) − {L}.
    Cluster cluster;
    cluster.id = cluster_id;
    std::deque<size_t> queue;
    for (const size_t i : seed_neighbors) {
      // Previously-noise segments become border members here.
      if (result.labels[i] == kUnclassified && i != seed) queue.push_back(i);
      if (result.labels[i] == kUnclassified || result.labels[i] == kNoise) {
        result.labels[i] = cluster_id;
        cluster.member_indices.push_back(i);
      }
    }

    // Step 2 (ExpandCluster, lines 17-28).
    while (!queue.empty()) {
      const size_t m = queue.front();
      queue.pop_front();
      std::vector<size_t> m_storage;
      const std::vector<size_t>& m_neighbors = neighbors_of(m, m_storage);
      if (NeighborhoodMass(segments, m_neighbors, options) < options.min_lns) {
        continue;  // Not a core line segment: expand no further through it.
      }
      for (const size_t x : m_neighbors) {
        const bool was_unclassified = result.labels[x] == kUnclassified;
        if (was_unclassified || result.labels[x] == kNoise) {
          result.labels[x] = cluster_id;  // Line 24.
          cluster.member_indices.push_back(x);
        }
        if (was_unclassified) queue.push_back(x);  // Lines 25-26.
      }
    }

    raw_clusters.push_back(std::move(cluster));
    ++cluster_id;  // Line 10.
  }

  // Step 3 (lines 13-16): trajectory-cardinality filter.
  const double cardinality_threshold = options.min_trajectory_cardinality < 0.0
                                           ? options.min_lns
                                           : options.min_trajectory_cardinality;
  std::vector<int> remap(raw_clusters.size(), kNoise);
  int dense_id = 0;
  for (auto& cluster : raw_clusters) {
    const double ptr =
        static_cast<double>(TrajectoryCardinality(segments, cluster));
    // Removed; members become noise.
    if (ptr < cardinality_threshold) continue;
    remap[cluster.id] = dense_id;
    cluster.id = dense_id;
    result.clusters.push_back(std::move(cluster));
    ++dense_id;
  }
  for (size_t i = 0; i < n; ++i) {
    if (result.labels[i] >= 0) {
      result.labels[i] = remap[result.labels[i]];
    }
    if (result.labels[i] == kNoise) ++result.num_noise;
    TRACLUS_DCHECK(result.labels[i] != kUnclassified);
  }
  return result;
}

}  // namespace traclus::cluster
