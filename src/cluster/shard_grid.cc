#include "cluster/shard_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace traclus::cluster {

namespace {

// Inclusive slack on the squared ghost-threshold comparison, mirroring the
// batch layer's prune slack: boundary segments must land in the halo, never
// out of it.
constexpr double kGhostSlack = 1e-9;

struct CellCoord {
  int64_t x = 0;
  int64_t y = 0;
  int64_t z = 0;
};

bool LexLess(const CellCoord& a, const CellCoord& b) {
  if (a.x != b.x) return a.x < b.x;
  if (a.y != b.y) return a.y < b.y;
  return a.z < b.z;
}

}  // namespace

ShardGrid::ShardGrid(const traj::SegmentStore& store, size_t num_shards,
                     double cell_size)
    : store_(store), dims_(store.dims()) {
  TRACLUS_CHECK_GT(num_shards, 0u);
  const size_t n = store.size();
  owned_.resize(num_shards);
  h_max_.assign(num_shards, 0.0);
  owner_.assign(n, 0);
  if (n == 0) {
    cell_size_ = cell_size > 0.0 ? cell_size : 1.0;
    return;
  }

  // Cell size: caller's, or the auto heuristic — the midpoint bbox's largest
  // extent split into ceil(sqrt(16 · S)) cells per axis, giving the balanced
  // split roughly 16 occupied-cell granules per shard to work with.
  if (cell_size > 0.0) {
    cell_size_ = cell_size;
  } else {
    double extent = 0.0;
    for (int d = 0; d < dims_; ++d) {
      const std::vector<double>& mid = store_.midpoint_coords(d);
      const auto [lo, hi] = std::minmax_element(mid.begin(), mid.end());
      extent = std::max(extent, *hi - *lo);
    }
    const double cells_per_axis = std::ceil(
        std::sqrt(16.0 * static_cast<double>(num_shards)));
    cell_size_ = std::max(extent / cells_per_axis, 1e-9);
  }

  // Per-segment cell coordinates, then the occupied-cell list in
  // lexicographic order with occupancy counts.
  std::vector<CellCoord> coord(n);
  for (int d = 0; d < dims_; ++d) {
    const std::vector<double>& mid = store_.midpoint_coords(d);
    for (size_t i = 0; i < n; ++i) {
      const int64_t c = static_cast<int64_t>(std::floor(mid[i] / cell_size_));
      if (d == 0) {
        coord[i].x = c;
      } else if (d == 1) {
        coord[i].y = c;
      } else {
        coord[i].z = c;
      }
    }
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&coord](size_t a, size_t b) {
    if (LexLess(coord[a], coord[b])) return true;
    if (LexLess(coord[b], coord[a])) return false;
    return a < b;
  });
  for (size_t k = 0; k < n; ++k) {
    const CellCoord& c = coord[order[k]];
    if (cells_.empty() || cells_.back().x != c.x || cells_.back().y != c.y ||
        cells_.back().z != c.z) {
      cells_.push_back(Cell{c.x, c.y, c.z, 0, 0});
    }
    ++cells_.back().count;
  }

  // Occupancy-balanced contiguous split of the lex-ordered cell walk:
  // advance to the next shard when adding the cell would overshoot the
  // running ceil(remaining / shards_left) target. Deterministic, and every
  // occupied cell lands in exactly one shard.
  size_t shard = 0;
  size_t in_shard = 0;
  size_t assigned_before = 0;
  for (Cell& cell : cells_) {
    const size_t shards_left = num_shards - shard;
    const size_t target =
        (n - assigned_before + shards_left - 1) / shards_left;
    if (in_shard > 0 && shard + 1 < num_shards &&
        in_shard + cell.count > target) {
      assigned_before += in_shard;
      in_shard = 0;
      ++shard;
    }
    cell.shard = shard;
    in_shard += cell.count;
  }

  // Owners: binary-search each segment's cell in the lex-ordered cell list.
  const std::vector<double>& half = store_.half_lengths();
  for (size_t i = 0; i < n; ++i) {
    const CellCoord& c = coord[i];
    const auto it = std::lower_bound(
        cells_.begin(), cells_.end(), c, [](const Cell& cell, const CellCoord& q) {
          return LexLess(CellCoord{cell.x, cell.y, cell.z}, q);
        });
    TRACLUS_DCHECK(it != cells_.end() && it->x == c.x && it->y == c.y &&
                   it->z == c.z);
    owner_[i] = it->shard;
    owned_[it->shard].push_back(i);
    h_max_[it->shard] = std::max(h_max_[it->shard], half[i]);
  }
  // owned_[s] is ascending by construction (segments visited in index order).
}

std::vector<std::vector<size_t>> ShardGrid::GhostLists(double reach) const {
  const size_t S = owned_.size();
  std::vector<std::vector<size_t>> ghosts(S);
  const size_t n = store_.size();
  if (S <= 1 || n == 0) return ghosts;

  // Degenerate lower-bound factor: no usable Euclidean bound — ghost every
  // non-owned segment to every non-empty shard.
  if (std::isinf(reach)) {
    for (size_t j = 0; j < n; ++j) {
      for (size_t r = 0; r < S; ++r) {
        if (r != owner_[j] && !owned_[r].empty()) ghosts[r].push_back(j);
      }
    }
    return ghosts;
  }

  // Fine raster over the dilated bounding box of the whole store. The fine
  // cell is sized to the dilation radius (capped so the bitmap stays small):
  // marking an owned segment's reach-dilated box then costs O(box/reach)
  // cells, and the over-cover per side is at most one fine cell.
  const double pad = reach * (1.0 + kGhostSlack);
  const double* start_c[3] = {nullptr, nullptr, nullptr};
  const double* end_c[3] = {nullptr, nullptr, nullptr};
  double lo_all[3] = {0.0, 0.0, 0.0};
  double hi_all[3] = {0.0, 0.0, 0.0};
  for (int d = 0; d < dims_; ++d) {
    start_c[d] = store_.start_coords(d).data();
    end_c[d] = store_.end_coords(d).data();
    const auto [s_lo, s_hi] = std::minmax_element(
        store_.start_coords(d).begin(), store_.start_coords(d).end());
    const auto [e_lo, e_hi] = std::minmax_element(
        store_.end_coords(d).begin(), store_.end_coords(d).end());
    lo_all[d] = std::min(*s_lo, *e_lo) - pad;
    hi_all[d] = std::max(*s_hi, *e_hi) + pad;
  }
  // Cap the per-axis resolution so the bitmap stays ~1 MiB even when reach
  // is tiny relative to the data extent (2D: 724² ≈ 512 Ki cells; 3D: 80³).
  const int max_axis_cells = dims_ >= 3 ? 80 : 724;
  double fine = std::max(pad / 2.0, 1e-9);
  for (int d = 0; d < dims_; ++d) {
    fine = std::max(fine, (hi_all[d] - lo_all[d]) /
                              static_cast<double>(max_axis_cells));
  }
  int64_t count[3] = {1, 1, 1};
  size_t total = 1;
  for (int d = 0; d < dims_; ++d) {
    count[d] =
        static_cast<int64_t>(std::floor((hi_all[d] - lo_all[d]) / fine)) + 1;
    total *= static_cast<size_t>(count[d]);
  }
  const auto cell_of = [&](double v, int d) {
    const int64_t c =
        static_cast<int64_t>(std::floor((v - lo_all[d]) / fine));
    return std::clamp<int64_t>(c, 0, count[d] - 1);
  };

  // Rasterize every owned segment's reach-dilated bounding box into its
  // shard's bitmap.
  std::vector<std::vector<char>> marked(S);
  for (size_t r = 0; r < S; ++r) {
    if (!owned_[r].empty()) marked[r].assign(total, 0);
  }
  for (size_t i = 0; i < n; ++i) {
    std::vector<char>& bits = marked[owner_[i]];
    int64_t lo[3] = {0, 0, 0};
    int64_t hi[3] = {0, 0, 0};
    for (int d = 0; d < dims_; ++d) {
      const double a = start_c[d][i];
      const double b = end_c[d][i];
      lo[d] = cell_of(std::min(a, b) - pad, d);
      hi[d] = cell_of(std::max(a, b) + pad, d);
    }
    for (int64_t x = lo[0]; x <= hi[0]; ++x) {
      for (int64_t y = lo[1]; y <= hi[1]; ++y) {
        for (int64_t z = lo[2]; z <= hi[2]; ++z) {
          bits[static_cast<size_t>((x * count[1] + y) * count[2] + z)] = 1;
        }
      }
    }
  }

  // Segment j is within reach of shard r's owned boxes only if its own
  // (undilated) box overlaps a marked cell.
  for (size_t j = 0; j < n; ++j) {
    int64_t lo[3] = {0, 0, 0};
    int64_t hi[3] = {0, 0, 0};
    for (int d = 0; d < dims_; ++d) {
      const double a = start_c[d][j];
      const double b = end_c[d][j];
      lo[d] = cell_of(std::min(a, b), d);
      hi[d] = cell_of(std::max(a, b), d);
    }
    const size_t own = owner_[j];
    for (size_t r = 0; r < S; ++r) {
      if (r == own || marked[r].empty()) continue;
      const std::vector<char>& bits = marked[r];
      bool in_halo = false;
      for (int64_t x = lo[0]; x <= hi[0] && !in_halo; ++x) {
        for (int64_t y = lo[1]; y <= hi[1] && !in_halo; ++y) {
          for (int64_t z = lo[2]; z <= hi[2] && !in_halo; ++z) {
            in_halo =
                bits[static_cast<size_t>((x * count[1] + y) * count[2] + z)] !=
                0;
          }
        }
      }
      if (in_halo) ghosts[r].push_back(j);
    }
  }
  // Each ghosts[r] is ascending (outer loop visits j in index order).
  return ghosts;
}

}  // namespace traclus::cluster
