#include "cluster/representative.h"

#include <algorithm>
#include <cmath>

#include "geom/vector_ops.h"

namespace traclus::cluster {

geom::Point AverageDirectionVector(const std::vector<geom::Segment>& segments,
                                   const Cluster& cluster) {
  TRACLUS_CHECK(!cluster.member_indices.empty());
  const int dims = segments[cluster.member_indices.front()].dims();
  geom::Point sum = dims == 3 ? geom::Point(0, 0, 0) : geom::Point(0, 0);
  for (const size_t idx : cluster.member_indices) {
    sum = sum + segments[idx].Direction();
  }
  geom::Point avg = sum / static_cast<double>(cluster.member_indices.size());

  if (avg.Norm() < 1e-12) {
    // Members cancel out (e.g. perfectly opposing directions). Fall back to the
    // longest member's direction so downstream rotation is still well defined.
    double best_len = -1.0;
    for (const size_t idx : cluster.member_indices) {
      if (segments[idx].Length() > best_len) {
        best_len = segments[idx].Length();
        avg = segments[idx].Direction();
      }
    }
  }
  return avg;
}

geom::Point AverageDirectionVector(const traj::SegmentStore& store,
                                   const Cluster& cluster) {
  TRACLUS_CHECK(!cluster.member_indices.empty());
  const int dims = store.dims();
  geom::Point sum = dims == 3 ? geom::Point(0, 0, 0) : geom::Point(0, 0);
  for (const size_t idx : cluster.member_indices) {
    sum = sum + store.direction(idx);
  }
  geom::Point avg = sum / static_cast<double>(cluster.member_indices.size());

  if (avg.Norm() < 1e-12) {
    double best_len = -1.0;
    for (const size_t idx : cluster.member_indices) {
      if (store.length(idx) > best_len) {
        best_len = store.length(idx);
        avg = store.direction(idx);
      }
    }
  }
  return avg;
}

namespace {

// A member segment expressed in the sweep frame: t = coordinate along the
// average direction (X'), r = the orthogonal residual (Y' in 2-D; a full
// perpendicular vector in the generic method).
struct FrameSegment {
  double t_lo;          // Sweep interval start (min of the two endpoints).
  double t_hi;          // Sweep interval end.
  geom::Point r_lo;     // Residual at t_lo.
  geom::Point r_hi;     // Residual at t_hi.
  double weight = 1.0;

  // Residual linearly interpolated at sweep position t.
  geom::Point ResidualAt(double t) const {
    if (t_hi == t_lo) return r_lo;
    const double u = (t - t_lo) / (t_hi - t_lo);
    return r_lo + (r_hi - r_lo) * u;
  }
};

// Decomposes p into (t, residual) for a unit axis u anchored at the origin.
void Decompose(const geom::Point& p, const geom::Point& unit_axis, double* t,
               geom::Point* residual) {
  *t = geom::Dot(p, unit_axis);
  *residual = p - unit_axis * (*t);
}

// The Fig. 15 sweep over a precomputed (unnormalized) average direction
// vector; both public overloads delegate here, so their outputs are
// byte-identical by construction.
traj::Trajectory SweepWithAxis(const std::vector<geom::Segment>& segments,
                               const Cluster& cluster,
                               const RepresentativeOptions& options,
                               geom::Point axis) {
  traj::Trajectory rep(/*id=*/cluster.id, /*label=*/"representative");
  if (cluster.member_indices.empty()) return rep;

  const int dims = segments[cluster.member_indices.front()].dims();
  TRACLUS_CHECK(options.method != RepresentativeMethod::kRotation2D ||
                dims == 2)
      << "kRotation2D requires 2-D segments";

  axis = axis / axis.Norm();

  double cos_phi = 1.0;
  double sin_phi = 0.0;
  if (options.method == RepresentativeMethod::kRotation2D) {
    // Formula (9): rotate by φ, the angle between the average direction vector
    // and the unit x axis, so X' is parallel to the average direction.
    cos_phi = axis.x();
    sin_phi = axis.y();
  }

  // Express every member segment in the sweep frame.
  std::vector<FrameSegment> frame;
  frame.reserve(cluster.member_indices.size());
  std::vector<double> sweep_values;
  for (const size_t idx : cluster.member_indices) {
    const geom::Segment& s = segments[idx];
    FrameSegment fs;
    fs.weight = s.weight();
    double t_s = 0.0;
    double t_e = 0.0;
    geom::Point r_s, r_e;
    if (options.method == RepresentativeMethod::kRotation2D) {
      // x' = cosφ·x + sinφ·y ; y' = −sinφ·x + cosφ·y. The residual is stored as
      // a 2-D point (0, y') so both methods share the averaging code.
      t_s = cos_phi * s.start().x() + sin_phi * s.start().y();
      t_e = cos_phi * s.end().x() + sin_phi * s.end().y();
      r_s = geom::Point(
          0.0, -sin_phi * s.start().x() + cos_phi * s.start().y());
      r_e = geom::Point(0.0, -sin_phi * s.end().x() + cos_phi * s.end().y());
    } else {
      Decompose(s.start(), axis, &t_s, &r_s);
      Decompose(s.end(), axis, &t_e, &r_e);
    }
    if (t_s <= t_e) {
      fs.t_lo = t_s;
      fs.t_hi = t_e;
      fs.r_lo = r_s;
      fs.r_hi = r_e;
    } else {
      fs.t_lo = t_e;
      fs.t_hi = t_s;
      fs.r_lo = r_e;
      fs.r_hi = r_s;
    }
    frame.push_back(fs);
    sweep_values.push_back(t_s);
    sweep_values.push_back(t_e);
  }

  // Fig. 15 lines 03-04: sort the starting and ending points by X'-value. The
  // hit count only changes at these positions; coincident values are a single
  // sweep stop (they would emit identical averages).
  std::sort(sweep_values.begin(), sweep_values.end());
  sweep_values.erase(std::unique(sweep_values.begin(), sweep_values.end()),
                     sweep_values.end());

  bool have_prev = false;
  double prev_t = 0.0;
  for (const double t : sweep_values) {
    // Line 06: count (or weigh) the segments containing this X'-value.
    double mass = 0.0;
    size_t hits = 0;
    for (const auto& fs : frame) {
      if (fs.t_lo <= t && t <= fs.t_hi) {
        mass += options.use_weights ? fs.weight : 1.0;
        ++hits;
      }
    }
    if (mass < options.min_lns) continue;  // Line 07.
    if (have_prev && (t - prev_t) < options.gamma) continue;  // Lines 08-09.

    // Line 10: average coordinate of the hit segments at this sweep position.
    geom::Point r_sum = dims == 3 ? geom::Point(0, 0, 0) : geom::Point(0, 0);
    for (const auto& fs : frame) {
      if (fs.t_lo <= t && t <= fs.t_hi) r_sum = r_sum + fs.ResidualAt(t);
    }
    const geom::Point r_avg = r_sum / static_cast<double>(hits);

    // Line 11: undo the rotation / recompose into world coordinates.
    geom::Point world;
    if (options.method == RepresentativeMethod::kRotation2D) {
      const double yp = r_avg.y();
      world = geom::Point(cos_phi * t - sin_phi * yp,
                          sin_phi * t + cos_phi * yp);
    } else {
      world = axis * t + r_avg;
    }
    rep.Add(world);  // Line 12.
    have_prev = true;
    prev_t = t;
  }
  return rep;
}

}  // namespace

traj::Trajectory RepresentativeTrajectory(
    const std::vector<geom::Segment>& segments, const Cluster& cluster,
    const RepresentativeOptions& options) {
  if (cluster.member_indices.empty()) {
    return traj::Trajectory(cluster.id, "representative");
  }
  return SweepWithAxis(segments, cluster, options,
                       AverageDirectionVector(segments, cluster));
}

traj::Trajectory RepresentativeTrajectory(
    const traj::SegmentStore& store, const Cluster& cluster,
    const RepresentativeOptions& options) {
  if (cluster.member_indices.empty()) {
    return traj::Trajectory(cluster.id, "representative");
  }
  // The axis sums the store's cached direction vectors; the sweep itself
  // reads endpoints, which only the AoS view carries.
  return SweepWithAxis(store.segments(), cluster, options,
                       AverageDirectionVector(store, cluster));
}

}  // namespace traclus::cluster
