#ifndef TRACLUS_CLUSTER_DBSCAN_SEGMENTS_H_
#define TRACLUS_CLUSTER_DBSCAN_SEGMENTS_H_

#include "cluster/cluster.h"
#include "cluster/neighborhood.h"

namespace traclus::cluster {

/// Parameters of the line-segment clustering algorithm (Fig. 12).
struct DbscanOptions {
  /// Neighborhood radius ε (Definition 4).
  double eps = 1.0;
  /// Core-segment density threshold MinLns (Definition 5).
  double min_lns = 3.0;
  /// Trajectory-cardinality threshold of the step-3 filter. The paper notes "a
  /// threshold other than MinLns can be used" (Fig. 12 line 14 comment);
  /// a negative value means "use min_lns". 0 disables the filter.
  double min_trajectory_cardinality = -1.0;
  /// Weighted-trajectory extension (§4.2): when true, |Nε(L)| is the sum of the
  /// neighbors' weights rather than their count, so e.g. a stronger hurricane
  /// contributes more density.
  bool use_weights = false;
  /// Worker threads for the ε-neighborhood batch (the Lemma 3 hot path): the
  /// whole query set is computed across a pool, then the sequential expansion
  /// loop consumes the cached lists. 0 = hardware concurrency; 1 = query
  /// inline during expansion, exactly the original single-threaded behavior.
  /// Cluster IDs and labels are identical for every value.
  int num_threads = 1;
};

/// Density-based clustering of line segments — the grouping phase of TRACLUS
/// (Fig. 12), an adaptation of DBSCAN with two changes: the line-segment
/// distance function, and the step-3 filter that removes density-connected sets
/// drawn from too few distinct trajectories (Definition 10), since those do not
/// "explain the behavior of a sufficient number of trajectories".
///
/// `provider` supplies exact ε-neighborhoods and must be bound to `segments`.
/// Deterministic: segments are seeded in index order, and the expansion queue
/// is FIFO, so identical inputs yield identical labellings.
ClusteringResult DbscanSegments(const std::vector<geom::Segment>& segments,
                                const NeighborhoodProvider& provider,
                                const DbscanOptions& options);

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_DBSCAN_SEGMENTS_H_
