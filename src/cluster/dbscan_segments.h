#ifndef TRACLUS_CLUSTER_DBSCAN_SEGMENTS_H_
#define TRACLUS_CLUSTER_DBSCAN_SEGMENTS_H_

#include <cstddef>
#include <functional>

#include "cluster/cluster.h"
#include "cluster/neighborhood.h"
#include "common/cancellation.h"

namespace traclus::cluster {

/// Parameters of the line-segment clustering algorithm (Fig. 12).
struct DbscanOptions {
  /// Neighborhood radius ε (Definition 4).
  double eps = 1.0;
  /// Core-segment density threshold MinLns (Definition 5).
  double min_lns = 3.0;
  /// Trajectory-cardinality threshold of the step-3 filter. The paper notes "a
  /// threshold other than MinLns can be used" (Fig. 12 line 14 comment);
  /// a negative value means "use min_lns". 0 disables the filter.
  double min_trajectory_cardinality = -1.0;
  /// Weighted-trajectory extension (§4.2): when true, |Nε(L)| is the sum of the
  /// neighbors' weights rather than their count, so e.g. a stronger hurricane
  /// contributes more density.
  bool use_weights = false;
  /// Worker threads for the ε-neighborhood queries (the Lemma 3 hot path):
  /// queries are computed across a pool in bounded blocks and the sequential
  /// expansion loop consumes them. 0 = hardware concurrency; 1 = query inline
  /// during expansion, exactly the original single-threaded behavior.
  /// Cluster IDs and labels are identical for every value.
  int num_threads = 1;
  /// Maximum number of ε-neighborhood lists resident at once in the batched
  /// (num_threads > 1) path. Peak extra memory is O(batch_block · max|Nε|)
  /// instead of the O(Σ|Nε|) a full up-front batch would hold; every list is
  /// still computed exactly once, so labels are identical for every value.
  /// 0 selects the default (1024).
  size_t batch_block = 0;
  /// Optional cooperative cancellation, polled between seeds of the expansion
  /// loop (and hence between query blocks). When it fires, DbscanSegments
  /// aborts by throwing common::OperationCancelled; the engine layer converts
  /// that to StatusCode::kCancelled.
  const common::CancellationToken* cancellation = nullptr;
  /// Optional progress callback: completed fraction of the seed scan in
  /// [0, 1], invoked on the calling thread only, at a bounded number of evenly
  /// spaced points. The call sequence depends only on the input size, never on
  /// thread count.
  std::function<void(double)> progress;
};

/// Density-based clustering of line segments — the grouping phase of TRACLUS
/// (Fig. 12), an adaptation of DBSCAN with two changes: the line-segment
/// distance function, and the step-3 filter that removes density-connected sets
/// drawn from too few distinct trajectories (Definition 10), since those do not
/// "explain the behavior of a sufficient number of trajectories".
///
/// `provider` supplies exact ε-neighborhoods and must be bound to `store`.
/// Weighted density reads the store's contiguous weight column and the step-3
/// filter its trajectory-id column. Deterministic: segments are seeded in
/// index order, and the expansion queue is FIFO, so identical inputs yield
/// identical labellings.
ClusteringResult DbscanSegments(const traj::SegmentStore& store,
                                const NeighborhoodProvider& provider,
                                const DbscanOptions& options);

/// View-backed overload: the algorithm reads the segment database only
/// through the catalog columns of a SegmentSetView (count, weights,
/// trajectory ids) — segment payloads are touched solely by `provider`'s own
/// ε-queries. This is the entry point of the chunked out-of-core grouping
/// path, where the view comes from a ChunkedSegmentStore's always-resident
/// catalog and the provider faults payload chunks on demand. The store
/// overload above delegates here via SegmentSetView::Of; labellings are
/// identical.
ClusteringResult DbscanSegments(const SegmentSetView& view,
                                const NeighborhoodProvider& provider,
                                const DbscanOptions& options);

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_DBSCAN_SEGMENTS_H_
