#include "cluster/rtree_index.h"

#include <algorithm>
#include <cmath>

namespace traclus::cluster {

namespace {

// Center of a box along dimension d; STR sorts by tile centers.
double Center(const geom::BBox& b, int d) { return 0.5 * (b.lo(d) + b.hi(d)); }

}  // namespace

StrRTreeIndex::StrRTreeIndex(const traj::SegmentStore& store,
                             const distance::SegmentDistance& dist,
                             int leaf_capacity,
                             distance::BatchKernel kernel)
    : store_(store), dist_(dist), kernel_(kernel) {
  TRACLUS_CHECK_GE(leaf_capacity, 2);
  if (store_.empty()) return;

  // Level 0: one leaf entry per segment. The STR pass groups segment indices
  // into leaves; subsequent passes group node indices into internal nodes.
  std::vector<size_t> entries(store_.size());
  for (size_t i = 0; i < entries.size(); ++i) entries[i] = i;
  std::vector<size_t> level = PackLevel(entries, /*leaf_level=*/true,
                                        leaf_capacity);
  height_ = 1;
  while (level.size() > 1) {
    level = PackLevel(level, /*leaf_level=*/false, leaf_capacity);
    ++height_;
  }
  root_ = level.front();
}

std::vector<size_t> StrRTreeIndex::PackLevel(const std::vector<size_t>& level,
                                             bool leaf_level, int capacity) {
  // Boxes of the entries being packed.
  auto box_of = [&](size_t entry) -> geom::BBox {
    if (leaf_level) return store_.bbox(entry);
    return nodes_[entry].box;
  };

  std::vector<size_t> sorted = level;
  std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
    return Center(box_of(a), 0) < Center(box_of(b), 0);
  });

  // STR: S = ceil(sqrt(n / capacity)) vertical slabs of S*capacity entries,
  // each slab sorted by y and chopped into nodes of `capacity`.
  const size_t n = sorted.size();
  const size_t num_nodes_target =
      (n + capacity - 1) / static_cast<size_t>(capacity);
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_nodes_target))));
  // Entries per vertical slab: capacity × (nodes per slab).
  const size_t per_slab = static_cast<size_t>(capacity) *
                          ((num_nodes_target + slabs - 1) / slabs);

  std::vector<size_t> parents;
  for (size_t s = 0; s * per_slab < n; ++s) {
    const size_t lo = s * per_slab;
    const size_t hi = std::min(n, lo + per_slab);
    std::sort(sorted.begin() + lo, sorted.begin() + hi,
              [&](size_t a, size_t b) {
                return Center(box_of(a), 1) < Center(box_of(b), 1);
              });
    for (size_t start = lo; start < hi;
         start += static_cast<size_t>(capacity)) {
      Node node;
      node.leaf = leaf_level;
      const size_t end = std::min(hi, start + static_cast<size_t>(capacity));
      for (size_t k = start; k < end; ++k) {
        node.children.push_back(sorted[k]);
        node.box.Extend(box_of(sorted[k]));
      }
      nodes_.push_back(std::move(node));
      parents.push_back(nodes_.size() - 1);
    }
  }
  return parents;
}

std::vector<size_t> StrRTreeIndex::Neighbors(size_t query_index,
                                             double eps) const {
  TRACLUS_DCHECK(query_index < store_.size());
  std::vector<size_t> out;
  distance::BatchOptions refine_options;
  refine_options.kernel = kernel_;

  const double factor = dist_.LowerBoundFactor();
  if (factor <= 0.0) {
    // No usable bound: every segment is a candidate; the kernel refines them
    // all (its prune uses the same factor and disables itself).
    distance::EpsilonRefineRange(store_, dist_, query_index, 0, store_.size(),
                                 eps, out, refine_options);
    return out;
  }
  const double radius = eps / factor;
  const geom::BBox& qbox = store_.bbox(query_index);

  // Candidate generation: depth-first descent with MBR mindist pruning.
  // Exact membership is decided by the batched refine afterwards.
  std::vector<size_t> candidates;
  std::vector<size_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.box.MinDist(qbox) > radius) continue;
    if (!node.leaf) {
      for (const size_t child : node.children) stack.push_back(child);
      continue;
    }
    for (const size_t i : node.children) {
      if (i == query_index) {
        candidates.push_back(i);
        continue;
      }
      if (store_.bbox(i).MinDist(qbox) > radius) continue;
      candidates.push_back(i);
    }
  }
  distance::EpsilonRefine(
      store_, dist_, query_index,
      common::Span<const size_t>(candidates.data(), candidates.size()), eps,
      out, refine_options);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace traclus::cluster
