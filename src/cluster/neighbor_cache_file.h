#ifndef TRACLUS_CLUSTER_NEIGHBOR_CACHE_FILE_H_
#define TRACLUS_CLUSTER_NEIGHBOR_CACHE_FILE_H_

// Persistent ε-neighborhood cache: serialize every Nε(L) list to a versioned
// binary file so repeated runs over unchanged inputs skip the O(n²)
// candidate/refine work entirely (the cpptraj load_pair_ / PAIRDISTFILE
// idiom, adapted to neighborhood lists).
//
// Keying. Each file is named by the 64-bit content hash of everything the
// answer depends on — the SegmentStore's defining columns, the distance
// weights + directed flag, and ε (distance::NeighborhoodCacheKey). The
// cache directory therefore holds one file per distinct (store, config, ε)
// ever run against it: the sieve stage's sampled store and each shard's
// effective query store hash differently from the full store and get their
// own files, so the cache composes with every grouping decorator without
// coordination. Mutating ANY key input — one coordinate, one id, one
// weight, ε — changes the hash and misses (tests/neighbor_cache_test.cc
// perturbs each input and asserts it).
//
// File format v1 (little-endian, all integers u64 unless noted):
//   u32 magic 'NBC1'   u32 version=1
//   u64 key            u64 n              u64 eps (raw double bits)
//   u64 total_indices
//   u64 offsets[n+1]   — list i occupies payload[offsets[i], offsets[i+1])
//   u64 payload[total_indices]
//   u32 magic 'NBC1'   — trailing sentinel, catches truncation
// A load validates magic/version (corrupt → InvalidArgument), the recorded
// key and ε against the expected ones (stale → FailedPrecondition), the
// exact file size implied by the header (truncated → IOError), and offset
// monotonicity/bounds (corrupt → InvalidArgument); a missing file is
// NotFound. A bad file is NEVER silently served — the caller decides
// whether to recompute. Writes go to `path + ".tmp"` and rename into
// place, so a crashed writer cannot leave a half-written file under the
// live name.

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "cluster/neighborhood.h"
#include "distance/segment_distance.h"
#include "traj/segment_store.h"

namespace traclus::cluster {

/// Current on-disk format version.
inline constexpr uint32_t kNeighborCacheFileVersion = 1;

/// The file holding `key`'s lists inside `directory`: nbc-<hex16 key>.bin.
std::string NeighborCacheFilePath(const std::string& directory, uint64_t key);

/// Validated header of a cache file: everything needed to serve lists with
/// bounded residency (the payload itself stays on disk).
struct NeighborCacheFileHeader {
  uint64_t key = 0;
  uint64_t n = 0;
  double eps = 0.0;
  uint64_t total_indices = 0;
  /// n+1 entries, in index (not byte) units into the payload section.
  std::vector<uint64_t> offsets;
  /// Byte offset of payload[0] within the file.
  uint64_t payload_begin = 0;
};

/// Opens and fully validates a cache file against the expected key, size,
/// and ε (raw-bit comparison). Typed failures, never a silent wrong answer:
///   * missing file                          → NotFound
///   * bad magic / version / offsets / n     → InvalidArgument (corrupt)
///   * file size != header-implied size      → IOError (truncated)
///   * recorded key or ε != expected         → FailedPrecondition (stale)
common::Result<NeighborCacheFileHeader> LoadNeighborCacheFileHeader(
    const std::string& path, uint64_t expected_key, uint64_t expected_n,
    double expected_eps);

/// Computes every ε-neighborhood through `base` (in bounded NeighborsBatch
/// slices across `pool`) and writes the v1 file for `key` at `path`,
/// atomically (tmp + rename). Overwrites an existing file.
common::Status WriteNeighborCacheFile(const std::string& path, uint64_t key,
                                      const NeighborhoodProvider& base,
                                      double eps, common::ThreadPool& pool);

/// NeighborhoodProvider decorator that loads-or-computes through the cache
/// directory: on key match it serves lists from the file; on miss (or any
/// stale/corrupt/truncated file) it recomputes through `base`, rewrites the
/// file, and serves from the fresh copy. Either way, every served list
/// equals base.Neighbors(i, eps) exactly — the writer computes through the
/// same provider the direct path would use, so cached cluster output is
/// byte-identical (the goldens pin this).
///
/// Residency is bounded: only the offset table (O(n)) stays in memory;
/// list payloads are read on demand through a seek behind an internal
/// mutex, so concurrent queries are race-free and peak memory tracks the
/// consumer's block size, like NeighborhoodCache bounded mode.
///
/// Bound to one ε at construction; querying a different ε is a programming
/// error (checked).
class FileNeighborhoodCache : public NeighborhoodProvider {
 public:
  /// Builds the cache for (store, config, eps) under `directory` (created
  /// if absent). `base` must answer ε-queries over exactly `store`; it and
  /// the directory must outlive the cache. Load failures fall back to
  /// recompute+rewrite; genuine write/IO failures propagate.
  static common::Result<std::unique_ptr<FileNeighborhoodCache>> Create(
      const NeighborhoodProvider& base, const traj::SegmentStore& store,
      const distance::SegmentDistanceConfig& config, double eps,
      const std::string& directory, common::ThreadPool& pool);

  std::vector<size_t> Neighbors(size_t query_index, double eps) const override;
  std::vector<std::vector<size_t>> AllNeighbors(
      double eps, common::ThreadPool& pool) const override;
  /// Answered from the offset table alone — no payload IO at all.
  std::vector<size_t> AllNeighborhoodSizes(
      double eps, common::ThreadPool& pool) const override;
  std::vector<std::vector<size_t>> NeighborsBatch(
      const std::vector<size_t>& queries, double eps,
      common::ThreadPool& pool) const override;
  size_t size() const override { return header_.n; }

  /// True when this run served from a pre-existing file (warm hit); false
  /// when the lists were recomputed and the file rewritten (cold miss).
  bool loaded_from_file() const { return loaded_from_file_; }
  uint64_t key() const { return header_.key; }
  const std::string& file_path() const { return path_; }

 private:
  FileNeighborhoodCache(NeighborCacheFileHeader header, std::string path,
                        std::ifstream file, double eps, bool loaded_from_file);

  /// Reads list i's payload from disk. Serializes on mu_ (one shared read
  /// cursor); a post-validation read failure is a programming/environment
  /// error (file mutated underneath us) and DCHECK-fails.
  std::vector<size_t> ReadList(size_t i) const TRACLUS_EXCLUDES(mu_);

  NeighborCacheFileHeader header_;
  std::string path_;
  double eps_;
  bool loaded_from_file_;
  mutable common::Mutex mu_;
  mutable std::ifstream file_ TRACLUS_GUARDED_BY(mu_);
};

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_NEIGHBOR_CACHE_FILE_H_
