#include "cluster/neighborhood_index.h"

#include <algorithm>
#include <cmath>

namespace traclus::cluster {

namespace {

// Mixes three 21-bit-truncated cell coordinates into one key. Collisions are
// harmless (cells just share a bucket); correctness never depends on the key.
uint64_t Mix(int64_t x, int64_t y, int64_t z) {
  const uint64_t a = static_cast<uint64_t>(x) * 0x9E3779B97F4A7C15ull;
  const uint64_t b = static_cast<uint64_t>(y) * 0xC2B2AE3D27D4EB4Full;
  const uint64_t c = static_cast<uint64_t>(z) * 0x165667B19E3779F9ull;
  uint64_t h = a ^ (b >> 1) ^ (c << 1);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

}  // namespace

GridNeighborhoodIndex::GridNeighborhoodIndex(
    const traj::SegmentStore& store, const distance::SegmentDistance& dist,
    double cell_size, distance::BatchKernel kernel)
    : store_(store), dist_(dist), kernel_(kernel) {
  // Per-segment MBRs are an invariant the store already caches; the index
  // only derives its cell size from them.
  double extent_sum = 0.0;
  for (const geom::BBox& b : store_.bboxes()) {
    for (int d = 0; d < b.dims(); ++d) extent_sum += b.Extent(d);
  }
  dims_ = store_.dims();

  if (cell_size > 0.0) {
    cell_size_ = cell_size;
  } else {
    const double denom =
        std::max<size_t>(1, store_.size()) * std::max(1, dims_);
    const double mean_extent = extent_sum / static_cast<double>(denom);
    cell_size_ = std::max(2.0 * mean_extent, 1e-9);
  }

  for (size_t i = 0; i < store_.size(); ++i) {
    const geom::BBox& b = store_.bbox(i);
    const CellCoord lo = CellOf(b.lo(0), b.lo(1), dims_ == 3 ? b.lo(2) : 0.0);
    const CellCoord hi = CellOf(b.hi(0), b.hi(1), dims_ == 3 ? b.hi(2) : 0.0);
    for (int64_t cx = lo.x; cx <= hi.x; ++cx) {
      for (int64_t cy = lo.y; cy <= hi.y; ++cy) {
        for (int64_t cz = lo.z; cz <= hi.z; ++cz) {
          cells_[CellKey({cx, cy, cz})].push_back(i);
        }
      }
    }
  }
}

GridNeighborhoodIndex::CellCoord GridNeighborhoodIndex::CellOf(
    double x, double y, double z) const {
  return CellCoord{static_cast<int64_t>(std::floor(x / cell_size_)),
                   static_cast<int64_t>(std::floor(y / cell_size_)),
                   static_cast<int64_t>(std::floor(z / cell_size_))};
}

uint64_t GridNeighborhoodIndex::CellKey(const CellCoord& c) {
  return Mix(c.x, c.y, c.z);
}

std::vector<size_t> GridNeighborhoodIndex::Neighbors(size_t query_index,
                                                     double eps) const {
  // One scratch per thread makes the index-interface overload safe for
  // concurrent callers. Sharing the scratch across index instances on a
  // thread is fine: stamps grow monotonically per scratch, so marks left by
  // a different index (or an earlier query) are always stale, and the stamp
  // wrap-around path clears everything.
  thread_local QueryScratch per_thread_scratch;
  return Neighbors(query_index, eps, &per_thread_scratch);
}

std::vector<std::vector<size_t>> GridNeighborhoodIndex::AllNeighbors(
    double eps, common::ThreadPool& pool) const {
  std::vector<std::vector<size_t>> lists(store_.size());
  // One scratch per contiguous chunk: threads never share dedup stamps, and
  // every list lands in its own index-addressed slot, so the batch is both
  // race-free and bit-identical across thread counts.
  pool.ParallelForChunked(
      0, store_.size(), [this, eps, &lists](size_t lo, size_t hi) {
        QueryScratch scratch;
        for (size_t i = lo; i < hi; ++i) {
          lists[i] = Neighbors(i, eps, &scratch);
        }
      });
  return lists;
}

std::vector<size_t> GridNeighborhoodIndex::AllNeighborhoodSizes(
    double eps, common::ThreadPool& pool) const {
  std::vector<size_t> sizes(store_.size());
  pool.ParallelForChunked(
      0, store_.size(), [this, eps, &sizes](size_t lo, size_t hi) {
        QueryScratch scratch;
        for (size_t i = lo; i < hi; ++i) {
          sizes[i] = Neighbors(i, eps, &scratch).size();
        }
      });
  return sizes;
}

std::vector<std::vector<size_t>> GridNeighborhoodIndex::NeighborsBatch(
    const std::vector<size_t>& queries, double eps,
    common::ThreadPool& pool) const {
  std::vector<std::vector<size_t>> lists(queries.size());
  pool.ParallelForChunked(
      0, queries.size(), [this, eps, &queries, &lists](size_t lo, size_t hi) {
        QueryScratch scratch;
        for (size_t k = lo; k < hi; ++k) {
          lists[k] = Neighbors(queries[k], eps, &scratch);
        }
      });
  return lists;
}

std::vector<size_t> GridNeighborhoodIndex::Neighbors(
    size_t query_index, double eps, QueryScratch* scratch) const {
  TRACLUS_DCHECK(query_index < store_.size());
  const double factor = dist_.LowerBoundFactor();
  std::vector<size_t> out;
  distance::BatchOptions refine_options;
  refine_options.kernel = kernel_;

  if (factor <= 0.0) {
    // No usable lower bound for this weight configuration: every segment is
    // a candidate; the kernel refines all of them (its prune uses the same
    // factor and disables itself).
    distance::EpsilonRefineRange(store_, dist_, query_index, 0, store_.size(),
                                 eps, out, refine_options);
    return out;
  }

  const double radius = eps / factor;
  const geom::BBox& qbox = store_.bbox(query_index);

  std::vector<uint32_t>& visit_stamp = scratch->visit_stamp;
  visit_stamp.resize(store_.size(), 0u);
  ++scratch->stamp;
  if (scratch->stamp == 0) {  // Wrap-around: reset once every 2^32 queries.
    std::fill(visit_stamp.begin(), visit_stamp.end(), 0u);
    scratch->stamp = 1;
  }
  const uint32_t stamp = scratch->stamp;

  // Candidate generation: deduped cell members whose MBR can be within
  // reach. Exact membership is decided by the batched refine below.
  std::vector<size_t>& candidates = scratch->candidates;
  candidates.clear();
  const CellCoord lo = CellOf(qbox.lo(0) - radius, qbox.lo(1) - radius,
                              dims_ == 3 ? qbox.lo(2) - radius : 0.0);
  const CellCoord hi = CellOf(qbox.hi(0) + radius, qbox.hi(1) + radius,
                              dims_ == 3 ? qbox.hi(2) + radius : 0.0);
  for (int64_t cx = lo.x; cx <= hi.x; ++cx) {
    for (int64_t cy = lo.y; cy <= hi.y; ++cy) {
      for (int64_t cz = lo.z; cz <= hi.z; ++cz) {
        const auto it = cells_.find(CellKey({cx, cy, cz}));
        if (it == cells_.end()) continue;
        for (const size_t i : it->second) {
          if (visit_stamp[i] == stamp) continue;
          visit_stamp[i] = stamp;
          if (i == query_index) {
            candidates.push_back(i);
            continue;
          }
          // Sound prune on cached MBRs.
          if (store_.bbox(i).MinDist(qbox) > radius) continue;
          candidates.push_back(i);
        }
      }
    }
  }
  distance::EpsilonRefine(
      store_, dist_, query_index,
      common::Span<const size_t>(candidates.data(), candidates.size()), eps,
      out, refine_options);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace traclus::cluster
