#ifndef TRACLUS_CLUSTER_OPTICS_SEGMENTS_H_
#define TRACLUS_CLUSTER_OPTICS_SEGMENTS_H_

#include <functional>
#include <limits>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/neighborhood.h"
#include "common/cancellation.h"

namespace traclus::cluster {

/// Reachability value of a segment never reached within ε.
inline constexpr double kUndefinedReachability =
    std::numeric_limits<double>::infinity();

/// Parameters of OPTICS over line segments.
struct OpticsOptions {
  double eps = 1.0;      ///< Generating distance ε.
  double min_lns = 3.0;  ///< MinLns (MinPts analogue).
  /// Batch kernel evaluating the per-step neighbor distances (core and
  /// reachability distances share one batch). Results are identical for
  /// every choice.
  distance::BatchKernel kernel = distance::BatchKernel::kAuto;
  /// Optional cooperative cancellation, polled once per ordering step (the
  /// walk is inherently sequential, so steps are the natural poll points).
  /// When it fires, OpticsSegments aborts by throwing
  /// common::OperationCancelled.
  const common::CancellationToken* cancellation = nullptr;
  /// Optional progress callback: fraction of segments ordered, in [0, 1],
  /// invoked on the calling thread at a bounded number of evenly spaced
  /// points. The call sequence depends only on the input size.
  std::function<void(double)> progress;
};

/// OPTICS output: a cluster ordering with reachability/core distances.
struct OpticsResult {
  /// Segment indices in OPTICS visit order.
  std::vector<size_t> ordering;
  /// reachability-distance of ordering[k] (kUndefinedReachability at walk
  /// starts / never-reached segments).
  std::vector<double> reachability;
  /// core-distance of ordering[k] (kUndefinedReachability for non-core).
  std::vector<double> core_distance;
};

/// OPTICS (Ankerst et al.) adapted to line segments with the TRACLUS distance.
///
/// Implements the §7.1(2) "parameter insensitivity" extension and powers the
/// Appendix D analysis: for point data the pairwise distance inside an
/// ε-neighborhood is bounded by 2ε, whereas for segments it is unbounded, so
/// reachability-distances of cluster members stay close to ε and clusters are
/// harder to tell from noise — the paper's argument for preferring DBSCAN.
/// Core- and reachability-distances are evaluated through the store's
/// invariant-cached distance fast path. Deterministic for fixed inputs.
OpticsResult OpticsSegments(const traj::SegmentStore& store,
                            const distance::SegmentDistance& dist,
                            const NeighborhoodProvider& provider,
                            const OpticsOptions& options);

/// Extracts DBSCAN-equivalent clusters from an OPTICS ordering at `eps_cut` ≤
/// the generating ε (Ankerst et al. §4.1 ExtractDBSCAN-Clustering), then
/// applies the TRACLUS trajectory-cardinality filter so results are comparable
/// with DbscanSegments.
ClusteringResult ExtractDbscanClustering(
    const traj::SegmentStore& store, const OpticsResult& optics,
    double eps_cut, double min_lns, double min_trajectory_cardinality = -1.0);

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_OPTICS_SEGMENTS_H_
