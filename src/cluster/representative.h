#ifndef TRACLUS_CLUSTER_REPRESENTATIVE_H_
#define TRACLUS_CLUSTER_REPRESENTATIVE_H_

#include <vector>

#include "cluster/cluster.h"
#include "geom/point.h"
#include "traj/segment_store.h"
#include "traj/trajectory.h"

namespace traclus::cluster {

/// How the sweep coordinate frame is realized.
enum class RepresentativeMethod {
  /// The paper's 2-D formulation: rotate the axes with the Formula (9) matrix
  /// so X becomes parallel to the average direction vector (Fig. 14). 2-D only.
  kRotation2D,
  /// Dimension-generic equivalent: scalar-project points onto the unit average
  /// direction vector and average the orthogonal residuals. Identical to
  /// kRotation2D in two dimensions (tests assert this).
  kProjection,
};

/// Parameters of Representative Trajectory Generation (Fig. 15).
struct RepresentativeOptions {
  /// Minimum number of segments the sweep line must hit for a point to be
  /// emitted (Fig. 13: positions hit by fewer than MinLns segments are
  /// skipped).
  double min_lns = 3.0;
  /// Smoothing parameter γ: minimum gap between consecutive emitted sweep
  /// positions (Fig. 15 line 09). 0 disables smoothing.
  double gamma = 0.0;
  RepresentativeMethod method = RepresentativeMethod::kProjection;
  /// When true, sweep hit counts use segment weights (consistent with the
  /// weighted-density extension of §4.2).
  bool use_weights = false;
};

/// Computes the average direction vector of Definition 11 over the cluster's
/// member segments: the (component-wise) mean of the segment vectors. Summing
/// full vectors rather than unit vectors deliberately weights longer segments
/// more. If the mean is (near-)zero — segments cancel — falls back to the
/// direction of the longest member so a frame always exists.
geom::Point AverageDirectionVector(const std::vector<geom::Segment>& segments,
                                   const Cluster& cluster);

/// Store-backed overload: sums the cached direction vectors (and reads the
/// cached lengths in the cancellation fallback) instead of recomputing them
/// per member.
geom::Point AverageDirectionVector(const traj::SegmentStore& store,
                                   const Cluster& cluster);

/// Generates the representative trajectory RTR_i of a cluster (§4.3, Fig. 15):
/// sweeps a line orthogonal to the average direction vector across the member
/// segments, and wherever at least MinLns segments are hit (and the gap since
/// the previous emission is ≥ γ) emits the average coordinate of the hit
/// segments, translated back into the original frame.
///
/// Returns an empty trajectory when no sweep position reaches MinLns hits.
traj::Trajectory RepresentativeTrajectory(
    const std::vector<geom::Segment>& segments, const Cluster& cluster,
    const RepresentativeOptions& options);

/// Store-backed overload: identical output; the sweep frame is built from the
/// store's cached direction sums and its AoS view.
traj::Trajectory RepresentativeTrajectory(const traj::SegmentStore& store,
                                          const Cluster& cluster,
                                          const RepresentativeOptions& options);

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_REPRESENTATIVE_H_
