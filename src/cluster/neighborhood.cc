#include "cluster/neighborhood.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/span.h"

namespace traclus::cluster {

namespace {

/// Queries materialized per slice while filling the eager cache: bounds the
/// transient batch vector without changing what ends up resident.
constexpr size_t kEagerFillSlice = 1024;

}  // namespace

std::vector<std::vector<size_t>> NeighborhoodProvider::AllNeighbors(
    double eps, common::ThreadPool& pool) const {
  std::vector<std::vector<size_t>> lists(size());
  pool.ParallelFor(0, size(), [this, eps, &lists](size_t i) {
    lists[i] = Neighbors(i, eps);
  });
  return lists;
}

std::vector<size_t> NeighborhoodProvider::AllNeighborhoodSizes(
    double eps, common::ThreadPool& pool) const {
  std::vector<size_t> sizes(size());
  pool.ParallelFor(0, size(), [this, eps, &sizes](size_t i) {
    sizes[i] = Neighbors(i, eps).size();
  });
  return sizes;
}

std::vector<std::vector<size_t>> NeighborhoodProvider::NeighborsBatch(
    const std::vector<size_t>& queries, double eps,
    common::ThreadPool& pool) const {
  std::vector<std::vector<size_t>> lists(queries.size());
  pool.ParallelFor(0, queries.size(), [this, eps, &queries, &lists](size_t k) {
    lists[k] = Neighbors(queries[k], eps);
  });
  return lists;
}

NeighborhoodCache::NeighborhoodCache(const NeighborhoodProvider& base,
                                     double eps, common::ThreadPool& pool,
                                     size_t block)
    : base_(&base),
      pool_(&pool),
      eps_(eps),
      block_(block),
      size_(base.size()) {
  if (block_ == 0) {
    // Eager: every list materialized, filled through bounded NeighborsBatch
    // slices (each slice's scratch vector is the only transient overhead).
    lists_.resize(size_);
    std::vector<size_t> queries;
    for (size_t lo = 0; lo < size_; lo += kEagerFillSlice) {
      const size_t hi = std::min(size_, lo + kEagerFillSlice);
      queries.resize(hi - lo);
      for (size_t i = lo; i < hi; ++i) queries[i - lo] = i;
      std::vector<std::vector<size_t>> slice =
          base.NeighborsBatch(queries, eps_, pool);
      for (size_t i = lo; i < hi; ++i) lists_[i] = std::move(slice[i - lo]);
    }
    peak_resident_ = size_;
  } else {
    served_.assign(size_, 0);
  }
}

size_t NeighborhoodCache::resident_lists() const {
  if (block_ == 0) return lists_.size();
  common::MutexLock lock(mu_);
  return parked_.size();
}

size_t NeighborhoodCache::peak_resident_lists() const {
  common::MutexLock lock(mu_);
  return peak_resident_;  // Eager mode set this once in the constructor.
}

std::vector<size_t> NeighborhoodCache::Neighbors(size_t query_index,
                                                 double eps) const {
  TRACLUS_DCHECK(query_index < size_);
  TRACLUS_CHECK_EQ(eps, eps_);  // The cache is bound to one ε.
  if (block_ == 0) return lists_[query_index];

  // Bounded mode: serve-and-evict, the whole transaction under mu_ so
  // concurrent queries observe consistent parked/served state. A parked list
  // is consumed at most once.
  common::MutexLock lock(mu_);
  const auto it = parked_.find(query_index);
  if (it != parked_.end()) {
    std::vector<size_t> list = std::move(it->second);
    parked_.erase(it);
    return list;
  }
  if (served_[query_index]) {
    // Already served and evicted: recompute through the base so repeat
    // access stays exact without growing residency.
    return base_->Neighbors(query_index, eps_);
  }

  // Miss: batch the demanded index together with the following not-yet-served
  // indices (the natural consumption order of a streaming pass), compute the
  // block across the pool, serve the first and park the rest. The batch is
  // sized against the lists already parked so total residency — parked plus
  // the one in flight — never exceeds the block.
  const size_t max_batch =
      block_ > parked_.size() ? block_ - parked_.size() : 1;
  std::vector<size_t> batch;
  batch.reserve(max_batch);
  batch.push_back(query_index);
  served_[query_index] = 1;
  for (size_t i = query_index + 1; i < size_ && batch.size() < max_batch;
       ++i) {
    if (!served_[i]) {
      served_[i] = 1;
      batch.push_back(i);
    }
  }
  std::vector<std::vector<size_t>> lists =
      base_->NeighborsBatch(batch, eps_, *pool_);
  for (size_t k = 1; k < batch.size(); ++k) {
    parked_.emplace(batch[k], std::move(lists[k]));
  }
  // Residency peaks right now: the parked lists plus the one being served.
  peak_resident_ = std::max(peak_resident_, parked_.size() + 1);
  return std::move(lists[0]);
}

std::vector<std::vector<size_t>> NeighborhoodCache::AllNeighbors(
    double eps, common::ThreadPool& pool) const {
  TRACLUS_CHECK_EQ(eps, eps_);
  if (block_ == 0) return lists_;
  // Bounded mode holds no full copy; delegate the (inherently all-resident)
  // batch to the base provider.
  return base_->AllNeighbors(eps_, pool);
}

std::vector<size_t> NeighborhoodCache::AllNeighborhoodSizes(
    double eps, common::ThreadPool& pool) const {
  TRACLUS_CHECK_EQ(eps, eps_);
  if (block_ == 0) {
    std::vector<size_t> sizes(lists_.size());
    for (size_t i = 0; i < lists_.size(); ++i) sizes[i] = lists_[i].size();
    return sizes;
  }
  return base_->AllNeighborhoodSizes(eps_, pool);
}

std::vector<std::vector<size_t>> NeighborhoodCache::NeighborsBatch(
    const std::vector<size_t>& queries, double eps,
    common::ThreadPool& /*pool*/) const {
  TRACLUS_CHECK_EQ(eps, eps_);
  std::vector<std::vector<size_t>> lists(queries.size());
  for (size_t k = 0; k < queries.size(); ++k) {
    TRACLUS_DCHECK(queries[k] < size_);
    // Eager: copy out of the resident store. Bounded: serve-and-evict per
    // query, which also consumes any parked list.
    lists[k] = Neighbors(queries[k], eps);
  }
  return lists;
}

std::vector<size_t> BruteForceNeighborhood::Neighbors(size_t query_index,
                                                      double eps) const {
  TRACLUS_DCHECK(query_index < store_.size());
  // Candidates are the whole database, in index order; the batched kernel
  // prunes with the midpoint/half-length bound and refines the rest —
  // exactly the per-pair scan's output, in the same ascending order.
  std::vector<size_t> out;
  distance::BatchOptions options;
  options.kernel = kernel_;
  distance::EpsilonRefineRange(store_, dist_, query_index, 0, store_.size(),
                               eps, out, options);
  return out;
}

std::vector<std::vector<size_t>> BruteForceNeighborhood::NeighborsBatch(
    const std::vector<size_t>& queries, double eps,
    common::ThreadPool& pool) const {
  std::vector<std::vector<size_t>> lists(queries.size());
  distance::BatchOptions options;
  options.kernel = kernel_;
  // Each chunk's queries share one ε-refine tile over the whole database;
  // lists land in index-addressed slots, so the batch is identical for every
  // thread count (the tile's staging is thread_local — nothing is shared).
  pool.ParallelForChunked(
      0, queries.size(), [this, eps, &queries, &lists, &options](
                             size_t lo, size_t hi) {
        distance::EpsilonRefineTile(
            store_, dist_,
            common::Span<const size_t>(queries.data() + lo, hi - lo), 0,
            store_.size(), eps, lists.data() + lo, options);
      });
  return lists;
}

std::vector<std::vector<size_t>> BruteForceNeighborhood::AllNeighbors(
    double eps, common::ThreadPool& pool) const {
  std::vector<size_t> queries(store_.size());
  for (size_t i = 0; i < queries.size(); ++i) queries[i] = i;
  return NeighborsBatch(queries, eps, pool);
}

}  // namespace traclus::cluster
