#include "cluster/neighborhood.h"

#include "common/logging.h"

namespace traclus::cluster {

std::vector<std::vector<size_t>> NeighborhoodProvider::AllNeighbors(
    double eps, common::ThreadPool& pool) const {
  std::vector<std::vector<size_t>> lists(size());
  pool.ParallelFor(0, size(), [this, eps, &lists](size_t i) {
    lists[i] = Neighbors(i, eps);
  });
  return lists;
}

std::vector<size_t> NeighborhoodProvider::AllNeighborhoodSizes(
    double eps, common::ThreadPool& pool) const {
  std::vector<size_t> sizes(size());
  pool.ParallelFor(0, size(), [this, eps, &sizes](size_t i) {
    sizes[i] = Neighbors(i, eps).size();
  });
  return sizes;
}

std::vector<std::vector<size_t>> NeighborhoodProvider::NeighborsBatch(
    const std::vector<size_t>& queries, double eps,
    common::ThreadPool& pool) const {
  std::vector<std::vector<size_t>> lists(queries.size());
  pool.ParallelFor(0, queries.size(), [this, eps, &queries, &lists](size_t k) {
    lists[k] = Neighbors(queries[k], eps);
  });
  return lists;
}

std::vector<std::vector<size_t>> NeighborhoodCache::NeighborsBatch(
    const std::vector<size_t>& queries, double eps,
    common::ThreadPool& /*pool*/) const {
  TRACLUS_CHECK_EQ(eps, eps_);
  std::vector<std::vector<size_t>> lists(queries.size());
  for (size_t k = 0; k < queries.size(); ++k) {
    TRACLUS_DCHECK(queries[k] < lists_.size());
    lists[k] = lists_[queries[k]];
  }
  return lists;
}

std::vector<size_t> NeighborhoodCache::Neighbors(size_t query_index,
                                                 double eps) const {
  TRACLUS_DCHECK(query_index < lists_.size());
  TRACLUS_CHECK_EQ(eps, eps_);  // The cache is bound to one ε.
  return lists_[query_index];
}

std::vector<std::vector<size_t>> NeighborhoodCache::AllNeighbors(
    double eps, common::ThreadPool& /*pool*/) const {
  TRACLUS_CHECK_EQ(eps, eps_);
  return lists_;
}

std::vector<size_t> NeighborhoodCache::AllNeighborhoodSizes(
    double eps, common::ThreadPool& /*pool*/) const {
  TRACLUS_CHECK_EQ(eps, eps_);
  std::vector<size_t> sizes(lists_.size());
  for (size_t i = 0; i < lists_.size(); ++i) sizes[i] = lists_[i].size();
  return sizes;
}

std::vector<size_t> BruteForceNeighborhood::Neighbors(size_t query_index,
                                                      double eps) const {
  TRACLUS_DCHECK(query_index < store_.size());
  std::vector<size_t> out;
  for (size_t i = 0; i < store_.size(); ++i) {
    if (i == query_index || dist_(store_, query_index, i) <= eps) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace traclus::cluster
