#include "cluster/neighborhood.h"

namespace traclus::cluster {

std::vector<size_t> BruteForceNeighborhood::Neighbors(size_t query_index,
                                                      double eps) const {
  TRACLUS_DCHECK(query_index < segments_.size());
  std::vector<size_t> out;
  const geom::Segment& q = segments_[query_index];
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (i == query_index || dist_(q, segments_[i]) <= eps) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace traclus::cluster
