#include "cluster/optics_segments.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "common/span.h"
#include "distance/batch_kernels.h"

namespace traclus::cluster {

namespace {

// Min-heap entry for the OPTICS seed list; ties broken by index so the walk is
// deterministic.
struct Seed {
  double reachability;
  size_t index;
  bool operator>(const Seed& o) const {
    if (reachability != o.reachability) return reachability > o.reachability;
    return index > o.index;
  }
};

}  // namespace

OpticsResult OpticsSegments(const traj::SegmentStore& store,
                            const distance::SegmentDistance& dist,
                            const NeighborhoodProvider& provider,
                            const OpticsOptions& options) {
  TRACLUS_CHECK_EQ(provider.size(), store.size());
  const size_t n = store.size();
  OpticsResult result;
  result.ordering.reserve(n);
  result.reachability.reserve(n);
  result.core_distance.reserve(n);

  std::vector<bool> processed(n, false);
  std::vector<double> reach(n, kUndefinedReachability);
  const size_t progress_stride = std::max<size_t>(1, n / 64);

  // Per-step distance staging, reused across ordering steps. Each step
  // evaluates dist(current, j) for every neighbor j exactly once through the
  // batch kernel; the core-distance selection and the reachability updates
  // both read from this one batch (the pair-at-a-time path evaluated the
  // same distances twice — once per consumer).
  std::vector<double> neighbor_dist;
  std::vector<double> nth_scratch;

  auto core_distance_of =
      [&](const std::vector<size_t>& neighbors) -> double {
    if (neighbors.size() < static_cast<size_t>(options.min_lns)) {
      return kUndefinedReachability;
    }
    // MinLns-th smallest distance to a neighbor (the query itself
    // contributes distance 0, exactly as in point OPTICS; the batch kernel
    // yields exactly 0.0 for the self pair).
    nth_scratch = neighbor_dist;
    const size_t k = static_cast<size_t>(options.min_lns) - 1;
    std::nth_element(nth_scratch.begin(), nth_scratch.begin() + k,
                     nth_scratch.end());
    return nth_scratch[k];
  };

  for (size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;

    std::priority_queue<Seed, std::vector<Seed>, std::greater<Seed>> seeds;
    seeds.push(Seed{kUndefinedReachability, start});

    while (!seeds.empty()) {
      common::ThrowIfCancelled(options.cancellation);
      const Seed s = seeds.top();
      seeds.pop();
      if (processed[s.index]) continue;
      // Stale-entry lazy deletion: only the best reachability for an index
      // wins.
      if (s.reachability > reach[s.index] &&
          !(s.reachability == kUndefinedReachability &&
            reach[s.index] == kUndefinedReachability)) {
        continue;
      }
      processed[s.index] = true;

      const std::vector<size_t> neighbors =
          provider.Neighbors(s.index, options.eps);
      // One batched evaluation serves both consumers below. The explicit
      // self-pair zero mirrors the historical "i == j ? 0.0" short-circuit
      // (the kernel yields exactly +0.0 there as well).
      neighbor_dist.resize(neighbors.size());
      distance::DistanceBatch(
          store, dist, s.index,
          common::Span<const size_t>(neighbors.data(), neighbors.size()),
          common::Span<double>(neighbor_dist.data(), neighbor_dist.size()),
          options.kernel);
      for (size_t k = 0; k < neighbors.size(); ++k) {
        if (neighbors[k] == s.index) neighbor_dist[k] = 0.0;
      }
      const double core_d = core_distance_of(neighbors);

      result.ordering.push_back(s.index);
      result.reachability.push_back(reach[s.index]);
      result.core_distance.push_back(core_d);
      if (options.progress &&
          result.ordering.size() % progress_stride == 0) {
        options.progress(static_cast<double>(result.ordering.size()) /
                         static_cast<double>(n));
      }

      if (core_d == kUndefinedReachability) continue;  // Not a core segment.
      for (size_t k = 0; k < neighbors.size(); ++k) {
        const size_t j = neighbors[k];
        if (processed[j]) continue;
        const double d = neighbor_dist[k];
        const double new_reach = std::max(core_d, d);
        if (new_reach < reach[j]) {
          reach[j] = new_reach;
          seeds.push(Seed{new_reach, j});
        }
      }
    }
  }
  if (options.progress) options.progress(1.0);
  return result;
}

ClusteringResult ExtractDbscanClustering(
    const traj::SegmentStore& store, const OpticsResult& optics,
    double eps_cut, double min_lns, double min_trajectory_cardinality) {
  const size_t n = store.size();
  ClusteringResult result;
  result.labels.assign(n, kNoise);
  std::vector<Cluster> raw;

  int cluster_id = -1;
  for (size_t k = 0; k < optics.ordering.size(); ++k) {
    const size_t idx = optics.ordering[k];
    const double r = optics.reachability[k];
    const double c = optics.core_distance[k];
    if (r > eps_cut) {
      if (c <= eps_cut) {  // New cluster seeded by a core object.
        ++cluster_id;
        raw.push_back(Cluster{cluster_id, {}});
        raw.back().member_indices.push_back(idx);
        result.labels[idx] = cluster_id;
      }
      // else: noise (stays kNoise).
    } else if (cluster_id >= 0) {
      raw[cluster_id].member_indices.push_back(idx);
      result.labels[idx] = cluster_id;
    }
  }

  const double threshold =
      min_trajectory_cardinality < 0.0 ? min_lns : min_trajectory_cardinality;
  std::vector<int> remap(raw.size(), kNoise);
  int dense_id = 0;
  for (auto& cluster : raw) {
    if (static_cast<double>(TrajectoryCardinality(store, cluster)) <
        threshold) {
      continue;
    }
    remap[cluster.id] = dense_id;
    cluster.id = dense_id;
    result.clusters.push_back(std::move(cluster));
    ++dense_id;
  }
  result.num_noise = 0;
  for (size_t i = 0; i < n; ++i) {
    if (result.labels[i] >= 0) result.labels[i] = remap[result.labels[i]];
    if (result.labels[i] == kNoise) ++result.num_noise;
  }
  return result;
}

}  // namespace traclus::cluster
