#ifndef TRACLUS_CLUSTER_NEIGHBORHOOD_INDEX_H_
#define TRACLUS_CLUSTER_NEIGHBORHOOD_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/neighborhood.h"
#include "geom/bbox.h"

namespace traclus::cluster {

/// Exact ε-neighborhood index over line segments: a uniform grid of segment
/// bounding boxes with lower-bound pruning.
///
/// Lemma 3 observes that a spatial index drops clustering from O(n²) to
/// O(n log n), but §4.2 notes the TRACLUS distance is not a metric, so indexes
/// cannot prune with the query distance directly. This index instead prunes
/// with plain Euclidean geometry using the provable bound
///   dist(Li, Lj) ≥ c · mindist(Li, Lj),  c = min(w⊥/2, w∥)
/// (see SegmentDistance::LowerBoundFactor). A query with radius ε therefore
/// only needs candidates whose MBR mindist is ≤ ε / c; every candidate is then
/// checked with the exact distance, making results identical to brute force.
/// When c = 0 (a degenerate weight configuration) the index transparently
/// degrades to a scan, preserving exactness.
///
/// The cell edge defaults to twice the mean segment MBR extent, keeping per-
/// segment cell fan-out O(1) on the paper's workloads. This plays the role of
/// the R-tree suggested in Lemma 3; a uniform grid has the same asymptotics for
/// the (densely populated, laptop-scale) evaluation data sets and far simpler
/// invariants.
///
/// Queries follow the candidate/refine split: the grid walk gathers deduped,
/// MBR-pruned candidates into the scratch, and distance::EpsilonRefine prunes
/// the rest with the midpoint/half-length bound before the blocked exact
/// evaluation.
class GridNeighborhoodIndex : public NeighborhoodProvider {
 public:
  /// Builds the index; `store` and `dist` must outlive it. Per-segment MBRs
  /// come straight from the store's invariant cache (no rebuild here), and
  /// every exact verification uses the batched kernels over the store.
  /// `cell_size` ≤ 0 selects the automatic heuristic; `kernel` selects the
  /// refinement kernel (results identical for every choice).
  GridNeighborhoodIndex(
      const traj::SegmentStore& store, const distance::SegmentDistance& dist,
      double cell_size = 0.0,
      distance::BatchKernel kernel = distance::BatchKernel::kAuto);

  /// Reusable per-caller query state: candidate-dedup stamps plus the
  /// candidate staging buffer handed to the refine kernel. One scratch must
  /// never be used by two threads at once; distinct scratches make `Neighbors`
  /// safe to call concurrently.
  struct QueryScratch {
    std::vector<uint32_t> visit_stamp;
    uint32_t stamp = 0;
    std::vector<size_t> candidates;
  };

  /// Convenience query against a per-thread scratch: safe to call from any
  /// number of threads concurrently (each thread owns its scratch), identical
  /// results to the explicit-scratch overload. Batch entry points below are
  /// still preferred on hot paths — they amortize one scratch per chunk of
  /// work instead of keeping one per thread alive.
  std::vector<size_t> Neighbors(size_t query_index, double eps) const override;

  /// Thread-safe query against caller-owned scratch. Results are identical to
  /// the per-thread-scratch overload.
  std::vector<size_t> Neighbors(size_t query_index, double eps,
                                QueryScratch* scratch) const;

  /// Batched queries with one scratch per chunk of work, fanned over `pool`.
  std::vector<std::vector<size_t>> AllNeighbors(
      double eps, common::ThreadPool& pool) const override;

  /// Size-only batch with the same per-chunk scratch scheme; lists are
  /// discarded as soon as they are counted.
  std::vector<size_t> AllNeighborhoodSizes(
      double eps, common::ThreadPool& pool) const override;

  /// Subset batch with one scratch per chunk of queries.
  std::vector<std::vector<size_t>> NeighborsBatch(
      const std::vector<size_t>& queries, double eps,
      common::ThreadPool& pool) const override;

  size_t size() const override { return store_.size(); }

  double cell_size() const { return cell_size_; }

  /// Number of grid cells materialized (diagnostics/tests).
  size_t NumCells() const { return cells_.size(); }

 private:
  struct CellCoord {
    int64_t x;
    int64_t y;
    int64_t z;
  };

  CellCoord CellOf(double x, double y, double z) const;
  static uint64_t CellKey(const CellCoord& c);

  const traj::SegmentStore& store_;
  const distance::SegmentDistance& dist_;
  distance::BatchKernel kernel_;
  double cell_size_ = 1.0;
  int dims_ = 2;
  std::unordered_map<uint64_t, std::vector<size_t>> cells_;
};

}  // namespace traclus::cluster

#endif  // TRACLUS_CLUSTER_NEIGHBORHOOD_INDEX_H_
