#include "datagen/corridor.h"

#include <algorithm>
#include <cmath>

#include "geom/bbox.h"

namespace traclus::datagen {

double Corridor::Length() const {
  double total = 0.0;
  for (size_t i = 1; i < waypoints.size(); ++i) {
    total += geom::Distance(waypoints[i - 1], waypoints[i]);
  }
  return total;
}

geom::Point Corridor::At(double t) const {
  TRACLUS_CHECK_GE(waypoints.size(), 2u);
  t = std::clamp(t, 0.0, 1.0);
  const double target = t * Length();
  double walked = 0.0;
  for (size_t i = 1; i < waypoints.size(); ++i) {
    const double leg = geom::Distance(waypoints[i - 1], waypoints[i]);
    if (walked + leg >= target || i == waypoints.size() - 1) {
      const double u = (leg == 0.0) ? 0.0 : (target - walked) / leg;
      return waypoints[i - 1] +
             (waypoints[i] - waypoints[i - 1]) * std::clamp(u, 0.0, 1.0);
    }
    walked += leg;
  }
  return waypoints.back();
}

void TraverseCorridor(const Corridor& corridor, double t_begin, double t_end,
                      int steps, double noise_sigma, common::Rng* rng,
                      traj::Trajectory* out) {
  TRACLUS_CHECK_GE(steps, 2);
  for (int k = 0; k < steps; ++k) {
    const double u = static_cast<double>(k) / static_cast<double>(steps - 1);
    const double t = t_begin + (t_end - t_begin) * u;
    geom::Point p = corridor.At(t);
    p = geom::Point(p.x() + rng->Gaussian(0.0, noise_sigma),
                    p.y() + rng->Gaussian(0.0, noise_sigma));
    out->Add(p);
  }
}

void RandomWalk(const geom::Point& start, int steps, double step_sigma,
                const geom::BBox* world, common::Rng* rng,
                traj::Trajectory* out) {
  TRACLUS_CHECK_GE(steps, 1);
  geom::Point p = start;
  for (int k = 0; k < steps; ++k) {
    out->Add(p);
    geom::Point next(p.x() + rng->Gaussian(0.0, step_sigma),
                     p.y() + rng->Gaussian(0.0, step_sigma));
    if (world != nullptr && !world->empty()) {
      next = geom::Point(std::clamp(next.x(), world->lo(0), world->hi(0)),
                         std::clamp(next.y(), world->lo(1), world->hi(1)));
    }
    p = next;
  }
}

}  // namespace traclus::datagen
