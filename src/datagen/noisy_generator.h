#ifndef TRACLUS_DATAGEN_NOISY_GENERATOR_H_
#define TRACLUS_DATAGEN_NOISY_GENERATOR_H_

#include <cstdint>

#include "traj/trajectory_database.h"

namespace traclus::datagen {

/// Configuration of the Fig. 23 robustness experiment data: planted clusters
/// plus a controlled fraction of pure-noise trajectories ("25% of trajectories
/// are generated as noises").
struct NoisyConfig {
  int num_trajectories = 200;
  double noise_fraction = 0.25;
  int points_per_trajectory = 40;
  /// Number of planted corridors; the clustering should recover exactly these.
  int num_planted_corridors = 4;
  double corridor_noise = 1.0;
  uint64_t seed = 20070723;
};

/// Generates the noisy synthetic database. Non-noise trajectories follow one of
/// `num_planted_corridors` horizontal corridors stacked in a [0,100]² world;
/// noise trajectories are unconstrained random walks across the same world.
traj::TrajectoryDatabase GenerateNoisy(const NoisyConfig& config);

}  // namespace traclus::datagen

#endif  // TRACLUS_DATAGEN_NOISY_GENERATOR_H_
