#include "datagen/animal_generator.h"

#include <algorithm>
#include <cmath>

#include "geom/bbox.h"

namespace traclus::datagen {

namespace {

geom::BBox StarkeyWorld() {
  geom::BBox world;
  world.Extend(geom::Point(0, 0));
  world.Extend(geom::Point(400, 300));
  return world;
}

// Nearest corridor entry (by endpoint distance to p); returns corridor index
// and whether to traverse forward.
void NearestCorridor(const std::vector<Corridor>& corridors,
                     const geom::Point& p, size_t* index, bool* forward) {
  double best = std::numeric_limits<double>::infinity();
  *index = 0;
  *forward = true;
  for (size_t c = 0; c < corridors.size(); ++c) {
    const double d_front = geom::Distance(p, corridors[c].waypoints.front());
    const double d_back = geom::Distance(p, corridors[c].waypoints.back());
    if (d_front < best) {
      best = d_front;
      *index = c;
      *forward = true;
    }
    if (d_back < best) {
      best = d_back;
      *index = c;
      *forward = false;
    }
  }
}

}  // namespace

AnimalConfig Elk1993Config() {
  AnimalConfig cfg;
  cfg.num_trajectories = 33;
  cfg.points_per_trajectory = 1430;  // 33 × 1430 ≈ 47,190 ≈ the paper's 47,204.
  cfg.seed = 19930401;
  cfg.add_divergent_region = true;
  // Thirteen corridors spread over the range (Fig. 21: thirteen clusters in
  // "most of the dense regions"). Kept well separated so each yields a distinct
  // cluster at sane ε.
  cfg.corridors = {
      Corridor{{geom::Point(30, 40), geom::Point(110, 55)}},
      Corridor{{geom::Point(40, 110), geom::Point(120, 95)}},
      Corridor{{geom::Point(35, 180), geom::Point(115, 195)}},
      Corridor{{geom::Point(50, 250), geom::Point(130, 240)}},
      Corridor{{geom::Point(160, 35), geom::Point(240, 50)}},
      Corridor{{geom::Point(170, 105), geom::Point(250, 90)}},
      Corridor{{geom::Point(165, 170), geom::Point(245, 185)}},
      Corridor{{geom::Point(180, 250), geom::Point(255, 235)}},
      Corridor{{geom::Point(290, 40), geom::Point(370, 55)}},
      Corridor{{geom::Point(300, 110), geom::Point(380, 95)}},
      Corridor{{geom::Point(60, 70), geom::Point(60, 150)}},   // vertical
      Corridor{{geom::Point(210, 70), geom::Point(210, 150)}}, // vertical
      Corridor{{geom::Point(330, 130), geom::Point(330, 210)}} // vertical
  };
  return cfg;
}

AnimalConfig Deer1995Config() {
  AnimalConfig cfg;
  cfg.num_trajectories = 32;
  cfg.points_per_trajectory = 627;  // 32 × 627 ≈ 20,064 ≈ the paper's 20,065.
  cfg.seed = 19950401;
  cfg.add_divergent_region = false;
  // Two heavily used corridors in the two densest regions (Fig. 22). Commutes
  // are more frequent so the two regions clearly dominate.
  cfg.corridors = {
      Corridor{{geom::Point(70, 80), geom::Point(160, 95)}},
      Corridor{{geom::Point(240, 200), geom::Point(330, 185)}},
  };
  cfg.commute_probability = 0.035;
  return cfg;
}

traj::TrajectoryDatabase GenerateAnimals(const AnimalConfig& config) {
  TRACLUS_CHECK_GT(config.num_trajectories, 0);
  TRACLUS_CHECK_GE(config.points_per_trajectory, 10);
  TRACLUS_CHECK(!config.corridors.empty());
  common::Rng rng(config.seed);
  traj::TrajectoryDatabase db;
  const geom::BBox world = StarkeyWorld();

  // The divergent region: a box many animals cross in unrelated directions.
  const geom::Point divergent_center(340, 250);
  const double divergent_radius = 35.0;

  for (int i = 0; i < config.num_trajectories; ++i) {
    traj::Trajectory tr(/*id=*/i, /*label=*/"animal");
    // Home range near one of the corridors so commutes are natural.
    const size_t home_corridor = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(config.corridors.size()) - 1));
    geom::Point p = config.corridors[home_corridor].At(rng.Uniform(0.0, 1.0));
    p = geom::Point(p.x() + rng.Gaussian(0.0, 15.0),
                    p.y() + rng.Gaussian(0.0, 15.0));
    double heading = rng.Uniform(0.0, 2.0 * M_PI);

    while (static_cast<int>(tr.size()) < config.points_per_trajectory) {
      const int remaining = config.points_per_trajectory -
                            static_cast<int>(tr.size());
      if (config.add_divergent_region && rng.Bernoulli(0.005) &&
          remaining > 30) {
        // Cross the divergent region along a random chord: entry and exit are
        // independent boundary points, so crossings share the region but not a
        // path — dense yet divergent, exactly the Fig. 21 upper-right regime.
        const double a1 = rng.Uniform(0.0, 2.0 * M_PI);
        const double a2 = rng.Uniform(0.0, 2.0 * M_PI);
        const geom::Point entry =
            divergent_center +
            geom::Point(std::cos(a1), std::sin(a1)) * divergent_radius;
        const geom::Point exit =
            divergent_center +
            geom::Point(std::cos(a2), std::sin(a2)) * divergent_radius;
        const int steps = std::min(14, remaining);
        for (int k = 0; k < steps; ++k) {
          const double u = static_cast<double>(k) / (steps - 1);
          geom::Point q = entry + (exit - entry) * u;
          // Strong lateral noise: even similar chords yield segments with
          // visibly different headings, so no crossing path repeats.
          tr.Add(geom::Point(q.x() + rng.Gaussian(0.0, 3.0),
                             q.y() + rng.Gaussian(0.0, 3.0)));
        }
        p = exit;
        heading = rng.Uniform(0.0, 2.0 * M_PI);
        continue;
      }
      if (rng.Bernoulli(config.commute_probability) && remaining > 10) {
        // Commute along the nearest corridor.
        size_t c = 0;
        bool forward = true;
        NearestCorridor(config.corridors, p, &c, &forward);
        const int steps = std::min(config.commute_steps, remaining);
        TraverseCorridor(config.corridors[c], forward ? 0.0 : 1.0,
                         forward ? 1.0 : 0.0, steps, config.corridor_noise,
                         &rng, &tr);
        p = tr.points().back();
        continue;
      }
      // Home-range wander: a correlated walk — heading persists with small
      // turns, so movement bouts are straight-ish (and MDL-compressible), like
      // real telemetry fixes.
      heading += rng.Gaussian(0.0, config.turn_sigma);
      const double step = std::abs(rng.Gaussian(config.wander_sigma,
                                                config.wander_sigma * 0.3));
      geom::Point next(p.x() + step * std::cos(heading),
                       p.y() + step * std::sin(heading));
      if (next.x() < world.lo(0) || next.x() > world.hi(0) ||
          next.y() < world.lo(1) || next.y() > world.hi(1)) {
        heading += M_PI;  // Bounce off the range boundary.
        next = geom::Point(std::clamp(next.x(), world.lo(0), world.hi(0)),
                           std::clamp(next.y(), world.lo(1), world.hi(1)));
      }
      tr.Add(next);
      p = next;
    }
    db.Add(std::move(tr));
  }
  return db;
}

}  // namespace traclus::datagen
