#ifndef TRACLUS_DATAGEN_HURRICANE_GENERATOR_H_
#define TRACLUS_DATAGEN_HURRICANE_GENERATOR_H_

#include <cstdint>

#include "traj/trajectory_database.h"

namespace traclus::datagen {

/// Configuration of the synthetic Atlantic-hurricane track generator, the
/// substitute for the Best Track data set (§5.1: 570 trajectories, 17,736
/// points; Atlantic hurricanes 1950–2004). See DESIGN.md §2 for the
/// substitution rationale.
struct HurricaneConfig {
  int num_trajectories = 570;
  /// Mean points per track; Best Track averages ≈31 six-hourly fixes.
  int mean_track_points = 31;
  /// Population mix, matching the §5.2 narrative. Fractions must sum to ≤ 1;
  /// the remainder becomes erratic (noise) tracks.
  double frac_straight_westward = 0.40;  ///< Lower E→W band.
  double frac_recurving = 0.30;          ///< E→W, then S→N, then W→E curve.
  double frac_straight_eastward = 0.15;  ///< Upper W→E band.
  /// Lateral spread of tracks around their corridor (world units ~ degrees).
  double corridor_noise = 1.2;
  /// Per-hurricane intensity weight range (used by the weighted extension).
  double min_weight = 1.0;
  double max_weight = 1.0;
  uint64_t seed = 20070612;  ///< Arbitrary default; fully deterministic.
};

/// Generates the synthetic hurricane-track database.
///
/// World frame: x ∈ [0, 100] (longitude-like, east positive), y ∈ [0, 60]
/// (latitude-like, north positive). Planted structure (cf. Fig. 18):
///  - a lower corridor of east-to-west movers around y ≈ 15,
///  - recurving tracks that run west, turn north around x ≈ 28, then east at
///    y ≈ 42 — contributing vertical south-to-north cluster mass,
///  - an upper corridor of west-to-east movers around y ≈ 45,
///  - erratic remainder tracks that should end up as noise.
/// Tracks cover random sub-spans of their corridor so lengths vary like real
/// hurricane lifetimes.
traj::TrajectoryDatabase GenerateHurricanes(const HurricaneConfig& config);

}  // namespace traclus::datagen

#endif  // TRACLUS_DATAGEN_HURRICANE_GENERATOR_H_
