#ifndef TRACLUS_DATAGEN_CORRIDOR_H_
#define TRACLUS_DATAGEN_CORRIDOR_H_

#include <vector>

#include "common/rng.h"
#include "geom/bbox.h"
#include "geom/point.h"
#include "traj/trajectory.h"

namespace traclus::datagen {

/// A corridor: a polyline that many generated trajectories follow with noise.
///
/// Corridors are the ground-truth common sub-trajectories of the synthetic data
/// sets: each planted corridor should surface as (at least part of) a TRACLUS
/// cluster, which is what the figure-reproduction benches check.
struct Corridor {
  std::vector<geom::Point> waypoints;

  /// Total polyline length.
  double Length() const;

  /// Point at arc-length parameter t ∈ [0, 1] along the polyline.
  geom::Point At(double t) const;
};

/// Appends a noisy traversal of `corridor` to `out`.
///
/// Walks from arc-length fraction `t_begin` to `t_end` (either order) in
/// `steps` samples, adding isotropic Gaussian jitter of `noise_sigma` to each
/// sample. This is how generators simulate "many objects moved along this path,
/// each slightly differently".
void TraverseCorridor(const Corridor& corridor, double t_begin, double t_end,
                      int steps, double noise_sigma, common::Rng* rng,
                      traj::Trajectory* out);

/// Appends a `steps`-point Gaussian random walk starting at `start` with step
/// scale `step_sigma`, clamped into `world` when non-null.
void RandomWalk(const geom::Point& start, int steps, double step_sigma,
                const geom::BBox* world, common::Rng* rng,
                traj::Trajectory* out);

}  // namespace traclus::datagen

#endif  // TRACLUS_DATAGEN_CORRIDOR_H_
