#ifndef TRACLUS_DATAGEN_ANIMAL_GENERATOR_H_
#define TRACLUS_DATAGEN_ANIMAL_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "datagen/corridor.h"
#include "traj/trajectory_database.h"

namespace traclus::datagen {

/// Configuration of the synthetic radio-telemetry generator, the substitute for
/// the Starkey-project animal movement data (§5.1). The real sets are few, very
/// long trajectories: Elk1993 = 33 trajectories / 47,204 points, Deer1995 =
/// 32 / 20,065. Animals alternate home-range wandering with commutes along
/// habitual shared corridors; the corridors are the ground-truth clusters.
struct AnimalConfig {
  int num_trajectories = 33;
  int points_per_trajectory = 1430;
  /// Shared movement corridors (ground-truth common sub-trajectories).
  std::vector<Corridor> corridors;
  /// Probability that an animal starts a commute at any wander step.
  double commute_probability = 0.02;
  /// Points spent traversing a corridor per commute.
  int commute_steps = 60;
  /// Lateral noise while on a corridor.
  double corridor_noise = 2.0;
  /// Step scale of home-range wandering.
  double wander_sigma = 3.5;
  /// Heading persistence of the wander: per-step turn stddev in radians.
  /// Telemetry movement is a correlated walk — animals keep a heading for a
  /// while — which is also what makes MDL partitioning compress it.
  double turn_sigma = 0.35;
  /// When true, plants a dense-but-divergent region: many crossings, all in
  /// different directions, which must NOT become a cluster (Fig. 21's
  /// upper-right region: "the elks actually moved along different paths").
  bool add_divergent_region = false;
  uint64_t seed = 19930401;
};

/// Elk1993-shaped configuration: 33 long trajectories, 13 shared corridors
/// (Fig. 21 reports thirteen clusters), plus the divergent region.
AnimalConfig Elk1993Config();

/// Deer1995-shaped configuration: 32 trajectories, 2 heavily-used corridors in
/// the two densest regions (Fig. 22 reports two clusters) and a center region
/// that is "not so dense to be identified as a cluster".
AnimalConfig Deer1995Config();

/// Generates the synthetic telemetry database. World frame: x ∈ [0, 400],
/// y ∈ [0, 300] (Starkey-like metric grid).
traj::TrajectoryDatabase GenerateAnimals(const AnimalConfig& config);

}  // namespace traclus::datagen

#endif  // TRACLUS_DATAGEN_ANIMAL_GENERATOR_H_
