#ifndef TRACLUS_DATAGEN_COMMON_SUBTRAJECTORY_H_
#define TRACLUS_DATAGEN_COMMON_SUBTRAJECTORY_H_

#include <cstdint>

#include "traj/trajectory_database.h"

namespace traclus::datagen {

/// Configuration of the Fig. 1 / Example 1 scenario: trajectories that share
/// one common sub-trajectory and then fan out in entirely different directions.
/// Whole-trajectory clustering must fail on this set (the full paths are
/// dissimilar); the partition-and-group framework must recover the shared part.
struct CommonSubTrajectoryConfig {
  int num_trajectories = 5;  ///< TR1..TR5 in Fig. 1.
  /// Shared segment runs from (0, 0) to (shared_length, 0). Scales are chosen
  /// well above the MDL precision δ = 1 (like the paper's degree/meter
  /// coordinates), so step lengths carry nonzero description cost.
  double shared_length = 200.0;
  int shared_points = 12;    ///< Samples on the shared portion.
  int branch_points = 12;    ///< Samples on the divergent portion.
  double branch_length = 225.0;
  double noise_sigma = 2.0;
  uint64_t seed = 1;
};

/// Generates the common-sub-trajectory database. Each trajectory walks the
/// shared corridor left→right, then branches at an angle unique to it (angles
/// spread over ±100°), so no two full trajectories resemble each other.
traj::TrajectoryDatabase GenerateCommonSubTrajectory(
    const CommonSubTrajectoryConfig& config);

}  // namespace traclus::datagen

#endif  // TRACLUS_DATAGEN_COMMON_SUBTRAJECTORY_H_
