#include "datagen/noisy_generator.h"

#include "common/rng.h"
#include "datagen/corridor.h"
#include "geom/bbox.h"

namespace traclus::datagen {

traj::TrajectoryDatabase GenerateNoisy(const NoisyConfig& config) {
  TRACLUS_CHECK_GT(config.num_trajectories, 0);
  TRACLUS_CHECK(config.noise_fraction >= 0.0 && config.noise_fraction <= 1.0);
  TRACLUS_CHECK_GE(config.num_planted_corridors, 1);
  common::Rng rng(config.seed);
  traj::TrajectoryDatabase db;

  geom::BBox world;
  world.Extend(geom::Point(0, 0));
  world.Extend(geom::Point(100, 100));

  // Horizontal corridors stacked with even vertical spacing.
  std::vector<Corridor> corridors;
  for (int c = 0; c < config.num_planted_corridors; ++c) {
    const double y = 100.0 * (c + 1) / (config.num_planted_corridors + 1);
    corridors.push_back(Corridor{{geom::Point(5, y), geom::Point(95, y)}});
  }

  const int num_noise = static_cast<int>(
      config.noise_fraction * config.num_trajectories + 0.5);
  for (int i = 0; i < config.num_trajectories; ++i) {
    traj::Trajectory tr(/*id=*/i);
    if (i < num_noise) {
      tr.set_label("noise");
      const geom::Point start(rng.Uniform(5.0, 95.0), rng.Uniform(5.0, 95.0));
      RandomWalk(start, config.points_per_trajectory, /*step_sigma=*/3.0,
                 &world, &rng, &tr);
    } else {
      tr.set_label("corridor");
      const size_t c = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(corridors.size()) - 1));
      const double a = rng.Uniform(0.0, 0.2);
      const double b = rng.Uniform(0.8, 1.0);
      const bool forward = rng.Bernoulli(0.5);
      TraverseCorridor(corridors[c], forward ? a : b, forward ? b : a,
                       config.points_per_trajectory, config.corridor_noise,
                       &rng, &tr);
    }
    db.Add(std::move(tr));
  }
  return db;
}

}  // namespace traclus::datagen
