#include "datagen/common_subtrajectory.h"

#include <cmath>

#include "common/rng.h"

namespace traclus::datagen {

traj::TrajectoryDatabase GenerateCommonSubTrajectory(
    const CommonSubTrajectoryConfig& config) {
  TRACLUS_CHECK_GE(config.num_trajectories, 2);
  TRACLUS_CHECK_GE(config.shared_points, 2);
  TRACLUS_CHECK_GE(config.branch_points, 2);
  common::Rng rng(config.seed);
  traj::TrajectoryDatabase db;

  for (int i = 0; i < config.num_trajectories; ++i) {
    traj::Trajectory tr(/*id=*/i, /*label=*/"fig1");
    // Shared corridor: (0,0) → (shared_length, 0).
    for (int k = 0; k < config.shared_points; ++k) {
      const double x = config.shared_length * k /
                       static_cast<double>(config.shared_points - 1);
      tr.Add(geom::Point(x + rng.Gaussian(0.0, config.noise_sigma),
                         rng.Gaussian(0.0, config.noise_sigma)));
    }
    // Branch: a per-trajectory angle fanning over ±100 degrees.
    const double span = 200.0 * M_PI / 180.0;
    const double angle =
        -span / 2.0 +
        span * i / static_cast<double>(config.num_trajectories - 1);
    const geom::Point origin(config.shared_length, 0.0);
    for (int k = 1; k <= config.branch_points; ++k) {
      const double r = config.branch_length * k /
                       static_cast<double>(config.branch_points);
      tr.Add(geom::Point(
          origin.x() + r * std::cos(angle) +
              rng.Gaussian(0.0, config.noise_sigma),
          origin.y() + r * std::sin(angle) +
              rng.Gaussian(0.0, config.noise_sigma)));
    }
    db.Add(std::move(tr));
  }
  return db;
}

}  // namespace traclus::datagen
