#include "datagen/hurricane_generator.h"

#include <algorithm>

#include "common/rng.h"
#include "datagen/corridor.h"
#include "geom/bbox.h"

namespace traclus::datagen {

namespace {

enum class TrackKind { kWestward, kRecurving, kEastward, kErratic };

TrackKind PickKind(const HurricaneConfig& cfg, common::Rng* rng) {
  const double u = rng->Uniform(0.0, 1.0);
  if (u < cfg.frac_straight_westward) return TrackKind::kWestward;
  if (u < cfg.frac_straight_westward + cfg.frac_recurving) {
    return TrackKind::kRecurving;
  }
  if (u < cfg.frac_straight_westward + cfg.frac_recurving +
              cfg.frac_straight_eastward) {
    return TrackKind::kEastward;
  }
  return TrackKind::kErratic;
}

}  // namespace

traj::TrajectoryDatabase GenerateHurricanes(const HurricaneConfig& config) {
  TRACLUS_CHECK_GT(config.num_trajectories, 0);
  TRACLUS_CHECK_GE(config.mean_track_points, 4);
  common::Rng rng(config.seed);
  traj::TrajectoryDatabase db;

  // The three planted corridors (see header). Recurve = west, north, east.
  const Corridor westward{{geom::Point(95, 15), geom::Point(15, 12)}};
  const Corridor recurve{{geom::Point(75, 11), geom::Point(32, 14),
                          geom::Point(27, 25), geom::Point(29, 40),
                          geom::Point(45, 43), geom::Point(85, 45)}};
  const Corridor eastward{{geom::Point(20, 46), geom::Point(88, 44)}};

  geom::BBox world;
  world.Extend(geom::Point(0, 0));
  world.Extend(geom::Point(100, 60));

  for (int i = 0; i < config.num_trajectories; ++i) {
    const TrackKind kind = PickKind(config, &rng);
    const int len = std::max<int>(
        4, static_cast<int>(rng.Gaussian(config.mean_track_points,
                                         config.mean_track_points / 4.0)));
    traj::Trajectory tr(/*id=*/i, /*label=*/"hurricane",
                        rng.Uniform(config.min_weight, config.max_weight));

    switch (kind) {
      case TrackKind::kWestward: {
        // A random sub-span of the westward corridor (tracks die at sea).
        const double a = rng.Uniform(0.0, 0.35);
        const double b = rng.Uniform(0.65, 1.0);
        TraverseCorridor(westward, a, b, len, config.corridor_noise, &rng, &tr);
        break;
      }
      case TrackKind::kRecurving: {
        const double a = rng.Uniform(0.0, 0.15);
        const double b = rng.Uniform(0.7, 1.0);
        TraverseCorridor(recurve, a, b, len, config.corridor_noise, &rng, &tr);
        break;
      }
      case TrackKind::kEastward: {
        const double a = rng.Uniform(0.0, 0.3);
        const double b = rng.Uniform(0.7, 1.0);
        TraverseCorridor(eastward, a, b, len, config.corridor_noise, &rng, &tr);
        break;
      }
      case TrackKind::kErratic: {
        const geom::Point start(rng.Uniform(5.0, 95.0), rng.Uniform(5.0, 55.0));
        RandomWalk(start, len, /*step_sigma=*/2.0, &world, &rng, &tr);
        break;
      }
    }
    db.Add(std::move(tr));
  }
  return db;
}

}  // namespace traclus::datagen
