#include "geom/segment.h"

#include <algorithm>
#include <sstream>

#include "geom/vector_ops.h"

namespace traclus::geom {

std::string Segment::ToString() const {
  std::ostringstream os;
  os << start_.ToString() << " -> " << end_.ToString();
  if (id_ >= 0) os << " [id=" << id_ << ", tr=" << trajectory_id_ << "]";
  return os.str();
}

double SegmentToSegmentDistance(const Segment& a, const Segment& b) {
  // Closed-form segment/segment distance via the standard clamped-parameter
  // approach (Eberly). Handles degenerate (point-like) segments.
  const Point d1 = a.Direction();
  const Point d2 = b.Direction();
  const Point r = a.start() - b.start();
  const double a11 = d1.SquaredNorm();
  const double a22 = d2.SquaredNorm();
  const double a12 = -Dot(d1, d2);
  const double b1 = -Dot(d1, r);
  const double b2 = Dot(d2, r);

  double s = 0.0;
  double t = 0.0;
  const double det = a11 * a22 - a12 * a12;
  if (a11 == 0.0 && a22 == 0.0) {
    // Both degenerate: point-to-point.
    return Distance(a.start(), b.start());
  }
  if (a11 == 0.0) {
    // `a` is a point.
    return PointToSegmentDistance(a.start(), b.start(), b.end());
  }
  if (a22 == 0.0) {
    // `b` is a point.
    return PointToSegmentDistance(b.start(), a.start(), a.end());
  }

  if (det > 1e-14 * a11 * a22) {
    // Non-parallel: unconstrained minimizer, then clamp and re-solve.
    s = std::clamp((b1 * a22 - b2 * a12) / det, 0.0, 1.0);
  } else {
    s = 0.0;  // Parallel: pick an endpoint of `a`, clamping fixes the rest.
  }
  t = (b2 - a12 * s) / a22;
  if (t < 0.0) {
    t = 0.0;
    s = std::clamp(b1 / a11, 0.0, 1.0);
  } else if (t > 1.0) {
    t = 1.0;
    s = std::clamp((b1 - a12) / a11, 0.0, 1.0);
  }

  const Point pa = a.start() + d1 * s;
  const Point pb = b.start() + d2 * t;
  double best = Distance(pa, pb);
  // Parallel/degenerate cases can still leave a suboptimal interior solution;
  // endpoint-to-segment distances complete the candidate set exactly.
  best = std::min(best, PointToSegmentDistance(a.start(), b.start(), b.end()));
  best = std::min(best, PointToSegmentDistance(a.end(), b.start(), b.end()));
  best = std::min(best, PointToSegmentDistance(b.start(), a.start(), a.end()));
  best = std::min(best, PointToSegmentDistance(b.end(), a.start(), a.end()));
  return best;
}

}  // namespace traclus::geom
