#include "geom/point.h"

#include <sstream>

namespace traclus::geom {

std::string Point::ToString() const {
  std::ostringstream os;
  os << "(";
  for (int i = 0; i < dims_; ++i) {
    if (i > 0) os << ", ";
    os << coords_[i];
  }
  os << ")";
  return os.str();
}

}  // namespace traclus::geom
