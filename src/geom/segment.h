#ifndef TRACLUS_GEOM_SEGMENT_H_
#define TRACLUS_GEOM_SEGMENT_H_

#include <cstdint>
#include <string>

#include "geom/point.h"

namespace traclus::geom {

/// Identifier of the trajectory a segment was extracted from.
using TrajectoryId = int64_t;

/// Identifier of a line segment inside a segment database.
using SegmentId = int64_t;

/// A directed line segment, the unit of clustering in the partition-and-group
/// framework (§2.1: a trajectory partition is a line segment p_i p_j).
///
/// Carries the provenance needed by the grouping phase: `trajectory_id` feeds
/// the trajectory-cardinality filter (Definition 10) and `weight` feeds the
/// weighted-trajectory extension (§4.2). `id` is the "internal identifier" the
/// paper uses to break ties when ordering segments for the symmetric distance
/// (Lemma 2 proof).
class Segment {
 public:
  Segment() : id_(-1), trajectory_id_(-1), weight_(1.0) {}

  Segment(Point start, Point end, SegmentId id = -1,
          TrajectoryId trajectory_id = -1, double weight = 1.0)
      : start_(start),
        end_(end),
        id_(id),
        trajectory_id_(trajectory_id),
        weight_(weight) {
    TRACLUS_DCHECK_EQ(start.dims(), end.dims());
  }

  const Point& start() const { return start_; }
  const Point& end() const { return end_; }
  SegmentId id() const { return id_; }
  TrajectoryId trajectory_id() const { return trajectory_id_; }
  double weight() const { return weight_; }
  int dims() const { return start_.dims(); }

  void set_id(SegmentId id) { id_ = id; }
  void set_trajectory_id(TrajectoryId tid) { trajectory_id_ = tid; }
  void set_weight(double w) { weight_ = w; }

  /// Direction vector end - start.
  Point Direction() const { return end_ - start_; }

  /// Euclidean length ||end - start||.
  double Length() const { return Direction().Norm(); }

  /// Midpoint of the segment.
  Point Midpoint() const { return (start_ + end_) * 0.5; }

  /// Reversed copy (start and end swapped); provenance fields are preserved.
  Segment Reversed() const {
    return Segment(end_, start_, id_, trajectory_id_, weight_);
  }

  bool operator==(const Segment& o) const {
    return start_ == o.start_ && end_ == o.end_;
  }

  std::string ToString() const;

 private:
  Point start_;
  Point end_;
  SegmentId id_;
  TrajectoryId trajectory_id_;
  double weight_;
};

/// Minimum Euclidean distance between two closed segments.
///
/// Used by the neighborhood index as the geometric quantity that lower-bounds
/// the (non-metric) TRACLUS distance; see `distance/segment_distance.h` for the
/// bound.
double SegmentToSegmentDistance(const Segment& a, const Segment& b);

}  // namespace traclus::geom

#endif  // TRACLUS_GEOM_SEGMENT_H_
