#ifndef TRACLUS_GEOM_POINT_H_
#define TRACLUS_GEOM_POINT_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/logging.h"

namespace traclus::geom {

/// Maximum spatial dimensionality supported by the library.
///
/// The paper defines trajectories over d-dimensional points and evaluates in
/// 2-D, noting the approach "can be applied also to three dimensions" (§4.3 fn.
/// 3). Fixed inline storage keeps points trivially copyable and cache-friendly,
/// which matters because distance computations dominate the clustering phase.
inline constexpr int kMaxDims = 3;

/// A d-dimensional point (d = 2 or 3) with value semantics.
///
/// Also used as a free vector; `vector_ops.h` provides the vector algebra from
/// Formulas (4), (5), and (8) of the paper.
class Point {
 public:
  /// Default: 2-D origin.
  Point() : coords_{0.0, 0.0, 0.0}, dims_(2) {}

  /// 2-D point.
  Point(double x, double y) : coords_{x, y, 0.0}, dims_(2) {}

  /// 3-D point.
  Point(double x, double y, double z) : coords_{x, y, z}, dims_(3) {}

  int dims() const { return dims_; }

  double operator[](int i) const {
    TRACLUS_DCHECK(i >= 0 && i < dims_);
    return coords_[i];
  }
  double& operator[](int i) {
    TRACLUS_DCHECK(i >= 0 && i < dims_);
    return coords_[i];
  }

  double x() const { return coords_[0]; }
  double y() const {
    TRACLUS_DCHECK(dims_ >= 2);
    return coords_[1];
  }
  double z() const {
    TRACLUS_DCHECK(dims_ >= 3);
    return coords_[2];
  }

  /// Component-wise sum; both points must share dimensionality.
  Point operator+(const Point& o) const {
    TRACLUS_DCHECK_EQ(dims_, o.dims_);
    Point r = *this;
    for (int i = 0; i < dims_; ++i) r.coords_[i] += o.coords_[i];
    return r;
  }

  /// Component-wise difference; yields the vector from `o` to `*this`.
  Point operator-(const Point& o) const {
    TRACLUS_DCHECK_EQ(dims_, o.dims_);
    Point r = *this;
    for (int i = 0; i < dims_; ++i) r.coords_[i] -= o.coords_[i];
    return r;
  }

  Point operator*(double s) const {
    Point r = *this;
    for (int i = 0; i < dims_; ++i) r.coords_[i] *= s;
    return r;
  }

  Point operator/(double s) const {
    TRACLUS_DCHECK(s != 0.0);
    return *this * (1.0 / s);
  }

  bool operator==(const Point& o) const {
    if (dims_ != o.dims_) return false;
    for (int i = 0; i < dims_; ++i) {
      if (coords_[i] != o.coords_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Point& o) const { return !(*this == o); }

  /// Squared Euclidean norm when the point is interpreted as a vector.
  double SquaredNorm() const {
    double s = 0.0;
    for (int i = 0; i < dims_; ++i) s += coords_[i] * coords_[i];
    return s;
  }

  /// Euclidean norm.
  double Norm() const { return std::sqrt(SquaredNorm()); }

  /// "(x, y)" / "(x, y, z)" for debugging and test failure messages.
  std::string ToString() const;

 private:
  std::array<double, kMaxDims> coords_;
  int dims_;
};

inline Point operator*(double s, const Point& p) { return p * s; }

/// Euclidean distance between two points of equal dimensionality.
inline double Distance(const Point& a, const Point& b) {
  return (a - b).Norm();
}

/// Squared Euclidean distance; avoids the sqrt when comparing distances.
inline double SquaredDistance(const Point& a, const Point& b) {
  return (a - b).SquaredNorm();
}

}  // namespace traclus::geom

#endif  // TRACLUS_GEOM_POINT_H_
