#ifndef TRACLUS_GEOM_VECTOR_OPS_H_
#define TRACLUS_GEOM_VECTOR_OPS_H_

#include <algorithm>
#include <cmath>

#include "geom/point.h"

namespace traclus::geom {

/// Dot product of two vectors of equal dimensionality.
inline double Dot(const Point& a, const Point& b) {
  TRACLUS_DCHECK_EQ(a.dims(), b.dims());
  double s = 0.0;
  for (int i = 0; i < a.dims(); ++i) s += a[i] * b[i];
  return s;
}

/// Projection coefficient u of point `p` onto the line through `s` with
/// direction `e - s`, per Formula (4): u = (sp · se) / ||se||².
///
/// u = 0 at `s`, u = 1 at `e`; values outside [0, 1] project beyond the
/// segment. A degenerate (zero-length) base yields u = 0, i.e. the projection
/// collapses to `s`, which keeps downstream distances well defined for
/// point-like segments.
inline double ProjectionCoefficient(const Point& p, const Point& s,
                                    const Point& e) {
  const Point se = e - s;
  const double denom = se.SquaredNorm();
  if (denom == 0.0) return 0.0;
  return Dot(p - s, se) / denom;
}

/// Projection point of `p` onto the (infinite) line through `s` and `e`.
inline Point ProjectOntoLine(const Point& p, const Point& s, const Point& e) {
  const double u = ProjectionCoefficient(p, s, e);
  return s + (e - s) * u;
}

/// Distance from `p` to the infinite line through `s` and `e`.
inline double PointToLineDistance(const Point& p, const Point& s,
                                  const Point& e) {
  return Distance(p, ProjectOntoLine(p, s, e));
}

/// Distance from `p` to the closed segment [s, e].
inline double PointToSegmentDistance(const Point& p, const Point& s,
                                     const Point& e) {
  double u = ProjectionCoefficient(p, s, e);
  u = std::clamp(u, 0.0, 1.0);
  return Distance(p, s + (e - s) * u);
}

/// Cosine of the angle between two non-degenerate vectors, per Formula (5),
/// clamped into [-1, 1] to absorb floating-point drift. Degenerate input (a
/// zero vector) returns 1 (angle 0), matching the observation in §4.1.3 that a
/// very short segment has no directional strength.
inline double CosAngleBetween(const Point& v1, const Point& v2) {
  const double n1 = v1.Norm();
  const double n2 = v2.Norm();
  if (n1 == 0.0 || n2 == 0.0) return 1.0;
  return std::clamp(Dot(v1, v2) / (n1 * n2), -1.0, 1.0);
}

/// Smaller intersecting angle between directed vectors, in radians within
/// [0, pi].
inline double AngleBetween(const Point& v1, const Point& v2) {
  return std::acos(CosAngleBetween(v1, v2));
}

}  // namespace traclus::geom

#endif  // TRACLUS_GEOM_VECTOR_OPS_H_
