#ifndef TRACLUS_GEOM_BBOX_H_
#define TRACLUS_GEOM_BBOX_H_

#include <algorithm>
#include <limits>

#include "geom/point.h"
#include "geom/segment.h"

namespace traclus::geom {

/// Axis-aligned bounding box used by the ε-neighborhood grid index.
///
/// Tracks dimensionality from the first point it encloses. An empty box reports
/// infinite mindist to everything.
class BBox {
 public:
  BBox() : dims_(0) {
    for (int i = 0; i < kMaxDims; ++i) {
      lo_[i] = std::numeric_limits<double>::infinity();
      hi_[i] = -std::numeric_limits<double>::infinity();
    }
  }

  /// Expands the box to include `p`.
  void Extend(const Point& p) {
    if (dims_ == 0) dims_ = p.dims();
    TRACLUS_DCHECK_EQ(dims_, p.dims());
    for (int i = 0; i < dims_; ++i) {
      lo_[i] = std::min(lo_[i], p[i]);
      hi_[i] = std::max(hi_[i], p[i]);
    }
  }

  /// Expands the box to include both endpoints of `s`.
  void Extend(const Segment& s) {
    Extend(s.start());
    Extend(s.end());
  }

  /// Expands the box to include `other`.
  void Extend(const BBox& other) {
    if (other.empty()) return;
    if (dims_ == 0) dims_ = other.dims_;
    TRACLUS_DCHECK_EQ(dims_, other.dims_);
    for (int i = 0; i < dims_; ++i) {
      lo_[i] = std::min(lo_[i], other.lo_[i]);
      hi_[i] = std::max(hi_[i], other.hi_[i]);
    }
  }

  bool empty() const { return dims_ == 0; }
  int dims() const { return dims_; }
  double lo(int i) const {
    TRACLUS_DCHECK(i >= 0 && i < dims_);
    return lo_[i];
  }
  double hi(int i) const {
    TRACLUS_DCHECK(i >= 0 && i < dims_);
    return hi_[i];
  }

  /// Extent along dimension i.
  double Extent(int i) const { return hi(i) - lo(i); }

  /// Minimum Euclidean distance between this box and `other` (0 if they
  /// intersect). Lower-bounds the distance between any contained geometries.
  double MinDist(const BBox& other) const {
    if (empty() || other.empty()) {
      return std::numeric_limits<double>::infinity();
    }
    TRACLUS_DCHECK_EQ(dims_, other.dims_);
    double s = 0.0;
    for (int i = 0; i < dims_; ++i) {
      double gap = 0.0;
      if (other.hi_[i] < lo_[i]) {
        gap = lo_[i] - other.hi_[i];
      } else if (hi_[i] < other.lo_[i]) {
        gap = other.lo_[i] - hi_[i];
      }
      s += gap * gap;
    }
    return std::sqrt(s);
  }

  /// True if `p` lies inside the closed box.
  bool Contains(const Point& p) const {
    if (empty()) return false;
    TRACLUS_DCHECK_EQ(dims_, p.dims());
    for (int i = 0; i < dims_; ++i) {
      if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
    }
    return true;
  }

 private:
  double lo_[kMaxDims];
  double hi_[kMaxDims];
  int dims_;
};

}  // namespace traclus::geom

#endif  // TRACLUS_GEOM_BBOX_H_
