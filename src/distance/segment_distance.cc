#include "distance/segment_distance.h"

#include <algorithm>
#include <cmath>

#include "distance/batch_kernels.h"
#include "distance/store_kernel_detail.h"
#include "geom/vector_ops.h"

namespace traclus::distance {

namespace {

using internal::LexLess;

// Perpendicular component between a canonicalized (longer Li, shorter Lj) pair:
// Lehmer mean of order 2 of the projection distances (Definition 1).
double PerpendicularCanonical(const geom::Segment& li,
                              const geom::Segment& lj) {
  const double l1 =
      geom::PointToLineDistance(lj.start(), li.start(), li.end());
  const double l2 = geom::PointToLineDistance(lj.end(), li.start(), li.end());
  const double denom = l1 + l2;
  if (denom == 0.0) return 0.0;  // Both endpoints on the line.
  return (l1 * l1 + l2 * l2) / denom;
}

// Parallel component (Definition 2): project both endpoints of Lj onto the line
// of Li; for each projection take the distance to the nearer endpoint of Li,
// then take the minimum of the two.
double ParallelCanonical(const geom::Segment& li, const geom::Segment& lj) {
  const geom::Point ps =
      geom::ProjectOntoLine(lj.start(), li.start(), li.end());
  const geom::Point pe = geom::ProjectOntoLine(lj.end(), li.start(), li.end());
  const double lpar1 = std::min(geom::Distance(ps, li.start()),
                                geom::Distance(ps, li.end()));
  const double lpar2 = std::min(geom::Distance(pe, li.start()),
                                geom::Distance(pe, li.end()));
  return std::min(lpar1, lpar2);
}

// Angle component (Definition 3). `directed` distinguishes the two remarks in
// §2.3: directed trajectories use ‖Lj‖ for θ ∈ [90°, 180°]; undirected ones use
// ‖Lj‖·sin(θ) with the angle folded into [0°, 90°].
double AngleCanonical(const geom::Segment& li, const geom::Segment& lj,
                      bool directed) {
  const double len_j = lj.Length();
  if (len_j == 0.0) return 0.0;  // Point-like Lj has no directional strength.
  const double cos_theta =
      geom::CosAngleBetween(li.Direction(), lj.Direction());
  if (directed) {
    if (cos_theta <= 0.0) return len_j;  // θ in [90°, 180°].
    const double sin_theta =
        std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
    return len_j * sin_theta;
  }
  // Undirected: fold θ into [0°, 90°]; sin is unchanged by θ → 180° − θ.
  const double sin_theta =
      std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  return len_j * sin_theta;
}

}  // namespace

void SegmentDistance::Canonicalize(const geom::Segment*& longer,
                                   const geom::Segment*& shorter) {
  const double la = longer->Length();
  const double lb = shorter->Length();
  bool swap = false;
  if (la < lb) {
    swap = true;
  } else if (la == lb) {
    // Lemma 2 tie-break: internal identifier, then lexicographic endpoints.
    if (longer->id() >= 0 && shorter->id() >= 0 &&
        longer->id() != shorter->id()) {
      swap = longer->id() > shorter->id();
    } else {
      swap = LexLess(*shorter, *longer);
    }
  }
  if (swap) std::swap(longer, shorter);
}

DistanceComponents SegmentDistance::Components(const geom::Segment& a,
                                               const geom::Segment& b) const {
  TRACLUS_DCHECK_EQ(a.dims(), b.dims());
  const geom::Segment* li = &a;
  const geom::Segment* lj = &b;
  Canonicalize(li, lj);
  DistanceComponents c;
  c.perpendicular = PerpendicularCanonical(*li, *lj);
  c.parallel = ParallelCanonical(*li, *lj);
  c.angle = AngleCanonical(*li, *lj, config_.directed);
  return c;
}

double SegmentDistance::operator()(const geom::Segment& a,
                                   const geom::Segment& b) const {
  const DistanceComponents c = Components(a, b);
  return config_.w_perpendicular * c.perpendicular +
         config_.w_parallel * c.parallel + config_.w_angle * c.angle;
}

DistanceComponents SegmentDistance::Components(const traj::SegmentStore& store,
                                               size_t a, size_t b) const {
  TRACLUS_DCHECK(a < store.size() && b < store.size());
  size_t li = a;
  size_t lj = b;
  internal::CanonicalizeInStore(store, li, lj);
  DistanceComponents c;
  internal::StoreComponentsCanonicalInto(
      store, li, lj, config_.directed,
      [&](double perpendicular, double parallel, double angle) {
        c.perpendicular = perpendicular;
        c.parallel = parallel;
        c.angle = angle;
      });
  return c;
}

double SegmentDistance::operator()(const traj::SegmentStore& store, size_t a,
                                   size_t b) const {
  const DistanceComponents c = Components(store, a, b);
  return config_.w_perpendicular * c.perpendicular +
         config_.w_parallel * c.parallel + config_.w_angle * c.angle;
}

double SegmentDistance::Perpendicular(const geom::Segment& a,
                                      const geom::Segment& b) const {
  const geom::Segment* li = &a;
  const geom::Segment* lj = &b;
  Canonicalize(li, lj);
  return PerpendicularCanonical(*li, *lj);
}

double SegmentDistance::Parallel(const geom::Segment& a,
                                 const geom::Segment& b) const {
  const geom::Segment* li = &a;
  const geom::Segment* lj = &b;
  Canonicalize(li, lj);
  return ParallelCanonical(*li, *lj);
}

double SegmentDistance::Angle(const geom::Segment& a,
                              const geom::Segment& b) const {
  const geom::Segment* li = &a;
  const geom::Segment* lj = &b;
  Canonicalize(li, lj);
  return AngleCanonical(*li, *lj, config_.directed);
}

common::Matrix PairwiseDistanceMatrix(
    const std::vector<geom::Segment>& segments, const SegmentDistance& dist,
    common::ThreadPool& pool) {
  const size_t n = segments.size();
  common::Matrix m(n, n, 0.0);
  // One writer per element: the chunk owning i writes (i, j) and (j, i) for
  // all j > i. The pool's chunk oversubscription evens the triangular
  // imbalance (later rows own fewer pairs) out.
  pool.ParallelForPairs(n, [&](size_t i, size_t j) {
    const double d = dist(segments[i], segments[j]);
    m(i, j) = d;
    m(j, i) = d;
  });
  return m;
}

common::Matrix PairwiseDistanceMatrix(const traj::SegmentStore& store,
                                      const SegmentDistance& dist,
                                      common::ThreadPool& pool) {
  // Rows stream through the batched kernels (bit-identical entries); see the
  // kernel-selecting overload in distance/batch_kernels.h.
  return PairwiseDistanceMatrix(store, dist, pool, BatchKernel::kAuto);
}

}  // namespace traclus::distance
