#include "distance/segment_distance.h"

#include <algorithm>
#include <cmath>

#include "geom/vector_ops.h"

namespace traclus::distance {

namespace {

// Lexicographic endpoint comparison; final deterministic tie-break.
bool LexLess(const geom::Segment& a, const geom::Segment& b) {
  for (int i = 0; i < a.dims(); ++i) {
    if (a.start()[i] != b.start()[i]) return a.start()[i] < b.start()[i];
  }
  for (int i = 0; i < a.dims(); ++i) {
    if (a.end()[i] != b.end()[i]) return a.end()[i] < b.end()[i];
  }
  return false;
}

// Perpendicular component between a canonicalized (longer Li, shorter Lj) pair:
// Lehmer mean of order 2 of the projection distances (Definition 1).
double PerpendicularCanonical(const geom::Segment& li,
                              const geom::Segment& lj) {
  const double l1 =
      geom::PointToLineDistance(lj.start(), li.start(), li.end());
  const double l2 = geom::PointToLineDistance(lj.end(), li.start(), li.end());
  const double denom = l1 + l2;
  if (denom == 0.0) return 0.0;  // Both endpoints on the line.
  return (l1 * l1 + l2 * l2) / denom;
}

// Parallel component (Definition 2): project both endpoints of Lj onto the line
// of Li; for each projection take the distance to the nearer endpoint of Li,
// then take the minimum of the two.
double ParallelCanonical(const geom::Segment& li, const geom::Segment& lj) {
  const geom::Point ps =
      geom::ProjectOntoLine(lj.start(), li.start(), li.end());
  const geom::Point pe = geom::ProjectOntoLine(lj.end(), li.start(), li.end());
  const double lpar1 = std::min(geom::Distance(ps, li.start()),
                                geom::Distance(ps, li.end()));
  const double lpar2 = std::min(geom::Distance(pe, li.start()),
                                geom::Distance(pe, li.end()));
  return std::min(lpar1, lpar2);
}

// Angle component (Definition 3). `directed` distinguishes the two remarks in
// §2.3: directed trajectories use ‖Lj‖ for θ ∈ [90°, 180°]; undirected ones use
// ‖Lj‖·sin(θ) with the angle folded into [0°, 90°].
double AngleCanonical(const geom::Segment& li, const geom::Segment& lj,
                      bool directed) {
  const double len_j = lj.Length();
  if (len_j == 0.0) return 0.0;  // Point-like Lj has no directional strength.
  const double cos_theta =
      geom::CosAngleBetween(li.Direction(), lj.Direction());
  if (directed) {
    if (cos_theta <= 0.0) return len_j;  // θ in [90°, 180°].
    const double sin_theta =
        std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
    return len_j * sin_theta;
  }
  // Undirected: fold θ into [0°, 90°]; sin is unchanged by θ → 180° − θ.
  const double sin_theta =
      std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  return len_j * sin_theta;
}

// Store-backed canonical kernel shared by the fast-path entry points. The
// caller has already ordered (li, lj) as (longer, shorter); this computes the
// three components with exactly the floating-point operations of the
// Segment-based path, but
//   * the line direction e − s and its squared norm come from the store
//     (cached from the identical expressions) instead of per-call
//     recomputation,
//   * the two endpoint projections onto Li's line are computed once and
//     shared between d⊥ (Definition 1) and d∥ (Definition 2) — the Segment
//     path derives them independently in PerpendicularCanonical and
//     ParallelCanonical,
//   * the angle cosine divides the cached dot product by the product of the
//     cached lengths, which is bit-identical to CosAngleBetween's
//     Dot / (Norm() * Norm()) because length(i) ≡ Direction().Norm().
DistanceComponents StoreComponentsCanonical(const traj::SegmentStore& store,
                                            size_t li, size_t lj,
                                            bool directed) {
  const geom::Segment& i_seg = store.segment(li);
  const geom::Segment& j_seg = store.segment(lj);
  const geom::Point& s = i_seg.start();
  const geom::Point& e = i_seg.end();
  const geom::Point& se = store.direction(li);
  const double denom = store.squared_length(li);

  // ProjectOntoLine(p, s, e), with se and ||se||² read from the cache.
  const auto project = [&](const geom::Point& p) {
    const double u = denom == 0.0 ? 0.0 : geom::Dot(p - s, se) / denom;
    return s + se * u;
  };
  const geom::Point proj_start = project(j_seg.start());
  const geom::Point proj_end = project(j_seg.end());

  DistanceComponents c;

  // Perpendicular (Definition 1): Lehmer mean of order 2.
  const double l1 = geom::Distance(j_seg.start(), proj_start);
  const double l2 = geom::Distance(j_seg.end(), proj_end);
  const double perp_denom = l1 + l2;
  c.perpendicular =
      perp_denom == 0.0 ? 0.0 : (l1 * l1 + l2 * l2) / perp_denom;

  // Parallel (Definition 2): distance from each projection to the nearer
  // endpoint of Li, MIN over the two projections.
  const double lpar1 = std::min(geom::Distance(proj_start, s),
                                geom::Distance(proj_start, e));
  const double lpar2 =
      std::min(geom::Distance(proj_end, s), geom::Distance(proj_end, e));
  c.parallel = std::min(lpar1, lpar2);

  // Angle (Definition 3), directed or undirected.
  const double len_j = store.length(lj);
  if (len_j == 0.0) {
    c.angle = 0.0;  // Point-like Lj has no directional strength.
    return c;
  }
  const double len_i = store.length(li);
  // CosAngleBetween with the norms read from the cache.
  const double cos_theta =
      len_i == 0.0
          ? 1.0
          : std::clamp(
                geom::Dot(store.direction(li), store.direction(lj)) /
                    (len_i * len_j),
                -1.0, 1.0);
  if (directed && cos_theta <= 0.0) {
    c.angle = len_j;  // θ in [90°, 180°].
    return c;
  }
  const double sin_theta =
      std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  c.angle = len_j * sin_theta;
  return c;
}

// Store-backed Canonicalize: the same ordering decision as the Segment
// overload, but the lengths and Lemma 2 tie-break ids come from the cache.
void CanonicalizeInStore(const traj::SegmentStore& store, size_t& longer,
                         size_t& shorter) {
  const double la = store.length(longer);
  const double lb = store.length(shorter);
  bool swap = false;
  if (la < lb) {
    swap = true;
  } else if (la == lb) {
    const geom::SegmentId ia = store.id(longer);
    const geom::SegmentId ib = store.id(shorter);
    if (ia >= 0 && ib >= 0 && ia != ib) {
      swap = ia > ib;
    } else {
      swap = LexLess(store.segment(shorter), store.segment(longer));
    }
  }
  if (swap) std::swap(longer, shorter);
}

}  // namespace

void SegmentDistance::Canonicalize(const geom::Segment*& longer,
                                   const geom::Segment*& shorter) {
  const double la = longer->Length();
  const double lb = shorter->Length();
  bool swap = false;
  if (la < lb) {
    swap = true;
  } else if (la == lb) {
    // Lemma 2 tie-break: internal identifier, then lexicographic endpoints.
    if (longer->id() >= 0 && shorter->id() >= 0 &&
        longer->id() != shorter->id()) {
      swap = longer->id() > shorter->id();
    } else {
      swap = LexLess(*shorter, *longer);
    }
  }
  if (swap) std::swap(longer, shorter);
}

DistanceComponents SegmentDistance::Components(const geom::Segment& a,
                                               const geom::Segment& b) const {
  TRACLUS_DCHECK_EQ(a.dims(), b.dims());
  const geom::Segment* li = &a;
  const geom::Segment* lj = &b;
  Canonicalize(li, lj);
  DistanceComponents c;
  c.perpendicular = PerpendicularCanonical(*li, *lj);
  c.parallel = ParallelCanonical(*li, *lj);
  c.angle = AngleCanonical(*li, *lj, config_.directed);
  return c;
}

double SegmentDistance::operator()(const geom::Segment& a,
                                   const geom::Segment& b) const {
  const DistanceComponents c = Components(a, b);
  return config_.w_perpendicular * c.perpendicular +
         config_.w_parallel * c.parallel + config_.w_angle * c.angle;
}

DistanceComponents SegmentDistance::Components(const traj::SegmentStore& store,
                                               size_t a, size_t b) const {
  TRACLUS_DCHECK(a < store.size() && b < store.size());
  size_t li = a;
  size_t lj = b;
  CanonicalizeInStore(store, li, lj);
  return StoreComponentsCanonical(store, li, lj, config_.directed);
}

double SegmentDistance::operator()(const traj::SegmentStore& store, size_t a,
                                   size_t b) const {
  const DistanceComponents c = Components(store, a, b);
  return config_.w_perpendicular * c.perpendicular +
         config_.w_parallel * c.parallel + config_.w_angle * c.angle;
}

double SegmentDistance::Perpendicular(const geom::Segment& a,
                                      const geom::Segment& b) const {
  const geom::Segment* li = &a;
  const geom::Segment* lj = &b;
  Canonicalize(li, lj);
  return PerpendicularCanonical(*li, *lj);
}

double SegmentDistance::Parallel(const geom::Segment& a,
                                 const geom::Segment& b) const {
  const geom::Segment* li = &a;
  const geom::Segment* lj = &b;
  Canonicalize(li, lj);
  return ParallelCanonical(*li, *lj);
}

double SegmentDistance::Angle(const geom::Segment& a,
                              const geom::Segment& b) const {
  const geom::Segment* li = &a;
  const geom::Segment* lj = &b;
  Canonicalize(li, lj);
  return AngleCanonical(*li, *lj, config_.directed);
}

common::Matrix PairwiseDistanceMatrix(
    const std::vector<geom::Segment>& segments, const SegmentDistance& dist,
    common::ThreadPool& pool) {
  const size_t n = segments.size();
  common::Matrix m(n, n, 0.0);
  // One writer per element: the chunk owning i writes (i, j) and (j, i) for
  // all j > i. The pool's chunk oversubscription evens the triangular
  // imbalance (later rows own fewer pairs) out.
  pool.ParallelForPairs(n, [&](size_t i, size_t j) {
    const double d = dist(segments[i], segments[j]);
    m(i, j) = d;
    m(j, i) = d;
  });
  return m;
}

common::Matrix PairwiseDistanceMatrix(const traj::SegmentStore& store,
                                      const SegmentDistance& dist,
                                      common::ThreadPool& pool) {
  const size_t n = store.size();
  common::Matrix m(n, n, 0.0);
  pool.ParallelForPairs(n, [&](size_t i, size_t j) {
    const double d = dist(store, i, j);
    m(i, j) = d;
    m(j, i) = d;
  });
  return m;
}

}  // namespace traclus::distance
