#ifndef TRACLUS_DISTANCE_BATCH_KERNELS_H_
#define TRACLUS_DISTANCE_BATCH_KERNELS_H_

// Batched distance kernels over the SegmentStore's flat arrays — the ε-query
// hot path of the grouping phase (Lemma 3), the parameter heuristic
// (§4.2/§4.4), and the all-pairs consumers (distance matrix, entropy profile,
// k-medoids). Two shapes share one arithmetic core:
//
//   * one-query-vs-many-candidates batches (DistanceBatch / EpsilonRefine),
//     the refinement half of every ε-query, and
//   * many-vs-many tiles (DistanceTile / EpsilonRefineTile /
//     NearestWithinEps), which evaluate an M-query × N-candidate block
//     candidate-block-major so each block of SoA columns is loaded once and
//     reused across all M query rows — the all-pairs consumers' shape.
//
// Every ε-query in the pipeline decomposes into candidate generation (an
// index emits segment indices) followed by refinement (the exact §2.3
// three-component distance decides membership). This layer owns the
// refinement half:
//
//   candidates ──▶ lower-bound prune ──▶ blocked batch distance ──▶ ≤ ε?
//
//   * The prune is a midpoint/half-length triangle inequality: every point
//     of segment L lies within half_length(L) of midpoint(L), so
//       mindist(Li, Lj) ≥ ‖mid_i − mid_j‖ − h_i − h_j,
//     and with the provable factor c = min(w⊥/2, w∥) from
//     SegmentDistance::LowerBoundFactor,
//       dist(Li, Lj) ≥ c · (‖mid_i − mid_j‖ − h_i − h_j).
//     A candidate whose bound (with a conservative rounding margin) exceeds
//     ε is provably outside the neighborhood and skips the full evaluation.
//   * The batch kernels evaluate the surviving pairs with EXACTLY the
//     floating-point expressions of the cached pair path
//     SegmentDistance::operator()(store, i, j) — results are bit-identical,
//     so every consumer (DBSCAN goldens included) can switch freely. The
//     scalar kernel is a branch-light blocked loop over the shared canonical
//     kernel; the SIMD kernel (AVX2, compile-time dispatch) runs four
//     candidate lanes of the same operation sequence over the store's SoA
//     coordinate columns. IEEE-754 vector lanes round identically to scalar
//     ops, and the build forbids FP contraction (-ffp-contract=off), so the
//     lanes are bit-identical too (tests/segment_distance_test.cc pins all
//     of this on randomized, degenerate, tied, and 3-D segments).
//
// Consumers: the neighborhood providers (BruteForce/Grid/StrRTree) generate
// candidates and delegate refinement here; PairwiseDistanceMatrix, the
// entropy NeighborhoodProfile, and the k-medoids baseline ride the tile
// family; OPTICS streams blocked DistanceBatch calls; the sieve stage
// (core::SieveGroupStage) assigns through NearestWithinEps. Kernel selection
// is a per-run knob (core::RunContext::distance_kernel, CLI --kernel
// auto|scalar|simd); ParseBatchKernel below is the single string→kernel
// parsing path in the tree — callers must not grow private switches.
//
// Thread-safety contract: every kernel here is lock-free by construction —
// inputs are the store's immutable SoA columns, outputs go to caller-owned
// buffers, and the only cross-call state is thread_local staging inside
// the refine pipeline. Concurrent calls from pool workers are safe with no
// mutex and hence no capability annotations; kernels that grow shared
// mutable state (e.g. a cross-query prune cache) must put it behind
// common::Mutex with TRACLUS_GUARDED_BY.

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "distance/segment_distance.h"
#include "traj/segment_store.h"

namespace traclus::distance {

/// Which refinement kernel evaluates a batch.
enum class BatchKernel {
  kAuto = 0,    ///< kSimd when compiled in, else kScalar.
  kScalar = 1,  ///< Blocked scalar loop over the shared canonical kernel.
  kSimd = 2,    ///< AVX2 four-lane kernel over the SoA coordinate columns.
};

/// True when the SIMD kernel is compiled into this binary (AVX2 target).
constexpr bool SimdCompiled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

/// Resolves kAuto to the best compiled kernel; kSimd degrades to kScalar
/// when the binary was built without AVX2 (results are identical either way,
/// only throughput differs).
BatchKernel ResolveBatchKernel(BatchKernel kernel);

/// "auto" / "scalar" / "simd".
const char* BatchKernelName(BatchKernel kernel);

/// Parses a kernel name (as spelled by BatchKernelName). Anything else is
/// kInvalidArgument naming the accepted spellings. This is the ONLY
/// string→BatchKernel conversion in the tree: every knob surface (CLI
/// --kernel, RunContext::distance_kernel feeders, heuristic/OPTICS options,
/// the sieve stage) routes through it, so the accepted vocabulary can never
/// drift between callers.
common::Result<BatchKernel> ParseBatchKernel(std::string_view name);

/// Per-call counters of the ε-refine pipeline (for benchmarks and tuning:
/// pruned / candidates is the prune rate).
struct RefineStats {
  size_t candidates = 0;  ///< Candidates examined.
  size_t pruned = 0;      ///< Skipped by the lower bound (provably > ε).
  size_t refined = 0;     ///< Full three-component evaluations.
  size_t accepted = 0;    ///< Emitted into the neighborhood.
};

/// Tuning knobs of EpsilonRefine. Every setting yields identical output —
/// the knobs trade only speed and scratch residency.
struct BatchOptions {
  BatchKernel kernel = BatchKernel::kAuto;
  /// Candidates staged per prune/refine block; bounds scratch memory at
  /// O(block). 0 = default (256).
  size_t block = 0;
  /// Disables the lower-bound prune (diagnostics; the full distance is then
  /// evaluated for every candidate).
  bool prune = true;
};

/// dist(query, candidates[k]) → out[k] for every candidate, bit-identical to
/// SegmentDistance::operator()(store, query, candidates[k]).
/// `out.size()` must equal `candidates.size()`.
void DistanceBatch(const traj::SegmentStore& store,
                   const SegmentDistance& dist, size_t query,
                   common::Span<const size_t> candidates,
                   common::Span<double> out,
                   BatchKernel kernel = BatchKernel::kAuto);

/// Contiguous-candidate variant: dist(query, first + k) → out[k] for the
/// index range [first, last). `out.size()` must equal `last - first`.
void DistanceBatchRange(const traj::SegmentStore& store,
                        const SegmentDistance& dist, size_t query,
                        size_t first, size_t last, common::Span<double> out,
                        BatchKernel kernel = BatchKernel::kAuto);

/// The batched ε-refine: appends to `out_indices` every candidate within
/// distance `eps` of `query` (the query itself always passes when listed,
/// mirroring Definition 4's self-inclusion), preserving candidate order.
/// Exactly equivalent to the per-pair loop
///   for j in candidates: if (j == query || dist(store, query, j) <= eps)
/// but with lower-bound pruning and blocked batch evaluation. Returns the
/// number of indices appended; `stats` (optional) accumulates counters.
size_t EpsilonRefine(const traj::SegmentStore& store,
                     const SegmentDistance& dist, size_t query,
                     common::Span<const size_t> candidates, double eps,
                     std::vector<size_t>& out_indices,
                     const BatchOptions& options = {},
                     RefineStats* stats = nullptr);

/// Contiguous-candidate ε-refine over the index range [first, last) — the
/// whole-database scan of the brute-force provider and the no-bound
/// fallback, without materializing an index list.
size_t EpsilonRefineRange(const traj::SegmentStore& store,
                          const SegmentDistance& dist, size_t query,
                          size_t first, size_t last, double eps,
                          std::vector<size_t>& out_indices,
                          const BatchOptions& options = {},
                          RefineStats* stats = nullptr);

/// Cross-store ε-refine: the query segment lives in `query_store` (local
/// index `query`) while the candidates live in `cand_store` (local indices
/// `candidates`) — the refinement step of the chunked out-of-core
/// neighborhood, where the query's chunk and a candidate chunk are distinct
/// chunk-local SegmentStores of one ChunkedSegmentStore.
///
/// For each candidate j with dist ≤ eps, appends `out_base + j` (the
/// caller's global index for chunk-local j) to `out_indices`, preserving
/// candidate order. Because chunk-local stores cache bit-identical
/// invariants, the evaluation — Lemma 2 canonicalization included — executes
/// the same floating-point operations as the one-store refine over a
/// monolithic store, so results are bit-identical to EpsilonRefine on the
/// merged database.
///
/// The candidates must not contain the query segment itself (Definition 4
/// self-inclusion is a same-store concern; callers route the query's own
/// chunk through EpsilonRefine). Runs the same blocked prune → batch →
/// threshold pipeline as EpsilonRefine, with cross-store scalar and AVX2
/// four-lane kernels (the lane gather resolves the Lemma 2 roles across the
/// two stores); all kernels are bit-identical to the per-pair cross loop.
size_t EpsilonRefineCross(const traj::SegmentStore& query_store,
                          const SegmentDistance& dist, size_t query,
                          const traj::SegmentStore& cand_store,
                          common::Span<const size_t> candidates, double eps,
                          size_t out_base, std::vector<size_t>& out_indices,
                          const BatchOptions& options = {},
                          RefineStats* stats = nullptr);

/// Contiguous-candidate cross-store ε-refine over cand_store indices
/// [first, last) — the whole-chunk scan of the chunked brute-force provider
/// and the no-bound fallback, without materializing an index list. Appends
/// `out_base + j` for every accepted j, exactly like EpsilonRefineCross on
/// the materialized range.
size_t EpsilonRefineCrossRange(const traj::SegmentStore& query_store,
                               const SegmentDistance& dist, size_t query,
                               const traj::SegmentStore& cand_store,
                               size_t first, size_t last, double eps,
                               size_t out_base,
                               std::vector<size_t>& out_indices,
                               const BatchOptions& options = {},
                               RefineStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Many-vs-many tiles. All of them iterate candidate-block-major: a block of
// ≤ 256 candidate columns is walked once per query row while it is hot in
// cache, instead of streaming the full candidate set per query. Splitting a
// batch into blocks never changes bits — each pair's evaluation (lane or
// scalar) depends only on that pair — so every tile result is bit-identical
// to the corresponding per-query batch call and to the pair path.
// ---------------------------------------------------------------------------

/// M-query × N-candidate distance tile:
///   dist(queries[qi], candidates[k]) → out[qi * ldo + k]
/// for every query/candidate combination, bit-identical to DistanceBatch per
/// row. `ldo` is the leading dimension (row stride, in doubles) of the
/// caller's row-major output block; it must be ≥ candidates.size().
void DistanceTile(const traj::SegmentStore& store, const SegmentDistance& dist,
                  common::Span<const size_t> queries,
                  common::Span<const size_t> candidates, double* out,
                  size_t ldo, BatchKernel kernel = BatchKernel::kAuto);

/// Contiguous-range tile: dist(query_first + qi, cand_first + k) →
/// out[qi * ldo + k] over the index ranges [query_first, query_last) ×
/// [cand_first, cand_last). `ldo` must be ≥ cand_last − cand_first.
void DistanceTileRange(const traj::SegmentStore& store,
                       const SegmentDistance& dist, size_t query_first,
                       size_t query_last, size_t cand_first, size_t cand_last,
                       double* out, size_t ldo,
                       BatchKernel kernel = BatchKernel::kAuto);

/// Many-query ε-refine tile over one shared candidate range: appends to
/// out_lists[qi] exactly what
///   EpsilonRefineRange(store, dist, queries[qi], first, last, eps,
///                      out_lists[qi], options)
/// would (same candidate-order emission, same Definition 4 self-inclusion),
/// but evaluated candidate-block-major so each block's columns serve all
/// queries. `out_lists` must point to queries.size() vectors. Returns the
/// total number of indices appended; `stats` accumulates over all queries.
size_t EpsilonRefineTile(const traj::SegmentStore& store,
                         const SegmentDistance& dist,
                         common::Span<const size_t> queries, size_t first,
                         size_t last, double eps,
                         std::vector<size_t>* out_lists,
                         const BatchOptions& options = {},
                         RefineStats* stats = nullptr);

/// "No candidate within ε" marker of NearestWithinEps.
inline constexpr size_t kNoNearest = static_cast<size_t>(-1);

/// Batch nearest-candidate assignment — the sieve stage's primitive
/// (core::SieveGroupStage): for each query queries[qi], the candidate
/// minimizing dist(store, query, candidates[·]) subject to dist ≤ eps, ties
/// broken toward the earliest candidate in span order. Writes the winning
/// *position within `candidates`* to out_position[qi] (kNoNearest when every
/// candidate is farther than ε) and the winning distance to out_distance[qi]
/// (+inf when none). Candidates are lower-bound pruned against ε only — never
/// against the running minimum — so the refined set, and therefore the
/// argmin, is independent of evaluation order; distances are bit-identical
/// across kernels, so the assignment is too. Both out spans must have
/// queries.size() entries.
void NearestWithinEps(const traj::SegmentStore& store,
                      const SegmentDistance& dist,
                      common::Span<const size_t> queries,
                      common::Span<const size_t> candidates, double eps,
                      common::Span<size_t> out_position,
                      common::Span<double> out_distance,
                      const BatchOptions& options = {});

/// Cross-store NearestWithinEps — the frozen-snapshot assignment primitive
/// (core::ClusterSnapshot::AssignSegments): queries index `query_store`,
/// candidates index `cand_store`, and each query gets the candidate
/// minimizing dist(query, candidate) subject to dist ≤ eps, ties broken
/// toward the earliest candidate in span order. Same contract as the
/// one-store overload (kNoNearest / +inf when no candidate qualifies; the
/// prune is against ε only, so the argmin is independent of block size,
/// kernel, and evaluation order) minus the self-exclusion special case —
/// cross-store candidate lists never contain the query. Bit-identical
/// across scalar/SIMD kernels and thread counts for the same reasons as
/// the one-store tile.
void NearestWithinEpsCross(const traj::SegmentStore& query_store,
                           const SegmentDistance& dist,
                           common::Span<const size_t> queries,
                           const traj::SegmentStore& cand_store,
                           common::Span<const size_t> candidates, double eps,
                           common::Span<size_t> out_position,
                           common::Span<double> out_distance,
                           const BatchOptions& options = {});

/// Kernel-selecting overload of PairwiseDistanceMatrix (segment_distance.h):
/// the same symmetric n×n matrix, filled through upper-triangle tiles — the
/// chunk owning rows [lo, hi) walks candidate blocks once for all its rows
/// (DistanceTileRange shape) and writes the mirrored columns as a blocked
/// transpose instead of a full-column stride per row. The chunk owning row i
/// writes dist(i, j) and its mirror for every j > i, so every element has
/// exactly one writer and the matrix is identical for every thread count;
/// entries are bit-identical to the row-batched fill and the pair path.
common::Matrix PairwiseDistanceMatrix(const traj::SegmentStore& store,
                                      const SegmentDistance& dist,
                                      common::ThreadPool& pool,
                                      BatchKernel kernel);

/// The exact prune predicate EpsilonRefine applies: true when the
/// midpoint/half-length bound (including its conservative rounding margin)
/// proves dist(store, a, b) > eps. Admissibility — this never returns true
/// for a true ε-neighbor — is what makes the refine exact; exposed so tests
/// can attack the claim directly.
bool PruneProvablyFar(const traj::SegmentStore& store,
                      const SegmentDistance& dist, size_t a, size_t b,
                      double eps);

}  // namespace traclus::distance

#endif  // TRACLUS_DISTANCE_BATCH_KERNELS_H_
