#ifndef TRACLUS_DISTANCE_BATCH_KERNELS_H_
#define TRACLUS_DISTANCE_BATCH_KERNELS_H_

// Batched one-query-vs-many-candidates distance kernels over the
// SegmentStore's flat arrays — the ε-query hot path of the grouping phase
// (Lemma 3) and the parameter heuristic (§4.2/§4.4).
//
// Every ε-query in the pipeline decomposes into candidate generation (an
// index emits segment indices) followed by refinement (the exact §2.3
// three-component distance decides membership). This layer owns the
// refinement half:
//
//   candidates ──▶ lower-bound prune ──▶ blocked batch distance ──▶ ≤ ε?
//
//   * The prune is a midpoint/half-length triangle inequality: every point
//     of segment L lies within half_length(L) of midpoint(L), so
//       mindist(Li, Lj) ≥ ‖mid_i − mid_j‖ − h_i − h_j,
//     and with the provable factor c = min(w⊥/2, w∥) from
//     SegmentDistance::LowerBoundFactor,
//       dist(Li, Lj) ≥ c · (‖mid_i − mid_j‖ − h_i − h_j).
//     A candidate whose bound (with a conservative rounding margin) exceeds
//     ε is provably outside the neighborhood and skips the full evaluation.
//   * The batch kernels evaluate the surviving pairs with EXACTLY the
//     floating-point expressions of the cached pair path
//     SegmentDistance::operator()(store, i, j) — results are bit-identical,
//     so every consumer (DBSCAN goldens included) can switch freely. The
//     scalar kernel is a branch-light blocked loop over the shared canonical
//     kernel; the SIMD kernel (AVX2, compile-time dispatch) runs four
//     candidate lanes of the same operation sequence over the store's SoA
//     coordinate columns. IEEE-754 vector lanes round identically to scalar
//     ops, and the build forbids FP contraction (-ffp-contract=off), so the
//     lanes are bit-identical too (tests/segment_distance_test.cc pins all
//     of this on randomized, degenerate, tied, and 3-D segments).
//
// Consumers: the neighborhood providers (BruteForce/Grid/StrRTree) generate
// candidates and delegate refinement here; PairwiseDistanceMatrix, the
// entropy NeighborhoodProfile, OPTICS, and the k-medoids baseline stream
// blocked DistanceBatch calls. Kernel selection is a per-run knob
// (core::RunContext::distance_kernel, CLI --kernel auto|scalar|simd).
//
// Thread-safety contract: every kernel here is lock-free by construction —
// inputs are the store's immutable SoA columns, outputs go to caller-owned
// buffers, and the only cross-call state is thread_local staging inside
// the refine pipeline. Concurrent calls from pool workers are safe with no
// mutex and hence no capability annotations; kernels that grow shared
// mutable state (e.g. a cross-query prune cache) must put it behind
// common::Mutex with TRACLUS_GUARDED_BY.

#include <cstddef>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "distance/segment_distance.h"
#include "traj/segment_store.h"

namespace traclus::distance {

/// Which refinement kernel evaluates a batch.
enum class BatchKernel {
  kAuto = 0,    ///< kSimd when compiled in, else kScalar.
  kScalar = 1,  ///< Blocked scalar loop over the shared canonical kernel.
  kSimd = 2,    ///< AVX2 four-lane kernel over the SoA coordinate columns.
};

/// True when the SIMD kernel is compiled into this binary (AVX2 target).
constexpr bool SimdCompiled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

/// Resolves kAuto to the best compiled kernel; kSimd degrades to kScalar
/// when the binary was built without AVX2 (results are identical either way,
/// only throughput differs).
BatchKernel ResolveBatchKernel(BatchKernel kernel);

/// "auto" / "scalar" / "simd".
const char* BatchKernelName(BatchKernel kernel);

/// Parses a kernel name (as spelled by BatchKernelName); returns false and
/// leaves `out` untouched on anything else.
bool ParseBatchKernel(const std::string& name, BatchKernel* out);

/// Per-call counters of the ε-refine pipeline (for benchmarks and tuning:
/// pruned / candidates is the prune rate).
struct RefineStats {
  size_t candidates = 0;  ///< Candidates examined.
  size_t pruned = 0;      ///< Skipped by the lower bound (provably > ε).
  size_t refined = 0;     ///< Full three-component evaluations.
  size_t accepted = 0;    ///< Emitted into the neighborhood.
};

/// Tuning knobs of EpsilonRefine. Every setting yields identical output —
/// the knobs trade only speed and scratch residency.
struct BatchOptions {
  BatchKernel kernel = BatchKernel::kAuto;
  /// Candidates staged per prune/refine block; bounds scratch memory at
  /// O(block). 0 = default (256).
  size_t block = 0;
  /// Disables the lower-bound prune (diagnostics; the full distance is then
  /// evaluated for every candidate).
  bool prune = true;
};

/// dist(query, candidates[k]) → out[k] for every candidate, bit-identical to
/// SegmentDistance::operator()(store, query, candidates[k]).
/// `out.size()` must equal `candidates.size()`.
void DistanceBatch(const traj::SegmentStore& store,
                   const SegmentDistance& dist, size_t query,
                   common::Span<const size_t> candidates,
                   common::Span<double> out,
                   BatchKernel kernel = BatchKernel::kAuto);

/// Contiguous-candidate variant: dist(query, first + k) → out[k] for the
/// index range [first, last). `out.size()` must equal `last - first`.
void DistanceBatchRange(const traj::SegmentStore& store,
                        const SegmentDistance& dist, size_t query,
                        size_t first, size_t last, common::Span<double> out,
                        BatchKernel kernel = BatchKernel::kAuto);

/// The batched ε-refine: appends to `out_indices` every candidate within
/// distance `eps` of `query` (the query itself always passes when listed,
/// mirroring Definition 4's self-inclusion), preserving candidate order.
/// Exactly equivalent to the per-pair loop
///   for j in candidates: if (j == query || dist(store, query, j) <= eps)
/// but with lower-bound pruning and blocked batch evaluation. Returns the
/// number of indices appended; `stats` (optional) accumulates counters.
size_t EpsilonRefine(const traj::SegmentStore& store,
                     const SegmentDistance& dist, size_t query,
                     common::Span<const size_t> candidates, double eps,
                     std::vector<size_t>& out_indices,
                     const BatchOptions& options = {},
                     RefineStats* stats = nullptr);

/// Contiguous-candidate ε-refine over the index range [first, last) — the
/// whole-database scan of the brute-force provider and the no-bound
/// fallback, without materializing an index list.
size_t EpsilonRefineRange(const traj::SegmentStore& store,
                          const SegmentDistance& dist, size_t query,
                          size_t first, size_t last, double eps,
                          std::vector<size_t>& out_indices,
                          const BatchOptions& options = {},
                          RefineStats* stats = nullptr);

/// Cross-store ε-refine: the query segment lives in `query_store` (local
/// index `query`) while the candidates live in `cand_store` (local indices
/// `candidates`) — the refinement step of the chunked out-of-core
/// neighborhood, where the query's chunk and a candidate chunk are distinct
/// chunk-local SegmentStores of one ChunkedSegmentStore.
///
/// For each candidate j with dist ≤ eps, appends `out_base + j` (the
/// caller's global index for chunk-local j) to `out_indices`, preserving
/// candidate order. Because chunk-local stores cache bit-identical
/// invariants, the evaluation — Lemma 2 canonicalization included — executes
/// the same floating-point operations as the one-store refine over a
/// monolithic store, so results are bit-identical to EpsilonRefine on the
/// merged database.
///
/// The candidates must not contain the query segment itself (Definition 4
/// self-inclusion is a same-store concern; callers route the query's own
/// chunk through EpsilonRefine). The SIMD kernel request degrades to the
/// scalar canonical kernel here — identical results, since the lanes are
/// bit-identical to scalar by construction; only throughput differs.
size_t EpsilonRefineCross(const traj::SegmentStore& query_store,
                          const SegmentDistance& dist, size_t query,
                          const traj::SegmentStore& cand_store,
                          common::Span<const size_t> candidates, double eps,
                          size_t out_base, std::vector<size_t>& out_indices,
                          const BatchOptions& options = {},
                          RefineStats* stats = nullptr);

/// Kernel-selecting overload of PairwiseDistanceMatrix (segment_distance.h):
/// the same symmetric n×n matrix, with each row's upper-triangle entries
/// streamed as one contiguous DistanceBatchRange into the row storage (the
/// chunk owning row i also writes the mirrored column, so every element has
/// exactly one writer and the matrix is identical for every thread count).
common::Matrix PairwiseDistanceMatrix(const traj::SegmentStore& store,
                                      const SegmentDistance& dist,
                                      common::ThreadPool& pool,
                                      BatchKernel kernel);

/// The exact prune predicate EpsilonRefine applies: true when the
/// midpoint/half-length bound (including its conservative rounding margin)
/// proves dist(store, a, b) > eps. Admissibility — this never returns true
/// for a true ε-neighbor — is what makes the refine exact; exposed so tests
/// can attack the claim directly.
bool PruneProvablyFar(const traj::SegmentStore& store,
                      const SegmentDistance& dist, size_t a, size_t b,
                      double eps);

}  // namespace traclus::distance

#endif  // TRACLUS_DISTANCE_BATCH_KERNELS_H_
