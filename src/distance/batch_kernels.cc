#include "distance/batch_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/logging.h"
#include "distance/store_kernel_detail.h"
#include "geom/point.h"

namespace traclus::distance {

namespace {

constexpr size_t kDefaultRefineBlock = 256;

// Candidate columns per tile block: ~256 candidates × ~12 SoA columns × 8 B
// ≈ 24 KiB, sized to stay resident in L1/L2 while every query row of the
// tile walks it. Each pair's evaluation (lane or scalar) reads only that
// pair's columns, so regrouping a batch into blocks is bit-identical.
constexpr size_t kTileCandidateBlock = 256;

// Relative margin of the prune comparison. The bound arithmetic (a squared
// midpoint distance, two additions, one multiply) accumulates at most a few
// ulps (~1e-15 relative) of rounding; pruning only when the bound exceeds ε
// by this much larger margin keeps the prune admissible for every input the
// arithmetic can represent. The admissibility test in
// tests/segment_distance_test.cc attacks this claim on randomized data.
constexpr double kPruneSlack = 1e-9;

// Query-side state of the midpoint/half-length lower-bound prune, hoisted
// out of the per-candidate loop.
struct PruneContext {
  bool usable = false;
  double reach = 0.0;  // ε / c: the Euclidean radius that could matter.
  double half_q = 0.0;
  double mid_q[geom::kMaxDims] = {0.0, 0.0, 0.0};
  int dims = 2;
};

PruneContext MakePruneContext(const traj::SegmentStore& store,
                              const SegmentDistance& dist, size_t query,
                              double eps, bool enabled) {
  PruneContext p;
  p.dims = store.dims();
  const double c = dist.LowerBoundFactor();
  // A zero factor (degenerate weights) or a non-finite/negative ε leaves no
  // provable prune; refine everything.
  if (!enabled || !(c > 0.0) || !std::isfinite(eps) || eps < 0.0) return p;
  p.usable = true;
  p.reach = eps / c;
  p.half_q = store.half_length(query);
  for (int d = 0; d < p.dims; ++d) {
    p.mid_q[d] = store.midpoint_coords(d)[query];
  }
  return p;
}

// True when candidate j is provably farther than ε from the query:
//   dist ≥ c·mindist ≥ c·(‖mid_q − mid_j‖ − h_q − h_j) > ε
// evaluated in squared form (no per-candidate sqrt) with the kPruneSlack
// margin absorbing the bound's own rounding.
inline bool PrunedFar(const PruneContext& p, const traj::SegmentStore& store,
                      size_t j) {
  if (!p.usable) return false;
  double dmid_sq = 0.0;
  for (int d = 0; d < p.dims; ++d) {
    const double diff = store.midpoint_coords(d)[j] - p.mid_q[d];
    dmid_sq += diff * diff;
  }
  const double threshold = p.reach + p.half_q + store.half_length(j);
  // threshold may round to +inf for extreme ε/c; the comparison then never
  // prunes, which is the safe direction.
  return dmid_sq > threshold * threshold * (1.0 + kPruneSlack);
}

// Exact pair distance through the shared canonical kernel — bit-identical to
// SegmentDistance::operator()(store, q, j) by construction (same
// canonicalization, same component expressions, same weighted fold).
inline double PairDistanceScalar(const traj::SegmentStore& store,
                                 const SegmentDistanceConfig& cfg,
                                 size_t query, size_t j) {
  size_t li = query;
  size_t lj = j;
  internal::CanonicalizeInStore(store, li, lj);
  return internal::StoreWeightedCanonical(store, li, lj, cfg.directed,
                                          cfg.w_perpendicular, cfg.w_parallel,
                                          cfg.w_angle);
}

// Cross-store pair distance: query from qs, candidate from cs. Same
// canonical role assignment and kernel as PairDistanceScalar (chunk-local
// invariants are bit-identical to the monolithic columns, so the swap
// decision and the arithmetic match the one-store path exactly).
inline double PairDistanceScalarCross(const traj::SegmentStore& qs,
                                      size_t query,
                                      const traj::SegmentStore& cs, size_t j,
                                      const SegmentDistanceConfig& cfg) {
  if (internal::CrossCanonicalSwap(qs, query, cs, j)) {
    return internal::CrossWeightedCanonical(cs, j, qs, query, cfg.directed,
                                            cfg.w_perpendicular,
                                            cfg.w_parallel, cfg.w_angle);
  }
  return internal::CrossWeightedCanonical(qs, query, cs, j, cfg.directed,
                                          cfg.w_perpendicular, cfg.w_parallel,
                                          cfg.w_angle);
}

// Canonical kernel over raw (Li, Lj) coordinate arrays: exactly the
// floating-point expressions of internal::CrossComponentsCanonicalInto plus
// the StoreWeightedCanonical fold, with the Point temporaries replaced by
// compile-time-unrolled loops over D dimensions. Every sum accumulates in
// ascending dimension order from 0.0 — the geom::Dot / Point::SquaredNorm
// order — and the build forbids FP contraction, so results are bit-identical
// to the store-backed kernel (the tile-vs-batch-vs-pair bitwise tests pin
// this on the adversarial corpus). Callers resolve the Lemma 2 swap first.
template <int D>
inline double RawWeightedCanonical(const double* s, const double* e,
                                   const double* se, double den, double len_i,
                                   const double* js, const double* je,
                                   const double* dj, double len_j,
                                   bool directed, double w_perpendicular,
                                   double w_parallel, double w_angle) {
  // ProjectOntoLine of both Lj endpoints: u = Dot(p − s, se) / ‖se‖².
  double dot1 = 0.0;
  double dot2 = 0.0;
  for (int d = 0; d < D; ++d) {
    dot1 += (js[d] - s[d]) * se[d];
    dot2 += (je[d] - s[d]) * se[d];
  }
  const double u1 = den == 0.0 ? 0.0 : dot1 / den;
  const double u2 = den == 0.0 ? 0.0 : dot2 / den;

  // proj = s + se·u; the six projection-relative squared norms (to Lj's
  // endpoints for d⊥, to Li's endpoints for d∥).
  double sq_perp1 = 0.0, sq_perp2 = 0.0;
  double sq_ps_s = 0.0, sq_ps_e = 0.0, sq_pe_s = 0.0, sq_pe_e = 0.0;
  for (int d = 0; d < D; ++d) {
    const double ps = s[d] + se[d] * u1;
    const double pe = s[d] + se[d] * u2;
    const double d1 = js[d] - ps;
    sq_perp1 += d1 * d1;
    const double d2 = je[d] - pe;
    sq_perp2 += d2 * d2;
    const double d3 = ps - s[d];
    sq_ps_s += d3 * d3;
    const double d4 = ps - e[d];
    sq_ps_e += d4 * d4;
    const double d5 = pe - s[d];
    sq_pe_s += d5 * d5;
    const double d6 = pe - e[d];
    sq_pe_e += d6 * d6;
  }

  // Perpendicular (Definition 1): Lehmer mean of order 2 over the root-ed
  // distances (l·l after the sqrt, like the reference — not the raw squares).
  const double l1 = std::sqrt(sq_perp1);
  const double l2 = std::sqrt(sq_perp2);
  const double perp_denom = l1 + l2;
  const double perpendicular =
      perp_denom == 0.0 ? 0.0 : (l1 * l1 + l2 * l2) / perp_denom;

  // Parallel (Definition 2): MIN over projections of the distance to the
  // nearer Li endpoint.
  const double lpar1 = std::min(std::sqrt(sq_ps_s), std::sqrt(sq_ps_e));
  const double lpar2 = std::min(std::sqrt(sq_pe_s), std::sqrt(sq_pe_e));
  const double parallel = std::min(lpar1, lpar2);

  // Angle (Definition 3): zero for a point-like Lj, cos forced to 1 for a
  // point-like Li, the directed regime contributing ‖Lj‖ outright.
  double angle = 0.0;
  if (len_j != 0.0) {
    double cos_theta = 1.0;
    if (len_i != 0.0) {
      double dot_ij = 0.0;
      for (int d = 0; d < D; ++d) dot_ij += se[d] * dj[d];
      cos_theta = std::clamp(dot_ij / (len_i * len_j), -1.0, 1.0);
    }
    if (directed && cos_theta <= 0.0) {
      angle = len_j;
    } else {
      const double sin_theta =
          std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
      angle = len_j * sin_theta;
    }
  }

  return w_perpendicular * perpendicular + w_parallel * parallel +
         w_angle * angle;
}

// Contiguous-candidate scalar row kernel — the tile family's scalar inner
// loop. Hoists the query's columns into registers once per row instead of
// re-resolving them per pair through CanonicalizeInStore + segment(), and
// resolves the Lemma 2 swap inline (the strict length compare covers almost
// every pair; exact ties fall back to the full scalar tie-break).
template <int D>
void RangeScalarRow(const traj::SegmentStore& store,
                    const SegmentDistanceConfig& cfg, size_t query,
                    size_t first, size_t last, double* out) {
  const double* len_col = store.lengths().data();
  const double* sqlen_col = store.squared_lengths().data();
  const double* start_col[D];
  const double* end_col[D];
  const double* dir_col[D];
  double qs[D], qe[D], qd[D];
  for (int d = 0; d < D; ++d) {
    start_col[d] = store.start_coords(d).data();
    end_col[d] = store.end_coords(d).data();
    dir_col[d] = store.direction_coords(d).data();
    qs[d] = start_col[d][query];
    qe[d] = end_col[d][query];
    qd[d] = dir_col[d][query];
  }
  const double q_den = sqlen_col[query];
  const double q_len = len_col[query];

  for (size_t j = first; j < last; ++j) {
    double cs[D], ce[D], cd[D];
    for (int d = 0; d < D; ++d) {
      cs[d] = start_col[d][j];
      ce[d] = end_col[d][j];
      cd[d] = dir_col[d][j];
    }
    const double c_len = len_col[j];
    // Lemma 2 canonical roles: the candidate takes Li when strictly longer;
    // an exact length tie runs the id / lexicographic tie-break. NaN lengths
    // fail both compares, leaving the query as Li — CrossCanonicalSwap's
    // behavior exactly.
    bool swap = q_len < c_len;
    if (q_len == c_len) {
      swap = internal::CrossCanonicalSwap(store, query, store, j);
    }
    out[j - first] =
        swap ? RawWeightedCanonical<D>(cs, ce, cd, sqlen_col[j], c_len, qs,
                                       qe, qd, q_len, cfg.directed,
                                       cfg.w_perpendicular, cfg.w_parallel,
                                       cfg.w_angle)
             : RawWeightedCanonical<D>(qs, qe, qd, q_den, q_len, cs, ce, cd,
                                       c_len, cfg.directed,
                                       cfg.w_perpendicular, cfg.w_parallel,
                                       cfg.w_angle);
  }
}

// Blocked scalar batch kernel. `index(k)` maps batch position to segment
// index (an array lookup for DistanceBatch, `first + k` for the Range
// variants). Branch-light: the only data-dependent branches are the ones the
// canonical kernel itself requires for bit-identity (degenerate-length and
// angle-regime selection).
template <typename IndexFn>
void BatchScalar(const traj::SegmentStore& store,
                 const SegmentDistanceConfig& cfg, size_t query, size_t n,
                 const IndexFn& index, double* out) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = PairDistanceScalar(store, cfg, query, index(k));
  }
}

#if defined(__AVX2__)

// std::min(a, b) ≡ (b < a) ? b : a, lane-wise with identical NaN/zero
// semantics (blendv takes `b` exactly where the ordered compare holds).
inline __m256d MinStd(__m256d a, __m256d b) {
  return _mm256_blendv_pd(a, b, _mm256_cmp_pd(b, a, _CMP_LT_OQ));
}

// Broadcast weights of the four-lane canonical kernel.
struct SimdWeights {
  __m256d w_perp;
  __m256d w_par;
  __m256d w_ang;
  bool directed;
};

// The four-lane canonical arithmetic body, shared verbatim by the batch
// kernel (lane-gathered inputs) and the contiguous row kernel (blended
// inputs) so both execute literally the same instruction sequence.
//
// Each lane executes the exact operation sequence of the scalar canonical
// kernel (store_kernel_detail.h) on already-canonicalized (Li, Lj) role
// registers, with branches replaced by blends whose selected value matches
// the scalar ternary in every case (including NaN propagation and signed
// zeros). Every vector op is an IEEE-754 double op per lane and the build
// forbids FMA contraction, so lane results are bit-identical to the scalar
// kernel — asserted exhaustively in tests/segment_distance_test.cc.
inline __m256d CanonicalLanes(int dims, const __m256d* s_v, const __m256d* e_v,
                              const __m256d* se_v, const __m256d* js_v,
                              const __m256d* je_v, const __m256d* dj_v,
                              __m256d den, __m256d len_i, __m256d len_j,
                              const SimdWeights& w) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg_one = _mm256_set1_pd(-1.0);
  const __m256d den_zero = _mm256_cmp_pd(den, zero, _CMP_EQ_OQ);

  // ProjectOntoLine of both Lj endpoints: u = Dot(p − s, se) / ‖se‖²
  // (0 for a degenerate Li), accumulated dimension-by-dimension exactly
  // like geom::Dot.
  __m256d dot1 = zero;
  __m256d dot2 = zero;
  for (int d = 0; d < dims; ++d) {
    dot1 = _mm256_add_pd(
        dot1, _mm256_mul_pd(_mm256_sub_pd(js_v[d], s_v[d]), se_v[d]));
    dot2 = _mm256_add_pd(
        dot2, _mm256_mul_pd(_mm256_sub_pd(je_v[d], s_v[d]), se_v[d]));
  }
  const __m256d u1 =
      _mm256_blendv_pd(_mm256_div_pd(dot1, den), zero, den_zero);
  const __m256d u2 =
      _mm256_blendv_pd(_mm256_div_pd(dot2, den), zero, den_zero);

  // proj = s + se·u; accumulate the four projection-relative squared
  // norms (to Lj's endpoints for d⊥, to Li's endpoints for d∥) in
  // dimension order, exactly like Point::SquaredNorm.
  __m256d sq_perp1 = zero, sq_perp2 = zero;
  __m256d sq_ps_s = zero, sq_ps_e = zero, sq_pe_s = zero, sq_pe_e = zero;
  for (int d = 0; d < dims; ++d) {
    const __m256d ps = _mm256_add_pd(s_v[d], _mm256_mul_pd(se_v[d], u1));
    const __m256d pe = _mm256_add_pd(s_v[d], _mm256_mul_pd(se_v[d], u2));
    const __m256d d1 = _mm256_sub_pd(js_v[d], ps);
    sq_perp1 = _mm256_add_pd(sq_perp1, _mm256_mul_pd(d1, d1));
    const __m256d d2 = _mm256_sub_pd(je_v[d], pe);
    sq_perp2 = _mm256_add_pd(sq_perp2, _mm256_mul_pd(d2, d2));
    const __m256d d3 = _mm256_sub_pd(ps, s_v[d]);
    sq_ps_s = _mm256_add_pd(sq_ps_s, _mm256_mul_pd(d3, d3));
    const __m256d d4 = _mm256_sub_pd(ps, e_v[d]);
    sq_ps_e = _mm256_add_pd(sq_ps_e, _mm256_mul_pd(d4, d4));
    const __m256d d5 = _mm256_sub_pd(pe, s_v[d]);
    sq_pe_s = _mm256_add_pd(sq_pe_s, _mm256_mul_pd(d5, d5));
    const __m256d d6 = _mm256_sub_pd(pe, e_v[d]);
    sq_pe_e = _mm256_add_pd(sq_pe_e, _mm256_mul_pd(d6, d6));
  }

  // Perpendicular (Definition 1): Lehmer mean of order 2, zero when both
  // endpoints sit on the line.
  const __m256d l1 = _mm256_sqrt_pd(sq_perp1);
  const __m256d l2 = _mm256_sqrt_pd(sq_perp2);
  const __m256d perp_den = _mm256_add_pd(l1, l2);
  const __m256d perp_raw = _mm256_div_pd(
      _mm256_add_pd(_mm256_mul_pd(l1, l1), _mm256_mul_pd(l2, l2)),
      perp_den);
  const __m256d perp = _mm256_blendv_pd(
      perp_raw, zero, _mm256_cmp_pd(perp_den, zero, _CMP_EQ_OQ));

  // Parallel (Definition 2): MIN over projections of the distance to the
  // nearer Li endpoint.
  const __m256d lpar1 =
      MinStd(_mm256_sqrt_pd(sq_ps_s), _mm256_sqrt_pd(sq_ps_e));
  const __m256d lpar2 =
      MinStd(_mm256_sqrt_pd(sq_pe_s), _mm256_sqrt_pd(sq_pe_e));
  const __m256d par = MinStd(lpar1, lpar2);

  // Angle (Definition 3). cos θ = Dot(dir_i, dir_j) / (‖i‖·‖j‖), clamped
  // to [−1, 1] with std::clamp's exact selection order, forced to 1 for a
  // degenerate Li; a degenerate Lj zeroes the whole component.
  __m256d dot_ij = zero;
  for (int d = 0; d < dims; ++d) {
    dot_ij = _mm256_add_pd(dot_ij, _mm256_mul_pd(se_v[d], dj_v[d]));
  }
  const __m256d len_i_zero = _mm256_cmp_pd(len_i, zero, _CMP_EQ_OQ);
  const __m256d len_j_zero = _mm256_cmp_pd(len_j, zero, _CMP_EQ_OQ);
  const __m256d cos_raw =
      _mm256_div_pd(dot_ij, _mm256_mul_pd(len_i, len_j));
  // std::clamp(v, −1, 1): (v < lo) ? lo : (hi < v) ? hi : v.
  __m256d cos_t = _mm256_blendv_pd(
      cos_raw, neg_one, _mm256_cmp_pd(cos_raw, neg_one, _CMP_LT_OQ));
  cos_t =
      _mm256_blendv_pd(cos_t, one, _mm256_cmp_pd(one, cos_t, _CMP_LT_OQ));
  cos_t = _mm256_blendv_pd(cos_t, one, len_i_zero);
  // sin θ = sqrt(std::max(0, 1 − cos²)); std::max(0, x) ≡ (0 < x) ? x : 0.
  const __m256d one_minus_sq =
      _mm256_sub_pd(one, _mm256_mul_pd(cos_t, cos_t));
  const __m256d sin_arg = _mm256_blendv_pd(
      zero, one_minus_sq, _mm256_cmp_pd(zero, one_minus_sq, _CMP_LT_OQ));
  __m256d ang = _mm256_mul_pd(len_j, _mm256_sqrt_pd(sin_arg));
  if (w.directed) {
    // θ ∈ [90°, 180°] contributes ‖Lj‖ outright.
    ang = _mm256_blendv_pd(ang, len_j,
                           _mm256_cmp_pd(cos_t, zero, _CMP_LE_OQ));
  }
  ang = _mm256_blendv_pd(ang, zero, len_j_zero);

  // Weighted fold, grouped (w⊥·d⊥ + w∥·d∥) + wθ·dθ like the scalar path.
  return _mm256_add_pd(
      _mm256_add_pd(_mm256_mul_pd(w.w_perp, perp),
                    _mm256_mul_pd(w.w_par, par)),
      _mm256_mul_pd(w.w_ang, ang));
}

inline SimdWeights MakeSimdWeights(const SegmentDistanceConfig& cfg) {
  SimdWeights w;
  w.w_perp = _mm256_set1_pd(cfg.w_perpendicular);
  w.w_par = _mm256_set1_pd(cfg.w_parallel);
  w.w_ang = _mm256_set1_pd(cfg.w_angle);
  w.directed = cfg.directed;
  return w;
}

// Four-lane AVX2 batch kernel over the store's SoA coordinate columns: the
// per-pair (longer, shorter) roles are resolved scalar-side during the lane
// gather (Lemma 2 ordering, including the id / lexicographic tie-breaks,
// which do not vectorize), after which CanonicalLanes runs the shared
// straight-line arithmetic.
template <typename IndexFn>
void BatchSimd(const traj::SegmentStore& store,
               const SegmentDistanceConfig& cfg, size_t query, size_t n,
               const IndexFn& index, double* out) {
  const int dims = store.dims();
  const double* len_col = store.lengths().data();
  const double* sqlen_col = store.squared_lengths().data();
  const double* start_col[geom::kMaxDims];
  const double* end_col[geom::kMaxDims];
  const double* dir_col[geom::kMaxDims];
  for (int d = 0; d < dims; ++d) {
    start_col[d] = store.start_coords(d).data();
    end_col[d] = store.end_coords(d).data();
    dir_col[d] = store.direction_coords(d).data();
  }
  const SimdWeights w = MakeSimdWeights(cfg);

  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // Lane gather: canonicalize each pair scalar-side, then transpose the
    // canonical (Li, Lj) scalars into lane-major form.
    alignas(32) double s_l[geom::kMaxDims][4];   // Li start.
    alignas(32) double e_l[geom::kMaxDims][4];   // Li end.
    alignas(32) double se_l[geom::kMaxDims][4];  // Li direction (e − s).
    alignas(32) double js_l[geom::kMaxDims][4];  // Lj start.
    alignas(32) double je_l[geom::kMaxDims][4];  // Lj end.
    alignas(32) double dj_l[geom::kMaxDims][4];  // Lj direction.
    alignas(32) double den_l[4];                 // ‖Li direction‖².
    alignas(32) double len_i_l[4];
    alignas(32) double len_j_l[4];
    for (int lane = 0; lane < 4; ++lane) {
      size_t li = query;
      size_t lj = index(k + static_cast<size_t>(lane));
      internal::CanonicalizeInStore(store, li, lj);
      den_l[lane] = sqlen_col[li];
      len_i_l[lane] = len_col[li];
      len_j_l[lane] = len_col[lj];
      for (int d = 0; d < dims; ++d) {
        s_l[d][lane] = start_col[d][li];
        e_l[d][lane] = end_col[d][li];
        se_l[d][lane] = dir_col[d][li];
        js_l[d][lane] = start_col[d][lj];
        je_l[d][lane] = end_col[d][lj];
        dj_l[d][lane] = dir_col[d][lj];
      }
    }

    __m256d s_v[geom::kMaxDims], e_v[geom::kMaxDims], se_v[geom::kMaxDims];
    __m256d js_v[geom::kMaxDims], je_v[geom::kMaxDims], dj_v[geom::kMaxDims];
    for (int d = 0; d < dims; ++d) {
      s_v[d] = _mm256_load_pd(s_l[d]);
      e_v[d] = _mm256_load_pd(e_l[d]);
      se_v[d] = _mm256_load_pd(se_l[d]);
      js_v[d] = _mm256_load_pd(js_l[d]);
      je_v[d] = _mm256_load_pd(je_l[d]);
      dj_v[d] = _mm256_load_pd(dj_l[d]);
    }
    const __m256d total = CanonicalLanes(
        dims, s_v, e_v, se_v, js_v, je_v, dj_v, _mm256_load_pd(den_l),
        _mm256_load_pd(len_i_l), _mm256_load_pd(len_j_l), w);
    _mm256_storeu_pd(out + k, total);
  }

  // Tail lanes (< 4 remaining) run the scalar kernel — same bits.
  for (; k < n; ++k) {
    out[k] = PairDistanceScalar(store, cfg, query, index(k));
  }
}

// Contiguous-candidate SIMD row kernel — the tile family's vector inner
// loop. Instead of BatchSimd's per-lane scalar gather (which re-resolves the
// query's columns for every pair), the query side is broadcast ONCE per row
// and each 4-candidate step is: unaligned column loads + a vectorized
// Lemma 2 swap mask + role blends + the shared arithmetic body. The blends
// only move bits between registers, so feeding CanonicalLanes this way is
// bit-identical to the gathered path (pinned by the tile bitwise tests).
void RangeSimd(const traj::SegmentStore& store,
               const SegmentDistanceConfig& cfg, size_t query, size_t first,
               size_t last, double* out) {
  const int dims = store.dims();
  const double* len_col = store.lengths().data();
  const double* sqlen_col = store.squared_lengths().data();
  const double* start_col[geom::kMaxDims];
  const double* end_col[geom::kMaxDims];
  const double* dir_col[geom::kMaxDims];
  __m256d qs_v[geom::kMaxDims], qe_v[geom::kMaxDims], qd_v[geom::kMaxDims];
  for (int d = 0; d < dims; ++d) {
    start_col[d] = store.start_coords(d).data();
    end_col[d] = store.end_coords(d).data();
    dir_col[d] = store.direction_coords(d).data();
    qs_v[d] = _mm256_set1_pd(start_col[d][query]);
    qe_v[d] = _mm256_set1_pd(end_col[d][query]);
    qd_v[d] = _mm256_set1_pd(dir_col[d][query]);
  }
  const __m256d q_den = _mm256_set1_pd(sqlen_col[query]);
  const __m256d q_len = _mm256_set1_pd(len_col[query]);
  const SimdWeights w = MakeSimdWeights(cfg);

  size_t j = first;
  for (; j + 4 <= last; j += 4) {
    __m256d cs_v[geom::kMaxDims], ce_v[geom::kMaxDims], cd_v[geom::kMaxDims];
    for (int d = 0; d < dims; ++d) {
      cs_v[d] = _mm256_loadu_pd(start_col[d] + j);
      ce_v[d] = _mm256_loadu_pd(end_col[d] + j);
      cd_v[d] = _mm256_loadu_pd(dir_col[d] + j);
    }
    const __m256d c_den = _mm256_loadu_pd(sqlen_col + j);
    const __m256d c_len = _mm256_loadu_pd(len_col + j);

    // Lemma 2 swap mask: the candidate takes the Li role where the query is
    // strictly shorter. Exact length ties (and only those — NaN lengths fail
    // both compares and keep the query as Li, like CrossCanonicalSwap) fall
    // back to the scalar id / lexicographic tie-break, patched lane-wise.
    __m256d swap = _mm256_cmp_pd(q_len, c_len, _CMP_LT_OQ);
    const int eq =
        _mm256_movemask_pd(_mm256_cmp_pd(q_len, c_len, _CMP_EQ_OQ));
    if (eq != 0) {
      alignas(32) uint64_t mask_l[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(mask_l),
                         _mm256_castpd_si256(swap));
      for (int lane = 0; lane < 4; ++lane) {
        if ((eq & (1 << lane)) != 0) {
          mask_l[lane] =
              internal::CrossCanonicalSwap(store, query, store,
                                           j + static_cast<size_t>(lane))
                  ? ~uint64_t{0}
                  : uint64_t{0};
        }
      }
      swap = _mm256_castsi256_pd(
          _mm256_load_si256(reinterpret_cast<const __m256i*>(mask_l)));
    }

    // Role blends: Li ← candidate where swapped, else query (and vice versa
    // for Lj). Pure bit moves — no rounding.
    __m256d s_v[geom::kMaxDims], e_v[geom::kMaxDims], se_v[geom::kMaxDims];
    __m256d js_v[geom::kMaxDims], je_v[geom::kMaxDims], dj_v[geom::kMaxDims];
    for (int d = 0; d < dims; ++d) {
      s_v[d] = _mm256_blendv_pd(qs_v[d], cs_v[d], swap);
      e_v[d] = _mm256_blendv_pd(qe_v[d], ce_v[d], swap);
      se_v[d] = _mm256_blendv_pd(qd_v[d], cd_v[d], swap);
      js_v[d] = _mm256_blendv_pd(cs_v[d], qs_v[d], swap);
      je_v[d] = _mm256_blendv_pd(ce_v[d], qe_v[d], swap);
      dj_v[d] = _mm256_blendv_pd(cd_v[d], qd_v[d], swap);
    }
    const __m256d den = _mm256_blendv_pd(q_den, c_den, swap);
    const __m256d len_i = _mm256_blendv_pd(q_len, c_len, swap);
    const __m256d len_j = _mm256_blendv_pd(c_len, q_len, swap);

    const __m256d total = CanonicalLanes(dims, s_v, e_v, se_v, js_v, je_v,
                                         dj_v, den, len_i, len_j, w);
    _mm256_storeu_pd(out + (j - first), total);
  }

  // Tail lanes (< 4 remaining) run the scalar kernel — same bits.
  for (; j < last; ++j) {
    out[j - first] = PairDistanceScalar(store, cfg, query, j);
  }
}

// Cross-store four-lane kernel: the same shared arithmetic body as
// BatchSimd, with the per-lane gather resolving the Lemma 2 roles across the
// two stores (CrossCanonicalSwap — the exact decision PairDistanceScalarCross
// makes), so the lanes are bit-identical to the scalar cross path for the
// same reason the one-store lanes are: identical role assignment feeding
// identical straight-line arithmetic.
template <typename IndexFn>
void BatchSimdCross(const traj::SegmentStore& qs, const traj::SegmentStore& cs,
                    const SegmentDistanceConfig& cfg, size_t query, size_t n,
                    const IndexFn& index, double* out) {
  const int dims = qs.dims();
  const SimdWeights w = MakeSimdWeights(cfg);

  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    alignas(32) double s_l[geom::kMaxDims][4];   // Li start.
    alignas(32) double e_l[geom::kMaxDims][4];   // Li end.
    alignas(32) double se_l[geom::kMaxDims][4];  // Li direction (e − s).
    alignas(32) double js_l[geom::kMaxDims][4];  // Lj start.
    alignas(32) double je_l[geom::kMaxDims][4];  // Lj end.
    alignas(32) double dj_l[geom::kMaxDims][4];  // Lj direction.
    alignas(32) double den_l[4];                 // ‖Li direction‖².
    alignas(32) double len_i_l[4];
    alignas(32) double len_j_l[4];
    for (int lane = 0; lane < 4; ++lane) {
      const size_t j = index(k + static_cast<size_t>(lane));
      const bool swap = internal::CrossCanonicalSwap(qs, query, cs, j);
      const traj::SegmentStore& si = swap ? cs : qs;
      const traj::SegmentStore& sj = swap ? qs : cs;
      const size_t li = swap ? j : query;
      const size_t lj = swap ? query : j;
      den_l[lane] = si.squared_lengths()[li];
      len_i_l[lane] = si.lengths()[li];
      len_j_l[lane] = sj.lengths()[lj];
      for (int d = 0; d < dims; ++d) {
        s_l[d][lane] = si.start_coords(d)[li];
        e_l[d][lane] = si.end_coords(d)[li];
        se_l[d][lane] = si.direction_coords(d)[li];
        js_l[d][lane] = sj.start_coords(d)[lj];
        je_l[d][lane] = sj.end_coords(d)[lj];
        dj_l[d][lane] = sj.direction_coords(d)[lj];
      }
    }

    __m256d s_v[geom::kMaxDims], e_v[geom::kMaxDims], se_v[geom::kMaxDims];
    __m256d js_v[geom::kMaxDims], je_v[geom::kMaxDims], dj_v[geom::kMaxDims];
    for (int d = 0; d < dims; ++d) {
      s_v[d] = _mm256_load_pd(s_l[d]);
      e_v[d] = _mm256_load_pd(e_l[d]);
      se_v[d] = _mm256_load_pd(se_l[d]);
      js_v[d] = _mm256_load_pd(js_l[d]);
      je_v[d] = _mm256_load_pd(je_l[d]);
      dj_v[d] = _mm256_load_pd(dj_l[d]);
    }
    const __m256d total = CanonicalLanes(
        dims, s_v, e_v, se_v, js_v, je_v, dj_v, _mm256_load_pd(den_l),
        _mm256_load_pd(len_i_l), _mm256_load_pd(len_j_l), w);
    _mm256_storeu_pd(out + k, total);
  }

  // Tail lanes (< 4 remaining) run the scalar cross kernel — same bits.
  for (; k < n; ++k) {
    out[k] = PairDistanceScalarCross(qs, query, cs, index(k), cfg);
  }
}

#endif  // __AVX2__

// Dispatches an already-resolved kernel choice.
template <typename IndexFn>
void BatchDispatch(BatchKernel kernel, const traj::SegmentStore& store,
                   const SegmentDistanceConfig& cfg, size_t query, size_t n,
                   const IndexFn& index, double* out) {
#if defined(__AVX2__)
  if (kernel == BatchKernel::kSimd) {
    BatchSimd(store, cfg, query, n, index, out);
    return;
  }
#else
  (void)kernel;
#endif
  BatchScalar(store, cfg, query, n, index, out);
}

// Cross-store scalar batch kernel: query from qs, candidates from cs.
template <typename IndexFn>
void BatchScalarCross(const traj::SegmentStore& qs,
                      const traj::SegmentStore& cs,
                      const SegmentDistanceConfig& cfg, size_t query, size_t n,
                      const IndexFn& index, double* out) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = PairDistanceScalarCross(qs, query, cs, index(k), cfg);
  }
}

// Cross-store kernel dispatch, mirroring BatchDispatch.
template <typename IndexFn>
void BatchDispatchCross(BatchKernel kernel, const traj::SegmentStore& qs,
                        const traj::SegmentStore& cs,
                        const SegmentDistanceConfig& cfg, size_t query,
                        size_t n, const IndexFn& index, double* out) {
#if defined(__AVX2__)
  if (kernel == BatchKernel::kSimd) {
    BatchSimdCross(qs, cs, cfg, query, n, index, out);
    return;
  }
#else
  (void)kernel;
#endif
  BatchScalarCross(qs, cs, cfg, query, n, index, out);
}

// Shared cross-store ε-refine pipeline: the blocked prune → batch →
// threshold shape of EpsilonRefineImpl, minus the self-inclusion case
// (cross-store candidates never contain the query — header contract). The
// prune reads only the candidate store's midpoint/half-length columns, so
// PrunedFar works unchanged across stores; emission is `out_base + j` in
// candidate order (blocks ascend and order within a block is preserved), so
// the output matches the old per-candidate loop exactly.
template <typename IndexFn>
size_t EpsilonRefineCrossImpl(const traj::SegmentStore& qs,
                              const SegmentDistance& dist, size_t query,
                              const traj::SegmentStore& cs, size_t n,
                              const IndexFn& index, double eps,
                              size_t out_base,
                              std::vector<size_t>& out_indices,
                              const BatchOptions& options,
                              RefineStats* stats) {
  const BatchKernel kernel = ResolveBatchKernel(options.kernel);
  const size_t block =
      options.block > 0 ? options.block : kDefaultRefineBlock;
  const PruneContext prune =
      MakePruneContext(qs, dist, query, eps, options.prune);
  const SegmentDistanceConfig& cfg = dist.config();

  // Same thread_local staging story as EpsilonRefineImpl: the kernels read
  // only the two stores' immutable columns and write only these buffers plus
  // the caller-owned out_indices, so concurrent refines share nothing.
  thread_local std::vector<size_t> survivors;
  thread_local std::vector<double> distances;

  size_t appended = 0;
  size_t pruned = 0;
  size_t refined = 0;
  for (size_t base = 0; base < n; base += block) {
    const size_t hi = std::min(n, base + block);
    survivors.clear();
    for (size_t k = base; k < hi; ++k) {
      const size_t j = index(k);
      TRACLUS_DCHECK(j < cs.size());
      if (PrunedFar(prune, cs, j)) {
        ++pruned;
        continue;
      }
      survivors.push_back(j);
    }
    distances.resize(survivors.size());
    BatchDispatchCross(
        kernel, qs, cs, cfg, query, survivors.size(),
        [&](size_t m) { return survivors[m]; }, distances.data());
    refined += survivors.size();
    for (size_t m = 0; m < survivors.size(); ++m) {
      if (distances[m] <= eps) {
        out_indices.push_back(out_base + survivors[m]);
        ++appended;
      }
    }
  }

  if (stats != nullptr) {
    stats->candidates += n;
    stats->pruned += pruned;
    stats->refined += refined;
    stats->accepted += appended;
  }
  return appended;
}

// Contiguous-candidate row kernel — the tile family's inner loop. Same
// results as BatchDispatch over the index range [first, last) (the tile
// bitwise tests pin this), but with the query-side state hoisted out of the
// candidate loop instead of re-resolved per pair: broadcast registers in the
// SIMD kernel, compile-time-unrolled locals in the scalar one. This hoist is
// what makes the tiled all-pairs consumers faster than their row-batched
// predecessors — the candidate columns stream as contiguous loads while the
// query side stays in registers for the whole row.
void RowRangeDispatch(BatchKernel kernel, const traj::SegmentStore& store,
                      const SegmentDistanceConfig& cfg, size_t query,
                      size_t first, size_t last, double* out) {
  if (first >= last) return;
#if defined(__AVX2__)
  if (kernel == BatchKernel::kSimd) {
    RangeSimd(store, cfg, query, first, last, out);
    return;
  }
#else
  (void)kernel;
#endif
  if (store.dims() == 2) {
    RangeScalarRow<2>(store, cfg, query, first, last, out);
  } else {
    RangeScalarRow<3>(store, cfg, query, first, last, out);
  }
}

// Tile core for indexed candidate lists: candidate-block-major evaluation of
// an M × N block. Each block of candidate columns is walked once per query
// row while hot; per row the block is exactly a BatchDispatch call, so tile
// results are bit-identical to the per-query batches (and the pair path) by
// construction. Contiguous-range tiles take the faster RowRangeDispatch
// inner loop instead.
template <typename QueryFn, typename CandFn>
void TileDispatch(BatchKernel kernel, const traj::SegmentStore& store,
                  const SegmentDistanceConfig& cfg, size_t num_queries,
                  const QueryFn& query_of, size_t num_candidates,
                  const CandFn& cand_of, double* out, size_t ldo) {
  for (size_t jb = 0; jb < num_candidates; jb += kTileCandidateBlock) {
    const size_t je = std::min(num_candidates, jb + kTileCandidateBlock);
    for (size_t qi = 0; qi < num_queries; ++qi) {
      BatchDispatch(
          kernel, store, cfg, query_of(qi), je - jb,
          [&](size_t k) { return cand_of(jb + k); }, out + qi * ldo + jb);
    }
  }
}

// Shared ε-refine pipeline: blocked prune → batch distance → threshold.
template <typename IndexFn>
size_t EpsilonRefineImpl(const traj::SegmentStore& store,
                         const SegmentDistance& dist, size_t query, size_t n,
                         const IndexFn& index, double eps,
                         std::vector<size_t>& out_indices,
                         const BatchOptions& options, RefineStats* stats) {
  const BatchKernel kernel = ResolveBatchKernel(options.kernel);
  const size_t block =
      options.block > 0 ? options.block : kDefaultRefineBlock;
  const PruneContext prune =
      MakePruneContext(store, dist, query, eps, options.prune);
  const SegmentDistanceConfig& cfg = dist.config();

  // Per-thread staging keeps the hot path allocation-free across calls;
  // residency is bounded by the block size. thread_local is the whole
  // concurrency story here: the kernels read only the immutable
  // SegmentStore columns and write only these buffers plus the
  // caller-owned out_indices, so concurrent refines on pool workers need
  // no mutex (and hence no capability annotations) — nothing is shared.
  thread_local std::vector<size_t> survivors;
  thread_local std::vector<double> distances;

  size_t appended = 0;
  size_t pruned = 0;
  size_t refined = 0;
  for (size_t base = 0; base < n; base += block) {
    const size_t hi = std::min(n, base + block);
    survivors.clear();
    for (size_t k = base; k < hi; ++k) {
      const size_t j = index(k);
      // The query itself always survives (Definition 4 self-inclusion).
      if (j != query && PrunedFar(prune, store, j)) {
        ++pruned;
        continue;
      }
      survivors.push_back(j);
    }
    distances.resize(survivors.size());
    BatchDispatch(
        kernel, store, cfg, query, survivors.size(),
        [&](size_t m) { return survivors[m]; }, distances.data());
    refined += survivors.size();
    for (size_t m = 0; m < survivors.size(); ++m) {
      const size_t j = survivors[m];
      if (j == query || distances[m] <= eps) {
        out_indices.push_back(j);
        ++appended;
      }
    }
  }

  if (stats != nullptr) {
    stats->candidates += n;
    stats->pruned += pruned;
    stats->refined += refined;
    stats->accepted += appended;
  }
  return appended;
}

}  // namespace

BatchKernel ResolveBatchKernel(BatchKernel kernel) {
  switch (kernel) {
    case BatchKernel::kAuto:
      return SimdCompiled() ? BatchKernel::kSimd : BatchKernel::kScalar;
    case BatchKernel::kSimd:
      return SimdCompiled() ? BatchKernel::kSimd : BatchKernel::kScalar;
    case BatchKernel::kScalar:
      return BatchKernel::kScalar;
  }
  return BatchKernel::kScalar;
}

const char* BatchKernelName(BatchKernel kernel) {
  switch (kernel) {
    case BatchKernel::kAuto:
      return "auto";
    case BatchKernel::kScalar:
      return "scalar";
    case BatchKernel::kSimd:
      return "simd";
  }
  return "auto";
}

common::Result<BatchKernel> ParseBatchKernel(std::string_view name) {
  if (name == "auto") return BatchKernel::kAuto;
  if (name == "scalar") return BatchKernel::kScalar;
  if (name == "simd") return BatchKernel::kSimd;
  return common::Status::InvalidArgument(
      "unknown distance kernel '" + std::string(name) +
      "' (expected auto, scalar, or simd)");
}

void DistanceBatch(const traj::SegmentStore& store,
                   const SegmentDistance& dist, size_t query,
                   common::Span<const size_t> candidates,
                   common::Span<double> out, BatchKernel kernel) {
  TRACLUS_DCHECK(query < store.size());
  TRACLUS_DCHECK_EQ(candidates.size(), out.size());
  const size_t* cand = candidates.data();
  BatchDispatch(
      ResolveBatchKernel(kernel), store, dist.config(), query,
      candidates.size(), [cand](size_t k) { return cand[k]; }, out.data());
}

void DistanceBatchRange(const traj::SegmentStore& store,
                        const SegmentDistance& dist, size_t query,
                        size_t first, size_t last, common::Span<double> out,
                        BatchKernel kernel) {
  TRACLUS_DCHECK(query < store.size());
  TRACLUS_DCHECK(first <= last && last <= store.size());
  TRACLUS_DCHECK_EQ(last - first, out.size());
  BatchDispatch(
      ResolveBatchKernel(kernel), store, dist.config(), query, last - first,
      [first](size_t k) { return first + k; }, out.data());
}

size_t EpsilonRefine(const traj::SegmentStore& store,
                     const SegmentDistance& dist, size_t query,
                     common::Span<const size_t> candidates, double eps,
                     std::vector<size_t>& out_indices,
                     const BatchOptions& options, RefineStats* stats) {
  TRACLUS_DCHECK(query < store.size());
  const size_t* cand = candidates.data();
  return EpsilonRefineImpl(
      store, dist, query, candidates.size(),
      [cand](size_t k) { return cand[k]; }, eps, out_indices, options, stats);
}

size_t EpsilonRefineCross(const traj::SegmentStore& query_store,
                          const SegmentDistance& dist, size_t query,
                          const traj::SegmentStore& cand_store,
                          common::Span<const size_t> candidates, double eps,
                          size_t out_base, std::vector<size_t>& out_indices,
                          const BatchOptions& options, RefineStats* stats) {
  TRACLUS_DCHECK(query < query_store.size());
  TRACLUS_DCHECK_EQ(query_store.dims(), cand_store.dims());
  const size_t* cand = candidates.data();
  return EpsilonRefineCrossImpl(
      query_store, dist, query, cand_store, candidates.size(),
      [cand](size_t k) { return cand[k]; }, eps, out_base, out_indices,
      options, stats);
}

size_t EpsilonRefineCrossRange(const traj::SegmentStore& query_store,
                               const SegmentDistance& dist, size_t query,
                               const traj::SegmentStore& cand_store,
                               size_t first, size_t last, double eps,
                               size_t out_base,
                               std::vector<size_t>& out_indices,
                               const BatchOptions& options,
                               RefineStats* stats) {
  TRACLUS_DCHECK(query < query_store.size());
  TRACLUS_DCHECK_EQ(query_store.dims(), cand_store.dims());
  TRACLUS_DCHECK(first <= last && last <= cand_store.size());
  return EpsilonRefineCrossImpl(
      query_store, dist, query, cand_store, last - first,
      [first](size_t k) { return first + k; }, eps, out_base, out_indices,
      options, stats);
}

void DistanceTile(const traj::SegmentStore& store, const SegmentDistance& dist,
                  common::Span<const size_t> queries,
                  common::Span<const size_t> candidates, double* out,
                  size_t ldo, BatchKernel kernel) {
  TRACLUS_DCHECK(ldo >= candidates.size());
  const size_t* q = queries.data();
  const size_t* cand = candidates.data();
  TileDispatch(
      ResolveBatchKernel(kernel), store, dist.config(), queries.size(),
      [q](size_t qi) { return q[qi]; }, candidates.size(),
      [cand](size_t k) { return cand[k]; }, out, ldo);
}

void DistanceTileRange(const traj::SegmentStore& store,
                       const SegmentDistance& dist, size_t query_first,
                       size_t query_last, size_t cand_first, size_t cand_last,
                       double* out, size_t ldo, BatchKernel kernel) {
  TRACLUS_DCHECK(query_first <= query_last && query_last <= store.size());
  TRACLUS_DCHECK(cand_first <= cand_last && cand_last <= store.size());
  TRACLUS_DCHECK(ldo >= cand_last - cand_first);
  const BatchKernel resolved = ResolveBatchKernel(kernel);
  const SegmentDistanceConfig& cfg = dist.config();
  // Candidate-block-major over the contiguous range, with the hoisted
  // row kernel as the inner loop.
  for (size_t jb = cand_first; jb < cand_last; jb += kTileCandidateBlock) {
    const size_t je = std::min(cand_last, jb + kTileCandidateBlock);
    for (size_t q = query_first; q < query_last; ++q) {
      RowRangeDispatch(resolved, store, cfg, q, jb, je,
                       out + (q - query_first) * ldo + (jb - cand_first));
    }
  }
}

size_t EpsilonRefineTile(const traj::SegmentStore& store,
                         const SegmentDistance& dist,
                         common::Span<const size_t> queries, size_t first,
                         size_t last, double eps,
                         std::vector<size_t>* out_lists,
                         const BatchOptions& options, RefineStats* stats) {
  TRACLUS_DCHECK(out_lists != nullptr);
  TRACLUS_DCHECK(first <= last && last <= store.size());
  const BatchKernel kernel = ResolveBatchKernel(options.kernel);
  const size_t block = options.block > 0 ? options.block : kDefaultRefineBlock;
  const SegmentDistanceConfig& cfg = dist.config();

  // One prune context per query, hoisted out of the block loop. Same
  // thread_local staging story as EpsilonRefineImpl: everything else lives in
  // caller-owned out_lists, so concurrent tiles on pool workers share
  // nothing.
  thread_local std::vector<PruneContext> prune;
  thread_local std::vector<size_t> survivors;
  thread_local std::vector<double> distances;
  prune.clear();
  for (const size_t q : queries) {
    TRACLUS_DCHECK(q < store.size());
    prune.push_back(MakePruneContext(store, dist, q, eps, options.prune));
  }

  size_t appended = 0;
  size_t pruned_total = 0;
  size_t refined_total = 0;
  // Candidate-block-major: each block's columns serve every query while hot.
  // Per query, blocks arrive in ascending order and emission within a block
  // preserves candidate order, so out_lists[qi] matches EpsilonRefineRange's
  // emission exactly.
  for (size_t base = first; base < last; base += block) {
    const size_t hi = std::min(last, base + block);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const size_t query = queries[qi];
      survivors.clear();
      for (size_t j = base; j < hi; ++j) {
        // The query itself always survives (Definition 4 self-inclusion).
        if (j != query && PrunedFar(prune[qi], store, j)) {
          ++pruned_total;
          continue;
        }
        survivors.push_back(j);
      }
      distances.resize(survivors.size());
      BatchDispatch(
          kernel, store, cfg, query, survivors.size(),
          [&](size_t m) { return survivors[m]; }, distances.data());
      refined_total += survivors.size();
      for (size_t m = 0; m < survivors.size(); ++m) {
        const size_t j = survivors[m];
        if (j == query || distances[m] <= eps) {
          out_lists[qi].push_back(j);
          ++appended;
        }
      }
    }
  }

  if (stats != nullptr) {
    stats->candidates += queries.size() * (last - first);
    stats->pruned += pruned_total;
    stats->refined += refined_total;
    stats->accepted += appended;
  }
  return appended;
}

void NearestWithinEps(const traj::SegmentStore& store,
                      const SegmentDistance& dist,
                      common::Span<const size_t> queries,
                      common::Span<const size_t> candidates, double eps,
                      common::Span<size_t> out_position,
                      common::Span<double> out_distance,
                      const BatchOptions& options) {
  TRACLUS_DCHECK_EQ(queries.size(), out_position.size());
  TRACLUS_DCHECK_EQ(queries.size(), out_distance.size());
  const BatchKernel kernel = ResolveBatchKernel(options.kernel);
  const size_t block = options.block > 0 ? options.block : kDefaultRefineBlock;
  const SegmentDistanceConfig& cfg = dist.config();

  thread_local std::vector<PruneContext> prune;
  thread_local std::vector<size_t> survivors;  // Positions into `candidates`.
  thread_local std::vector<double> distances;
  prune.clear();
  for (const size_t q : queries) {
    TRACLUS_DCHECK(q < store.size());
    prune.push_back(MakePruneContext(store, dist, q, eps, options.prune));
  }
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    out_position[qi] = kNoNearest;
    out_distance[qi] = std::numeric_limits<double>::infinity();
  }

  // Candidate-block-major like the other tiles. The prune is against ε only
  // (admissible for every true ≤-ε candidate), never against the running
  // minimum, so the set of refined candidates — and with bit-identical
  // distances, the strict-< argmin below — does not depend on block size,
  // kernel, or evaluation order. Strict < keeps the earliest candidate on
  // ties because positions are scanned in ascending order.
  for (size_t base = 0; base < candidates.size(); base += block) {
    const size_t hi = std::min(candidates.size(), base + block);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const size_t query = queries[qi];
      survivors.clear();
      for (size_t pos = base; pos < hi; ++pos) {
        const size_t j = candidates[pos];
        TRACLUS_DCHECK(j < store.size());
        if (j != query && PrunedFar(prune[qi], store, j)) continue;
        survivors.push_back(pos);
      }
      distances.resize(survivors.size());
      BatchDispatch(
          kernel, store, cfg, query, survivors.size(),
          [&](size_t m) { return candidates[survivors[m]]; },
          distances.data());
      for (size_t m = 0; m < survivors.size(); ++m) {
        const double d = distances[m];
        if (d <= eps && d < out_distance[qi]) {
          out_distance[qi] = d;
          out_position[qi] = survivors[m];
        }
      }
    }
  }
}

void NearestWithinEpsCross(const traj::SegmentStore& query_store,
                           const SegmentDistance& dist,
                           common::Span<const size_t> queries,
                           const traj::SegmentStore& cand_store,
                           common::Span<const size_t> candidates, double eps,
                           common::Span<size_t> out_position,
                           common::Span<double> out_distance,
                           const BatchOptions& options) {
  TRACLUS_DCHECK_EQ(queries.size(), out_position.size());
  TRACLUS_DCHECK_EQ(queries.size(), out_distance.size());
  const BatchKernel kernel = ResolveBatchKernel(options.kernel);
  const size_t block = options.block > 0 ? options.block : kDefaultRefineBlock;
  const SegmentDistanceConfig& cfg = dist.config();

  thread_local std::vector<PruneContext> prune;
  thread_local std::vector<size_t> survivors;  // Positions into `candidates`.
  thread_local std::vector<double> distances;
  prune.clear();
  for (const size_t q : queries) {
    TRACLUS_DCHECK(q < query_store.size());
    prune.push_back(MakePruneContext(query_store, dist, q, eps, options.prune));
  }
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    out_position[qi] = kNoNearest;
    out_distance[qi] = std::numeric_limits<double>::infinity();
  }

  // Candidate-block-major like the one-store tile. The prune context carries
  // only the query's midpoint/half-length and reads only the candidate
  // store's columns, so it is cross-store-correct as-is; the ε-only prune
  // plus bit-identical distances make the strict-< argmin independent of
  // block size, kernel, and evaluation order here too.
  for (size_t base = 0; base < candidates.size(); base += block) {
    const size_t hi = std::min(candidates.size(), base + block);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const size_t query = queries[qi];
      survivors.clear();
      for (size_t pos = base; pos < hi; ++pos) {
        const size_t j = candidates[pos];
        TRACLUS_DCHECK(j < cand_store.size());
        if (PrunedFar(prune[qi], cand_store, j)) continue;
        survivors.push_back(pos);
      }
      distances.resize(survivors.size());
      BatchDispatchCross(
          kernel, query_store, cand_store, cfg, query, survivors.size(),
          [&](size_t m) { return candidates[survivors[m]]; },
          distances.data());
      for (size_t m = 0; m < survivors.size(); ++m) {
        const double d = distances[m];
        if (d <= eps && d < out_distance[qi]) {
          out_distance[qi] = d;
          out_position[qi] = survivors[m];
        }
      }
    }
  }
}

size_t EpsilonRefineRange(const traj::SegmentStore& store,
                          const SegmentDistance& dist, size_t query,
                          size_t first, size_t last, double eps,
                          std::vector<size_t>& out_indices,
                          const BatchOptions& options, RefineStats* stats) {
  TRACLUS_DCHECK(query < store.size());
  TRACLUS_DCHECK(first <= last && last <= store.size());
  return EpsilonRefineImpl(
      store, dist, query, last - first,
      [first](size_t k) { return first + k; }, eps, out_indices, options,
      stats);
}

common::Matrix PairwiseDistanceMatrix(const traj::SegmentStore& store,
                                      const SegmentDistance& dist,
                                      common::ThreadPool& pool,
                                      BatchKernel kernel) {
  const size_t n = store.size();
  common::Matrix m(n, n, 0.0);
  const BatchKernel resolved = ResolveBatchKernel(kernel);
  const SegmentDistanceConfig& cfg = dist.config();
  // Upper-triangle tile fill. The chunk owning rows [lo, hi) walks candidate
  // blocks outermost so each block's SoA columns serve every row of the
  // chunk while hot; the ragged diagonal start (row i owns columns > i) only
  // trims the first block each row intersects. After a block is filled, its
  // mirrored column entries are written as a blocked transpose — short
  // contiguous runs instead of one full-column stride per row. The chunk
  // owning row i writes dist(i, j) and its mirror m(j, i) for every j > i,
  // so every element has exactly one writer and the matrix is identical for
  // every thread count. The diagonal stays 0 (dist(L, L) = 0).
  pool.ParallelForChunked(0, n, [&](size_t lo, size_t hi) {
    for (size_t jb = lo + 1; jb < n; jb += kTileCandidateBlock) {
      const size_t je = std::min(n, jb + kTileCandidateBlock);
      const size_t row_end = std::min(hi, je);
      for (size_t i = lo; i < row_end; ++i) {
        const size_t first = std::max(i + 1, jb);
        if (first >= je) continue;
        RowRangeDispatch(resolved, store, cfg, i, first, je, &m(i, first));
      }
      for (size_t j = jb; j < je; ++j) {
        const size_t i_end = std::min(hi, j);
        for (size_t i = lo; i < i_end; ++i) m(j, i) = m(i, j);
      }
    }
  });
  return m;
}

bool PruneProvablyFar(const traj::SegmentStore& store,
                      const SegmentDistance& dist, size_t a, size_t b,
                      double eps) {
  const PruneContext p = MakePruneContext(store, dist, a, eps, true);
  return a != b && PrunedFar(p, store, b);
}

}  // namespace traclus::distance
