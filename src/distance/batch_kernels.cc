#include "distance/batch_kernels.h"

#include <algorithm>
#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/logging.h"
#include "distance/store_kernel_detail.h"
#include "geom/point.h"

namespace traclus::distance {

namespace {

constexpr size_t kDefaultRefineBlock = 256;

// Relative margin of the prune comparison. The bound arithmetic (a squared
// midpoint distance, two additions, one multiply) accumulates at most a few
// ulps (~1e-15 relative) of rounding; pruning only when the bound exceeds ε
// by this much larger margin keeps the prune admissible for every input the
// arithmetic can represent. The admissibility test in
// tests/segment_distance_test.cc attacks this claim on randomized data.
constexpr double kPruneSlack = 1e-9;

// Query-side state of the midpoint/half-length lower-bound prune, hoisted
// out of the per-candidate loop.
struct PruneContext {
  bool usable = false;
  double reach = 0.0;  // ε / c: the Euclidean radius that could matter.
  double half_q = 0.0;
  double mid_q[geom::kMaxDims] = {0.0, 0.0, 0.0};
  int dims = 2;
};

PruneContext MakePruneContext(const traj::SegmentStore& store,
                              const SegmentDistance& dist, size_t query,
                              double eps, bool enabled) {
  PruneContext p;
  p.dims = store.dims();
  const double c = dist.LowerBoundFactor();
  // A zero factor (degenerate weights) or a non-finite/negative ε leaves no
  // provable prune; refine everything.
  if (!enabled || !(c > 0.0) || !std::isfinite(eps) || eps < 0.0) return p;
  p.usable = true;
  p.reach = eps / c;
  p.half_q = store.half_length(query);
  for (int d = 0; d < p.dims; ++d) {
    p.mid_q[d] = store.midpoint_coords(d)[query];
  }
  return p;
}

// True when candidate j is provably farther than ε from the query:
//   dist ≥ c·mindist ≥ c·(‖mid_q − mid_j‖ − h_q − h_j) > ε
// evaluated in squared form (no per-candidate sqrt) with the kPruneSlack
// margin absorbing the bound's own rounding.
inline bool PrunedFar(const PruneContext& p, const traj::SegmentStore& store,
                      size_t j) {
  if (!p.usable) return false;
  double dmid_sq = 0.0;
  for (int d = 0; d < p.dims; ++d) {
    const double diff = store.midpoint_coords(d)[j] - p.mid_q[d];
    dmid_sq += diff * diff;
  }
  const double threshold = p.reach + p.half_q + store.half_length(j);
  // threshold may round to +inf for extreme ε/c; the comparison then never
  // prunes, which is the safe direction.
  return dmid_sq > threshold * threshold * (1.0 + kPruneSlack);
}

// Exact pair distance through the shared canonical kernel — bit-identical to
// SegmentDistance::operator()(store, q, j) by construction (same
// canonicalization, same component expressions, same weighted fold).
inline double PairDistanceScalar(const traj::SegmentStore& store,
                                 const SegmentDistanceConfig& cfg,
                                 size_t query, size_t j) {
  size_t li = query;
  size_t lj = j;
  internal::CanonicalizeInStore(store, li, lj);
  return internal::StoreWeightedCanonical(store, li, lj, cfg.directed,
                                          cfg.w_perpendicular, cfg.w_parallel,
                                          cfg.w_angle);
}

// Cross-store pair distance: query from qs, candidate from cs. Same
// canonical role assignment and kernel as PairDistanceScalar (chunk-local
// invariants are bit-identical to the monolithic columns, so the swap
// decision and the arithmetic match the one-store path exactly).
inline double PairDistanceScalarCross(const traj::SegmentStore& qs,
                                      size_t query,
                                      const traj::SegmentStore& cs, size_t j,
                                      const SegmentDistanceConfig& cfg) {
  if (internal::CrossCanonicalSwap(qs, query, cs, j)) {
    return internal::CrossWeightedCanonical(cs, j, qs, query, cfg.directed,
                                            cfg.w_perpendicular,
                                            cfg.w_parallel, cfg.w_angle);
  }
  return internal::CrossWeightedCanonical(qs, query, cs, j, cfg.directed,
                                          cfg.w_perpendicular, cfg.w_parallel,
                                          cfg.w_angle);
}

// Blocked scalar batch kernel. `index(k)` maps batch position to segment
// index (an array lookup for DistanceBatch, `first + k` for the Range
// variants). Branch-light: the only data-dependent branches are the ones the
// canonical kernel itself requires for bit-identity (degenerate-length and
// angle-regime selection).
template <typename IndexFn>
void BatchScalar(const traj::SegmentStore& store,
                 const SegmentDistanceConfig& cfg, size_t query, size_t n,
                 const IndexFn& index, double* out) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = PairDistanceScalar(store, cfg, query, index(k));
  }
}

#if defined(__AVX2__)

// std::min(a, b) ≡ (b < a) ? b : a, lane-wise with identical NaN/zero
// semantics (blendv takes `b` exactly where the ordered compare holds).
inline __m256d MinStd(__m256d a, __m256d b) {
  return _mm256_blendv_pd(a, b, _mm256_cmp_pd(b, a, _CMP_LT_OQ));
}

// Four-lane AVX2 batch kernel over the store's SoA coordinate columns.
//
// Each lane executes the exact operation sequence of the scalar canonical
// kernel (store_kernel_detail.h): the per-pair (longer, shorter) roles are
// resolved scalar-side during the lane gather, after which every lane runs
// the same straight-line arithmetic with branches replaced by blends whose
// selected value matches the scalar ternary in every case (including NaN
// propagation and signed zeros). Every vector op is an IEEE-754 double op
// per lane and the build forbids FMA contraction, so lane results are
// bit-identical to the scalar kernel — asserted exhaustively in
// tests/segment_distance_test.cc.
template <typename IndexFn>
void BatchSimd(const traj::SegmentStore& store,
               const SegmentDistanceConfig& cfg, size_t query, size_t n,
               const IndexFn& index, double* out) {
  const int dims = store.dims();
  const double* len_col = store.lengths().data();
  const double* sqlen_col = store.squared_lengths().data();
  const double* start_col[geom::kMaxDims];
  const double* end_col[geom::kMaxDims];
  const double* dir_col[geom::kMaxDims];
  for (int d = 0; d < dims; ++d) {
    start_col[d] = store.start_coords(d).data();
    end_col[d] = store.end_coords(d).data();
    dir_col[d] = store.direction_coords(d).data();
  }

  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg_one = _mm256_set1_pd(-1.0);
  const __m256d w_perp = _mm256_set1_pd(cfg.w_perpendicular);
  const __m256d w_par = _mm256_set1_pd(cfg.w_parallel);
  const __m256d w_ang = _mm256_set1_pd(cfg.w_angle);

  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // Lane gather: canonicalize each pair scalar-side (Lemma 2 ordering,
    // including the id / lexicographic tie-breaks, which do not vectorize),
    // then transpose the canonical (Li, Lj) scalars into lane-major form.
    alignas(32) double s_l[geom::kMaxDims][4];   // Li start.
    alignas(32) double e_l[geom::kMaxDims][4];   // Li end.
    alignas(32) double se_l[geom::kMaxDims][4];  // Li direction (e − s).
    alignas(32) double js_l[geom::kMaxDims][4];  // Lj start.
    alignas(32) double je_l[geom::kMaxDims][4];  // Lj end.
    alignas(32) double dj_l[geom::kMaxDims][4];  // Lj direction.
    alignas(32) double den_l[4];                 // ‖Li direction‖².
    alignas(32) double len_i_l[4];
    alignas(32) double len_j_l[4];
    for (int lane = 0; lane < 4; ++lane) {
      size_t li = query;
      size_t lj = index(k + static_cast<size_t>(lane));
      internal::CanonicalizeInStore(store, li, lj);
      den_l[lane] = sqlen_col[li];
      len_i_l[lane] = len_col[li];
      len_j_l[lane] = len_col[lj];
      for (int d = 0; d < dims; ++d) {
        s_l[d][lane] = start_col[d][li];
        e_l[d][lane] = end_col[d][li];
        se_l[d][lane] = dir_col[d][li];
        js_l[d][lane] = start_col[d][lj];
        je_l[d][lane] = end_col[d][lj];
        dj_l[d][lane] = dir_col[d][lj];
      }
    }

    __m256d s_v[geom::kMaxDims], e_v[geom::kMaxDims], se_v[geom::kMaxDims];
    __m256d js_v[geom::kMaxDims], je_v[geom::kMaxDims], dj_v[geom::kMaxDims];
    for (int d = 0; d < dims; ++d) {
      s_v[d] = _mm256_load_pd(s_l[d]);
      e_v[d] = _mm256_load_pd(e_l[d]);
      se_v[d] = _mm256_load_pd(se_l[d]);
      js_v[d] = _mm256_load_pd(js_l[d]);
      je_v[d] = _mm256_load_pd(je_l[d]);
      dj_v[d] = _mm256_load_pd(dj_l[d]);
    }
    const __m256d den = _mm256_load_pd(den_l);
    const __m256d len_i = _mm256_load_pd(len_i_l);
    const __m256d len_j = _mm256_load_pd(len_j_l);
    const __m256d den_zero = _mm256_cmp_pd(den, zero, _CMP_EQ_OQ);

    // ProjectOntoLine of both Lj endpoints: u = Dot(p − s, se) / ‖se‖²
    // (0 for a degenerate Li), accumulated dimension-by-dimension exactly
    // like geom::Dot.
    __m256d dot1 = zero;
    __m256d dot2 = zero;
    for (int d = 0; d < dims; ++d) {
      dot1 = _mm256_add_pd(
          dot1, _mm256_mul_pd(_mm256_sub_pd(js_v[d], s_v[d]), se_v[d]));
      dot2 = _mm256_add_pd(
          dot2, _mm256_mul_pd(_mm256_sub_pd(je_v[d], s_v[d]), se_v[d]));
    }
    const __m256d u1 =
        _mm256_blendv_pd(_mm256_div_pd(dot1, den), zero, den_zero);
    const __m256d u2 =
        _mm256_blendv_pd(_mm256_div_pd(dot2, den), zero, den_zero);

    // proj = s + se·u; accumulate the four projection-relative squared
    // norms (to Lj's endpoints for d⊥, to Li's endpoints for d∥) in
    // dimension order, exactly like Point::SquaredNorm.
    __m256d sq_perp1 = zero, sq_perp2 = zero;
    __m256d sq_ps_s = zero, sq_ps_e = zero, sq_pe_s = zero, sq_pe_e = zero;
    for (int d = 0; d < dims; ++d) {
      const __m256d ps = _mm256_add_pd(s_v[d], _mm256_mul_pd(se_v[d], u1));
      const __m256d pe = _mm256_add_pd(s_v[d], _mm256_mul_pd(se_v[d], u2));
      const __m256d d1 = _mm256_sub_pd(js_v[d], ps);
      sq_perp1 = _mm256_add_pd(sq_perp1, _mm256_mul_pd(d1, d1));
      const __m256d d2 = _mm256_sub_pd(je_v[d], pe);
      sq_perp2 = _mm256_add_pd(sq_perp2, _mm256_mul_pd(d2, d2));
      const __m256d d3 = _mm256_sub_pd(ps, s_v[d]);
      sq_ps_s = _mm256_add_pd(sq_ps_s, _mm256_mul_pd(d3, d3));
      const __m256d d4 = _mm256_sub_pd(ps, e_v[d]);
      sq_ps_e = _mm256_add_pd(sq_ps_e, _mm256_mul_pd(d4, d4));
      const __m256d d5 = _mm256_sub_pd(pe, s_v[d]);
      sq_pe_s = _mm256_add_pd(sq_pe_s, _mm256_mul_pd(d5, d5));
      const __m256d d6 = _mm256_sub_pd(pe, e_v[d]);
      sq_pe_e = _mm256_add_pd(sq_pe_e, _mm256_mul_pd(d6, d6));
    }

    // Perpendicular (Definition 1): Lehmer mean of order 2, zero when both
    // endpoints sit on the line.
    const __m256d l1 = _mm256_sqrt_pd(sq_perp1);
    const __m256d l2 = _mm256_sqrt_pd(sq_perp2);
    const __m256d perp_den = _mm256_add_pd(l1, l2);
    const __m256d perp_raw = _mm256_div_pd(
        _mm256_add_pd(_mm256_mul_pd(l1, l1), _mm256_mul_pd(l2, l2)),
        perp_den);
    const __m256d perp = _mm256_blendv_pd(
        perp_raw, zero, _mm256_cmp_pd(perp_den, zero, _CMP_EQ_OQ));

    // Parallel (Definition 2): MIN over projections of the distance to the
    // nearer Li endpoint.
    const __m256d lpar1 =
        MinStd(_mm256_sqrt_pd(sq_ps_s), _mm256_sqrt_pd(sq_ps_e));
    const __m256d lpar2 =
        MinStd(_mm256_sqrt_pd(sq_pe_s), _mm256_sqrt_pd(sq_pe_e));
    const __m256d par = MinStd(lpar1, lpar2);

    // Angle (Definition 3). cos θ = Dot(dir_i, dir_j) / (‖i‖·‖j‖), clamped
    // to [−1, 1] with std::clamp's exact selection order, forced to 1 for a
    // degenerate Li; a degenerate Lj zeroes the whole component.
    __m256d dot_ij = zero;
    for (int d = 0; d < dims; ++d) {
      dot_ij = _mm256_add_pd(dot_ij, _mm256_mul_pd(se_v[d], dj_v[d]));
    }
    const __m256d len_i_zero = _mm256_cmp_pd(len_i, zero, _CMP_EQ_OQ);
    const __m256d len_j_zero = _mm256_cmp_pd(len_j, zero, _CMP_EQ_OQ);
    const __m256d cos_raw =
        _mm256_div_pd(dot_ij, _mm256_mul_pd(len_i, len_j));
    // std::clamp(v, −1, 1): (v < lo) ? lo : (hi < v) ? hi : v.
    __m256d cos_t = _mm256_blendv_pd(
        cos_raw, neg_one, _mm256_cmp_pd(cos_raw, neg_one, _CMP_LT_OQ));
    cos_t =
        _mm256_blendv_pd(cos_t, one, _mm256_cmp_pd(one, cos_t, _CMP_LT_OQ));
    cos_t = _mm256_blendv_pd(cos_t, one, len_i_zero);
    // sin θ = sqrt(std::max(0, 1 − cos²)); std::max(0, x) ≡ (0 < x) ? x : 0.
    const __m256d one_minus_sq =
        _mm256_sub_pd(one, _mm256_mul_pd(cos_t, cos_t));
    const __m256d sin_arg = _mm256_blendv_pd(
        zero, one_minus_sq, _mm256_cmp_pd(zero, one_minus_sq, _CMP_LT_OQ));
    __m256d ang = _mm256_mul_pd(len_j, _mm256_sqrt_pd(sin_arg));
    if (cfg.directed) {
      // θ ∈ [90°, 180°] contributes ‖Lj‖ outright.
      ang = _mm256_blendv_pd(ang, len_j,
                             _mm256_cmp_pd(cos_t, zero, _CMP_LE_OQ));
    }
    ang = _mm256_blendv_pd(ang, zero, len_j_zero);

    // Weighted fold, grouped (w⊥·d⊥ + w∥·d∥) + wθ·dθ like the scalar path.
    const __m256d total = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(w_perp, perp), _mm256_mul_pd(w_par, par)),
        _mm256_mul_pd(w_ang, ang));
    _mm256_storeu_pd(out + k, total);
  }

  // Tail lanes (< 4 remaining) run the scalar kernel — same bits.
  for (; k < n; ++k) {
    out[k] = PairDistanceScalar(store, cfg, query, index(k));
  }
}

#endif  // __AVX2__

// Dispatches an already-resolved kernel choice.
template <typename IndexFn>
void BatchDispatch(BatchKernel kernel, const traj::SegmentStore& store,
                   const SegmentDistanceConfig& cfg, size_t query, size_t n,
                   const IndexFn& index, double* out) {
#if defined(__AVX2__)
  if (kernel == BatchKernel::kSimd) {
    BatchSimd(store, cfg, query, n, index, out);
    return;
  }
#else
  (void)kernel;
#endif
  BatchScalar(store, cfg, query, n, index, out);
}

// Shared ε-refine pipeline: blocked prune → batch distance → threshold.
template <typename IndexFn>
size_t EpsilonRefineImpl(const traj::SegmentStore& store,
                         const SegmentDistance& dist, size_t query, size_t n,
                         const IndexFn& index, double eps,
                         std::vector<size_t>& out_indices,
                         const BatchOptions& options, RefineStats* stats) {
  const BatchKernel kernel = ResolveBatchKernel(options.kernel);
  const size_t block =
      options.block > 0 ? options.block : kDefaultRefineBlock;
  const PruneContext prune =
      MakePruneContext(store, dist, query, eps, options.prune);
  const SegmentDistanceConfig& cfg = dist.config();

  // Per-thread staging keeps the hot path allocation-free across calls;
  // residency is bounded by the block size. thread_local is the whole
  // concurrency story here: the kernels read only the immutable
  // SegmentStore columns and write only these buffers plus the
  // caller-owned out_indices, so concurrent refines on pool workers need
  // no mutex (and hence no capability annotations) — nothing is shared.
  thread_local std::vector<size_t> survivors;
  thread_local std::vector<double> distances;

  size_t appended = 0;
  size_t pruned = 0;
  size_t refined = 0;
  for (size_t base = 0; base < n; base += block) {
    const size_t hi = std::min(n, base + block);
    survivors.clear();
    for (size_t k = base; k < hi; ++k) {
      const size_t j = index(k);
      // The query itself always survives (Definition 4 self-inclusion).
      if (j != query && PrunedFar(prune, store, j)) {
        ++pruned;
        continue;
      }
      survivors.push_back(j);
    }
    distances.resize(survivors.size());
    BatchDispatch(
        kernel, store, cfg, query, survivors.size(),
        [&](size_t m) { return survivors[m]; }, distances.data());
    refined += survivors.size();
    for (size_t m = 0; m < survivors.size(); ++m) {
      const size_t j = survivors[m];
      if (j == query || distances[m] <= eps) {
        out_indices.push_back(j);
        ++appended;
      }
    }
  }

  if (stats != nullptr) {
    stats->candidates += n;
    stats->pruned += pruned;
    stats->refined += refined;
    stats->accepted += appended;
  }
  return appended;
}

}  // namespace

BatchKernel ResolveBatchKernel(BatchKernel kernel) {
  switch (kernel) {
    case BatchKernel::kAuto:
      return SimdCompiled() ? BatchKernel::kSimd : BatchKernel::kScalar;
    case BatchKernel::kSimd:
      return SimdCompiled() ? BatchKernel::kSimd : BatchKernel::kScalar;
    case BatchKernel::kScalar:
      return BatchKernel::kScalar;
  }
  return BatchKernel::kScalar;
}

const char* BatchKernelName(BatchKernel kernel) {
  switch (kernel) {
    case BatchKernel::kAuto:
      return "auto";
    case BatchKernel::kScalar:
      return "scalar";
    case BatchKernel::kSimd:
      return "simd";
  }
  return "auto";
}

bool ParseBatchKernel(const std::string& name, BatchKernel* out) {
  TRACLUS_DCHECK(out != nullptr);
  if (name == "auto") {
    *out = BatchKernel::kAuto;
  } else if (name == "scalar") {
    *out = BatchKernel::kScalar;
  } else if (name == "simd") {
    *out = BatchKernel::kSimd;
  } else {
    return false;
  }
  return true;
}

void DistanceBatch(const traj::SegmentStore& store,
                   const SegmentDistance& dist, size_t query,
                   common::Span<const size_t> candidates,
                   common::Span<double> out, BatchKernel kernel) {
  TRACLUS_DCHECK(query < store.size());
  TRACLUS_DCHECK_EQ(candidates.size(), out.size());
  const size_t* cand = candidates.data();
  BatchDispatch(
      ResolveBatchKernel(kernel), store, dist.config(), query,
      candidates.size(), [cand](size_t k) { return cand[k]; }, out.data());
}

void DistanceBatchRange(const traj::SegmentStore& store,
                        const SegmentDistance& dist, size_t query,
                        size_t first, size_t last, common::Span<double> out,
                        BatchKernel kernel) {
  TRACLUS_DCHECK(query < store.size());
  TRACLUS_DCHECK(first <= last && last <= store.size());
  TRACLUS_DCHECK_EQ(last - first, out.size());
  BatchDispatch(
      ResolveBatchKernel(kernel), store, dist.config(), query, last - first,
      [first](size_t k) { return first + k; }, out.data());
}

size_t EpsilonRefine(const traj::SegmentStore& store,
                     const SegmentDistance& dist, size_t query,
                     common::Span<const size_t> candidates, double eps,
                     std::vector<size_t>& out_indices,
                     const BatchOptions& options, RefineStats* stats) {
  TRACLUS_DCHECK(query < store.size());
  const size_t* cand = candidates.data();
  return EpsilonRefineImpl(
      store, dist, query, candidates.size(),
      [cand](size_t k) { return cand[k]; }, eps, out_indices, options, stats);
}

size_t EpsilonRefineCross(const traj::SegmentStore& query_store,
                          const SegmentDistance& dist, size_t query,
                          const traj::SegmentStore& cand_store,
                          common::Span<const size_t> candidates, double eps,
                          size_t out_base, std::vector<size_t>& out_indices,
                          const BatchOptions& options, RefineStats* stats) {
  TRACLUS_DCHECK(query < query_store.size());
  TRACLUS_DCHECK_EQ(query_store.dims(), cand_store.dims());
  // Same prune → refine → threshold pipeline as EpsilonRefineImpl, with the
  // query-side context from the query's chunk and the candidate-side columns
  // from the candidate chunk. No self-inclusion case: cross-store candidates
  // never contain the query (see header contract). The kernel request
  // degrades to the scalar canonical kernel — bit-identical by the SIMD
  // lane-equivalence invariant, so callers see no behavioral difference.
  const PruneContext prune =
      MakePruneContext(query_store, dist, query, eps, options.prune);
  const SegmentDistanceConfig& cfg = dist.config();

  size_t appended = 0;
  size_t pruned = 0;
  size_t refined = 0;
  for (const size_t j : candidates) {
    TRACLUS_DCHECK(j < cand_store.size());
    if (PrunedFar(prune, cand_store, j)) {
      ++pruned;
      continue;
    }
    ++refined;
    const double d = PairDistanceScalarCross(query_store, query, cand_store,
                                             j, cfg);
    if (d <= eps) {
      out_indices.push_back(out_base + j);
      ++appended;
    }
  }

  if (stats != nullptr) {
    stats->candidates += candidates.size();
    stats->pruned += pruned;
    stats->refined += refined;
    stats->accepted += appended;
  }
  return appended;
}

size_t EpsilonRefineRange(const traj::SegmentStore& store,
                          const SegmentDistance& dist, size_t query,
                          size_t first, size_t last, double eps,
                          std::vector<size_t>& out_indices,
                          const BatchOptions& options, RefineStats* stats) {
  TRACLUS_DCHECK(query < store.size());
  TRACLUS_DCHECK(first <= last && last <= store.size());
  return EpsilonRefineImpl(
      store, dist, query, last - first,
      [first](size_t k) { return first + k; }, eps, out_indices, options,
      stats);
}

common::Matrix PairwiseDistanceMatrix(const traj::SegmentStore& store,
                                      const SegmentDistance& dist,
                                      common::ThreadPool& pool,
                                      BatchKernel kernel) {
  const size_t n = store.size();
  common::Matrix m(n, n, 0.0);
  const BatchKernel resolved = ResolveBatchKernel(kernel);
  // The chunk owning row i streams dist(i, ·) over [i+1, n) as one batch
  // into the (row-major contiguous) row storage, then writes the mirrored
  // column entries — one writer per element, so the fill is race-free and
  // identical for every thread count. The diagonal stays 0 (dist(L, L) = 0).
  pool.ParallelForChunked(0, n, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      if (i + 1 >= n) continue;
      double* row = &m(i, i + 1);
      DistanceBatchRange(store, dist, i, i + 1, n,
                         common::Span<double>(row, n - i - 1), resolved);
      for (size_t j = i + 1; j < n; ++j) m(j, i) = m(i, j);
    }
  });
  return m;
}

bool PruneProvablyFar(const traj::SegmentStore& store,
                      const SegmentDistance& dist, size_t a, size_t b,
                      double eps) {
  const PruneContext p = MakePruneContext(store, dist, a, eps, true);
  return a != b && PrunedFar(p, store, b);
}

}  // namespace traclus::distance
