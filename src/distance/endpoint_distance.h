#ifndef TRACLUS_DISTANCE_ENDPOINT_DISTANCE_H_
#define TRACLUS_DISTANCE_ENDPOINT_DISTANCE_H_

#include "geom/segment.h"

namespace traclus::distance {

/// Naive segment distances the paper argues against in Appendix A ("the sum of
/// the distances of endpoints may not be adequate"), kept as baselines for
/// `bench_appendix_a_distance`.
///
/// With the Appendix A coordinates — L1 = (0,0)→(200,0), L2 = (100,100)→
/// (300,100) (parallel) and L3 = (100,100)→(200,200) (45° rotated) — the
/// nearest-endpoint sum evaluates to exactly 200·√2 for BOTH pairs, so the
/// naive measure cannot rank L2 as more similar to L1 than L3, although it
/// plainly is; the TRACLUS distance can, thanks to the angle component.

/// Corresponding-endpoint sum: min over the two orientations of
/// ‖s_i − s_j‖ + ‖e_i − e_j‖. Orientation-insensitive so reversals don't
/// dominate the comparison.
double EndpointSumDistance(const geom::Segment& a, const geom::Segment& b);

/// Directed nearest-endpoint sum: Σ_{p ∈ {s_a, e_a}} min_{q ∈ {s_b, e_b}}
/// ‖p − q‖ — the reading of "sum of the distances of endpoints" consistent with
/// Appendix A's arithmetic (it is the line-segment-Hausdorff-style measure of
/// the paper's reference [4]).
double DirectedNearestEndpointSum(const geom::Segment& a,
                                  const geom::Segment& b);

/// Symmetrized nearest-endpoint sum: max of the two directed sums.
double NearestEndpointSumDistance(const geom::Segment& a,
                                  const geom::Segment& b);

}  // namespace traclus::distance

#endif  // TRACLUS_DISTANCE_ENDPOINT_DISTANCE_H_
