#ifndef TRACLUS_DISTANCE_STORE_KERNEL_DETAIL_H_
#define TRACLUS_DISTANCE_STORE_KERNEL_DETAIL_H_

// Internal: the store-backed canonical distance kernel shared by
// SegmentDistance's pair fast path (distance/segment_distance.cc) and the
// batched one-vs-many kernels (distance/batch_kernels.cc).
//
// Bit-identity across entry points is a hard invariant of this library (the
// golden pipeline files pin it): every path that evaluates the §2.3 distance
// over a SegmentStore must execute EXACTLY these floating-point expressions,
// in exactly this order. Keeping the kernel in one header — instead of one
// copy per call site — is what makes that invariant a structural property
// rather than a test-enforced coincidence. Do not re-order, re-associate, or
// "simplify" arithmetic here without regenerating the goldens.
//
// Not part of the public API; include only from distance/ implementation
// files and white-box tests.

#include <algorithm>
#include <cmath>
#include <utility>

#include "geom/segment.h"
#include "geom/vector_ops.h"
#include "traj/segment_store.h"

namespace traclus::distance {

struct DistanceComponents;

namespace internal {

// Lexicographic endpoint comparison; final deterministic tie-break of the
// Lemma 2 canonical ordering.
inline bool LexLess(const geom::Segment& a, const geom::Segment& b) {
  for (int i = 0; i < a.dims(); ++i) {
    if (a.start()[i] != b.start()[i]) return a.start()[i] < b.start()[i];
  }
  for (int i = 0; i < a.dims(); ++i) {
    if (a.end()[i] != b.end()[i]) return a.end()[i] < b.end()[i];
  }
  return false;
}

// Two-store generalization of the Lemma 2 canonical ordering: true when the
// pair (sb, b) must take the Li (longer) role. The decision reads only
// cached lengths, ids, and endpoint bits — all bit-identical between a
// monolithic store and a chunk-local store holding the same segment — so the
// swap decision is independent of how the database is chunked.
inline bool CrossCanonicalSwap(const traj::SegmentStore& sa, size_t a,
                               const traj::SegmentStore& sb, size_t b) {
  const double la = sa.length(a);
  const double lb = sb.length(b);
  bool swap = false;
  if (la < lb) {
    swap = true;
  } else if (la == lb) {
    const geom::SegmentId ia = sa.id(a);
    const geom::SegmentId ib = sb.id(b);
    if (ia >= 0 && ib >= 0 && ia != ib) {
      swap = ia > ib;
    } else {
      swap = LexLess(sb.segment(b), sa.segment(a));
    }
  }
  return swap;
}

// Store-backed Canonicalize: the same ordering decision as the Segment
// overload (SegmentDistance::Canonicalize), but the lengths and Lemma 2
// tie-break ids come from the cache.
inline void CanonicalizeInStore(const traj::SegmentStore& store,
                                size_t& longer, size_t& shorter) {
  if (CrossCanonicalSwap(store, longer, store, shorter)) {
    std::swap(longer, shorter);
  }
}

// Store-backed canonical kernel. The caller has already ordered (li, lj) as
// (longer, shorter); this computes the three components with exactly the
// floating-point operations of the Segment-based path, but
//   * the line direction e − s and its squared norm come from the store
//     (cached from the identical expressions) instead of per-call
//     recomputation,
//   * the two endpoint projections onto Li's line are computed once and
//     shared between d⊥ (Definition 1) and d∥ (Definition 2) — the Segment
//     path derives them independently in PerpendicularCanonical and
//     ParallelCanonical,
//   * the angle cosine divides the cached dot product by the product of the
//     cached lengths, which is bit-identical to CosAngleBetween's
//     Dot / (Norm() * Norm()) because length(i) ≡ Direction().Norm().
//
// `Sink` receives (perpendicular, parallel, angle); it lets the pair path
// build a DistanceComponents and the batch path fold the weighted sum
// without an intermediate struct, with identical arithmetic either way.
// Two-store form: Li comes from `si`, Lj from `sj`. Because chunk-local
// stores cache bit-identical invariants for the same segments, evaluating a
// pair across two chunk stores executes the same floating-point operations
// on the same bits as evaluating it inside the monolithic store — the
// chunked grouping path inherits bit-identity from this.
template <typename Sink>
inline void CrossComponentsCanonicalInto(const traj::SegmentStore& si,
                                         size_t li,
                                         const traj::SegmentStore& sj,
                                         size_t lj, bool directed,
                                         Sink&& sink) {
  const geom::Segment& i_seg = si.segment(li);
  const geom::Segment& j_seg = sj.segment(lj);
  const geom::Point& s = i_seg.start();
  const geom::Point& e = i_seg.end();
  const geom::Point& se = si.direction(li);
  const double denom = si.squared_length(li);

  // ProjectOntoLine(p, s, e), with se and ||se||² read from the cache.
  const auto project = [&](const geom::Point& p) {
    const double u = denom == 0.0 ? 0.0 : geom::Dot(p - s, se) / denom;
    return s + se * u;
  };
  const geom::Point proj_start = project(j_seg.start());
  const geom::Point proj_end = project(j_seg.end());

  // Perpendicular (Definition 1): Lehmer mean of order 2.
  const double l1 = geom::Distance(j_seg.start(), proj_start);
  const double l2 = geom::Distance(j_seg.end(), proj_end);
  const double perp_denom = l1 + l2;
  const double perpendicular =
      perp_denom == 0.0 ? 0.0 : (l1 * l1 + l2 * l2) / perp_denom;

  // Parallel (Definition 2): distance from each projection to the nearer
  // endpoint of Li, MIN over the two projections.
  const double lpar1 = std::min(geom::Distance(proj_start, s),
                                geom::Distance(proj_start, e));
  const double lpar2 =
      std::min(geom::Distance(proj_end, s), geom::Distance(proj_end, e));
  const double parallel = std::min(lpar1, lpar2);

  // Angle (Definition 3), directed or undirected.
  const double len_j = sj.length(lj);
  if (len_j == 0.0) {
    // Point-like Lj has no directional strength.
    sink(perpendicular, parallel, 0.0);
    return;
  }
  const double len_i = si.length(li);
  // CosAngleBetween with the norms read from the cache.
  const double cos_theta =
      len_i == 0.0
          ? 1.0
          : std::clamp(geom::Dot(si.direction(li), sj.direction(lj)) /
                           (len_i * len_j),
                       -1.0, 1.0);
  if (directed && cos_theta <= 0.0) {
    sink(perpendicular, parallel, len_j);  // θ in [90°, 180°].
    return;
  }
  const double sin_theta =
      std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  sink(perpendicular, parallel, len_j * sin_theta);
}

// One-store form: both segments resolved from the same store (the historical
// entry point; delegates to the two-store kernel with the store bound to
// both sides, which compiles to the identical instruction stream).
template <typename Sink>
inline void StoreComponentsCanonicalInto(const traj::SegmentStore& store,
                                         size_t li, size_t lj, bool directed,
                                         Sink&& sink) {
  CrossComponentsCanonicalInto(store, li, store, lj, directed,
                               std::forward<Sink>(sink));
}

// Full weighted distance across two stores for an already-canonicalized
// (longer, shorter) role assignment; same left-to-right weighted fold as
// StoreWeightedCanonical.
inline double CrossWeightedCanonical(const traj::SegmentStore& si, size_t li,
                                     const traj::SegmentStore& sj, size_t lj,
                                     bool directed, double w_perpendicular,
                                     double w_parallel, double w_angle) {
  double total = 0.0;
  CrossComponentsCanonicalInto(
      si, li, sj, lj, directed,
      [&](double perpendicular, double parallel, double angle) {
        total = w_perpendicular * perpendicular + w_parallel * parallel +
                w_angle * angle;
      });
  return total;
}

// Full weighted distance for an already-canonicalized (longer, shorter)
// pair; the weighted sum folds left-to-right exactly like
// SegmentDistance::operator().
inline double StoreWeightedCanonical(const traj::SegmentStore& store,
                                     size_t li, size_t lj, bool directed,
                                     double w_perpendicular, double w_parallel,
                                     double w_angle) {
  double total = 0.0;
  StoreComponentsCanonicalInto(
      store, li, lj, directed,
      [&](double perpendicular, double parallel, double angle) {
        total = w_perpendicular * perpendicular + w_parallel * parallel +
                w_angle * angle;
      });
  return total;
}

}  // namespace internal
}  // namespace traclus::distance

#endif  // TRACLUS_DISTANCE_STORE_KERNEL_DETAIL_H_
