#ifndef TRACLUS_DISTANCE_HASHING_H_
#define TRACLUS_DISTANCE_HASHING_H_

// Content hashing for cache keys.
//
// The persistent neighbor cache (cluster/neighbor_cache_file.h) keys its
// on-disk files by a 64-bit content hash of everything the ε-neighborhood
// answer depends on: the SegmentStore's defining columns (endpoint
// coordinates, ids, trajectory ids, weights), the distance weights, and ε.
// Derived invariants (lengths, directions, midpoints, bboxes) are excluded
// on purpose — they are bit-exact functions of the endpoints, so hashing
// them would only slow the key down without adding discrimination.
//
// The hash is 64-bit FNV-1a over the raw little-endian byte patterns of the
// inputs. Doubles are hashed by bit pattern, so any ULP-level change to a
// coordinate or weight changes the key — exactly the sensitivity the
// bit-identical goldens demand. The key is NOT cryptographic; it guards
// against accidental staleness, not adversarial collisions.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "distance/segment_distance.h"
#include "traj/segment_store.h"

namespace traclus::distance {

/// FNV-1a offset basis: the accumulator every hash starts from.
inline uint64_t HashInit() { return 14695981039346656037ull; }

/// Folds `n` raw bytes into the accumulator.
uint64_t HashBytes(uint64_t h, const void* data, size_t n);

/// Folds one 64-bit value (little-endian byte order on every target we
/// build for; the cache file records the key, so cross-endian reuse would
/// simply miss).
uint64_t HashU64(uint64_t h, uint64_t v);

/// Folds a double by bit pattern — +0.0 and -0.0 hash differently, as do
/// distinct NaN payloads; callers hash what they would compute with.
uint64_t HashDouble(uint64_t h, double v);

/// Folds a whole double column.
uint64_t HashDoubles(uint64_t h, const std::vector<double>& values);

/// Content hash of a SegmentStore: size, dims, per-dimension start/end
/// coordinate columns (d < dims only — higher columns are zero-filled
/// padding), segment ids, trajectory ids, and weights. Two stores hash
/// equal iff rebuilding either from its segments() yields bit-identical
/// columns, so the hash identifies the store up to the invariants the
/// kernels consume.
uint64_t HashSegmentStoreContent(const traj::SegmentStore& store);

/// Content hash of the distance configuration (three weights + directed).
uint64_t HashSegmentDistanceConfig(const SegmentDistanceConfig& config);

/// The neighbor-cache key: store content ⊕ distance config ⊕ ε, all folded
/// through one FNV-1a stream. Any perturbation of any input — one
/// coordinate, one id, one weight, the directed flag, ε — changes the key
/// (tests/neighbor_cache_test.cc perturbs each and asserts it).
uint64_t NeighborhoodCacheKey(const traj::SegmentStore& store,
                              const SegmentDistanceConfig& config, double eps);

}  // namespace traclus::distance

#endif  // TRACLUS_DISTANCE_HASHING_H_
