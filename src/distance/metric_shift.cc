#include "distance/metric_shift.h"

#include <algorithm>

#include "common/logging.h"

namespace traclus::distance {

namespace {

// Materializes the symmetric distance matrix once; the O(n³) triple scan then
// reads from memory instead of re-evaluating the (possibly expensive) functor.
std::vector<std::vector<double>> Materialize(
    size_t n, const std::function<double(size_t, size_t)>& dist) {
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double v = dist(i, j);
      TRACLUS_DCHECK_GE(v, 0.0);
      d[i][j] = d[j][i] = v;
    }
  }
  return d;
}

}  // namespace

double MaxTriangleViolation(size_t n,
                            const std::function<double(size_t, size_t)>& dist) {
  const auto d = Materialize(n, dist);
  double worst = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < n; ++k) {
      if (i == k) continue;
      for (size_t j = 0; j < n; ++j) {
        if (j == i || j == k) continue;
        worst = std::max(worst, d[i][k] - d[i][j] - d[j][k]);
      }
    }
  }
  return worst;
}

double MinimalMetricShift(size_t n,
                          const std::function<double(size_t, size_t)>& dist) {
  // d'(i,k) ≤ d'(i,j) + d'(j,k) ⇔ d(i,k) + c ≤ d(i,j) + d(j,k) + 2c
  // ⇔ c ≥ d(i,k) − d(i,j) − d(j,k); the tight c is the max violation.
  return MaxTriangleViolation(n, dist);
}

}  // namespace traclus::distance
