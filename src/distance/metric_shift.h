#ifndef TRACLUS_DISTANCE_METRIC_SHIFT_H_
#define TRACLUS_DISTANCE_METRIC_SHIFT_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace traclus::distance {

/// Constant-shift embedding of a non-metric distance (§4.2 / §7.1(3)).
///
/// The TRACLUS distance violates the triangle inequality, which blocks classic
/// metric indexes; the paper points to constant shift embedding (Roth et al.,
/// the paper's reference [18]) as the standard repair: adding a constant c to
/// every off-diagonal distance yields
///   d'(i, j) = d(i, j) + c   (i ≠ j),   d'(i, i) = 0,
/// and d' satisfies the triangle inequality whenever
///   c ≥ max_{i,j,k} ( d(i, k) − d(i, j) − d(j, k) ).
/// MinimalMetricShift computes that tight c over a distance matrix; the
/// ShiftedDistance wrapper then exposes a metric view of any pairwise function.
///
/// The shift preserves *ordering* of distances (and hence k-NN rankings) but
/// not ε-balls, so TRACLUS itself keeps using the unshifted distance with the
/// Euclidean lower-bound index; this utility exists for integrations that
/// require a true metric (VP-trees, metric embeddings).

/// Tight minimal shift for the (symmetric, zero-diagonal) distance matrix of
/// `n` objects given by `dist`. Returns 0 if the distance is already a metric
/// on the sample. O(n³).
double MinimalMetricShift(size_t n,
                          const std::function<double(size_t, size_t)>& dist);

/// A metric view of a non-metric pairwise distance: adds `shift` off-diagonal.
class ShiftedDistance {
 public:
  ShiftedDistance(std::function<double(size_t, size_t)> base, double shift)
      : base_(std::move(base)), shift_(shift) {}

  /// d'(i, j) = d(i, j) + shift for i ≠ j; 0 on the diagonal.
  double operator()(size_t i, size_t j) const {
    if (i == j) return 0.0;
    return base_(i, j) + shift_;
  }

  double shift() const { return shift_; }

 private:
  std::function<double(size_t, size_t)> base_;
  double shift_;
};

/// Verifies the triangle inequality of `dist` over all triples of `n` objects;
/// returns the largest violation max(0, d(i,k) − d(i,j) − d(j,k)). O(n³).
double MaxTriangleViolation(size_t n,
                            const std::function<double(size_t, size_t)>& dist);

}  // namespace traclus::distance

#endif  // TRACLUS_DISTANCE_METRIC_SHIFT_H_
