#ifndef TRACLUS_DISTANCE_SEGMENT_DISTANCE_H_
#define TRACLUS_DISTANCE_SEGMENT_DISTANCE_H_

#include <vector>

#include "common/matrix.h"
#include "common/thread_pool.h"
#include "geom/segment.h"
#include "traj/segment_store.h"

namespace traclus::distance {

/// The three components of the TRACLUS line-segment distance (§2.3, Fig. 5):
/// perpendicular (d⊥, Definition 1), parallel (d∥, Definition 2), and angle
/// (dθ, Definition 3). All are non-negative and expressed in world units.
struct DistanceComponents {
  double perpendicular = 0.0;
  double parallel = 0.0;
  double angle = 0.0;
};

/// Configuration of the weighted line-segment distance
/// dist(Li, Lj) = w⊥·d⊥ + w∥·d∥ + wθ·dθ (§2.3).
///
/// The paper's default is w⊥ = w∥ = wθ = 1, which "generally works well in many
/// applications" (Appendix B); non-uniform weights are supported for
/// domain-specific tuning. `directed` selects Definition 3 (directed
/// trajectories) or the simplified angle distance ‖Lj‖·sin(θ) with θ folded
/// into
/// [0°, 90°] for undirected trajectories (§2.3 remark, §7.1 Extensibility).
struct SegmentDistanceConfig {
  double w_perpendicular = 1.0;
  double w_parallel = 1.0;
  double w_angle = 1.0;
  bool directed = true;

  /// Factory for the paper's default configuration.
  static SegmentDistanceConfig Defaults() { return SegmentDistanceConfig{}; }
};

/// The TRACLUS line-segment distance function.
///
/// Stateless aside from its configuration; cheap to copy. The function is
/// symmetric (Lemma 2): internally, the longer segment plays the role of Li and
/// the shorter of Lj, ties broken by the segments' internal identifiers and, as
/// a final fallback, by lexicographic endpoint comparison so the result never
/// depends on argument order. It is NOT a metric: the triangle inequality can
/// fail (§4.2), which is why `LowerBoundFactor` exists — it converts plain
/// Euclidean segment distance into a provable lower bound usable for exact
/// index pruning.
class SegmentDistance {
 public:
  SegmentDistance() : config_(SegmentDistanceConfig::Defaults()) {}
  explicit SegmentDistance(const SegmentDistanceConfig& config)
      : config_(config) {
    TRACLUS_DCHECK(config.w_perpendicular >= 0 && config.w_parallel >= 0 &&
                   config.w_angle >= 0);
  }

  const SegmentDistanceConfig& config() const { return config_; }

  /// Full weighted distance dist(Li, Lj).
  double operator()(const geom::Segment& a, const geom::Segment& b) const;

  /// Invariant-aware fast path: dist(L_a, L_b) for two segments of one
  /// SegmentStore, bit-identical to the Segment overload. Canonicalization
  /// compares cached lengths (no per-pair sqrt), the Lemma 2 tie-break reads
  /// the stored ids, the angle component reuses the cached direction vectors
  /// and lengths (no per-pair normalization), and the endpoint projections
  /// are computed once and shared between d⊥ and d∥ instead of once per
  /// component. Every reused value is cached from the identical expression
  /// the slow path evaluates, so results match ULP-for-ULP
  /// (tests/segment_store_test.cc asserts bitwise equality on randomized
  /// segments).
  double operator()(const traj::SegmentStore& store, size_t a,
                    size_t b) const;

  /// All three components, computed with the canonical longer/shorter roles.
  DistanceComponents Components(const geom::Segment& a,
                                const geom::Segment& b) const;

  /// Fast-path components over a SegmentStore (see operator() above).
  DistanceComponents Components(const traj::SegmentStore& store, size_t a,
                                size_t b) const;

  /// Perpendicular distance d⊥ (Definition 1): Lehmer mean of order 2 of the
  /// two projection distances l⊥1, l⊥2.
  double Perpendicular(const geom::Segment& a, const geom::Segment& b) const;

  /// Parallel distance d∥ (Definition 2): MIN(l∥1, l∥2). The MIN makes the
  /// measure robust to broken line segments (§2.3 remark).
  double Parallel(const geom::Segment& a, const geom::Segment& b) const;

  /// Angle distance dθ (Definition 3), directed or undirected per the config.
  double Angle(const geom::Segment& a, const geom::Segment& b) const;

  /// Multiplier c such that dist(Li, Lj) ≥ c · EuclideanSegmentDistance(Li, Lj)
  /// for every pair of segments.
  ///
  /// Proof sketch (see DESIGN.md §4.1): let k ∈ {1, 2} attain d∥ = l∥k and let
  /// q be the corresponding endpoint of Lj. The Euclidean distance from q to
  /// the segment Li is at most l⊥k + l∥k (project to the line, then walk along
  /// it to the nearer endpoint). Since the Lehmer mean of order 2 satisfies
  /// d⊥ ≥ max(l⊥1, l⊥2)/2, we get
  ///   mindist(Li, Lj) ≤ l⊥k + l∥k ≤ 2·d⊥ + d∥,
  /// hence dist ≥ w⊥·d⊥ + w∥·d∥ ≥ min(w⊥/2, w∥) · mindist.
  /// Returns 0 when either weight is 0 (no usable bound; indexes must fall back
  /// to a scan).
  double LowerBoundFactor() const {
    return std::min(config_.w_perpendicular / 2.0, config_.w_parallel);
  }

 private:
  /// Orders the pair into (longer, shorter) with the Lemma 2 tie-breaks.
  static void Canonicalize(const geom::Segment*& longer,
                           const geom::Segment*& shorter);

  SegmentDistanceConfig config_;
};

/// Full symmetric n×n matrix of dist(Li, Lj), evaluated in parallel across
/// `pool`.
///
/// The pair set is partitioned by leading index into contiguous chunks; the
/// chunk owning i writes both (i, j) and its mirror (j, i) for every j > i, so
/// every element has exactly one writer and the result is identical for every
/// thread count. The diagonal is 0 (dist(L, L) = 0).
///
/// O(n²) memory — intended for the baseline algorithms and experiment scripts
/// that need random access to all pairs, not for the clustering hot path
/// (which goes through NeighborhoodProvider).
common::Matrix PairwiseDistanceMatrix(
    const std::vector<geom::Segment>& segments, const SegmentDistance& dist,
    common::ThreadPool& pool);

/// Store-backed overload: same matrix, each row streamed as one contiguous
/// blocked batch through the one-vs-many kernels of distance/batch_kernels.h
/// (bit-identical entries; kAuto kernel). A kernel-selecting overload lives
/// in batch_kernels.h.
common::Matrix PairwiseDistanceMatrix(const traj::SegmentStore& store,
                                      const SegmentDistance& dist,
                                      common::ThreadPool& pool);

}  // namespace traclus::distance

#endif  // TRACLUS_DISTANCE_SEGMENT_DISTANCE_H_
