#include "distance/hashing.h"

#include <cstring>

namespace traclus::distance {
namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

}  // namespace

uint64_t HashBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint64_t>(p[i]);
    h *= kFnvPrime;
  }
  return h;
}

uint64_t HashU64(uint64_t h, uint64_t v) { return HashBytes(h, &v, sizeof(v)); }

uint64_t HashDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return HashU64(h, bits);
}

uint64_t HashDoubles(uint64_t h, const std::vector<double>& values) {
  h = HashU64(h, values.size());
  // One memcpy-free pass: the vector's doubles are already a contiguous
  // little-endian byte stream, which is exactly what HashBytes folds.
  return HashBytes(h, values.data(), values.size() * sizeof(double));
}

uint64_t HashSegmentStoreContent(const traj::SegmentStore& store) {
  uint64_t h = HashInit();
  h = HashU64(h, store.size());
  h = HashU64(h, static_cast<uint64_t>(store.dims()));
  for (int d = 0; d < store.dims(); ++d) {
    h = HashDoubles(h, store.start_coords(d));
    h = HashDoubles(h, store.end_coords(d));
  }
  for (size_t i = 0; i < store.size(); ++i) {
    h = HashU64(h, static_cast<uint64_t>(store.id(i)));
  }
  const auto& tids = store.trajectory_ids();
  h = HashBytes(h, tids.data(), tids.size() * sizeof(geom::TrajectoryId));
  h = HashDoubles(h, store.weights());
  return h;
}

uint64_t HashSegmentDistanceConfig(const SegmentDistanceConfig& config) {
  uint64_t h = HashInit();
  h = HashDouble(h, config.w_perpendicular);
  h = HashDouble(h, config.w_parallel);
  h = HashDouble(h, config.w_angle);
  h = HashU64(h, config.directed ? 1 : 0);
  return h;
}

uint64_t NeighborhoodCacheKey(const traj::SegmentStore& store,
                              const SegmentDistanceConfig& config,
                              double eps) {
  uint64_t h = HashInit();
  h = HashU64(h, HashSegmentStoreContent(store));
  h = HashU64(h, HashSegmentDistanceConfig(config));
  h = HashDouble(h, eps);
  return h;
}

}  // namespace traclus::distance
