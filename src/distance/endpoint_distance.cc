#include "distance/endpoint_distance.h"

#include <algorithm>

namespace traclus::distance {

double EndpointSumDistance(const geom::Segment& a, const geom::Segment& b) {
  TRACLUS_DCHECK_EQ(a.dims(), b.dims());
  const double forward = geom::Distance(a.start(), b.start()) +
                         geom::Distance(a.end(), b.end());
  const double reversed = geom::Distance(a.start(), b.end()) +
                          geom::Distance(a.end(), b.start());
  return std::min(forward, reversed);
}

double DirectedNearestEndpointSum(const geom::Segment& a,
                                  const geom::Segment& b) {
  TRACLUS_DCHECK_EQ(a.dims(), b.dims());
  const double from_start = std::min(geom::Distance(a.start(), b.start()),
                                     geom::Distance(a.start(), b.end()));
  const double from_end = std::min(geom::Distance(a.end(), b.start()),
                                   geom::Distance(a.end(), b.end()));
  return from_start + from_end;
}

double NearestEndpointSumDistance(const geom::Segment& a,
                                  const geom::Segment& b) {
  return std::max(DirectedNearestEndpointSum(a, b),
                  DirectedNearestEndpointSum(b, a));
}

}  // namespace traclus::distance
