#include "eval/qmeasure.h"

#include "common/logging.h"
#include "common/rng.h"

namespace traclus::eval {

namespace {

// (1 / 2|S|) Σ_{x,y ∈ S} dist(x, y)² over a set S of segment indices.
//
// Each unordered pair appears twice in the double sum, so the term equals
// Σ_{unordered pairs} d² / |S|. When the pair count exceeds the configured
// bound, a seeded uniform sample of pairs estimates the mean pair value, which
// is then scaled by the true pair count — unbiased, deterministic for a fixed
// seed.
double HalfMeanPairwiseSquared(const std::vector<geom::Segment>& segments,
                               const std::vector<size_t>& members,
                               const distance::SegmentDistance& dist,
                               const QMeasureOptions& options) {
  const size_t n = members.size();
  if (n < 2) return 0.0;
  const double total_pairs =
      0.5 * static_cast<double>(n) * static_cast<double>(n - 1);

  const bool exact =
      options.max_pairs_per_set == 0 ||
      total_pairs <= static_cast<double>(options.max_pairs_per_set);
  if (exact) {
    double sum = 0.0;
    for (size_t a = 0; a < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        const double d = dist(segments[members[a]], segments[members[b]]);
        sum += d * d;
      }
    }
    return sum / static_cast<double>(n);
  }

  common::Rng rng(options.sample_seed);
  double sum = 0.0;
  const size_t samples = options.max_pairs_per_set;
  for (size_t s = 0; s < samples; ++s) {
    const size_t a =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    size_t b =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 2));
    if (b >= a) ++b;  // Uniform over off-diagonal pairs.
    const double d = dist(segments[members[a]], segments[members[b]]);
    sum += d * d;
  }
  const double mean_pair = sum / static_cast<double>(samples);
  return mean_pair * total_pairs / static_cast<double>(n);
}

}  // namespace

QMeasureResult ComputeQMeasure(const std::vector<geom::Segment>& segments,
                               const cluster::ClusteringResult& clustering,
                               const distance::SegmentDistance& dist,
                               const QMeasureOptions& options) {
  TRACLUS_CHECK_EQ(clustering.labels.size(), segments.size());
  QMeasureResult out;
  for (const auto& c : clustering.clusters) {
    out.total_sse +=
        HalfMeanPairwiseSquared(segments, c.member_indices, dist, options);
  }
  std::vector<size_t> noise;
  noise.reserve(clustering.num_noise);
  for (size_t i = 0; i < clustering.labels.size(); ++i) {
    if (clustering.labels[i] == cluster::kNoise) noise.push_back(i);
  }
  out.noise_penalty = HalfMeanPairwiseSquared(segments, noise, dist, options);
  out.qmeasure = out.total_sse + out.noise_penalty;
  return out;
}

}  // namespace traclus::eval
