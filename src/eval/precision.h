#ifndef TRACLUS_EVAL_PRECISION_H_
#define TRACLUS_EVAL_PRECISION_H_

#include <cstddef>
#include <vector>

namespace traclus::eval {

/// Precision of an approximate characteristic-point selection against the exact
/// optimum: |approx ∩ exact| / |approx| — "80% of the approximate solutions
/// appear also in the exact solutions" (§3.3). Both inputs are strictly
/// increasing index vectors. Returns 1 for an empty approximation.
double CharacteristicPointPrecision(const std::vector<size_t>& approximate,
                                    const std::vector<size_t>& exact);

/// Recall counterpart: |approx ∩ exact| / |exact|.
double CharacteristicPointRecall(const std::vector<size_t>& approximate,
                                 const std::vector<size_t>& exact);

/// Precision restricted to interior points. The first and last points are
/// characteristic by construction in both solutions, which inflates the plain
/// ratio on short trajectories; this variant drops them before comparing.
/// Returns 1 when the approximation has no interior points.
double InteriorCharacteristicPointPrecision(
    const std::vector<size_t>& approximate, const std::vector<size_t>& exact);

}  // namespace traclus::eval

#endif  // TRACLUS_EVAL_PRECISION_H_
