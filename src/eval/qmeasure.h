#ifndef TRACLUS_EVAL_QMEASURE_H_
#define TRACLUS_EVAL_QMEASURE_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "distance/segment_distance.h"

namespace traclus::eval {

/// Decomposed QMeasure (Formula (11)).
struct QMeasureResult {
  /// Σ_clusters (1 / 2|C_i|) Σ_{x,y ∈ C_i} dist(x, y)².
  double total_sse = 0.0;
  /// (1 / 2|N|) Σ_{w,z ∈ N} dist(w, z)² over the noise set N.
  double noise_penalty = 0.0;
  /// total_sse + noise_penalty; lower is better.
  double qmeasure = 0.0;
};

/// Evaluation knobs.
struct QMeasureOptions {
  /// Exact computation enumerates every unordered pair of a cluster (or of the
  /// noise set). Sets whose pair count exceeds this bound are instead measured
  /// with a seeded uniform pair-sample of exactly this many pairs, scaled by
  /// the true pair count — an unbiased estimator of the same sum. 0 forces the
  /// exact path regardless of size. The default keeps every set the paper's
  /// evaluation produces exact, while bounding worst-case cost on workloads
  /// with 10k+-member clusters.
  size_t max_pairs_per_set = 2'000'000;
  uint64_t sample_seed = 20070611;
};

/// Computes the paper's clustering quality measure (§5.1, Formula (11)): the
/// within-cluster Sum of Squared Error plus a penalty for incorrectly
/// classified noise. "The smaller QMeasure is, the better the clustering
/// quality is" (§5.2) — within a fixed MinLns; the paper notes it is a
/// ballpark indicator, not a universal objective.
///
/// O(Σ min(|C_i|², max_pairs) + min(|N|², max_pairs)) distance evaluations.
QMeasureResult ComputeQMeasure(const std::vector<geom::Segment>& segments,
                               const cluster::ClusteringResult& clustering,
                               const distance::SegmentDistance& dist,
                               const QMeasureOptions& options = {});

}  // namespace traclus::eval

#endif  // TRACLUS_EVAL_QMEASURE_H_
