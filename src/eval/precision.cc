#include "eval/precision.h"

#include <algorithm>

#include "common/logging.h"

namespace traclus::eval {

namespace {

size_t IntersectionSize(const std::vector<size_t>& a,
                        const std::vector<size_t>& b) {
  TRACLUS_DCHECK(std::is_sorted(a.begin(), a.end()));
  TRACLUS_DCHECK(std::is_sorted(b.begin(), b.end()));
  size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

std::vector<size_t> Interior(const std::vector<size_t>& cp) {
  if (cp.size() <= 2) return {};
  return std::vector<size_t>(cp.begin() + 1, cp.end() - 1);
}

}  // namespace

double CharacteristicPointPrecision(const std::vector<size_t>& approximate,
                                    const std::vector<size_t>& exact) {
  if (approximate.empty()) return 1.0;
  return static_cast<double>(IntersectionSize(approximate, exact)) /
         static_cast<double>(approximate.size());
}

double CharacteristicPointRecall(const std::vector<size_t>& approximate,
                                 const std::vector<size_t>& exact) {
  if (exact.empty()) return 1.0;
  return static_cast<double>(IntersectionSize(approximate, exact)) /
         static_cast<double>(exact.size());
}

double InteriorCharacteristicPointPrecision(
    const std::vector<size_t>& approximate, const std::vector<size_t>& exact) {
  const std::vector<size_t> ai = Interior(approximate);
  if (ai.empty()) return 1.0;
  return static_cast<double>(IntersectionSize(ai, Interior(exact))) /
         static_cast<double>(ai.size());
}

}  // namespace traclus::eval
