#include "eval/cluster_stats.h"

#include <algorithm>

namespace traclus::eval {

ClusterStatsSummary SummarizeClustering(
    const std::vector<geom::Segment>& segments,
    const cluster::ClusteringResult& clustering) {
  ClusterStatsSummary s;
  s.num_segments = segments.size();
  s.num_clusters = clustering.clusters.size();
  s.num_noise = clustering.num_noise;
  if (s.num_clusters == 0) return s;

  size_t total_members = 0;
  double total_cardinality = 0.0;
  s.min_cluster_size = clustering.clusters.front().size();
  for (const auto& c : clustering.clusters) {
    total_members += c.size();
    total_cardinality +=
        static_cast<double>(cluster::TrajectoryCardinality(segments, c));
    s.min_cluster_size = std::min(s.min_cluster_size, c.size());
    s.max_cluster_size = std::max(s.max_cluster_size, c.size());
  }
  s.num_clustered_segments = total_members;
  s.avg_segments_per_cluster =
      static_cast<double>(total_members) / static_cast<double>(s.num_clusters);
  s.avg_trajectory_cardinality =
      total_cardinality / static_cast<double>(s.num_clusters);
  return s;
}

}  // namespace traclus::eval
