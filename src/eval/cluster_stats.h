#ifndef TRACLUS_EVAL_CLUSTER_STATS_H_
#define TRACLUS_EVAL_CLUSTER_STATS_H_

#include <vector>

#include "cluster/cluster.h"

namespace traclus::eval {

/// Headline statistics of a clustering, matching the quantities §5.4 reports
/// ("when ε = 25, nine clusters are discovered, and each cluster contains 38
/// line segments on average").
struct ClusterStatsSummary {
  size_t num_clusters = 0;
  size_t num_segments = 0;           ///< Total segments in the database.
  size_t num_clustered_segments = 0; ///< Segments belonging to some cluster.
  size_t num_noise = 0;
  double avg_segments_per_cluster = 0.0;
  double avg_trajectory_cardinality = 0.0;  ///< Mean |PTR(C)| over clusters.
  size_t min_cluster_size = 0;
  size_t max_cluster_size = 0;
};

/// Summarizes a clustering result.
ClusterStatsSummary SummarizeClustering(
    const std::vector<geom::Segment>& segments,
    const cluster::ClusteringResult& clustering);

}  // namespace traclus::eval

#endif  // TRACLUS_EVAL_CLUSTER_STATS_H_
