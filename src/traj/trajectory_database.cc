#include "traj/trajectory_database.h"

namespace traclus::traj {

geom::TrajectoryId TrajectoryDatabase::Add(Trajectory tr) {
  if (tr.id() < 0) {
    tr.set_id(static_cast<geom::TrajectoryId>(trajectories_.size()));
  }
  const geom::TrajectoryId id = tr.id();
  trajectories_.push_back(std::move(tr));
  return id;
}

size_t TrajectoryDatabase::TotalPoints() const {
  size_t n = 0;
  for (const auto& tr : trajectories_) n += tr.size();
  return n;
}

DatabaseStats TrajectoryDatabase::Stats() const {
  DatabaseStats st;
  st.num_trajectories = trajectories_.size();
  if (trajectories_.empty()) return st;
  st.min_length = trajectories_.front().size();
  for (const auto& tr : trajectories_) {
    st.num_points += tr.size();
    st.min_length = std::min(st.min_length, tr.size());
    st.max_length = std::max(st.max_length, tr.size());
    for (const auto& p : tr.points()) st.bounds.Extend(p);
  }
  st.mean_length = static_cast<double>(st.num_points) /
                   static_cast<double>(st.num_trajectories);
  return st;
}

}  // namespace traclus::traj
