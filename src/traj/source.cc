#include "traj/source.h"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <string_view>
#include <utility>
#include <vector>

namespace traclus::traj {

namespace {

// Splits a CSV row on commas; no quoting support (the schema is numeric).
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() &&
         (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is not universally available; strtod is fine here.
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseId(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

common::Result<bool> CsvStreamSource::NextRow(Row* row) {
  // One iteration per input line; comments, blank lines, and the tolerated
  // header never leave this loop. The message strings below are the parse
  // error contract of the historical ParseCsv, preserved byte-for-byte —
  // tests/traj_io_test.cc pins them through the eager wrappers.
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_no_;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const auto fields = SplitFields(sv);
    if (fields.size() < 3) {
      return common::Status::InvalidArgument(
          "CSV line " + std::to_string(line_no_) +
          ": expected at least 3 fields");
    }
    int64_t id = 0;
    if (!ParseId(fields[0], &id)) {
      // Tolerate a header row once at the top of the file.
      if (line_no_ == 1) continue;
      return common::Status::InvalidArgument(
          "CSV line " + std::to_string(line_no_) + ": bad trajectory id '" +
          std::string(fields[0]) + "'");
    }

    double x = 0.0;
    double y = 0.0;
    if (!ParseDouble(fields[1], &x) || !ParseDouble(fields[2], &y)) {
      return common::Status::InvalidArgument(
          "CSV line " + std::to_string(line_no_) + ": bad coordinate");
    }

    double z = 0.0;
    double weight = 1.0;
    bool has_z = false;
    if (fields.size() == 4) {
      // Ambiguous 4th column: treat as weight (most common export shape).
      if (!ParseDouble(fields[3], &weight)) {
        return common::Status::InvalidArgument(
            "CSV line " + std::to_string(line_no_) + ": bad weight");
      }
    } else if (fields.size() >= 5) {
      if (!ParseDouble(fields[3], &z) || !ParseDouble(fields[4], &weight)) {
        return common::Status::InvalidArgument(
            "CSV line " + std::to_string(line_no_) + ": bad z or weight");
      }
      has_z = true;
    }

    const int row_dims = has_z ? 3 : 2;
    if (dims_ == 0) {
      dims_ = row_dims;
    } else if (row_dims != dims_) {
      return common::Status::InvalidArgument(
          "CSV line " + std::to_string(line_no_) + ": " +
          std::to_string(row_dims) + "-D row in a " + std::to_string(dims_) +
          "-D file (all rows must have the same dimensionality)");
    }

    // The contiguity check runs after the row's own fields validated — a row
    // that is both malformed and out of place reports the malformation, like
    // the historical parser.
    if ((!have_current_ || current_.id() != id) &&
        finished_ids_.count(id) != 0) {
      return common::Status::InvalidArgument(
          "CSV line " + std::to_string(line_no_) + ": trajectory id " +
          std::to_string(id) +
          " reappears after other trajectories (rows of one trajectory "
          "must be contiguous)");
    }

    row->id = id;
    row->point = has_z ? geom::Point(x, y, z) : geom::Point(x, y);
    row->weight = weight;
    return true;
  }
  return false;
}

common::Result<bool> CsvStreamSource::Next(Trajectory* out) {
  if (!failed_.ok()) return failed_;
  if (done_) return false;

  // Resume from the look-ahead row that ended the previous trajectory.
  if (have_pending_) {
    current_ = Trajectory(pending_.id, /*label=*/"", pending_.weight);
    current_.Add(pending_.point);
    have_current_ = true;
    have_pending_ = false;
  }

  Row row;
  while (true) {
    auto next = NextRow(&row);
    if (!next.ok()) {
      // A broken stream stays broken: park the status and never hand out the
      // partially-read trajectory.
      failed_ = next.status();
      have_current_ = false;
      return failed_;
    }
    if (!*next) {
      done_ = true;
      if (have_current_) {
        have_current_ = false;
        *out = std::move(current_);
        return true;
      }
      return false;
    }
    if (have_current_ && current_.id() == row.id) {
      // Later weight cells of a trajectory are ignored (first row decides).
      current_.Add(row.point);
      continue;
    }
    if (have_current_) {
      // `row` opens the next trajectory: park it and yield the finished one.
      finished_ids_.insert(current_.id());
      pending_ = row;
      have_pending_ = true;
      have_current_ = false;
      *out = std::move(current_);
      return true;
    }
    current_ = Trajectory(row.id, /*label=*/"", row.weight);
    current_.Add(row.point);
    have_current_ = true;
  }
}

common::Result<std::unique_ptr<CsvFileSource>> CsvFileSource::Open(
    const std::string& path) {
  auto stream = std::make_unique<std::ifstream>(path);
  if (!*stream) {
    return common::Status::IOError("cannot open '" + path + "' for reading");
  }
  return std::unique_ptr<CsvFileSource>(new CsvFileSource(std::move(stream)));
}

common::Result<TrajectoryDatabase> DrainToDatabase(TrajectorySource& source) {
  TrajectoryDatabase db;
  Trajectory tr;
  while (true) {
    TRACLUS_ASSIGN_OR_RETURN(const bool more, source.Next(&tr));
    if (!more) return db;
    db.Add(std::move(tr));
  }
}

}  // namespace traclus::traj
