#ifndef TRACLUS_TRAJ_TRAJECTORY_H_
#define TRACLUS_TRAJ_TRAJECTORY_H_

#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/segment.h"

namespace traclus::traj {

/// A trajectory: a sequence of d-dimensional points (§2.1), with an identifier,
/// an optional human-readable label (e.g. hurricane name), and a weight for the
/// weighted-trajectory extension (§4.2: "a stronger hurricane should have a
/// higher weight").
class Trajectory {
 public:
  Trajectory() : id_(-1), weight_(1.0) {}
  explicit Trajectory(geom::TrajectoryId id, std::string label = "",
                      double weight = 1.0)
      : id_(id), label_(std::move(label)), weight_(weight) {}

  geom::TrajectoryId id() const { return id_; }
  const std::string& label() const { return label_; }
  double weight() const { return weight_; }
  void set_id(geom::TrajectoryId id) { id_ = id; }
  void set_label(std::string label) { label_ = std::move(label); }
  void set_weight(double w) { weight_ = w; }

  /// Appends a point; all points of a trajectory must share dimensionality.
  void Add(const geom::Point& p) {
    TRACLUS_DCHECK(points_.empty() || points_.front().dims() == p.dims());
    points_.push_back(p);
  }

  const std::vector<geom::Point>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const geom::Point& operator[](size_t i) const {
    TRACLUS_DCHECK(i < points_.size());
    return points_[i];
  }

  int dims() const { return points_.empty() ? 0 : points_.front().dims(); }

  /// Total polyline length (sum of consecutive point distances).
  double Length() const;

  /// The sub-trajectory restricted to indices [from, to] inclusive.
  Trajectory SubTrajectory(size_t from, size_t to) const;

  /// Consecutive-point line segments of the raw trajectory (no partitioning).
  /// Zero-length segments (repeated points) are skipped.
  std::vector<geom::Segment> RawSegments() const;

 private:
  geom::TrajectoryId id_;
  std::string label_;
  double weight_;
  std::vector<geom::Point> points_;
};

}  // namespace traclus::traj

#endif  // TRACLUS_TRAJ_TRAJECTORY_H_
