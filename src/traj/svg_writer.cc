#include "traj/svg_writer.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace traclus::traj {

SvgWriter::SvgWriter(const geom::BBox& world, int width_px, int height_px)
    : world_(world), width_px_(width_px), height_px_(height_px) {
  TRACLUS_CHECK(!world.empty()) << "SvgWriter needs a non-empty world box";
  const double margin = 0.05;
  const double ww = std::max(world.Extent(0), 1e-9);
  const double wh = std::max(world.Extent(1), 1e-9);
  const double usable_w = width_px * (1.0 - 2 * margin);
  const double usable_h = height_px * (1.0 - 2 * margin);
  scale_ = std::min(usable_w / ww, usable_h / wh);
  offset_x_ = width_px * margin - world.lo(0) * scale_;
  // The y axis is flipped: world hi(1) maps to the top margin.
  offset_y_ = height_px * margin + world.hi(1) * scale_;
}

void SvgWriter::Map(const geom::Point& p, double* px, double* py) const {
  *px = offset_x_ + p.x() * scale_;
  *py = offset_y_ - p.y() * scale_;
}

void SvgWriter::AddDatabase(const TrajectoryDatabase& db,
                            const std::string& color, double stroke_width) {
  for (const auto& tr : db.trajectories()) {
    AddTrajectory(tr, color, stroke_width);
  }
}

void SvgWriter::AddTrajectory(const Trajectory& tr, const std::string& color,
                              double stroke_width) {
  if (tr.size() < 2) return;
  std::ostringstream os;
  os << "<polyline fill=\"none\" stroke=\"" << color << "\" stroke-width=\""
     << stroke_width << "\" points=\"";
  for (const auto& p : tr.points()) {
    double px = 0.0;
    double py = 0.0;
    Map(p, &px, &py);
    os << px << "," << py << " ";
  }
  os << "\"/>";
  elements_.push_back(os.str());
}

void SvgWriter::AddSegment(const geom::Segment& s, const std::string& color,
                           double stroke_width) {
  double x1 = 0.0, y1 = 0.0, x2 = 0.0, y2 = 0.0;
  Map(s.start(), &x1, &y1);
  Map(s.end(), &x2, &y2);
  std::ostringstream os;
  os << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
     << "\" y2=\"" << y2 << "\" stroke=\"" << color << "\" stroke-width=\""
     << stroke_width << "\"/>";
  elements_.push_back(os.str());
}

void SvgWriter::AddLabel(const geom::Point& at, const std::string& text,
                         const std::string& color) {
  double px = 0.0, py = 0.0;
  Map(at, &px, &py);
  std::ostringstream os;
  os << "<text x=\"" << px << "\" y=\"" << py << "\" fill=\"" << color
     << "\" font-size=\"12\">" << text << "</text>";
  elements_.push_back(os.str());
}

std::string SvgWriter::ToString() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px_
     << "\" height=\"" << height_px_ << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const auto& e : elements_) os << e << "\n";
  os << "</svg>\n";
  return os.str();
}

common::Status SvgWriter::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return common::Status::IOError("cannot open '" + path + "'");
  out << ToString();
  if (!out) return common::Status::IOError("write to '" + path + "' failed");
  return common::Status::OK();
}

}  // namespace traclus::traj
