#ifndef TRACLUS_TRAJ_SOURCE_H_
#define TRACLUS_TRAJ_SOURCE_H_

// TrajectorySource: the pull-based ingest API.
//
// The eager entry points (ReadCsv → TrajectoryDatabase → engine->Run(db))
// require the whole input resident before the first MDL partition runs. A
// TrajectorySource inverts that: the consumer pulls one trajectory at a time,
// so the streaming pipeline mode (core::TraclusEngine::Run(TrajectorySource&))
// can partition each trajectory on arrival and append its segments straight
// into the chunked segment store — the full TrajectoryDatabase is never
// materialized. The eager readers are thin wrappers that drain a source into
// a database (DrainToDatabase), so both paths share one parser and one error
// contract.
//
// Error contract: Next() returns a typed Status for malformed input — the
// CSV sources surface exactly the messages the historical ParseCsv produced,
// byte-for-byte, including the offending line number. A failed source stays
// failed: every later Next() repeats the same status, and no partial
// trajectory is ever handed out past an error.

#include <cstdint>
#include <istream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>

#include "common/result.h"
#include "common/status.h"
#include "geom/point.h"
#include "traj/trajectory.h"
#include "traj/trajectory_database.h"

namespace traclus::traj {

/// Pull-based producer of trajectories — the ingest-side interface of the
/// streaming pipeline. Implementations yield each trajectory exactly once, in
/// input order; they are single-pass and not required to be rewindable.
class TrajectorySource {
 public:
  virtual ~TrajectorySource() = default;

  /// Pulls the next trajectory into `*out`. Returns true when one was
  /// produced, false at end of stream, or a non-OK status on malformed input
  /// (in which case `*out` is unspecified and every subsequent call returns
  /// the same status — a broken stream never resumes).
  virtual common::Result<bool> Next(Trajectory* out) = 0;
};

/// Streaming CSV parser over an externally owned std::istream (a file, a
/// string stream, or std::cin — the CLI's `-` input).
///
/// Accepts the schema of ReadCsv (csv_io.h): `trajectory_id,x,y[,z][,weight]`,
/// one point per row, rows of one trajectory contiguous, '#' comments, one
/// tolerated header row at line 1. The trajectory weight is taken from its
/// first row. Each trajectory is yielded as soon as the first row of the next
/// one (or end of input) is seen, so only one trajectory is ever buffered.
///
/// Malformed rows surface as InvalidArgument naming the line, with exactly
/// the historical ParseCsv messages: short rows, unparsable ids/coordinates/
/// weights, mixed 2-D/3-D rows, and a trajectory id reappearing after other
/// trajectories (rows of one trajectory must be contiguous).
class CsvStreamSource : public TrajectorySource {
 public:
  /// `in` must outlive the source.
  explicit CsvStreamSource(std::istream& in) : in_(&in) {}

  common::Result<bool> Next(Trajectory* out) override;

  /// Number of input lines consumed so far (diagnostics).
  size_t lines_read() const { return line_no_; }

 private:
  // One parsed data row.
  struct Row {
    int64_t id = 0;
    geom::Point point;
    double weight = 1.0;
  };

  /// Reads lines until one parses as a data row. Returns true with the row in
  /// `*row`, false at end of input, or the typed parse error.
  common::Result<bool> NextRow(Row* row);

  std::istream* in_;
  size_t line_no_ = 0;
  int dims_ = 0;  // 0 = not yet determined (first data row decides).
  std::unordered_set<int64_t> finished_ids_;
  Trajectory current_;
  bool have_current_ = false;
  bool have_pending_ = false;
  Row pending_;  // First row of the next trajectory, parsed ahead.
  bool done_ = false;
  common::Status failed_ = common::Status::OK();  // Sticky parse failure.
};

/// CSV source over an in-memory string (owns the underlying stream).
class CsvStringSource : public CsvStreamSource {
 public:
  explicit CsvStringSource(std::string content)
      : CsvStreamSource(stream_), stream_(std::move(content)) {}

 private:
  std::istringstream stream_;
};

/// CSV source over a file path (owns the underlying stream). Construction is
/// fallible — use Open(); an unreadable path is the same IOError ReadCsv
/// reports.
class CsvFileSource : public TrajectorySource {
 public:
  /// Opens `path`, or returns IOError("cannot open '<path>' for reading").
  static common::Result<std::unique_ptr<CsvFileSource>> Open(
      const std::string& path);

  common::Result<bool> Next(Trajectory* out) override { return csv_->Next(out); }

 private:
  explicit CsvFileSource(std::unique_ptr<std::istream> stream)
      : stream_(std::move(stream)),
        csv_(std::make_unique<CsvStreamSource>(*stream_)) {}

  std::unique_ptr<std::istream> stream_;
  std::unique_ptr<CsvStreamSource> csv_;
};

/// Adapter over an existing in-memory database: yields a copy of each
/// trajectory in database order. Lets eager callers (tests, benches, datagen
/// corpora) feed the streaming pipeline mode without touching disk.
class DatabaseSource : public TrajectorySource {
 public:
  /// `db` must outlive the source.
  explicit DatabaseSource(const TrajectoryDatabase& db) : db_(&db) {}

  common::Result<bool> Next(Trajectory* out) override {
    if (next_ >= db_->size()) return false;
    *out = (*db_)[next_++];
    return true;
  }

 private:
  const TrajectoryDatabase* db_;
  size_t next_ = 0;
};

/// Drains a source into an in-memory database — the bridge from the streaming
/// ingest API back to the eager one. Negative trajectory ids are assigned
/// sequentially by TrajectoryDatabase::Add, exactly as the historical readers
/// did. On a source error nothing is returned: a partially-drained database
/// is never handed out.
common::Result<TrajectoryDatabase> DrainToDatabase(TrajectorySource& source);

}  // namespace traclus::traj

#endif  // TRACLUS_TRAJ_SOURCE_H_
