#ifndef TRACLUS_TRAJ_TRAJECTORY_DATABASE_H_
#define TRACLUS_TRAJ_TRAJECTORY_DATABASE_H_

#include <cstddef>
#include <vector>

#include "geom/bbox.h"
#include "traj/trajectory.h"

namespace traclus::traj {

/// Summary statistics of a trajectory database (used in reports and EXPERIMENTS
/// bookkeeping: the paper quotes "570 trajectories and 17736 points" etc.).
struct DatabaseStats {
  size_t num_trajectories = 0;
  size_t num_points = 0;
  size_t min_length = 0;       ///< Shortest trajectory, in points.
  size_t max_length = 0;       ///< Longest trajectory, in points.
  double mean_length = 0.0;    ///< Mean trajectory length, in points.
  geom::BBox bounds;           ///< Spatial extent of all points.
};

/// An in-memory trajectory database: the input set I = {TR_1, ..., TR_numtra}
/// of the TRACLUS problem statement (§2.1).
class TrajectoryDatabase {
 public:
  TrajectoryDatabase() = default;

  /// Adds a trajectory; if its id is negative, assigns the next sequential id.
  /// Returns the stored id.
  geom::TrajectoryId Add(Trajectory tr);

  const std::vector<Trajectory>& trajectories() const { return trajectories_; }
  size_t size() const { return trajectories_.size(); }
  bool empty() const { return trajectories_.empty(); }
  const Trajectory& operator[](size_t i) const {
    TRACLUS_DCHECK(i < trajectories_.size());
    return trajectories_[i];
  }

  /// Total number of points across all trajectories.
  size_t TotalPoints() const;

  /// Computes summary statistics over the current contents.
  DatabaseStats Stats() const;

 private:
  std::vector<Trajectory> trajectories_;
};

}  // namespace traclus::traj

#endif  // TRACLUS_TRAJ_TRAJECTORY_DATABASE_H_
