#ifndef TRACLUS_TRAJ_SEGMENT_STORE_H_
#define TRACLUS_TRAJ_SEGMENT_STORE_H_

// SegmentStore: the flat, invariant-caching segment database that the
// pipeline stages exchange.
//
// The grouping phase is dominated by line-segment distance computation
// (§5.4), and every pairwise distance call needs the same per-segment
// quantities — length, squared length, direction — that a plain
// std::vector<geom::Segment> forces it to recompute from endpoints on every
// call. The store computes each invariant exactly once, right after
// partitioning, and keeps it in a contiguous structure-of-arrays layout so
// the hot loops stream over flat double arrays instead of chasing accessor
// chains.
//
// Invariants are computed with the very same floating-point expressions the
// Segment accessors use (length = Direction().Norm(), midpoint =
// (start + end) * 0.5, ...), so a cached value is bit-identical to a fresh
// recomputation — consumers that switch from the accessor to the cache
// cannot perturb results by even one ULP. tests/segment_store_test.cc pins
// this down on randomized segments.
//
// The store also keeps the original segments as an array-of-structs view
// (`segments()`), because parts of the pipeline (the representative sweep,
// SVG output, CSV dumps) genuinely want whole Segment values; the store is a
// superset of the old currency, never a lossy replacement.

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "geom/bbox.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace traclus::traj {

/// Structure-of-arrays segment database with precomputed per-segment
/// invariants. Immutable after construction; cheap to move, deliberately
/// expensive to copy (it holds every invariant array).
///
/// Thread-compatible: all accessors are const and touch only data frozen at
/// construction, so any number of threads may read concurrently.
class SegmentStore {
 public:
  SegmentStore() = default;

  /// Builds the store and every invariant in one O(n) pass.
  explicit SegmentStore(std::vector<geom::Segment> segments);

  /// Named factory for freezing a raw segment vector into a store — the
  /// explicit spelling of the constructor above, preferred at call sites
  /// where "one O(n) invariant pass happens here" should be visible (e.g.
  /// ahead of TraclusEngine::Group, whose implicit freeze-a-store overload
  /// is deprecated).
  static SegmentStore FromSegments(std::vector<geom::Segment> segments) {
    return SegmentStore(std::move(segments));
  }

  size_t size() const { return segments_.size(); }
  bool empty() const { return segments_.empty(); }
  /// Spatial dimensionality (2 when empty, matching the library default).
  int dims() const { return dims_; }

  /// Array-of-structs view of the same database (always consistent with the
  /// invariant arrays).
  const std::vector<geom::Segment>& segments() const { return segments_; }
  const geom::Segment& segment(size_t i) const {
    TRACLUS_DCHECK(i < segments_.size());
    return segments_[i];
  }

  /// Container-style read access, so the store can stand in wherever a
  /// read-only segment sequence is expected.
  const geom::Segment& operator[](size_t i) const { return segment(i); }
  std::vector<geom::Segment>::const_iterator begin() const {
    return segments_.begin();
  }
  std::vector<geom::Segment>::const_iterator end() const {
    return segments_.end();
  }

  // --- Per-segment invariants -------------------------------------------
  // The distance fast path consumes length/squared_length/direction (and the
  // indexes consume bbox); inv_length, unit_direction, and midpoint are part
  // of the substrate contract for SoA batch kernels (see ROADMAP: SIMD batch
  // distance, sharded/streaming backends) and for consumers that do not need
  // bit-identity with the Segment accessors.
  // Each equals the corresponding fresh computation bit-for-bit:
  //   direction(i)       == segment(i).Direction()
  //   squared_length(i)  == segment(i).Direction().SquaredNorm()
  //   length(i)          == segment(i).Length()
  //   midpoint(i)        == segment(i).Midpoint()
  //   bbox(i)            == BBox extended by both endpoints of segment(i)

  double length(size_t i) const { return length_[i]; }
  double squared_length(size_t i) const { return squared_length_[i]; }
  /// length * 0.5 (exact halving) — the radius of the segment's midpoint
  /// enclosing ball, consumed by the batch kernels' triangle-inequality
  /// candidate prune (distance/batch_kernels.h).
  double half_length(size_t i) const { return half_length_[i]; }
  /// 1 / length, or 0 for a degenerate (point-like) segment. For fast-path
  /// code that may multiply instead of divide; NOT bit-equivalent to
  /// dividing by length, so exactness-critical paths must divide.
  double inv_length(size_t i) const { return inv_length_[i]; }
  const geom::Point& direction(size_t i) const { return direction_[i]; }
  /// direction * inv_length (the zero vector for degenerate segments).
  const geom::Point& unit_direction(size_t i) const {
    return unit_direction_[i];
  }
  const geom::Point& midpoint(size_t i) const { return midpoint_[i]; }
  const geom::BBox& bbox(size_t i) const { return bbox_[i]; }
  geom::SegmentId id(size_t i) const { return id_[i]; }
  geom::TrajectoryId trajectory_id(size_t i) const {
    return trajectory_id_[i];
  }
  double weight(size_t i) const { return weight_[i]; }

  // --- Whole-column access for kernels and diagnostics ------------------
  const std::vector<double>& lengths() const { return length_; }
  const std::vector<double>& squared_lengths() const {
    return squared_length_;
  }
  const std::vector<double>& half_lengths() const { return half_length_; }
  const std::vector<double>& weights() const { return weight_; }
  const std::vector<geom::TrajectoryId>& trajectory_ids() const {
    return trajectory_id_;
  }
  const std::vector<geom::BBox>& bboxes() const { return bbox_; }

  // --- Flat SoA coordinate columns --------------------------------------
  // One contiguous double array per (quantity, dimension): the substrate of
  // the SIMD batch distance kernels (distance/batch_kernels.h), which stream
  // plain double loads instead of chasing Point objects. Each entry is a
  // bit-exact copy of the corresponding Point component:
  //   start_coords(d)[i]     == segment(i).start()[d]
  //   end_coords(d)[i]       == segment(i).end()[d]
  //   direction_coords(d)[i] == direction(i)[d]
  //   midpoint_coords(d)[i]  == midpoint(i)[d]
  // Columns for d ≥ dims() exist and are zero-filled so kernels may bind all
  // kMaxDims pointers unconditionally; exactness-critical loops must still
  // iterate only d < dims(), mirroring the Point operations.
  const std::vector<double>& start_coords(int d) const {
    TRACLUS_DCHECK(d >= 0 && d < geom::kMaxDims);
    return start_c_[d];
  }
  const std::vector<double>& end_coords(int d) const {
    TRACLUS_DCHECK(d >= 0 && d < geom::kMaxDims);
    return end_c_[d];
  }
  const std::vector<double>& direction_coords(int d) const {
    TRACLUS_DCHECK(d >= 0 && d < geom::kMaxDims);
    return direction_c_[d];
  }
  const std::vector<double>& midpoint_coords(int d) const {
    TRACLUS_DCHECK(d >= 0 && d < geom::kMaxDims);
    return midpoint_c_[d];
  }

 private:
  std::vector<geom::Segment> segments_;
  std::vector<double> length_;
  std::vector<double> squared_length_;
  std::vector<double> half_length_;
  std::vector<double> inv_length_;
  std::vector<geom::Point> direction_;
  std::vector<geom::Point> unit_direction_;
  std::vector<geom::Point> midpoint_;
  std::vector<geom::BBox> bbox_;
  std::vector<geom::SegmentId> id_;
  std::vector<geom::TrajectoryId> trajectory_id_;
  std::vector<double> weight_;
  std::array<std::vector<double>, geom::kMaxDims> start_c_;
  std::array<std::vector<double>, geom::kMaxDims> end_c_;
  std::array<std::vector<double>, geom::kMaxDims> direction_c_;
  std::array<std::vector<double>, geom::kMaxDims> midpoint_c_;
  int dims_ = 2;
};

}  // namespace traclus::traj

#endif  // TRACLUS_TRAJ_SEGMENT_STORE_H_
