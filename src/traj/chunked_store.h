#ifndef TRACLUS_TRAJ_CHUNKED_STORE_H_
#define TRACLUS_TRAJ_CHUNKED_STORE_H_

// ChunkedSegmentStore: the out-of-core growth of traj::SegmentStore.
//
// The monolithic store freezes the whole segment database — every invariant
// column resident — before the grouping phase starts. The chunked store keeps
// that contract per chunk instead: segments are appended in arrival order
// into fixed-capacity chunks, and each sealed chunk can be materialized as a
// chunk-local SegmentStore whose flat coordinate/invariant columns are each a
// bit-exact slice of what the monolithic store would hold for the same index
// range (tests/chunked_store_test.cc pins this). A chunk is therefore a valid
// kernel slice: the batched distance kernels (distance/batch_kernels.h) run
// over it unchanged.
//
// Two storage regimes, selected by ChunkedStoreOptions::max_resident_chunks:
//
//   * Unbounded (0, the default): sealed chunks retain their raw segments in
//     memory; Merge() rebuilds the monolithic store for the existing
//     grouping stages. Streaming ingest still never materializes a
//     TrajectoryDatabase — only segments are held.
//   * Bounded (> 0): a sealed chunk's raw segment records are spilled to an
//     anonymous temp file and freed; Chunk(c) faults a chunk back in by
//     rebuilding its SegmentStore from the raw records (bit-identical, since
//     the invariants are recomputed by the same constructor from the same
//     endpoint doubles). An LRU cache bounds residency: at most
//     max_resident_chunks chunk stores are cache-owned at any instant —
//     eviction happens before a faulted chunk is inserted, so
//     peak_resident_chunks() ≤ max_resident_chunks by construction.
//
// The *catalog* — per-segment length, half-length, midpoint, MBR, ids and
// weight — is always resident regardless of regime. Those are exactly the
// columns the query side needs without touching payload chunks: the grid
// index builds its cells from the MBRs, the triangle-inequality prune reads
// midpoints and half-lengths, DBSCAN's density and cardinality read weights
// and trajectory ids. Payload chunks (endpoints, direction columns, the AoS
// segment view) are only faulted for the exact-distance refinement, which is
// what makes bounded mode genuinely out-of-core for the hot phase.
//
// Pin semantics: Chunk() returns a shared_ptr. The cache's residency
// accounting covers cache-owned entries only (buffer-pool style) — a caller
// still holding a pin keeps an evicted chunk alive until the pin drops, so
// concurrent readers can transiently exceed the cap by their own pins, never
// by cache growth.
//
// Thread-compatibility: Append/Finalize are single-writer (the ingest loop);
// after Finalize, catalog reads are lock-free and Chunk()/Merge() are safe
// for any number of concurrent readers (one internal mutex serializes cache
// and spill-file traffic).

#include <array>
#include <cstddef>
#include <cstdio>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "geom/bbox.h"
#include "geom/point.h"
#include "geom/segment.h"
#include "traj/segment_store.h"

namespace traclus::traj {

/// Shape of a ChunkedSegmentStore.
struct ChunkedStoreOptions {
  /// Segments per chunk. 0 = unbounded: the whole database is one chunk
  /// (the eager layout, expressed in the chunked API).
  size_t chunk_capacity = 0;
  /// Maximum chunk stores the reader cache may own at once. 0 = unbounded
  /// (no spill file; sealed chunks stay in memory). > 0 enables spill-backed
  /// cold chunks with LRU residency ≤ this cap.
  size_t max_resident_chunks = 0;
};

/// Append-oriented, chunk-sliced segment database with an always-resident
/// catalog and bounded-residency payload chunks. See the file comment.
class ChunkedSegmentStore {
 public:
  explicit ChunkedSegmentStore(const ChunkedStoreOptions& options = {});
  ~ChunkedSegmentStore();

  ChunkedSegmentStore(const ChunkedSegmentStore&) = delete;
  ChunkedSegmentStore& operator=(const ChunkedSegmentStore&) = delete;

  // --- Ingest (single writer, before Finalize) --------------------------

  /// Appends one segment. Seals (and in bounded mode spills) the open chunk
  /// when it reaches chunk_capacity. Mixed dimensionality is a typed error.
  common::Status Append(const geom::Segment& segment);

  /// Appends a batch in order.
  common::Status AppendAll(const std::vector<geom::Segment>& segments);

  /// Seals the open chunk and freezes the store; required before any
  /// Chunk()/Merge() call. Idempotent error: appending after Finalize is a
  /// FailedPrecondition.
  common::Status Finalize();

  bool finalized() const { return finalized_; }

  const ChunkedStoreOptions& options() const { return options_; }

  // --- Catalog (always resident; lock-free after Finalize) --------------

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Spatial dimensionality (2 when empty, matching SegmentStore).
  int dims() const { return dims_ == 0 ? 2 : dims_; }

  size_t num_chunks() const { return chunk_count_; }
  /// Chunk holding global segment index i.
  size_t chunk_of(size_t i) const {
    return options_.chunk_capacity == 0 ? 0 : i / options_.chunk_capacity;
  }
  /// Global index of chunk c's first segment.
  size_t chunk_begin(size_t c) const {
    return options_.chunk_capacity == 0 ? 0 : c * options_.chunk_capacity;
  }
  /// Number of segments in chunk c (only the last chunk may be short).
  size_t chunk_size(size_t c) const;

  /// Catalog invariants, bit-identical to the monolithic SegmentStore's
  /// columns for the same indices (computed by the same expressions).
  double length(size_t i) const { return length_[i]; }
  double half_length(size_t i) const { return half_length_[i]; }
  double weight(size_t i) const { return weight_[i]; }
  geom::SegmentId id(size_t i) const { return id_[i]; }
  geom::TrajectoryId trajectory_id(size_t i) const {
    return trajectory_id_[i];
  }
  const geom::BBox& bbox(size_t i) const { return bbox_[i]; }

  const std::vector<double>& lengths() const { return length_; }
  const std::vector<double>& half_lengths() const { return half_length_; }
  const std::vector<double>& weights() const { return weight_; }
  const std::vector<geom::TrajectoryId>& trajectory_ids() const {
    return trajectory_id_;
  }
  const std::vector<geom::BBox>& bboxes() const { return bbox_; }
  /// Flat midpoint coordinate columns (zero-filled for d ≥ dims()), the
  /// substrate of the catalog-side triangle-inequality prune.
  const std::vector<double>& midpoint_coords(int d) const {
    TRACLUS_DCHECK(d >= 0 && d < geom::kMaxDims);
    return midpoint_c_[d];
  }

  // --- Reader (after Finalize; thread-safe) -----------------------------

  /// Faults chunk c resident (LRU, evict-before-insert) and returns its
  /// chunk-local SegmentStore. Index i of the returned store corresponds to
  /// global index chunk_begin(c) + i; every column is a bit-exact slice of
  /// the monolithic store.
  common::Result<std::shared_ptr<const SegmentStore>> Chunk(size_t c) const
      TRACLUS_EXCLUDES(mu_);

  /// Chunk stores currently owned by the reader cache.
  size_t resident_chunks() const TRACLUS_EXCLUDES(mu_);
  /// High-water mark of cache-owned chunks — bounded mode promises this
  /// stays ≤ max_resident_chunks (tests assert it).
  size_t peak_resident_chunks() const TRACLUS_EXCLUDES(mu_);

  /// Rebuilds the monolithic SegmentStore from all chunks (in bounded mode,
  /// streaming the spill file). Bit-identical to freezing the same segments
  /// eagerly; the unbounded grouping path runs on this.
  common::Result<SegmentStore> Merge() const TRACLUS_EXCLUDES(mu_);

 private:
  struct ChunkMeta {
    size_t count = 0;
    /// Raw segments (unbounded mode, and the open chunk during ingest).
    std::vector<geom::Segment> raw;
    bool spilled = false;
    long spill_offset = 0;  ///< Byte offset of this chunk in the spill file.
  };

  /// Seals the open chunk; in bounded mode writes its raw records to the
  /// spill file and frees them (taking mu_ for the spill-file traffic —
  /// once per chunk, off the per-segment path).
  common::Status SealOpenChunk() TRACLUS_EXCLUDES(mu_);

  /// Loads chunk c's raw segments (from memory or the spill file). The
  /// spill-file handle is seek/read shared state, so every load runs under
  /// mu_ — enforced statically.
  common::Status LoadRaw(size_t c, std::vector<geom::Segment>* out) const
      TRACLUS_REQUIRES(mu_);

  ChunkedStoreOptions options_;
  bool finalized_ = false;
  size_t size_ = 0;
  size_t chunk_count_ = 0;
  int dims_ = 0;  // 0 = not yet determined.

  // Catalog columns.
  std::vector<double> length_;
  std::vector<double> half_length_;
  std::vector<double> weight_;
  std::vector<geom::SegmentId> id_;
  std::vector<geom::TrajectoryId> trajectory_id_;
  std::vector<geom::BBox> bbox_;
  std::array<std::vector<double>, geom::kMaxDims> midpoint_c_;

  // Payload chunks (chunks_.back() is the open chunk until sealed). Mutated
  // only by the single-writer ingest phase; structurally immutable after
  // Finalize (readers touch only per-chunk raw/spill metadata, under mu_ via
  // LoadRaw). Not lock-guarded so the per-segment Append path stays
  // synchronization-free.
  std::vector<ChunkMeta> chunks_;

  // Reader cache + spill file. mu_ serializes all cache and spill-file
  // traffic: the FILE* position is shared mutable state (fseek/fread and the
  // seal-time fseek/fwrite), and the LRU/cache/peak counters are mutated by
  // concurrent readers.
  mutable common::Mutex mu_;
  std::FILE* spill_ TRACLUS_GUARDED_BY(mu_) = nullptr;
  /// Next write offset in the spill file.
  long spill_tail_ TRACLUS_GUARDED_BY(mu_) = 0;
  /// LRU over chunk ids; front = most recently used.
  mutable std::list<size_t> lru_ TRACLUS_GUARDED_BY(mu_);
  struct CacheEntry {
    std::list<size_t>::iterator lru_it;
    std::shared_ptr<const SegmentStore> store;
  };
  mutable std::unordered_map<size_t, CacheEntry> cache_
      TRACLUS_GUARDED_BY(mu_);
  mutable size_t peak_resident_ TRACLUS_GUARDED_BY(mu_) = 0;
};

}  // namespace traclus::traj

#endif  // TRACLUS_TRAJ_CHUNKED_STORE_H_
