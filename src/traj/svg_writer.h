#ifndef TRACLUS_TRAJ_SVG_WRITER_H_
#define TRACLUS_TRAJ_SVG_WRITER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geom/bbox.h"
#include "traj/trajectory_database.h"

namespace traclus::traj {

/// SVG renderer standing in for the paper's "visual inspection tool" (§5.1).
///
/// Mirrors the figures' styling: input trajectories as thin green polylines,
/// representative trajectories as thick red ones (Figs. 18/21/22/23). World
/// coordinates are mapped into a fixed canvas with the y axis flipped so that
/// north is up.
class SvgWriter {
 public:
  /// Creates a writer whose viewport covers `world` with a small margin.
  SvgWriter(const geom::BBox& world, int width_px = 900, int height_px = 600);

  /// Adds every trajectory in `db` as a thin polyline.
  void AddDatabase(const TrajectoryDatabase& db,
                   const std::string& color = "#2e8b57",
                   double stroke_width = 0.6);

  /// Adds one trajectory (e.g. a representative trajectory) as a polyline.
  void AddTrajectory(const Trajectory& tr, const std::string& color = "#cc0000",
                     double stroke_width = 2.5);

  /// Adds a single segment, used to render cluster members.
  void AddSegment(const geom::Segment& s, const std::string& color,
                  double stroke_width = 1.0);

  /// Adds a text annotation at a world coordinate.
  void AddLabel(const geom::Point& at, const std::string& text,
                const std::string& color = "#333333");

  /// Writes the accumulated document to `path`.
  common::Status Save(const std::string& path) const;

  /// Returns the SVG document as a string (used by tests).
  std::string ToString() const;

 private:
  /// Maps world coordinates to pixel coordinates.
  void Map(const geom::Point& p, double* px, double* py) const;

  geom::BBox world_;
  int width_px_;
  int height_px_;
  double scale_;
  double offset_x_;
  double offset_y_;
  std::vector<std::string> elements_;
};

}  // namespace traclus::traj

#endif  // TRACLUS_TRAJ_SVG_WRITER_H_
