#include "traj/trajectory.h"

namespace traclus::traj {

double Trajectory::Length() const {
  double total = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    total += geom::Distance(points_[i - 1], points_[i]);
  }
  return total;
}

Trajectory Trajectory::SubTrajectory(size_t from, size_t to) const {
  TRACLUS_DCHECK(from <= to && to < points_.size());
  Trajectory sub(id_, label_, weight_);
  for (size_t i = from; i <= to; ++i) sub.Add(points_[i]);
  return sub;
}

std::vector<geom::Segment> Trajectory::RawSegments() const {
  std::vector<geom::Segment> out;
  if (points_.size() < 2) return out;
  out.reserve(points_.size() - 1);
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i - 1] == points_[i]) continue;  // Skip zero-length segments.
    out.emplace_back(points_[i - 1], points_[i], /*id=*/-1, id_, weight_);
  }
  return out;
}

}  // namespace traclus::traj
