#include "traj/chunked_store.h"

#include <cmath>
#include <cstring>
#include <string>
#include <utility>

namespace traclus::traj {

namespace {

// Fixed-width spill record: provenance + raw endpoint doubles. Invariants are
// NOT spilled — they are recomputed by the SegmentStore constructor from the
// same endpoint bits, which is what makes a faulted chunk bit-identical to
// the chunk that was evicted.
struct SpillRecord {
  int64_t id;
  int64_t trajectory_id;
  double weight;
  double start[geom::kMaxDims];
  double end[geom::kMaxDims];
};

SpillRecord ToRecord(const geom::Segment& s) {
  SpillRecord r;
  std::memset(&r, 0, sizeof(r));
  r.id = s.id();
  r.trajectory_id = s.trajectory_id();
  r.weight = s.weight();
  for (int d = 0; d < s.dims(); ++d) {
    r.start[d] = s.start()[d];
    r.end[d] = s.end()[d];
  }
  return r;
}

geom::Segment FromRecord(const SpillRecord& r, int dims) {
  const geom::Point start =
      dims == 3 ? geom::Point(r.start[0], r.start[1], r.start[2])
                : geom::Point(r.start[0], r.start[1]);
  const geom::Point end = dims == 3
                              ? geom::Point(r.end[0], r.end[1], r.end[2])
                              : geom::Point(r.end[0], r.end[1]);
  return geom::Segment(start, end, r.id, r.trajectory_id, r.weight);
}

}  // namespace

ChunkedSegmentStore::ChunkedSegmentStore(const ChunkedStoreOptions& options)
    : options_(options) {}

ChunkedSegmentStore::~ChunkedSegmentStore() {
  if (spill_ != nullptr) std::fclose(spill_);
}

common::Status ChunkedSegmentStore::Append(const geom::Segment& segment) {
  if (finalized_) {
    return common::Status::FailedPrecondition(
        "ChunkedSegmentStore: Append after Finalize");
  }
  if (dims_ == 0) {
    dims_ = segment.dims();
  } else if (segment.dims() != dims_) {
    return common::Status::InvalidArgument(
        "ChunkedSegmentStore: " + std::to_string(segment.dims()) +
        "-D segment appended to a " + std::to_string(dims_) + "-D store");
  }

  // Catalog invariants: the exact floating-point expressions of the
  // SegmentStore constructor, so each catalog column is bit-identical to the
  // monolithic store's column for the same index.
  const geom::Point direction = segment.Direction();
  const double squared_length = direction.SquaredNorm();
  const double length = std::sqrt(squared_length);
  length_.push_back(length);
  half_length_.push_back(0.5 * length);
  const geom::Point midpoint = segment.Midpoint();
  geom::BBox box;
  box.Extend(segment);
  bbox_.push_back(box);
  id_.push_back(segment.id());
  trajectory_id_.push_back(segment.trajectory_id());
  weight_.push_back(segment.weight());
  for (int d = 0; d < geom::kMaxDims; ++d) {
    midpoint_c_[d].push_back(d < dims_ ? midpoint[d] : 0.0);
  }

  if (chunks_.empty()) chunks_.emplace_back();
  chunks_.back().raw.push_back(segment);
  ++chunks_.back().count;
  ++size_;
  if (options_.chunk_capacity > 0 &&
      chunks_.back().count == options_.chunk_capacity) {
    TRACLUS_RETURN_NOT_OK(SealOpenChunk());
    chunks_.emplace_back();
  }
  return common::Status::OK();
}

common::Status ChunkedSegmentStore::AppendAll(
    const std::vector<geom::Segment>& segments) {
  for (const auto& s : segments) {
    TRACLUS_RETURN_NOT_OK(Append(s));
  }
  return common::Status::OK();
}

common::Status ChunkedSegmentStore::SealOpenChunk() {
  ChunkMeta& chunk = chunks_.back();
  if (options_.max_resident_chunks == 0) return common::Status::OK();
  // Bounded mode: raw records go to the spill file; the in-memory copy is
  // dropped. Cold chunks cost catalog bytes only. The lock covers the
  // spill-file traffic (once per sealed chunk, not per segment); ingest is
  // single-writer, but readers of an already-finalized store share the same
  // FILE* discipline.
  common::MutexLock lock(mu_);
  if (spill_ == nullptr) {
    spill_ = std::tmpfile();
    if (spill_ == nullptr) {
      return common::Status::IOError(
          "ChunkedSegmentStore: cannot create spill file");
    }
  }
  if (std::fseek(spill_, spill_tail_, SEEK_SET) != 0) {
    return common::Status::IOError("ChunkedSegmentStore: spill seek failed");
  }
  chunk.spill_offset = spill_tail_;
  for (const auto& s : chunk.raw) {
    const SpillRecord r = ToRecord(s);
    if (std::fwrite(&r, sizeof(r), 1, spill_) != 1) {
      return common::Status::IOError("ChunkedSegmentStore: spill write failed");
    }
  }
  spill_tail_ += static_cast<long>(chunk.raw.size() * sizeof(SpillRecord));
  chunk.raw.clear();
  chunk.raw.shrink_to_fit();
  chunk.spilled = true;
  return common::Status::OK();
}

common::Status ChunkedSegmentStore::Finalize() {
  if (finalized_) {
    return common::Status::FailedPrecondition(
        "ChunkedSegmentStore: Finalize called twice");
  }
  if (!chunks_.empty()) {
    if (chunks_.back().count == 0) {
      // Append sealed exactly at capacity and opened a fresh chunk that never
      // received a segment; drop it rather than publish an empty chunk.
      chunks_.pop_back();
    } else {
      TRACLUS_RETURN_NOT_OK(SealOpenChunk());
    }
  }
  chunk_count_ = chunks_.size();
  finalized_ = true;
  return common::Status::OK();
}

size_t ChunkedSegmentStore::chunk_size(size_t c) const {
  TRACLUS_DCHECK(c < chunks_.size());
  return chunks_[c].count;
}

common::Status ChunkedSegmentStore::LoadRaw(
    size_t c, std::vector<geom::Segment>* out) const {
  const ChunkMeta& chunk = chunks_[c];
  out->clear();
  out->reserve(chunk.count);
  if (!chunk.spilled) {
    *out = chunk.raw;
    return common::Status::OK();
  }
  if (std::fseek(spill_, chunk.spill_offset, SEEK_SET) != 0) {
    return common::Status::IOError("ChunkedSegmentStore: spill seek failed");
  }
  for (size_t i = 0; i < chunk.count; ++i) {
    SpillRecord r;
    if (std::fread(&r, sizeof(r), 1, spill_) != 1) {
      return common::Status::IOError("ChunkedSegmentStore: spill read failed");
    }
    out->push_back(FromRecord(r, dims_));
  }
  return common::Status::OK();
}

common::Result<std::shared_ptr<const SegmentStore>> ChunkedSegmentStore::Chunk(
    size_t c) const {
  if (!finalized_) {
    return common::Status::FailedPrecondition(
        "ChunkedSegmentStore: Chunk before Finalize");
  }
  if (c >= chunk_count_) {
    return common::Status::InvalidArgument(
        "ChunkedSegmentStore: chunk " + std::to_string(c) + " out of range (" +
        std::to_string(chunk_count_) + " chunks)");
  }
  common::MutexLock lock(mu_);
  auto it = cache_.find(c);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.store;
  }
  std::vector<geom::Segment> raw;
  TRACLUS_RETURN_NOT_OK(LoadRaw(c, &raw));
  auto store = std::make_shared<const SegmentStore>(std::move(raw));
  // Evict before insert: the cache never owns more than the cap, so the
  // residency high-water mark cannot exceed it.
  while (options_.max_resident_chunks > 0 &&
         cache_.size() >= options_.max_resident_chunks) {
    const size_t victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
  }
  lru_.push_front(c);
  cache_.emplace(c, CacheEntry{lru_.begin(), store});
  if (cache_.size() > peak_resident_) peak_resident_ = cache_.size();
  return store;
}

size_t ChunkedSegmentStore::resident_chunks() const {
  common::MutexLock lock(mu_);
  return cache_.size();
}

size_t ChunkedSegmentStore::peak_resident_chunks() const {
  common::MutexLock lock(mu_);
  return peak_resident_;
}

common::Result<SegmentStore> ChunkedSegmentStore::Merge() const {
  if (!finalized_) {
    return common::Status::FailedPrecondition(
        "ChunkedSegmentStore: Merge before Finalize");
  }
  common::MutexLock lock(mu_);
  std::vector<geom::Segment> all;
  all.reserve(size_);
  std::vector<geom::Segment> chunk_raw;
  for (size_t c = 0; c < chunk_count_; ++c) {
    TRACLUS_RETURN_NOT_OK(LoadRaw(c, &chunk_raw));
    all.insert(all.end(), chunk_raw.begin(), chunk_raw.end());
  }
  return SegmentStore(std::move(all));
}

}  // namespace traclus::traj
