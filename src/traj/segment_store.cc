#include "traj/segment_store.h"

#include <cmath>

namespace traclus::traj {

SegmentStore::SegmentStore(std::vector<geom::Segment> segments)
    : segments_(std::move(segments)) {
  const size_t n = segments_.size();
  length_.resize(n);
  squared_length_.resize(n);
  half_length_.resize(n);
  inv_length_.resize(n);
  direction_.resize(n);
  unit_direction_.resize(n);
  midpoint_.resize(n);
  bbox_.resize(n);
  id_.resize(n);
  trajectory_id_.resize(n);
  weight_.resize(n);
  dims_ = n == 0 ? 2 : segments_.front().dims();
  // Unused trailing dimensions stay zero-filled so kernels can bind all
  // kMaxDims column pointers unconditionally.
  for (int d = 0; d < geom::kMaxDims; ++d) {
    start_c_[d].assign(n, 0.0);
    end_c_[d].assign(n, 0.0);
    direction_c_[d].assign(n, 0.0);
    midpoint_c_[d].assign(n, 0.0);
  }

  for (size_t i = 0; i < n; ++i) {
    const geom::Segment& s = segments_[i];
    TRACLUS_DCHECK_EQ(s.dims(), dims_);
    // Bit-identical to the accessors: Direction() = end - start,
    // Length() = Direction().Norm() = sqrt(Direction().SquaredNorm()).
    direction_[i] = s.Direction();
    squared_length_[i] = direction_[i].SquaredNorm();
    length_[i] = std::sqrt(squared_length_[i]);
    // Halving is an exponent decrement: 0.5 · length is exact in binary FP.
    half_length_[i] = 0.5 * length_[i];
    inv_length_[i] = length_[i] > 0.0 ? 1.0 / length_[i] : 0.0;
    unit_direction_[i] = direction_[i] * inv_length_[i];
    midpoint_[i] = s.Midpoint();
    bbox_[i].Extend(s);
    id_[i] = s.id();
    trajectory_id_[i] = s.trajectory_id();
    weight_[i] = s.weight();
    // Flat SoA coordinate columns: bit-exact component copies.
    for (int d = 0; d < dims_; ++d) {
      start_c_[d][i] = s.start()[d];
      end_c_[d][i] = s.end()[d];
      direction_c_[d][i] = direction_[i][d];
      midpoint_c_[d][i] = midpoint_[i][d];
    }
  }
}

}  // namespace traclus::traj
