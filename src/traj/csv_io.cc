#include "traj/csv_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "traj/source.h"

namespace traclus::traj {

// The eager readers are thin wrappers over the streaming parser
// (traj/source.h): one parser, one error contract. Both return exactly the
// historical Result shapes — same messages, same line numbers — which
// tests/traj_io_test.cc pins.

common::Result<TrajectoryDatabase> ParseCsv(const std::string& content) {
  CsvStringSource source(content);
  return DrainToDatabase(source);
}

common::Result<TrajectoryDatabase> ReadCsv(const std::string& path) {
  TRACLUS_ASSIGN_OR_RETURN(const auto source, CsvFileSource::Open(path));
  return DrainToDatabase(*source);
}

namespace {

/// Accumulates CSV text in a large append buffer and hands it to the
/// ofstream in block-sized writes. Dumping a database row-by-row through
/// operator<< costs a formatted-stream round trip per field and (worst case)
/// a flush per row; the buffer turns that into one bulk write per ~256 KiB
/// of output. Formatting matches the historical stream output byte-for-byte:
/// "%.12g" is exactly what defaultfloat at precision(12) printed.
class BufferedCsvWriter {
 public:
  explicit BufferedCsvWriter(std::ostream& out) : out_(out) {
    buf_.reserve(kFlushThreshold + 256);
  }
  ~BufferedCsvWriter() { Flush(); }

  void Append(const char* s) { buf_.append(s); }
  void Append(char c) { buf_.push_back(c); }
  void Append(const std::string& s) { buf_.append(s); }

  void AppendDouble(double v) {
    char tmp[64];
    const int n = std::snprintf(tmp, sizeof(tmp), "%.12g", v);
    buf_.append(tmp, static_cast<size_t>(n));
  }

  void AppendId(int64_t v) { buf_.append(std::to_string(v)); }

  void EndRow() {
    buf_.push_back('\n');
    if (buf_.size() >= kFlushThreshold) Flush();
  }

  void Flush() {
    if (buf_.empty()) return;
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }

 private:
  static constexpr size_t kFlushThreshold = 256 * 1024;

  std::ostream& out_;
  std::string buf_;
};

}  // namespace

common::Status WriteCsv(const TrajectoryDatabase& db, const std::string& path) {
  const int dims = db.empty() ? 2 : db[0].dims();
  // Same contract as ParseCsv: mixed dimensionality is a typed error, never
  // silent corruption (a 2-D schema would drop z; a 3-D schema would read a
  // z that 2-D points do not have).
  for (size_t t = 0; t < db.size(); ++t) {
    if (db[t].dims() != dims) {
      return common::Status::InvalidArgument(
          "cannot write mixed-dimensionality database: trajectory " +
          std::to_string(db[t].id()) + " is " + std::to_string(db[t].dims()) +
          "-D in a " + std::to_string(dims) + "-D database");
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return common::Status::IOError("cannot open '" + path + "' for writing");
  }
  // 3-D rows must always carry the weight column: a 4-field row is read back
  // as 2-D + weight (the schema's documented meaning), so an unweighted 3-D
  // file written as `id,x,y,z` would silently round-trip into a 2-D database
  // with z misread as the trajectory weight.
  bool any_weight = dims == 3;
  for (const auto& tr : db.trajectories()) {
    if (tr.weight() != 1.0) any_weight = true;
  }
  {
    BufferedCsvWriter w(out);
    w.Append("# trajectory_id,x,y");
    if (dims == 3) w.Append(",z");
    if (any_weight) w.Append(",weight");
    w.Append('\n');
    for (const auto& tr : db.trajectories()) {
      for (const auto& p : tr.points()) {
        w.AppendId(tr.id());
        w.Append(',');
        w.AppendDouble(p.x());
        w.Append(',');
        w.AppendDouble(p.y());
        if (dims == 3) {
          w.Append(',');
          w.AppendDouble(p.z());
        }
        if (any_weight) {
          w.Append(',');
          w.AppendDouble(tr.weight());
        }
        w.EndRow();
      }
    }
  }
  if (!out) return common::Status::IOError("write to '" + path + "' failed");
  return common::Status::OK();
}

}  // namespace traclus::traj
