#include "traj/csv_io.h"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace traclus::traj {

namespace {

// Splits a CSV row on commas; no quoting support (the schema is numeric).
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() &&
         (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is not universally available; strtod is fine here.
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseId(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

common::Result<TrajectoryDatabase> ParseCsv(const std::string& content) {
  TrajectoryDatabase db;
  std::istringstream in(content);
  std::string line;
  Trajectory current;
  bool have_current = false;
  size_t line_no = 0;
  // Malformed structure must surface as a typed status with the offending
  // line, never as a silently-corrupted database (duplicate trajectory ids
  // poison the Definition 10 cardinality filter) or a downstream assert
  // (mixed dimensionality trips point-arithmetic DCHECKs mid-pipeline).
  int dims = 0;  // 0 = not yet determined (first data row decides).
  std::unordered_set<int64_t> finished_ids;

  auto flush = [&]() {
    if (have_current && !current.empty()) {
      finished_ids.insert(current.id());
      db.Add(std::move(current));
    }
    current = Trajectory();
    have_current = false;
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const auto fields = SplitFields(sv);
    if (fields.size() < 3) {
      return common::Status::InvalidArgument(
          "CSV line " + std::to_string(line_no) +
          ": expected at least 3 fields");
    }
    int64_t id = 0;
    if (!ParseId(fields[0], &id)) {
      // Tolerate a header row once at the top of the file.
      if (line_no == 1) continue;
      return common::Status::InvalidArgument(
          "CSV line " + std::to_string(line_no) + ": bad trajectory id '" +
          std::string(fields[0]) + "'");
    }

    double x = 0.0;
    double y = 0.0;
    if (!ParseDouble(fields[1], &x) || !ParseDouble(fields[2], &y)) {
      return common::Status::InvalidArgument(
          "CSV line " + std::to_string(line_no) + ": bad coordinate");
    }

    double z = 0.0;
    double weight = 1.0;
    bool has_z = false;
    if (fields.size() == 4) {
      // Ambiguous 4th column: treat as weight (most common export shape).
      if (!ParseDouble(fields[3], &weight)) {
        return common::Status::InvalidArgument(
            "CSV line " + std::to_string(line_no) + ": bad weight");
      }
    } else if (fields.size() >= 5) {
      if (!ParseDouble(fields[3], &z) || !ParseDouble(fields[4], &weight)) {
        return common::Status::InvalidArgument(
            "CSV line " + std::to_string(line_no) + ": bad z or weight");
      }
      has_z = true;
    }

    const int row_dims = has_z ? 3 : 2;
    if (dims == 0) {
      dims = row_dims;
    } else if (row_dims != dims) {
      return common::Status::InvalidArgument(
          "CSV line " + std::to_string(line_no) + ": " +
          std::to_string(row_dims) + "-D row in a " + std::to_string(dims) +
          "-D file (all rows must have the same dimensionality)");
    }

    if (!have_current || current.id() != id) {
      if (finished_ids.count(id) != 0) {
        return common::Status::InvalidArgument(
            "CSV line " + std::to_string(line_no) + ": trajectory id " +
            std::to_string(id) +
            " reappears after other trajectories (rows of one trajectory "
            "must be contiguous)");
      }
      flush();
      current = Trajectory(id, /*label=*/"", weight);
      have_current = true;
    }
    current.Add(has_z ? geom::Point(x, y, z) : geom::Point(x, y));
  }
  flush();
  return db;
}

common::Result<TrajectoryDatabase> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return common::Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

common::Status WriteCsv(const TrajectoryDatabase& db, const std::string& path) {
  const int dims = db.empty() ? 2 : db[0].dims();
  // Same contract as ParseCsv: mixed dimensionality is a typed error, never
  // silent corruption (a 2-D schema would drop z; a 3-D schema would read a
  // z that 2-D points do not have).
  for (size_t t = 0; t < db.size(); ++t) {
    if (db[t].dims() != dims) {
      return common::Status::InvalidArgument(
          "cannot write mixed-dimensionality database: trajectory " +
          std::to_string(db[t].id()) + " is " + std::to_string(db[t].dims()) +
          "-D in a " + std::to_string(dims) + "-D database");
    }
  }
  std::ofstream out(path);
  if (!out) {
    return common::Status::IOError("cannot open '" + path + "' for writing");
  }
  // 3-D rows must always carry the weight column: a 4-field row is read back
  // as 2-D + weight (the schema's documented meaning), so an unweighted 3-D
  // file written as `id,x,y,z` would silently round-trip into a 2-D database
  // with z misread as the trajectory weight.
  bool any_weight = dims == 3;
  for (const auto& tr : db.trajectories()) {
    if (tr.weight() != 1.0) any_weight = true;
  }
  out << "# trajectory_id,x,y";
  if (dims == 3) out << ",z";
  if (any_weight) out << ",weight";
  out << "\n";
  out.precision(12);
  for (const auto& tr : db.trajectories()) {
    for (const auto& p : tr.points()) {
      out << tr.id() << "," << p.x() << "," << p.y();
      if (dims == 3) out << "," << p.z();
      if (any_weight) out << "," << tr.weight();
      out << "\n";
    }
  }
  if (!out) return common::Status::IOError("write to '" + path + "' failed");
  return common::Status::OK();
}

}  // namespace traclus::traj
