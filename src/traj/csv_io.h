#ifndef TRACLUS_TRAJ_CSV_IO_H_
#define TRACLUS_TRAJ_CSV_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "traj/trajectory_database.h"

namespace traclus::traj {

/// Reads a trajectory database from a CSV file.
///
/// Thin eager wrapper over the streaming parser (traj/source.h): it opens a
/// CsvFileSource and drains it into memory. Callers that do not need the
/// whole database resident should use the source API directly — see the
/// README's ReadCsv → TrajectorySource migration table.
///
/// Expected schema, one point per row, header optional:
///   trajectory_id,x,y[,z][,weight]
/// Rows of the same trajectory_id must be contiguous and ordered by time (the
/// file format mirrors how both Best Track and Starkey telemetry exports are
/// typically flattened). Lines starting with '#' are comments. The trajectory
/// weight is taken from its first row; later weight cells are ignored.
///
/// Malformed input returns a typed InvalidArgument status naming the
/// offending line: short rows, unparsable ids/coordinates, a trajectory id
/// reappearing after other trajectories (non-contiguous rows would silently
/// corrupt the Definition 10 cardinality filter), and mixed 2-D/3-D rows
/// (which would otherwise assert deep inside the pipeline).
common::Result<TrajectoryDatabase> ReadCsv(const std::string& path);

/// Parses the same schema from an in-memory string (used by tests). Eager
/// wrapper over traj::CsvStringSource.
common::Result<TrajectoryDatabase> ParseCsv(const std::string& content);

/// Writes a database in the schema accepted by ReadCsv. Weight is emitted only
/// when some trajectory has a non-unit weight. Output is staged through a
/// chunked append buffer (one bulk write per ~256 KiB), so dumping large
/// databases is not syscall-bound; bytes are identical to the historical
/// row-by-row stream output.
common::Status WriteCsv(const TrajectoryDatabase& db, const std::string& path);

}  // namespace traclus::traj

#endif  // TRACLUS_TRAJ_CSV_IO_H_
