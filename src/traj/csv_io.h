#ifndef TRACLUS_TRAJ_CSV_IO_H_
#define TRACLUS_TRAJ_CSV_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "traj/trajectory_database.h"

namespace traclus::traj {

/// Reads a trajectory database from a CSV file.
///
/// Expected schema, one point per row, header optional:
///   trajectory_id,x,y[,z][,weight]
/// Rows of the same trajectory_id must be contiguous and ordered by time (the
/// file format mirrors how both Best Track and Starkey telemetry exports are
/// typically flattened). Lines starting with '#' are comments. The trajectory
/// weight is taken from its first row; later weight cells are ignored.
///
/// Malformed input returns a typed InvalidArgument status naming the
/// offending line: short rows, unparsable ids/coordinates, a trajectory id
/// reappearing after other trajectories (non-contiguous rows would silently
/// corrupt the Definition 10 cardinality filter), and mixed 2-D/3-D rows
/// (which would otherwise assert deep inside the pipeline).
common::Result<TrajectoryDatabase> ReadCsv(const std::string& path);

/// Parses the same schema from an in-memory string (used by tests).
common::Result<TrajectoryDatabase> ParseCsv(const std::string& content);

/// Writes a database in the schema accepted by ReadCsv. Weight is emitted only
/// when some trajectory has a non-unit weight.
common::Status WriteCsv(const TrajectoryDatabase& db, const std::string& path);

}  // namespace traclus::traj

#endif  // TRACLUS_TRAJ_CSV_IO_H_
