// Implementation of the deprecated façade — every phase delegates to a
// TraclusEngine assembled by FromConfig, translating the engine's Result<T>
// contract back into the legacy one (CHECK on impossible errors, empty result
// for an empty database).

// This file implements the deprecated class itself.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "core/traclus.h"

#include "common/logging.h"

namespace traclus::core {

Traclus::Traclus(const TraclusConfig& config) : config_(config) {
  // Legacy contract: misconfiguration is a programming error, not a status.
  TRACLUS_CHECK_GT(config.eps, 0.0);
  TRACLUS_CHECK_GE(config.min_lns, 1.0);
  auto engine = TraclusEngine::FromConfig(config);
  TRACLUS_CHECK(engine.ok()) << engine.status().ToString();
  engine_ =
      std::make_shared<const TraclusEngine>(std::move(engine).ValueOrDie());
}

RunContext Traclus::Context() const {
  RunContext ctx;
  ctx.num_threads = config_.num_threads;
  return ctx;
}

std::vector<geom::Segment> Traclus::PartitionPhase(
    const traj::TrajectoryDatabase& db,
    std::vector<std::vector<size_t>>* characteristic_points) const {
  if (db.size() == 0) {
    // The engine reports an empty database as kFailedPrecondition; the legacy
    // contract is an empty segment set.
    if (characteristic_points != nullptr) characteristic_points->clear();
    return {};
  }
  auto partitioned = engine_->Partition(db, Context());
  TRACLUS_CHECK(partitioned.ok()) << partitioned.status().ToString();
  if (characteristic_points != nullptr) {
    *characteristic_points = std::move(partitioned->characteristic_points);
  }
  return std::move(partitioned->segments);
}

cluster::ClusteringResult Traclus::GroupPhase(
    const std::vector<geom::Segment>& segments) const {
  auto grouped = engine_->Group(segments, Context());
  TRACLUS_CHECK(grouped.ok()) << grouped.status().ToString();
  return std::move(grouped).ValueOrDie();
}

std::vector<traj::Trajectory> Traclus::RepresentativePhase(
    const std::vector<geom::Segment>& segments,
    const cluster::ClusteringResult& clustering) const {
  // Built directly from the config (not through the engine) so the phase
  // stays callable even when generate_representatives is false, as it always
  // was.
  const SweepRepresentativeStage stage(RepresentativeOptionsFromConfig(
      config_));
  auto reps = stage.Run(segments, clustering, Context());
  TRACLUS_CHECK(reps.ok()) << reps.status().ToString();
  return std::move(reps).ValueOrDie();
}

TraclusResult Traclus::Run(const traj::TrajectoryDatabase& db) const {
  auto result = engine_->Run(db, Context());
  if (!result.ok()) {
    // Only an empty database can fail here (the constructor validated the
    // configuration); the legacy contract returns an empty result for it.
    TRACLUS_CHECK(result.status().code() ==
                  common::StatusCode::kFailedPrecondition)
        << result.status().ToString();
    return TraclusResult{};
  }
  return std::move(result).ValueOrDie();
}

}  // namespace traclus::core

#pragma GCC diagnostic pop
