#include "core/traclus.h"

#include "cluster/neighborhood.h"
#include "cluster/neighborhood_index.h"
#include "common/thread_pool.h"
#include "partition/approximate_partitioner.h"
#include "partition/optimal_partitioner.h"
#include "partition/partitioner.h"

namespace traclus::core {

Traclus::Traclus(const TraclusConfig& config) : config_(config) {
  TRACLUS_CHECK_GT(config.eps, 0.0);
  TRACLUS_CHECK_GE(config.min_lns, 1.0);
}

std::vector<geom::Segment> Traclus::PartitionPhase(
    const traj::TrajectoryDatabase& db,
    std::vector<std::vector<size_t>>* characteristic_points) const {
  std::unique_ptr<partition::TrajectoryPartitioner> partitioner;
  switch (config_.partitioning_algorithm) {
    case PartitioningAlgorithm::kApproximateMdl:
      partitioner = std::make_unique<partition::ApproximatePartitioner>(
          config_.partition);
      break;
    case PartitioningAlgorithm::kOptimalMdl:
      partitioner =
          std::make_unique<partition::OptimalPartitioner>(config_.partition);
      break;
  }

  // Fig. 4 lines 01-03, parallelized per trajectory: the MDL scans are
  // independent (the partitioners are stateless), so each trajectory's
  // characteristic points land in their own slot. Segment materialization
  // stays sequential below because segment IDs must be consecutive in
  // database order — that pass is linear and cheap next to the MDL scans.
  const auto& trajectories = db.trajectories();
  std::vector<std::vector<size_t>> cps(trajectories.size());
  common::SharedPool(config_.num_threads)
      .ParallelFor(0, trajectories.size(), [&](size_t i) {
        cps[i] = partitioner->CharacteristicPoints(trajectories[i]);
      });

  std::vector<geom::Segment> segments;
  for (size_t i = 0; i < trajectories.size(); ++i) {
    std::vector<geom::Segment> partitions = partition::MakePartitionSegments(
        trajectories[i], cps[i], static_cast<geom::SegmentId>(segments.size()));
    segments.insert(segments.end(), partitions.begin(), partitions.end());
  }
  if (characteristic_points != nullptr) {
    *characteristic_points = std::move(cps);
  }
  return segments;
}

cluster::ClusteringResult Traclus::GroupPhase(
    const std::vector<geom::Segment>& segments) const {
  const distance::SegmentDistance dist(config_.distance);
  std::unique_ptr<cluster::NeighborhoodProvider> provider;
  if (config_.use_index) {
    provider = std::make_unique<cluster::GridNeighborhoodIndex>(segments, dist);
  } else {
    provider =
        std::make_unique<cluster::BruteForceNeighborhood>(segments, dist);
  }
  cluster::DbscanOptions options;
  options.eps = config_.eps;
  options.min_lns = config_.min_lns;
  options.min_trajectory_cardinality = config_.min_trajectory_cardinality;
  options.use_weights = config_.use_weights;
  options.num_threads = config_.num_threads;
  // Fig. 4 line 04.
  return cluster::DbscanSegments(segments, *provider, options);
}

std::vector<traj::Trajectory> Traclus::RepresentativePhase(
    const std::vector<geom::Segment>& segments,
    const cluster::ClusteringResult& clustering) const {
  cluster::RepresentativeOptions options;
  options.min_lns = config_.representative_min_lns < 0.0
                        ? config_.min_lns
                        : config_.representative_min_lns;
  options.gamma = std::max(config_.gamma, 0.0);
  options.method = config_.representative_method;
  options.use_weights = config_.use_weights;

  // Fig. 4 lines 05-06, one independent sweep per cluster.
  std::vector<traj::Trajectory> reps(clustering.clusters.size());
  common::SharedPool(config_.num_threads)
      .ParallelFor(0, clustering.clusters.size(), [&](size_t i) {
        reps[i] = cluster::RepresentativeTrajectory(
            segments, clustering.clusters[i], options);
      });
  return reps;
}

TraclusResult Traclus::Run(const traj::TrajectoryDatabase& db) const {
  TraclusResult result;
  result.segments = PartitionPhase(db, &result.characteristic_points);
  result.clustering = GroupPhase(result.segments);
  if (config_.generate_representatives) {
    result.representatives = RepresentativePhase(result.segments,
                                                 result.clustering);
  }
  return result;
}

}  // namespace traclus::core
