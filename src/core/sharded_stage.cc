#include "core/sharded_stage.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/shard_grid.h"
#include "common/logging.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "core/shard_comm.h"
#include "distance/batch_kernels.h"
#include "geom/segment.h"

namespace traclus::core {

namespace {

// Tag of the one message kind the stage exchanges: the halo record batch.
constexpr int kBorderTag = 0;
// Wire shape of one record: {global index, post-dissolution label as int64,
// core flag}.
constexpr size_t kRecordWords = 3;

common::Status CancelledIn(const char* stage) {
  return common::Status::Cancelled(std::string("run cancelled in stage '") +
                                   stage + "'");
}

void Report(const RunContext& ctx, const char* stage, double fraction) {
  if (ctx.progress) ctx.progress(stage, fraction);
}

/// Everything one shard (rank) computes in superstep 1 and consumes in
/// superstep 2. Each slot is written only by the pool task running that
/// rank; the driver reads between supersteps (the pool's blocking
/// ParallelFor is the barrier), so no per-slot locking is needed.
struct ShardState {
  common::Status status = common::Status::OK();
  /// Local index → global index: owned segments (ascending) then ghosts
  /// (ascending).
  std::vector<size_t> global_of;
  size_t owned_count = 0;
  cluster::ClusteringResult local;
  /// Per owned local index: its ε-neighbors among the ghost tail (local
  /// indices into [owned_count, local size)), ascending. Empty ⇒ interior.
  std::vector<std::vector<size_t>> ghost_neighbors;
  /// Exact global core flag, computed for border owned members only
  /// (interior members never feed the merge).
  std::vector<char> core;
  // --- superstep-2 products, consumed by the driver merge ---
  /// Cross-border core–core ε-edges as provisional-cluster id pairs.
  std::vector<std::pair<size_t, size_t>> edges;
  /// (global index, provisional id): locally-noise owned members adopted by
  /// a peer shard's cluster through a globally-core ghost neighbor.
  std::vector<std::pair<size_t, size_t>> attaches;
  size_t pairs = 0;
  size_t dissolved = 0;
};

size_t LocalIndexOf(const std::vector<size_t>& ascending, size_t global) {
  const auto it =
      std::lower_bound(ascending.begin(), ascending.end(), global);
  TRACLUS_DCHECK(it != ascending.end() && *it == global);
  return static_cast<size_t>(it - ascending.begin());
}

size_t Find(std::vector<size_t>& parent, size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

/// Union toward the smaller root (deterministic representative). Returns
/// true when two distinct trees were joined.
bool Union(std::vector<size_t>& parent, size_t a, size_t b) {
  a = Find(parent, a);
  b = Find(parent, b);
  if (a == b) return false;
  if (b < a) std::swap(a, b);
  parent[b] = a;
  return true;
}

}  // namespace

ShardedGroupStage::ShardedGroupStage(std::shared_ptr<const GroupStage> inner,
                                     const ShardedGroupOptions& options)
    : inner_(std::move(inner)), options_(options) {
  name_ = "group/sharded+";
  if (inner_ != nullptr) {
    // Strip the inner stage's layer prefix ("group/dbscan" → "dbscan") so
    // the composite reads "group/sharded+dbscan".
    std::string inner_name = inner_->name();
    const size_t slash = inner_name.rfind('/');
    name_ += slash == std::string::npos ? inner_name
                                        : inner_name.substr(slash + 1);
  } else {
    name_ += "null";
  }
}

const char* ShardedGroupStage::name() const { return name_.c_str(); }

common::Status ShardedGroupStage::Validate() const {
  if (inner_ == nullptr) {
    return common::Status::InvalidArgument(
        "ShardedGroupStage requires a non-null inner group stage");
  }
  TRACLUS_RETURN_NOT_OK(inner_->Validate());
  if (!(options_.eps > 0.0) || !std::isfinite(options_.eps)) {
    return common::Status::OutOfRange(
        "sharded grouping eps must be positive and finite");
  }
  if (!(options_.min_lns >= 1.0) || !std::isfinite(options_.min_lns)) {
    return common::Status::OutOfRange(
        "sharded grouping MinLns must be finite and >= 1");
  }
  const distance::SegmentDistanceConfig& d = options_.distance;
  if (!std::isfinite(d.w_perpendicular) || d.w_perpendicular < 0.0 ||
      !std::isfinite(d.w_parallel) || d.w_parallel < 0.0 ||
      !std::isfinite(d.w_angle) || d.w_angle < 0.0) {
    return common::Status::InvalidArgument(
        "sharded grouping distance weights must be finite and non-negative");
  }
  return common::Status::OK();
}

common::Result<cluster::ClusteringResult> ShardedGroupStage::Run(
    const traj::SegmentStore& store, const RunContext& ctx) const {
  const size_t S = ctx.shards;
  const size_t n = store.size();
  if (S <= 1 || n == 0) {
    // Sharding disabled: the decorator is transparent, byte for byte.
    return inner_->Run(store, ctx);
  }
  if (ctx.cancellation != nullptr && ctx.cancellation->cancelled()) {
    return CancelledIn(name());
  }
  Report(ctx, name(), 0.0);

  // Decomposition: cell grid over midpoints, halo radius ε/c in midpoint
  // space (c = the distance's triangle-inequality lower-bound factor; a
  // degenerate factor ghosts everything, which is correct and merely slow).
  const cluster::ShardGrid grid(store, S, options_.cell_size);
  const distance::SegmentDistance dist(options_.distance);
  const double factor = dist.LowerBoundFactor();
  const double reach = factor > 0.0
                           ? options_.eps / factor
                           : std::numeric_limits<double>::infinity();
  const std::vector<std::vector<size_t>> ghosts = grid.GhostLists(reach);

  // Per-shard inner runs: single-threaded (shard-level parallelism only —
  // nested pool use from a worker would deadlock), sieve/sharding disabled,
  // progress muted (concurrent sinks would interleave), and shard_local set
  // so whole-database post-filters wait for the merge.
  RunContext inner_ctx = ctx;
  inner_ctx.num_threads = 1;
  inner_ctx.shards = 0;
  inner_ctx.shard_local = true;
  inner_ctx.sieve = 0;
  inner_ctx.sieve_offset = 0;
  inner_ctx.progress = nullptr;

  std::vector<ShardState> states(S);
  InProcessShardGroup comm_group(static_cast<int>(S));
  common::ThreadPool& pool = common::SharedPool(ctx.num_threads);

  // --- Superstep 1: shard-local clustering, border analysis, sends. ------
  // Every rank ends by sending one record batch to every peer (possibly
  // empty); the blocking ParallelFor is the BSP barrier that orders those
  // sends before superstep 2's receives.
  pool.ParallelFor(0, S, [&](size_t s) {
    ShardState& st = states[s];
    ShardCommunicator& comm = comm_group.comm(static_cast<int>(s));
    const std::vector<size_t>& owned = grid.owned()[s];
    const std::vector<size_t>& ghost = ghosts[s];
    st.owned_count = owned.size();

    const auto send_all = [&](bool empty_only) {
      for (size_t r = 0; r < S; ++r) {
        if (r == s) continue;
        std::vector<uint64_t> payload;
        if (!empty_only) {
          // Records for owned(s) ∩ ghosts(r), ascending by global index
          // (ghosts[r] is ascending).
          for (const size_t j : ghosts[r]) {
            if (grid.owner_of(j) != s) continue;
            const size_t li = LocalIndexOf(owned, j);
            payload.push_back(static_cast<uint64_t>(j));
            payload.push_back(static_cast<uint64_t>(
                static_cast<int64_t>(st.local.labels[li])));
            payload.push_back(st.core[li] ? 1u : 0u);
          }
        }
        comm.Send(static_cast<int>(r), kBorderTag, std::move(payload));
      }
    };

    if (owned.empty()) {
      send_all(/*empty_only=*/true);
      return;
    }

    // Shard-local store: owned segments then ghosts, each ascending. The
    // rebuilt invariant cache is bit-identical to the global store's for the
    // same segments (CanonicalizeInStore is a pure per-segment function).
    st.global_of.reserve(owned.size() + ghost.size());
    std::vector<geom::Segment> segments;
    segments.reserve(owned.size() + ghost.size());
    for (const size_t i : owned) {
      st.global_of.push_back(i);
      segments.push_back(store.segment(i));
    }
    for (const size_t j : ghost) {
      st.global_of.push_back(j);
      segments.push_back(store.segment(j));
    }
    const traj::SegmentStore local_store =
        traj::SegmentStore::FromSegments(std::move(segments));
    const size_t local_size = local_store.size();

    auto inner_result = inner_->Run(local_store, inner_ctx);
    if (!inner_result.ok()) {
      st.status = inner_result.status();
      send_all(/*empty_only=*/true);  // Keep the exchange well-formed.
      return;
    }
    st.local = *std::move(inner_result);
#ifndef NDEBUG
    // The merge indexes clusters by label value; both shipped backends
    // number clusters densely as their index.
    for (size_t c = 0; c < st.local.clusters.size(); ++c) {
      TRACLUS_DCHECK(st.local.clusters[c].id == static_cast<int>(c));
    }
#endif

    distance::BatchOptions batch;
    batch.kernel = ctx.distance_kernel;

    // Border detection: one many-vs-many ε-tile of every owned segment
    // against the ghost tail (PR 8 kernels). Non-empty list ⇒ border.
    st.ghost_neighbors.assign(st.owned_count, {});
    if (!ghost.empty()) {
      std::vector<size_t> queries(st.owned_count);
      for (size_t i = 0; i < st.owned_count; ++i) queries[i] = i;
      distance::EpsilonRefineTile(
          local_store, dist,
          common::Span<const size_t>(queries.data(), queries.size()),
          st.owned_count, local_size, options_.eps,
          st.ghost_neighbors.data(), batch);
    }
    std::vector<size_t> border;
    for (size_t i = 0; i < st.owned_count; ++i) {
      if (!st.ghost_neighbors[i].empty()) border.push_back(i);
    }

    // Exact core re-check for border members: their full ε-neighborhood is
    // present in the local store (halo soundness), so the Definition 5 mass
    // over one full-range tile is their global core status.
    st.core.assign(st.owned_count, 0);
    if (!border.empty()) {
      std::vector<std::vector<size_t>> full(border.size());
      distance::EpsilonRefineTile(
          local_store, dist,
          common::Span<const size_t>(border.data(), border.size()), 0,
          local_size, options_.eps, full.data(), batch);
      const std::vector<double>& weights = local_store.weights();
      for (size_t b = 0; b < border.size(); ++b) {
        double mass = 0.0;
        if (options_.use_weights) {
          for (const size_t m : full[b]) mass += weights[m];
        } else {
          mass = static_cast<double>(full[b].size());
        }
        st.core[border[b]] = mass >= options_.min_lns ? 1 : 0;
      }
    }

    // Dissolution: a local cluster is globally valid iff it contains an
    // owned member that is interior (no ghost neighbors — its expansion
    // chain is certainly owned-core-anchored) or border-and-core. Clusters
    // reachable only through ghost seeds dissolve; their owned members are
    // all within ε of a globally-core ghost, so the attach pass below
    // re-homes every one of them.
    std::vector<char> survives(st.local.clusters.size(), 0);
    for (size_t c = 0; c < st.local.clusters.size(); ++c) {
      for (const size_t m : st.local.clusters[c].member_indices) {
        if (m >= st.owned_count) continue;
        if (st.ghost_neighbors[m].empty() || st.core[m]) {
          survives[c] = 1;
          break;
        }
      }
      if (!survives[c]) ++st.dissolved;
    }
    for (size_t i = 0; i < st.owned_count; ++i) {
      const int label = st.local.labels[i];
      if (label >= 0 && !survives[static_cast<size_t>(label)]) {
        st.local.labels[i] = cluster::kNoise;
      }
    }

    send_all(/*empty_only=*/false);
  });

  for (size_t s = 0; s < S; ++s) {
    if (!states[s].status.ok()) return states[s].status;
  }
  if (ctx.cancellation != nullptr && ctx.cancellation->cancelled()) {
    return CancelledIn(name());
  }

  // Provisional cluster ids: shard s's local cluster c ↦ offset[s] + c.
  std::vector<size_t> offset(S + 1, 0);
  for (size_t s = 0; s < S; ++s) {
    offset[s + 1] = offset[s] + states[s].local.clusters.size();
  }
  const size_t total_provisional = offset[S];

  // --- Superstep 2: receive halo records, emit merge edges + attaches. ---
  pool.ParallelFor(0, S, [&](size_t s) {
    ShardState& st = states[s];
    ShardCommunicator& comm = comm_group.comm(static_cast<int>(s));
    struct GhostInfo {
      int64_t label = -1;
      char core = 0;
      size_t owner = 0;
    };
    const std::vector<size_t>& ghost = ghosts[s];
    std::vector<GhostInfo> info(ghost.size());
    for (size_t r = 0; r < S; ++r) {
      if (r == s) continue;
      const std::vector<uint64_t> payload =
          comm.Recv(static_cast<int>(r), kBorderTag);
      TRACLUS_CHECK(payload.size() % kRecordWords == 0);
      for (size_t k = 0; k < payload.size(); k += kRecordWords) {
        const size_t global = static_cast<size_t>(payload[k]);
        const size_t pos = LocalIndexOf(ghost, global);
        info[pos].label = static_cast<int64_t>(payload[k + 1]);
        info[pos].core = payload[k + 2] != 0 ? 1 : 0;
        info[pos].owner = r;
      }
    }

    // Owned members in ascending local (= global) order; each ghost
    // neighbor list is ascending too, so "earliest globally-core ghost
    // neighbor" is the first core hit — part of the determinism contract.
    for (size_t i = 0; i < st.owned_count; ++i) {
      const int label = st.local.labels[i];
      const bool is_core = st.core.empty() ? false : st.core[i] != 0;
      size_t attach_to = static_cast<size_t>(-1);
      for (const size_t g : st.ghost_neighbors[i]) {
        const size_t pos = g - st.owned_count;
        const GhostInfo& gi = info[pos];
        ++st.pairs;
        if (is_core && gi.core) {
          // Two exact cores within ε are directly density-connected: a
          // union edge. Core ⇒ clustered and surviving on both sides.
          TRACLUS_DCHECK(label >= 0 && gi.label >= 0);
          st.edges.emplace_back(
              offset[s] + static_cast<size_t>(label),
              offset[gi.owner] + static_cast<size_t>(gi.label));
        }
        if (label < 0 && gi.core && attach_to == static_cast<size_t>(-1)) {
          attach_to = offset[gi.owner] + static_cast<size_t>(gi.label);
        }
      }
      if (label < 0 && attach_to != static_cast<size_t>(-1)) {
        st.attaches.emplace_back(st.global_of[i], attach_to);
      }
    }
  });
  if (ctx.cancellation != nullptr && ctx.cancellation->cancelled()) {
    return CancelledIn(name());
  }

  // --- Driver merge: rank-ordered union-find over the border edges. ------
  std::vector<size_t> parent(total_provisional);
  for (size_t p = 0; p < total_provisional; ++p) parent[p] = p;
  size_t border_merges = 0;
  for (size_t s = 0; s < S; ++s) {
    for (const auto& [a, b] : states[s].edges) {
      if (Union(parent, a, b)) ++border_merges;
    }
  }

  // Provisional id per segment: the owner's surviving label, overridden by
  // the attach pass for dissolved/locally-noise members.
  std::vector<int64_t> provisional(n, -1);
  size_t attached = 0;
  for (size_t s = 0; s < S; ++s) {
    const ShardState& st = states[s];
    for (size_t i = 0; i < st.owned_count; ++i) {
      const int label = st.local.labels[i];
      if (label >= 0) {
        provisional[st.global_of[i]] =
            static_cast<int64_t>(offset[s] + static_cast<size_t>(label));
      }
    }
    for (const auto& [global, prov] : st.attaches) {
      provisional[global] = static_cast<int64_t>(prov);
      ++attached;
    }
  }

  // Assemble merged clusters, numbered densely by first member in ascending
  // segment order (see the header's numbering note).
  cluster::ClusteringResult merged;
  merged.labels.assign(n, cluster::kNoise);
  std::vector<int> dense_of(total_provisional, -1);
  for (size_t i = 0; i < n; ++i) {
    if (provisional[i] < 0) continue;
    const size_t root =
        Find(parent, static_cast<size_t>(provisional[i]));
    int dense = dense_of[root];
    if (dense < 0) {
      dense = static_cast<int>(merged.clusters.size());
      dense_of[root] = dense;
      cluster::Cluster c;
      c.id = dense;
      merged.clusters.push_back(std::move(c));
    }
    merged.clusters[static_cast<size_t>(dense)].member_indices.push_back(i);
    merged.labels[i] = dense;
  }

  // Global trajectory-cardinality filter (Fig. 12 step 3), applied once on
  // the merged clusters with the inner backends' exact semantics: negative
  // threshold falls back to MinLns, 0 disables.
  const double threshold = options_.min_trajectory_cardinality < 0.0
                               ? options_.min_lns
                               : options_.min_trajectory_cardinality;
  const cluster::SegmentSetView view = cluster::SegmentSetView::Of(store);
  cluster::ClusteringResult out;
  out.labels.assign(n, cluster::kNoise);
  std::vector<int> remap(merged.clusters.size(), -1);
  for (cluster::Cluster& c : merged.clusters) {
    const double cardinality =
        static_cast<double>(cluster::TrajectoryCardinality(view, c));
    if (cardinality < threshold) continue;  // Removed; members become noise.
    const int dense = static_cast<int>(out.clusters.size());
    remap[static_cast<size_t>(c.id)] = dense;
    c.id = dense;
    out.clusters.push_back(std::move(c));
  }
  out.num_noise = 0;
  for (size_t i = 0; i < n; ++i) {
    const int label = merged.labels[i];
    const int dense = label >= 0 ? remap[static_cast<size_t>(label)] : -1;
    if (dense >= 0) {
      out.labels[i] = dense;
    } else {
      ++out.num_noise;
    }
  }

  if (options_.stats != nullptr) {
    ShardedRunStats stats;
    for (size_t s = 0; s < S; ++s) {
      const ShardState& st = states[s];
      if (st.owned_count > 0) ++stats.shards_run;
      stats.border_pairs += st.pairs;
      stats.dissolved_clusters += st.dissolved;
    }
    for (const std::vector<size_t>& g : ghosts) {
      stats.ghost_segments += g.size();
    }
    stats.border_merges = border_merges;
    stats.attached_segments = attached;
    *options_.stats = stats;
  }

  Report(ctx, name(), 1.0);
  return out;
}

}  // namespace traclus::core
