#ifndef TRACLUS_CORE_SHARD_COMM_H_
#define TRACLUS_CORE_SHARD_COMM_H_

// The communicator seam of the sharded grouping stage: a minimal, MPI-shaped
// rank/size/Send/Recv surface that core::ShardedGroupStage routes ALL
// inter-shard traffic through, so a process backend (MPI_Comm rank ↔
// ShardCommunicator) can replace the in-process one without touching the
// stage. Modeled on cpptraj's Parallel.h Comm abstraction: a rank addresses
// peers by rank id and exchanges opaque word payloads under integer tags.
//
// The exchange discipline is bulk-synchronous (BSP), which is what makes the
// in-process backend deadlock-free at ANY thread count: within a superstep
// every rank only Sends (buffered, non-blocking), the driver barrier
// (thread-pool Wait) ends the superstep, and the next superstep only Recvs
// messages the barrier guarantees are already queued. Recv therefore asserts
// the message is present instead of blocking — a missing barrier is a
// programming error that fails fast rather than deadlocking when the pool
// has fewer threads than ranks.
//
// Thread-safety: each destination rank owns a mailbox whose queues are
// TRACLUS_GUARDED_BY its common::Mutex; concurrent Sends from any rank and
// Recvs by the owner are safe. Payloads are moved, never shared.

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace traclus::core {

/// One rank's endpoint. rank() ∈ [0, size()); Send may target any peer
/// (self-sends allowed); Recv pops the oldest message queued from `src`
/// under `tag` (FIFO per (src, tag) channel).
class ShardCommunicator {
 public:
  virtual ~ShardCommunicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Buffered, non-blocking send: enqueues the payload at dest's mailbox and
  /// returns immediately.
  virtual void Send(int dest, int tag, std::vector<uint64_t> payload) = 0;

  /// Receives the oldest message from `src` under `tag`. BSP contract: the
  /// matching Send must be ordered before this call by a superstep barrier.
  virtual std::vector<uint64_t> Recv(int src, int tag) = 0;
};

/// In-process communicator group: `size` ranks exchanging over per-rank
/// mailboxes in shared memory. The group owns every endpoint; comm(r) stays
/// valid while the group lives.
class InProcessShardGroup {
 public:
  explicit InProcessShardGroup(int size)
      : mailboxes_(static_cast<size_t>(size)),
        comms_(static_cast<size_t>(size)) {
    TRACLUS_CHECK_GT(size, 0);
    for (int r = 0; r < size; ++r) {
      comms_[static_cast<size_t>(r)].Init(this, r, size);
    }
  }

  InProcessShardGroup(const InProcessShardGroup&) = delete;
  InProcessShardGroup& operator=(const InProcessShardGroup&) = delete;

  ShardCommunicator& comm(int rank) {
    TRACLUS_CHECK(rank >= 0 && static_cast<size_t>(rank) < comms_.size());
    return comms_[static_cast<size_t>(rank)];
  }

 private:
  /// FIFO queues keyed by (src, tag), one mailbox per destination rank.
  class Mailbox {
   public:
    void Push(int src, int tag, std::vector<uint64_t> payload) {
      common::MutexLock lock(mu_);
      queues_[Key(src, tag)].push_back(std::move(payload));
    }

    std::vector<uint64_t> Pop(int src, int tag) {
      common::MutexLock lock(mu_);
      const auto it = queues_.find(Key(src, tag));
      // BSP contract violation (Recv before the barrier that orders the
      // matching Send): fail fast instead of blocking.
      TRACLUS_CHECK(it != queues_.end() && !it->second.empty());
      std::vector<uint64_t> payload = std::move(it->second.front());
      it->second.pop_front();
      return payload;
    }

   private:
    static uint64_t Key(int src, int tag) {
      return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
             static_cast<uint32_t>(tag);
    }

    common::Mutex mu_;
    std::map<uint64_t, std::deque<std::vector<uint64_t>>> queues_
        TRACLUS_GUARDED_BY(mu_);
  };

  class Comm : public ShardCommunicator {
   public:
    void Init(InProcessShardGroup* group, int rank, int size) {
      group_ = group;
      rank_ = rank;
      size_ = size;
    }

    int rank() const override { return rank_; }
    int size() const override { return size_; }

    void Send(int dest, int tag, std::vector<uint64_t> payload) override {
      TRACLUS_CHECK(dest >= 0 && dest < size_);
      group_->mailboxes_[static_cast<size_t>(dest)].Push(rank_, tag,
                                                         std::move(payload));
    }

    std::vector<uint64_t> Recv(int src, int tag) override {
      TRACLUS_CHECK(src >= 0 && src < size_);
      return group_->mailboxes_[static_cast<size_t>(rank_)].Pop(src, tag);
    }

   private:
    InProcessShardGroup* group_ = nullptr;
    int rank_ = 0;
    int size_ = 0;
  };

  std::vector<Mailbox> mailboxes_;
  std::vector<Comm> comms_;
};

}  // namespace traclus::core

#endif  // TRACLUS_CORE_SHARD_COMM_H_
