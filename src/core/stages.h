#ifndef TRACLUS_CORE_STAGES_H_
#define TRACLUS_CORE_STAGES_H_

// The three pluggable stages of the TRACLUS pipeline (Fig. 4): partition →
// group → represent. TraclusEngine (core/engine.h) assembles one
// implementation of each; the adapters here wrap every algorithm the library
// ships (MDL approximate/optimal partitioning, DBSCAN and OPTICS grouping,
// projection/rotation sweep representatives). Custom stages are first-class:
// implement an interface and hand it to TraclusEngine::Builder — the engine
// only ever talks to the interfaces below.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/representative.h"
#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"
#include "distance/batch_kernels.h"
#include "distance/segment_distance.h"
#include "geom/segment.h"
#include "partition/mdl.h"
#include "traj/chunked_store.h"
#include "traj/segment_store.h"
#include "traj/trajectory.h"
#include "traj/trajectory_database.h"

namespace traclus::core {

/// Progress callback: stage name plus completed fraction in [0, 1]. Invoked
/// only from the thread that called the engine entry point (never from pool
/// workers), at stage start (0.0), at stage end (1.0), and at a bounded number
/// of evenly spaced points when a stage processes its input blockwise. The
/// call sequence depends only on the input, never on thread scheduling.
using ProgressFn =
    std::function<void(const std::string& stage, double fraction)>;

/// Per-run execution parameters, shared by every stage of one engine run.
/// Separate from stage configuration on purpose: the same engine can serve
/// many concurrent runs, each with its own threads, progress sink, and
/// cancellation token.
struct RunContext {
  /// Worker threads for the parallel phases. > 0: exactly that many; 0: the
  /// engine's configured default (which itself defaults to hardware
  /// concurrency); < 0: hardware concurrency regardless of the engine
  /// default. 1 runs everything inline on the calling thread, reproducing the
  /// original single-threaded execution exactly. Results are identical for
  /// every value.
  int num_threads = 0;
  /// Optional progress sink (see ProgressFn).
  ProgressFn progress;
  /// Optional cooperative cancellation. Polled between parallel chunks and
  /// expansion steps; when it fires, the engine abandons the run and returns
  /// StatusCode::kCancelled.
  const common::CancellationToken* cancellation = nullptr;
  /// Batch distance kernel for every ε-query and distance batch of the run
  /// (distance/batch_kernels.h): kAuto picks the best compiled kernel, or
  /// force kScalar / kSimd explicitly (kSimd degrades to scalar in binaries
  /// built without AVX2). The kernels are bit-identical, so results never
  /// depend on this knob — only throughput does.
  distance::BatchKernel distance_kernel = distance::BatchKernel::kAuto;
  /// Sieve-sampled grouping (core/sieve_stage.h): when the group stage is a
  /// SieveGroupStage, only every `sieve`-th trajectory's segments are grouped
  /// through the inner backend and the rest are batch-assigned to the nearest
  /// cluster — O((n/k)² + n·|clusters|) instead of O(n²). 0 or 1 disables the
  /// sieve (the inner backend runs on everything, byte-identically to using
  /// it directly). Deterministic for fixed (sieve, sieve_offset): labels are
  /// identical across thread counts and kernels. Ignored by every other
  /// group stage.
  size_t sieve = 0;
  /// Which residue class of the trajectory first-appearance rank is sampled
  /// (taken modulo `sieve`); lets repeated runs sample disjoint subsets.
  size_t sieve_offset = 0;
  /// Sharded grouping (core/sharded_stage.h): when the group stage is a
  /// ShardedGroupStage, the segment database is decomposed over a cell grid
  /// into this many shards, the inner backend runs independently per shard
  /// (shards execute in parallel across the run's threads), and shard-border
  /// clusters are merged through a halo exchange behind the communicator seam
  /// (core/shard_comm.h). 0 or 1 disables sharding (the inner backend runs on
  /// everything, byte-identically to using it directly). Deterministic for a
  /// fixed shard count: labels are identical across thread counts and
  /// kernels. Ignored by every other group stage.
  size_t shards = 0;
  /// Set by ShardedGroupStage on the context of its per-shard inner runs
  /// (never by callers): tells the inner backend it is clustering one shard
  /// of a larger database, so whole-database post-filters — today the
  /// trajectory-cardinality filter of the DBSCAN/OPTICS stages — must be
  /// skipped locally; the sharded driver applies them once, globally, after
  /// the halo merge. A filter applied per shard would see only a shard's
  /// fragment of each cross-border cluster and drop clusters the unsharded
  /// run keeps.
  bool shard_local = false;
  /// Streaming runs only (TraclusEngine::Run(TrajectorySource&)): segments
  /// per chunk of the run's ChunkedSegmentStore. 0 = unbounded (one chunk).
  /// Eager runs ignore both chunk knobs. Results are bit-identical for every
  /// value — chunking changes residency, never arithmetic.
  size_t chunk_capacity = 0;
  /// Persistent neighbor cache (cluster/neighbor_cache_file.h): when
  /// non-empty, the DBSCAN/OPTICS group stages wrap their neighborhood
  /// provider in a FileNeighborhoodCache rooted at this directory — a run
  /// over unchanged inputs (store content, distance weights, ε) serves every
  /// ε-neighborhood from disk and skips the candidate/refine work entirely;
  /// any input change misses (the file is keyed by a content hash) and the
  /// lists are recomputed and rewritten. Served lists equal the computed
  /// ones exactly, so results are byte-identical either way. Composes with
  /// sieve/sharded grouping: each effective query store (the sieve sample,
  /// each shard) hashes to its own cache file. Empty = disabled. Ignored by
  /// the residency-capped RunChunked path (chunked providers stream a
  /// different shape).
  std::string neighbor_cache_dir;
  /// Streaming runs only: residency cap of the chunked store's reader cache.
  /// 0 = unbounded (no spill; the grouping phase runs on the merged store).
  /// > 0 enables the out-of-core grouping path: cold chunks spill to a temp
  /// file and at most this many chunk stores are cache-resident at once
  /// (the OPTICS stage does not honor the cap — see GroupStage::RunChunked).
  size_t max_resident_chunks = 0;
};

/// Output of the partitioning stage: the segment database D accumulated from
/// all trajectory partitions (Fig. 4 line 03), frozen into a
/// traj::SegmentStore — the invariant-caching structure-of-arrays database
/// that is the pipeline's inter-stage currency — plus the
/// characteristic-point indices per input trajectory (parallel to database
/// order).
struct PartitionOutput {
  traj::SegmentStore store;
  std::vector<std::vector<size_t>> characteristic_points;

  /// Array-of-structs view of the segment database (borrowed from the store).
  const std::vector<geom::Segment>& segments() const {
    return store.segments();
  }
};

/// Stage 1: trajectory → trajectory partitions (§3). Implementations must
/// assign consecutive segment IDs in database order and may parallelize per
/// trajectory under that contract.
class PartitionStage {
 public:
  virtual ~PartitionStage() = default;

  /// Short stable identifier, used in progress reports and error messages
  /// (e.g. "partition/mdl-approx").
  virtual const char* name() const = 0;

  /// Validates the stage's configuration. Called once by
  /// TraclusEngine::Builder::Build so a bad configuration surfaces before any
  /// data is touched.
  virtual common::Status Validate() const { return common::Status::OK(); }

  virtual common::Result<PartitionOutput> Run(
      const traj::TrajectoryDatabase& db, const RunContext& ctx) const = 0;
};

/// Stage 2: segment database → clusters (§4). The store hands
/// implementations both the invariant cache (for the distance fast path) and
/// the AoS segment view.
class GroupStage {
 public:
  virtual ~GroupStage() = default;
  virtual const char* name() const = 0;
  virtual common::Status Validate() const { return common::Status::OK(); }
  virtual common::Result<cluster::ClusteringResult> Run(
      const traj::SegmentStore& store, const RunContext& ctx) const = 0;

  /// Chunked-store entry point of the streaming pipeline. The default
  /// implementation merges the chunks back into a monolithic store and
  /// delegates to Run — always correct and bit-identical, but it does NOT
  /// honor the residency cap (the merged store is fully resident). Stages
  /// with a genuine out-of-core path override it (DbscanGroupStage);
  /// OpticsGroupStage inherits the default, so OPTICS grouping under a
  /// residency cap is correct but not memory-bounded.
  virtual common::Result<cluster::ClusteringResult> RunChunked(
      const traj::ChunkedSegmentStore& store, const RunContext& ctx) const;
};

/// Stage 3: clusters → one representative trajectory per cluster (§4.3).
class RepresentativeStage {
 public:
  virtual ~RepresentativeStage() = default;
  virtual const char* name() const = 0;
  virtual common::Status Validate() const { return common::Status::OK(); }
  virtual common::Result<std::vector<traj::Trajectory>> Run(
      const traj::SegmentStore& store,
      const cluster::ClusteringResult& clustering,
      const RunContext& ctx) const = 0;

  /// Chunked-store entry point; same default-merges-and-delegates contract
  /// as GroupStage::RunChunked. SweepRepresentativeStage overrides it with a
  /// per-cluster gather that keeps only one cluster's members resident.
  virtual common::Result<std::vector<traj::Trajectory>> RunChunked(
      const traj::ChunkedSegmentStore& store,
      const cluster::ClusteringResult& clustering,
      const RunContext& ctx) const;
};

// ---------------------------------------------------------------------------
// Adapters over the library's algorithms.
// ---------------------------------------------------------------------------

/// Which MDL partitioner drives MdlPartitionStage.
enum class MdlVariant {
  kApproximate,  ///< Fig. 8, O(n) — the paper's algorithm and the default.
  kOptimal,      ///< Exact DP optimum, O(n²) edges; experiments only.
};

struct MdlPartitionOptions {
  partition::MdlOptions mdl;
  MdlVariant variant = MdlVariant::kApproximate;
};

/// MDL partitioning (§3), parallel per trajectory, cancellation-aware.
class MdlPartitionStage : public PartitionStage {
 public:
  explicit MdlPartitionStage(const MdlPartitionOptions& options = {})
      : options_(options) {}

  const char* name() const override;
  common::Status Validate() const override;
  common::Result<PartitionOutput> Run(const traj::TrajectoryDatabase& db,
                                      const RunContext& ctx) const override;

  const MdlPartitionOptions& options() const { return options_; }

 private:
  MdlPartitionOptions options_;
};

struct DbscanGroupOptions {
  /// Neighborhood radius ε (Definition 4). Must be > 0.
  double eps = 25.0;
  /// Core-segment density threshold MinLns (Definition 5). Must be ≥ 1.
  double min_lns = 5.0;
  /// Trajectory-cardinality threshold (negative: use min_lns; 0: disabled).
  double min_trajectory_cardinality = -1.0;
  /// Weighted-trajectory extension (§4.2 / §7.1).
  bool use_weights = false;
  /// Grid spatial index for ε-neighborhood queries (Lemma 3); false = the
  /// O(n²) brute-force configuration.
  bool use_index = true;
  /// Block size of the batched neighborhood path; see
  /// cluster::DbscanOptions::batch_block. 0 = default.
  size_t batch_block = 0;
  /// Distance function configuration (§2.3). Weights must be ≥ 0.
  distance::SegmentDistanceConfig distance;
};

/// Density-based grouping (Fig. 12) over the TRACLUS segment distance.
class DbscanGroupStage : public GroupStage {
 public:
  explicit DbscanGroupStage(const DbscanGroupOptions& options = {})
      : options_(options) {}

  const char* name() const override;
  common::Status Validate() const override;
  common::Result<cluster::ClusteringResult> Run(
      const traj::SegmentStore& store, const RunContext& ctx) const override;
  /// Out-of-core grouping: DBSCAN's density accounting and cardinality
  /// filter read the chunked store's always-resident catalog through a
  /// cluster::SegmentSetView, and the ε-queries run over the chunked
  /// neighborhood providers, which fault payload chunks on demand under the
  /// store's residency cap. Labellings are byte-identical to Run on the
  /// merged store.
  common::Result<cluster::ClusteringResult> RunChunked(
      const traj::ChunkedSegmentStore& store,
      const RunContext& ctx) const override;

  const DbscanGroupOptions& options() const { return options_; }

 private:
  DbscanGroupOptions options_;
};

struct OpticsGroupOptions {
  /// Generating distance ε. Must be > 0.
  double eps = 25.0;
  /// Extraction cut ε' ≤ ε for the DBSCAN-equivalent clustering; ≤ 0 means
  /// "use eps".
  double eps_cut = -1.0;
  /// MinLns (MinPts analogue). Must be ≥ 1.
  double min_lns = 5.0;
  /// Trajectory-cardinality threshold (negative: use min_lns; 0: disabled).
  double min_trajectory_cardinality = -1.0;
  /// Grid spatial index for the ε-neighborhood queries.
  bool use_index = true;
  /// Distance function configuration (§2.3). Weights must be ≥ 0.
  distance::SegmentDistanceConfig distance;
};

/// OPTICS grouping (§7.1(2) extension): computes the cluster ordering and
/// extracts the DBSCAN-equivalent clustering at `eps_cut`.
class OpticsGroupStage : public GroupStage {
 public:
  explicit OpticsGroupStage(const OpticsGroupOptions& options = {})
      : options_(options) {}

  const char* name() const override;
  common::Status Validate() const override;
  common::Result<cluster::ClusteringResult> Run(
      const traj::SegmentStore& store, const RunContext& ctx) const override;

  const OpticsGroupOptions& options() const { return options_; }

 private:
  OpticsGroupOptions options_;
};

struct SweepRepresentativeOptions {
  /// Sweep hit threshold (Fig. 13). Must be ≥ 0; 0 emits at every position.
  double min_lns = 5.0;
  /// Smoothing parameter γ (Fig. 15 line 09). Must be ≥ 0; 0 disables.
  double gamma = 0.0;
  /// Sweep coordinate frame: dimension-generic projection (default) or the
  /// paper's 2-D rotation matrix.
  cluster::RepresentativeMethod method =
      cluster::RepresentativeMethod::kProjection;
  /// Weighted sweep hit counts (§4.2 consistency).
  bool use_weights = false;
};

/// Representative trajectory generation (Fig. 15), parallel per cluster,
/// cancellation-aware.
class SweepRepresentativeStage : public RepresentativeStage {
 public:
  explicit SweepRepresentativeStage(const SweepRepresentativeOptions& options =
                                        {})
      : options_(options) {}

  const char* name() const override;
  common::Status Validate() const override;
  common::Result<std::vector<traj::Trajectory>> Run(
      const traj::SegmentStore& store,
      const cluster::ClusteringResult& clustering,
      const RunContext& ctx) const override;
  /// Out-of-core sweep: gathers each cluster's member segments (faulting
  /// chunks through the store's bounded cache) into a small member-local
  /// store and sweeps that, so only one cluster's members are resident at a
  /// time. The sweep reads member-indexed values only, so representatives
  /// are bit-identical to Run on the merged store.
  common::Result<std::vector<traj::Trajectory>> RunChunked(
      const traj::ChunkedSegmentStore& store,
      const cluster::ClusteringResult& clustering,
      const RunContext& ctx) const override;

  const SweepRepresentativeOptions& options() const { return options_; }

 private:
  SweepRepresentativeOptions options_;
};

}  // namespace traclus::core

#endif  // TRACLUS_CORE_STAGES_H_
