#ifndef TRACLUS_CORE_SHARDED_STAGE_H_
#define TRACLUS_CORE_SHARDED_STAGE_H_

// ShardedGroupStage — sharded grouping: decompose the segment database over
// a cell grid (cluster/shard_grid.h), run an arbitrary inner GroupStage
// independently per shard on a shard-local store (owned segments plus the
// halo of ghost segments within ε-reach of the shard's region), then merge
// clusters across shard borders with a union-find pass over ghost-confirmed
// ε-pairs. All inter-shard traffic flows through the communicator seam
// (core/shard_comm.h), so a process-parallel (MPI-shaped) backend can
// replace the in-process one without touching the stage.
//
// Cost model: the inner backend's quadratic pairwise work drops from O(n²)
// to O(Σ_s (n_s + g_s)²) ≈ O(n²/S) for S balanced shards with small halos,
// and the shards run concurrently across the RunContext's threads — shard
// count S is a decomposition knob, thread count an execution knob; any
// combination is valid.
//
// Exactness (DBSCAN inner backend): a shard-local DBSCAN over owned + ghost
// segments computes the exact global core status of every owned segment
// (its full ε-neighborhood is present, by the halo bound in
// cluster/shard_grid.h), and every cross-owner ε-pair appears in both
// owners' shards. Local clusters reachable only through ghost seeds are
// dissolved (a local cluster is globally valid iff it contains an owned
// member that is either interior — no ghost neighbors — or border-and-core),
// dissolved members re-attach through their earliest globally-core ghost
// neighbor, and core–core border pairs become union edges between the two
// owners' provisional clusters. The merged result partitions segments into
// clusters and noise exactly as unsharded DBSCAN does, with two documented
// deviations: cluster NUMBERING is dense by first member in ascending
// segment order (DBSCAN numbers by seed order, i.e. first CORE member), and
// a non-core segment within ε of cores of two different DBSCAN clusters may
// join the other one (the same assignment ambiguity DBSCAN itself resolves
// by scan order). The second deviation has a corollary once the
// trajectory-cardinality filter runs: when one of the contesting clusters is
// removed by the filter, a contested segment assigned to the removed cluster
// lands in noise, so noise counts may differ by the handful of contested
// borders — core segments and their cluster membership are never affected.
// In weighted mode (use_weights) the border density re-check
// sums masses in shard-local order, so a mass sitting exactly on MinLns at
// the last ulp could flip; the default counting mass is order-exact. For
// other inner backends (OPTICS, custom) the merge is the same density-style
// heuristic but carries no exactness proof.
//
// Determinism: the grid, halos, per-shard runs, exchanged records, and the
// rank-ordered union-find are each pure functions of (store, options, shard
// count) — thread scheduling only changes when shards run, never what they
// compute — so labels are byte-identical across thread counts and
// scalar/SIMD kernels for a fixed shard count. ctx.shards ≤ 1 delegates to
// the inner stage unchanged (byte-identical to using it directly).
//
// Whole-database post-filters: per-shard inner runs execute with
// RunContext::shard_local set, which defers the trajectory-cardinality
// filter (see stages.h); this stage applies it once, globally, after the
// merge.
//
// Thread-safety: the stage itself is immutable (inner pointer + options); a
// run's mutable state is per-shard slots written by the owning pool task
// plus the communicator mailboxes, which are TRACLUS_GUARDED_BY their
// common::Mutex. The optional stats sink is written by the driver thread
// only, after the barrier — but distinct concurrent runs must not share one
// sink.
//
// Out-of-core: RunChunked inherits the merge-then-delegate default, so a
// capped streaming run with sharded grouping is correct but not
// memory-bounded.

#include <memory>
#include <string>

#include "core/stages.h"
#include "distance/segment_distance.h"

namespace traclus::core {

/// Per-run counters of the sharded path, filled by Run when
/// ShardedGroupOptions::stats is set. All counts are deterministic for a
/// fixed (store, options, shard count).
struct ShardedRunStats {
  /// Shards that owned at least one segment.
  size_t shards_run = 0;
  /// Total ghost-list length across shards (a segment ghosted to two shards
  /// counts twice).
  size_t ghost_segments = 0;
  /// Owned-segment → ghost ε-pairs discovered across all shards (each
  /// cross-owner pair is seen from both owners, so it counts twice).
  size_t border_pairs = 0;
  /// Union-find merges that actually joined two distinct provisional
  /// clusters across a shard border.
  size_t border_merges = 0;
  /// Shard-local clusters dissolved as ghost-seeded.
  size_t dissolved_clusters = 0;
  /// Segments re-attached to a peer shard's cluster after dissolution.
  size_t attached_segments = 0;
};

/// Configuration of the sharded grouping driver. eps / min_lns / weights /
/// distance describe the SAME clustering the inner stage runs (like the
/// sieve stage, the decorator cannot read an arbitrary inner stage's
/// configuration, so the caller states it twice); results are only exact
/// when they match the inner backend's.
struct ShardedGroupOptions {
  /// Neighborhood radius ε (Definition 4) of the inner clustering — drives
  /// the halo width, the border tiles, and the merge predicate. Must be
  /// positive and finite.
  double eps = 25.0;
  /// Core-density threshold MinLns (Definition 5) of the inner clustering —
  /// drives the border core re-check. Must be finite and ≥ 1.
  double min_lns = 5.0;
  /// Global trajectory-cardinality threshold, applied once after the merge
  /// (negative: use min_lns; 0: disabled) — the same semantics as
  /// DbscanGroupOptions::min_trajectory_cardinality.
  double min_trajectory_cardinality = -1.0;
  /// Weighted-trajectory extension (§4.2): border neighborhood mass sums
  /// segment weights instead of counting.
  bool use_weights = false;
  /// Grid cell size of the shard decomposition; ≤ 0 selects ShardGrid's
  /// automatic heuristic.
  double cell_size = 0.0;
  /// Distance function (§2.3) of the inner clustering. Weights must be
  /// finite and non-negative.
  distance::SegmentDistanceConfig distance;
  /// Optional counters sink (caller-owned, may be null). Written once per
  /// sharded Run by the driver thread; do not share one sink between
  /// concurrent runs.
  ShardedRunStats* stats = nullptr;
};

/// Decorator GroupStage implementing sharded grouping over any inner
/// backend. The shard count is a per-run parameter (RunContext::shards).
class ShardedGroupStage : public GroupStage {
 public:
  /// `inner` must be non-null (checked in Validate).
  explicit ShardedGroupStage(std::shared_ptr<const GroupStage> inner,
                             const ShardedGroupOptions& options = {});

  const char* name() const override;
  common::Status Validate() const override;
  /// ctx.shards ≤ 1 (or an empty store): delegates to the inner stage
  /// unchanged. Otherwise runs the three-superstep sharded pipeline:
  /// shard-local clustering + border analysis, halo record exchange over the
  /// communicator, and the cross-border union-find merge + global filter.
  common::Result<cluster::ClusteringResult> Run(
      const traj::SegmentStore& store, const RunContext& ctx) const override;

  const ShardedGroupOptions& options() const { return options_; }
  const GroupStage* inner() const { return inner_.get(); }

 private:
  std::shared_ptr<const GroupStage> inner_;
  ShardedGroupOptions options_;
  /// "group/sharded+<inner>" — built once; name() returns its c_str().
  std::string name_;
};

}  // namespace traclus::core

#endif  // TRACLUS_CORE_SHARDED_STAGE_H_
