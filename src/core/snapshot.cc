#include "core/snapshot.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "partition/approximate_partitioner.h"
#include "partition/partitioner.h"

namespace traclus::core {
namespace {

// 'TSN1' little-endian.
constexpr uint32_t kMagic = 0x314E5354u;
// Cap on fallback member segments per representative-less cluster.
constexpr size_t kMaxFallbackMembers = 32;

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

template <typename T>
void WriteRaw(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadRaw(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

void WriteDouble(std::ofstream& out, double v) { WriteRaw(out, DoubleBits(v)); }

bool ReadDouble(std::ifstream& in, double* v) {
  uint64_t bits = 0;
  if (!ReadRaw(in, &bits)) return false;
  *v = BitsToDouble(bits);
  return true;
}

void WriteString(std::ofstream& out, const std::string& s) {
  WriteRaw(out, static_cast<uint64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

common::Status Truncated(const std::string& path) {
  return common::Status::IOError("truncated snapshot file " + path);
}

common::Status Corrupt(const std::string& path, const std::string& what) {
  return common::Status::InvalidArgument("corrupt snapshot file " + path +
                                         ": " + what);
}

geom::Point MakePoint(const double* coords, int dims) {
  geom::Point p =
      dims == 3 ? geom::Point(coords[0], coords[1], coords[2])
                : geom::Point(coords[0], dims > 1 ? coords[1] : 0.0);
  return p;
}

}  // namespace

common::Result<std::unique_ptr<ClusterSnapshot>> ClusterSnapshot::FromResult(
    const TraclusResult& result, const SnapshotParams& params) {
  if (!(params.eps > 0.0)) {
    return common::Status::InvalidArgument("snapshot eps must be > 0");
  }
  if (result.store.size() != result.clustering.labels.size()) {
    return common::Status::InvalidArgument(
        "snapshot needs a materialized, labeled store (" +
        std::to_string(result.store.size()) + " segments vs " +
        std::to_string(result.clustering.labels.size()) +
        " labels) — residency-capped streaming runs leave the store empty");
  }
  if (!result.representatives.empty() &&
      result.representatives.size() != result.clustering.clusters.size()) {
    return common::Status::InvalidArgument(
        "representatives, when present, must be parallel to clusters");
  }
  auto snap = std::unique_ptr<ClusterSnapshot>(new ClusterSnapshot());
  snap->store_ = result.store;
  snap->clustering_ = result.clustering;
  snap->representatives_ = result.representatives;
  snap->params_ = params;
  snap->InitServing();
  return snap;
}

void ClusterSnapshot::InitServing() {
  std::vector<geom::Segment> candidates;
  std::vector<int> labels;
  geom::SegmentId next_id = 0;
  for (size_t ci = 0; ci < clustering_.clusters.size(); ++ci) {
    const cluster::Cluster& c = clustering_.clusters[ci];
    // Preferred serving shape: the representative polyline's segments.
    std::vector<geom::Segment> segs;
    if (ci < representatives_.size() && representatives_[ci].size() >= 2) {
      segs = representatives_[ci].RawSegments();
    }
    if (segs.empty()) {
      // Sweep emitted nothing (or representatives are disabled): fall back
      // to at most kMaxFallbackMembers evenly-strided member segments —
      // a deterministic function of the member list, so FromResult and
      // Load agree.
      const size_t m = c.member_indices.size();
      const size_t take = std::min(m, kMaxFallbackMembers);
      for (size_t k = 0; k < take; ++k) {
        segs.push_back(store_.segment(c.member_indices[(k * m) / take]));
      }
    }
    for (geom::Segment& s : segs) {
      s.set_id(next_id++);
      s.set_trajectory_id(c.id);
      candidates.push_back(s);
      labels.push_back(c.id);
    }
  }
  candidates_ = traj::SegmentStore(std::move(candidates));
  candidate_label_ = std::move(labels);
  candidate_positions_.resize(candidates_.size());
  std::iota(candidate_positions_.begin(), candidate_positions_.end(),
            size_t{0});
}

common::Status ClusterSnapshot::Save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) {
    return common::Status::IOError("cannot open " + tmp + " for writing");
  }
  WriteRaw(out, kMagic);
  WriteRaw(out, kSnapshotFileVersion);

  WriteDouble(out, params_.eps);
  WriteDouble(out, params_.distance.w_perpendicular);
  WriteDouble(out, params_.distance.w_parallel);
  WriteDouble(out, params_.distance.w_angle);
  WriteRaw(out, static_cast<uint64_t>(params_.distance.directed ? 1 : 0));
  WriteRaw(out, static_cast<uint64_t>(params_.mdl.encoding));
  WriteDouble(out, params_.mdl.suppression_bits);
  WriteRaw(out, static_cast<uint64_t>(params_.mdl.directed ? 1 : 0));

  const uint64_t n = store_.size();
  WriteRaw(out, n);
  WriteRaw(out, static_cast<uint64_t>(store_.dims()));
  for (size_t i = 0; i < n; ++i) {
    const geom::Segment& s = store_.segment(i);
    WriteRaw(out, static_cast<int64_t>(s.id()));
    WriteRaw(out, static_cast<int64_t>(s.trajectory_id()));
    WriteDouble(out, s.weight());
    for (int d = 0; d < store_.dims(); ++d) WriteDouble(out, s.start()[d]);
    for (int d = 0; d < store_.dims(); ++d) WriteDouble(out, s.end()[d]);
  }

  WriteRaw(out, static_cast<uint64_t>(clustering_.clusters.size()));
  for (const cluster::Cluster& c : clustering_.clusters) {
    WriteRaw(out, static_cast<int64_t>(c.id));
    WriteRaw(out, static_cast<uint64_t>(c.member_indices.size()));
    for (const size_t idx : c.member_indices) {
      WriteRaw(out, static_cast<uint64_t>(idx));
    }
  }
  for (const int label : clustering_.labels) {
    WriteRaw(out, static_cast<int32_t>(label));
  }
  WriteRaw(out, static_cast<uint64_t>(clustering_.num_noise));

  WriteRaw(out, static_cast<uint64_t>(representatives_.size()));
  for (const traj::Trajectory& rep : representatives_) {
    WriteRaw(out, static_cast<int64_t>(rep.id()));
    WriteDouble(out, rep.weight());
    WriteString(out, rep.label());
    WriteRaw(out, static_cast<uint64_t>(rep.size()));
    for (const geom::Point& p : rep.points()) {
      for (int d = 0; d < store_.dims(); ++d) WriteDouble(out, p[d]);
    }
  }

  WriteRaw(out, kMagic);
  out.close();
  if (!out.good()) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return common::Status::IOError("failed writing snapshot file " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return common::Status::IOError("cannot move " + tmp + " into place: " +
                                   ec.message());
  }
  return common::Status::OK();
}

common::Result<std::unique_ptr<ClusterSnapshot>> ClusterSnapshot::Load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::Status::NotFound("no snapshot file at " + path);
  }

  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadRaw(in, &magic) || !ReadRaw(in, &version)) return Truncated(path);
  if (magic != kMagic) return Corrupt(path, "bad magic");
  if (version != kSnapshotFileVersion) {
    return Corrupt(path, "unsupported format version " +
                             std::to_string(version));
  }

  auto snap = std::unique_ptr<ClusterSnapshot>(new ClusterSnapshot());
  SnapshotParams& params = snap->params_;
  uint64_t directed = 0;
  uint64_t encoding = 0;
  uint64_t mdl_directed = 0;
  if (!ReadDouble(in, &params.eps) ||
      !ReadDouble(in, &params.distance.w_perpendicular) ||
      !ReadDouble(in, &params.distance.w_parallel) ||
      !ReadDouble(in, &params.distance.w_angle) || !ReadRaw(in, &directed) ||
      !ReadRaw(in, &encoding) ||
      !ReadDouble(in, &params.mdl.suppression_bits) ||
      !ReadRaw(in, &mdl_directed)) {
    return Truncated(path);
  }
  params.distance.directed = directed != 0;
  if (encoding >
      static_cast<uint64_t>(partition::MdlEncoding::kLog2Clamped)) {
    return Corrupt(path, "unknown MDL encoding");
  }
  params.mdl.encoding = static_cast<partition::MdlEncoding>(encoding);
  params.mdl.directed = mdl_directed != 0;

  uint64_t n = 0;
  uint64_t dims = 0;
  if (!ReadRaw(in, &n) || !ReadRaw(in, &dims)) return Truncated(path);
  if (dims < 2 || dims > static_cast<uint64_t>(geom::kMaxDims)) {
    return Corrupt(path, "dims out of range");
  }
  std::vector<geom::Segment> segments;
  segments.reserve(n);
  std::vector<double> coords(2 * dims);
  for (uint64_t i = 0; i < n; ++i) {
    int64_t id = 0;
    int64_t tid = 0;
    double weight = 0;
    if (!ReadRaw(in, &id) || !ReadRaw(in, &tid) || !ReadDouble(in, &weight)) {
      return Truncated(path);
    }
    for (uint64_t d = 0; d < 2 * dims; ++d) {
      if (!ReadDouble(in, &coords[d])) return Truncated(path);
    }
    segments.emplace_back(
        MakePoint(coords.data(), static_cast<int>(dims)),
        MakePoint(coords.data() + dims, static_cast<int>(dims)), id, tid,
        weight);
  }
  // Rebuilding from endpoints recomputes every invariant with the exact
  // expressions the original store used — bit-identical by the
  // SegmentStore contract, so serving matches the in-memory snapshot.
  snap->store_ = traj::SegmentStore(std::move(segments));

  uint64_t num_clusters = 0;
  if (!ReadRaw(in, &num_clusters)) return Truncated(path);
  snap->clustering_.clusters.resize(num_clusters);
  for (uint64_t ci = 0; ci < num_clusters; ++ci) {
    cluster::Cluster& c = snap->clustering_.clusters[ci];
    int64_t id = 0;
    uint64_t members = 0;
    if (!ReadRaw(in, &id) || !ReadRaw(in, &members)) return Truncated(path);
    c.id = static_cast<int>(id);
    if (members > n) return Corrupt(path, "cluster larger than the store");
    c.member_indices.resize(members);
    for (uint64_t k = 0; k < members; ++k) {
      uint64_t idx = 0;
      if (!ReadRaw(in, &idx)) return Truncated(path);
      if (idx >= n) return Corrupt(path, "member index out of range");
      c.member_indices[k] = idx;
    }
  }
  snap->clustering_.labels.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    int32_t label = 0;
    if (!ReadRaw(in, &label)) return Truncated(path);
    snap->clustering_.labels[i] = label;
  }
  uint64_t num_noise = 0;
  if (!ReadRaw(in, &num_noise)) return Truncated(path);
  snap->clustering_.num_noise = num_noise;

  uint64_t num_reps = 0;
  if (!ReadRaw(in, &num_reps)) return Truncated(path);
  if (num_reps != 0 && num_reps != num_clusters) {
    return Corrupt(path, "representatives not parallel to clusters");
  }
  snap->representatives_.resize(num_reps);
  for (uint64_t ri = 0; ri < num_reps; ++ri) {
    int64_t id = 0;
    double weight = 0;
    uint64_t label_len = 0;
    if (!ReadRaw(in, &id) || !ReadDouble(in, &weight) ||
        !ReadRaw(in, &label_len)) {
      return Truncated(path);
    }
    if (label_len > (1u << 20)) return Corrupt(path, "label too long");
    std::string label(label_len, '\0');
    in.read(label.data(), static_cast<std::streamsize>(label_len));
    if (!in.good()) return Truncated(path);
    traj::Trajectory rep(id, std::move(label), weight);
    uint64_t npoints = 0;
    if (!ReadRaw(in, &npoints)) return Truncated(path);
    for (uint64_t pi = 0; pi < npoints; ++pi) {
      for (uint64_t d = 0; d < dims; ++d) {
        if (!ReadDouble(in, &coords[d])) return Truncated(path);
      }
      rep.Add(MakePoint(coords.data(), static_cast<int>(dims)));
    }
    snap->representatives_[ri] = std::move(rep);
  }

  uint32_t trailing = 0;
  if (!ReadRaw(in, &trailing)) return Truncated(path);
  if (trailing != kMagic) return Corrupt(path, "missing trailing sentinel");
  // Exactly at EOF now; anything further is an appended/corrupt tail.
  if (in.peek() != std::ifstream::traits_type::eof()) {
    return Corrupt(path, "trailing bytes after sentinel");
  }

  snap->InitServing();
  return snap;
}

common::Status ClusterSnapshot::AssignSegments(
    const traj::SegmentStore& queries, common::Span<int> out_labels,
    common::Span<double> out_distance, const AssignOptions& options) const {
  if (out_labels.size() != queries.size() ||
      out_distance.size() != queries.size()) {
    return common::Status::InvalidArgument(
        "AssignSegments output spans must have queries.size() entries");
  }
  if (!queries.empty() && !candidates_.empty() &&
      queries.dims() != candidates_.dims()) {
    return common::Status::InvalidArgument(
        "query dims " + std::to_string(queries.dims()) +
        " != snapshot dims " + std::to_string(candidates_.dims()));
  }
  const distance::SegmentDistance dist(params_.distance);
  distance::BatchOptions batch;
  batch.kernel = options.kernel;
  common::ThreadPool& pool = common::SharedPool(options.num_threads);
  // Chunk boundaries vary with thread count, but each query's answer
  // depends only on its own prune context and the full candidate scan, so
  // the output is identical for every chunking (the sieve stage's argument,
  // test-pinned here too).
  pool.ParallelForChunked(0, queries.size(), [&](size_t lo, size_t hi) {
    thread_local std::vector<size_t> query_idx;
    thread_local std::vector<size_t> position;
    query_idx.resize(hi - lo);
    std::iota(query_idx.begin(), query_idx.end(), lo);
    position.resize(hi - lo);
    distance::NearestWithinEpsCross(
        queries, dist,
        common::Span<const size_t>(query_idx.data(), query_idx.size()),
        candidates_,
        common::Span<const size_t>(candidate_positions_.data(),
                                   candidate_positions_.size()),
        params_.eps, common::Span<size_t>(position.data(), position.size()),
        common::Span<double>(out_distance.data() + lo, hi - lo), batch);
    for (size_t k = 0; k < hi - lo; ++k) {
      out_labels[lo + k] = position[k] == distance::kNoNearest
                               ? cluster::kNoise
                               : candidate_label_[position[k]];
    }
  });
  return common::Status::OK();
}

common::Result<TrajectoryAssignment> ClusterSnapshot::AssignTrajectory(
    const traj::Trajectory& trajectory, const AssignOptions& options) const {
  if (trajectory.size() < 2) {
    return common::Status::InvalidArgument(
        "AssignTrajectory needs at least 2 points");
  }
  const partition::ApproximatePartitioner partitioner(params_.mdl);
  const std::vector<size_t> cps = partitioner.CharacteristicPoints(trajectory);
  std::vector<geom::Segment> segments =
      partition::MakePartitionSegments(trajectory, cps, /*first_segment_id=*/0);
  TrajectoryAssignment assignment;
  if (segments.empty()) {
    // Every partition degenerate (all points coincident): nothing to assign.
    return assignment;
  }
  const traj::SegmentStore query_store(std::move(segments));
  assignment.segment_labels.resize(query_store.size());
  assignment.segment_distances.resize(query_store.size());
  AssignOptions inline_options = options;
  inline_options.num_threads = 1;  // A handful of segments; fan-out is waste.
  TRACLUS_RETURN_NOT_OK(AssignSegments(
      query_store,
      common::Span<int>(assignment.segment_labels.data(),
                        assignment.segment_labels.size()),
      common::Span<double>(assignment.segment_distances.data(),
                           assignment.segment_distances.size()),
      inline_options));

  // Majority vote over the non-noise labels; the ordered map walk makes the
  // strictly-greater comparison break ties toward the smaller cluster id.
  std::map<int, size_t> votes;
  for (const int label : assignment.segment_labels) {
    if (label != cluster::kNoise) ++votes[label];
  }
  size_t best = 0;
  for (const auto& [label, count] : votes) {
    if (count > best) {
      best = count;
      assignment.cluster = label;
    }
  }
  return assignment;
}

}  // namespace traclus::core
