#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "cluster/chunked_neighborhood.h"
#include "cluster/dbscan_segments.h"
#include "cluster/neighbor_cache_file.h"
#include "cluster/neighborhood.h"
#include "cluster/neighborhood_index.h"
#include "cluster/optics_segments.h"
#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "partition/approximate_partitioner.h"
#include "partition/optimal_partitioner.h"
#include "partition/partitioner.h"

namespace traclus::core {

namespace {

common::Status CancelledIn(const char* stage) {
  return common::Status::Cancelled(std::string("run cancelled in stage '") +
                                   stage + "'");
}

void Report(const RunContext& ctx, const char* stage, double fraction) {
  if (ctx.progress) ctx.progress(stage, fraction);
}

// Shared by the two grouping adapters: the ε-neighborhood source of Lemma 3,
// bound to the run's segment store and the run's batch-kernel selection.
std::unique_ptr<cluster::NeighborhoodProvider> MakeProvider(
    const traj::SegmentStore& store, const distance::SegmentDistance& dist,
    bool use_index, distance::BatchKernel kernel) {
  if (use_index) {
    return std::make_unique<cluster::GridNeighborhoodIndex>(
        store, dist, /*cell_size=*/0.0, kernel);
  }
  return std::make_unique<cluster::BruteForceNeighborhood>(store, dist,
                                                           kernel);
}

// The run's provider plus, when RunContext::neighbor_cache_dir is set, the
// persistent file cache wrapping it. Both owners stay alive together — the
// cache holds a reference into the base for its miss path.
struct ProviderBundle {
  std::unique_ptr<cluster::NeighborhoodProvider> base;
  std::unique_ptr<cluster::FileNeighborhoodCache> cache;  // May be null.
  const cluster::NeighborhoodProvider& provider() const {
    return cache != nullptr ? static_cast<cluster::NeighborhoodProvider&>(
                                  *cache)
                            : *base;
  }
};

common::Result<ProviderBundle> MakeRunProvider(
    const traj::SegmentStore& store, const distance::SegmentDistance& dist,
    bool use_index, double eps, const RunContext& ctx) {
  ProviderBundle bundle;
  bundle.base = MakeProvider(store, dist, use_index, ctx.distance_kernel);
  if (!ctx.neighbor_cache_dir.empty()) {
    // Keyed by (store content, distance config, ε): a sieve sample or a
    // shard's sub-store hashes differently from the full database, so every
    // effective query store gets its own file and the decorators compose
    // without coordination.
    TRACLUS_ASSIGN_OR_RETURN(
        bundle.cache,
        cluster::FileNeighborhoodCache::Create(
            *bundle.base, store, dist.config(), eps, ctx.neighbor_cache_dir,
            common::SharedPool(ctx.num_threads)));
  }
  return bundle;
}

common::Status ValidateDistanceConfig(
    const distance::SegmentDistanceConfig& config) {
  if (!(config.w_perpendicular >= 0.0) || !(config.w_parallel >= 0.0) ||
      !(config.w_angle >= 0.0) || !std::isfinite(config.w_perpendicular) ||
      !std::isfinite(config.w_parallel) || !std::isfinite(config.w_angle)) {
    return common::Status::InvalidArgument(
        "distance weights (w_perpendicular, w_parallel, w_angle) must be "
        "finite and non-negative");
  }
  return common::Status::OK();
}

common::Status ValidateEpsMinLns(double eps, double min_lns) {
  if (!(eps > 0.0) || !std::isfinite(eps)) {
    return common::Status::OutOfRange(
        "eps must be finite and > 0 (Definition 4 neighborhood radius)");
  }
  if (!(min_lns >= 1.0) || !std::isfinite(min_lns)) {
    return common::Status::OutOfRange(
        "MinLns must be finite and >= 1 (Definition 5 density threshold)");
  }
  return common::Status::OK();
}

// Bounds-checks a clustering against the segment database it claims to
// describe (monolithic or chunked — only the size matters).
common::Status ValidateClusteringAgainstSize(
    const cluster::ClusteringResult& clustering, size_t size) {
  for (const auto& cluster : clustering.clusters) {
    for (const size_t member : cluster.member_indices) {
      if (member >= size) {
        return common::Status::FailedPrecondition(
            "clustering refers to segment index " + std::to_string(member) +
            " outside the provided segment database (size " +
            std::to_string(size) + ")");
      }
    }
  }
  return common::Status::OK();
}

common::Status ValidateClusteringAgainst(
    const cluster::ClusteringResult& clustering,
    const traj::SegmentStore& store) {
  return ValidateClusteringAgainstSize(clustering, store.size());
}

// The always-resident catalog columns of a chunked store, viewed the way
// DBSCAN's density accounting wants them.
cluster::SegmentSetView CatalogView(const traj::ChunkedSegmentStore& store) {
  cluster::SegmentSetView view;
  view.count = store.size();
  view.weights = store.weights();
  view.trajectory_ids = store.trajectory_ids();
  return view;
}

}  // namespace

// ---------------------------------------------------------------------------
// Chunked-store stage defaults
// ---------------------------------------------------------------------------

common::Result<cluster::ClusteringResult> GroupStage::RunChunked(
    const traj::ChunkedSegmentStore& store, const RunContext& ctx) const {
  TRACLUS_ASSIGN_OR_RETURN(traj::SegmentStore merged, store.Merge());
  return Run(merged, ctx);
}

common::Result<std::vector<traj::Trajectory>> RepresentativeStage::RunChunked(
    const traj::ChunkedSegmentStore& store,
    const cluster::ClusteringResult& clustering, const RunContext& ctx) const {
  TRACLUS_ASSIGN_OR_RETURN(traj::SegmentStore merged, store.Merge());
  return Run(merged, clustering, ctx);
}

// ---------------------------------------------------------------------------
// MdlPartitionStage
// ---------------------------------------------------------------------------

const char* MdlPartitionStage::name() const {
  return options_.variant == MdlVariant::kOptimal ? "partition/mdl-optimal"
                                                  : "partition/mdl-approx";
}

common::Status MdlPartitionStage::Validate() const {
  if (!(options_.mdl.suppression_bits >= 0.0) ||
      !std::isfinite(options_.mdl.suppression_bits)) {
    return common::Status::InvalidArgument(
        "MDL suppression_bits must be finite and non-negative");
  }
  return common::Status::OK();
}

common::Result<PartitionOutput> MdlPartitionStage::Run(
    const traj::TrajectoryDatabase& db, const RunContext& ctx) const {
  std::unique_ptr<partition::TrajectoryPartitioner> partitioner;
  switch (options_.variant) {
    case MdlVariant::kApproximate:
      partitioner =
          std::make_unique<partition::ApproximatePartitioner>(options_.mdl);
      break;
    case MdlVariant::kOptimal:
      partitioner =
          std::make_unique<partition::OptimalPartitioner>(options_.mdl);
      break;
  }

  Report(ctx, name(), 0.0);
  // Fig. 4 lines 01-03, parallelized per trajectory: the MDL scans are
  // independent (the partitioners are stateless), so each trajectory's
  // characteristic points land in their own slot. Segment materialization
  // stays sequential below because segment IDs must be consecutive in
  // database order — that pass is linear and cheap next to the MDL scans.
  const auto& trajectories = db.trajectories();
  PartitionOutput out;
  out.characteristic_points.resize(trajectories.size());
  auto& cps = out.characteristic_points;
  const common::CancellationToken* cancel = ctx.cancellation;
  try {
    common::SharedPool(ctx.num_threads)
        .ParallelFor(0, trajectories.size(), [&, cancel](size_t i) {
          common::ThrowIfCancelled(cancel);
          cps[i] = partitioner->CharacteristicPoints(trajectories[i]);
        });
  } catch (const common::OperationCancelled&) {
    return CancelledIn(name());
  }

  std::vector<geom::Segment> segments;
  for (size_t i = 0; i < trajectories.size(); ++i) {
    std::vector<geom::Segment> partitions = partition::MakePartitionSegments(
        trajectories[i], cps[i],
        static_cast<geom::SegmentId>(segments.size()));
    segments.insert(segments.end(), partitions.begin(), partitions.end());
  }
  // Freeze the database: one O(n) pass computes every per-segment invariant
  // the downstream stages would otherwise recompute per distance call.
  out.store = traj::SegmentStore(std::move(segments));
  Report(ctx, name(), 1.0);
  return out;
}

// ---------------------------------------------------------------------------
// DbscanGroupStage
// ---------------------------------------------------------------------------

const char* DbscanGroupStage::name() const { return "group/dbscan"; }

common::Status DbscanGroupStage::Validate() const {
  TRACLUS_RETURN_NOT_OK(ValidateEpsMinLns(options_.eps, options_.min_lns));
  return ValidateDistanceConfig(options_.distance);
}

common::Result<cluster::ClusteringResult> DbscanGroupStage::Run(
    const traj::SegmentStore& store, const RunContext& ctx) const {
  const distance::SegmentDistance dist(options_.distance);
  TRACLUS_ASSIGN_OR_RETURN(
      const ProviderBundle bundle,
      MakeRunProvider(store, dist, options_.use_index, options_.eps, ctx));

  cluster::DbscanOptions o;
  o.eps = options_.eps;
  o.min_lns = options_.min_lns;
  // A shard-local run (ShardedGroupStage) sees only one shard's fragment of
  // each cross-border cluster, so the whole-database cardinality filter must
  // wait for the halo merge — the sharded driver applies it once, globally.
  o.min_trajectory_cardinality =
      ctx.shard_local ? 0.0 : options_.min_trajectory_cardinality;
  o.use_weights = options_.use_weights;
  o.num_threads = ctx.num_threads;
  o.batch_block = options_.batch_block;
  o.cancellation = ctx.cancellation;
  if (ctx.progress) {
    const ProgressFn& sink = ctx.progress;
    const char* stage = name();
    o.progress = [&sink, stage](double fraction) { sink(stage, fraction); };
  }
  try {
    // Fig. 4 line 04.
    return cluster::DbscanSegments(store, bundle.provider(), o);
  } catch (const common::OperationCancelled&) {
    return CancelledIn(name());
  }
}

common::Result<cluster::ClusteringResult> DbscanGroupStage::RunChunked(
    const traj::ChunkedSegmentStore& store, const RunContext& ctx) const {
  const distance::SegmentDistance dist(options_.distance);
  std::unique_ptr<cluster::NeighborhoodProvider> provider;
  if (options_.use_index) {
    provider = std::make_unique<cluster::ChunkedGridNeighborhood>(
        store, dist, /*cell_size=*/0.0, ctx.distance_kernel);
  } else {
    provider = std::make_unique<cluster::ChunkedBruteForceNeighborhood>(
        store, dist, ctx.distance_kernel);
  }

  cluster::DbscanOptions o;
  o.eps = options_.eps;
  o.min_lns = options_.min_lns;
  // A shard-local run (ShardedGroupStage) sees only one shard's fragment of
  // each cross-border cluster, so the whole-database cardinality filter must
  // wait for the halo merge — the sharded driver applies it once, globally.
  o.min_trajectory_cardinality =
      ctx.shard_local ? 0.0 : options_.min_trajectory_cardinality;
  o.use_weights = options_.use_weights;
  o.num_threads = ctx.num_threads;
  o.batch_block = options_.batch_block;
  o.cancellation = ctx.cancellation;
  if (ctx.progress) {
    const ProgressFn& sink = ctx.progress;
    const char* stage = name();
    o.progress = [&sink, stage](double fraction) { sink(stage, fraction); };
  }
  try {
    // The same Fig. 12 walk as Run: expansion reads the catalog view, the
    // ε-queries fault payload chunks under the store's residency cap.
    return cluster::DbscanSegments(CatalogView(store), *provider, o);
  } catch (const common::OperationCancelled&) {
    return CancelledIn(name());
  }
}

// ---------------------------------------------------------------------------
// OpticsGroupStage
// ---------------------------------------------------------------------------

const char* OpticsGroupStage::name() const { return "group/optics"; }

common::Status OpticsGroupStage::Validate() const {
  TRACLUS_RETURN_NOT_OK(ValidateEpsMinLns(options_.eps, options_.min_lns));
  // ≤ 0 is the documented "use eps" sentinel; anything else must be a real
  // cut — a NaN (e.g. from a buggy upstream estimator) must surface here, not
  // silently fall back.
  if (std::isnan(options_.eps_cut) || options_.eps_cut > options_.eps) {
    return common::Status::OutOfRange(
        "OPTICS extraction cut eps_cut must be <= the generating eps "
        "(or <= 0 for 'use eps')");
  }
  return ValidateDistanceConfig(options_.distance);
}

common::Result<cluster::ClusteringResult> OpticsGroupStage::Run(
    const traj::SegmentStore& store, const RunContext& ctx) const {
  if (ctx.cancellation != nullptr && ctx.cancellation->cancelled()) {
    return CancelledIn(name());
  }
  Report(ctx, name(), 0.0);
  const distance::SegmentDistance dist(options_.distance);
  TRACLUS_ASSIGN_OR_RETURN(
      const ProviderBundle bundle,
      MakeRunProvider(store, dist, options_.use_index, options_.eps, ctx));
  cluster::OpticsOptions o;
  o.eps = options_.eps;
  o.min_lns = options_.min_lns;
  o.kernel = ctx.distance_kernel;
  o.cancellation = ctx.cancellation;
  if (ctx.progress) {
    const ProgressFn& sink = ctx.progress;
    const char* stage = name();
    o.progress = [&sink, stage](double fraction) { sink(stage, fraction); };
  }
  try {
    // The ordering walk is inherently sequential (ctx.num_threads does not
    // apply); cancellation is polled once per ordering step inside.
    const auto optics = cluster::OpticsSegments(store, dist,
                                                bundle.provider(), o);
    const double cut =
        options_.eps_cut > 0.0 ? options_.eps_cut : options_.eps;
    // Same shard-local contract as the DBSCAN stage: the cardinality filter
    // is a whole-database decision, deferred to the sharded driver.
    return cluster::ExtractDbscanClustering(
        store, optics, cut, options_.min_lns,
        ctx.shard_local ? 0.0 : options_.min_trajectory_cardinality);
  } catch (const common::OperationCancelled&) {
    return CancelledIn(name());
  }
}

// ---------------------------------------------------------------------------
// SweepRepresentativeStage
// ---------------------------------------------------------------------------

const char* SweepRepresentativeStage::name() const {
  return options_.method == cluster::RepresentativeMethod::kRotation2D
             ? "represent/sweep-rotation2d"
             : "represent/sweep-projection";
}

common::Status SweepRepresentativeStage::Validate() const {
  if (!(options_.min_lns >= 0.0) || !std::isfinite(options_.min_lns)) {
    return common::Status::OutOfRange(
        "representative MinLns must be finite and non-negative");
  }
  if (!(options_.gamma >= 0.0) || !std::isfinite(options_.gamma)) {
    return common::Status::InvalidArgument(
        "smoothing parameter gamma must be finite and non-negative");
  }
  return common::Status::OK();
}

common::Result<std::vector<traj::Trajectory>> SweepRepresentativeStage::Run(
    const traj::SegmentStore& store,
    const cluster::ClusteringResult& clustering, const RunContext& ctx) const {
  TRACLUS_RETURN_NOT_OK(ValidateClusteringAgainst(clustering, store));

  cluster::RepresentativeOptions o;
  o.min_lns = options_.min_lns;
  o.gamma = options_.gamma;
  o.method = options_.method;
  o.use_weights = options_.use_weights;

  Report(ctx, name(), 0.0);
  // Fig. 4 lines 05-06, one independent sweep per cluster.
  std::vector<traj::Trajectory> reps(clustering.clusters.size());
  const common::CancellationToken* cancel = ctx.cancellation;
  try {
    common::SharedPool(ctx.num_threads)
        .ParallelFor(0, clustering.clusters.size(), [&, cancel](size_t i) {
          common::ThrowIfCancelled(cancel);
          reps[i] = cluster::RepresentativeTrajectory(
              store, clustering.clusters[i], o);
        });
  } catch (const common::OperationCancelled&) {
    return CancelledIn(name());
  }
  Report(ctx, name(), 1.0);
  return reps;
}

common::Result<std::vector<traj::Trajectory>>
SweepRepresentativeStage::RunChunked(
    const traj::ChunkedSegmentStore& store,
    const cluster::ClusteringResult& clustering, const RunContext& ctx) const {
  TRACLUS_RETURN_NOT_OK(
      ValidateClusteringAgainstSize(clustering, store.size()));

  cluster::RepresentativeOptions o;
  o.min_lns = options_.min_lns;
  o.gamma = options_.gamma;
  o.method = options_.method;
  o.use_weights = options_.use_weights;

  Report(ctx, name(), 0.0);
  // Cluster-parallel across the run's pool: each iteration gathers one
  // cluster's member segments (faulting chunks through the bounded cache,
  // whose interior lock already serializes concurrent faults — pinned by
  // the chunked-store fault-hammer test), freezes them into a member-local
  // store, and sweeps that. Per-cluster work touches only its own
  // index-addressed reps slot, and the sweep plus the average-direction
  // axis read only member-indexed values plus cluster.id, so output is
  // byte-identical to the serial walk for every thread count.
  std::vector<traj::Trajectory> reps(clustering.clusters.size());
  common::Mutex error_mu;
  common::Status first_error;  // Guarded by error_mu (local — no annotation).
  try {
    common::SharedPool(ctx.num_threads)
        .ParallelFor(0, clustering.clusters.size(), [&](size_t i) {
          common::ThrowIfCancelled(ctx.cancellation);
          const cluster::Cluster& c = clustering.clusters[i];
          std::vector<geom::Segment> members;
          members.reserve(c.member_indices.size());
          for (const size_t idx : c.member_indices) {
            const size_t chunk_id = store.chunk_of(idx);
            const auto chunk = store.Chunk(chunk_id);
            if (!chunk.ok()) {
              common::MutexLock lock(error_mu);
              if (first_error.ok()) first_error = chunk.status();
              return;
            }
            members.push_back(
                (*chunk)->segments()[idx - store.chunk_begin(chunk_id)]);
          }
          cluster::Cluster local;
          local.id = c.id;
          local.member_indices.resize(c.member_indices.size());
          std::iota(local.member_indices.begin(), local.member_indices.end(),
                    size_t{0});
          reps[i] = cluster::RepresentativeTrajectory(
              traj::SegmentStore(std::move(members)), local, o);
        });
  } catch (const common::OperationCancelled&) {
    return CancelledIn(name());
  }
  if (!first_error.ok()) return first_error;
  Report(ctx, name(), 1.0);
  return reps;
}

// ---------------------------------------------------------------------------
// TraclusEngine::Builder
// ---------------------------------------------------------------------------

TraclusEngine::Builder::Builder() {
  UseMdlPartitioning();
  UseDbscanGrouping(DbscanGroupOptions{});
  UseSweepRepresentatives();
}

TraclusEngine::Builder& TraclusEngine::Builder::SetPartitionStage(
    std::shared_ptr<const PartitionStage> stage) {
  partition_ = std::move(stage);
  return *this;
}

TraclusEngine::Builder& TraclusEngine::Builder::SetGroupStage(
    std::shared_ptr<const GroupStage> stage) {
  group_ = std::move(stage);
  return *this;
}

TraclusEngine::Builder& TraclusEngine::Builder::SetRepresentativeStage(
    std::shared_ptr<const RepresentativeStage> stage) {
  representative_ = std::move(stage);
  return *this;
}

TraclusEngine::Builder& TraclusEngine::Builder::UseMdlPartitioning(
    const MdlPartitionOptions& options) {
  return SetPartitionStage(std::make_shared<MdlPartitionStage>(options));
}

TraclusEngine::Builder& TraclusEngine::Builder::UseDbscanGrouping(
    const DbscanGroupOptions& options) {
  return SetGroupStage(std::make_shared<DbscanGroupStage>(options));
}

TraclusEngine::Builder& TraclusEngine::Builder::UseOpticsGrouping(
    const OpticsGroupOptions& options) {
  return SetGroupStage(std::make_shared<OpticsGroupStage>(options));
}

TraclusEngine::Builder& TraclusEngine::Builder::UseSweepRepresentatives(
    const SweepRepresentativeOptions& options) {
  return SetRepresentativeStage(
      std::make_shared<SweepRepresentativeStage>(options));
}

TraclusEngine::Builder& TraclusEngine::Builder::WithSieveGrouping(
    const SieveGroupOptions& options) {
  // Wraps whatever backend is configured right now; with none configured the
  // decorator holds a null inner stage and Build()'s Validate sweep reports
  // it (keeping the builder's errors-at-Build contract).
  return SetGroupStage(
      std::make_shared<SieveGroupStage>(std::move(group_), options));
}

TraclusEngine::Builder& TraclusEngine::Builder::WithSieveGrouping(
    AutoK auto_k, SieveGroupOptions options) {
  options.auto_k = auto_k;
  return WithSieveGrouping(options);
}

TraclusEngine::Builder& TraclusEngine::Builder::WithShardedGrouping(
    const ShardedGroupOptions& options) {
  // Same wrap-whatever-is-configured contract as WithSieveGrouping; a null
  // inner stage is reported by Build()'s Validate sweep.
  return SetGroupStage(
      std::make_shared<ShardedGroupStage>(std::move(group_), options));
}

TraclusEngine::Builder& TraclusEngine::Builder::WithoutRepresentatives() {
  representative_.reset();
  return *this;
}

TraclusEngine::Builder& TraclusEngine::Builder::SetDefaultNumThreads(
    int num_threads) {
  default_num_threads_ = num_threads;
  return *this;
}

TraclusEngine::Builder& TraclusEngine::Builder::WithNeighborCache(
    std::string directory) {
  default_neighbor_cache_dir_ = std::move(directory);
  return *this;
}

common::Result<TraclusEngine> TraclusEngine::Builder::Build() const {
  if (partition_ == nullptr) {
    return common::Status::InvalidArgument(
        "engine requires a partition stage (SetPartitionStage was given "
        "nullptr)");
  }
  if (group_ == nullptr) {
    return common::Status::InvalidArgument(
        "engine requires a group stage (SetGroupStage was given nullptr)");
  }
  TRACLUS_RETURN_NOT_OK(partition_->Validate());
  TRACLUS_RETURN_NOT_OK(group_->Validate());
  if (representative_ != nullptr) {
    TRACLUS_RETURN_NOT_OK(representative_->Validate());
  }
  return TraclusEngine(partition_, group_, representative_,
                       default_num_threads_, default_neighbor_cache_dir_);
}

// ---------------------------------------------------------------------------
// TraclusEngine
// ---------------------------------------------------------------------------

common::Result<TraclusEngine> TraclusEngine::FromConfig(
    const TraclusConfig& config) {
  Builder builder;

  MdlPartitionOptions partition;
  partition.mdl = config.partition;
  partition.variant =
      config.partitioning_algorithm == PartitioningAlgorithm::kOptimalMdl
          ? MdlVariant::kOptimal
          : MdlVariant::kApproximate;
  builder.UseMdlPartitioning(partition);

  DbscanGroupOptions group;
  group.eps = config.eps;
  group.min_lns = config.min_lns;
  group.min_trajectory_cardinality = config.min_trajectory_cardinality;
  group.use_weights = config.use_weights;
  group.use_index = config.use_index;
  group.distance = config.distance;
  builder.UseDbscanGrouping(group);

  if (config.generate_representatives) {
    builder.UseSweepRepresentatives(RepresentativeOptionsFromConfig(config));
  } else {
    builder.WithoutRepresentatives();
  }

  builder.SetDefaultNumThreads(config.num_threads);
  return builder.Build();
}

SweepRepresentativeOptions RepresentativeOptionsFromConfig(
    const TraclusConfig& config) {
  SweepRepresentativeOptions options;
  options.min_lns = config.representative_min_lns < 0.0
                        ? config.min_lns
                        : config.representative_min_lns;
  options.gamma = std::max(config.gamma, 0.0);
  options.method = config.representative_method;
  options.use_weights = config.use_weights;
  return options;
}

RunContext TraclusEngine::ResolveContext(const RunContext& ctx) const {
  RunContext resolved = ctx;
  if (resolved.num_threads == 0) {
    resolved.num_threads = default_num_threads_;
  }
  // < 0 = "hardware concurrency regardless of the engine default", which is
  // what the pool layer's 0 means.
  if (resolved.num_threads < 0) resolved.num_threads = 0;
  if (resolved.neighbor_cache_dir.empty()) {
    resolved.neighbor_cache_dir = default_neighbor_cache_dir_;
  }
  return resolved;
}

common::Result<PartitionOutput> TraclusEngine::PartitionImpl(
    const traj::TrajectoryDatabase& db, const RunContext& rctx) const {
  if (rctx.cancellation != nullptr && rctx.cancellation->cancelled()) {
    return common::Status::Cancelled("run cancelled before the partition "
                                     "stage");
  }
  if (db.size() == 0) {
    return common::Status::FailedPrecondition(
        "trajectory database is empty (partitioning needs at least one "
        "trajectory)");
  }
  return partition_->Run(db, rctx);
}

common::Result<cluster::ClusteringResult> TraclusEngine::GroupImpl(
    const traj::SegmentStore& store, const RunContext& rctx) const {
  if (rctx.cancellation != nullptr && rctx.cancellation->cancelled()) {
    return common::Status::Cancelled("run cancelled before the group stage");
  }
  return group_->Run(store, rctx);
}

common::Result<std::vector<traj::Trajectory>>
TraclusEngine::RepresentativesImpl(const traj::SegmentStore& store,
                                   const cluster::ClusteringResult& clustering,
                                   const RunContext& rctx) const {
  if (representative_ == nullptr) {
    return common::Status::FailedPrecondition(
        "engine was built without a representative stage "
        "(WithoutRepresentatives)");
  }
  if (rctx.cancellation != nullptr && rctx.cancellation->cancelled()) {
    return common::Status::Cancelled(
        "run cancelled before the representative stage");
  }
  return representative_->Run(store, clustering, rctx);
}

common::Result<PartitionOutput> TraclusEngine::Partition(
    const traj::TrajectoryDatabase& db, const RunContext& ctx) const {
  return PartitionImpl(db, ResolveContext(ctx));
}

common::Result<cluster::ClusteringResult> TraclusEngine::Group(
    const traj::SegmentStore& store, const RunContext& ctx) const {
  return GroupImpl(store, ResolveContext(ctx));
}

common::Result<std::vector<traj::Trajectory>> TraclusEngine::Representatives(
    const traj::SegmentStore& store,
    const cluster::ClusteringResult& clustering, const RunContext& ctx) const {
  return RepresentativesImpl(store, clustering, ResolveContext(ctx));
}

common::Result<TraclusResult> TraclusEngine::Run(
    const traj::TrajectoryDatabase& db, const RunContext& ctx) const {
  const RunContext rctx = ResolveContext(ctx);
  TraclusResult out;
  {
    auto partitioned = PartitionImpl(db, rctx);
    if (!partitioned.ok()) return partitioned.status();
    out.store = std::move(partitioned->store);
    out.characteristic_points = std::move(partitioned->characteristic_points);
  }
  {
    auto grouped = GroupImpl(out.store, rctx);
    if (!grouped.ok()) return grouped.status();
    out.clustering = std::move(grouped).ValueOrDie();
  }
  if (representative_ != nullptr) {
    auto reps = RepresentativesImpl(out.store, out.clustering, rctx);
    if (!reps.ok()) return reps.status();
    out.representatives = std::move(reps).ValueOrDie();
  }
  return out;
}

common::Result<TraclusResult> TraclusEngine::Run(
    traj::TrajectorySource& source, const RunContext& ctx) const {
  const RunContext rctx = ResolveContext(ctx);
  if (rctx.cancellation != nullptr && rctx.cancellation->cancelled()) {
    return common::Status::Cancelled("run cancelled before the partition "
                                     "stage");
  }

  traj::ChunkedStoreOptions store_options;
  store_options.chunk_capacity = rctx.chunk_capacity;
  store_options.max_resident_chunks = rctx.max_resident_chunks;
  auto chunked = std::make_shared<traj::ChunkedSegmentStore>(store_options);

  // Ingest: pull trajectories in small blocks, partition each block on
  // arrival, and append the segments straight into the chunked store. Only
  // one block of trajectories is ever resident — the full TrajectoryDatabase
  // is never materialized. The per-block partition runs with progress muted
  // (a source has no known length, so block fractions would be meaningless);
  // the outer stage start/end reports bracket the whole ingest instead.
  RunContext block_ctx = rctx;
  block_ctx.progress = nullptr;
  constexpr size_t kIngestBlock = 256;

  TraclusResult out;
  out.chunked_store = chunked;
  Report(rctx, partition_->name(), 0.0);

  // Trajectories pulled so far == the position the eager TrajectoryDatabase
  // would have stored the next one at; negative ids are assigned from it,
  // replicating TrajectoryDatabase::Add across block boundaries.
  geom::TrajectoryId next_position = 0;
  // Segments appended so far == the eager path's first_segment_id for the
  // next trajectory's partitions; block-local ids are rebased by it (an
  // exact integer add), replicating the consecutive-in-database-order
  // contract of the partition stage.
  size_t segments_so_far = 0;
  bool at_end = false;
  while (!at_end) {
    traj::TrajectoryDatabase block;
    while (block.size() < kIngestBlock) {
      traj::Trajectory tr;
      TRACLUS_ASSIGN_OR_RETURN(const bool more, source.Next(&tr));
      if (!more) {
        at_end = true;
        break;
      }
      if (tr.id() < 0) tr.set_id(next_position);
      ++next_position;
      block.Add(std::move(tr));
    }
    if (block.size() == 0) break;

    TRACLUS_ASSIGN_OR_RETURN(PartitionOutput partitioned,
                             partition_->Run(block, block_ctx));
    std::vector<geom::Segment> segments = partitioned.store.segments();
    for (geom::Segment& s : segments) {
      s.set_id(s.id() + static_cast<geom::SegmentId>(segments_so_far));
    }
    segments_so_far += segments.size();
    TRACLUS_RETURN_NOT_OK(chunked->AppendAll(segments));
    for (auto& cps : partitioned.characteristic_points) {
      out.characteristic_points.push_back(std::move(cps));
    }
  }
  if (next_position == 0) {
    return common::Status::FailedPrecondition(
        "trajectory database is empty (partitioning needs at least one "
        "trajectory)");
  }
  TRACLUS_RETURN_NOT_OK(chunked->Finalize());
  Report(rctx, partition_->name(), 1.0);

  if (rctx.max_resident_chunks == 0) {
    // Unbounded residency: merge the chunks back into the monolithic store
    // (bit-identical to the eager freeze of the same segments) and run the
    // existing grouping/representative stages on it.
    TRACLUS_ASSIGN_OR_RETURN(traj::SegmentStore merged, chunked->Merge());
    out.store = std::move(merged);
    {
      auto grouped = GroupImpl(out.store, rctx);
      if (!grouped.ok()) return grouped.status();
      out.clustering = std::move(grouped).ValueOrDie();
    }
    if (representative_ != nullptr) {
      auto reps = RepresentativesImpl(out.store, out.clustering, rctx);
      if (!reps.ok()) return reps.status();
      out.representatives = std::move(reps).ValueOrDie();
    }
    return out;
  }

  // Bounded residency: the out-of-core path. out.store stays empty —
  // materializing it would defeat the cap — and the stages run their
  // chunked entry points against the store's bounded reader cache.
  if (rctx.cancellation != nullptr && rctx.cancellation->cancelled()) {
    return common::Status::Cancelled("run cancelled before the group stage");
  }
  {
    auto grouped = group_->RunChunked(*chunked, rctx);
    if (!grouped.ok()) return grouped.status();
    out.clustering = std::move(grouped).ValueOrDie();
  }
  if (representative_ != nullptr) {
    if (rctx.cancellation != nullptr && rctx.cancellation->cancelled()) {
      return common::Status::Cancelled(
          "run cancelled before the representative stage");
    }
    auto reps = representative_->RunChunked(*chunked, out.clustering, rctx);
    if (!reps.ok()) return reps.status();
    out.representatives = std::move(reps).ValueOrDie();
  }
  return out;
}

}  // namespace traclus::core
