#ifndef TRACLUS_CORE_ENGINE_H_
#define TRACLUS_CORE_ENGINE_H_

// TraclusEngine: the composable, error-aware pipeline API.
//
// The paper presents TRACLUS as a three-stage pipeline (Fig. 4): partition →
// group → represent. The engine makes that structure the public API: each
// stage is a pluggable interface (core/stages.h), an engine is an immutable
// assembly of one implementation per stage built by TraclusEngine::Builder
// (which validates the whole configuration up front), and every entry point
// returns common::Result<T> — invalid configuration, empty input, ε/MinLns
// domain errors, and cancellations come back as typed Status codes instead of
// silent defaults or asserts. Execution parameters (threads, progress,
// cancellation) travel per run in a RunContext, so one engine can serve many
// concurrent runs.
//
//   auto engine = core::TraclusEngine::Builder()
//                     .UseMdlPartitioning()
//                     .UseDbscanGrouping({.eps = 12.0, .min_lns = 4})
//                     .UseSweepRepresentatives({.min_lns = 4})
//                     .Build();
//   if (!engine.ok()) { /* engine.status() says what is wrong */ }
//   auto result = engine->Run(db);
//
// The legacy monolithic `core::Traclus` façade has been removed; the golden
// pipeline tests (tests/engine_api_test.cc + tests/golden/) pin the engine's
// output bit-for-bit across refactors instead.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/representative.h"
#include "common/result.h"
#include "core/sharded_stage.h"
#include "core/sieve_stage.h"
#include "core/stages.h"
#include "distance/segment_distance.h"
#include "partition/mdl.h"
#include "traj/chunked_store.h"
#include "traj/segment_store.h"
#include "traj/source.h"
#include "traj/trajectory.h"
#include "traj/trajectory_database.h"

namespace traclus::core {

/// Which partitioning algorithm drives the partitioning phase (legacy
/// configuration; engine users pick MdlVariant directly).
enum class PartitioningAlgorithm {
  kApproximateMdl,  ///< Fig. 8, O(n) — the paper's algorithm and the default.
  kOptimalMdl,      ///< Exact DP optimum, O(n²) edges; experiments only.
};

/// Full configuration of the TRACLUS pipeline (Fig. 4) as one flat struct —
/// the legacy shape, still accepted by TraclusEngine::FromConfig. New code
/// should prefer the builder, which validates eagerly and admits custom
/// stages.
struct TraclusConfig {
  /// --- Partitioning phase (§3) ---
  partition::MdlOptions partition;
  PartitioningAlgorithm partitioning_algorithm =
      PartitioningAlgorithm::kApproximateMdl;

  /// --- Distance function (§2.3) ---
  distance::SegmentDistanceConfig distance;

  /// --- Grouping phase (§4) ---
  double eps = 25.0;       ///< Neighborhood radius ε.
  double min_lns = 5.0;    ///< MinLns.
  /// Trajectory-cardinality threshold (negative: use min_lns; 0: disabled).
  double min_trajectory_cardinality = -1.0;
  /// Weighted-trajectory extension (§4.2 / §7.1).
  bool use_weights = false;
  /// Use the grid spatial index for ε-neighborhood queries (Lemma 3); when
  /// false, brute-force scans are used (the O(n²) configuration).
  bool use_index = true;

  /// --- Representative trajectories (§4.3) ---
  bool generate_representatives = true;
  /// Sweep hit threshold; negative means "use min_lns" (the paper's choice).
  double representative_min_lns = -1.0;
  /// Smoothing parameter γ (Fig. 15): minimum sweep gap between emitted
  /// representative points. 0 disables smoothing.
  double gamma = 0.0;
  cluster::RepresentativeMethod representative_method =
      cluster::RepresentativeMethod::kProjection;

  /// --- Execution (not part of the paper's algorithm) ---
  /// Worker threads for the parallel phases: per-trajectory MDL partitioning,
  /// the blocked ε-neighborhood queries of the grouping phase, and per-cluster
  /// representative generation. 0 = hardware concurrency; 1 = run everything
  /// inline on the calling thread, reproducing the original single-threaded
  /// execution exactly. Results are identical for every value — parallel work
  /// is assembled in deterministic index order, never in completion order.
  int num_threads = 0;
};

/// Everything TRACLUS produces, including intermediate artifacts that the
/// paper's experiments measure.
struct TraclusResult {
  /// The segment database D accumulated by the partitioning phase (Fig. 4
  /// line 03): all trajectory partitions with provenance plus their cached
  /// invariants, as a traj::SegmentStore.
  traj::SegmentStore store;
  /// Characteristic-point indices per input trajectory (parallel to the input
  /// database order).
  std::vector<std::vector<size_t>> characteristic_points;
  /// The grouping-phase output O = {C_1, ..., C_numclus}.
  cluster::ClusteringResult clustering;
  /// One representative trajectory per cluster (empty when disabled).
  std::vector<traj::Trajectory> representatives;
  /// Streaming runs only (Run(TrajectorySource&)): the chunked segment
  /// database the run ingested into; null for eager runs. When the run was
  /// residency-capped (RunContext::max_resident_chunks > 0), `store` above is
  /// left EMPTY — materializing it would defeat the cap — and consumers read
  /// segments through this store's Chunk()/Merge(). Uncapped streaming runs
  /// fill both (`store` is the merged database the grouping phase ran on).
  std::shared_ptr<const traj::ChunkedSegmentStore> chunked_store;

  /// Array-of-structs view of the segment database (borrowed from the store).
  const std::vector<geom::Segment>& segments() const {
    return store.segments();
  }
};

/// An immutable assembly of the three pipeline stages. Thread-compatible:
/// every entry point is const, and per-run state lives in the RunContext, so
/// one engine may serve concurrent runs.
///
/// Error contract (every entry point returns common::Result<T>):
///   kInvalidArgument     — configuration that can never be valid (missing
///                          stage, negative γ, negative distance weights).
///   kOutOfRange          — ε/MinLns outside their domains (ε ≤ 0, MinLns <
///                          1, OPTICS cut > generating ε).
///   kFailedPrecondition  — structurally empty input (no trajectories, or a
///                          clustering that does not match the segment set).
///   kCancelled           — the RunContext's cancellation token fired.
class TraclusEngine {
 public:
  /// Assembles and validates an engine. Every `Use*` shortcut wires one of
  /// the library's stage adapters (core/stages.h); the `Set*Stage` overloads
  /// accept custom implementations. `Build()` runs every stage's `Validate()`
  /// and returns the first failure instead of an engine — misconfiguration
  /// surfaces before any data is touched, never as an assert mid-run.
  class Builder {
   public:
    Builder();

    /// Replaces the partition stage with a custom implementation.
    Builder& SetPartitionStage(std::shared_ptr<const PartitionStage> stage);
    /// Replaces the group stage with a custom implementation.
    Builder& SetGroupStage(std::shared_ptr<const GroupStage> stage);
    /// Replaces the representative stage; pass nullptr to disable stage 3
    /// (equivalent to WithoutRepresentatives).
    Builder& SetRepresentativeStage(
        std::shared_ptr<const RepresentativeStage> stage);

    /// Stage adapters over the library's algorithms.
    Builder& UseMdlPartitioning(const MdlPartitionOptions& options = {});
    Builder& UseDbscanGrouping(const DbscanGroupOptions& options);
    Builder& UseOpticsGrouping(const OpticsGroupOptions& options);
    Builder& UseSweepRepresentatives(
        const SweepRepresentativeOptions& options = {});
    /// Wraps the currently configured group stage in a SieveGroupStage
    /// (core/sieve_stage.h): runs whose RunContext sets `sieve` ≥ 2 group
    /// only that fraction of trajectories through the wrapped backend and
    /// batch-assign the rest to the nearest cluster within `options.eps`.
    /// Call after the grouping backend is chosen (Use*Grouping /
    /// SetGroupStage); calling it with no group stage configured is a Build()
    /// validation failure.
    Builder& WithSieveGrouping(const SieveGroupOptions& options);
    /// AutoK convenience overload: stamps `auto_k` into the options and
    /// wraps as above, so runs that leave RunContext::sieve at 0 derive the
    /// stride from the store size (k = ceil(size / target_sample)).
    Builder& WithSieveGrouping(AutoK auto_k, SieveGroupOptions options = {});
    /// Wraps the currently configured group stage in a ShardedGroupStage
    /// (core/sharded_stage.h): runs whose RunContext sets `shards` ≥ 2
    /// decompose the segment database over a cell grid, run the wrapped
    /// backend independently per shard (in parallel across the run's
    /// threads), and merge shard-border clusters through a halo exchange
    /// behind the communicator seam. Same call-after-the-backend contract as
    /// WithSieveGrouping. Composes with the sieve: apply sharding first so
    /// the sieve's sampled sub-database is what gets sharded.
    Builder& WithShardedGrouping(const ShardedGroupOptions& options);
    /// Disables representative generation (stage 3 is skipped; Run returns an
    /// empty `representatives` vector).
    Builder& WithoutRepresentatives();

    /// Default worker-thread count for runs whose RunContext leaves
    /// num_threads at 0. 0 = hardware concurrency.
    Builder& SetDefaultNumThreads(int num_threads);

    /// Default persistent neighbor-cache directory for runs whose RunContext
    /// leaves neighbor_cache_dir empty (see RunContext::neighbor_cache_dir
    /// for semantics). Empty (the default) disables the cache.
    Builder& WithNeighborCache(std::string directory);

    /// Validates the assembly and every stage's configuration; returns the
    /// engine or the first validation failure.
    common::Result<TraclusEngine> Build() const;

   private:
    std::shared_ptr<const PartitionStage> partition_;
    std::shared_ptr<const GroupStage> group_;
    /// Null = stage 3 disabled (WithoutRepresentatives).
    std::shared_ptr<const RepresentativeStage> representative_;
    int default_num_threads_ = 0;
    std::string default_neighbor_cache_dir_;
  };

  /// Maps the legacy flat TraclusConfig onto the equivalent builder assembly.
  /// See the README migration table for the field-by-field correspondence.
  static common::Result<TraclusEngine> FromConfig(const TraclusConfig& config);

  /// Runs the full pipeline (Fig. 4). Stage errors and cancellation propagate;
  /// a database with zero trajectories is kFailedPrecondition.
  common::Result<TraclusResult> Run(const traj::TrajectoryDatabase& db,
                                    const RunContext& ctx = {}) const;

  /// Streaming-ingest pipeline: pulls trajectories from `source` one block at
  /// a time, partitions each block on arrival, and appends the resulting
  /// segments straight into a ChunkedSegmentStore shaped by the RunContext's
  /// chunk knobs — the full TrajectoryDatabase is never materialized. After
  /// ingest, an uncapped run (max_resident_chunks == 0) merges the chunks and
  /// executes the ordinary grouping/representative stages; a capped run
  /// executes the stages' RunChunked paths, under which at most
  /// max_resident_chunks payload chunks are cache-resident at any point.
  ///
  /// Output is bit-identical to Run(DrainToDatabase(source)) for every chunk
  /// capacity, residency cap, thread count, and kernel choice (the golden
  /// matrix in tests/streaming_engine_test.cc pins this); see
  /// TraclusResult::chunked_store for which result fields a capped run fills.
  /// A source that fails mid-stream propagates its typed status (naming the
  /// offending line for CSV sources) and no partial result escapes; an
  /// exhausted source with zero trajectories is kFailedPrecondition, like the
  /// empty-database eager run.
  common::Result<TraclusResult> Run(traj::TrajectorySource& source,
                                    const RunContext& ctx = {}) const;

  /// Runs only the partitioning stage (Fig. 4 lines 01-03).
  common::Result<PartitionOutput> Partition(const traj::TrajectoryDatabase& db,
                                            const RunContext& ctx = {}) const;

  /// Runs only the grouping stage (Fig. 4 line 04) on a prebuilt segment
  /// store. An empty store is valid input (an empty clustering results).
  /// (Callers holding a raw segment vector freeze it explicitly:
  /// `engine.Group(traj::SegmentStore::FromSegments(std::move(segments)))` —
  /// the deprecated vector overload that hid the O(n) freeze was removed;
  /// see the README migration table.)
  common::Result<cluster::ClusteringResult> Group(
      const traj::SegmentStore& store, const RunContext& ctx = {}) const;

  /// Runs only the representative stage (Fig. 4 lines 05-06). Returns
  /// kFailedPrecondition when the engine was built WithoutRepresentatives or
  /// when `clustering` refers to segments outside the store.
  common::Result<std::vector<traj::Trajectory>> Representatives(
      const traj::SegmentStore& store,
      const cluster::ClusteringResult& clustering,
      const RunContext& ctx = {}) const;

  const PartitionStage& partition_stage() const { return *partition_; }
  const GroupStage& group_stage() const { return *group_; }
  /// Null when the engine was built WithoutRepresentatives.
  const RepresentativeStage* representative_stage() const {
    return representative_.get();
  }
  int default_num_threads() const { return default_num_threads_; }
  /// Empty when the persistent neighbor cache is disabled.
  const std::string& default_neighbor_cache_dir() const {
    return default_neighbor_cache_dir_;
  }

 private:
  TraclusEngine(std::shared_ptr<const PartitionStage> partition,
                std::shared_ptr<const GroupStage> group,
                std::shared_ptr<const RepresentativeStage> representative,
                int default_num_threads, std::string default_neighbor_cache_dir)
      : partition_(std::move(partition)),
        group_(std::move(group)),
        representative_(std::move(representative)),
        default_num_threads_(default_num_threads),
        default_neighbor_cache_dir_(std::move(default_neighbor_cache_dir)) {}

  /// Copies `ctx` with num_threads resolved against the engine default.
  RunContext ResolveContext(const RunContext& ctx) const;

  // Stage drivers over an already-resolved context (`Run` resolves once for
  // the whole pipeline; the public single-stage entry points resolve then
  // delegate here).
  common::Result<PartitionOutput> PartitionImpl(
      const traj::TrajectoryDatabase& db, const RunContext& rctx) const;
  common::Result<cluster::ClusteringResult> GroupImpl(
      const traj::SegmentStore& store, const RunContext& rctx) const;
  common::Result<std::vector<traj::Trajectory>> RepresentativesImpl(
      const traj::SegmentStore& store,
      const cluster::ClusteringResult& clustering,
      const RunContext& rctx) const;

  std::shared_ptr<const PartitionStage> partition_;
  std::shared_ptr<const GroupStage> group_;
  std::shared_ptr<const RepresentativeStage> representative_;  // May be null.
  int default_num_threads_ = 0;
  std::string default_neighbor_cache_dir_;
};

/// The sweep-representative options a legacy TraclusConfig implies: the
/// config's representative_min_lns < 0 falls back to its clustering MinLns
/// (the paper's choice) and γ is clamped at 0.
SweepRepresentativeOptions RepresentativeOptionsFromConfig(
    const TraclusConfig& config);

}  // namespace traclus::core

#endif  // TRACLUS_CORE_ENGINE_H_
