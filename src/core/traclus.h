#ifndef TRACLUS_CORE_TRACLUS_H_
#define TRACLUS_CORE_TRACLUS_H_

// DEPRECATED — the monolithic `Traclus` façade.
//
// The pipeline's public API is now core::TraclusEngine (core/engine.h):
// pluggable stages, eager configuration validation, Result<T> error
// reporting, and per-run threads/progress/cancellation. This header remains
// for source compatibility: `Traclus` is a thin façade over an engine built
// with TraclusEngine::FromConfig and produces byte-identical output (proven
// by tests/engine_api_test.cc), but it keeps the legacy error contract —
// invalid configuration crashes via TRACLUS_CHECK and an empty database
// silently yields an empty result. See the README migration table for the
// TraclusConfig-field → builder-call correspondence.

#include <memory>
#include <vector>

#include "cluster/dbscan_segments.h"
#include "cluster/representative.h"
#include "core/engine.h"
#include "distance/segment_distance.h"
#include "partition/mdl.h"
#include "traj/trajectory_database.h"

namespace traclus::core {

/// The TRACLUS algorithm (Fig. 4) behind the legacy one-shot interface.
///
/// Thread-compatible: `Run` is const and carries no mutable state.
class [[deprecated(
    "use core::TraclusEngine (core/engine.h); Traclus keeps the legacy "
    "crash-on-misconfiguration contract and will eventually be "
    "removed")]] Traclus {
 public:
  Traclus() : Traclus(TraclusConfig{}) {}
  explicit Traclus(const TraclusConfig& config);

  const TraclusConfig& config() const { return config_; }

  /// Runs the full pipeline on `db`.
  TraclusResult Run(const traj::TrajectoryDatabase& db) const;

  /// Runs only the partitioning phase (Fig. 4 lines 01-03): returns the segment
  /// database D and fills `characteristic_points` when non-null.
  std::vector<geom::Segment> PartitionPhase(
      const traj::TrajectoryDatabase& db,
      std::vector<std::vector<size_t>>* characteristic_points = nullptr) const;

  /// Runs only the grouping phase (Fig. 4 line 04) on a prebuilt segment set.
  cluster::ClusteringResult GroupPhase(
      const std::vector<geom::Segment>& segments) const;

  /// Generates representative trajectories (Fig. 4 lines 05-06).
  std::vector<traj::Trajectory> RepresentativePhase(
      const std::vector<geom::Segment>& segments,
      const cluster::ClusteringResult& clustering) const;

 private:
  RunContext Context() const;

  TraclusConfig config_;
  /// Shared (not unique) so the façade stays copyable, like the
  /// config-only original.
  std::shared_ptr<const TraclusEngine> engine_;
};

}  // namespace traclus::core

#endif  // TRACLUS_CORE_TRACLUS_H_
