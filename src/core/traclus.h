#ifndef TRACLUS_CORE_TRACLUS_H_
#define TRACLUS_CORE_TRACLUS_H_

#include <memory>
#include <vector>

#include "cluster/dbscan_segments.h"
#include "cluster/representative.h"
#include "distance/segment_distance.h"
#include "partition/mdl.h"
#include "traj/trajectory_database.h"

namespace traclus::core {

/// Which partitioning algorithm drives the partitioning phase.
enum class PartitioningAlgorithm {
  kApproximateMdl,  ///< Fig. 8, O(n) — the paper's algorithm and the default.
  kOptimalMdl,      ///< Exact DP optimum, O(n²) edges; experiments only.
};

/// Full configuration of the TRACLUS pipeline (Fig. 4).
struct TraclusConfig {
  /// --- Partitioning phase (§3) ---
  partition::MdlOptions partition;
  PartitioningAlgorithm partitioning_algorithm =
      PartitioningAlgorithm::kApproximateMdl;

  /// --- Distance function (§2.3) ---
  distance::SegmentDistanceConfig distance;

  /// --- Grouping phase (§4) ---
  double eps = 25.0;       ///< Neighborhood radius ε.
  double min_lns = 5.0;    ///< MinLns.
  /// Trajectory-cardinality threshold (negative: use min_lns; 0: disabled).
  double min_trajectory_cardinality = -1.0;
  /// Weighted-trajectory extension (§4.2 / §7.1).
  bool use_weights = false;
  /// Use the grid spatial index for ε-neighborhood queries (Lemma 3); when
  /// false, brute-force scans are used (the O(n²) configuration).
  bool use_index = true;

  /// --- Representative trajectories (§4.3) ---
  bool generate_representatives = true;
  /// Sweep hit threshold; negative means "use min_lns" (the paper's choice).
  double representative_min_lns = -1.0;
  /// Smoothing parameter γ (Fig. 15): minimum sweep gap between emitted
  /// representative points. 0 disables smoothing.
  double gamma = 0.0;
  cluster::RepresentativeMethod representative_method =
      cluster::RepresentativeMethod::kProjection;

  /// --- Execution (not part of the paper's algorithm) ---
  /// Worker threads for the parallel phases: per-trajectory MDL partitioning,
  /// the batched ε-neighborhood queries of the grouping phase, and per-cluster
  /// representative generation. 0 = hardware concurrency; 1 = run everything
  /// inline on the calling thread, reproducing the original single-threaded
  /// execution exactly. Results are identical for every value — parallel work
  /// is assembled in deterministic index order, never in completion order.
  int num_threads = 0;
};

/// Everything TRACLUS produces, including intermediate artifacts that the
/// paper's experiments measure.
struct TraclusResult {
  /// The segment database D accumulated by the partitioning phase (Fig. 4
  /// line 03): all trajectory partitions with provenance.
  std::vector<geom::Segment> segments;
  /// Characteristic-point indices per input trajectory (parallel to the input
  /// database order).
  std::vector<std::vector<size_t>> characteristic_points;
  /// The grouping-phase output O = {C_1, ..., C_numclus}.
  cluster::ClusteringResult clustering;
  /// One representative trajectory per cluster (empty when disabled).
  std::vector<traj::Trajectory> representatives;
};

/// The TRACLUS algorithm (Fig. 4): partition every trajectory with the MDL
/// partitioner, accumulate the segments into D, density-cluster D, filter by
/// trajectory cardinality, and generate one representative trajectory per
/// cluster.
///
/// Thread-compatible: `Run` is const and carries no mutable state.
class Traclus {
 public:
  Traclus() : Traclus(TraclusConfig{}) {}
  explicit Traclus(const TraclusConfig& config);

  const TraclusConfig& config() const { return config_; }

  /// Runs the full pipeline on `db`.
  TraclusResult Run(const traj::TrajectoryDatabase& db) const;

  /// Runs only the partitioning phase (Fig. 4 lines 01-03): returns the segment
  /// database D and fills `characteristic_points` when non-null.
  std::vector<geom::Segment> PartitionPhase(
      const traj::TrajectoryDatabase& db,
      std::vector<std::vector<size_t>>* characteristic_points = nullptr) const;

  /// Runs only the grouping phase (Fig. 4 line 04) on a prebuilt segment set.
  cluster::ClusteringResult GroupPhase(
      const std::vector<geom::Segment>& segments) const;

  /// Generates representative trajectories (Fig. 4 lines 05-06).
  std::vector<traj::Trajectory> RepresentativePhase(
      const std::vector<geom::Segment>& segments,
      const cluster::ClusteringResult& clustering) const;

 private:
  TraclusConfig config_;
};

}  // namespace traclus::core

#endif  // TRACLUS_CORE_TRACLUS_H_
