#ifndef TRACLUS_CORE_SNAPSHOT_H_
#define TRACLUS_CORE_SNAPSHOT_H_

// Frozen cluster snapshot: the read side of a TRACLUS service.
//
// A completed run's artifacts — the segment database, the cluster labels,
// and the representative trajectories — are frozen into an immutable
// ClusterSnapshot that (a) round-trips through a versioned binary file, so
// a serving process reloads a clustering without rerunning the pipeline,
// and (b) answers high-QPS "which cluster is this trajectory/segment
// nearest to, within ε?" queries through the same batched distance kernels
// the pipeline groups with (distance::NearestWithinEpsCross), so
// scalar/SIMD parity and cross-thread determinism carry over to the
// serving path unchanged.
//
// Serving model. At construction the snapshot compiles a small frozen
// candidate store: each cluster contributes its representative trajectory's
// segments (the §4.3 sweep output — the cluster's shape in a handful of
// segments); clusters whose representative is empty (sweep never reached
// MinLns hits) fall back to at most 32 evenly-strided member segments.
// Assignment is nearest-candidate-within-ε against that store, so query
// cost is O(|queries| · |candidates|) with the usual lower-bound prune —
// independent of the original database size n. Assign* methods are const,
// lock-free, and allocation-free after warmup (thread_local staging only),
// so any number of threads may serve queries concurrently.
//
// File format v1 (little-endian; doubles stored as raw bit patterns, so
// the round trip is exact and a reloaded snapshot assigns byte-identically
// to the in-memory one — tests/snapshot_test.cc pins this):
//   u32 magic 'TSN1'  u32 version=1
//   params: eps, w⊥, w∥, wθ, directed, mdl encoding, suppression_bits,
//           mdl directed
//   store: n, dims, then per segment id/trajectory_id/weight/start/end
//          (invariants are recomputed on load — bit-identical by the
//          SegmentStore contract)
//   clustering: clusters (id + member indices), labels, num_noise
//   representatives: per cluster id/label/weight/points
//   u32 magic 'TSN1'  — trailing sentinel

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/result.h"
#include "common/span.h"
#include "common/status.h"
#include "core/engine.h"
#include "distance/batch_kernels.h"
#include "distance/segment_distance.h"
#include "partition/mdl.h"
#include "traj/segment_store.h"
#include "traj/trajectory.h"

namespace traclus::core {

/// Current snapshot file format version.
inline constexpr uint32_t kSnapshotFileVersion = 1;

/// The run parameters a snapshot needs to answer queries the way the run
/// would have: ε and the distance weights feed the assignment kernel; the
/// MDL options partition incoming query trajectories exactly like the
/// pipeline partitioned the corpus.
struct SnapshotParams {
  double eps = 25.0;
  distance::SegmentDistanceConfig distance;
  partition::MdlOptions mdl;
};

/// Per-query knobs of the Assign* methods. Results are identical for every
/// kernel and thread count (the argmin is prune-order-independent and the
/// kernels are bit-identical).
struct AssignOptions {
  distance::BatchKernel kernel = distance::BatchKernel::kAuto;
  /// Threads for AssignSegments' query fan-out (0 = hardware concurrency,
  /// 1 = inline). AssignTrajectory queries are tiny; it always runs inline.
  int num_threads = 1;
};

/// Result of assigning one query trajectory.
struct TrajectoryAssignment {
  /// Per-partition-segment nearest cluster id (cluster::kNoise when no
  /// candidate is within ε), in partition order.
  std::vector<int> segment_labels;
  /// Matching nearest distances (+inf where noise).
  std::vector<double> segment_distances;
  /// Majority vote over the non-noise segment labels, ties broken toward
  /// the smaller cluster id; cluster::kNoise when every segment is noise.
  int cluster = cluster::kNoise;
};

/// Immutable, thread-safe frozen clustering. All accessors and Assign*
/// methods are const and share no mutable state; construction (FromResult /
/// Load) is the only mutation.
class ClusterSnapshot {
 public:
  /// Freezes a completed run. `result.store` must be materialized and
  /// labeled (capped streaming runs leave it empty — snapshot those by
  /// rerunning uncapped or lowering the cap).
  static common::Result<std::unique_ptr<ClusterSnapshot>> FromResult(
      const TraclusResult& result, const SnapshotParams& params);

  /// Reloads a snapshot written by Save. Typed failures mirror the neighbor
  /// cache: missing → NotFound, bad magic/version/structure →
  /// InvalidArgument, short file → IOError.
  static common::Result<std::unique_ptr<ClusterSnapshot>> Load(
      const std::string& path);

  /// Writes the v1 file atomically (tmp + rename).
  common::Status Save(const std::string& path) const;

  /// Assigns every segment of `queries` to its nearest cluster within ε:
  /// out_labels[i] gets the cluster id (cluster::kNoise when none within ε),
  /// out_distance[i] the nearest distance (+inf when none). Both spans must
  /// have queries.size() entries. Thread-safe; deterministic across
  /// kernels/threads.
  common::Status AssignSegments(const traj::SegmentStore& queries,
                                common::Span<int> out_labels,
                                common::Span<double> out_distance,
                                const AssignOptions& options = {}) const;

  /// Partitions `trajectory` with the snapshot's MDL options (approximate
  /// partitioner, like the pipeline's default) and assigns each partition
  /// segment; the trajectory-level cluster is the majority vote.
  common::Result<TrajectoryAssignment> AssignTrajectory(
      const traj::Trajectory& trajectory,
      const AssignOptions& options = {}) const;

  const traj::SegmentStore& store() const { return store_; }
  const cluster::ClusteringResult& clustering() const { return clustering_; }
  const std::vector<traj::Trajectory>& representatives() const {
    return representatives_;
  }
  const SnapshotParams& params() const { return params_; }
  /// The frozen serving set assignment runs against.
  const traj::SegmentStore& candidate_store() const { return candidates_; }
  /// Cluster id of each candidate segment.
  const std::vector<int>& candidate_labels() const {
    return candidate_label_;
  }

 private:
  ClusterSnapshot() = default;

  /// Compiles the frozen candidate store from clusters + representatives.
  /// Deterministic: depends only on the (store, clustering, representatives)
  /// value, so FromResult and Load build identical serving sets.
  void InitServing();

  traj::SegmentStore store_;
  cluster::ClusteringResult clustering_;
  std::vector<traj::Trajectory> representatives_;
  SnapshotParams params_;

  // Frozen serving set (immutable after InitServing).
  traj::SegmentStore candidates_;
  std::vector<size_t> candidate_positions_;  // 0..candidates_.size()-1.
  std::vector<int> candidate_label_;
};

}  // namespace traclus::core

#endif  // TRACLUS_CORE_SNAPSHOT_H_
