#include "core/sieve_stage.h"

#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/span.h"
#include "common/thread_pool.h"
#include "geom/segment.h"

namespace traclus::core {

size_t ChooseSieveK(size_t store_size, size_t target_sample) {
  if (target_sample == 0 || store_size <= target_sample) return 1;
  return (store_size + target_sample - 1) / target_sample;
}

SieveGroupStage::SieveGroupStage(std::shared_ptr<const GroupStage> inner,
                                 const SieveGroupOptions& options)
    : inner_(std::move(inner)), options_(options) {
  name_ = "group/sieve+";
  if (inner_ != nullptr) {
    // Strip the inner stage's layer prefix ("group/dbscan" → "dbscan") so the
    // composite reads "group/sieve+dbscan".
    std::string inner_name = inner_->name();
    const size_t slash = inner_name.rfind('/');
    name_ += slash == std::string::npos ? inner_name
                                        : inner_name.substr(slash + 1);
  } else {
    name_ += "null";
  }
}

const char* SieveGroupStage::name() const { return name_.c_str(); }

common::Status SieveGroupStage::Validate() const {
  if (inner_ == nullptr) {
    return common::Status::InvalidArgument(
        "SieveGroupStage requires a non-null inner group stage");
  }
  TRACLUS_RETURN_NOT_OK(inner_->Validate());
  if (!(options_.eps > 0.0) || !std::isfinite(options_.eps)) {
    return common::Status::OutOfRange(
        "sieve assignment eps must be positive and finite");
  }
  const distance::SegmentDistanceConfig& d = options_.distance;
  if (!std::isfinite(d.w_perpendicular) || d.w_perpendicular < 0.0 ||
      !std::isfinite(d.w_parallel) || d.w_parallel < 0.0 ||
      !std::isfinite(d.w_angle) || d.w_angle < 0.0) {
    return common::Status::InvalidArgument(
        "sieve distance weights must be finite and non-negative");
  }
  return common::Status::OK();
}

common::Result<cluster::ClusteringResult> SieveGroupStage::Run(
    const traj::SegmentStore& store, const RunContext& ctx) const {
  const size_t n = store.size();
  // An explicit per-run stride always wins (sieve = 1 forces a full inner
  // run); AutoK only fills the gap when the run left the knob at 0.
  const size_t k = ctx.sieve > 0
                       ? ctx.sieve
                       : (options_.auto_k.target_sample > 0
                              ? ChooseSieveK(n, options_.auto_k.target_sample)
                              : 0);
  if (k <= 1) {
    // Sieve disabled: the decorator is transparent, byte for byte.
    return inner_->Run(store, ctx);
  }

  // Sampling unit is the trajectory: a trajectory's segments stay together so
  // the sample preserves within-trajectory density (a segment's ε-neighbors
  // are dominated by its own trajectory's neighbors in real data). Rank
  // trajectories by first appearance in store order — a pure function of the
  // store, independent of threads — and sample the ctx.sieve_offset residue
  // class of that rank.
  std::unordered_map<geom::TrajectoryId, size_t> rank_of;
  const size_t offset = ctx.sieve_offset % k;
  std::vector<char> sampled(n, 0);
  std::vector<size_t> sampled_global;  // ascending store order
  for (size_t i = 0; i < n; ++i) {
    const auto it =
        rank_of.emplace(store.trajectory_id(i), rank_of.size()).first;
    if (it->second % k == offset) {
      sampled[i] = 1;
      sampled_global.push_back(i);
    }
  }

  // Group the sample through the inner backend. The local store rebuilds its
  // invariant cache from the gathered segments; CanonicalizeInStore is a pure
  // per-segment function, so local invariants are bit-identical to the global
  // store's for the same segments.
  std::vector<geom::Segment> sample_segments;
  sample_segments.reserve(sampled_global.size());
  for (const size_t i : sampled_global) {
    sample_segments.push_back(store.segment(i));
  }
  const traj::SegmentStore sample_store =
      traj::SegmentStore::FromSegments(std::move(sample_segments));

  RunContext inner_ctx = ctx;
  inner_ctx.sieve = 0;  // Never recurse; the sample is grouped in full.
  inner_ctx.sieve_offset = 0;
  auto inner_result = inner_->Run(sample_store, inner_ctx);
  TRACLUS_RETURN_NOT_OK(inner_result.status());
  const cluster::ClusteringResult& sample = *inner_result;

  cluster::ClusteringResult out;
  out.labels.assign(n, cluster::kNoise);
  for (size_t local = 0; local < sample.labels.size(); ++local) {
    out.labels[sampled_global[local]] = sample.labels[local];
  }

  // Anchors: every sampled segment that landed in a cluster, in ascending
  // global index order — the assignment below tie-breaks toward the earliest
  // anchor, so this order is part of the determinism contract.
  std::vector<size_t> anchor_idx;
  std::vector<int> anchor_label;
  for (const size_t i : sampled_global) {
    if (out.labels[i] >= 0) {
      anchor_idx.push_back(i);
      anchor_label.push_back(out.labels[i]);
    }
  }

  const std::vector<size_t> queries = [&] {
    std::vector<size_t> q;
    q.reserve(n - sampled_global.size());
    for (size_t i = 0; i < n; ++i) {
      if (!sampled[i]) q.push_back(i);
    }
    return q;
  }();

  if (!anchor_idx.empty() && !queries.empty()) {
    const distance::SegmentDistance dist(options_.distance);
    distance::BatchOptions options;
    options.kernel = ctx.distance_kernel;
    const common::Span<const size_t> anchors(anchor_idx.data(),
                                             anchor_idx.size());
    std::vector<size_t> nearest(queries.size());
    std::vector<double> nearest_dist(queries.size());
    // Index-addressed slots + a fixed candidate set per query: the result is
    // byte-identical for every thread count and kernel.
    common::SharedPool(ctx.num_threads)
        .ParallelForChunked(0, queries.size(), [&](size_t lo, size_t hi) {
          distance::NearestWithinEps(
              store, dist,
              common::Span<const size_t>(queries.data() + lo, hi - lo),
              anchors, options_.eps,
              common::Span<size_t>(nearest.data() + lo, hi - lo),
              common::Span<double>(nearest_dist.data() + lo, hi - lo),
              options);
        });
    for (size_t q = 0; q < queries.size(); ++q) {
      if (nearest[q] != distance::kNoNearest) {
        out.labels[queries[q]] = anchor_label[nearest[q]];
      }
    }
  }

  // Rebuild the cluster membership lists (ascending member order, like every
  // grouping backend) and the noise count from the final labels. Cluster ids
  // are the inner backend's dense ids; a sample cluster can in principle lose
  // all members only if the inner result had an empty cluster, so the id
  // space carries over unchanged.
  out.clusters.resize(sample.clusters.size());
  for (size_t c = 0; c < out.clusters.size(); ++c) {
    out.clusters[c].id = sample.clusters[c].id;
  }
  out.num_noise = 0;
  for (size_t i = 0; i < n; ++i) {
    const int label = out.labels[i];
    if (label >= 0) {
      out.clusters[static_cast<size_t>(label)].member_indices.push_back(i);
    } else {
      ++out.num_noise;
    }
  }
  return out;
}

}  // namespace traclus::core
