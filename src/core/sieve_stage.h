#ifndef TRACLUS_CORE_SIEVE_STAGE_H_
#define TRACLUS_CORE_SIEVE_STAGE_H_

// SieveGroupStage — sieve-sampled grouping, the cpptraj `sieve_` idiom
// adapted to the TRACLUS pipeline: group only every k-th trajectory's
// segments through an arbitrary inner GroupStage, then batch-assign every
// sieved-out segment to the nearest cluster (or noise) with the many-vs-many
// distance tiles.
//
// Cost model: the inner backend's O((n/k)²) pairwise work plus one
// O(n · |cluster members of the sample|) assignment sweep — against the
// O(n²) of grouping everything. k is a pure quality/speed knob: k = 1 is the
// inner backend byte for byte; larger k trades boundary accuracy (a
// sieved-out segment joins the cluster of its nearest sampled anchor within
// ε, or becomes noise) for the quadratic-term reduction.
//
// Determinism contract (same bar as every other stage): for a fixed
// (sieve, sieve_offset) the sampled set is a pure function of the store's
// trajectory order, the inner stage is deterministic by its own contract,
// and the assignment evaluates a fixed candidate set per query — lower-bound
// pruned against ε only, never against the running minimum — through the
// bit-identical batch kernels, with ties broken toward the earliest anchor
// in ascending global index order. Labels are therefore byte-identical
// across thread counts and scalar/SIMD kernels.
//
// Thread-safety: the stage holds no mutable state (immutable inner pointer +
// options), so it needs no mutex and no capability annotations; the parallel
// assignment writes index-addressed slots only. Any future mutable caching
// must move behind a common::Mutex with TRACLUS_GUARDED_BY.
//
// Out-of-core: RunChunked inherits the merge-then-delegate default, so
// sieved grouping of a capped streaming run is correct but not
// memory-bounded (a chunk-resident many-vs-many path is future work — see
// ROADMAP).

#include <memory>
#include <string>

#include "core/stages.h"

namespace traclus::core {

/// Automatic sieve-stride selection: instead of fixing k, fix the sample
/// SIZE the inner backend should see and let the stage derive k from the
/// store — the cpptraj "sieve to about N frames" convention. Useful when one
/// engine serves databases of very different sizes: the quadratic inner work
/// stays roughly constant at target_sample².
struct AutoK {
  /// Desired sampled-segment count; k = ceil(store size / target_sample),
  /// clamped to ≥ 1 (a store at or under the target runs the inner backend
  /// in full). 0 disables auto selection.
  size_t target_sample = 0;
};

/// The k that AutoK picks for a store of `store_size` segments (exposed for
/// tests and tooling): 1 when `target_sample` is 0 or ≥ store_size, else
/// ceil(store_size / target_sample).
size_t ChooseSieveK(size_t store_size, size_t target_sample);

/// Configuration of the sieve assignment phase. The sampling knobs
/// themselves (k, offset) are per-run parameters and live on RunContext
/// (`sieve`, `sieve_offset`), so one engine can serve runs at different
/// sieve strides.
struct SieveGroupOptions {
  /// Assignment radius: a sieved-out segment farther than `eps` from every
  /// sampled cluster member is labelled noise. Use the inner stage's ε so
  /// membership means the same thing on both sides of the sieve. Must be
  /// positive and finite.
  double eps = 25.0;
  /// Distance function of the assignment sweep (§2.3). Must match the inner
  /// stage's configuration for the cost model to make sense. Weights must be
  /// finite and non-negative.
  distance::SegmentDistanceConfig distance;
  /// Automatic stride selection, used only by runs that leave
  /// RunContext::sieve at 0 (an explicit per-run sieve always wins — set
  /// sieve = 1 to force a full inner run on an AutoK engine).
  AutoK auto_k;
};

/// Decorator GroupStage implementing sieve-sampled grouping over any inner
/// backend (DBSCAN, OPTICS, or a custom stage).
class SieveGroupStage : public GroupStage {
 public:
  /// `inner` must be non-null (checked in Validate).
  explicit SieveGroupStage(std::shared_ptr<const GroupStage> inner,
                           const SieveGroupOptions& options = {});

  const char* name() const override;
  common::Status Validate() const override;
  /// The effective stride is ctx.sieve when > 0, else the AutoK-derived k
  /// when options().auto_k is set, else 0 (sieve off).
  /// Effective k ≤ 1: delegates to the inner stage unchanged
  /// (byte-identical).
  /// Otherwise: samples trajectories whose first-appearance rank ≡
  /// ctx.sieve_offset (mod ctx.sieve), groups the sampled segments through
  /// the inner stage (with sieve disabled in the inner context), maps the
  /// sample's labels back to global indices, and assigns each sieved-out
  /// segment to the cluster of its nearest sampled member within
  /// options().eps (distance::NearestWithinEps), or noise.
  common::Result<cluster::ClusteringResult> Run(
      const traj::SegmentStore& store, const RunContext& ctx) const override;

  const SieveGroupOptions& options() const { return options_; }
  const GroupStage* inner() const { return inner_.get(); }

 private:
  std::shared_ptr<const GroupStage> inner_;
  SieveGroupOptions options_;
  /// "group/sieve+<inner>" — built once; name() returns its c_str().
  std::string name_;
};

}  // namespace traclus::core

#endif  // TRACLUS_CORE_SIEVE_STAGE_H_
