// Parameter selection (§4.4): the entropy heuristic end to end.
//
// Density-based clustering is sensitive to eps and MinLns. The paper's
// heuristic: sweep eps, compute the Shannon entropy of the neighborhood-size
// distribution (Formula (10)), take the entropy-minimal eps (optionally
// refined with simulated annealing), read avg|N_eps(L)| there, and try
// MinLns = avg + 1 .. avg + 3. This example runs that procedure on the
// noisy synthetic set and then clusters with the suggested values.
//
// Build & run:   ./build/examples/parameter_selection

#include <cstdio>

#include "core/engine.h"
#include "datagen/noisy_generator.h"
#include "params/parameter_heuristic.h"

int main() {
  traclus::datagen::NoisyConfig gen;
  gen.num_trajectories = 120;
  gen.noise_fraction = 0.25;
  const auto db = traclus::datagen::GenerateNoisy(gen);

  // Partition first: the heuristic operates on trajectory partitions. A bare
  // default engine is valid; Partition alone runs just stage 1.
  const auto base =
      traclus::core::TraclusEngine::FromConfig(traclus::core::TraclusConfig{});
  const auto partitioned = base->Partition(db);
  if (!partitioned.ok()) {
    std::fprintf(stderr, "%s\n", partitioned.status().ToString().c_str());
    return 1;
  }
  const traclus::traj::SegmentStore& segments = partitioned->store;
  std::printf("partitions: %zu\n", segments.size());

  const traclus::distance::SegmentDistance dist;
  traclus::params::HeuristicOptions opt;
  opt.eps_lo = 0.25;
  opt.eps_hi = 12.0;
  opt.grid_points = 48;
  opt.refine_with_annealing = true;  // §4.4 prescribes simulated annealing.
  opt.annealing.iterations = 120;
  const auto est = traclus::params::EstimateParameters(segments, dist, opt);

  std::printf("entropy-minimal eps  : %.3f (H = %.4f)\n", est.eps, est.entropy);
  std::printf("avg|N_eps(L)| there  : %.2f\n", est.avg_neighborhood_size);
  std::printf("suggested MinLns     : %.0f .. %.0f\n\n", est.min_lns_low,
              est.min_lns_high);

  // The paper then inspects a few values around the suggestion; we print the
  // resulting cluster counts so the analyst can pick.
  for (double min_lns = est.min_lns_low; min_lns <= est.min_lns_high;
       min_lns += 1.0) {
    traclus::core::TraclusConfig cfg;
    cfg.eps = est.eps;
    cfg.min_lns = min_lns;
    const auto engine = traclus::core::TraclusEngine::FromConfig(cfg);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 1;
    }
    const auto result = engine->Run(db);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("eps = %.3f, MinLns = %2.0f  ->  %zu clusters, %zu noise "
                "segments\n",
                cfg.eps, min_lns, result->clustering.clusters.size(),
                result->clustering.num_noise);
  }
  std::printf("\n(ground truth: the generator planted %d corridors)\n",
              gen.num_planted_corridors);
  return 0;
}
