// CSV pipeline: file in, clusters + SVG out — the shape of a real deployment.
//
// Reads a trajectory CSV (schema: trajectory_id,x,y[,z][,weight]; see
// traj/csv_io.h), runs TRACLUS with user-supplied eps/MinLns, writes a
// clusters CSV (segment -> cluster label) and a visual-inspection SVG.
// When invoked without arguments it generates a demo CSV first, so it always
// runs out of the box.
//
// Usage:   csv_pipeline [input.csv [eps [min_lns]]]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/engine.h"
#include "datagen/noisy_generator.h"
#include "traj/csv_io.h"
#include "traj/svg_writer.h"

int main(int argc, char** argv) {
  std::string input = argc > 1 ? argv[1] : "";
  double eps = argc > 2 ? std::atof(argv[2]) : 3.0;
  const double min_lns = argc > 3 ? std::atof(argv[3]) : 8.0;

  if (input.empty()) {
    // Demo mode: synthesize a data set and write it as the input CSV.
    input = "csv_pipeline_demo_input.csv";
    traclus::datagen::NoisyConfig gen;
    gen.num_trajectories = 80;
    const auto demo = traclus::datagen::GenerateNoisy(gen);
    const auto st = traclus::traj::WriteCsv(demo, input);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("demo mode: wrote %s\n", input.c_str());
  }

  const auto loaded = traclus::traj::ReadCsv(input);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const auto& db = *loaded;
  std::printf("loaded %zu trajectories / %zu points from %s\n", db.size(),
              db.TotalPoints(), input.c_str());

  // User-supplied eps/MinLns go through the builder, which validates them
  // before the run; a bad value (e.g. eps = 0 from a typo'd argument) is a
  // printable status here instead of a crash mid-pipeline.
  traclus::core::DbscanGroupOptions group;
  group.eps = eps;
  group.min_lns = min_lns;
  traclus::core::SweepRepresentativeOptions reps;
  reps.min_lns = min_lns;
  const auto engine = traclus::core::TraclusEngine::Builder()
                          .UseDbscanGrouping(group)
                          .UseSweepRepresentatives(reps)
                          .Build();
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Real deployments want to see the pipeline move: RunContext streams
  // per-stage progress (always from this thread, never from workers).
  traclus::core::RunContext ctx;
  ctx.progress = [](const std::string& stage, double fraction) {
    std::fprintf(stderr, "  [%-24s %5.1f%%]\n", stage.c_str(),
                 100.0 * fraction);
  };
  const auto run = engine->Run(db, ctx);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const traclus::core::TraclusResult& result = *run;
  std::printf("eps = %.2f, MinLns = %.0f -> %zu clusters, %zu noise segments\n",
              eps, min_lns, result.clustering.clusters.size(),
              result.clustering.num_noise);

  // Segment-level labels, one row per trajectory partition.
  const std::string labels_path = "csv_pipeline_labels.csv";
  std::ofstream labels(labels_path);
  labels << "segment_id,trajectory_id,start_x,start_y,end_x,end_y,cluster\n";
  const auto& segments = result.segments();
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& s = segments[i];
    labels << s.id() << "," << s.trajectory_id() << "," << s.start().x() << ","
           << s.start().y() << "," << s.end().x() << "," << s.end().y() << ","
           << result.clustering.labels[i] << "\n";
  }
  std::printf("wrote %s\n", labels_path.c_str());

  const auto stats = db.Stats();
  traclus::traj::SvgWriter svg(stats.bounds);
  svg.AddDatabase(db, "#2e8b57", 0.5);
  for (const auto& rep : result.representatives) {
    svg.AddTrajectory(rep, "#cc0000", 3.0);
  }
  const auto st = svg.Save("csv_pipeline_clusters.svg");
  std::printf("%s\n", st.ok() ? "wrote csv_pipeline_clusters.svg"
                              : st.ToString().c_str());
  return 0;
}
