// Application scenario 1 (§1): hurricane landfall forecasting.
//
// "Meteorologists will be interested in the common behaviors of hurricanes
// near the coastline (i.e., at the time of landing) or at sea (i.e., before
// landing). Thus, discovering the common sub-trajectories helps improve the
// accuracy of hurricane landfall forecasts."
//
// This example clusters the synthetic Atlantic tracks, then intersects the
// representative trajectories with a coastline band (a region of special
// interest) and reports the approach corridors — exactly the "regions of
// special interest" analysis the partition-and-group framework enables. It
// also demonstrates the weighted extension (§4.2): stronger hurricanes get
// higher weight, shifting density toward intense corridors.
//
// Build & run:   ./build/examples/hurricane_landfall

#include <cstdio>

#include "core/engine.h"
#include "datagen/hurricane_generator.h"
#include "traj/svg_writer.h"

int main() {
  using traclus::geom::Point;

  // Synthetic Best Track substitute with intensity weights 1..5.
  traclus::datagen::HurricaneConfig gen;
  gen.min_weight = 1.0;
  gen.max_weight = 5.0;
  const auto db = traclus::datagen::GenerateHurricanes(gen);
  std::printf("tracks: %zu, fixes: %zu\n", db.size(), db.TotalPoints());

  // The "coastline": the western edge of the basin, x in [10, 30].
  const double coast_lo = 10.0;
  const double coast_hi = 30.0;

  traclus::core::DbscanGroupOptions group;
  group.eps = 0.94;
  group.min_lns = 7;
  group.use_weights = true;  // Intensity-weighted density (§4.2).
  traclus::core::SweepRepresentativeOptions reps;
  reps.min_lns = group.min_lns;
  reps.use_weights = true;
  const auto engine = traclus::core::TraclusEngine::Builder()
                          .UseDbscanGrouping(group)
                          .UseSweepRepresentatives(reps)
                          .Build();
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  const auto run = engine->Run(db);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  const traclus::core::TraclusResult& result = *run;
  std::printf("clusters: %zu (weighted by hurricane intensity)\n\n",
              result.clustering.clusters.size());

  std::printf("common sub-trajectories crossing the coastline band "
              "x in [%.0f, %.0f]:\n", coast_lo, coast_hi);
  int near_coast = 0;
  for (size_t c = 0; c < result.representatives.size(); ++c) {
    const auto& rep = result.representatives[c];
    bool crosses = false;
    for (const auto& p : rep.points()) {
      if (p.x() >= coast_lo && p.x() <= coast_hi) crosses = true;
    }
    if (!crosses || rep.size() < 2) continue;
    ++near_coast;
    const auto& f = rep.points().front();
    const auto& b = rep.points().back();
    std::printf(
        "  corridor %zu: enters at (%.1f, %.1f), heading %s, landfall band "
        "latitude %.1f\n",
        c, f.x(), f.y(), b.x() < f.x() ? "westward (landfalling)" : "eastward",
        b.y());
  }
  if (near_coast == 0) {
    std::printf(
        "  (none — raise eps or lower MinLns to find broader corridors)\n");
  }

  // Scaling to a full Best Track archive: sieve-sampled grouping
  // (README "Sieve + tiled kernels"). Only every 4th hurricane's segments go
  // through DBSCAN; the rest are batch-assigned to the nearest sampled
  // cluster member within eps — O((n/k)² + n·|sample|) instead of O(n²),
  // deterministic for a fixed (k, offset).
  traclus::core::SieveGroupOptions sieve;
  sieve.eps = group.eps;
  const auto sieved_engine = traclus::core::TraclusEngine::Builder()
                                 .UseDbscanGrouping(group)
                                 .UseSweepRepresentatives(reps)
                                 .WithSieveGrouping(sieve)
                                 .Build();
  if (!sieved_engine.ok()) {
    std::fprintf(stderr, "%s\n", sieved_engine.status().ToString().c_str());
    return 1;
  }
  traclus::core::RunContext sieved_ctx;
  sieved_ctx.sieve = 4;  // Cluster a 1-in-4 trajectory sample.
  const auto sieved = sieved_engine->Run(db, sieved_ctx);
  if (!sieved.ok()) {
    std::fprintf(stderr, "%s\n", sieved.status().ToString().c_str());
    return 1;
  }
  size_t agree = 0;
  const auto& full_labels = result.clustering.labels;
  const auto& sieve_labels = sieved->clustering.labels;
  for (size_t i = 0; i < full_labels.size(); ++i) {
    if ((full_labels[i] >= 0) == (sieve_labels[i] >= 0)) ++agree;
  }
  std::printf(
      "\nsieve k=4: %zu clusters (full run: %zu); %.0f%% of segments agree "
      "on clustered-vs-noise\n",
      sieved->clustering.clusters.size(), result.clustering.clusters.size(),
      100.0 * static_cast<double>(agree) /
          static_cast<double>(full_labels.size()));

  // Visual inspection file, Fig. 18 style.
  const auto stats = db.Stats();
  traclus::traj::SvgWriter svg(stats.bounds);
  svg.AddDatabase(db, "#2e8b57", 0.5);
  for (const auto& rep : result.representatives) {
    svg.AddTrajectory(rep, "#cc0000", 3.0);
  }
  svg.AddLabel(Point(coast_lo, stats.bounds.hi(1) - 2), "coastline band");
  const auto status = svg.Save("hurricane_landfall.svg");
  std::printf("\n%s\n", status.ok()
                            ? "wrote hurricane_landfall.svg (thin green: "
                              "tracks, thick red: common sub-trajectories)"
                            : status.ToString().c_str());
  return 0;
}
