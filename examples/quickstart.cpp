// Quickstart: the smallest complete TRACLUS program.
//
// Builds a tiny trajectory database in code, runs the full partition-and-group
// pipeline (Fig. 4 of the paper), and prints the clusters and representative
// trajectories. See hurricane_landfall.cpp / animal_roads.cpp for the paper's
// two application scenarios and parameter_selection.cpp for the §4.4 heuristic.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "core/traclus.h"

int main() {
  using traclus::geom::Point;

  // 1. A trajectory database: six trajectories sharing a west-to-east corridor
  //    (y ≈ 0..5, x 0..200), then scattering; plus one unrelated wanderer.
  traclus::traj::TrajectoryDatabase db;
  for (int i = 0; i < 6; ++i) {
    traclus::traj::Trajectory tr(/*id=*/i, /*label=*/"commuter");
    for (int k = 0; k <= 10; ++k) {
      const double x = 20.0 * k;
      // Shared corridor until x = 120, then each commuter fans out.
      const double y = k <= 6 ? 1.5 * i : 1.5 * i + (k - 6) * 8.0 * (i - 2.5);
      tr.Add(Point(x, y));
    }
    db.Add(std::move(tr));
  }
  traclus::traj::Trajectory loner(/*id=*/6, /*label=*/"loner");
  for (int k = 0; k <= 10; ++k) loner.Add(Point(10.0 * k, 300.0 - 14.0 * k));
  db.Add(std::move(loner));

  // 2. Configure TRACLUS. eps/MinLns are the two clustering knobs (§4);
  //    everything else has paper defaults (MDL partitioning, unit weights,
  //    grid-indexed neighborhoods).
  traclus::core::TraclusConfig config;
  config.eps = 12.0;
  config.min_lns = 4;

  // 3. Run the pipeline.
  const traclus::core::TraclusResult result =
      traclus::core::Traclus(config).Run(db);

  // 4. Inspect the output.
  std::printf("partitioned %zu trajectories into %zu line segments\n",
              db.size(), result.segments.size());
  std::printf("found %zu cluster(s); %zu segments classified as noise\n\n",
              result.clustering.clusters.size(), result.clustering.num_noise);

  for (size_t c = 0; c < result.clustering.clusters.size(); ++c) {
    const auto& cluster = result.clustering.clusters[c];
    std::printf("cluster %zu: %zu segments from %zu distinct trajectories\n", c,
                cluster.size(),
                traclus::cluster::TrajectoryCardinality(result.segments,
                                                        cluster));
    const auto& rep = result.representatives[c];
    std::printf("  representative trajectory (%zu points): ", rep.size());
    for (const auto& p : rep.points()) {
      std::printf("(%.0f, %.1f) ", p.x(), p.y());
    }
    std::printf("\n");
  }
  return 0;
}
