// Quickstart: the smallest complete TRACLUS program.
//
// Builds a tiny trajectory database in code, assembles the partition-and-group
// pipeline (Fig. 4 of the paper) with TraclusEngine::Builder, runs it, and
// prints the clusters and representative trajectories. Every engine call
// returns common::Result<T>, so configuration mistakes and bad input surface
// as typed statuses instead of crashes. See hurricane_landfall.cpp /
// animal_roads.cpp for the paper's two application scenarios and
// parameter_selection.cpp for the §4.4 heuristic.
//
// Build & run:   ./build/example_quickstart

#include <cstdio>

#include "core/engine.h"

int main() {
  using traclus::geom::Point;

  // 1. A trajectory database: six trajectories sharing a west-to-east corridor
  //    (y ≈ 0..5, x 0..200), then scattering; plus one unrelated wanderer.
  traclus::traj::TrajectoryDatabase db;
  for (int i = 0; i < 6; ++i) {
    traclus::traj::Trajectory tr(/*id=*/i, /*label=*/"commuter");
    for (int k = 0; k <= 10; ++k) {
      const double x = 20.0 * k;
      // Shared corridor until x = 120, then each commuter fans out.
      const double y = k <= 6 ? 1.5 * i : 1.5 * i + (k - 6) * 8.0 * (i - 2.5);
      tr.Add(Point(x, y));
    }
    db.Add(std::move(tr));
  }
  traclus::traj::Trajectory loner(/*id=*/6, /*label=*/"loner");
  for (int k = 0; k <= 10; ++k) loner.Add(Point(10.0 * k, 300.0 - 14.0 * k));
  db.Add(std::move(loner));

  // 2. Assemble the pipeline. eps/MinLns are the two clustering knobs (§4);
  //    every other stage option has paper defaults (MDL partitioning, unit
  //    weights, grid-indexed neighborhoods). Build() validates the whole
  //    configuration up front and returns a status instead of an engine when
  //    something is off (try eps = -1 to see it).
  traclus::core::DbscanGroupOptions group;
  group.eps = 12.0;
  group.min_lns = 4;
  traclus::core::SweepRepresentativeOptions reps;
  reps.min_lns = 4;
  const auto engine = traclus::core::TraclusEngine::Builder()
                          .UseMdlPartitioning()
                          .UseDbscanGrouping(group)
                          .UseSweepRepresentatives(reps)
                          .Build();
  if (!engine.ok()) {
    std::fprintf(stderr, "engine configuration rejected: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // 3. Run the pipeline. Run also returns Result<T>: an empty database, a
  //    cancellation, or a stage failure would land here as a typed status.
  const auto run = engine->Run(db);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const traclus::core::TraclusResult& result = *run;

  // 4. Inspect the output.
  std::printf("partitioned %zu trajectories into %zu line segments\n",
              db.size(), result.segments().size());
  std::printf("found %zu cluster(s); %zu segments classified as noise\n\n",
              result.clustering.clusters.size(), result.clustering.num_noise);

  for (size_t c = 0; c < result.clustering.clusters.size(); ++c) {
    const auto& cluster = result.clustering.clusters[c];
    std::printf("cluster %zu: %zu segments from %zu distinct trajectories\n", c,
                cluster.size(),
                traclus::cluster::TrajectoryCardinality(result.store,
                                                        cluster));
    const auto& rep = result.representatives[c];
    std::printf("  representative trajectory (%zu points): ", rep.size());
    for (const auto& p : rep.points()) {
      std::printf("(%.0f, %.1f) ", p.x(), p.y());
    }
    std::printf("\n");
  }
  return 0;
}
