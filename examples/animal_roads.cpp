// Application scenario 2 (§1, Example 2): animal movements vs roads.
//
// "Zoologists will be interested in the common behaviors of animals near the
// road where the traffic rate has been varied. Hence, discovering the common
// sub-trajectories helps reveal the effects of roads and traffic." (The paper
// builds on the Starkey project's mule deer / elk telemetry.)
//
// This example clusters the synthetic Starkey-like deer telemetry, defines two
// road polylines with different traffic levels, and reports how close each
// discovered movement corridor runs to each road — the §1 analysis of road
// avoidance by traffic rate.
//
// Build & run:   ./build/examples/animal_roads

#include <cstdio>
#include <limits>

#include "core/engine.h"
#include "datagen/animal_generator.h"
#include "geom/vector_ops.h"
#include "traj/svg_writer.h"

namespace {

using traclus::geom::Point;

// Distance from a point to a road polyline.
double DistanceToRoad(const Point& p, const std::vector<Point>& road) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < road.size(); ++i) {
    best = std::min(
        best, traclus::geom::PointToSegmentDistance(p, road[i - 1], road[i]));
  }
  return best;
}

}  // namespace

int main() {
  const auto db =
      traclus::datagen::GenerateAnimals(traclus::datagen::Deer1995Config());
  std::printf("telemetry: %zu animals, %zu fixes\n", db.size(),
              db.TotalPoints());

  // Two roads crossing the study area (cf. Fig. 2 of the paper).
  const std::vector<Point> high_traffic_road = {Point(0, 140), Point(400, 150)};
  const std::vector<Point> low_traffic_road = {Point(200, 0), Point(210, 300)};

  traclus::core::DbscanGroupOptions group;
  group.eps = 1.8;
  group.min_lns = 8;
  traclus::core::SweepRepresentativeOptions reps;
  reps.min_lns = group.min_lns;
  const auto engine = traclus::core::TraclusEngine::Builder()
                          .UseDbscanGrouping(group)
                          .UseSweepRepresentatives(reps)
                          .Build();
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  const auto run = engine->Run(db);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  const traclus::core::TraclusResult& result = *run;
  std::printf("movement corridors discovered: %zu\n\n",
              result.clustering.clusters.size());

  std::printf("%-10s %-18s %-22s %-22s\n", "corridor", "segments",
              "min dist to HIGH road", "min dist to LOW road");
  for (size_t c = 0; c < result.representatives.size(); ++c) {
    const auto& rep = result.representatives[c];
    double dh = std::numeric_limits<double>::infinity();
    double dl = dh;
    for (const auto& p : rep.points()) {
      dh = std::min(dh, DistanceToRoad(p, high_traffic_road));
      dl = std::min(dl, DistanceToRoad(p, low_traffic_road));
    }
    std::printf("%-10zu %-18zu %-22.1f %-22.1f\n", c,
                result.clustering.clusters[c].size(), dh, dl);
  }
  std::printf(
      "\nreading: corridors keeping larger distance from the high-traffic road "
      "than the low-traffic one indicate traffic-dependent road avoidance — "
      "the Wisdom et al. question from §1.\n");

  const auto stats = db.Stats();
  traclus::traj::SvgWriter svg(stats.bounds);
  svg.AddDatabase(db, "#2e8b57", 0.4);
  svg.AddSegment(
      traclus::geom::Segment(high_traffic_road[0], high_traffic_road[1]),
      "#222222", 4.0);
  svg.AddSegment(
      traclus::geom::Segment(low_traffic_road[0], low_traffic_road[1]),
      "#888888", 2.0);
  for (const auto& rep : result.representatives) {
    svg.AddTrajectory(rep, "#cc0000", 3.0);
  }
  const auto status = svg.Save("animal_roads.svg");
  std::printf("%s\n", status.ok()
                          ? "wrote animal_roads.svg (black: high-traffic "
                            "road, grey: low-traffic road)"
                          : status.ToString().c_str());
  return 0;
}
