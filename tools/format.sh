#!/usr/bin/env bash
# Formats (or with --check, verifies) every C++ source in the repo with the
# project .clang-format. CI runs `tools/format.sh --check`.
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format-14}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  CLANG_FORMAT=clang-format
fi
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: clang-format not found (set CLANG_FORMAT=...)" >&2
  exit 1
fi

mapfile -t files < <(git ls-files 'src/**/*.h' 'src/**/*.cc' 'tests/*.cc' \
                                  'bench/*.h' 'bench/*.cc' 'tools/*.cc' \
                                  'examples/*.cpp')

if [[ "${1:-}" == "--check" ]]; then
  "$CLANG_FORMAT" --dry-run --Werror "${files[@]}"
  echo "format check OK (${#files[@]} files)"
else
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "formatted ${#files[@]} files"
fi
