// golden_gen — regenerates the golden clustering files under tests/golden/.
//
// Each golden file freezes the full observable output of one engine run on a
// deterministic generated data set: segment count, per-segment cluster labels,
// cluster membership, noise count, and every representative trajectory point
// printed with %.17g (which round-trips IEEE doubles exactly). The
// engine-vs-golden tests in tests/engine_api_test.cc re-run the same configs
// and require byte-identical results, so any refactor that perturbs the
// pipeline output — even by one ULP in a representative coordinate — fails
// the suite instead of drifting silently.
//
// Usage: golden_gen <output-directory>
// Regenerate only when an intentional output change is reviewed and approved.

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "datagen/animal_generator.h"
#include "datagen/hurricane_generator.h"

namespace {

using namespace traclus;

bool WriteGolden(const std::string& path, const core::TraclusConfig& config,
                 const traj::TrajectoryDatabase& db) {
  const auto engine = core::TraclusEngine::FromConfig(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return false;
  }
  const auto run = engine->Run(db);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  const core::TraclusResult& r = *run;
  std::fprintf(f, "segments %zu\n", r.clustering.labels.size());
  // Partition-stage output: ids, provenance, and endpoints of every segment,
  // plus the characteristic points per trajectory — so a refactor that
  // perturbs partitioning without changing the clustering still fails.
  for (size_t i = 0; i < r.segments().size(); ++i) {
    const geom::Segment& s = r.segments()[i];
    std::fprintf(f, "seg %lld %lld %.17g %.17g %.17g %.17g\n",
                 static_cast<long long>(s.id()),
                 static_cast<long long>(s.trajectory_id()), s.start().x(),
                 s.start().y(), s.end().x(), s.end().y());
  }
  for (size_t t = 0; t < r.characteristic_points.size(); ++t) {
    std::fprintf(f, "cps %zu", t);
    for (const size_t cp : r.characteristic_points[t]) {
      std::fprintf(f, " %zu", cp);
    }
    std::fprintf(f, "\n");
  }
  std::fprintf(f, "labels");
  for (const int label : r.clustering.labels) std::fprintf(f, " %d", label);
  std::fprintf(f, "\n");
  std::fprintf(f, "clusters %zu\n", r.clustering.clusters.size());
  std::fprintf(f, "noise %zu\n", r.clustering.num_noise);
  for (const auto& cluster : r.clustering.clusters) {
    std::fprintf(f, "cluster %d", cluster.id);
    for (const size_t m : cluster.member_indices) {
      std::fprintf(f, " %zu", m);
    }
    std::fprintf(f, "\n");
  }
  for (size_t i = 0; i < r.representatives.size(); ++i) {
    std::fprintf(f, "rep %zu", i);
    for (const auto& p : r.representatives[i].points()) {
      std::fprintf(f, " %.17g %.17g", p.x(), p.y());
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: golden_gen <output-directory>\n");
    return 1;
  }
  const std::string dir = argv[1];

  core::TraclusConfig hurricane;
  hurricane.eps = 0.94;
  hurricane.min_lns = 5;
  if (!WriteGolden(dir + "/hurricane_default.golden", hurricane,
                   datagen::GenerateHurricanes(datagen::HurricaneConfig{}))) {
    return 2;
  }

  core::TraclusConfig deer;
  deer.eps = 1.8;
  deer.min_lns = 8;
  if (!WriteGolden(dir + "/deer_default.golden", deer,
                   datagen::GenerateAnimals(datagen::Deer1995Config()))) {
    return 2;
  }
  return 0;
}
