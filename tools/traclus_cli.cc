// traclus — command-line front end to the library.
//
// Subcommands:
//   generate <hurricane|elk|deer|noisy|fig1> <out.csv> [--seed N]
//       Synthesize one of the built-in data sets (DESIGN.md §2) as CSV.
//   stats <in.csv>
//       Print database statistics (trajectories, points, bounds).
//   partition <in.csv> [--suppression BITS] [--out segments.csv]
//       Run the partitioning phase only; report compression and optionally
//       dump the trajectory partitions.
//   estimate <in.csv> [--eps-lo X] [--eps-hi X] [--grid N]
//       Run the §4.4 parameter heuristic; print the entropy curve and the
//       suggested (eps, MinLns) values.
//   cluster <in.csv> --eps X --min-lns N [--undirected] [--weighted]
//           [--suppression BITS] [--no-index] [--progress]
//           [--neighbor-cache DIR] [--save-snapshot FILE]
//           [--labels out.csv] [--reps out.csv] [--svg out.svg]
//       Run the full pipeline and write the requested artifacts.
//   assign <snapshot> <in.csv> [--labels out.csv]
//       Load a frozen snapshot written by `cluster --save-snapshot` and
//       assign each input trajectory to its nearest cluster within the
//       snapshot's eps — the high-QPS serving path; no reclustering.
//
// Built on core::TraclusEngine: configuration errors come back as typed
// statuses (printed, exit 1), IO/runtime failures as statuses too (exit 2),
// and --progress streams per-stage progress from the engine's RunContext.
//
// Exit code 0 on success, 1 on usage/configuration errors, 2 on IO/parse
// errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/snapshot.h"
#include "datagen/animal_generator.h"
#include "datagen/common_subtrajectory.h"
#include "datagen/hurricane_generator.h"
#include "datagen/noisy_generator.h"
#include "params/parameter_heuristic.h"
#include "traj/csv_io.h"
#include "traj/source.h"
#include "traj/svg_writer.h"

namespace {

using namespace traclus;

// Minimal flag parser: positional args plus --key value / --switch flags.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> switches;

  double GetDouble(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  bool GetSwitch(const std::string& key) const {
    const auto it = switches.find(key);
    return it != switches.end() && it->second;
  }
};

Args Parse(int argc, char** argv, const std::vector<std::string>& value_flags) {
  Args args;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      const bool takes_value =
          std::find(value_flags.begin(), value_flags.end(), key) !=
          value_flags.end();
      if (takes_value && i + 1 < argc) {
        args.options[key] = argv[++i];
      } else {
        args.switches[key] = true;
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: traclus <command> ...\n"
      "  generate <hurricane|elk|deer|noisy|fig1> <out.csv> [--seed N]\n"
      "  stats <in.csv>\n"
      "  partition <in.csv> [--suppression BITS] [--out segments.csv]\n"
      "            [--threads N]\n"
      "  estimate <in.csv> [--eps-lo X] [--eps-hi X] [--grid N] [--threads N]\n"
      "           [--kernel auto|scalar|simd]\n"
      "  cluster <in.csv> --eps X --min-lns N [--undirected] [--weighted]\n"
      "          [--suppression BITS] [--no-index] [--threads N] [--progress]\n"
      "          [--kernel auto|scalar|simd]\n"
      "          [--sieve K] [--sieve-offset R] [--shards S]\n"
      "          [--stream] [--chunk-size N] [--max-resident N]\n"
      "          [--neighbor-cache DIR] [--save-snapshot FILE]\n"
      "          [--labels out.csv] [--reps out.csv] [--svg out.svg]\n"
      "  assign <snapshot> <in.csv> [--threads N] [--kernel auto|scalar|simd]\n"
      "         [--labels out.csv]\n"
      "\n"
      "  Every <in.csv> may be '-' to read CSV from standard input.\n"
      "\n"
      "  --threads N: worker threads for the parallel phases; 0 = all\n"
      "               hardware threads, 1 = single-threaded. Output is\n"
      "               identical for every value.\n"
      "  --kernel K:  batch distance kernel (auto, scalar, simd). The\n"
      "               kernels are bit-identical; simd needs an AVX2 build\n"
      "               and degrades to scalar otherwise.\n"
      "  --sieve K:   sieve-sampled grouping — cluster only every K-th\n"
      "               trajectory and assign the rest to the nearest cluster\n"
      "               within eps (0 or 1 disables; deterministic for a\n"
      "               fixed K/offset).\n"
      "  --sieve-offset R:  which residue class of the trajectory rank is\n"
      "               sampled (default 0).\n"
      "  --shards S:  sharded grouping — decompose the segments over a cell\n"
      "               grid into S shards, cluster each independently (in\n"
      "               parallel), and merge clusters across shard borders\n"
      "               (0 or 1 disables; deterministic for a fixed S).\n"
      "  --progress:  stream per-stage progress to stderr.\n"
      "  --stream:    streaming ingest — partition trajectories as they\n"
      "               arrive instead of loading the whole file first.\n"
      "               Output is identical to the eager path.\n"
      "  --chunk-size N:    segments per chunk of the streaming segment\n"
      "                     store (0 = one chunk). Implies --stream.\n"
      "  --max-resident N:  out-of-core mode — spill cold chunks and keep\n"
      "                     at most N resident (0 = keep all). Implies\n"
      "                     --stream; incompatible with --svg and\n"
      "                     --save-snapshot.\n"
      "  --neighbor-cache DIR:  persist the grouping stage's eps-neighborhood\n"
      "               lists under DIR, keyed by a content hash of the\n"
      "               segments, distance weights, and eps. A rerun over the\n"
      "               same inputs skips the O(n^2) neighborhood pass and\n"
      "               streams the lists back from disk, byte-identically.\n"
      "  --save-snapshot FILE:  freeze the finished run (segments, clusters,\n"
      "               representatives, parameters) to FILE for later\n"
      "               `traclus assign` serving.\n");
  return 1;
}

common::Result<traj::TrajectoryDatabase> Load(const std::string& path) {
  if (path == "-") {
    traj::CsvStreamSource source(std::cin);
    return traj::DrainToDatabase(source);
  }
  return traj::ReadCsv(path);
}

// Opens `path` (or stdin for "-") as a pull-based trajectory source for the
// streaming pipeline mode.
common::Result<std::unique_ptr<traj::TrajectorySource>> OpenSource(
    const std::string& path) {
  if (path == "-") {
    return std::unique_ptr<traj::TrajectorySource>(
        std::make_unique<traj::CsvStreamSource>(std::cin));
  }
  TRACLUS_ASSIGN_OR_RETURN(auto file, traj::CsvFileSource::Open(path));
  return std::unique_ptr<traj::TrajectorySource>(std::move(file));
}

// Maps an engine status onto the CLI's exit-code convention: configuration
// mistakes are usage errors (1), everything else is a runtime error (2).
int FailWith(const common::Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  switch (status.code()) {
    case common::StatusCode::kInvalidArgument:
    case common::StatusCode::kOutOfRange:
      return 1;
    default:
      return 2;
  }
}

// Parses --kernel through the one shared spelling of the knob,
// distance::ParseBatchKernel — the CLI neither duplicates the string switch
// nor re-words its diagnostic. Commands call this up front (before touching
// data) and fail via FailWith, which maps InvalidArgument onto the usage
// exit code.
common::Result<distance::BatchKernel> KernelFlag(const Args& args) {
  return distance::ParseBatchKernel(args.GetString("kernel", "auto"));
}

core::RunContext MakeContext(const Args& args,
                             distance::BatchKernel kernel) {
  core::RunContext ctx;
  if (args.GetSwitch("progress")) {
    ctx.progress = [](const std::string& stage, double fraction) {
      std::fprintf(stderr, "[%5.1f%%] %s\n", 100.0 * fraction, stage.c_str());
    };
  }
  ctx.distance_kernel = kernel;
  ctx.neighbor_cache_dir = args.GetString("neighbor-cache");
  // Harmless outside `cluster` (only a Sieve/ShardedGroupStage reads these).
  ctx.sieve = static_cast<size_t>(args.GetDouble("sieve", 0));
  ctx.sieve_offset = static_cast<size_t>(args.GetDouble("sieve-offset", 0));
  ctx.shards = static_cast<size_t>(args.GetDouble("shards", 0));
  return ctx;
}

int CmdGenerate(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  const std::string& kind = args.positional[0];
  const std::string& out = args.positional[1];
  const uint64_t seed =
      static_cast<uint64_t>(args.GetDouble("seed", 0));

  traj::TrajectoryDatabase db;
  if (kind == "hurricane") {
    datagen::HurricaneConfig cfg;
    if (seed) cfg.seed = seed;
    db = datagen::GenerateHurricanes(cfg);
  } else if (kind == "elk") {
    auto cfg = datagen::Elk1993Config();
    if (seed) cfg.seed = seed;
    db = datagen::GenerateAnimals(cfg);
  } else if (kind == "deer") {
    auto cfg = datagen::Deer1995Config();
    if (seed) cfg.seed = seed;
    db = datagen::GenerateAnimals(cfg);
  } else if (kind == "noisy") {
    datagen::NoisyConfig cfg;
    if (seed) cfg.seed = seed;
    db = datagen::GenerateNoisy(cfg);
  } else if (kind == "fig1") {
    datagen::CommonSubTrajectoryConfig cfg;
    if (seed) cfg.seed = seed;
    db = datagen::GenerateCommonSubTrajectory(cfg);
  } else {
    std::fprintf(stderr, "unknown data set kind '%s'\n", kind.c_str());
    return 1;
  }
  const auto st = traj::WriteCsv(db, out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  std::printf("wrote %zu trajectories / %zu points to %s\n", db.size(),
              db.TotalPoints(), out.c_str());
  return 0;
}

int CmdStats(const Args& args) {
  if (args.positional.empty()) return Usage();
  const auto loaded = Load(args.positional[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 2;
  }
  const auto st = loaded->Stats();
  std::printf("trajectories : %zu\n", st.num_trajectories);
  std::printf("points       : %zu\n", st.num_points);
  std::printf("length       : min %zu / mean %.1f / max %zu points\n",
              st.min_length, st.mean_length, st.max_length);
  if (!st.bounds.empty()) {
    std::printf("bounds       : x [%.2f, %.2f]  y [%.2f, %.2f]\n",
                st.bounds.lo(0), st.bounds.hi(0), st.bounds.lo(1),
                st.bounds.hi(1));
  }
  return 0;
}

int CmdPartition(const Args& args) {
  if (args.positional.empty()) return Usage();
  const auto kernel = KernelFlag(args);
  if (!kernel.ok()) return FailWith(kernel.status());
  const auto loaded = Load(args.positional[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 2;
  }
  core::TraclusConfig cfg;
  cfg.partition.suppression_bits = args.GetDouble("suppression", 0.0);
  cfg.num_threads = static_cast<int>(args.GetDouble("threads", 0));
  const auto engine = core::TraclusEngine::FromConfig(cfg);
  if (!engine.ok()) return FailWith(engine.status());
  const auto partitioned =
      engine->Partition(*loaded, MakeContext(args, *kernel));
  if (!partitioned.ok()) return FailWith(partitioned.status());
  const auto& segments = partitioned->segments();
  std::printf(
      "%zu points -> %zu trajectory partitions (%.2f points/partition)\n",
      loaded->TotalPoints(), segments.size(),
      static_cast<double>(loaded->TotalPoints()) /
          std::max<size_t>(1, segments.size()));

  const std::string out = args.GetString("out");
  if (!out.empty()) {
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", out.c_str());
      return 2;
    }
    f << "segment_id,trajectory_id,start_x,start_y,end_x,end_y\n";
    for (const auto& s : segments) {
      f << s.id() << "," << s.trajectory_id() << "," << s.start().x() << ","
        << s.start().y() << "," << s.end().x() << "," << s.end().y() << "\n";
    }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int CmdEstimate(const Args& args) {
  if (args.positional.empty()) return Usage();
  const auto kernel = KernelFlag(args);
  if (!kernel.ok()) return FailWith(kernel.status());
  const auto loaded = Load(args.positional[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 2;
  }
  core::TraclusConfig base;
  base.num_threads = static_cast<int>(args.GetDouble("threads", 0));
  const auto engine = core::TraclusEngine::FromConfig(base);
  if (!engine.ok()) return FailWith(engine.status());
  const auto partitioned =
      engine->Partition(*loaded, MakeContext(args, *kernel));
  if (!partitioned.ok()) return FailWith(partitioned.status());
  const traj::SegmentStore& store = partitioned->store;
  const distance::SegmentDistance dist;
  params::HeuristicOptions opt;
  opt.eps_lo = args.GetDouble("eps-lo", 0.25);
  opt.eps_hi = args.GetDouble("eps-hi", 40.0);
  opt.grid_points = static_cast<int>(args.GetDouble("grid", 60));
  opt.num_threads = base.num_threads;
  opt.kernel = *kernel;
  const auto est = params::EstimateParameters(store, dist, opt);
  std::printf("# eps entropy\n");
  for (size_t g = 0; g < est.grid_eps.size(); ++g) {
    std::printf("%.4f %.4f\n", est.grid_eps[g], est.grid_entropy[g]);
  }
  std::printf("\nestimated eps    : %.4f (entropy %.4f)\n", est.eps,
              est.entropy);
  std::printf("avg|N_eps(L)|    : %.2f\n", est.avg_neighborhood_size);
  std::printf("suggested MinLns : %.0f .. %.0f\n", est.min_lns_low,
              est.min_lns_high);
  return 0;
}

int CmdCluster(const Args& args) {
  if (args.positional.empty()) return Usage();
  const auto kernel = KernelFlag(args);
  if (!kernel.ok()) return FailWith(kernel.status());
  if (args.options.find("eps") == args.options.end() ||
      args.options.find("min-lns") == args.options.end()) {
    std::fprintf(stderr, "cluster requires --eps and --min-lns\n");
    return 1;
  }
  const std::string& input = args.positional[0];
  const bool stream = args.GetSwitch("stream") ||
                      args.options.count("chunk-size") > 0 ||
                      args.options.count("max-resident") > 0;
  if (stream && !args.GetString("svg").empty()) {
    std::fprintf(stderr,
                 "--svg needs the full input database and is incompatible "
                 "with --stream\n");
    return 1;
  }
  const std::string snapshot_path = args.GetString("save-snapshot");
  if (!snapshot_path.empty() && args.options.count("max-resident") > 0) {
    // A residency-capped run leaves result.store empty on purpose; the
    // snapshot needs the materialized segment columns.
    std::fprintf(stderr,
                 "--save-snapshot needs the materialized segment store and is "
                 "incompatible with --max-resident\n");
    return 1;
  }

  // The full three-stage assembly, spelled out builder-style. Every knob is
  // validated by Build() before any data is touched.
  core::MdlPartitionOptions partition;
  partition.mdl.suppression_bits = args.GetDouble("suppression", 0.0);

  core::DbscanGroupOptions group;
  group.eps = args.GetDouble("eps", 1.0);
  group.min_lns = args.GetDouble("min-lns", 3.0);
  group.use_weights = args.GetSwitch("weighted");
  group.use_index = !args.GetSwitch("no-index");
  group.distance.directed = !args.GetSwitch("undirected");

  core::SweepRepresentativeOptions reps_options;
  reps_options.min_lns = group.min_lns;  // The paper's choice.
  reps_options.use_weights = group.use_weights;

  core::TraclusEngine::Builder builder;
  builder.UseMdlPartitioning(partition)
      .UseDbscanGrouping(group)
      .UseSweepRepresentatives(reps_options)
      .SetDefaultNumThreads(static_cast<int>(args.GetDouble("threads", 0)));
  const size_t shards = static_cast<size_t>(args.GetDouble("shards", 0));
  if (shards >= 2) {
    // Sharded grouping: cell-grid decomposition, per-shard DBSCAN, halo
    // merge. Applied before the sieve wrap so a combined run shards the
    // sieve's sampled sub-database. Same ε/MinLns/distance as the DBSCAN
    // backend — the merge must describe the same clustering.
    core::ShardedGroupOptions shard_options;
    shard_options.eps = group.eps;
    shard_options.min_lns = group.min_lns;
    shard_options.use_weights = group.use_weights;
    shard_options.distance = group.distance;
    builder.WithShardedGrouping(shard_options);
  }
  const size_t sieve = static_cast<size_t>(args.GetDouble("sieve", 0));
  if (sieve >= 2) {
    // Sieve-sampled grouping: cluster 1-in-k trajectories, assign the rest
    // to the nearest cluster. Same ε and distance as the DBSCAN backend so
    // membership means the same thing on both sides of the sieve.
    core::SieveGroupOptions sieve_options;
    sieve_options.eps = group.eps;
    sieve_options.distance = group.distance;
    builder.WithSieveGrouping(sieve_options);
  }
  const auto engine = builder.Build();
  if (!engine.ok()) return FailWith(engine.status());

  // Eager mode keeps the database around (the --svg overlay draws it);
  // streaming mode never materializes one.
  traj::TrajectoryDatabase db;
  std::optional<common::Result<core::TraclusResult>> run;
  if (stream) {
    auto source = OpenSource(input);
    if (!source.ok()) return FailWith(source.status());
    core::RunContext ctx = MakeContext(args, *kernel);
    ctx.chunk_capacity =
        static_cast<size_t>(args.GetDouble("chunk-size", 0));
    ctx.max_resident_chunks =
        static_cast<size_t>(args.GetDouble("max-resident", 0));
    run = engine->Run(**source, ctx);
    // Mid-stream ingest failures are the streaming twin of an eager load
    // failure: IO/parse problems exit 2, like the loader below. (Config
    // errors were already rejected by Build(), so an InvalidArgument here
    // can only be malformed input.)
    if (!run->ok() &&
        (run->status().code() == common::StatusCode::kIOError ||
         run->status().code() == common::StatusCode::kInvalidArgument)) {
      std::fprintf(stderr, "%s\n", run->status().ToString().c_str());
      return 2;
    }
  } else {
    auto loaded = Load(input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 2;
    }
    db = std::move(loaded).ValueOrDie();
    run = engine->Run(db, MakeContext(args, *kernel));
  }
  if (!run->ok()) return FailWith(run->status());
  const core::TraclusResult& result = **run;

  // A residency-capped streaming run leaves result.store empty on purpose;
  // everything the report and the --labels dump need lives in the chunked
  // store's always-resident catalog.
  const bool capped = result.store.size() == 0 && result.chunked_store;
  const size_t num_segments =
      capped ? result.chunked_store->size() : result.store.size();
  cluster::SegmentSetView view;
  if (capped) {
    view.count = result.chunked_store->size();
    view.weights = result.chunked_store->weights();
    view.trajectory_ids = result.chunked_store->trajectory_ids();
  } else {
    view = cluster::SegmentSetView::Of(result.store);
  }

  std::printf("%zu partitions -> %zu clusters, %zu noise segments\n",
              num_segments, result.clustering.clusters.size(),
              result.clustering.num_noise);
  for (size_t c = 0; c < result.clustering.clusters.size(); ++c) {
    std::printf("  cluster %zu: %zu segments, %zu trajectories\n", c,
                result.clustering.clusters[c].size(),
                cluster::TrajectoryCardinality(view,
                                               result.clustering.clusters[c]));
  }

  const std::string labels = args.GetString("labels");
  if (!labels.empty()) {
    std::ofstream f(labels);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", labels.c_str());
      return 2;
    }
    f << "segment_id,trajectory_id,cluster\n";
    for (size_t i = 0; i < num_segments; ++i) {
      const geom::SegmentId sid = capped ? result.chunked_store->id(i)
                                         : result.segments()[i].id();
      const geom::TrajectoryId tid =
          capped ? result.chunked_store->trajectory_id(i)
                 : result.segments()[i].trajectory_id();
      f << sid << "," << tid << "," << result.clustering.labels[i] << "\n";
    }
    std::printf("wrote %s\n", labels.c_str());
  }

  const std::string reps = args.GetString("reps");
  if (!reps.empty()) {
    traj::TrajectoryDatabase rep_db;
    size_t skipped = 0;
    for (const auto& rep : result.representatives) {
      // A sparse cluster can yield an empty representative (fewer than two
      // sweep positions cleared MinLns); an empty trajectory has no
      // dimensionality and would poison the CSV write.
      if (rep.size() == 0) {
        ++skipped;
        continue;
      }
      rep_db.Add(rep);
    }
    if (skipped > 0) {
      std::fprintf(stderr,
                   "note: %zu empty representative(s) omitted from %s\n",
                   skipped, reps.c_str());
    }
    const auto st = traj::WriteCsv(rep_db, reps);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", reps.c_str());
  }

  const std::string svg_path = args.GetString("svg");
  if (!svg_path.empty()) {
    traj::SvgWriter svg(db.Stats().bounds);
    svg.AddDatabase(db, "#2e8b57", 0.5);
    for (const auto& rep : result.representatives) {
      svg.AddTrajectory(rep, "#cc0000", 3.0);
    }
    const auto st = svg.Save(svg_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", svg_path.c_str());
  }

  if (!snapshot_path.empty()) {
    core::SnapshotParams params;
    params.eps = group.eps;
    params.distance = group.distance;
    params.mdl = partition.mdl;
    const auto snapshot = core::ClusterSnapshot::FromResult(result, params);
    if (!snapshot.ok()) return FailWith(snapshot.status());
    const auto st = (*snapshot)->Save(snapshot_path);
    if (!st.ok()) return FailWith(st);
    std::printf("wrote %s\n", snapshot_path.c_str());
  }
  return 0;
}

int CmdAssign(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  const auto kernel = KernelFlag(args);
  if (!kernel.ok()) return FailWith(kernel.status());
  const auto snapshot = core::ClusterSnapshot::Load(args.positional[0]);
  if (!snapshot.ok()) return FailWith(snapshot.status());
  const auto loaded = Load(args.positional[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 2;
  }

  core::AssignOptions options;
  options.kernel = *kernel;
  options.num_threads = static_cast<int>(args.GetDouble("threads", 1));

  const std::string labels = args.GetString("labels");
  std::ofstream f;
  if (!labels.empty()) {
    f.open(labels);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", labels.c_str());
      return 2;
    }
    f << "trajectory_id,cluster\n";
  }

  size_t assigned = 0;
  for (const auto& trajectory : loaded->trajectories()) {
    const auto result = (*snapshot)->AssignTrajectory(trajectory, options);
    if (!result.ok()) return FailWith(result.status());
    size_t matched = 0;
    for (const int label : result->segment_labels) {
      if (label != cluster::kNoise) ++matched;
    }
    std::printf("trajectory %lld -> cluster %d (%zu/%zu segments within eps)\n",
                static_cast<long long>(trajectory.id()), result->cluster,
                matched, result->segment_labels.size());
    if (result->cluster != cluster::kNoise) ++assigned;
    if (f.is_open()) {
      f << trajectory.id() << "," << result->cluster << "\n";
    }
  }
  std::printf("%zu/%zu trajectories assigned to one of %zu clusters\n",
              assigned, loaded->size(),
              (*snapshot)->clustering().clusters.size());
  if (f.is_open()) std::printf("wrote %s\n", labels.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const std::vector<std::string> value_flags = {
      "seed",    "suppression",  "out",     "eps-lo",     "eps-hi",
      "grid",    "eps",          "min-lns", "labels",     "reps",
      "svg",     "threads",      "kernel",  "chunk-size", "max-resident",
      "sieve",   "sieve-offset", "shards",  "neighbor-cache",
      "save-snapshot"};
  const Args args = Parse(argc - 2, argv + 2, value_flags);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "partition") return CmdPartition(args);
  if (cmd == "estimate") return CmdEstimate(args);
  if (cmd == "cluster") return CmdCluster(args);
  if (cmd == "assign") return CmdAssign(args);
  return Usage();
}
