// Compile-time deprecation hygiene check.
//
// This TU is compiled with -Werror=deprecated-declarations (see
// traclus_deprecation_check in CMakeLists.txt). It exercises the supported
// public surface — the TraclusEngine API — and includes the legacy
// core/traclus.h header without instantiating the deprecated class. It must
// always build clean; two regressions break it on purpose:
//   1. New-API code (engine, stages, builder) starts referencing a deprecated
//      symbol — the supported surface must never depend on the façade.
//   2. Including the façade header alone starts warning — migrated consumers
//      that still include core/traclus.h transitively must stay warning-free
//      until they actually construct a Traclus.
// The CLI and every example are additionally compiled with the same -Werror
// flag, so a migrated consumer silently reaching back for core::Traclus fails
// the build rather than reintroducing the old API.

#include "core/engine.h"
#include "core/stages.h"
#include "core/traclus.h"  // Header inclusion alone must not warn.

namespace {

using traclus::core::TraclusEngine;

[[maybe_unused]] traclus::common::Result<TraclusEngine> AssembleWithBuilder() {
  traclus::core::DbscanGroupOptions group;
  group.eps = 1.0;
  group.min_lns = 2.0;
  traclus::core::SweepRepresentativeOptions reps;
  reps.min_lns = 2.0;
  return TraclusEngine::Builder()
      .UseMdlPartitioning()
      .UseDbscanGrouping(group)
      .UseSweepRepresentatives(reps)
      .SetDefaultNumThreads(1)
      .Build();
}

[[maybe_unused]] traclus::common::Result<TraclusEngine> AssembleFromConfig() {
  // The legacy config STRUCT is not deprecated (it is the migration bridge);
  // only the Traclus CLASS is.
  return TraclusEngine::FromConfig(traclus::core::TraclusConfig{});
}

}  // namespace
