#!/usr/bin/env python3
"""FP-determinism and resumability linter.

The pipeline sells a hard guarantee: byte-identical output at 1 vs N threads,
scalar vs SIMD, eager vs chunked (pinned by tests/golden/). That guarantee
survives only if nobody reintroduces a construct that makes floating-point
results target-, scheduling-, or run-dependent. This linter bans those
constructs statically, so a violation fails the build instead of flaking a
golden diff months later.

Rules (each has an id used in diagnostics and suppressions):

  fast-math     -ffast-math / -funsafe-math-optimizations flags and
                fast-math / FP-contraction pragmas (#pragma STDC FP_CONTRACT,
                #pragma float_control, #pragma clang fp, fast-math
                #pragma GCC optimize). The build pins -ffp-contract=off
                globally; nothing may override it. Scanned in src/ AND in
                CMake files.
  unordered-fp  std::reduce / std::transform_reduce / std::execution
                policies: reduction order is unspecified, so accumulating
                doubles through them is scheduling-dependent by definition.
                Use ordered loops (or the index-addressed ParallelFor
                pattern) instead.
  fma           FMA contraction intrinsics (_mm*_fmadd/_fmsub/_fnmadd/
                _fnmsub, __builtin_fma*, std::fma): fused multiply-add
                rounds once where separate ops round twice, so results
                differ from the scalar reference. Allowed ONLY in
                distance/store_kernel_detail.h, the single canonical kernel
                all paths share (if FMA ever lands, every path inherits it
                together and the goldens are regenerated once).
  wild-rng      rand()/srand(), std::random_device, and time-seeded RNG
                (time(NULL/nullptr/0), *_clock::now as a seed source):
                library code must draw all randomness from common::Rng with
                an explicit caller-provided seed, or runs are not
                reproducible/resumable. Allowed only under src/datagen/
                (and even there explicit seeds are the norm).

Comments are stripped before matching, so prose mentioning a banned name is
fine. Suppression: `// determinism:allow(<rule-id>) -- <justification>` on
the offending line; a marker without a justification is itself an error.

Exit status: 0 if clean, 1 on any violation; diagnostics are
`path:line: error: [determinism/<rule>] message`.

Run over the tree:   check_determinism.py --root <repo-root>
Self-test:           check_determinism.py --self-test
"""

import argparse
import os
import re
import sys
import tempfile

RULES = [
    ("fast-math", re.compile(
        r"-ffast-math|-funsafe-math-optimizations"
        r"|#\s*pragma\s+STDC\s+FP_CONTRACT\s+(?:ON|DEFAULT)"
        r"|#\s*pragma\s+float_control"
        r"|#\s*pragma\s+clang\s+fp\b"
        r"|#\s*pragma\s+GCC\s+optimize[^\n]*fast-math"),
     "fast-math / FP-contraction override breaks bit-exact goldens "
     "(the build pins -ffp-contract=off globally)"),
    ("unordered-fp", re.compile(
        r"\bstd\s*::\s*(?:reduce|transform_reduce)\b"
        r"|\bstd\s*::\s*execution\s*::"),
     "unordered-reduction primitive: accumulation order is unspecified, so "
     "FP results become scheduling-dependent; use an ordered loop or the "
     "index-addressed ParallelFor pattern"),
    ("fma", re.compile(
        r"\b_mm\d*_(?:fmadd|fmsub|fnmadd|fnmsub)_\w+"
        r"|\b__builtin_fma\w*\b"
        r"|\bstd\s*::\s*fma[fl]?\s*\("),
     "FMA rounds once where mul+add round twice, diverging from the scalar "
     "reference; FMA may live only in distance/store_kernel_detail.h (the "
     "one canonical kernel every path shares)"),
    ("wild-rng", re.compile(
        r"(?<![\w:])s?rand\s*\(" r"|\bstd\s*::\s*random_device\b"
        r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
        r"|\b(?:steady|system|high_resolution)_clock\s*::\s*now\b"),
     "non-reproducible randomness/seeding: draw from common::Rng with an "
     "explicit caller-provided seed (time-seeded or device-seeded RNG makes "
     "runs non-resumable)"),
]

# rule-id -> path predicates (relative, '/'-separated) where it is permitted.
ALLOWLIST = {
    "fma": lambda rel: rel == "src/distance/store_kernel_detail.h",
    "wild-rng": lambda rel: rel.startswith("src/datagen/"),
}

ALLOW_RE = re.compile(r"//\s*determinism:allow\(([\w-]+)\)"
                      r"(?:\s*--\s*(\S.*))?")

CMAKE_FILES = ("CMakeLists.txt", "CMakePresets.json")
SOURCE_EXTS = (".h", ".cc")


def strip_comments(lines):
    """Yields (lineno, code, raw) with //- and /*-comments blanked out.

    String literals are not parsed; banned tokens inside strings are so
    unlikely (and a false positive so cheap to suppress) that the simple
    scanner wins on auditability.
    """
    in_block = False
    for lineno, raw in enumerate(lines, 1):
        out = []
        i = 0
        while i < len(raw):
            if in_block:
                end = raw.find("*/", i)
                if end == -1:
                    i = len(raw)
                else:
                    in_block = False
                    i = end + 2
            else:
                line_c = raw.find("//", i)
                block_c = raw.find("/*", i)
                if line_c == -1 and block_c == -1:
                    out.append(raw[i:])
                    break
                if line_c != -1 and (block_c == -1 or line_c < block_c):
                    out.append(raw[i:line_c])
                    break
                out.append(raw[i:block_c])
                in_block = True
                i = block_c + 2
        yield lineno, "".join(out), raw


def lint_file(path, rel, errors, cmake_mode=False):
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()
    active = RULES if not cmake_mode else [r for r in RULES
                                           if r[0] == "fast-math"]
    for lineno, code, raw in strip_comments(lines):
        allow = ALLOW_RE.search(raw)
        if allow and not allow.group(2):
            errors.append(
                (rel, lineno, "allow",
                 f"determinism:allow({allow.group(1)}) without a "
                 f"justification (write `// determinism:allow(...) -- "
                 f"<why>`)"))
            continue
        for rule_id, pattern, why in active:
            if not pattern.search(code):
                continue
            if allow and allow.group(1) == rule_id:
                continue  # Justified suppression.
            permitted = ALLOWLIST.get(rule_id)
            if permitted and permitted(rel):
                continue
            errors.append(
                (rel, lineno, rule_id,
                 f"banned construct `{pattern.search(code).group(0).strip()}`"
                 f": {why}"))


def lint_tree(root):
    errors = []
    src_root = os.path.join(root, "src")
    if not os.path.isdir(src_root):
        return [("src", 0, "tree", f"no src/ directory under {root}")]
    for dirpath, dirnames, filenames in sorted(os.walk(src_root)):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTS):
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                lint_file(path, rel, errors)
    for name in CMAKE_FILES:
        path = os.path.join(root, name)
        if os.path.isfile(path):
            lint_file(path, name, errors, cmake_mode=True)
    return errors


def report(errors):
    for rel, lineno, rule, msg in errors:
        print(f"{rel}:{lineno}: error: [determinism/{rule}] {msg}")
    return 1 if errors else 0


def write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def self_test():
    failures = []

    def check(name, cond, detail=""):
        status = "ok" if cond else "FAIL"
        print(f"  [{status}] {name}{(' — ' + detail) if detail else ''}")
        if not cond:
            failures.append(name)

    with tempfile.TemporaryDirectory(prefix="lint_det_") as root:
        write(root, "src/distance/clean.cc",
              "// std::reduce mentioned in a comment is fine\n"
              "double Sum(const double* p, int n) {\n"
              "  double s = 0.0;\n"
              "  for (int i = 0; i < n; ++i) s += p[i];\n"
              "  return s;\n"
              "}\n")
        check("clean tree passes", lint_tree(root) == [])

        # unordered-fp on an exact line.
        write(root, "src/distance/bad_reduce.cc",
              "#include <numeric>\n"
              "double Sum(const double* p, int n) {\n"
              "  return std::reduce(p, p + n, 0.0);\n"
              "}\n")
        errors = lint_tree(root)
        check("std::reduce caught at exact line",
              any(e[0] == "src/distance/bad_reduce.cc" and e[1] == 3
                  and e[2] == "unordered-fp" for e in errors),
              f"got: {errors}")
        os.remove(os.path.join(root, "src/distance/bad_reduce.cc"))

        # fma: banned outside the canonical kernel, allowed inside it.
        fma_line = "  __m256d r = _mm256_fmadd_pd(a, b, c);\n"
        write(root, "src/cluster/bad_fma.cc", "void F() {\n" + fma_line + "}\n")
        errors = lint_tree(root)
        check("FMA intrinsic caught outside store_kernel_detail.h",
              any(e[1] == 2 and e[2] == "fma" for e in errors),
              f"got: {errors}")
        os.remove(os.path.join(root, "src/cluster/bad_fma.cc"))
        write(root, "src/distance/store_kernel_detail.h",
              "void F() {\n" + fma_line + "}\n")
        check("FMA allowed in store_kernel_detail.h", lint_tree(root) == [])
        os.remove(os.path.join(root, "src/distance/store_kernel_detail.h"))

        # wild-rng: banned in library code, allowed under datagen/.
        rng_line = "int x = rand();\n"
        write(root, "src/cluster/bad_rng.cc", rng_line)
        errors = lint_tree(root)
        check("rand() caught outside datagen/",
              any(e[1] == 1 and e[2] == "wild-rng" for e in errors),
              f"got: {errors}")
        os.remove(os.path.join(root, "src/cluster/bad_rng.cc"))
        write(root, "src/datagen/gen.cc", rng_line)
        check("rand() allowed under datagen/", lint_tree(root) == [])
        os.remove(os.path.join(root, "src/datagen/gen.cc"))

        # time-seeding and random_device.
        write(root, "src/params/bad_seed.cc",
              "#include <ctime>\n"
              "unsigned Seed() { return time(nullptr); }\n")
        errors = lint_tree(root)
        check("time(nullptr) seed caught",
              any(e[1] == 2 and e[2] == "wild-rng" for e in errors),
              f"got: {errors}")
        os.remove(os.path.join(root, "src/params/bad_seed.cc"))

        # fast-math pragma in source and flag in CMake.
        write(root, "src/geom/bad_pragma.cc",
              "#pragma STDC FP_CONTRACT ON\n")
        errors = lint_tree(root)
        check("FP_CONTRACT pragma caught",
              any(e[1] == 1 and e[2] == "fast-math" for e in errors),
              f"got: {errors}")
        os.remove(os.path.join(root, "src/geom/bad_pragma.cc"))
        write(root, "CMakeLists.txt",
              "add_compile_options(-ffast-math)\n")
        errors = lint_tree(root)
        check("-ffast-math in CMakeLists caught",
              any(e[0] == "CMakeLists.txt" and e[1] == 1
                  and e[2] == "fast-math" for e in errors),
              f"got: {errors}")
        os.remove(os.path.join(root, "CMakeLists.txt"))

        # Suppressions: bare marker rejected, justified marker honored.
        write(root, "src/eval/supp.cc",
              "double s = std::reduce(p, q);"
              "  // determinism:allow(unordered-fp)\n")
        errors = lint_tree(root)
        check("bare determinism:allow rejected",
              any(e[2] == "allow" for e in errors), f"got: {errors}")
        write(root, "src/eval/supp.cc",
              "double s = std::reduce(p, q);"
              "  // determinism:allow(unordered-fp) -- self-test fixture\n")
        check("justified determinism:allow accepted", lint_tree(root) == [])

    if failures:
        print(f"self-test FAILED: {len(failures)} check(s): {failures}")
        return 1
    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="plant banned constructs in a temp tree and "
                             "assert the linter catches them")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    errors = lint_tree(args.root)
    rc = report(errors)
    if rc == 0:
        print("check_determinism: clean (no banned FP/RNG constructs)")
    return rc


if __name__ == "__main__":
    sys.exit(main())
