#!/usr/bin/env bash
# clang-tidy zero-new-findings gate.
#
# Runs clang-tidy (profile: .clang-tidy at the repo root) over every
# translation unit in the compile database, normalizes the findings to
# stable `path:line: warning: message [check]` lines, and fails if any
# finding is not present in tools/lint/tidy_baseline.txt.
#
# The baseline is the escape hatch for findings that predate the gate or
# that we explicitly decided to live with — it is checked in, reviewed, and
# currently EMPTY. Adding a line to it in the same PR that introduces the
# finding defeats the gate; reviewers should treat baseline growth as a
# code smell.
#
# Usage: tools/lint/run_tidy_gate.sh <build-dir> [report-file]
#   <build-dir> must contain compile_commands.json
#   (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
#   The full tidy output is written to [report-file]
#   (default: <build-dir>/clang-tidy-report.txt) for artifact upload.

set -u
BUILD_DIR="${1:?usage: run_tidy_gate.sh <build-dir> [report-file]}"
REPORT="${2:-${BUILD_DIR}/clang-tidy-report.txt}"
ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BASELINE="${ROOT}/tools/lint/tidy_baseline.txt"

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found" \
       "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi

TIDY="$(command -v clang-tidy || command -v clang-tidy-14 || true)"
RUNNER="$(command -v run-clang-tidy || command -v run-clang-tidy-14 || true)"
if [ -z "${TIDY}" ]; then
  echo "error: clang-tidy not installed" >&2
  exit 2
fi

# Library + tool translation units only: tests/benches/examples follow
# looser idioms (gtest macros trip several bugprone checks by construction).
FILES_RE="${ROOT}/(src|tools)/.*\.cc"

if [ -n "${RUNNER}" ]; then
  "${RUNNER}" -clang-tidy-binary "${TIDY}" -p "${BUILD_DIR}" -quiet \
    "${FILES_RE}" > "${REPORT}" 2>/dev/null
else
  : > "${REPORT}"
  # shellcheck disable=SC2013
  for f in $(grep -oE '"file": *"[^"]+"' "${BUILD_DIR}/compile_commands.json" \
             | cut -d'"' -f4 | sort -u | grep -E "${FILES_RE}"); do
    "${TIDY}" -p "${BUILD_DIR}" -quiet "$f" >> "${REPORT}" 2>/dev/null
  done
fi

# Normalize: repo-relative paths, findings lines only, deduped (headers
# surface once per including TU).
FINDINGS="$(grep -E ' (warning|error): .*\[[a-z0-9.,-]+\]$' "${REPORT}" \
  | sed "s|^${ROOT}/||" | sort -u || true)"

NEW="$(comm -23 <(printf '%s\n' "${FINDINGS}" | sed '/^$/d') \
                <(sed '/^#/d;/^$/d' "${BASELINE}" | sort -u))"

if [ -n "${NEW}" ]; then
  echo "clang-tidy gate FAILED: findings not in tools/lint/tidy_baseline.txt:"
  printf '%s\n' "${NEW}"
  echo
  echo "(full report: ${REPORT})"
  exit 1
fi

COUNT="$(printf '%s' "${FINDINGS}" | sed '/^$/d' | wc -l | tr -d ' ')"
echo "clang-tidy gate passed: ${COUNT} finding(s), all baselined" \
     "(baseline has $(sed '/^#/d;/^$/d' "${BASELINE}" | wc -l | tr -d ' ') lines)"
exit 0
