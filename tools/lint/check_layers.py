#!/usr/bin/env python3
"""Layer-DAG include linter.

Machine-enforces the project's layer architecture over the `#include` graph:

    common <- geom <- traj <- distance <- {partition, cluster} <- core
    params/eval hang off cluster; datagen off traj; baseline off distance.

Every `#include "layer/header.h"` edge in src/ must stay inside the including
layer's allowed dependency set (ALLOWED below, the transitive closure of the
DAG — the same graph CMakeLists.txt links). The linter also enforces include
hygiene: project headers must be included with quotes (never angle brackets),
every quoted project include must resolve to a real file under src/, and a
file in an unregistered layer directory is an error (new layers must be
added to ALLOWED deliberately, together with their CMake target).

Exit status: 0 if clean, 1 on any violation. Diagnostics are one per line in
`path:line: error: [layers] message` form, so editors and CI annotate them.

Suppression: append `// layers:allow -- <justification>` to the offending
include line. A marker without a justification is itself an error; the gate's
contract is zero suppressions or each one justified inline.

Run over the tree:   check_layers.py --root <repo-root>
Self-test:           check_layers.py --self-test
  (plants violations in a temp tree and asserts each is caught with a
  line-exact diagnostic; registered in ctest as lint_layers_selftest)
"""

import argparse
import os
import re
import sys
import tempfile

# Allowed include targets per layer (the transitive closure of the layer DAG).
# A layer may always include itself.
ALLOWED = {
    "common": set(),
    "geom": {"common"},
    "traj": {"geom", "common"},
    "distance": {"traj", "geom", "common"},
    "partition": {"distance", "traj", "geom", "common"},
    "cluster": {"distance", "traj", "geom", "common"},
    "params": {"cluster", "distance", "traj", "geom", "common"},
    "eval": {"cluster", "distance", "traj", "geom", "common"},
    "baseline": {"distance", "traj", "geom", "common"},
    "datagen": {"traj", "geom", "common"},
    "core": {"partition", "cluster", "distance", "traj", "geom", "common"},
}

SOURCE_EXTS = (".h", ".cc")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
ALLOW_RE = re.compile(r"//\s*layers:allow(?:\s*--\s*(\S.*))?")


def lint_file(path, rel, layer, src_root, errors):
    """Appends `(rel, line, message)` tuples for every violation in one file."""
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            quote, target = m.groups()
            parts = target.split("/")
            top = parts[0]
            if top not in ALLOWED and quote == "<":
                continue  # System / third-party header.
            allow = ALLOW_RE.search(line)
            if allow:
                if not allow.group(1):
                    errors.append(
                        (rel, lineno,
                         "layers:allow marker without a justification "
                         "(write `// layers:allow -- <why>`)"))
                continue
            if quote == "<" and top in ALLOWED:
                errors.append(
                    (rel, lineno,
                     f'project header <{target}> included with angle '
                     f'brackets; use "{target}"'))
                continue
            if quote == '"':
                if top not in ALLOWED:
                    errors.append(
                        (rel, lineno,
                         f'include "{target}" does not start with a '
                         f"registered layer (known: "
                         f"{', '.join(sorted(ALLOWED))}); register new "
                         f"layers in tools/lint/check_layers.py"))
                    continue
                if not os.path.isfile(os.path.join(src_root, target)):
                    errors.append(
                        (rel, lineno,
                         f'include "{target}" does not resolve to a file '
                         f"under src/ (stale or misspelled include)"))
                    continue
                if top != layer and top not in ALLOWED[layer]:
                    errors.append(
                        (rel, lineno,
                         f"layer '{layer}' must not include from layer "
                         f"'{top}' (allowed: "
                         f"{', '.join(sorted(ALLOWED[layer])) or 'none'}); "
                         f"this violates the layer DAG common<-geom<-traj"
                         f"<-distance<-{{partition,cluster}}<-core"))


def lint_tree(root):
    """Lints src/ under `root`. Returns a list of (relpath, line, message)."""
    src_root = os.path.join(root, "src")
    errors = []
    if not os.path.isdir(src_root):
        return [("src", 0, f"no src/ directory under {root}")]
    for dirpath, dirnames, filenames in sorted(os.walk(src_root)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTS):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            rel_src = os.path.relpath(path, src_root)
            layer = rel_src.split(os.sep)[0]
            if layer not in ALLOWED:
                errors.append(
                    (rel, 0,
                     f"file lives in unregistered layer directory '{layer}'; "
                     f"add the layer (and its allowed deps) to "
                     f"tools/lint/check_layers.py"))
                continue
            lint_file(path, rel, layer, src_root, errors)
    return errors


def report(errors):
    for rel, lineno, msg in errors:
        print(f"{rel}:{lineno}: error: [layers] {msg}")
    return 1 if errors else 0


def write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def self_test():
    """Plants violations in a temp tree; asserts line-exact diagnostics."""
    failures = []

    def check(name, cond, detail=""):
        status = "ok" if cond else "FAIL"
        print(f"  [{status}] {name}{(' — ' + detail) if detail else ''}")
        if not cond:
            failures.append(name)

    with tempfile.TemporaryDirectory(prefix="lint_layers_") as root:
        # A minimal clean tree must pass.
        write(root, "src/common/logging.h", "#pragma once\n")
        write(root, "src/geom/point.h",
              '#pragma once\n#include "common/logging.h"\n')
        write(root, "src/cluster/cluster.h",
              '#pragma once\n#include "geom/point.h"\n')
        check("clean tree passes", lint_tree(root) == [])

        # Violation 1: an upward edge (geom -> cluster) on a known line.
        write(root, "src/geom/bad.h",
              "#pragma once\n"
              '#include "common/logging.h"\n'
              '#include "cluster/cluster.h"\n')
        errors = lint_tree(root)
        check("upward edge caught",
              any(e[0] == os.path.join("src", "geom", "bad.h") and e[1] == 3
                  and "layer 'geom' must not include from layer 'cluster'"
                  in e[2] for e in errors),
              f"got: {errors}")
        check("exactly one violation reported", len(errors) == 1)
        os.remove(os.path.join(root, "src/geom/bad.h"))

        # Violation 2: stale include (file does not exist).
        write(root, "src/geom/stale.h",
              '#include "common/nonexistent.h"\n')
        errors = lint_tree(root)
        check("stale include caught",
              any(e[1] == 1 and "does not resolve" in e[2] for e in errors),
              f"got: {errors}")
        os.remove(os.path.join(root, "src/geom/stale.h"))

        # Violation 3: angle brackets on a project header.
        write(root, "src/geom/angle.h", "#include <common/logging.h>\n")
        errors = lint_tree(root)
        check("angle-bracket project include caught",
              any(e[1] == 1 and "angle brackets" in e[2] for e in errors),
              f"got: {errors}")
        os.remove(os.path.join(root, "src/geom/angle.h"))

        # Violation 4: unregistered layer directory.
        write(root, "src/newlayer/x.h", "#pragma once\n")
        errors = lint_tree(root)
        check("unregistered layer caught",
              any("unregistered layer directory 'newlayer'" in e[2]
                  for e in errors), f"got: {errors}")
        os.remove(os.path.join(root, "src/newlayer/x.h"))
        os.rmdir(os.path.join(root, "src/newlayer"))

        # Suppression: bare marker is an error; justified marker passes.
        write(root, "src/geom/supp.h",
              '#include "cluster/cluster.h"  // layers:allow\n')
        errors = lint_tree(root)
        check("bare layers:allow rejected",
              any("without a justification" in e[2] for e in errors),
              f"got: {errors}")
        write(root, "src/geom/supp.h",
              '#include "cluster/cluster.h"'
              "  // layers:allow -- self-test fixture\n")
        check("justified layers:allow accepted", lint_tree(root) == [])

    if failures:
        print(f"self-test FAILED: {len(failures)} check(s): {failures}")
        return 1
    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="plant violations in a temp tree and assert "
                             "the linter catches them")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    errors = lint_tree(args.root)
    rc = report(errors)
    if rc == 0:
        print("check_layers: clean (layer DAG and include hygiene hold)")
    return rc


if __name__ == "__main__":
    sys.exit(main())
