// Integration tests: the full TRACLUS pipeline (Fig. 4) end to end, including
// the headline Example 1 claim — discovery of a common sub-trajectory that
// whole-trajectory clustering cannot see.

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/regression_mixture.h"
#include "core/engine.h"
#include "datagen/common_subtrajectory.h"
#include "datagen/noisy_generator.h"
#include "eval/cluster_stats.h"
#include "eval/qmeasure.h"

namespace traclus::core {
namespace {

using geom::Point;

TraclusConfig Fig1Config() {
  TraclusConfig cfg;
  cfg.eps = 10.0;
  cfg.min_lns = 3;
  return cfg;
}

// Engine run helper: these tests hardcode valid configs / non-empty inputs.
TraclusResult RunConfig(const TraclusConfig& cfg,
                        const traj::TrajectoryDatabase& db) {
  auto engine = TraclusEngine::FromConfig(cfg);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto result = engine->Run(db);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

TEST(TraclusIntegrationTest, DiscoversCommonSubTrajectoryOfFig1) {
  const auto db =
      datagen::GenerateCommonSubTrajectory(
          datagen::CommonSubTrajectoryConfig{});
  const TraclusResult result = RunConfig(Fig1Config(), db);

  // Exactly one cluster: the shared corridor. The divergent branches are noise.
  ASSERT_EQ(result.clustering.clusters.size(), 1u);
  ASSERT_EQ(result.representatives.size(), 1u);

  // The representative trajectory runs along the shared corridor (y ≈ 0,
  // x from ≈0 to ≈200).
  const traj::Trajectory& rep = result.representatives[0];
  ASSERT_GE(rep.size(), 2u);
  for (const auto& p : rep.points()) {
    EXPECT_NEAR(p.y(), 0.0, 8.0);
    EXPECT_GE(p.x(), -15.0);
    EXPECT_LE(p.x(), 215.0);
  }
  const double span = rep.points().back().x() - rep.points().front().x();
  EXPECT_GT(span, 120.0) << "representative must cover most of the corridor";

  // All five trajectories participate in the cluster.
  EXPECT_EQ(cluster::TrajectoryCardinality(result.store,
                                           result.clustering.clusters[0]),
            5u);
}

TEST(TraclusIntegrationTest, WholeTrajectoryBaselineCannotIsolateCorridor) {
  // The contrast experiment behind Fig. 1: the regression-mixture baseline
  // assigns whole trajectories to components, so at least two of the five
  // divergent trajectories always share a component even though their full
  // paths are dissimilar — and no output object isolates the shared corridor.
  const auto db =
      datagen::GenerateCommonSubTrajectory(
          datagen::CommonSubTrajectoryConfig{});
  baseline::RegressionMixtureConfig cfg;
  cfg.num_components = 3;
  const auto fit = baseline::RegressionMixtureClusterer(cfg).Fit(db);
  // Pigeonhole: 5 trajectories, 3 components.
  std::vector<int> counts(3, 0);
  for (const int a : fit.assignments) counts[a]++;
  EXPECT_GT(*std::max_element(counts.begin(), counts.end()), 1);
}

TEST(TraclusIntegrationTest, RobustToNoiseTrajectories) {
  // Fig. 23: planted clusters survive 25% noise trajectories.
  datagen::NoisyConfig cfg;
  cfg.num_trajectories = 120;
  cfg.noise_fraction = 0.25;
  cfg.num_planted_corridors = 4;
  const auto db = datagen::GenerateNoisy(cfg);

  TraclusConfig tcfg;
  tcfg.eps = 3.0;  // Corridors are ~20 apart; larger ε lets noise bridge them.
  tcfg.min_lns = 8;
  const TraclusResult result = RunConfig(tcfg, db);
  EXPECT_EQ(result.clustering.clusters.size(), 4u)
      << "all four planted corridors should be recovered";
  EXPECT_GT(result.clustering.num_noise, 0u);
}

TEST(TraclusIntegrationTest, IndexAndBruteForceAgreeEndToEnd) {
  datagen::NoisyConfig cfg;
  cfg.num_trajectories = 60;
  const auto db = datagen::GenerateNoisy(cfg);
  TraclusConfig with_index;
  with_index.eps = 4.0;
  with_index.min_lns = 6;
  with_index.use_index = true;
  TraclusConfig without_index = with_index;
  without_index.use_index = false;

  const auto a = RunConfig(with_index, db);
  const auto b = RunConfig(without_index, db);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  ASSERT_EQ(a.representatives.size(), b.representatives.size());
  for (size_t i = 0; i < a.representatives.size(); ++i) {
    ASSERT_EQ(a.representatives[i].size(), b.representatives[i].size());
    for (size_t j = 0; j < a.representatives[i].size(); ++j) {
      EXPECT_EQ(a.representatives[i][j], b.representatives[i][j]);
    }
  }
}

TEST(TraclusIntegrationTest, PartitionPhaseAccumulatesAllTrajectories) {
  const auto db =
      datagen::GenerateCommonSubTrajectory(
          datagen::CommonSubTrajectoryConfig{});
  auto engine = TraclusEngine::FromConfig(Fig1Config());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto partitioned = engine->Partition(db);
  ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();
  const auto& segments = partitioned->segments();
  const auto& cps = partitioned->characteristic_points;
  ASSERT_EQ(cps.size(), db.size());
  // Segment ids are dense and sequential across the whole database (Fig. 4
  // line 03 accumulation).
  for (size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].id(), static_cast<geom::SegmentId>(i));
  }
  // Every trajectory contributed at least one partition.
  std::vector<bool> seen(db.size(), false);
  for (const auto& s : segments) {
    seen[static_cast<size_t>(s.trajectory_id())] = true;
  }
  for (const bool b : seen) EXPECT_TRUE(b);
}

TEST(TraclusIntegrationTest, OptimalPartitioningConfigRuns) {
  datagen::CommonSubTrajectoryConfig gen;
  gen.num_trajectories = 4;
  const auto db = datagen::GenerateCommonSubTrajectory(gen);
  TraclusConfig cfg = Fig1Config();
  cfg.partitioning_algorithm = PartitioningAlgorithm::kOptimalMdl;
  const auto result = RunConfig(cfg, db);
  EXPECT_FALSE(result.segments().empty());
}

TEST(TraclusIntegrationTest, WeightedTrajectoriesChangeDensity) {
  // Two trajectories along a corridor cannot meet MinLns = 5 unweighted; with
  // weight 3 each and the weighted extension they can.
  traj::TrajectoryDatabase db;
  for (int i = 0; i < 2; ++i) {
    traj::Trajectory tr(i, "", /*weight=*/3.0);
    for (int k = 0; k <= 20; ++k) tr.Add(Point(10.0 * k, 0.2 * i));
    db.Add(std::move(tr));
  }
  TraclusConfig cfg;
  cfg.eps = 2.0;
  cfg.min_lns = 5;
  cfg.min_trajectory_cardinality = 2;
  const auto unweighted = RunConfig(cfg, db);
  EXPECT_TRUE(unweighted.clustering.clusters.empty());

  cfg.use_weights = true;
  const auto weighted = RunConfig(cfg, db);
  EXPECT_EQ(weighted.clustering.clusters.size(), 1u);
}

TEST(TraclusIntegrationTest, UndirectedDistanceMergesOpposingFlows) {
  // Two anti-parallel corridors on top of each other: directed clustering sees
  // two flows; undirected clustering merges them (§7.1 Extensibility).
  traj::TrajectoryDatabase db;
  for (int i = 0; i < 4; ++i) {
    traj::Trajectory tr(i);
    for (int k = 0; k <= 20; ++k) tr.Add(Point(10.0 * k, 0.1 * i));
    db.Add(std::move(tr));
  }
  for (int i = 4; i < 8; ++i) {
    traj::Trajectory tr(i);
    for (int k = 20; k >= 0; --k) tr.Add(Point(10.0 * k, 0.1 * i));
    db.Add(std::move(tr));
  }
  TraclusConfig cfg;
  cfg.eps = 2.0;
  cfg.min_lns = 3;
  const auto directed = RunConfig(cfg, db);
  EXPECT_EQ(directed.clustering.clusters.size(), 2u);

  cfg.distance.directed = false;
  const auto undirected = RunConfig(cfg, db);
  EXPECT_EQ(undirected.clustering.clusters.size(), 1u);
}

TEST(TraclusIntegrationTest, QMeasureIsComputableOnPipelineOutput) {
  datagen::NoisyConfig gen;
  gen.num_trajectories = 40;
  const auto db = datagen::GenerateNoisy(gen);
  TraclusConfig cfg;
  cfg.eps = 4.0;
  cfg.min_lns = 5;
  const auto result = RunConfig(cfg, db);
  const distance::SegmentDistance dist(cfg.distance);
  const auto q =
      eval::ComputeQMeasure(result.segments(), result.clustering, dist);
  EXPECT_GE(q.total_sse, 0.0);
  EXPECT_GE(q.noise_penalty, 0.0);
  EXPECT_TRUE(std::isfinite(q.qmeasure));
  const auto stats =
      eval::SummarizeClustering(result.segments(), result.clustering);
  EXPECT_EQ(stats.num_clusters, result.clustering.clusters.size());
}

TEST(TraclusIntegrationTest, DeterministicEndToEnd) {
  datagen::NoisyConfig gen;
  gen.num_trajectories = 50;
  const auto db = datagen::GenerateNoisy(gen);
  TraclusConfig cfg;
  cfg.eps = 4.0;
  cfg.min_lns = 5;
  const auto a = RunConfig(cfg, db);
  const auto b = RunConfig(cfg, db);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
}

TEST(TraclusIntegrationTest, EmptyAndDegenerateInputs) {
  auto engine = TraclusEngine::FromConfig(Fig1Config());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // An empty database is a typed precondition failure, not a crash.
  traj::TrajectoryDatabase empty;
  const auto r0 = engine->Run(empty);
  ASSERT_FALSE(r0.ok());
  EXPECT_EQ(r0.status().code(), common::StatusCode::kFailedPrecondition);

  // Degenerate trajectories (too short / all-coincident points) partition to
  // an empty segment database and an empty clustering.
  traj::TrajectoryDatabase degenerate;
  traj::Trajectory single(0);
  single.Add(Point(1, 1));
  degenerate.Add(std::move(single));
  traj::Trajectory repeated(1);
  for (int i = 0; i < 5; ++i) repeated.Add(Point(2, 2));
  degenerate.Add(std::move(repeated));
  const auto r1 = engine->Run(degenerate);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1->segments().empty());
  EXPECT_TRUE(r1->clustering.clusters.empty());
}

}  // namespace
}  // namespace traclus::core
