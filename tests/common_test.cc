// Unit tests for the common substrate: Status/Result, Rng, Matrix/SolveSpd.

#include <gtest/gtest.h>

#include <cmath>

#include "common/matrix.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace traclus::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad eps");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad eps");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad eps");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Internal("x"));
}

TEST(ReturnNotOkMacroTest, PropagatesFailure) {
  auto fails = []() -> Status { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    TRACLUS_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::IOError("disk on fire"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, UniformIntRespectsInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    saw_lo |= (v == 0);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(99);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(MatrixTest, IdentityMultiplication) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Matrix i2 = Matrix::Identity(2);
  const Matrix prod = i2.Multiply(a);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
  }
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, TransposedSwapsDims) {
  Matrix a(2, 3);
  a(0, 2) = 9.5;
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 9.5);
}

TEST(SolveSpdTest, SolvesDiagonalSystem) {
  Matrix a(3, 3);
  a(0, 0) = 2;
  a(1, 1) = 4;
  a(2, 2) = 8;
  const std::vector<double> x = SolveSpd(a, {2, 8, 32});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 4.0, 1e-12);
}

TEST(SolveSpdTest, SolvesDenseSpdSystem) {
  // A = B^T B + I is SPD for any B.
  Matrix b(3, 3);
  double v = 1.0;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) b(r, c) = (v += 0.7);
  }
  Matrix a = b.Transposed().Multiply(b);
  for (size_t i = 0; i < 3; ++i) a(i, i) += 1.0;

  const std::vector<double> truth = {1.5, -2.0, 0.25};
  std::vector<double> rhs(3, 0.0);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) rhs[r] += a(r, c) * truth[c];
  }
  const std::vector<double> x = SolveSpd(a, rhs);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], truth[i], 1e-9);
}

TEST(SolveSpdTest, RidgeRescuesSingularMatrix) {
  // Rank-deficient: second row duplicates the first. The ridge fallback must
  // still produce a finite solution.
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 1;
  const std::vector<double> x = SolveSpd(a, {2, 2});
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_TRUE(std::isfinite(x[1]));
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

}  // namespace
}  // namespace traclus::common
