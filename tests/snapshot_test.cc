// Tests for core::ClusterSnapshot (core/snapshot.h): exact file round-trip
// on the golden hurricane and deer pipelines, assignment determinism across
// thread counts × kernels (and across FromResult vs Load), the typed error
// surface of Load/FromResult, and a concurrent Assign hammer that the TSan
// CI lane runs to certify the serving path race-free.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "core/engine.h"
#include "core/snapshot.h"
#include "datagen/animal_generator.h"
#include "datagen/hurricane_generator.h"
#include "distance/batch_kernels.h"
#include "traj/segment_store.h"
#include "traj/trajectory_database.h"

namespace traclus::core {
namespace {

struct GoldenCase {
  const char* name;
  traj::TrajectoryDatabase db;
  double eps;
  double min_lns;
};

// The two golden pipelines (tests/golden/): hurricane at ε = 0.94 /
// MinLns = 5, deer at ε = 1.8 / MinLns = 8.
std::vector<GoldenCase> GoldenCases() {
  std::vector<GoldenCase> cases;
  cases.push_back({"hurricane",
                   datagen::GenerateHurricanes(datagen::HurricaneConfig{}),
                   0.94, 5.0});
  cases.push_back({"deer", datagen::GenerateAnimals(datagen::Deer1995Config()),
                   1.8, 8.0});
  return cases;
}

common::Result<TraclusResult> RunPipeline(const GoldenCase& c,
                                          SnapshotParams* params) {
  DbscanGroupOptions group;
  group.eps = c.eps;
  group.min_lns = c.min_lns;
  SweepRepresentativeOptions reps;
  reps.min_lns = group.min_lns;
  const auto engine = TraclusEngine::Builder()
                          .UseMdlPartitioning()
                          .UseDbscanGrouping(group)
                          .UseSweepRepresentatives(reps)
                          .Build();
  if (!engine.ok()) return engine.status();
  if (params != nullptr) {
    params->eps = group.eps;
    params->distance = group.distance;
  }
  return engine->Run(c.db);
}

std::string SnapshotPath(const std::string& name) {
  return ::testing::TempDir() + "snapshot_test_" + name + ".snap";
}

void ExpectSameAssignment(const common::Span<const int> a_labels,
                          const common::Span<const double> a_dist,
                          const common::Span<const int> b_labels,
                          const common::Span<const double> b_dist) {
  ASSERT_EQ(a_labels.size(), b_labels.size());
  for (size_t i = 0; i < a_labels.size(); ++i) {
    EXPECT_EQ(a_labels[i], b_labels[i]) << "query " << i;
    // Bitwise distance equality (covers +inf == +inf and exact doubles).
    EXPECT_EQ(a_dist[i], b_dist[i]) << "query " << i;
  }
}

TEST(ClusterSnapshotTest, RoundTripAndAssignDeterminismOnGoldenPipelines) {
  for (const GoldenCase& c : GoldenCases()) {
    SCOPED_TRACE(c.name);
    SnapshotParams params;
    const auto run = RunPipeline(c, &params);
    ASSERT_TRUE(run.ok()) << run.status().ToString();

    const auto built = ClusterSnapshot::FromResult(*run, params);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const ClusterSnapshot& snapshot = **built;
    EXPECT_GT(snapshot.candidate_store().size(), 0u);
    ASSERT_EQ(snapshot.candidate_labels().size(),
              snapshot.candidate_store().size());

    // Save → Load round-trips the full state exactly.
    const std::string path = SnapshotPath(c.name);
    ASSERT_TRUE(snapshot.Save(path).ok());
    const auto loaded = ClusterSnapshot::Load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const ClusterSnapshot& reloaded = **loaded;
    EXPECT_EQ(reloaded.clustering().labels, snapshot.clustering().labels);
    EXPECT_EQ(reloaded.clustering().num_noise,
              snapshot.clustering().num_noise);
    ASSERT_EQ(reloaded.store().size(), snapshot.store().size());
    for (int d = 0; d < snapshot.store().dims(); ++d) {
      EXPECT_EQ(reloaded.store().start_coords(d),
                snapshot.store().start_coords(d));
      EXPECT_EQ(reloaded.store().end_coords(d),
                snapshot.store().end_coords(d));
    }
    ASSERT_EQ(reloaded.representatives().size(),
              snapshot.representatives().size());
    for (size_t r = 0; r < snapshot.representatives().size(); ++r) {
      ASSERT_EQ(reloaded.representatives()[r].size(),
                snapshot.representatives()[r].size());
      for (size_t p = 0; p < snapshot.representatives()[r].size(); ++p) {
        EXPECT_EQ(reloaded.representatives()[r][p],
                  snapshot.representatives()[r][p]);
      }
    }
    ASSERT_EQ(reloaded.candidate_store().size(),
              snapshot.candidate_store().size());
    EXPECT_EQ(reloaded.candidate_labels(), snapshot.candidate_labels());
    EXPECT_EQ(reloaded.params().eps, snapshot.params().eps);

    // Self-assignment of the run's own store as the reference answer:
    // threads {1, 4} × kernels {scalar, simd, auto}, on BOTH the built and
    // the reloaded snapshot, must all agree bit for bit.
    const traj::SegmentStore& queries = run->store;
    std::vector<int> ref_labels(queries.size());
    std::vector<double> ref_dist(queries.size());
    AssignOptions ref_options;
    ref_options.kernel = distance::BatchKernel::kScalar;
    ref_options.num_threads = 1;
    ASSERT_TRUE(snapshot
                    .AssignSegments(queries, common::Span<int>(ref_labels),
                                    common::Span<double>(ref_dist),
                                    ref_options)
                    .ok());
    // Sanity: members of a cluster whose candidates include them sit at
    // distance 0 of themselves only if they are candidates; weaker but
    // universal: every label is kNoise or a valid cluster id.
    for (const int label : ref_labels) {
      EXPECT_GE(label, cluster::kNoise);
      EXPECT_LT(label, static_cast<int>(run->clustering.clusters.size()));
    }

    for (const ClusterSnapshot* s : {&snapshot, &reloaded}) {
      for (const int threads : {1, 4}) {
        for (const distance::BatchKernel kernel :
             {distance::BatchKernel::kScalar, distance::BatchKernel::kSimd,
              distance::BatchKernel::kAuto}) {
          AssignOptions options;
          options.kernel = kernel;
          options.num_threads = threads;
          std::vector<int> labels(queries.size());
          std::vector<double> dist(queries.size());
          ASSERT_TRUE(s->AssignSegments(queries, common::Span<int>(labels),
                                        common::Span<double>(dist), options)
                          .ok());
          ExpectSameAssignment(
              common::Span<const int>(ref_labels),
              common::Span<const double>(ref_dist),
              common::Span<const int>(labels),
              common::Span<const double>(dist));
        }
      }
    }
  }
}

TEST(ClusterSnapshotTest, AssignTrajectoryVotesAndMatchesSegmentPath) {
  const GoldenCase c = {
      "hurricane", datagen::GenerateHurricanes(datagen::HurricaneConfig{}),
      0.94, 5.0};
  SnapshotParams params;
  const auto run = RunPipeline(c, &params);
  ASSERT_TRUE(run.ok());
  const auto built = ClusterSnapshot::FromResult(*run, params);
  ASSERT_TRUE(built.ok());
  const ClusterSnapshot& snapshot = **built;

  size_t assigned = 0;
  for (const traj::Trajectory& t : c.db.trajectories()) {
    const auto a = snapshot.AssignTrajectory(t);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_EQ(a->segment_labels.size(), a->segment_distances.size());
    // The vote is consistent with the per-segment labels: the winning
    // cluster (when not noise) appears among them at least as often as any
    // other cluster.
    if (a->cluster != cluster::kNoise) {
      ++assigned;
      size_t wins = 0;
      for (const int label : a->segment_labels) {
        if (label == a->cluster) ++wins;
      }
      EXPECT_GT(wins, 0u);
      for (size_t cl = 0; cl < run->clustering.clusters.size(); ++cl) {
        size_t votes = 0;
        for (const int label : a->segment_labels) {
          if (label == static_cast<int>(cl)) ++votes;
        }
        EXPECT_LE(votes, wins);
      }
    } else {
      for (size_t i = 0; i < a->segment_labels.size(); ++i) {
        EXPECT_EQ(a->segment_labels[i], cluster::kNoise);
        EXPECT_EQ(a->segment_distances[i],
                  std::numeric_limits<double>::infinity());
      }
    }
  }
  // The corpus that produced the clustering overwhelmingly assigns back
  // into it.
  EXPECT_GT(assigned, c.db.size() / 2);

  // A two-point degenerate trajectory still assigns; a one-point one is a
  // typed error.
  traj::Trajectory tiny(9999);
  tiny.Add(geom::Point(0.0, 0.0));
  EXPECT_EQ(snapshot.AssignTrajectory(tiny).status().code(),
            common::StatusCode::kInvalidArgument);
  tiny.Add(geom::Point(1.0, 1.0));
  EXPECT_TRUE(snapshot.AssignTrajectory(tiny).ok());
}

TEST(ClusterSnapshotTest, LoadFailsWithTypedStatusOnBadFiles) {
  // Missing → NotFound.
  EXPECT_EQ(ClusterSnapshot::Load(SnapshotPath("never_written"))
                .status()
                .code(),
            common::StatusCode::kNotFound);

  const GoldenCase c = {
      "hurricane", datagen::GenerateHurricanes(datagen::HurricaneConfig{}),
      0.94, 5.0};
  SnapshotParams params;
  const auto run = RunPipeline(c, &params);
  ASSERT_TRUE(run.ok());
  const auto built = ClusterSnapshot::FromResult(*run, params);
  ASSERT_TRUE(built.ok());
  const std::string path = SnapshotPath("bad_files");
  ASSERT_TRUE((*built)->Save(path).ok());
  ASSERT_TRUE(ClusterSnapshot::Load(path).ok());

  // Truncated → IOError.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_EQ(ClusterSnapshot::Load(path).status().code(),
            common::StatusCode::kIOError);

  // Corrupt magic → InvalidArgument.
  ASSERT_TRUE((*built)->Save(path).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    const uint32_t bad = 0xDEADBEEFu;
    f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  }
  EXPECT_EQ(ClusterSnapshot::Load(path).status().code(),
            common::StatusCode::kInvalidArgument);

  // Trailing garbage → InvalidArgument (the sentinel + EOF check).
  ASSERT_TRUE((*built)->Save(path).ok());
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const char junk = 'x';
    f.write(&junk, 1);
  }
  EXPECT_EQ(ClusterSnapshot::Load(path).status().code(),
            common::StatusCode::kInvalidArgument);

  // FromResult rejects a capped-streaming result (empty store with labels)
  // and a non-positive ε.
  TraclusResult empty;
  empty.clustering.labels.resize(4, cluster::kNoise);
  EXPECT_EQ(ClusterSnapshot::FromResult(empty, params).status().code(),
            common::StatusCode::kInvalidArgument);
  SnapshotParams bad_eps = params;
  bad_eps.eps = 0.0;
  EXPECT_EQ(ClusterSnapshot::FromResult(*run, bad_eps).status().code(),
            common::StatusCode::kInvalidArgument);
}

// Concurrent serving: many threads assigning through one snapshot while the
// main thread does the same. No synchronization between them — the TSan CI
// lane runs this test to certify the serving path race-free; in all builds
// every thread must also get the bit-identical reference answer.
TEST(ClusterSnapshotTest, ConcurrentAssignHammerIsRaceFreeAndDeterministic) {
  const GoldenCase c = {
      "hurricane", datagen::GenerateHurricanes(datagen::HurricaneConfig{}),
      0.94, 5.0};
  SnapshotParams params;
  const auto run = RunPipeline(c, &params);
  ASSERT_TRUE(run.ok());
  const auto built = ClusterSnapshot::FromResult(*run, params);
  ASSERT_TRUE(built.ok());
  const ClusterSnapshot& snapshot = **built;
  const traj::SegmentStore& queries = run->store;

  std::vector<int> ref_labels(queries.size());
  std::vector<double> ref_dist(queries.size());
  ASSERT_TRUE(snapshot
                  .AssignSegments(queries, common::Span<int>(ref_labels),
                                  common::Span<double>(ref_dist))
                  .ok());

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      AssignOptions options;
      options.kernel = (t % 2 == 0) ? distance::BatchKernel::kScalar
                                    : distance::BatchKernel::kAuto;
      options.num_threads = 1;
      std::vector<int> labels(queries.size());
      std::vector<double> dist(queries.size());
      for (int round = 0; round < kRounds; ++round) {
        const auto st =
            snapshot.AssignSegments(queries, common::Span<int>(labels),
                                    common::Span<double>(dist), options);
        if (!st.ok() || labels != ref_labels || dist != ref_dist) {
          ++failures[t];
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "worker " << t;
  }
}

}  // namespace
}  // namespace traclus::core
