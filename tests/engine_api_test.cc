// Tests for the TraclusEngine pipeline API: builder validation (typed Status
// codes instead of asserts), empty-input and representative-stage
// preconditions, cooperative cancellation before and mid-run, progress
// reporting, stage pluggability, and the headline migration guarantee — the
// deprecated core::Traclus façade produces byte-identical TraclusResults to
// the engine on the hurricane and deer data sets.
//
// The equivalence tests intentionally construct the deprecated façade.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/traclus.h"
#include "datagen/animal_generator.h"
#include "datagen/hurricane_generator.h"

namespace traclus::core {
namespace {

using common::StatusCode;

// ---------------------------------------------------------------------------
// Builder validation: misconfiguration is a typed status, surfaced eagerly.
// ---------------------------------------------------------------------------

TEST(EngineBuilderTest, DefaultAssemblyIsValid) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_NE(engine->representative_stage(), nullptr);
}

TEST(EngineBuilderTest, NonPositiveEpsIsOutOfRange) {
  DbscanGroupOptions group;
  group.eps = 0.0;
  const auto engine =
      TraclusEngine::Builder().UseDbscanGrouping(group).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kOutOfRange);
}

TEST(EngineBuilderTest, MinLnsBelowOneIsOutOfRange) {
  DbscanGroupOptions group;
  group.min_lns = 0.5;
  const auto engine =
      TraclusEngine::Builder().UseDbscanGrouping(group).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kOutOfRange);
}

TEST(EngineBuilderTest, NegativeDistanceWeightIsInvalidArgument) {
  DbscanGroupOptions group;
  group.distance.w_angle = -1.0;
  const auto engine =
      TraclusEngine::Builder().UseDbscanGrouping(group).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, NegativeGammaIsInvalidArgument) {
  SweepRepresentativeOptions reps;
  reps.gamma = -0.25;
  const auto engine =
      TraclusEngine::Builder().UseSweepRepresentatives(reps).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, NegativeSuppressionIsInvalidArgument) {
  MdlPartitionOptions partition;
  partition.mdl.suppression_bits = -2.0;
  const auto engine =
      TraclusEngine::Builder().UseMdlPartitioning(partition).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, OpticsCutAboveGeneratingEpsIsOutOfRange) {
  OpticsGroupOptions group;
  group.eps = 1.0;
  group.eps_cut = 2.0;
  const auto engine =
      TraclusEngine::Builder().UseOpticsGrouping(group).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kOutOfRange);

  // A NaN cut must surface as a status too, never silently mean "use eps".
  group.eps_cut = std::nan("");
  const auto nan_engine =
      TraclusEngine::Builder().UseOpticsGrouping(group).Build();
  ASSERT_FALSE(nan_engine.ok());
  EXPECT_EQ(nan_engine.status().code(), StatusCode::kOutOfRange);
}

TEST(EngineBuilderTest, NullMandatoryStageIsInvalidArgument) {
  const auto no_partition =
      TraclusEngine::Builder().SetPartitionStage(nullptr).Build();
  ASSERT_FALSE(no_partition.ok());
  EXPECT_EQ(no_partition.status().code(), StatusCode::kInvalidArgument);

  const auto no_group = TraclusEngine::Builder().SetGroupStage(nullptr).Build();
  ASSERT_FALSE(no_group.ok());
  EXPECT_EQ(no_group.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, FromConfigRejectsBadLegacyConfig) {
  TraclusConfig config;
  config.eps = -3.0;
  const auto engine = TraclusEngine::FromConfig(config);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Run-time preconditions.
// ---------------------------------------------------------------------------

TEST(EngineRunTest, EmptyDatabaseIsFailedPrecondition) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok());
  const traj::TrajectoryDatabase empty;

  const auto run = engine->Run(empty);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);

  const auto partitioned = engine->Partition(empty);
  ASSERT_FALSE(partitioned.ok());
  EXPECT_EQ(partitioned.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineRunTest, EmptySegmentSetIsValidGroupInput) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok());
  const auto grouped = engine->Group({});
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  EXPECT_TRUE(grouped->clusters.empty());
  EXPECT_TRUE(grouped->labels.empty());
}

TEST(EngineRunTest, RepresentativesWithoutStageIsFailedPrecondition) {
  const auto engine =
      TraclusEngine::Builder().WithoutRepresentatives().Build();
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->representative_stage(), nullptr);
  const auto reps = engine->Representatives({}, cluster::ClusteringResult{});
  ASSERT_FALSE(reps.ok());
  EXPECT_EQ(reps.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineRunTest, MismatchedClusteringIsFailedPrecondition) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok());
  cluster::ClusteringResult clustering;
  cluster::Cluster bogus;
  bogus.member_indices = {42};  // No segment 42 in an empty database.
  clustering.clusters.push_back(bogus);
  const auto reps = engine->Representatives({}, clustering);
  ASSERT_FALSE(reps.ok());
  EXPECT_EQ(reps.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Cancellation.
// ---------------------------------------------------------------------------

TEST(EngineCancellationTest, PreCancelledTokenStopsBeforeAnyStage) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok());
  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});

  common::CancellationToken token;
  token.Cancel();
  RunContext ctx;
  ctx.cancellation = &token;
  bool progressed = false;
  ctx.progress = [&](const std::string&, double) { progressed = true; };

  const auto run = engine->Run(db, ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(progressed) << "no stage may start under a cancelled token";
}

TEST(EngineCancellationTest, MidRunCancellationAbortsTheGroupStage) {
  TraclusConfig config;
  config.eps = 0.94;
  config.min_lns = 5;
  config.num_threads = 2;  // Exercise the blocked batched grouping path.
  const auto engine = TraclusEngine::FromConfig(config);
  ASSERT_TRUE(engine.ok());
  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});

  // Cancel from the progress callback the moment the group stage reports:
  // partitioning completes, grouping starts and must abort at its next poll.
  common::CancellationToken token;
  RunContext ctx;
  ctx.cancellation = &token;
  std::vector<std::string> stages;
  ctx.progress = [&](const std::string& stage, double) {
    if (stages.empty() || stages.back() != stage) stages.push_back(stage);
    if (stage == "group/dbscan") token.Cancel();
  };

  const auto run = engine->Run(db, ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  ASSERT_EQ(stages.size(), 2u) << "partition ran, grouping started, nothing "
                                  "after";
  EXPECT_EQ(stages[0], "partition/mdl-approx");
  EXPECT_EQ(stages[1], "group/dbscan");
}

TEST(EngineCancellationTest, MidRunCancellationAbortsTheOpticsStage) {
  OpticsGroupOptions group;
  group.eps = 0.94;
  group.min_lns = 5;
  const auto engine = TraclusEngine::Builder()
                          .UseOpticsGrouping(group)
                          .WithoutRepresentatives()
                          .Build();
  ASSERT_TRUE(engine.ok());
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 120;
  const auto db = datagen::GenerateHurricanes(gen);

  common::CancellationToken token;
  RunContext ctx;
  ctx.cancellation = &token;
  ctx.progress = [&](const std::string& stage, double) {
    if (stage == "group/optics") token.Cancel();
  };
  const auto run = engine->Run(db, ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Progress reporting.
// ---------------------------------------------------------------------------

TEST(EngineProgressTest, StagesReportInOrderFromZeroToOne) {
  TraclusConfig config;
  config.eps = 0.94;
  config.min_lns = 5;
  const auto engine = TraclusEngine::FromConfig(config);
  ASSERT_TRUE(engine.ok());
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 60;
  const auto db = datagen::GenerateHurricanes(gen);

  std::vector<std::pair<std::string, double>> events;
  RunContext ctx;
  ctx.progress = [&](const std::string& stage, double fraction) {
    events.emplace_back(stage, fraction);
  };
  const auto run = engine->Run(db, ctx);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const std::vector<std::string> expected_order = {
      "partition/mdl-approx", "group/dbscan", "represent/sweep-projection"};
  size_t order_pos = 0;
  std::string current;
  double last_fraction = 0.0;
  for (const auto& [stage, fraction] : events) {
    if (stage != current) {
      if (!current.empty()) {
        EXPECT_EQ(last_fraction, 1.0) << current << " must end at 1.0";
      }
      ASSERT_LT(order_pos, expected_order.size());
      EXPECT_EQ(stage, expected_order[order_pos++]);
      EXPECT_EQ(fraction, 0.0) << stage << " must start at 0.0";
      current = stage;
    } else {
      EXPECT_GE(fraction, last_fraction) << stage << " must be monotone";
    }
    last_fraction = fraction;
  }
  EXPECT_EQ(order_pos, expected_order.size());
  EXPECT_EQ(last_fraction, 1.0);
}

// ---------------------------------------------------------------------------
// Pluggable stages.
// ---------------------------------------------------------------------------

class AllNoiseGroupStage : public GroupStage {
 public:
  const char* name() const override { return "group/all-noise"; }
  common::Result<cluster::ClusteringResult> Run(
      const std::vector<geom::Segment>& segments,
      const RunContext& /*ctx*/) const override {
    cluster::ClusteringResult result;
    result.labels.assign(segments.size(), cluster::kNoise);
    result.num_noise = segments.size();
    return result;
  }
};

TEST(EngineStagesTest, CustomGroupStagePlugsIn) {
  const auto engine = TraclusEngine::Builder()
                          .SetGroupStage(std::make_shared<AllNoiseGroupStage>())
                          .WithoutRepresentatives()
                          .Build();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 20;
  const auto db = datagen::GenerateHurricanes(gen);
  const auto run = engine->Run(db);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->segments.empty());
  EXPECT_TRUE(run->clustering.clusters.empty());
  EXPECT_EQ(run->clustering.num_noise, run->segments.size());
  EXPECT_TRUE(run->representatives.empty());
}

TEST(EngineStagesTest, OpticsGroupingAssemblesAndClusters) {
  OpticsGroupOptions group;
  group.eps = 0.94;
  group.min_lns = 5;
  const auto engine = TraclusEngine::Builder()
                          .UseOpticsGrouping(group)
                          .WithoutRepresentatives()
                          .Build();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 120;
  const auto db = datagen::GenerateHurricanes(gen);
  const auto run = engine->Run(db);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->clustering.labels.size(), run->segments.size());
  EXPECT_FALSE(run->clustering.clusters.empty());
}

// ---------------------------------------------------------------------------
// The migration guarantee: façade ≡ engine, byte for byte.
// ---------------------------------------------------------------------------

void ExpectByteIdentical(const TraclusResult& a, const TraclusResult& b) {
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].id(), b.segments[i].id());
    EXPECT_EQ(a.segments[i].trajectory_id(), b.segments[i].trajectory_id());
    EXPECT_EQ(a.segments[i].start().x(), b.segments[i].start().x());
    EXPECT_EQ(a.segments[i].start().y(), b.segments[i].start().y());
    EXPECT_EQ(a.segments[i].end().x(), b.segments[i].end().x());
    EXPECT_EQ(a.segments[i].end().y(), b.segments[i].end().y());
  }
  EXPECT_EQ(a.characteristic_points, b.characteristic_points);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.clustering.num_noise, b.clustering.num_noise);
  ASSERT_EQ(a.clustering.clusters.size(), b.clustering.clusters.size());
  for (size_t c = 0; c < a.clustering.clusters.size(); ++c) {
    EXPECT_EQ(a.clustering.clusters[c].id, b.clustering.clusters[c].id);
    EXPECT_EQ(a.clustering.clusters[c].member_indices,
              b.clustering.clusters[c].member_indices);
  }
  ASSERT_EQ(a.representatives.size(), b.representatives.size());
  for (size_t r = 0; r < a.representatives.size(); ++r) {
    const auto& ap = a.representatives[r].points();
    const auto& bp = b.representatives[r].points();
    ASSERT_EQ(ap.size(), bp.size()) << "representative " << r;
    for (size_t p = 0; p < ap.size(); ++p) {
      EXPECT_EQ(ap[p].x(), bp[p].x());  // Bitwise: same ops on both paths.
      EXPECT_EQ(ap[p].y(), bp[p].y());
    }
  }
}

void ExpectFacadeMatchesEngine(const TraclusConfig& config,
                               const traj::TrajectoryDatabase& db) {
  const auto engine = TraclusEngine::FromConfig(config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto engine_run = engine->Run(db);
  ASSERT_TRUE(engine_run.ok()) << engine_run.status().ToString();
  const TraclusResult facade_run = Traclus(config).Run(db);
  ExpectByteIdentical(facade_run, *engine_run);
  ASSERT_FALSE(engine_run->clustering.clusters.empty())
      << "equivalence must be proven on a non-trivial clustering";
}

TEST(FacadeEquivalenceTest, ByteIdenticalOnHurricaneDataset) {
  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});
  TraclusConfig config;
  config.eps = 0.94;
  config.min_lns = 5;
  ExpectFacadeMatchesEngine(config, db);
}

TEST(FacadeEquivalenceTest, ByteIdenticalOnDeerDataset) {
  const auto db = datagen::GenerateAnimals(datagen::Deer1995Config());
  TraclusConfig config;
  config.eps = 1.8;
  config.min_lns = 8;
  ExpectFacadeMatchesEngine(config, db);
}

TEST(FacadeEquivalenceTest, ByteIdenticalAcrossThreadCountsAndWeights) {
  // The weighted §4.2 extension and the parallel blocked grouping path, both
  // through the façade and the engine.
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 150;
  gen.min_weight = 1.0;
  gen.max_weight = 5.0;
  const auto db = datagen::GenerateHurricanes(gen);
  TraclusConfig config;
  config.eps = 0.94;
  config.min_lns = 6;
  config.use_weights = true;
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    config.num_threads = threads;
    ExpectFacadeMatchesEngine(config, db);
  }
}

TEST(FacadeEquivalenceTest, FacadeStillReturnsEmptyResultOnEmptyDatabase) {
  // The legacy contract the façade must keep even though the engine reports
  // kFailedPrecondition.
  const traj::TrajectoryDatabase empty;
  TraclusConfig config;
  const auto result = Traclus(config).Run(empty);
  EXPECT_TRUE(result.segments.empty());
  EXPECT_TRUE(result.clustering.clusters.empty());
  EXPECT_TRUE(result.representatives.empty());
}

}  // namespace
}  // namespace traclus::core
