// Tests for the TraclusEngine pipeline API: builder validation (typed Status
// codes instead of asserts), empty-input and representative-stage
// preconditions, cooperative cancellation before and mid-run, progress
// reporting, stage pluggability, and the headline regression guarantee — the
// engine reproduces the committed golden pipeline outputs (tests/golden/,
// frozen before the SegmentStore refactor) byte for byte on the hurricane
// and deer data sets, at 1 and N threads.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "core/engine.h"
#include "datagen/animal_generator.h"
#include "datagen/hurricane_generator.h"

namespace traclus::core {
namespace {

using common::StatusCode;

// ---------------------------------------------------------------------------
// Builder validation: misconfiguration is a typed status, surfaced eagerly.
// ---------------------------------------------------------------------------

TEST(EngineBuilderTest, DefaultAssemblyIsValid) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_NE(engine->representative_stage(), nullptr);
}

TEST(EngineBuilderTest, NonPositiveEpsIsOutOfRange) {
  DbscanGroupOptions group;
  group.eps = 0.0;
  const auto engine =
      TraclusEngine::Builder().UseDbscanGrouping(group).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kOutOfRange);
}

TEST(EngineBuilderTest, MinLnsBelowOneIsOutOfRange) {
  DbscanGroupOptions group;
  group.min_lns = 0.5;
  const auto engine =
      TraclusEngine::Builder().UseDbscanGrouping(group).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kOutOfRange);
}

TEST(EngineBuilderTest, NegativeDistanceWeightIsInvalidArgument) {
  DbscanGroupOptions group;
  group.distance.w_angle = -1.0;
  const auto engine =
      TraclusEngine::Builder().UseDbscanGrouping(group).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, NegativeGammaIsInvalidArgument) {
  SweepRepresentativeOptions reps;
  reps.gamma = -0.25;
  const auto engine =
      TraclusEngine::Builder().UseSweepRepresentatives(reps).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, NegativeSuppressionIsInvalidArgument) {
  MdlPartitionOptions partition;
  partition.mdl.suppression_bits = -2.0;
  const auto engine =
      TraclusEngine::Builder().UseMdlPartitioning(partition).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, OpticsCutAboveGeneratingEpsIsOutOfRange) {
  OpticsGroupOptions group;
  group.eps = 1.0;
  group.eps_cut = 2.0;
  const auto engine =
      TraclusEngine::Builder().UseOpticsGrouping(group).Build();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kOutOfRange);

  // A NaN cut must surface as a status too, never silently mean "use eps".
  group.eps_cut = std::nan("");
  const auto nan_engine =
      TraclusEngine::Builder().UseOpticsGrouping(group).Build();
  ASSERT_FALSE(nan_engine.ok());
  EXPECT_EQ(nan_engine.status().code(), StatusCode::kOutOfRange);
}

TEST(EngineBuilderTest, NullMandatoryStageIsInvalidArgument) {
  const auto no_partition =
      TraclusEngine::Builder().SetPartitionStage(nullptr).Build();
  ASSERT_FALSE(no_partition.ok());
  EXPECT_EQ(no_partition.status().code(), StatusCode::kInvalidArgument);

  const auto no_group = TraclusEngine::Builder().SetGroupStage(nullptr).Build();
  ASSERT_FALSE(no_group.ok());
  EXPECT_EQ(no_group.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, FromConfigRejectsBadLegacyConfig) {
  TraclusConfig config;
  config.eps = -3.0;
  const auto engine = TraclusEngine::FromConfig(config);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Run-time preconditions.
// ---------------------------------------------------------------------------

TEST(EngineRunTest, EmptyDatabaseIsFailedPrecondition) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok());
  const traj::TrajectoryDatabase empty;

  const auto run = engine->Run(empty);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);

  const auto partitioned = engine->Partition(empty);
  ASSERT_FALSE(partitioned.ok());
  EXPECT_EQ(partitioned.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineRunTest, EmptySegmentSetIsValidGroupInput) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok());
  const auto grouped = engine->Group(traj::SegmentStore{});
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  EXPECT_TRUE(grouped->clusters.empty());
  EXPECT_TRUE(grouped->labels.empty());
}

TEST(EngineRunTest, RepresentativesWithoutStageIsFailedPrecondition) {
  const auto engine =
      TraclusEngine::Builder().WithoutRepresentatives().Build();
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->representative_stage(), nullptr);
  const auto reps = engine->Representatives({}, cluster::ClusteringResult{});
  ASSERT_FALSE(reps.ok());
  EXPECT_EQ(reps.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineRunTest, MismatchedClusteringIsFailedPrecondition) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok());
  cluster::ClusteringResult clustering;
  cluster::Cluster bogus;
  bogus.member_indices = {42};  // No segment 42 in an empty database.
  clustering.clusters.push_back(bogus);
  const auto reps = engine->Representatives({}, clustering);
  ASSERT_FALSE(reps.ok());
  EXPECT_EQ(reps.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Cancellation.
// ---------------------------------------------------------------------------

TEST(EngineCancellationTest, PreCancelledTokenStopsBeforeAnyStage) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok());
  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});

  common::CancellationToken token;
  token.Cancel();
  RunContext ctx;
  ctx.cancellation = &token;
  bool progressed = false;
  ctx.progress = [&](const std::string&, double) { progressed = true; };

  const auto run = engine->Run(db, ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(progressed) << "no stage may start under a cancelled token";
}

TEST(EngineCancellationTest, MidRunCancellationAbortsTheGroupStage) {
  TraclusConfig config;
  config.eps = 0.94;
  config.min_lns = 5;
  config.num_threads = 2;  // Exercise the blocked batched grouping path.
  const auto engine = TraclusEngine::FromConfig(config);
  ASSERT_TRUE(engine.ok());
  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});

  // Cancel from the progress callback the moment the group stage reports:
  // partitioning completes, grouping starts and must abort at its next poll.
  common::CancellationToken token;
  RunContext ctx;
  ctx.cancellation = &token;
  std::vector<std::string> stages;
  ctx.progress = [&](const std::string& stage, double) {
    if (stages.empty() || stages.back() != stage) stages.push_back(stage);
    if (stage == "group/dbscan") token.Cancel();
  };

  const auto run = engine->Run(db, ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  ASSERT_EQ(stages.size(), 2u) << "partition ran, grouping started, nothing "
                                  "after";
  EXPECT_EQ(stages[0], "partition/mdl-approx");
  EXPECT_EQ(stages[1], "group/dbscan");
}

TEST(EngineCancellationTest, MidRunCancellationAbortsTheOpticsStage) {
  OpticsGroupOptions group;
  group.eps = 0.94;
  group.min_lns = 5;
  const auto engine = TraclusEngine::Builder()
                          .UseOpticsGrouping(group)
                          .WithoutRepresentatives()
                          .Build();
  ASSERT_TRUE(engine.ok());
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 120;
  const auto db = datagen::GenerateHurricanes(gen);

  common::CancellationToken token;
  RunContext ctx;
  ctx.cancellation = &token;
  ctx.progress = [&](const std::string& stage, double) {
    if (stage == "group/optics") token.Cancel();
  };
  const auto run = engine->Run(db, ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Progress reporting.
// ---------------------------------------------------------------------------

TEST(EngineProgressTest, StagesReportInOrderFromZeroToOne) {
  TraclusConfig config;
  config.eps = 0.94;
  config.min_lns = 5;
  const auto engine = TraclusEngine::FromConfig(config);
  ASSERT_TRUE(engine.ok());
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 60;
  const auto db = datagen::GenerateHurricanes(gen);

  std::vector<std::pair<std::string, double>> events;
  RunContext ctx;
  ctx.progress = [&](const std::string& stage, double fraction) {
    events.emplace_back(stage, fraction);
  };
  const auto run = engine->Run(db, ctx);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const std::vector<std::string> expected_order = {
      "partition/mdl-approx", "group/dbscan", "represent/sweep-projection"};
  size_t order_pos = 0;
  std::string current;
  double last_fraction = 0.0;
  for (const auto& [stage, fraction] : events) {
    if (stage != current) {
      if (!current.empty()) {
        EXPECT_EQ(last_fraction, 1.0) << current << " must end at 1.0";
      }
      ASSERT_LT(order_pos, expected_order.size());
      EXPECT_EQ(stage, expected_order[order_pos++]);
      EXPECT_EQ(fraction, 0.0) << stage << " must start at 0.0";
      current = stage;
    } else {
      EXPECT_GE(fraction, last_fraction) << stage << " must be monotone";
    }
    last_fraction = fraction;
  }
  EXPECT_EQ(order_pos, expected_order.size());
  EXPECT_EQ(last_fraction, 1.0);
}

// ---------------------------------------------------------------------------
// Pluggable stages.
// ---------------------------------------------------------------------------

class AllNoiseGroupStage : public GroupStage {
 public:
  const char* name() const override { return "group/all-noise"; }
  common::Result<cluster::ClusteringResult> Run(
      const traj::SegmentStore& store,
      const RunContext& /*ctx*/) const override {
    cluster::ClusteringResult result;
    result.labels.assign(store.size(), cluster::kNoise);
    result.num_noise = store.size();
    return result;
  }
};

TEST(EngineStagesTest, CustomGroupStagePlugsIn) {
  const auto engine = TraclusEngine::Builder()
                          .SetGroupStage(std::make_shared<AllNoiseGroupStage>())
                          .WithoutRepresentatives()
                          .Build();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 20;
  const auto db = datagen::GenerateHurricanes(gen);
  const auto run = engine->Run(db);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->segments().empty());
  EXPECT_TRUE(run->clustering.clusters.empty());
  EXPECT_EQ(run->clustering.num_noise, run->segments().size());
  EXPECT_TRUE(run->representatives.empty());
}

TEST(EngineStagesTest, OpticsGroupingAssemblesAndClusters) {
  OpticsGroupOptions group;
  group.eps = 0.94;
  group.min_lns = 5;
  const auto engine = TraclusEngine::Builder()
                          .UseOpticsGrouping(group)
                          .WithoutRepresentatives()
                          .Build();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 120;
  const auto db = datagen::GenerateHurricanes(gen);
  const auto run = engine->Run(db);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->clustering.labels.size(), run->segments().size());
  EXPECT_FALSE(run->clustering.clusters.empty());
}

// ---------------------------------------------------------------------------
// The regression guarantee: engine output ≡ the committed golden files
// (tests/golden/*.golden, written by tools/golden_gen.cc from the
// pre-SegmentStore pipeline). Byte-for-byte: labels, cluster membership, and
// every representative coordinate (%.17g round-trips doubles exactly), at 1
// and N threads.
// ---------------------------------------------------------------------------

struct GoldenSegment {
  geom::SegmentId id = -1;
  geom::TrajectoryId trajectory_id = -1;
  geom::Point start;
  geom::Point end;
};

struct GoldenRun {
  size_t num_segments = 0;
  std::vector<GoldenSegment> segments;
  std::vector<std::vector<size_t>> characteristic_points;
  std::vector<int> labels;
  size_t num_clusters = 0;
  size_t num_noise = 0;
  std::vector<std::vector<size_t>> cluster_members;
  std::vector<std::vector<geom::Point>> representatives;
};

GoldenRun LoadGolden(const std::string& name) {
  const std::string path = std::string(TRACLUS_TEST_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open golden file " << path
                         << " (regenerate with tools/golden_gen.cc)";
  GoldenRun g;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    std::string key;
    row >> key;
    if (key == "segments") {
      row >> g.num_segments;
    } else if (key == "seg") {
      GoldenSegment seg;
      long long id = 0;
      long long tid = 0;
      double sx = 0.0;
      double sy = 0.0;
      double ex = 0.0;
      double ey = 0.0;
      row >> id >> tid >> sx >> sy >> ex >> ey;
      seg.id = static_cast<geom::SegmentId>(id);
      seg.trajectory_id = static_cast<geom::TrajectoryId>(tid);
      seg.start = geom::Point(sx, sy);
      seg.end = geom::Point(ex, ey);
      g.segments.push_back(seg);
    } else if (key == "cps") {
      size_t t = 0;
      row >> t;
      std::vector<size_t> cps;
      size_t cp = 0;
      while (row >> cp) cps.push_back(cp);
      EXPECT_EQ(t, g.characteristic_points.size());
      g.characteristic_points.push_back(std::move(cps));
    } else if (key == "labels") {
      int label = 0;
      while (row >> label) g.labels.push_back(label);
    } else if (key == "clusters") {
      row >> g.num_clusters;
    } else if (key == "noise") {
      row >> g.num_noise;
    } else if (key == "cluster") {
      int id = 0;
      row >> id;
      std::vector<size_t> members;
      size_t m = 0;
      while (row >> m) members.push_back(m);
      EXPECT_EQ(static_cast<size_t>(id), g.cluster_members.size());
      g.cluster_members.push_back(std::move(members));
    } else if (key == "rep") {
      size_t idx = 0;
      row >> idx;
      std::vector<geom::Point> points;
      double x = 0.0;
      double y = 0.0;
      while (row >> x >> y) points.emplace_back(x, y);
      EXPECT_EQ(idx, g.representatives.size());
      g.representatives.push_back(std::move(points));
    }
  }
  return g;
}

void ExpectMatchesGolden(const TraclusConfig& base,
                         const traj::TrajectoryDatabase& db,
                         const std::string& golden_name) {
  const GoldenRun golden = LoadGolden(golden_name);
  ASSERT_GT(golden.num_segments, 0u) << "empty golden " << golden_name;
  ASSERT_GT(golden.num_clusters, 0u)
      << "equivalence must be proven on a non-trivial clustering";
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(testing::Message() << golden_name << " @ " << threads
                                    << " threads");
    TraclusConfig config = base;
    config.num_threads = threads;
    const auto engine = TraclusEngine::FromConfig(config);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    const auto run = engine->Run(db);
    ASSERT_TRUE(run.ok()) << run.status().ToString();

    EXPECT_EQ(run->segments().size(), golden.num_segments);
    // Partition-stage output, bit for bit: ids, provenance, endpoints, and
    // characteristic points — a partitioning perturbation must fail even if
    // the clustering happens to survive it.
    ASSERT_EQ(run->segments().size(), golden.segments.size());
    for (size_t i = 0; i < golden.segments.size(); ++i) {
      const geom::Segment& got = run->segments()[i];
      const GoldenSegment& want = golden.segments[i];
      ASSERT_EQ(got.id(), want.id) << "segment " << i;
      ASSERT_EQ(got.trajectory_id(), want.trajectory_id) << "segment " << i;
      ASSERT_EQ(got.start().x(), want.start.x()) << "segment " << i;
      ASSERT_EQ(got.start().y(), want.start.y()) << "segment " << i;
      ASSERT_EQ(got.end().x(), want.end.x()) << "segment " << i;
      ASSERT_EQ(got.end().y(), want.end.y()) << "segment " << i;
    }
    EXPECT_EQ(run->characteristic_points, golden.characteristic_points);
    EXPECT_EQ(run->clustering.labels, golden.labels);
    EXPECT_EQ(run->clustering.num_noise, golden.num_noise);
    ASSERT_EQ(run->clustering.clusters.size(), golden.num_clusters);
    ASSERT_EQ(run->clustering.clusters.size(), golden.cluster_members.size());
    for (size_t c = 0; c < golden.cluster_members.size(); ++c) {
      EXPECT_EQ(run->clustering.clusters[c].id, static_cast<int>(c));
      EXPECT_EQ(run->clustering.clusters[c].member_indices,
                golden.cluster_members[c]);
    }
    ASSERT_EQ(run->representatives.size(), golden.representatives.size());
    for (size_t r = 0; r < golden.representatives.size(); ++r) {
      const auto& got = run->representatives[r].points();
      const auto& want = golden.representatives[r];
      ASSERT_EQ(got.size(), want.size()) << "representative " << r;
      for (size_t p = 0; p < want.size(); ++p) {
        EXPECT_EQ(got[p].x(), want[p].x());  // Bitwise (golden is %.17g).
        EXPECT_EQ(got[p].y(), want[p].y());
      }
    }
  }
}

TEST(GoldenEquivalenceTest, HurricaneMatchesPreRefactorPipeline) {
  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});
  TraclusConfig config;
  config.eps = 0.94;
  config.min_lns = 5;
  ExpectMatchesGolden(config, db, "hurricane_default.golden");
}

TEST(GoldenEquivalenceTest, DeerMatchesPreRefactorPipeline) {
  const auto db = datagen::GenerateAnimals(datagen::Deer1995Config());
  TraclusConfig config;
  config.eps = 1.8;
  config.min_lns = 8;
  ExpectMatchesGolden(config, db, "deer_default.golden");
}

TEST(GoldenEquivalenceTest, WeightedThreadedRunsAreThreadCountInvariant) {
  // The weighted §4.2 extension through the parallel blocked grouping path:
  // not golden-pinned (weights vary by generator), but 1-vs-N byte identity
  // must hold here too.
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 150;
  gen.min_weight = 1.0;
  gen.max_weight = 5.0;
  const auto db = datagen::GenerateHurricanes(gen);
  TraclusConfig config;
  config.eps = 0.94;
  config.min_lns = 6;
  config.use_weights = true;

  config.num_threads = 1;
  const auto serial_engine = TraclusEngine::FromConfig(config);
  ASSERT_TRUE(serial_engine.ok());
  const auto serial = serial_engine->Run(db);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_FALSE(serial->clustering.clusters.empty());

  config.num_threads = 4;
  const auto parallel_engine = TraclusEngine::FromConfig(config);
  ASSERT_TRUE(parallel_engine.ok());
  const auto parallel = parallel_engine->Run(db);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(serial->clustering.labels, parallel->clustering.labels);
  EXPECT_EQ(serial->clustering.num_noise, parallel->clustering.num_noise);
  ASSERT_EQ(serial->representatives.size(), parallel->representatives.size());
  for (size_t r = 0; r < serial->representatives.size(); ++r) {
    const auto& sp = serial->representatives[r].points();
    const auto& pp = parallel->representatives[r].points();
    ASSERT_EQ(sp.size(), pp.size());
    for (size_t p = 0; p < sp.size(); ++p) {
      EXPECT_EQ(sp[p].x(), pp[p].x());
      EXPECT_EQ(sp[p].y(), pp[p].y());
    }
  }
}

}  // namespace
}  // namespace traclus::core
