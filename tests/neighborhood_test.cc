// Tests for ε-neighborhood providers: the brute-force oracle and the grid
// index, including the exactness property that makes Lemma 3's index usable.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>

#include "cluster/neighborhood.h"
#include "cluster/neighborhood_index.h"
#include "cluster/rtree_index.h"
#include "traj/segment_store.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "distance/segment_distance.h"

namespace traclus::cluster {
namespace {

using distance::SegmentDistance;
using distance::SegmentDistanceConfig;
using geom::Point;
using geom::Segment;

traj::SegmentStore RandomSegments(size_t n, double world, double max_len,
                                  uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Segment> segs;
  segs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point s(rng.Uniform(0, world), rng.Uniform(0, world));
    const double angle = rng.Uniform(0, 2 * M_PI);
    const double len = rng.Uniform(0.1, max_len);
    const Point e(s.x() + len * std::cos(angle), s.y() + len * std::sin(angle));
    segs.emplace_back(s, e, static_cast<geom::SegmentId>(i),
                      static_cast<geom::TrajectoryId>(i % 7));
  }
  return traj::SegmentStore(std::move(segs));
}

TEST(BruteForceNeighborhoodTest, IncludesSelf) {
  const auto segs = RandomSegments(20, 100, 5, 1);
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(segs, dist);
  for (size_t i = 0; i < segs.size(); ++i) {
    const auto n = provider.Neighbors(i, 0.0001);
    EXPECT_NE(std::find(n.begin(), n.end(), i), n.end());
  }
}

TEST(BruteForceNeighborhoodTest, LargeEpsReturnsEverything) {
  const auto segs = RandomSegments(25, 50, 5, 2);
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(segs, dist);
  EXPECT_EQ(provider.Neighbors(0, 1e9).size(), segs.size());
}

TEST(BruteForceNeighborhoodTest, NeighborsRespectEps) {
  const auto segs = RandomSegments(40, 100, 8, 3);
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(segs, dist);
  const double eps = 15.0;
  for (size_t i = 0; i < segs.size(); ++i) {
    for (const size_t j : provider.Neighbors(i, eps)) {
      EXPECT_LE(dist(segs[i], segs[j]), eps);
    }
  }
}

TEST(GridNeighborhoodIndexTest, AutoCellSizeIsPositive) {
  const auto segs = RandomSegments(30, 100, 5, 4);
  const SegmentDistance dist;
  const GridNeighborhoodIndex index(segs, dist);
  EXPECT_GT(index.cell_size(), 0.0);
  EXPECT_GT(index.NumCells(), 0u);
}

TEST(GridNeighborhoodIndexTest, ExplicitCellSizeHonored) {
  const auto segs = RandomSegments(30, 100, 5, 4);
  const SegmentDistance dist;
  const GridNeighborhoodIndex index(segs, dist, 7.5);
  EXPECT_DOUBLE_EQ(index.cell_size(), 7.5);
}

// The core exactness property: for every workload/ε/weight configuration the
// grid index must return exactly the brute-force neighborhoods.
struct IndexExactnessCase {
  uint64_t seed;
  size_t n;
  double world;
  double max_len;
  double eps;
  double w_perp;
  double w_par;
  double w_angle;
  bool directed;
};

class IndexExactnessTest
    : public ::testing::TestWithParam<IndexExactnessCase> {};

TEST_P(IndexExactnessTest, MatchesBruteForceExactly) {
  const IndexExactnessCase& c = GetParam();
  const auto segs = RandomSegments(c.n, c.world, c.max_len, c.seed);
  SegmentDistanceConfig cfg;
  cfg.w_perpendicular = c.w_perp;
  cfg.w_parallel = c.w_par;
  cfg.w_angle = c.w_angle;
  cfg.directed = c.directed;
  const SegmentDistance dist(cfg);
  const BruteForceNeighborhood brute(segs, dist);
  const GridNeighborhoodIndex index(segs, dist);
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(index.Neighbors(i, c.eps), brute.Neighbors(i, c.eps))
        << "query " << i << " eps " << c.eps;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexExactnessTest,
    ::testing::Values(
        IndexExactnessCase{1, 150, 100, 5, 3.0, 1, 1, 1, true},
        IndexExactnessCase{2, 150, 100, 5, 10.0, 1, 1, 1, true},
        IndexExactnessCase{3, 150, 100, 5, 40.0, 1, 1, 1, true},
        IndexExactnessCase{4, 200, 50, 20, 5.0, 1, 1, 1, true},  // Long segs.
        IndexExactnessCase{5, 100, 300, 2, 8.0, 1, 1, 1, true},      // Sparse.
        IndexExactnessCase{6, 150, 100, 5, 5.0, 2.0, 0.5, 1.5, true},// Weights.
        IndexExactnessCase{7, 150, 100, 5, 5.0, 0.3, 2.0, 0.0, true},
        IndexExactnessCase{8, 150, 100, 5, 5.0, 1, 1, 1, false},  // Undirected.
        IndexExactnessCase{9, 60, 10, 4, 2.0, 1, 1, 1, true},        // Dense.
        // Tiny eps.
        IndexExactnessCase{10, 150, 100, 5, 0.05, 1, 1, 1, true}));

TEST(GridNeighborhoodIndexTest, ZeroWeightFallsBackToExactScan) {
  // w∥ = 0 kills the lower bound; the index must still be exact (via scan).
  const auto segs = RandomSegments(80, 60, 6, 21);
  SegmentDistanceConfig cfg;
  cfg.w_parallel = 0.0;
  const SegmentDistance dist(cfg);
  EXPECT_DOUBLE_EQ(dist.LowerBoundFactor(), 0.0);
  const BruteForceNeighborhood brute(segs, dist);
  const GridNeighborhoodIndex index(segs, dist);
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(index.Neighbors(i, 6.0), brute.Neighbors(i, 6.0));
  }
}

TEST(GridNeighborhoodIndexTest, CollinearChainsAreFound) {
  // Collinear far-apart segments have d⊥ = dθ = 0; only d∥ separates them.
  // This is the regime where a naive "prune by ε directly" index would be
  // wrong, and where the 2·d⊥ + d∥ bound is tight.
  std::vector<Segment> segs;
  for (int i = 0; i < 10; ++i) {
    segs.emplace_back(Point(i * 10.0, 0), Point(i * 10.0 + 8.0, 0),
                      /*id=*/i, /*trajectory_id=*/i);
  }
  const SegmentDistance dist;
  const traj::SegmentStore store(std::move(segs));
  const BruteForceNeighborhood brute(store, dist);
  const GridNeighborhoodIndex index(store, dist);
  for (double eps : {1.0, 2.0, 5.0, 12.0, 30.0}) {
    for (size_t i = 0; i < store.size(); ++i) {
      EXPECT_EQ(index.Neighbors(i, eps), brute.Neighbors(i, eps));
    }
  }
}

TEST(GridNeighborhoodIndexTest, ThreeDimensionalSegments) {
  common::Rng rng(31);
  std::vector<Segment> segs;
  for (int i = 0; i < 80; ++i) {
    const Point s(rng.Uniform(0, 50), rng.Uniform(0, 50), rng.Uniform(0, 50));
    const Point e(s.x() + rng.Uniform(-4, 4), s.y() + rng.Uniform(-4, 4),
                  s.z() + rng.Uniform(-4, 4));
    segs.emplace_back(s, e, i, i % 5);
  }
  const SegmentDistance dist;
  const traj::SegmentStore store(std::move(segs));
  const BruteForceNeighborhood brute(store, dist);
  const GridNeighborhoodIndex index(store, dist);
  for (size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(index.Neighbors(i, 6.0), brute.Neighbors(i, 6.0));
  }
}

TEST(GridNeighborhoodIndexTest, RepeatedQueriesAreConsistent) {
  // The visit-stamp dedup must not leak state between queries.
  const auto segs = RandomSegments(60, 40, 5, 77);
  const SegmentDistance dist;
  const GridNeighborhoodIndex index(segs, dist);
  const auto first = index.Neighbors(5, 8.0);
  for (int rep = 0; rep < 50; ++rep) {
    EXPECT_EQ(index.Neighbors(5, 8.0), first);
  }
}

TEST(GridNeighborhoodIndexTest, SingleArgNeighborsIsThreadSafe) {
  // Regression (CHANGES.md known issue): the index-interface overload used to
  // funnel every caller through one shared mutable scratch, racing the visit
  // stamps under concurrent queries. It now routes through a per-thread
  // scratch; hammering it from the pool must agree with the brute-force
  // oracle on every query. (Write/write races on the old shared stamps
  // produced duplicate or missing neighbors, so a mismatch here is the
  // TSAN-visible corruption surfacing; under TSAN the race itself reports.)
  const auto segs = RandomSegments(400, 60, 4, 97);
  const SegmentDistance dist;
  const GridNeighborhoodIndex index(segs, dist);
  const BruteForceNeighborhood oracle(segs, dist);
  const double eps = 5.0;

  std::vector<std::vector<size_t>> expect(segs.size());
  for (size_t i = 0; i < segs.size(); ++i) {
    expect[i] = oracle.Neighbors(i, eps);
  }

  common::ThreadPool& pool = common::SharedPool(8);
  const NeighborhoodProvider& provider = index;  // The interface overload.
  std::atomic<size_t> mismatches{0};
  for (int round = 0; round < 4; ++round) {
    pool.ParallelFor(0, 4 * segs.size(), [&](size_t k) {
      const size_t i = k % segs.size();
      if (provider.Neighbors(i, eps) != expect[i]) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(NeighborhoodCacheTest, BoundedModeBoundsPeakListResidency) {
  // Satellite regression: the eager cache materializes all n lists even when
  // the consumer only streams each list once. Bounded mode must serve the
  // exact same lists through NeighborsBatch blocks while never holding more
  // than `block` of them.
  const auto segs = RandomSegments(120, 50, 5, 51);
  const SegmentDistance dist;
  const BruteForceNeighborhood brute(segs, dist);
  const double eps = 6.0;
  common::ThreadPool& pool = common::SharedPool(4);

  for (const size_t block : {size_t{1}, size_t{4}, size_t{16}}) {
    const NeighborhoodCache cache(brute, eps, pool, block);
    // The streaming access pattern of a blocked grouping pass.
    for (size_t i = 0; i < segs.size(); ++i) {
      EXPECT_EQ(cache.Neighbors(i, eps), brute.Neighbors(i, eps))
          << "block " << block << " query " << i;
      EXPECT_LE(cache.resident_lists(), block);
    }
    EXPECT_LE(cache.peak_resident_lists(), block);
    EXPECT_GE(cache.peak_resident_lists(), std::min<size_t>(block, 1));
  }
}

TEST(NeighborhoodCacheTest, BoundedModeExactUnderArbitraryAccess) {
  // Re-queries and out-of-order access must stay exact (evicted lists are
  // recomputed through the base), and residency stays bounded throughout.
  const auto segs = RandomSegments(80, 40, 5, 53);
  const SegmentDistance dist;
  const BruteForceNeighborhood brute(segs, dist);
  const double eps = 5.0;
  const size_t block = 8;
  const NeighborhoodCache cache(brute, eps, common::SharedPool(2), block);

  common::Rng rng(99);
  for (int round = 0; round < 400; ++round) {
    const size_t i = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(segs.size()) - 1));
    EXPECT_EQ(cache.Neighbors(i, eps), brute.Neighbors(i, eps));
    EXPECT_LE(cache.resident_lists(), block);
  }
  EXPECT_LE(cache.peak_resident_lists(), block);
}

TEST(NeighborhoodCacheTest, EagerModeKeepsEverythingResident) {
  const auto segs = RandomSegments(40, 40, 5, 57);
  const SegmentDistance dist;
  const BruteForceNeighborhood brute(segs, dist);
  const double eps = 5.0;
  const NeighborhoodCache cache(brute, eps, common::SharedPool(2));
  EXPECT_EQ(cache.resident_lists(), segs.size());
  EXPECT_EQ(cache.peak_resident_lists(), segs.size());
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(cache.Neighbors(i, eps), brute.Neighbors(i, eps));
  }
}

TEST(ProviderKernelTest, AllProvidersAgreeForEveryCompiledKernel) {
  // The providers delegate refinement to the batch kernels; every kernel
  // selection must produce the exact brute-force-per-pair neighborhoods
  // through every provider.
  const auto segs = RandomSegments(150, 60, 6, 61);
  const SegmentDistance dist;
  const double eps = 7.0;

  // Reference: the raw per-pair loop, independent of the kernel layer.
  std::vector<std::vector<size_t>> expect(segs.size());
  for (size_t i = 0; i < segs.size(); ++i) {
    for (size_t j = 0; j < segs.size(); ++j) {
      if (j == i || dist(segs, i, j) <= eps) expect[i].push_back(j);
    }
  }

  std::vector<distance::BatchKernel> kernels = {
      distance::BatchKernel::kScalar};
  if (distance::SimdCompiled()) {
    kernels.push_back(distance::BatchKernel::kSimd);
  }
  for (const distance::BatchKernel kernel : kernels) {
    const BruteForceNeighborhood brute(segs, dist, kernel);
    const GridNeighborhoodIndex grid(segs, dist, 0.0, kernel);
    const StrRTreeIndex rtree(segs, dist, 16, kernel);
    for (size_t i = 0; i < segs.size(); ++i) {
      EXPECT_EQ(brute.Neighbors(i, eps), expect[i]) << "brute query " << i;
      EXPECT_EQ(grid.Neighbors(i, eps), expect[i]) << "grid query " << i;
      EXPECT_EQ(rtree.Neighbors(i, eps), expect[i]) << "rtree query " << i;
    }
  }
}

TEST(GridNeighborhoodIndexTest, NeighborsBatchMatchesPerQuery) {
  const auto segs = RandomSegments(200, 50, 4, 11);
  const SegmentDistance dist;
  const GridNeighborhoodIndex index(segs, dist);
  const double eps = 6.0;
  std::vector<size_t> queries = {7, 3, 3, 199, 0, 42};  // Dups are fine.
  const auto lists = index.NeighborsBatch(queries, eps, common::SharedPool(4));
  ASSERT_EQ(lists.size(), queries.size());
  for (size_t k = 0; k < queries.size(); ++k) {
    EXPECT_EQ(lists[k], index.Neighbors(queries[k], eps)) << "query " << k;
  }
}

}  // namespace
}  // namespace traclus::cluster
