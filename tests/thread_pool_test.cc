// Unit tests for the execution substrate: ThreadPool, ParallelFor, SharedPool.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace traclus::common {
namespace {

TEST(ResolveNumThreadsTest, ZeroSelectsHardwareConcurrency) {
  EXPECT_GE(ResolveNumThreads(0), 1);
  EXPECT_GE(ResolveNumThreads(-3), 1);
}

TEST(ResolveNumThreadsTest, PositiveValuesPassThrough) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(7), 7);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsTasksInlineAndInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.Submit([&] { order.push_back(1); });
  // Inline execution: the side effect is visible before Wait().
  ASSERT_EQ(order.size(), 1u);
  pool.Submit([&] { order.push_back(2); });
  pool.Submit([&] { order.push_back(3); });
  pool.Wait();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadPoolTest, MultiThreadPoolRunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  for (int t = 0; t < 100; ++t) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int t = 0; t < 10; ++t) pool.Submit([&count] { count.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, SubmitExceptionPropagatesAtWait) {
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    pool.Submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.Wait(), std::runtime_error);
    // The error is consumed: the pool is reusable afterwards.
    std::atomic<int> count{0};
    pool.Submit([&count] { count.fetch_add(1); });
    EXPECT_NO_THROW(pool.Wait());
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int t = 0; t < 50; ++t) pool.Submit([&count] { count.fetch_add(1); });
  }  // No Wait(): destruction must still run or discard-safely join everything.
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelForTest, EmptyRangeInvokesNothing) {
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    std::atomic<int> calls{0};
    pool.ParallelFor(0, 0, [&calls](size_t) { calls.fetch_add(1); });
    pool.ParallelFor(5, 5, [&calls](size_t) { calls.fetch_add(1); });
    // Inverted.
    pool.ParallelFor(7, 3, [&calls](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST(ParallelForTest, EachIndexVisitedExactlyOnce) {
  for (const int threads : {1, 2, 4, 9}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    constexpr size_t kBegin = 3;
    constexpr size_t kEnd = 1003;
    std::vector<std::atomic<int>> visits(kEnd);
    pool.ParallelFor(kBegin, kEnd,
                     [&visits](size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < kEnd; ++i) {
      EXPECT_EQ(visits[i].load(), i >= kBegin ? 1 : 0) << "index " << i;
    }
  }
}

TEST(ParallelForTest, RangeSmallerThanPool) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  pool.ParallelFor(0, 3, [&visits](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelForTest, SingleElementRange) {
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    std::vector<size_t> seen;
    pool.ParallelFor(41, 42, [&seen](size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, std::vector<size_t>{41});
  }
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    EXPECT_THROW(pool.ParallelFor(0, 100,
                                  [](size_t i) {
                                    if (i == 37) throw std::domain_error("bad");
                                  }),
                 std::domain_error);
    // The pool survives a failed loop.
    std::atomic<int> count{0};
    pool.ParallelFor(0, 10, [&count](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(0, 8, [&](size_t) {
    pool.ParallelFor(0, 8, [&count](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelForChunkedTest, ChunksTileTheRangeExactly) {
  struct Case {
    int threads;
    size_t begin;
    size_t end;
  };
  // {2, 0, 10} regression: ceil-chunking overshoots (8 target chunks of 2
  // cover 16 > 10) and must not produce phantom chunks with lo >= end.
  for (const Case c : {Case{1, 10, 210}, Case{4, 10, 210}, Case{2, 0, 10},
                       Case{4, 3, 10}, Case{3, 0, 11}}) {
    SCOPED_TRACE(testing::Message() << c.threads << " threads, [" << c.begin
                                    << ", " << c.end << ")");
    ThreadPool pool(c.threads);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    pool.ParallelForChunked(c.begin, c.end, [&](size_t lo, size_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    ASSERT_FALSE(chunks.empty());
    EXPECT_EQ(chunks.front().first, c.begin);
    EXPECT_EQ(chunks.back().second, c.end);
    for (size_t i = 0; i < chunks.size(); ++i) {
      EXPECT_LT(chunks[i].first, chunks[i].second);
      if (i > 0) {
        EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
      }
    }
  }
}

TEST(ParallelForTest, ConcurrentCallsOnSharedPoolAreIsolated) {
  // Two threads drive independent ParallelFor calls through one pool; each
  // must see exactly its own iterations and its own exceptions.
  ThreadPool pool(4);
  std::atomic<int> ok_count{0};
  std::atomic<bool> threw{false};
  std::thread a([&] {
    pool.ParallelFor(0, 500, [&ok_count](size_t) { ok_count.fetch_add(1); });
  });
  std::thread b([&] {
    try {
      pool.ParallelFor(0, 500, [](size_t i) {
        if (i == 250) throw std::runtime_error("b only");
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(ok_count.load(), 500);
  EXPECT_TRUE(threw.load());
}

TEST(SharedPoolTest, SameWidthYieldsSameInstance) {
  ThreadPool& a = SharedPool(2);
  ThreadPool& b = SharedPool(2);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_threads(), 2);
}

TEST(SharedPoolTest, ZeroResolvesToHardwareConcurrency) {
  ThreadPool& pool = SharedPool(0);
  EXPECT_EQ(pool.num_threads(), ResolveNumThreads(0));
}

TEST(SharedPoolTest, ShutdownJoinsAndRecreatesDeterministically) {
  // The registry owns its pools: ShutdownSharedPools joins every worker and
  // frees every pool at a caller-chosen point (the ASAN CI job then verifies
  // nothing leaks), and the registry repopulates lazily afterwards.
  std::atomic<int> count{0};
  SharedPool(3).ParallelFor(0, 100, [&](size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);

  ShutdownSharedPools();

  ThreadPool& recreated = SharedPool(3);
  EXPECT_EQ(recreated.num_threads(), 3);
  count.store(0);
  recreated.ParallelFor(0, 100, [&](size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);

  ShutdownSharedPools();  // Idempotent, including on an empty registry.
  ShutdownSharedPools();
}

}  // namespace
}  // namespace traclus::common
