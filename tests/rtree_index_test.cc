// Tests for the STR-packed R-tree neighborhood index (the Lemma 3 structure),
// mirroring the exactness contract of the grid index.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/neighborhood.h"
#include "cluster/rtree_index.h"
#include "traj/segment_store.h"
#include "common/rng.h"
#include "distance/segment_distance.h"

namespace traclus::cluster {
namespace {

using distance::SegmentDistance;
using distance::SegmentDistanceConfig;
using geom::Point;
using geom::Segment;

traj::SegmentStore RandomSegments(size_t n, double world, double max_len,
                                  uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Segment> segs;
  segs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point s(rng.Uniform(0, world), rng.Uniform(0, world));
    const double angle = rng.Uniform(0, 2 * M_PI);
    const double len = rng.Uniform(0.1, max_len);
    segs.emplace_back(s, Point(s.x() + len * std::cos(angle),
                               s.y() + len * std::sin(angle)),
                      static_cast<geom::SegmentId>(i),
                      static_cast<geom::TrajectoryId>(i % 7));
  }
  return traj::SegmentStore(std::move(segs));
}

TEST(StrRTreeIndexTest, StructureIsPacked) {
  const auto segs = RandomSegments(1000, 200, 5, 1);
  const SegmentDistance dist;
  const StrRTreeIndex tree(segs, dist, /*leaf_capacity=*/16);
  // 1000 entries at capacity 16: 63 leaves, packed into ~4 internal nodes,
  // then a root — height 3, node count close to the packing optimum.
  EXPECT_EQ(tree.Height(), 3);
  EXPECT_GE(tree.NumNodes(), 63u);
  EXPECT_LE(tree.NumNodes(), 80u);
}

TEST(StrRTreeIndexTest, SingleSegmentTree) {
  const auto segs = RandomSegments(1, 10, 3, 2);
  const SegmentDistance dist;
  const StrRTreeIndex tree(segs, dist);
  EXPECT_EQ(tree.Height(), 1);
  EXPECT_EQ(tree.Neighbors(0, 1.0), (std::vector<size_t>{0}));
}

struct RTreeCase {
  uint64_t seed;
  size_t n;
  double world;
  double max_len;
  double eps;
  int leaf_capacity;
  double w_perp;
  double w_par;
};

class RTreeExactnessTest : public ::testing::TestWithParam<RTreeCase> {};

TEST_P(RTreeExactnessTest, MatchesBruteForceExactly) {
  const RTreeCase& c = GetParam();
  const auto segs = RandomSegments(c.n, c.world, c.max_len, c.seed);
  SegmentDistanceConfig cfg;
  cfg.w_perpendicular = c.w_perp;
  cfg.w_parallel = c.w_par;
  const SegmentDistance dist(cfg);
  const BruteForceNeighborhood brute(segs, dist);
  const StrRTreeIndex tree(segs, dist, c.leaf_capacity);
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(tree.Neighbors(i, c.eps), brute.Neighbors(i, c.eps))
        << "query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeExactnessTest,
    ::testing::Values(RTreeCase{1, 200, 100, 5, 3.0, 16, 1, 1},
                      RTreeCase{2, 200, 100, 5, 12.0, 4, 1, 1},
                      // Long segments.
                      RTreeCase{3, 150, 40, 25, 5.0, 8, 1, 1},
                      RTreeCase{4, 300, 400, 3, 8.0, 16, 1, 1},  // Sparse.
                      RTreeCase{5, 200, 100, 5, 5.0, 16, 2.0, 0.4},  // Weights.
                      RTreeCase{6, 64, 20, 4, 1.0, 2, 1, 1},    // Tiny leaves.
                      RTreeCase{7, 200, 100, 5, 0.05, 16, 1, 1}));  // Tiny eps.

TEST(StrRTreeIndexTest, ZeroWeightFallsBackToExactScan) {
  const auto segs = RandomSegments(100, 60, 6, 9);
  SegmentDistanceConfig cfg;
  cfg.w_perpendicular = 0.0;  // Kills the lower bound.
  const SegmentDistance dist(cfg);
  const BruteForceNeighborhood brute(segs, dist);
  const StrRTreeIndex tree(segs, dist);
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(tree.Neighbors(i, 6.0), brute.Neighbors(i, 6.0));
  }
}

TEST(StrRTreeIndexTest, AgreesWithGridIndexOnClusteredWorkload) {
  // Both exact indexes must return identical neighborhoods everywhere.
  const auto segs = RandomSegments(400, 80, 6, 13);
  const SegmentDistance dist;
  const StrRTreeIndex tree(segs, dist);
  const BruteForceNeighborhood brute(segs, dist);
  for (const double eps : {0.5, 2.0, 8.0, 30.0}) {
    for (size_t i = 0; i < segs.size(); i += 7) {
      EXPECT_EQ(tree.Neighbors(i, eps), brute.Neighbors(i, eps));
    }
  }
}

}  // namespace
}  // namespace traclus::cluster
