// The parallel execution engine's core contract: every phase produces results
// byte-identical to the single-threaded seed behavior, for any thread count.
// Clustering output (labels, cluster ids, members), partitions, representative
// trajectories, pairwise matrices, and the parameter heuristic are all checked
// at 1 vs N threads, through the engine API and the component layers.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/dbscan_segments.h"
#include "cluster/neighborhood.h"
#include "cluster/neighborhood_index.h"
#include "cluster/rtree_index.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "datagen/hurricane_generator.h"
#include "distance/segment_distance.h"
#include "params/entropy.h"
#include "params/parameter_heuristic.h"

namespace traclus {
namespace {

const traj::TrajectoryDatabase& TestDatabase() {
  static const traj::TrajectoryDatabase db = [] {
    datagen::HurricaneConfig cfg;
    cfg.num_trajectories = 120;
    return datagen::GenerateHurricanes(cfg);
  }();
  return db;
}

// Engine run helper: these tests hardcode valid configs / non-empty inputs.
core::TraclusResult RunConfig(const core::TraclusConfig& cfg,
                              const traj::TrajectoryDatabase& db) {
  auto engine = core::TraclusEngine::FromConfig(cfg);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto result = engine->Run(db);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

core::PartitionOutput PartitionConfig(const core::TraclusConfig& cfg,
                                      const traj::TrajectoryDatabase& db) {
  auto engine = core::TraclusEngine::FromConfig(cfg);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto out = engine->Partition(db);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return std::move(out).ValueOrDie();
}

const traj::SegmentStore& TestSegments() {
  static const traj::SegmentStore store = [] {
    core::TraclusConfig cfg;
    cfg.num_threads = 1;
    return std::move(PartitionConfig(cfg, TestDatabase()).store);
  }();
  return store;
}

void ExpectSegmentsEqual(const std::vector<geom::Segment>& a,
                         const std::vector<geom::Segment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id(), b[i].id());
    EXPECT_EQ(a[i].trajectory_id(), b[i].trajectory_id());
    EXPECT_EQ(a[i].start().x(), b[i].start().x());
    EXPECT_EQ(a[i].start().y(), b[i].start().y());
    EXPECT_EQ(a[i].end().x(), b[i].end().x());
    EXPECT_EQ(a[i].end().y(), b[i].end().y());
  }
}

void ExpectClusteringEqual(const cluster::ClusteringResult& a,
                           const cluster::ClusteringResult& b) {
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.num_noise, b.num_noise);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].id, b.clusters[c].id);
    EXPECT_EQ(a.clusters[c].member_indices, b.clusters[c].member_indices);
  }
}

TEST(ParallelDeterminismTest, PartitionPhaseMatchesSerial) {
  core::TraclusConfig serial;
  serial.num_threads = 1;
  const auto serial_out = PartitionConfig(serial, TestDatabase());

  for (const int threads : {2, 4}) {
    SCOPED_TRACE(threads);
    core::TraclusConfig parallel;
    parallel.num_threads = threads;
    const auto parallel_out = PartitionConfig(parallel, TestDatabase());
    ExpectSegmentsEqual(serial_out.segments(), parallel_out.segments());
    EXPECT_EQ(serial_out.characteristic_points,
              parallel_out.characteristic_points);
  }
}

TEST(ParallelDeterminismTest, GridIndexBatchMatchesPerQuery) {
  const auto& segments = TestSegments();
  const distance::SegmentDistance dist;
  const cluster::GridNeighborhoodIndex index(segments, dist);
  const double eps = 0.94;
  const auto batched = index.AllNeighbors(eps, common::SharedPool(4));
  ASSERT_EQ(batched.size(), segments.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(batched[i], index.Neighbors(i, eps)) << "query " << i;
  }
}

TEST(ParallelDeterminismTest, NeighborhoodCacheServesExactLists) {
  const auto& segments = TestSegments();
  const distance::SegmentDistance dist;
  const cluster::BruteForceNeighborhood brute(segments, dist);
  const double eps = 0.94;
  const cluster::NeighborhoodCache cache(brute, eps, common::SharedPool(4));
  ASSERT_EQ(cache.size(), segments.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(cache.Neighbors(i, eps), brute.Neighbors(i, eps));
  }
}

TEST(ParallelDeterminismTest, DbscanIdenticalAcrossThreadCountsAndProviders) {
  const auto& segments = TestSegments();
  const distance::SegmentDistance dist;
  cluster::DbscanOptions serial_opt;
  serial_opt.eps = 0.94;
  serial_opt.min_lns = 5;
  serial_opt.num_threads = 1;

  const cluster::GridNeighborhoodIndex grid(segments, dist);
  const cluster::StrRTreeIndex rtree(segments, dist);
  const auto baseline = cluster::DbscanSegments(segments, grid, serial_opt);
  ASSERT_FALSE(baseline.clusters.empty());

  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE(threads);
    cluster::DbscanOptions opt = serial_opt;
    opt.num_threads = threads;
    ExpectClusteringEqual(baseline,
                          cluster::DbscanSegments(segments, grid, opt));
    ExpectClusteringEqual(baseline,
                          cluster::DbscanSegments(segments, rtree, opt));
  }
}

TEST(ParallelDeterminismTest, FullPipelineIdenticalAtOneVsNThreads) {
  core::TraclusConfig cfg;
  cfg.eps = 0.94;
  cfg.min_lns = 5;
  cfg.num_threads = 1;
  const auto serial = RunConfig(cfg, TestDatabase());

  cfg.num_threads = 4;
  const auto parallel = RunConfig(cfg, TestDatabase());

  ExpectSegmentsEqual(serial.segments(), parallel.segments());
  EXPECT_EQ(serial.characteristic_points, parallel.characteristic_points);
  ExpectClusteringEqual(serial.clustering, parallel.clustering);
  ASSERT_EQ(serial.representatives.size(), parallel.representatives.size());
  for (size_t r = 0; r < serial.representatives.size(); ++r) {
    const auto& sp = serial.representatives[r].points();
    const auto& pp = parallel.representatives[r].points();
    ASSERT_EQ(sp.size(), pp.size()) << "representative " << r;
    for (size_t p = 0; p < sp.size(); ++p) {
      EXPECT_EQ(sp[p].x(), pp[p].x());  // Bitwise: same ops in both modes.
      EXPECT_EQ(sp[p].y(), pp[p].y());
    }
  }
}

TEST(ParallelDeterminismTest, PairwiseMatrixMatchesSerialEvaluation) {
  const auto& all = TestSegments();
  const std::vector<geom::Segment> segments(
      all.begin(), all.begin() + std::min<size_t>(all.size(), 300));
  const distance::SegmentDistance dist;
  const auto serial =
      distance::PairwiseDistanceMatrix(segments, dist, common::SharedPool(1));
  const auto parallel =
      distance::PairwiseDistanceMatrix(segments, dist, common::SharedPool(4));
  ASSERT_EQ(serial.rows(), segments.size());
  ASSERT_EQ(parallel.rows(), segments.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(serial(i, i), 0.0);
    for (size_t j = 0; j < segments.size(); ++j) {
      EXPECT_EQ(serial(i, j), parallel(i, j));
      EXPECT_EQ(parallel(i, j), parallel(j, i));
      if (i != j) {
        EXPECT_EQ(parallel(i, j), dist(segments[i], segments[j]));
      }
    }
  }
}

TEST(ParallelDeterminismTest, NeighborhoodProfileIdenticalAcrossThreads) {
  const auto& all = TestSegments();
  const traj::SegmentStore segments(std::vector<geom::Segment>(
      all.begin(), all.begin() + std::min<size_t>(all.size(), 400)));
  const distance::SegmentDistance dist;
  const std::vector<double> grid = {0.25, 0.5, 1.0, 2.0, 4.0};
  const params::NeighborhoodProfile serial(segments, dist, grid, 1);
  const params::NeighborhoodProfile parallel(segments, dist, grid, 4);
  ASSERT_EQ(serial.grid_size(), parallel.grid_size());
  for (size_t g = 0; g < serial.grid_size(); ++g) {
    EXPECT_EQ(serial.SizesAt(g), parallel.SizesAt(g)) << "grid " << g;
    EXPECT_EQ(serial.EntropyAt(g), parallel.EntropyAt(g));
  }
}

TEST(ParallelDeterminismTest, ParameterEstimateIdenticalAcrossThreads) {
  const auto& all = TestSegments();
  const traj::SegmentStore segments(std::vector<geom::Segment>(
      all.begin(), all.begin() + std::min<size_t>(all.size(), 400)));
  const distance::SegmentDistance dist;
  params::HeuristicOptions opt;
  opt.eps_lo = 0.25;
  opt.eps_hi = 4.0;
  opt.grid_points = 12;
  opt.num_threads = 1;
  const auto serial = params::EstimateParameters(segments, dist, opt);
  opt.num_threads = 4;
  const auto parallel = params::EstimateParameters(segments, dist, opt);
  EXPECT_EQ(serial.eps, parallel.eps);
  EXPECT_EQ(serial.entropy, parallel.entropy);
  EXPECT_EQ(serial.grid_entropy, parallel.grid_entropy);
  EXPECT_EQ(serial.avg_neighborhood_size, parallel.avg_neighborhood_size);
}

}  // namespace
}  // namespace traclus
