// Tests for ShardedGroupStage (core/sharded_stage.h): the shards ≤ 1
// transparency contract, equivalence to the unsharded backend modulo the
// documented contested-border deviation, byte-determinism across thread
// counts and kernels for a fixed shard count, the halo merge on an
// adversarial border-spanning chain, the stats sink, the communicator's
// concurrent mailbox discipline, and the Validate error surface.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/shard_comm.h"
#include "core/sharded_stage.h"
#include "datagen/hurricane_generator.h"
#include "distance/batch_kernels.h"
#include "distance/segment_distance.h"
#include "traj/segment_store.h"
#include "traj/trajectory_database.h"

namespace traclus::core {
namespace {

using geom::Point;
using geom::Segment;

// The golden pipeline's hurricane corpus and parameters (ε = 0.94,
// MinLns = 5 — the same configuration tests/golden/hurricane.golden pins),
// partitioned once into the store the grouping stages consume.
const traj::SegmentStore& HurricaneStore() {
  static const traj::SegmentStore* store = [] {
    const traj::TrajectoryDatabase db =
        datagen::GenerateHurricanes(datagen::HurricaneConfig{});
    auto engine = TraclusEngine::FromConfig(TraclusConfig{});
    EXPECT_TRUE(engine.ok());
    auto partitioned = engine->Partition(db);
    EXPECT_TRUE(partitioned.ok());
    return new traj::SegmentStore(std::move(partitioned->store));
  }();
  return *store;
}

DbscanGroupOptions HurricaneGroupOptions() {
  DbscanGroupOptions options;
  options.eps = 0.94;
  options.min_lns = 5.0;
  return options;
}

ShardedGroupStage MakeShardedStage(const DbscanGroupOptions& group,
                                   ShardedRunStats* stats = nullptr) {
  ShardedGroupOptions sharded;
  sharded.eps = group.eps;
  sharded.min_lns = group.min_lns;
  sharded.min_trajectory_cardinality = group.min_trajectory_cardinality;
  sharded.use_weights = group.use_weights;
  sharded.distance = group.distance;
  sharded.stats = stats;
  return ShardedGroupStage(std::make_shared<DbscanGroupStage>(group),
                           sharded);
}

void ExpectSameClustering(const cluster::ClusteringResult& a,
                          const cluster::ClusteringResult& b) {
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.num_noise, b.num_noise);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].id, b.clusters[c].id);
    EXPECT_EQ(a.clusters[c].member_indices, b.clusters[c].member_indices);
  }
}

// Brute-force Definition 5 density over the whole store: the exact global
// core status of segment i, independent of any index or shard machinery.
bool IsGlobalCore(const traj::SegmentStore& store,
                  const distance::SegmentDistance& dist, size_t i, double eps,
                  double min_lns) {
  size_t mass = 0;
  for (size_t j = 0; j < store.size(); ++j) {
    if (dist(store, i, j) <= eps) ++mass;
  }
  return static_cast<double>(mass) >= min_lns;
}

// Equivalence modulo the deviations sharded_stage.h documents: cluster
// numbering may permute (compared under the best-overlap bijection), and a
// handful of non-core contested border segments may land in a different
// cluster — or in noise, when their cluster is cardinality-filtered. Every
// differing segment must be globally non-core; core segments' membership is
// exact.
void ExpectEquivalentModuloContestedBorders(
    const traj::SegmentStore& store, const DbscanGroupOptions& group,
    const cluster::ClusteringResult& golden,
    const cluster::ClusteringResult& got) {
  ASSERT_EQ(golden.labels.size(), got.labels.size());
  const size_t n = golden.labels.size();

  // Best-overlap mapping got-cluster → golden-cluster, required injective.
  std::map<std::pair<int, int>, size_t> overlap;
  for (size_t i = 0; i < n; ++i) {
    if (got.labels[i] >= 0 && golden.labels[i] >= 0) {
      ++overlap[{got.labels[i], golden.labels[i]}];
    }
  }
  std::vector<int> map_to(got.clusters.size(), -1);
  for (const auto& [key, count] : overlap) {
    const auto [from, to] = key;
    // std::map iteration is ordered, so ties break toward the lowest golden
    // id deterministically.
    if (map_to[static_cast<size_t>(from)] < 0 ||
        overlap.at({from, map_to[static_cast<size_t>(from)]}) < count) {
      map_to[static_cast<size_t>(from)] = to;
    }
  }
  std::vector<char> taken(golden.clusters.size(), 0);
  for (const int to : map_to) {
    if (to < 0) continue;
    EXPECT_FALSE(taken[static_cast<size_t>(to)])
        << "cluster mapping is not injective";
    taken[static_cast<size_t>(to)] = 1;
  }

  // Differing segments: rare, and all globally non-core.
  const distance::SegmentDistance dist(group.distance);
  size_t differing = 0;
  for (size_t i = 0; i < n; ++i) {
    const int mapped =
        got.labels[i] >= 0 ? map_to[static_cast<size_t>(got.labels[i])] : -1;
    if (mapped == golden.labels[i]) continue;
    ++differing;
    EXPECT_FALSE(IsGlobalCore(store, dist, i, group.eps, group.min_lns))
        << "segment " << i << " is a global core but its membership moved "
        << "(golden " << golden.labels[i] << ", sharded " << mapped << ")";
  }
  // The deviation class is a boundary effect; it must stay marginal.
  EXPECT_LE(differing, std::max<size_t>(2, n / 200));
  EXPECT_LE(static_cast<size_t>(
                std::max<int64_t>(0, static_cast<int64_t>(got.num_noise) -
                                         static_cast<int64_t>(
                                             golden.num_noise))),
            differing);
}

TEST(ShardStageTest, NameAndValidate) {
  const ShardedGroupStage stage = MakeShardedStage(HurricaneGroupOptions());
  EXPECT_STREQ(stage.name(), "group/sharded+dbscan");
  EXPECT_TRUE(stage.Validate().ok());
}

TEST(ShardStageTest, ShardingDisabledIsInnerBackendByteForByte) {
  const traj::SegmentStore& store = HurricaneStore();
  const DbscanGroupStage inner(HurricaneGroupOptions());
  const ShardedGroupStage stage = MakeShardedStage(HurricaneGroupOptions());
  const auto expect = inner.Run(store, RunContext{});
  ASSERT_TRUE(expect.ok());
  for (const size_t shards : {size_t{0}, size_t{1}}) {
    RunContext ctx;
    ctx.shards = shards;
    const auto got = stage.Run(store, ctx);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameClustering(*got, *expect);
  }
}

TEST(ShardStageTest, EquivalentToUnshardedAndDeterministic) {
  const traj::SegmentStore& store = HurricaneStore();
  const DbscanGroupOptions group = HurricaneGroupOptions();
  const DbscanGroupStage inner(group);
  const ShardedGroupStage stage = MakeShardedStage(group);
  const auto golden = inner.Run(store, RunContext{});
  ASSERT_TRUE(golden.ok());

  for (const size_t shards : {size_t{2}, size_t{4}, size_t{7}}) {
    RunContext base_ctx;
    base_ctx.shards = shards;
    base_ctx.num_threads = 1;
    base_ctx.distance_kernel = distance::BatchKernel::kScalar;
    const auto reference = stage.Run(store, base_ctx);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ExpectEquivalentModuloContestedBorders(store, group, *golden, *reference);

    // Fixed shard count ⇒ byte-identical across thread counts and kernels.
    for (const int threads : {1, 4}) {
      for (const distance::BatchKernel kernel :
           {distance::BatchKernel::kScalar, distance::BatchKernel::kSimd,
            distance::BatchKernel::kAuto}) {
        RunContext ctx;
        ctx.shards = shards;
        ctx.num_threads = threads;
        ctx.distance_kernel = kernel;
        const auto got = stage.Run(store, ctx);
        ASSERT_TRUE(got.ok());
        ExpectSameClustering(*got, *reference);
      }
    }
  }
}

// Adversarial border corpus: one dense collinear chain spanning many grid
// cells, so every shard cuts through it and the chain is far longer than one
// halo width. The halo merge must reassemble it into a single cluster —
// losing any border edge would leave ≥ 2 clusters.
TEST(ShardStageTest, BorderSpanningChainMergesIntoOneCluster) {
  std::vector<Segment> segments;
  const size_t kChain = 60;
  for (size_t i = 0; i < kChain; ++i) {
    const double x = static_cast<double>(i) * 0.5;
    segments.emplace_back(Point(x, 0.0), Point(x + 10.0, 0.0),
                          static_cast<geom::SegmentId>(i),
                          static_cast<geom::TrajectoryId>(i));
  }
  const traj::SegmentStore store(std::move(segments));

  DbscanGroupOptions group;
  group.eps = 2.0;
  group.min_lns = 5.0;
  const DbscanGroupStage inner(group);
  const auto golden = inner.Run(store, RunContext{});
  ASSERT_TRUE(golden.ok());
  ASSERT_EQ(golden->clusters.size(), 1u);
  ASSERT_EQ(golden->num_noise, 0u);

  ShardedRunStats stats;
  const ShardedGroupStage stage = MakeShardedStage(group, &stats);
  for (const size_t shards : {size_t{2}, size_t{4}, size_t{7}}) {
    RunContext ctx;
    ctx.shards = shards;
    const auto got = stage.Run(store, ctx);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Labels must match outright (one cluster, no numbering freedom); member
    // lists are not compared because DBSCAN emits expansion order while the
    // sharded driver emits ascending order.
    EXPECT_EQ(got->labels, golden->labels);
    EXPECT_EQ(got->num_noise, golden->num_noise);
    ASSERT_EQ(got->clusters.size(), 1u);
    EXPECT_EQ(got->clusters[0].member_indices.size(), kChain);
    // The chain crosses every shard border, so clusters really merged and
    // the halo machinery saw traffic.
    EXPECT_GE(stats.border_merges, shards - 1);
    EXPECT_GT(stats.ghost_segments, 0u);
    EXPECT_GT(stats.border_pairs, 0u);
    EXPECT_EQ(stats.shards_run, shards);
  }
}

TEST(ShardStageTest, RandomizedCorpusMatchesUnshardedModuloBorders) {
  // Clumped random segments: dense blobs plus scattered noise, seeded so the
  // corpus (and therefore the expectation) is fixed.
  common::Rng rng(20260808);
  std::vector<Segment> segments;
  geom::SegmentId next_id = 0;
  for (int blob = 0; blob < 6; ++blob) {
    const double cx = rng.Uniform(0.0, 100.0);
    const double cy = rng.Uniform(0.0, 100.0);
    const int count = static_cast<int>(rng.UniformInt(8, 16));
    for (int k = 0; k < count; ++k) {
      const double x = cx + rng.Gaussian(0.0, 0.8);
      const double y = cy + rng.Gaussian(0.0, 0.8);
      segments.emplace_back(Point(x, y), Point(x + 6.0, y + 0.2), next_id,
                            static_cast<geom::TrajectoryId>(next_id));
      ++next_id;
    }
  }
  for (int k = 0; k < 30; ++k) {
    const double x = rng.Uniform(0.0, 100.0);
    const double y = rng.Uniform(0.0, 100.0);
    segments.emplace_back(Point(x, y), Point(x + 4.0, y + 2.0), next_id,
                          static_cast<geom::TrajectoryId>(next_id));
    ++next_id;
  }
  const traj::SegmentStore store(std::move(segments));

  DbscanGroupOptions group;
  group.eps = 2.5;
  group.min_lns = 4.0;
  const DbscanGroupStage inner(group);
  const ShardedGroupStage stage = MakeShardedStage(group);
  const auto golden = inner.Run(store, RunContext{});
  ASSERT_TRUE(golden.ok());
  for (const size_t shards : {size_t{2}, size_t{5}}) {
    for (const int threads : {1, 4}) {
      RunContext ctx;
      ctx.shards = shards;
      ctx.num_threads = threads;
      const auto got = stage.Run(store, ctx);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectEquivalentModuloContestedBorders(store, group, *golden, *got);
    }
  }
}

TEST(ShardStageTest, StatsSinkCountsShardsAndGhosts) {
  const traj::SegmentStore& store = HurricaneStore();
  ShardedRunStats stats;
  const ShardedGroupStage stage =
      MakeShardedStage(HurricaneGroupOptions(), &stats);
  RunContext ctx;
  ctx.shards = 4;
  const auto got = stage.Run(store, ctx);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(stats.shards_run, 4u);
  EXPECT_GT(stats.ghost_segments, 0u);
  EXPECT_GT(stats.border_pairs, 0u);
}

TEST(ShardStageTest, ValidateRejectsBadConfigurations) {
  // Null inner stage.
  const ShardedGroupStage null_inner(nullptr);
  EXPECT_EQ(null_inner.Validate().code(),
            common::StatusCode::kInvalidArgument);

  // Non-positive ε.
  ShardedGroupOptions bad_eps;
  bad_eps.eps = 0.0;
  const ShardedGroupStage zero_eps(
      std::make_shared<DbscanGroupStage>(HurricaneGroupOptions()), bad_eps);
  EXPECT_EQ(zero_eps.Validate().code(), common::StatusCode::kOutOfRange);

  // MinLns below 1.
  ShardedGroupOptions bad_min;
  bad_min.min_lns = 0.5;
  const ShardedGroupStage low_min(
      std::make_shared<DbscanGroupStage>(HurricaneGroupOptions()), bad_min);
  EXPECT_EQ(low_min.Validate().code(), common::StatusCode::kOutOfRange);

  // Negative distance weight.
  ShardedGroupOptions bad_weight;
  bad_weight.distance.w_perpendicular = -1.0;
  const ShardedGroupStage neg_weight(
      std::make_shared<DbscanGroupStage>(HurricaneGroupOptions()),
      bad_weight);
  EXPECT_EQ(neg_weight.Validate().code(),
            common::StatusCode::kInvalidArgument);

  // An invalid inner configuration propagates through the decorator.
  DbscanGroupOptions bad_inner = HurricaneGroupOptions();
  bad_inner.eps = -1.0;
  const ShardedGroupStage wraps_bad(
      std::make_shared<DbscanGroupStage>(bad_inner));
  EXPECT_FALSE(wraps_bad.Validate().ok());
}

TEST(ShardStageTest, BuilderWiresShardedGroupingThroughThePipeline) {
  const traj::TrajectoryDatabase db =
      datagen::GenerateHurricanes(datagen::HurricaneConfig{});
  const DbscanGroupOptions group = HurricaneGroupOptions();
  ShardedGroupOptions sharded;
  sharded.eps = group.eps;
  sharded.min_lns = group.min_lns;
  sharded.distance = group.distance;
  SweepRepresentativeOptions reps;
  reps.min_lns = group.min_lns;
  const auto plain = TraclusEngine::Builder()
                         .UseMdlPartitioning()
                         .UseDbscanGrouping(group)
                         .UseSweepRepresentatives(reps)
                         .Build();
  ASSERT_TRUE(plain.ok());
  const auto wrapped = TraclusEngine::Builder()
                           .UseMdlPartitioning()
                           .UseDbscanGrouping(group)
                           .UseSweepRepresentatives(reps)
                           .WithShardedGrouping(sharded)
                           .Build();
  ASSERT_TRUE(wrapped.ok()) << wrapped.status().ToString();

  // shards = 1 through the full pipeline: identical to the unwrapped engine.
  const auto expect = plain->Run(db, RunContext{});
  ASSERT_TRUE(expect.ok());
  RunContext ctx;
  ctx.shards = 1;
  const auto transparent = wrapped->Run(db, ctx);
  ASSERT_TRUE(transparent.ok());
  ExpectSameClustering(transparent->clustering, expect->clustering);

  // A sharded full-pipeline run completes with a well-formed label domain.
  ctx.shards = 4;
  const auto got = wrapped->Run(db, ctx);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->clustering.labels.size(), expect->clustering.labels.size());
  size_t noise = 0;
  for (const int label : got->clustering.labels) {
    EXPECT_GE(label, cluster::kNoise);
    EXPECT_LT(label, static_cast<int>(got->clustering.clusters.size()));
    if (label == cluster::kNoise) ++noise;
  }
  EXPECT_EQ(noise, got->clustering.num_noise);
  EXPECT_EQ(got->representatives.size(), got->clustering.clusters.size());
}

// Concurrency hammer for the in-process communicator (the TSan lane runs
// this test): every rank sends tagged payloads to every peer from pool
// threads, a barrier ends the superstep, then every rank drains and checks.
TEST(ShardStageTest, InProcessShardGroupExchangesUnderConcurrency) {
  const int kRanks = 8;
  const int kRounds = 3;
  InProcessShardGroup group(kRanks);
  common::ThreadPool& pool = common::SharedPool(4);
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(0, static_cast<size_t>(kRanks), [&](size_t s) {
      ShardCommunicator& comm = group.comm(static_cast<int>(s));
      EXPECT_EQ(comm.rank(), static_cast<int>(s));
      EXPECT_EQ(comm.size(), kRanks);
      for (int dest = 0; dest < kRanks; ++dest) {
        std::vector<uint64_t> payload = {
            static_cast<uint64_t>(s), static_cast<uint64_t>(dest),
            static_cast<uint64_t>(round)};
        comm.Send(dest, /*tag=*/round, std::move(payload));
      }
    });
    pool.ParallelFor(0, static_cast<size_t>(kRanks), [&](size_t s) {
      ShardCommunicator& comm = group.comm(static_cast<int>(s));
      for (int src = 0; src < kRanks; ++src) {
        const std::vector<uint64_t> payload = comm.Recv(src, /*tag=*/round);
        ASSERT_EQ(payload.size(), 3u);
        EXPECT_EQ(payload[0], static_cast<uint64_t>(src));
        EXPECT_EQ(payload[1], static_cast<uint64_t>(s));
        EXPECT_EQ(payload[2], static_cast<uint64_t>(round));
      }
    });
  }
}

}  // namespace
}  // namespace traclus::core
