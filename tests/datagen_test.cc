// Tests for the synthetic data generators that stand in for the paper's
// real data sets (DESIGN.md §2 substitutions).

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/animal_generator.h"
#include "datagen/common_subtrajectory.h"
#include "datagen/corridor.h"
#include "datagen/hurricane_generator.h"
#include "datagen/noisy_generator.h"

namespace traclus::datagen {
namespace {

using geom::Point;

TEST(CorridorTest, LengthAndInterpolation) {
  const Corridor c{{Point(0, 0), Point(10, 0), Point(10, 10)}};
  EXPECT_DOUBLE_EQ(c.Length(), 20.0);
  EXPECT_EQ(c.At(0.0), Point(0, 0));
  EXPECT_EQ(c.At(0.25), Point(5, 0));
  EXPECT_EQ(c.At(0.5), Point(10, 0));
  EXPECT_EQ(c.At(0.75), Point(10, 5));
  EXPECT_EQ(c.At(1.0), Point(10, 10));
  EXPECT_EQ(c.At(-0.5), Point(0, 0));   // Clamped.
  EXPECT_EQ(c.At(1.5), Point(10, 10));  // Clamped.
}

TEST(CorridorTest, TraverseProducesRequestedSteps) {
  const Corridor c{{Point(0, 0), Point(100, 0)}};
  common::Rng rng(1);
  traj::Trajectory tr(0);
  TraverseCorridor(c, 0.0, 1.0, 25, 0.5, &rng, &tr);
  EXPECT_EQ(tr.size(), 25u);
  // Stays near the corridor.
  for (const auto& p : tr.points()) {
    EXPECT_NEAR(p.y(), 0.0, 4.0);
  }
  // Moves forward overall.
  EXPECT_LT(tr[0].x(), tr[24].x());
}

TEST(CorridorTest, ReverseTraversal) {
  const Corridor c{{Point(0, 0), Point(100, 0)}};
  common::Rng rng(1);
  traj::Trajectory tr(0);
  TraverseCorridor(c, 1.0, 0.0, 10, 0.0, &rng, &tr);
  EXPECT_GT(tr[0].x(), tr[9].x());
}

TEST(RandomWalkTest, RespectsWorldBounds) {
  geom::BBox world;
  world.Extend(Point(0, 0));
  world.Extend(Point(10, 10));
  common::Rng rng(2);
  traj::Trajectory tr(0);
  RandomWalk(Point(5, 5), 500, 3.0, &world, &rng, &tr);
  EXPECT_EQ(tr.size(), 500u);
  for (const auto& p : tr.points()) {
    EXPECT_GE(p.x(), 0.0);
    EXPECT_LE(p.x(), 10.0);
    EXPECT_GE(p.y(), 0.0);
    EXPECT_LE(p.y(), 10.0);
  }
}

TEST(HurricaneGeneratorTest, MatchesPaperScale) {
  // §5.1: 570 trajectories, 17,736 points. Our generator matches the count
  // exactly and the points within a few percent.
  const auto db = GenerateHurricanes(HurricaneConfig{});
  EXPECT_EQ(db.size(), 570u);
  const auto st = db.Stats();
  EXPECT_NEAR(static_cast<double>(st.num_points), 17736.0, 17736.0 * 0.10);
  EXPECT_GE(st.min_length, 4u);
}

TEST(HurricaneGeneratorTest, DeterministicForFixedSeed) {
  const auto a = GenerateHurricanes(HurricaneConfig{});
  const auto b = GenerateHurricanes(HurricaneConfig{});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (size_t j = 0; j < a[i].size(); ++j) EXPECT_EQ(a[i][j], b[i][j]);
  }
}

TEST(HurricaneGeneratorTest, DifferentSeedsDiffer) {
  HurricaneConfig cfg;
  cfg.seed = 1;
  const auto a = GenerateHurricanes(cfg);
  cfg.seed = 2;
  const auto b = GenerateHurricanes(cfg);
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    if (a[i].size() != b[i].size() || a[i][0] != b[i][0]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(HurricaneGeneratorTest, TracksStayInWorldBand) {
  const auto db = GenerateHurricanes(HurricaneConfig{});
  const auto st = db.Stats();
  EXPECT_GE(st.bounds.lo(0), -20.0);
  EXPECT_LE(st.bounds.hi(0), 120.0);
  EXPECT_GE(st.bounds.lo(1), -20.0);
  EXPECT_LE(st.bounds.hi(1), 80.0);
}

TEST(HurricaneGeneratorTest, WeightsDrawnFromConfiguredRange) {
  HurricaneConfig cfg;
  cfg.min_weight = 1.0;
  cfg.max_weight = 5.0;
  const auto db = GenerateHurricanes(cfg);
  bool any_above_one = false;
  for (const auto& tr : db.trajectories()) {
    EXPECT_GE(tr.weight(), 1.0);
    EXPECT_LE(tr.weight(), 5.0);
    if (tr.weight() > 1.5) any_above_one = true;
  }
  EXPECT_TRUE(any_above_one);
}

TEST(AnimalGeneratorTest, ElkConfigMatchesPaperScale) {
  // §5.1: Elk1993 has 33 trajectories and 47,204 points.
  const auto cfg = Elk1993Config();
  const auto db = GenerateAnimals(cfg);
  EXPECT_EQ(db.size(), 33u);
  const auto st = db.Stats();
  EXPECT_NEAR(static_cast<double>(st.num_points), 47204.0, 47204.0 * 0.02);
  EXPECT_EQ(cfg.corridors.size(), 13u);  // Fig. 21: thirteen clusters.
}

TEST(AnimalGeneratorTest, DeerConfigMatchesPaperScale) {
  // §5.1: Deer1995 has 32 trajectories and 20,065 points.
  const auto cfg = Deer1995Config();
  const auto db = GenerateAnimals(cfg);
  EXPECT_EQ(db.size(), 32u);
  const auto st = db.Stats();
  EXPECT_NEAR(static_cast<double>(st.num_points), 20065.0, 20065.0 * 0.02);
  EXPECT_EQ(cfg.corridors.size(), 2u);  // Fig. 22: two clusters.
}

TEST(AnimalGeneratorTest, TrajectoriesAreMuchLongerThanHurricanes) {
  // §5.1: "trajectories in the animal movement data set are much longer".
  const auto animals = GenerateAnimals(Deer1995Config());
  const auto hurricanes = GenerateHurricanes(HurricaneConfig{});
  EXPECT_GT(animals.Stats().mean_length, 10 * hurricanes.Stats().mean_length);
}

TEST(AnimalGeneratorTest, Deterministic) {
  const auto a = GenerateAnimals(Deer1995Config());
  const auto b = GenerateAnimals(Deer1995Config());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    EXPECT_EQ(a[i][a[i].size() / 2], b[i][b[i].size() / 2]);
  }
}

TEST(NoisyGeneratorTest, NoiseFractionHonored) {
  NoisyConfig cfg;
  cfg.num_trajectories = 100;
  cfg.noise_fraction = 0.25;
  const auto db = GenerateNoisy(cfg);
  EXPECT_EQ(db.size(), 100u);
  size_t noise = 0;
  for (const auto& tr : db.trajectories()) {
    if (tr.label() == "noise") ++noise;
  }
  EXPECT_EQ(noise, 25u);
}

TEST(NoisyGeneratorTest, CorridorTrajectoriesFollowPlantedLines) {
  NoisyConfig cfg;
  cfg.num_planted_corridors = 2;  // Corridors at y = 33.3 and y = 66.7.
  cfg.corridor_noise = 0.5;
  const auto db = GenerateNoisy(cfg);
  for (const auto& tr : db.trajectories()) {
    if (tr.label() != "corridor") continue;
    for (const auto& p : tr.points()) {
      const double d1 = std::abs(p.y() - 100.0 / 3.0);
      const double d2 = std::abs(p.y() - 200.0 / 3.0);
      EXPECT_LT(std::min(d1, d2), 3.0);
    }
  }
}

TEST(CommonSubTrajectoryTest, SharedPrefixThenDivergence) {
  CommonSubTrajectoryConfig cfg;
  const auto db = GenerateCommonSubTrajectory(cfg);
  ASSERT_EQ(db.size(), 5u);
  // All trajectories start near the origin and track y ≈ 0 along the shared
  // corridor...
  for (const auto& tr : db.trajectories()) {
    for (int k = 0; k < cfg.shared_points; ++k) {
      EXPECT_NEAR(tr[k].y(), 0.0, 4.0 * cfg.noise_sigma);
    }
  }
  // ...then the endpoints fan far apart.
  double min_gap = 1e18;
  for (size_t i = 0; i < db.size(); ++i) {
    for (size_t j = i + 1; j < db.size(); ++j) {
      min_gap = std::min(min_gap, geom::Distance(db[i].points().back(),
                                                 db[j].points().back()));
    }
  }
  EXPECT_GT(min_gap, 10.0);
}

TEST(CommonSubTrajectoryTest, ConfigurableTrajectoryCount) {
  CommonSubTrajectoryConfig cfg;
  cfg.num_trajectories = 9;
  EXPECT_EQ(GenerateCommonSubTrajectory(cfg).size(), 9u);
}

}  // namespace
}  // namespace traclus::datagen
