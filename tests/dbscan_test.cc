// Tests for the line-segment DBSCAN adaptation (Fig. 12): density semantics,
// the trajectory-cardinality filter, the weighted extension, determinism.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/dbscan_segments.h"
#include "cluster/neighborhood.h"
#include "cluster/neighborhood_index.h"
#include "traj/segment_store.h"
#include "common/rng.h"
#include "distance/segment_distance.h"

namespace traclus::cluster {
namespace {

using distance::SegmentDistance;
using geom::Point;
using geom::Segment;

// A bundle of `count` parallel horizontal segments around (x0, y0), one per
// trajectory id starting at tid0.
std::vector<Segment> Bundle(double x0, double y0, int count,
                            geom::TrajectoryId tid0, double spacing = 0.3,
                            double len = 10.0) {
  std::vector<Segment> out;
  for (int i = 0; i < count; ++i) {
    out.emplace_back(Point(x0, y0 + i * spacing),
                     Point(x0 + len, y0 + i * spacing), /*id=*/-1, tid0 + i);
  }
  return out;
}

std::vector<Segment> WithIds(std::vector<Segment> segs) {
  for (size_t i = 0; i < segs.size(); ++i) {
    segs[i].set_id(static_cast<geom::SegmentId>(i));
  }
  return segs;
}

DbscanOptions Options(double eps, double min_lns) {
  DbscanOptions opt;
  opt.eps = eps;
  opt.min_lns = min_lns;
  return opt;
}

TEST(DbscanTest, SingleDenseBundleFormsOneCluster) {
  const traj::SegmentStore segs(WithIds(Bundle(0, 0, 6, 0)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(segs, dist);
  const auto result = DbscanSegments(segs, provider, Options(2.0, 3));
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0].size(), 6u);
  EXPECT_EQ(result.num_noise, 0u);
  for (const int label : result.labels) EXPECT_EQ(label, 0);
}

TEST(DbscanTest, TwoSeparatedBundlesFormTwoClusters) {
  auto segs = Bundle(0, 0, 5, 0);
  const auto far = Bundle(0, 100, 5, 10);
  segs.insert(segs.end(), far.begin(), far.end());
  const traj::SegmentStore store(WithIds(std::move(segs)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(store, dist);
  const auto result = DbscanSegments(store, provider, Options(2.0, 3));
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.clusters[0].size(), 5u);
  EXPECT_EQ(result.clusters[1].size(), 5u);
  // Labels must not mix across the two bundles.
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(result.labels[i], result.labels[0]);
  for (size_t i = 5; i < 10; ++i) EXPECT_EQ(result.labels[i], result.labels[5]);
  EXPECT_NE(result.labels[0], result.labels[5]);
}

TEST(DbscanTest, IsolatedSegmentIsNoise) {
  auto segs = Bundle(0, 0, 5, 0);
  segs.emplace_back(Point(500, 500), Point(510, 500), -1, 99);
  const traj::SegmentStore store(WithIds(std::move(segs)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(store, dist);
  const auto result = DbscanSegments(store, provider, Options(2.0, 3));
  EXPECT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.num_noise, 1u);
  EXPECT_EQ(result.labels.back(), kNoise);
}

TEST(DbscanTest, MinLnsAboveBundleSizeYieldsAllNoise) {
  const traj::SegmentStore segs(WithIds(Bundle(0, 0, 4, 0)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(segs, dist);
  const auto result = DbscanSegments(segs, provider, Options(2.0, 10));
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_EQ(result.num_noise, segs.size());
}

TEST(DbscanTest, TrajectoryCardinalityFilterRemovesSingleTrajectoryCluster) {
  // Fig. 12 step 3: a dense bundle extracted from ONE trajectory must be
  // filtered out — it does not explain the behaviour of enough trajectories.
  auto segs = Bundle(0, 0, 6, /*tid0=*/0);
  for (auto& s : segs) s.set_trajectory_id(7);  // All from trajectory 7.
  const traj::SegmentStore store(WithIds(std::move(segs)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(store, dist);
  const auto result = DbscanSegments(store, provider, Options(2.0, 3));
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_EQ(result.num_noise, store.size());
  for (const int label : result.labels) EXPECT_EQ(label, kNoise);
}

TEST(DbscanTest, CardinalityThresholdCanDifferFromMinLns) {
  // "a threshold other than MinLns can be used" (Fig. 12 line 14 comment).
  auto segs = Bundle(0, 0, 6, /*tid0=*/0);
  for (size_t i = 0; i < segs.size(); ++i) {
    // 2 tids.
    segs[i].set_trajectory_id(static_cast<geom::TrajectoryId>(i % 2));
  }
  const traj::SegmentStore store(WithIds(std::move(segs)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(store, dist);

  // Default threshold = MinLns = 3 > 2.
  DbscanOptions strict = Options(2.0, 3);
  EXPECT_TRUE(DbscanSegments(store, provider, strict).clusters.empty());

  DbscanOptions relaxed = Options(2.0, 3);
  relaxed.min_trajectory_cardinality = 2;
  EXPECT_EQ(DbscanSegments(store, provider, relaxed).clusters.size(), 1u);

  DbscanOptions disabled = Options(2.0, 3);
  disabled.min_trajectory_cardinality = 0;
  EXPECT_EQ(DbscanSegments(store, provider, disabled).clusters.size(), 1u);
}

TEST(DbscanTest, WeightedCountsReachDensityWithFewSegments) {
  // §4.2 extension: two heavy segments can satisfy MinLns = 4 by weight.
  auto segs = Bundle(0, 0, 2, /*tid0=*/0);
  segs[0].set_weight(3.0);
  segs[1].set_weight(2.0);
  const traj::SegmentStore store(WithIds(std::move(segs)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(store, dist);

  DbscanOptions unweighted = Options(2.0, 4);
  unweighted.min_trajectory_cardinality = 2;
  EXPECT_TRUE(DbscanSegments(store, provider, unweighted).clusters.empty());

  DbscanOptions weighted = unweighted;
  weighted.use_weights = true;  // Mass = 5 ≥ 4.
  EXPECT_EQ(DbscanSegments(store, provider, weighted).clusters.size(), 1u);
}

TEST(DbscanTest, BorderSegmentJoinsClusterButDoesNotExpand) {
  // Classic DBSCAN border semantics: a non-core segment inside a core segment's
  // neighborhood joins the cluster; segments only reachable through it do not.
  std::vector<Segment> segs = Bundle(0, 0, 5, 0, 0.2);  // Dense core at y≈0.
  // Border at y=2.0: within ε of the top core segments but with only 4
  // neighbors itself (< MinLns). Behind-border at y=3.2: reachable only
  // through the border.
  segs.emplace_back(Point(0, 2.0), Point(10, 2.0), -1, 20);
  segs.emplace_back(Point(0, 3.2), Point(10, 3.2), -1, 21);
  const traj::SegmentStore store(WithIds(std::move(segs)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(store, dist);
  DbscanOptions opt = Options(1.6, 5);
  opt.min_trajectory_cardinality = 0;
  const auto result = DbscanSegments(store, provider, opt);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.labels[5], 0) << "border segment should join";
  EXPECT_EQ(result.labels[6], kNoise) << "border must not expand the cluster";
}

TEST(DbscanTest, IndexAndBruteForceProduceIdenticalClusterings) {
  common::Rng rng(5);
  std::vector<Segment> segs;
  for (int b = 0; b < 6; ++b) {
    const double x = rng.Uniform(0, 200);
    const double y = rng.Uniform(0, 200);
    for (const auto& s : Bundle(x, y, 5, b * 10)) segs.push_back(s);
  }
  for (int i = 0; i < 30; ++i) {  // Scatter noise.
    const Point s(rng.Uniform(0, 400), rng.Uniform(0, 400));
    segs.emplace_back(s, Point(s.x() + rng.Uniform(-5, 5), s.y() + 300), -1,
                      100 + i);
  }
  const traj::SegmentStore store(WithIds(std::move(segs)));
  const SegmentDistance dist;
  const BruteForceNeighborhood brute(store, dist);
  const GridNeighborhoodIndex index(store, dist);
  DbscanOptions opt = Options(3.0, 4);
  opt.min_trajectory_cardinality = 3;
  const auto a = DbscanSegments(store, brute, opt);
  const auto b = DbscanSegments(store, index, opt);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.clusters.size(), b.clusters.size());
  EXPECT_EQ(a.num_noise, b.num_noise);
}

TEST(DbscanTest, DeterministicAcrossRuns) {
  common::Rng rng(9);
  std::vector<Segment> segs;
  for (int i = 0; i < 120; ++i) {
    const Point s(rng.Uniform(0, 60), rng.Uniform(0, 60));
    segs.emplace_back(s, Point(s.x() + rng.Uniform(-6, 6),
                               s.y() + rng.Uniform(-6, 6)),
                      i, i % 9);
  }
  const SegmentDistance dist;
  const traj::SegmentStore store(std::move(segs));
  const BruteForceNeighborhood provider(store, dist);
  const auto r1 = DbscanSegments(store, provider, Options(4.0, 4));
  const auto r2 = DbscanSegments(store, provider, Options(4.0, 4));
  EXPECT_EQ(r1.labels, r2.labels);
}

TEST(DbscanTest, AllLabelsAreResolvedAfterCompletion) {
  common::Rng rng(13);
  std::vector<Segment> segs;
  for (int i = 0; i < 150; ++i) {
    const Point s(rng.Uniform(0, 80), rng.Uniform(0, 80));
    segs.emplace_back(s, Point(s.x() + rng.Uniform(-4, 4),
                               s.y() + rng.Uniform(-4, 4)),
                      i, i % 11);
  }
  const SegmentDistance dist;
  const traj::SegmentStore store(std::move(segs));
  const BruteForceNeighborhood provider(store, dist);
  const auto result = DbscanSegments(store, provider, Options(5.0, 4));
  size_t clustered = 0;
  for (const int label : result.labels) {
    EXPECT_NE(label, kUnclassified);
    if (label >= 0) {
      ASSERT_LT(static_cast<size_t>(label), result.clusters.size());
      ++clustered;
    }
  }
  EXPECT_EQ(clustered + result.num_noise, store.size());
  // Cluster member lists and labels must agree.
  for (const auto& c : result.clusters) {
    for (const size_t idx : c.member_indices) {
      EXPECT_EQ(result.labels[idx], c.id);
    }
  }
}

TEST(DbscanTest, ClusterIdsAreDenseAfterFiltering) {
  // Three bundles; the middle one comes from a single trajectory and gets
  // filtered, so the surviving ids must be renumbered 0..k-1.
  auto segs = Bundle(0, 0, 5, 0);
  auto single = Bundle(100, 0, 5, 50);
  for (auto& s : single) s.set_trajectory_id(50);
  auto third = Bundle(200, 0, 5, 60);
  segs.insert(segs.end(), single.begin(), single.end());
  segs.insert(segs.end(), third.begin(), third.end());
  const traj::SegmentStore store(WithIds(std::move(segs)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(store, dist);
  const auto result = DbscanSegments(store, provider, Options(2.0, 3));
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.clusters[0].id, 0);
  EXPECT_EQ(result.clusters[1].id, 1);
}

TEST(ParticipatingTrajectoriesTest, CountsDistinctTrajectories) {
  auto segs = WithIds(Bundle(0, 0, 6, 0));
  segs[1].set_trajectory_id(0);  // Duplicate a trajectory id.
  Cluster c;
  c.id = 0;
  for (size_t i = 0; i < segs.size(); ++i) c.member_indices.push_back(i);
  EXPECT_EQ(TrajectoryCardinality(segs, c), 5u);
  const auto ptr = ParticipatingTrajectories(segs, c);
  EXPECT_TRUE(ptr.count(0));
  EXPECT_FALSE(ptr.count(1));
  // The store-backed overloads read the flat trajectory-id column.
  const traj::SegmentStore store(segs);
  EXPECT_EQ(TrajectoryCardinality(store, c), 5u);
  EXPECT_EQ(ParticipatingTrajectories(store, c), ptr);
}

// A mixed scene for the batching tests: three dense bundles far apart plus a
// sprinkle of random noise segments, enough mass that the expansion queue
// stays busy and the blocked fetcher's prefetch paths all fire.
traj::SegmentStore BatchingScene() {
  std::vector<Segment> segs;
  geom::TrajectoryId tid = 0;
  for (const double y0 : {0.0, 40.0, 80.0}) {
    for (int i = 0; i < 12; ++i) {
      segs.emplace_back(Point(0.0, y0 + 0.25 * i),
                        Point(10.0, y0 + 0.25 * i), /*id=*/-1, tid++);
    }
  }
  common::Rng rng(1234);
  for (int i = 0; i < 30; ++i) {
    const Point s(rng.Uniform(0, 200), rng.Uniform(100, 300));
    segs.emplace_back(
        s, Point(s.x() + rng.Uniform(-8, 8), s.y() + rng.Uniform(-8, 8)),
        /*id=*/-1, tid++);
  }
  for (size_t i = 0; i < segs.size(); ++i) {
    segs[i].set_id(static_cast<geom::SegmentId>(i));
  }
  return traj::SegmentStore(std::move(segs));
}

TEST(DbscanSegmentsTest, BlockStreamedBatchingIsIdenticalForEveryBlockSize) {
  // The bounded-memory batched path (peak O(block · max|Nε|)) must produce
  // byte-identical clusters to the unbatched serial path, down to block = 1.
  const auto segs = BatchingScene();
  const SegmentDistance dist;
  const GridNeighborhoodIndex index(segs, dist);

  DbscanOptions serial;
  serial.eps = 2.0;
  serial.min_lns = 5;
  serial.num_threads = 1;
  const auto baseline = DbscanSegments(segs, index, serial);
  ASSERT_GE(baseline.clusters.size(), 3u);

  for (const size_t block : {size_t{1}, size_t{2}, size_t{7}, size_t{64},
                             size_t{0} /* default */}) {
    SCOPED_TRACE(block);
    DbscanOptions batched = serial;
    batched.num_threads = 4;
    batched.batch_block = block;
    const auto got = DbscanSegments(segs, index, batched);
    EXPECT_EQ(got.labels, baseline.labels);
    EXPECT_EQ(got.num_noise, baseline.num_noise);
    ASSERT_EQ(got.clusters.size(), baseline.clusters.size());
    for (size_t c = 0; c < got.clusters.size(); ++c) {
      EXPECT_EQ(got.clusters[c].id, baseline.clusters[c].id);
      EXPECT_EQ(got.clusters[c].member_indices,
                baseline.clusters[c].member_indices);
    }
  }
}

TEST(DbscanSegmentsTest, CancellationThrowsOperationCancelled) {
  const auto segs = BatchingScene();
  const SegmentDistance dist;
  const GridNeighborhoodIndex index(segs, dist);
  common::CancellationToken token;
  token.Cancel();
  DbscanOptions opt;
  opt.eps = 2.0;
  opt.min_lns = 5;
  opt.cancellation = &token;
  EXPECT_THROW(DbscanSegments(segs, index, opt), common::OperationCancelled);
}

}  // namespace
}  // namespace traclus::cluster
