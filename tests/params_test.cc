// Tests for parameter selection (§4.4): neighborhood entropy, the sweep
// profile, simulated annealing, and the end-to-end heuristic.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/neighborhood.h"
#include "common/rng.h"
#include "params/entropy.h"
#include "params/parameter_heuristic.h"
#include "params/simulated_annealing.h"
#include "traj/segment_store.h"

namespace traclus::params {
namespace {

using distance::SegmentDistance;
using geom::Point;
using geom::Segment;

TEST(EntropyTest, UniformDistributionIsMaximal) {
  // n equal masses ⇒ H = log2(n) (Formula (10) with p_i = 1/n).
  const std::vector<size_t> uniform(16, 3);
  EXPECT_NEAR(NeighborhoodEntropy(uniform), 4.0, 1e-12);
}

TEST(EntropyTest, SkewLowersEntropy) {
  const std::vector<size_t> uniform = {4, 4, 4, 4};
  const std::vector<size_t> skewed = {13, 1, 1, 1};
  EXPECT_LT(NeighborhoodEntropy(skewed), NeighborhoodEntropy(uniform));
}

TEST(EntropyTest, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(NeighborhoodEntropy(std::vector<size_t>{}), 0.0);
  EXPECT_DOUBLE_EQ(NeighborhoodEntropy(std::vector<size_t>{0, 0}), 0.0);
}

TEST(EntropyTest, WeightedOverloadMatchesUnweightedOnIntegers) {
  const std::vector<size_t> counts = {1, 2, 3, 4};
  const std::vector<double> masses = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(NeighborhoodEntropy(counts), NeighborhoodEntropy(masses));
}

traj::SegmentStore TwoBundlesAndNoise(uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Segment> segs;
  auto bundle = [&](double x, double y, int count, int tid0) {
    for (int i = 0; i < count; ++i) {
      segs.emplace_back(Point(x, y + 0.4 * i), Point(x + 12, y + 0.4 * i),
                        static_cast<geom::SegmentId>(segs.size()), tid0 + i);
    }
  };
  bundle(0, 0, 8, 0);
  bundle(60, 40, 8, 20);
  for (int i = 0; i < 8; ++i) {
    const Point s(rng.Uniform(0, 80), rng.Uniform(0, 80));
    segs.emplace_back(s, Point(s.x() + rng.Uniform(-8, 8),
                               s.y() + rng.Uniform(-8, 8)),
                      static_cast<geom::SegmentId>(segs.size()), 40 + i);
  }
  return traj::SegmentStore(std::move(segs));
}

TEST(NeighborhoodProfileTest, MatchesDirectQueriesAtEveryGridPoint) {
  const auto segs = TwoBundlesAndNoise(1);
  const SegmentDistance dist;
  const std::vector<double> grid = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  const NeighborhoodProfile profile(segs, dist, grid);
  const cluster::BruteForceNeighborhood provider(segs, dist);
  for (size_t g = 0; g < grid.size(); ++g) {
    const auto direct = NeighborhoodSizes(provider, grid[g]);
    EXPECT_EQ(profile.SizesAt(g), direct) << "eps = " << grid[g];
  }
}

TEST(NeighborhoodProfileTest, CountsAreMonotoneInEps) {
  const auto segs = TwoBundlesAndNoise(2);
  const SegmentDistance dist;
  std::vector<double> grid;
  for (int i = 1; i <= 30; ++i) grid.push_back(static_cast<double>(i));
  const NeighborhoodProfile profile(segs, dist, grid);
  for (size_t g = 1; g < grid.size(); ++g) {
    const auto& prev = profile.SizesAt(g - 1);
    const auto& cur = profile.SizesAt(g);
    for (size_t i = 0; i < cur.size(); ++i) EXPECT_GE(cur[i], prev[i]);
  }
}

TEST(NeighborhoodProfileTest, TinyEpsGivesSingletonsLargeEpsGivesAll) {
  const auto segs = TwoBundlesAndNoise(3);
  const SegmentDistance dist;
  const NeighborhoodProfile profile(segs, dist, {1e-9, 1e9});
  for (const size_t s : profile.SizesAt(0)) EXPECT_EQ(s, 1u);
  for (const size_t s : profile.SizesAt(1)) EXPECT_EQ(s, segs.size());
  // §4.4: both extremes are near-uniform ⇒ entropy ≈ log2(n).
  const double h_max = std::log2(static_cast<double>(segs.size()));
  EXPECT_NEAR(profile.EntropyAt(0), h_max, 1e-9);
  EXPECT_NEAR(profile.EntropyAt(1), h_max, 1e-9);
}

TEST(NeighborhoodProfileTest, EntropyDipsAtClusterScale) {
  // The structured data set must have an interior entropy minimum well below
  // the uniform extremes — the §4.4 selection signal.
  const auto segs = TwoBundlesAndNoise(4);
  const SegmentDistance dist;
  std::vector<double> grid;
  for (int i = 1; i <= 60; ++i) grid.push_back(static_cast<double>(i));
  const NeighborhoodProfile profile(segs, dist, grid);
  const size_t best = profile.MinEntropyPosition();
  EXPECT_GT(best, 0u);
  EXPECT_LT(best, grid.size() - 1);
  const double h_max = std::log2(static_cast<double>(segs.size()));
  EXPECT_LT(profile.EntropyAt(best), h_max - 0.05);
}

TEST(NeighborhoodProfileTest, AvgNeighborhoodSizeMatchesCounts) {
  const auto segs = TwoBundlesAndNoise(5);
  const SegmentDistance dist;
  const NeighborhoodProfile profile(segs, dist, {5.0});
  const auto& sizes = profile.SizesAt(0);
  double sum = 0.0;
  for (const size_t s : sizes) sum += static_cast<double>(s);
  EXPECT_DOUBLE_EQ(profile.AvgNeighborhoodSizeAt(0), sum / sizes.size());
}

TEST(NeighborhoodProfileTest, BlockStreamedParallelPassIsIdentical) {
  // The parallel profile pass streams its count increments through bounded
  // blocks instead of staging threads × grid × n buffers; counts must be
  // identical to the serial pass for every thread count and block size,
  // down to block = 1.
  const auto segs = TwoBundlesAndNoise(8);
  const SegmentDistance dist;
  std::vector<double> grid;
  for (int i = 1; i <= 24; ++i) grid.push_back(0.75 * i);
  const NeighborhoodProfile serial(segs, dist, grid, /*num_threads=*/1);
  for (const int threads : {2, 4}) {
    for (const size_t block : {size_t{1}, size_t{3}, size_t{256}, size_t{0}}) {
      SCOPED_TRACE(testing::Message() << threads << " threads, block "
                                      << block);
      const NeighborhoodProfile parallel(segs, dist, grid, threads, block);
      for (size_t g = 0; g < grid.size(); ++g) {
        ASSERT_EQ(parallel.SizesAt(g), serial.SizesAt(g)) << "grid " << g;
      }
    }
  }
}

TEST(SimulatedAnnealingTest, FindsMinimumOfConvexFunction) {
  AnnealingOptions opt;
  opt.lo = -10;
  opt.hi = 10;
  opt.iterations = 500;
  const auto r = Minimize1D([](double x) { return (x - 3) * (x - 3); }, opt);
  EXPECT_NEAR(r.best_x, 3.0, 0.3);
  EXPECT_LT(r.best_value, 0.1);
}

TEST(SimulatedAnnealingTest, EscapesLocalMinimum) {
  // Double well: local minimum at x ≈ -2 (value 1), global at x ≈ 2 (value 0).
  auto f = [](double x) {
    const double a = (x + 2) * (x + 2) + 1.0;
    const double b = (x - 2) * (x - 2);
    return std::min(a, b);
  };
  AnnealingOptions opt;
  opt.lo = -6;
  opt.hi = 6;
  opt.iterations = 800;
  opt.initial_temp = 2.0;
  const auto r = Minimize1D(f, opt);
  EXPECT_NEAR(r.best_x, 2.0, 0.5);
}

TEST(SimulatedAnnealingTest, DeterministicForFixedSeed) {
  AnnealingOptions opt;
  opt.lo = 0;
  opt.hi = 1;
  auto f = [](double x) { return std::sin(13 * x) + x; };
  const auto a = Minimize1D(f, opt);
  const auto b = Minimize1D(f, opt);
  EXPECT_DOUBLE_EQ(a.best_x, b.best_x);
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
}

TEST(SimulatedAnnealingTest, StaysWithinBounds) {
  AnnealingOptions opt;
  opt.lo = 2.0;
  opt.hi = 3.0;
  opt.step_fraction = 2.0;  // Huge proposals force reflection.
  const auto r = Minimize1D([](double x) { return x; }, opt);
  EXPECT_GE(r.best_x, 2.0);
  EXPECT_LE(r.best_x, 3.0);
  EXPECT_NEAR(r.best_x, 2.0, 0.2);
}

TEST(ParameterHeuristicTest, RecoversClusterScaleEps) {
  const auto segs = TwoBundlesAndNoise(6);
  const SegmentDistance dist;
  HeuristicOptions opt;
  opt.eps_lo = 0.5;
  opt.eps_hi = 40.0;
  opt.grid_points = 80;
  const ParameterEstimate est = EstimateParameters(segs, dist, opt);
  // The bundles are ~3 units tall; the entropy-minimal ε must be at cluster
  // scale, far from both extremes.
  EXPECT_GT(est.eps, 0.5);
  EXPECT_LT(est.eps, 25.0);
  EXPECT_GT(est.avg_neighborhood_size, 1.0);
  EXPECT_DOUBLE_EQ(est.min_lns_low, est.avg_neighborhood_size + 1.0);
  EXPECT_DOUBLE_EQ(est.min_lns_high, est.avg_neighborhood_size + 3.0);
  EXPECT_EQ(est.grid_eps.size(), est.grid_entropy.size());
  EXPECT_EQ(est.grid_eps.size(), 80u);
}

TEST(ParameterHeuristicTest, AnnealingRefinementDoesNotRegress) {
  const auto segs = TwoBundlesAndNoise(7);
  const SegmentDistance dist;
  HeuristicOptions grid_only;
  grid_only.eps_lo = 0.5;
  grid_only.eps_hi = 40.0;
  grid_only.grid_points = 40;
  const ParameterEstimate base = EstimateParameters(segs, dist, grid_only);

  HeuristicOptions refined = grid_only;
  refined.refine_with_annealing = true;
  refined.annealing.iterations = 100;
  const ParameterEstimate ref = EstimateParameters(segs, dist, refined);
  EXPECT_LE(ref.entropy, base.entropy + 1e-9);
}

}  // namespace
}  // namespace traclus::params
