// Tests for the MDL cost model (§3.2) and all partitioners: the approximate
// O(n) algorithm (Fig. 8), the exact DP optimum, and the baselines.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "partition/approximate_partitioner.h"
#include "partition/douglas_peucker.h"
#include "partition/equal_interval.h"
#include "partition/mdl.h"
#include "partition/optimal_partitioner.h"
#include "partition/partitioner.h"

namespace traclus::partition {
namespace {

using geom::Point;

traj::Trajectory MakeTrajectory(std::initializer_list<Point> pts,
                                geom::TrajectoryId id = 0) {
  traj::Trajectory tr(id);
  for (const Point& p : pts) tr.Add(p);
  return tr;
}

// A straight horizontal line with n points spaced `step` apart.
traj::Trajectory StraightLine(size_t n, double step = 5.0) {
  traj::Trajectory tr(0);
  for (size_t i = 0; i < n; ++i) tr.Add(Point(step * i, 0.0));
  return tr;
}

// A square-wave zigzag with sharp 90° corners every `leg` points.
traj::Trajectory ZigZag(size_t corners, size_t points_per_leg = 4,
                        double step = 3.0) {
  traj::Trajectory tr(0);
  Point cursor(0, 0);
  bool horizontal = true;
  tr.Add(cursor);
  for (size_t c = 0; c < corners + 1; ++c) {
    for (size_t k = 0; k < points_per_leg; ++k) {
      cursor = horizontal ? Point(cursor.x() + step, cursor.y())
                          : Point(cursor.x(), cursor.y() + step);
      tr.Add(cursor);
    }
    horizontal = !horizontal;
  }
  return tr;
}

TEST(MdlEncodingTest, Log2Plus1KnownValues) {
  MdlOptions opt;
  opt.encoding = MdlEncoding::kLog2Plus1;
  const MdlCostModel model(opt);
  EXPECT_DOUBLE_EQ(model.Encode(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.Encode(1.0), 1.0);
  EXPECT_DOUBLE_EQ(model.Encode(3.0), 2.0);
  EXPECT_DOUBLE_EQ(model.Encode(7.0), 3.0);
}

TEST(MdlEncodingTest, Log2ClampedKnownValuesAndIsDefault) {
  const MdlCostModel model;  // kLog2Clamped is the default (paper's δ = 1).
  EXPECT_DOUBLE_EQ(model.Encode(0.0), 0.0);   // Clamped below 1.
  EXPECT_DOUBLE_EQ(model.Encode(0.5), 0.0);
  EXPECT_DOUBLE_EQ(model.Encode(1.0), 0.0);
  EXPECT_DOUBLE_EQ(model.Encode(8.0), 3.0);
}

TEST(MdlEncodingTest, BothEncodersAreMonotone) {
  for (const MdlEncoding enc : {MdlEncoding::kLog2Plus1,
                                MdlEncoding::kLog2Clamped}) {
    MdlOptions opt;
    opt.encoding = enc;
    const MdlCostModel model(opt);
    double prev = model.Encode(0.0);
    for (double x = 0.25; x < 100.0; x += 0.25) {
      const double cur = model.Encode(x);
      EXPECT_GE(cur, prev);
      prev = cur;
    }
  }
}

TEST(MdlCostTest, LHIsEncodedChordLength) {
  const MdlCostModel model;  // Default encoder: log2(max(x, 1)).
  const auto tr = MakeTrajectory({Point(0, 0), Point(3, 4), Point(6, 8)});
  EXPECT_DOUBLE_EQ(model.LH(tr, 0, 2), std::log2(10.0));  // len = 10.
}

TEST(MdlCostTest, StraightTrajectoryHasZeroDeviation) {
  const MdlCostModel model;
  const auto tr = StraightLine(6);
  EXPECT_NEAR(model.LDH(tr, 0, 5), 0.0, 1e-9);
  EXPECT_NEAR(model.MdlPar(tr, 0, 5), model.LH(tr, 0, 5), 1e-9);
}

TEST(MdlCostTest, RightAngleTurnHasPositiveDeviation) {
  const MdlCostModel model;
  const auto tr = MakeTrajectory({Point(0, 0), Point(10, 0), Point(10, 10)});
  EXPECT_GT(model.LDH(tr, 0, 2), 10.0);  // Large d⊥ and dθ on both legs.
}

TEST(MdlCostTest, NoParIsSumOfEncodedStepLengthsPlusSuppression) {
  MdlOptions opt;
  opt.suppression_bits = 2.5;
  const MdlCostModel model(opt);
  const auto tr = StraightLine(4, 5.0);
  EXPECT_DOUBLE_EQ(model.MdlNoPar(tr, 0, 3), 3.0 * std::log2(5.0) + 2.5);
}

TEST(MdlCostTest, DegenerateHypothesisIsFiniteAndExpensive) {
  // A loop that returns to its start: p_i == p_j makes the hypothesis segment
  // degenerate; the cost must stay finite and exceed the straight alternative.
  const MdlCostModel model;
  const auto tr = MakeTrajectory(
      {Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10), Point(0, 0)});
  const double cost = model.MdlPar(tr, 0, 4);
  EXPECT_TRUE(std::isfinite(cost));
  EXPECT_GT(cost, model.MdlNoPar(tr, 0, 4));
}

TEST(ApproximatePartitionerTest, TooShortTrajectories) {
  const ApproximatePartitioner part;
  traj::Trajectory empty(0);
  EXPECT_TRUE(part.CharacteristicPoints(empty).empty());
  const auto single = MakeTrajectory({Point(1, 1)});
  EXPECT_TRUE(part.CharacteristicPoints(single).empty());
  const auto pair = MakeTrajectory({Point(0, 0), Point(1, 1)});
  EXPECT_EQ(part.CharacteristicPoints(pair), (std::vector<size_t>{0, 1}));
}

TEST(ApproximatePartitionerTest, StraightLineKeepsOnlyEndpoints) {
  const ApproximatePartitioner part;
  const auto tr = StraightLine(50);
  EXPECT_EQ(part.CharacteristicPoints(tr), (std::vector<size_t>{0, 49}));
}

TEST(ApproximatePartitionerTest, RightAngleTurnPartitionsAtCorner) {
  const ApproximatePartitioner part;
  const auto tr = MakeTrajectory({Point(0, 0), Point(10, 0), Point(10, 10)});
  EXPECT_EQ(part.CharacteristicPoints(tr), (std::vector<size_t>{0, 1, 2}));
}

TEST(ApproximatePartitionerTest, ZigZagPartitionsNearEveryCorner) {
  const ApproximatePartitioner part;
  const auto tr = ZigZag(/*corners=*/6, /*points_per_leg=*/5);
  const auto cp = part.CharacteristicPoints(tr);
  // One characteristic point per corner (±1 index), plus the two endpoints.
  EXPECT_GE(cp.size(), 6u);
  EXPECT_EQ(cp.front(), 0u);
  EXPECT_EQ(cp.back(), tr.size() - 1);
}

TEST(ApproximatePartitionerTest, IndicesAreStrictlyIncreasing) {
  common::Rng rng(8);
  const ApproximatePartitioner part;
  for (int trial = 0; trial < 20; ++trial) {
    traj::Trajectory tr(0);
    Point p(0, 0);
    for (int i = 0; i < 60; ++i) {
      p = Point(p.x() + rng.Uniform(-2, 4), p.y() + rng.Uniform(-3, 3));
      tr.Add(p);
    }
    const auto cp = part.CharacteristicPoints(tr);
    ASSERT_GE(cp.size(), 2u);
    EXPECT_EQ(cp.front(), 0u);
    EXPECT_EQ(cp.back(), tr.size() - 1);
    for (size_t i = 1; i < cp.size(); ++i) EXPECT_LT(cp[i - 1], cp[i]);
  }
}

TEST(ApproximatePartitionerTest, SuppressionYieldsLongerPartitions) {
  // §4.1.3: adding a constant to cost_nopar suppresses partitioning.
  const ApproximatePartitioner plain;
  MdlOptions suppressed_opt;
  suppressed_opt.suppression_bits = 4.0;
  const ApproximatePartitioner suppressed(suppressed_opt);
  common::Rng rng(99);
  traj::Trajectory tr(0);
  Point p(0, 0);
  for (int i = 0; i < 200; ++i) {
    p = Point(p.x() + rng.Uniform(0, 3), p.y() + rng.Uniform(-2.5, 2.5));
    tr.Add(p);
  }
  const size_t plain_parts = plain.CharacteristicPoints(tr).size();
  const size_t suppressed_parts = suppressed.CharacteristicPoints(tr).size();
  EXPECT_LT(suppressed_parts, plain_parts);
  EXPECT_GE(suppressed_parts, 2u);
}

TEST(ApproximatePartitionerTest, AppendixCShiftInvariance) {
  // Appendix C: because L(H) encodes lengths rather than endpoint coordinates,
  // shifting a trajectory by (10000, 10000) must not change its partitioning.
  const ApproximatePartitioner part;
  common::Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    traj::Trajectory tr(0);
    traj::Trajectory shifted(1);
    Point p(100 + rng.Uniform(0, 100), 100 + rng.Uniform(0, 100));
    for (int i = 0; i < 80; ++i) {
      p = Point(p.x() + rng.Uniform(-1, 5), p.y() + rng.Uniform(-4, 4));
      tr.Add(p);
      shifted.Add(Point(p.x() + 10000.0, p.y() + 10000.0));
    }
    EXPECT_EQ(part.CharacteristicPoints(tr),
              part.CharacteristicPoints(shifted));
  }
}

TEST(ApproximatePartitionerTest, DuplicatePointsDoNotCrash) {
  const ApproximatePartitioner part;
  const auto tr = MakeTrajectory(
      {Point(0, 0), Point(0, 0), Point(5, 0), Point(5, 0), Point(5, 5)});
  const auto cp = part.CharacteristicPoints(tr);
  EXPECT_EQ(cp.front(), 0u);
  EXPECT_EQ(cp.back(), 4u);
}

TEST(OptimalPartitionerTest, MatchesExhaustiveEnumerationOnSmallInputs) {
  // The DP must find the global optimum over all 2^(n-2) selections.
  common::Rng rng(55);
  const OptimalPartitioner optimal;
  for (int trial = 0; trial < 15; ++trial) {
    traj::Trajectory tr(0);
    Point p(0, 0);
    const int n = 8;
    for (int i = 0; i < n; ++i) {
      p = Point(p.x() + rng.Uniform(0.5, 4), p.y() + rng.Uniform(-3, 3));
      tr.Add(p);
    }
    const auto dp_cp = optimal.CharacteristicPoints(tr);
    const double dp_cost = optimal.TotalCost(tr, dp_cp);

    double best_cost = std::numeric_limits<double>::infinity();
    const int interior = n - 2;
    for (int mask = 0; mask < (1 << interior); ++mask) {
      std::vector<size_t> cp{0};
      for (int b = 0; b < interior; ++b) {
        if (mask & (1 << b)) cp.push_back(static_cast<size_t>(b + 1));
      }
      cp.push_back(static_cast<size_t>(n - 1));
      best_cost = std::min(best_cost, optimal.TotalCost(tr, cp));
    }
    EXPECT_NEAR(dp_cost, best_cost, 1e-9);
  }
}

TEST(OptimalPartitionerTest, NeverWorseThanApproximate) {
  common::Rng rng(77);
  const OptimalPartitioner optimal;
  const ApproximatePartitioner approx;
  for (int trial = 0; trial < 10; ++trial) {
    traj::Trajectory tr(0);
    Point p(0, 0);
    for (int i = 0; i < 40; ++i) {
      p = Point(p.x() + rng.Uniform(0, 4), p.y() + rng.Uniform(-3, 3));
      tr.Add(p);
    }
    const double opt_cost =
        optimal.TotalCost(tr, optimal.CharacteristicPoints(tr));
    const double approx_cost =
        optimal.TotalCost(tr, approx.CharacteristicPoints(tr));
    EXPECT_LE(opt_cost, approx_cost + 1e-9);
  }
}

TEST(OptimalPartitionerTest, StraightLineKeepsOnlyEndpoints) {
  const OptimalPartitioner optimal;
  const auto tr = StraightLine(12);
  EXPECT_EQ(optimal.CharacteristicPoints(tr), (std::vector<size_t>{0, 11}));
}

TEST(DouglasPeuckerTest, StraightLineCollapsesToEndpoints) {
  const DouglasPeuckerPartitioner dp(0.01);
  const auto tr = StraightLine(30);
  EXPECT_EQ(dp.CharacteristicPoints(tr), (std::vector<size_t>{0, 29}));
}

TEST(DouglasPeuckerTest, KeepsCornerAboveTolerance) {
  const DouglasPeuckerPartitioner dp(1.0);
  const auto tr = MakeTrajectory({Point(0, 0), Point(10, 0), Point(10, 10)});
  EXPECT_EQ(dp.CharacteristicPoints(tr), (std::vector<size_t>{0, 1, 2}));
}

TEST(DouglasPeuckerTest, LargerToleranceKeepsFewerPoints) {
  const auto tr = ZigZag(5, 4, 2.0);
  const auto tight = DouglasPeuckerPartitioner(0.1).CharacteristicPoints(tr);
  const auto loose = DouglasPeuckerPartitioner(5.0).CharacteristicPoints(tr);
  EXPECT_LE(loose.size(), tight.size());
}

TEST(DouglasPeuckerTest, ClosedLoopDoesNotDegenerate) {
  // First == last point: the chord is degenerate, distances fall back to
  // point-to-point.
  const DouglasPeuckerPartitioner dp(0.5);
  const auto tr = MakeTrajectory(
      {Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10), Point(0, 0)});
  const auto cp = dp.CharacteristicPoints(tr);
  EXPECT_GE(cp.size(), 4u);
}

TEST(EqualIntervalTest, StrideSelectsEveryKth) {
  const EqualIntervalPartitioner part(3);
  const auto tr = StraightLine(10);
  EXPECT_EQ(part.CharacteristicPoints(tr), (std::vector<size_t>{0, 3, 6, 9}));
}

TEST(EqualIntervalTest, StrideOneKeepsEverything) {
  const EqualIntervalPartitioner part(1);
  const auto tr = StraightLine(5);
  EXPECT_EQ(part.CharacteristicPoints(tr),
            (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(EqualIntervalTest, LargeStrideKeepsEndpointsOnly) {
  const EqualIntervalPartitioner part(100);
  const auto tr = StraightLine(10);
  EXPECT_EQ(part.CharacteristicPoints(tr), (std::vector<size_t>{0, 9}));
}

TEST(MakePartitionSegmentsTest, ProvenanceAndSequentialIds) {
  auto tr = MakeTrajectory({Point(0, 0), Point(5, 0), Point(5, 5), Point(9, 5)},
                           /*id=*/42);
  tr.set_weight(2.5);
  const auto segs =
      MakePartitionSegments(tr, {0, 2, 3}, /*first_segment_id=*/10);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].id(), 10);
  EXPECT_EQ(segs[1].id(), 11);
  EXPECT_EQ(segs[0].trajectory_id(), 42);
  EXPECT_DOUBLE_EQ(segs[0].weight(), 2.5);
  EXPECT_EQ(segs[0].start(), Point(0, 0));
  EXPECT_EQ(segs[0].end(), Point(5, 5));
}

TEST(MakePartitionSegmentsTest, SkipsZeroLengthPartitions) {
  const auto tr = MakeTrajectory({Point(0, 0), Point(0, 0), Point(5, 0)});
  const auto segs = MakePartitionSegments(tr, {0, 1, 2}, 0);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].end(), Point(5, 0));
}

TEST(MakePartitionSegmentsTest, FewerThanTwoPointsYieldsNothing) {
  const auto tr = MakeTrajectory({Point(0, 0), Point(1, 0)});
  EXPECT_TRUE(MakePartitionSegments(tr, {}, 0).empty());
  EXPECT_TRUE(MakePartitionSegments(tr, {0}, 0).empty());
}

// Parameterized sweep: the §3.3 precision claim should hold in the ballpark on
// random-walk trajectories — the approximate solution recovers most of the
// exact characteristic points.
class PrecisionSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrecisionSweepTest, ApproximateFindsMostExactPoints) {
  common::Rng rng(GetParam());
  const ApproximatePartitioner approx;
  const OptimalPartitioner optimal;
  size_t hits = 0;
  size_t total = 0;
  for (int trial = 0; trial < 5; ++trial) {
    traj::Trajectory tr(0);
    Point p(0, 0);
    // Steps well above the δ = 1 precision, like the paper's coordinates.
    for (int i = 0; i < 50; ++i) {
      p = Point(p.x() + rng.Uniform(0, 16), p.y() + rng.Uniform(-12, 12));
      tr.Add(p);
    }
    const auto a = approx.CharacteristicPoints(tr);
    const auto e = optimal.CharacteristicPoints(tr);
    for (const size_t idx : a) {
      total += 1;
      hits += std::binary_search(e.begin(), e.end(), idx) ? 1 : 0;
    }
  }
  // The paper reports ≈80% on its data; random walks are harsher, so we only
  // require a clear majority here (the bench measures the real figure).
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(total), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrecisionSweepTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace traclus::partition
