// Tests for evaluation measures: QMeasure (Formula (11)), characteristic-point
// precision (§3.3), and cluster statistics (§5.4).

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "distance/segment_distance.h"
#include "eval/cluster_stats.h"
#include "eval/precision.h"
#include "eval/qmeasure.h"

namespace traclus::eval {
namespace {

using cluster::Cluster;
using cluster::ClusteringResult;
using cluster::kNoise;
using distance::SegmentDistance;
using geom::Point;
using geom::Segment;

TEST(QMeasureTest, SingleClusterHandComputed) {
  // Three parallel segments at y = 0, 1, 2; pairwise distances are d⊥ = dy
  // (identical spans ⇒ d∥ = dθ = 0). Unordered pair distances: 1, 1, 2.
  // SSE = (1/|C|)·Σ_{unordered} dist² = (1 + 1 + 4) / 3 = 2.
  std::vector<Segment> segs = {
      Segment(Point(0, 0), Point(10, 0), 0, 0),
      Segment(Point(0, 1), Point(10, 1), 1, 1),
      Segment(Point(0, 2), Point(10, 2), 2, 2),
  };
  ClusteringResult clustering;
  Cluster c;
  c.id = 0;
  c.member_indices = {0, 1, 2};
  clustering.clusters.push_back(c);
  clustering.labels = {0, 0, 0};
  clustering.num_noise = 0;

  const SegmentDistance dist;
  const QMeasureResult q = ComputeQMeasure(segs, clustering, dist);
  EXPECT_NEAR(q.total_sse, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(q.noise_penalty, 0.0);
  EXPECT_NEAR(q.qmeasure, 2.0, 1e-9);
}

TEST(QMeasureTest, NoisePenaltyHandComputed) {
  // Two noise segments 5 apart: penalty = (1/|N|)·dist² = 25 / 2.
  std::vector<Segment> segs = {
      Segment(Point(0, 0), Point(10, 0), 0, 0),
      Segment(Point(0, 5), Point(10, 5), 1, 1),
  };
  ClusteringResult clustering;
  clustering.labels = {kNoise, kNoise};
  clustering.num_noise = 2;
  const SegmentDistance dist;
  const QMeasureResult q = ComputeQMeasure(segs, clustering, dist);
  EXPECT_DOUBLE_EQ(q.total_sse, 0.0);
  EXPECT_NEAR(q.noise_penalty, 12.5, 1e-9);
  EXPECT_NEAR(q.qmeasure, 12.5, 1e-9);
}

TEST(QMeasureTest, EmptyClusteringIsZero) {
  std::vector<Segment> segs;
  ClusteringResult clustering;
  const SegmentDistance dist;
  const QMeasureResult q = ComputeQMeasure(segs, clustering, dist);
  EXPECT_DOUBLE_EQ(q.qmeasure, 0.0);
}

TEST(QMeasureTest, TighterClustersScoreLower) {
  auto make = [](double spread) {
    std::vector<Segment> segs;
    for (int i = 0; i < 5; ++i) {
      segs.emplace_back(Point(0, spread * i), Point(10, spread * i), i, i);
    }
    return segs;
  };
  ClusteringResult clustering;
  Cluster c;
  c.id = 0;
  c.member_indices = {0, 1, 2, 3, 4};
  clustering.clusters.push_back(c);
  clustering.labels.assign(5, 0);
  const SegmentDistance dist;
  const double tight = ComputeQMeasure(make(0.2), clustering, dist).qmeasure;
  const double loose = ComputeQMeasure(make(2.0), clustering, dist).qmeasure;
  EXPECT_LT(tight, loose);
}

TEST(PrecisionTest, IdenticalSelectionsAreperfect) {
  const std::vector<size_t> cp = {0, 3, 7, 11};
  EXPECT_DOUBLE_EQ(CharacteristicPointPrecision(cp, cp), 1.0);
  EXPECT_DOUBLE_EQ(CharacteristicPointRecall(cp, cp), 1.0);
  EXPECT_DOUBLE_EQ(InteriorCharacteristicPointPrecision(cp, cp), 1.0);
}

TEST(PrecisionTest, PartialOverlapHandComputed) {
  const std::vector<size_t> approx = {0, 3, 5, 11};
  const std::vector<size_t> exact = {0, 3, 8, 11};
  // Intersection {0, 3, 11} of 4 approx points.
  EXPECT_DOUBLE_EQ(CharacteristicPointPrecision(approx, exact), 0.75);
  EXPECT_DOUBLE_EQ(CharacteristicPointRecall(approx, exact), 0.75);
  // Interior: approx {3, 5}, exact {3, 8} ⇒ 1/2.
  EXPECT_DOUBLE_EQ(InteriorCharacteristicPointPrecision(approx, exact), 0.5);
}

TEST(PrecisionTest, DisjointInteriorsScoreZero) {
  const std::vector<size_t> approx = {0, 4, 9};
  const std::vector<size_t> exact = {0, 5, 9};
  EXPECT_DOUBLE_EQ(InteriorCharacteristicPointPrecision(approx, exact), 0.0);
  EXPECT_NEAR(CharacteristicPointPrecision(approx, exact), 2.0 / 3.0, 1e-12);
}

TEST(PrecisionTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(CharacteristicPointPrecision({}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(CharacteristicPointRecall({0, 1}, {}), 1.0);
  // Endpoint-only selections have no interior.
  EXPECT_DOUBLE_EQ(InteriorCharacteristicPointPrecision({0, 9}, {0, 4, 9}),
                   1.0);
}

TEST(QMeasureTest, SampledEstimatorTracksExactValue) {
  // Above the pair budget the measure switches to a seeded pair-sample; on a
  // 200-member set the estimate must land within a few percent of the exact
  // value and be deterministic.
  std::vector<Segment> segs;
  common::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const Point s(rng.Uniform(0, 50), rng.Uniform(0, 50));
    segs.emplace_back(s, Point(s.x() + rng.Uniform(-6, 6),
                               s.y() + rng.Uniform(-6, 6)),
                      i, i);
  }
  ClusteringResult clustering;
  Cluster c;
  c.id = 0;
  for (size_t i = 0; i < segs.size(); ++i) c.member_indices.push_back(i);
  clustering.clusters.push_back(c);
  clustering.labels.assign(segs.size(), 0);

  const SegmentDistance dist;
  QMeasureOptions exact_opt;
  exact_opt.max_pairs_per_set = 0;  // Force the exact path.
  const double exact =
      ComputeQMeasure(segs, clustering, dist, exact_opt).qmeasure;

  QMeasureOptions sampled_opt;
  sampled_opt.max_pairs_per_set = 4000;  // 200 choose 2 = 19900 > 4000.
  const double sampled =
      ComputeQMeasure(segs, clustering, dist, sampled_opt).qmeasure;
  EXPECT_NEAR(sampled, exact, 0.06 * exact);
  // Deterministic for the same seed.
  EXPECT_DOUBLE_EQ(
      sampled, ComputeQMeasure(segs, clustering, dist, sampled_opt).qmeasure);
}

TEST(ClusterStatsTest, SummaryHandComputed) {
  std::vector<Segment> segs;
  for (int i = 0; i < 10; ++i) {
    segs.emplace_back(Point(0, i), Point(10, i), i, i % 4);
  }
  ClusteringResult clustering;
  Cluster a;
  a.id = 0;
  a.member_indices = {0, 1, 2, 3};  // Trajectories 0,1,2,3 ⇒ |PTR| = 4.
  Cluster b;
  b.id = 1;
  b.member_indices = {4, 5};  // Trajectories 0,1 ⇒ |PTR| = 2.
  clustering.clusters = {a, b};
  clustering.labels = {0, 0, 0, 0, 1, 1, kNoise, kNoise, kNoise, kNoise};
  clustering.num_noise = 4;

  const ClusterStatsSummary s = SummarizeClustering(segs, clustering);
  EXPECT_EQ(s.num_clusters, 2u);
  EXPECT_EQ(s.num_segments, 10u);
  EXPECT_EQ(s.num_clustered_segments, 6u);
  EXPECT_EQ(s.num_noise, 4u);
  EXPECT_DOUBLE_EQ(s.avg_segments_per_cluster, 3.0);
  EXPECT_DOUBLE_EQ(s.avg_trajectory_cardinality, 3.0);  // (4 + 2) / 2.
  EXPECT_EQ(s.min_cluster_size, 2u);
  EXPECT_EQ(s.max_cluster_size, 4u);
}

TEST(ClusterStatsTest, EmptyClusteringSummary) {
  const ClusterStatsSummary s = SummarizeClustering({}, ClusteringResult{});
  EXPECT_EQ(s.num_clusters, 0u);
  EXPECT_DOUBLE_EQ(s.avg_segments_per_cluster, 0.0);
}

}  // namespace
}  // namespace traclus::eval
