// Tests for the streaming pipeline mode (TraclusEngine::Run(TrajectorySource&))
// and the out-of-core grouping path. The headline guarantee: streaming output
// is byte-identical to the committed golden pipeline output — segments,
// characteristic points, labels, cluster membership, every representative
// coordinate — across the full matrix of chunk capacities {1, 7, 1024, ∞},
// thread counts {1, 4}, and batch kernels {scalar, simd}. Bounded-residency
// runs additionally pin peak_resident_chunks() ≤ cap on a database larger
// than the cap, with result.store left unmaterialized.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "core/engine.h"
#include "datagen/hurricane_generator.h"
#include "traj/csv_io.h"
#include "traj/source.h"

namespace traclus::core {
namespace {

using common::StatusCode;

// --- Golden file machinery (format written by tools/golden_gen.cc) ---------

struct GoldenSegment {
  geom::SegmentId id = -1;
  geom::TrajectoryId trajectory_id = -1;
  geom::Point start;
  geom::Point end;
};

struct GoldenRun {
  size_t num_segments = 0;
  std::vector<GoldenSegment> segments;
  std::vector<std::vector<size_t>> characteristic_points;
  std::vector<int> labels;
  size_t num_clusters = 0;
  size_t num_noise = 0;
  std::vector<std::vector<size_t>> cluster_members;
  std::vector<std::vector<geom::Point>> representatives;
};

GoldenRun LoadGolden(const std::string& name) {
  const std::string path = std::string(TRACLUS_TEST_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open golden file " << path;
  GoldenRun g;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    std::string key;
    row >> key;
    if (key == "segments") {
      row >> g.num_segments;
    } else if (key == "seg") {
      GoldenSegment seg;
      long long id = 0;
      long long tid = 0;
      double sx = 0.0, sy = 0.0, ex = 0.0, ey = 0.0;
      row >> id >> tid >> sx >> sy >> ex >> ey;
      seg.id = static_cast<geom::SegmentId>(id);
      seg.trajectory_id = static_cast<geom::TrajectoryId>(tid);
      seg.start = geom::Point(sx, sy);
      seg.end = geom::Point(ex, ey);
      g.segments.push_back(seg);
    } else if (key == "cps") {
      size_t t = 0;
      row >> t;
      std::vector<size_t> cps;
      size_t cp = 0;
      while (row >> cp) cps.push_back(cp);
      g.characteristic_points.push_back(std::move(cps));
    } else if (key == "labels") {
      int label = 0;
      while (row >> label) g.labels.push_back(label);
    } else if (key == "clusters") {
      row >> g.num_clusters;
    } else if (key == "noise") {
      row >> g.num_noise;
    } else if (key == "cluster") {
      int id = 0;
      row >> id;
      std::vector<size_t> members;
      size_t m = 0;
      while (row >> m) members.push_back(m);
      g.cluster_members.push_back(std::move(members));
    } else if (key == "rep") {
      size_t idx = 0;
      row >> idx;
      std::vector<geom::Point> points;
      double x = 0.0, y = 0.0;
      while (row >> x >> y) points.emplace_back(x, y);
      g.representatives.push_back(std::move(points));
    }
  }
  return g;
}

// Compares a streaming run against the golden, bit for bit. When the run was
// residency-capped, segments live behind the chunked store instead of
// result.store.
void ExpectMatchesGolden(const TraclusResult& run, const GoldenRun& golden) {
  const bool capped = run.store.size() == 0 && run.chunked_store &&
                      run.chunked_store->size() > 0;
  const size_t n = capped ? run.chunked_store->size() : run.store.size();
  ASSERT_EQ(n, golden.num_segments);
  ASSERT_EQ(n, golden.segments.size());
  for (size_t c = 0; !capped && c < n; ++c) {
    const geom::Segment& got = run.store.segment(c);
    const GoldenSegment& want = golden.segments[c];
    ASSERT_EQ(got.id(), want.id) << "segment " << c;
    ASSERT_EQ(got.trajectory_id(), want.trajectory_id) << "segment " << c;
    ASSERT_EQ(got.start().x(), want.start.x()) << "segment " << c;
    ASSERT_EQ(got.start().y(), want.start.y()) << "segment " << c;
    ASSERT_EQ(got.end().x(), want.end.x()) << "segment " << c;
    ASSERT_EQ(got.end().y(), want.end.y()) << "segment " << c;
  }
  if (capped) {
    // Segment payloads are read through the chunked store.
    for (size_t c = 0; c < run.chunked_store->num_chunks(); ++c) {
      const auto chunk = run.chunked_store->Chunk(c);
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      const size_t base = run.chunked_store->chunk_begin(c);
      for (size_t i = 0; i < (*chunk)->size(); ++i) {
        const geom::Segment& got = (*chunk)->segment(i);
        const GoldenSegment& want = golden.segments[base + i];
        ASSERT_EQ(got.id(), want.id) << "segment " << base + i;
        ASSERT_EQ(got.trajectory_id(), want.trajectory_id);
        ASSERT_EQ(got.start().x(), want.start.x());
        ASSERT_EQ(got.start().y(), want.start.y());
        ASSERT_EQ(got.end().x(), want.end.x());
        ASSERT_EQ(got.end().y(), want.end.y());
      }
    }
  }
  EXPECT_EQ(run.characteristic_points, golden.characteristic_points);
  EXPECT_EQ(run.clustering.labels, golden.labels);
  EXPECT_EQ(run.clustering.num_noise, golden.num_noise);
  ASSERT_EQ(run.clustering.clusters.size(), golden.num_clusters);
  ASSERT_EQ(run.clustering.clusters.size(), golden.cluster_members.size());
  for (size_t c = 0; c < golden.cluster_members.size(); ++c) {
    EXPECT_EQ(run.clustering.clusters[c].member_indices,
              golden.cluster_members[c]);
  }
  ASSERT_EQ(run.representatives.size(), golden.representatives.size());
  for (size_t r = 0; r < golden.representatives.size(); ++r) {
    const auto& got = run.representatives[r].points();
    const auto& want = golden.representatives[r];
    ASSERT_EQ(got.size(), want.size()) << "representative " << r;
    for (size_t p = 0; p < want.size(); ++p) {
      EXPECT_EQ(got[p].x(), want[p].x());  // Bitwise (golden is %.17g).
      EXPECT_EQ(got[p].y(), want[p].y());
    }
  }
}

TraclusEngine HurricaneEngine(int threads) {
  TraclusConfig config;
  config.eps = 0.94;
  config.min_lns = 5;
  config.num_threads = threads;
  auto engine = TraclusEngine::FromConfig(config);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

// ---------------------------------------------------------------------------
// The golden matrix: chunk capacity × threads × kernel, all byte-identical
// to the eager pipeline's committed output.
// ---------------------------------------------------------------------------

TEST(StreamingGoldenTest, MatchesGoldenAcrossChunkThreadAndKernelMatrix) {
  const GoldenRun golden = LoadGolden("hurricane_default.golden");
  ASSERT_GT(golden.num_clusters, 0u);
  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});

  for (const size_t chunk : {size_t{1}, size_t{7}, size_t{1024}, size_t{0}}) {
    for (const int threads : {1, 4}) {
      for (const auto kernel :
           {distance::BatchKernel::kScalar, distance::BatchKernel::kSimd}) {
        SCOPED_TRACE(testing::Message()
                     << "chunk " << chunk << " threads " << threads
                     << " kernel " << static_cast<int>(kernel));
        const TraclusEngine engine = HurricaneEngine(threads);
        traj::DatabaseSource source(db);
        RunContext ctx;
        ctx.chunk_capacity = chunk;
        ctx.distance_kernel = kernel;
        const auto run = engine.Run(source, ctx);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        ASSERT_NE(run->chunked_store, nullptr);
        EXPECT_EQ(run->chunked_store->options().chunk_capacity, chunk);
        ExpectMatchesGolden(*run, golden);
      }
    }
  }
}

TEST(StreamingGoldenTest, CappedOutOfCoreRunMatchesGolden) {
  const GoldenRun golden = LoadGolden("hurricane_default.golden");
  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});

  for (const int threads : {1, 4}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    const TraclusEngine engine = HurricaneEngine(threads);
    traj::DatabaseSource source(db);
    RunContext ctx;
    // Many more chunks than the residency cap: the database cannot fit in
    // the reader cache, so grouping must genuinely run out-of-core.
    ctx.chunk_capacity = 64;
    ctx.max_resident_chunks = 3;
    const auto run = engine.Run(source, ctx);
    ASSERT_TRUE(run.ok()) << run.status().ToString();

    ASSERT_NE(run->chunked_store, nullptr);
    const auto& store = *run->chunked_store;
    ASSERT_GT(store.num_chunks(), 3u)
        << "test needs a database larger than the residency cap";
    // The cap held for the whole grouping + representative phase...
    EXPECT_LE(store.peak_resident_chunks(), 3u);
    EXPECT_GE(store.peak_resident_chunks(), 1u);
    // ...and the monolithic store was never materialized.
    EXPECT_EQ(run->store.size(), 0u);

    ExpectMatchesGolden(*run, golden);
  }
}

// ---------------------------------------------------------------------------
// Streaming-specific semantics.
// ---------------------------------------------------------------------------

TEST(StreamingRunTest, EmptySourceIsFailedPrecondition) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok());
  traj::CsvStringSource source("");
  const auto run = engine->Run(source);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamingRunTest, PreCancelledTokenStopsBeforeIngest) {
  const auto engine = TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok());
  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});
  traj::DatabaseSource source(db);
  common::CancellationToken token;
  token.Cancel();
  RunContext ctx;
  ctx.cancellation = &token;
  const auto run = engine->Run(source, ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

TEST(StreamingRunTest, ProgressBracketsEveryStageOnce) {
  // Block-wise ingest must not spam per-block partition events: each stage
  // reports a single 0.0 → ... → 1.0 bracket, exactly like the eager run.
  TraclusConfig config;
  config.eps = 0.94;
  config.min_lns = 5;
  const auto engine = TraclusEngine::FromConfig(config);
  ASSERT_TRUE(engine.ok());
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 600;  // > one ingest block.
  const auto db = datagen::GenerateHurricanes(gen);
  traj::DatabaseSource source(db);

  std::vector<std::pair<std::string, double>> events;
  RunContext ctx;
  ctx.chunk_capacity = 128;
  ctx.progress = [&](const std::string& stage, double fraction) {
    events.emplace_back(stage, fraction);
  };
  const auto run = engine->Run(source, ctx);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const std::vector<std::string> expected_order = {
      "partition/mdl-approx", "group/dbscan", "represent/sweep-projection"};
  size_t order_pos = 0;
  std::string current;
  double last_fraction = 0.0;
  for (const auto& [stage, fraction] : events) {
    if (stage != current) {
      if (!current.empty()) EXPECT_EQ(last_fraction, 1.0) << current;
      ASSERT_LT(order_pos, expected_order.size());
      EXPECT_EQ(stage, expected_order[order_pos++]);
      EXPECT_EQ(fraction, 0.0) << stage;
      current = stage;
    } else {
      EXPECT_GE(fraction, last_fraction) << stage;
    }
    last_fraction = fraction;
  }
  EXPECT_EQ(order_pos, expected_order.size());
  EXPECT_EQ(last_fraction, 1.0);
}

TEST(StreamingRunTest, CsvSourceStreamsStraightIntoThePipeline) {
  // End to end from CSV text: the streaming run over a CsvStringSource must
  // equal the eager run over the parsed database.
  std::ostringstream csv;
  for (int t = 0; t < 24; ++t) {
    for (int p = 0; p < 12; ++p) {
      csv << t << "," << p << "," << 0.05 * t + ((p % 3) - 1) * 0.01 << "\n";
    }
  }
  TraclusConfig config;
  config.eps = 0.5;
  config.min_lns = 3;
  const auto engine = TraclusEngine::FromConfig(config);
  ASSERT_TRUE(engine.ok());

  const auto eager_db = traj::ParseCsv(csv.str());
  ASSERT_TRUE(eager_db.ok()) << eager_db.status().ToString();
  const auto eager = engine->Run(*eager_db);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();

  traj::CsvStringSource source(csv.str());
  RunContext ctx;
  ctx.chunk_capacity = 5;
  const auto streamed = engine->Run(source, ctx);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  ASSERT_EQ(streamed->store.size(), eager->store.size());
  for (size_t i = 0; i < eager->store.size(); ++i) {
    EXPECT_EQ(streamed->store.segment(i).id(), eager->store.segment(i).id());
    EXPECT_EQ(streamed->store.segment(i).trajectory_id(),
              eager->store.segment(i).trajectory_id());
  }
  EXPECT_EQ(streamed->characteristic_points, eager->characteristic_points);
  EXPECT_EQ(streamed->clustering.labels, eager->clustering.labels);
  ASSERT_EQ(streamed->representatives.size(), eager->representatives.size());
  for (size_t r = 0; r < eager->representatives.size(); ++r) {
    const auto& sp = streamed->representatives[r].points();
    const auto& ep = eager->representatives[r].points();
    ASSERT_EQ(sp.size(), ep.size());
    for (size_t p = 0; p < ep.size(); ++p) {
      EXPECT_EQ(sp[p].x(), ep[p].x());
      EXPECT_EQ(sp[p].y(), ep[p].y());
    }
  }
}

TEST(StreamingRunTest, BruteForceProviderAlsoMatchesUnderResidencyCap) {
  // The no-index (Lemma 3 "no index") configuration exercises the chunked
  // brute-force provider; labels must equal the eager no-index run's.
  DbscanGroupOptions group;
  group.eps = 0.94;
  group.min_lns = 5;
  group.use_index = false;
  const auto engine = TraclusEngine::Builder()
                          .UseDbscanGrouping(group)
                          .WithoutRepresentatives()
                          .Build();
  ASSERT_TRUE(engine.ok());
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 120;
  const auto db = datagen::GenerateHurricanes(gen);

  const auto eager = engine->Run(db);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();

  traj::DatabaseSource source(db);
  RunContext ctx;
  ctx.chunk_capacity = 100;
  ctx.max_resident_chunks = 2;
  const auto streamed = engine->Run(source, ctx);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ASSERT_NE(streamed->chunked_store, nullptr);
  EXPECT_LE(streamed->chunked_store->peak_resident_chunks(), 2u);
  EXPECT_EQ(streamed->clustering.labels, eager->clustering.labels);
  EXPECT_EQ(streamed->clustering.num_noise, eager->clustering.num_noise);
}

}  // namespace
}  // namespace traclus::core
