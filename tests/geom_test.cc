// Unit and property tests for the geometry substrate: points, vector ops,
// segments, segment-to-segment distance, bounding boxes.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/bbox.h"
#include "geom/point.h"
#include "geom/segment.h"
#include "geom/vector_ops.h"

namespace traclus::geom {
namespace {

TEST(PointTest, DefaultIs2DOrigin) {
  Point p;
  EXPECT_EQ(p.dims(), 2);
  EXPECT_DOUBLE_EQ(p.x(), 0.0);
  EXPECT_DOUBLE_EQ(p.y(), 0.0);
}

TEST(PointTest, ThreeDimensionalAccess) {
  Point p(1, 2, 3);
  EXPECT_EQ(p.dims(), 3);
  EXPECT_DOUBLE_EQ(p.z(), 3.0);
  EXPECT_DOUBLE_EQ(p[2], 3.0);
}

TEST(PointTest, Arithmetic) {
  const Point a(1, 2);
  const Point b(3, 5);
  EXPECT_EQ(a + b, Point(4, 7));
  EXPECT_EQ(b - a, Point(2, 3));
  EXPECT_EQ(a * 2.0, Point(2, 4));
  EXPECT_EQ(2.0 * a, Point(2, 4));
  EXPECT_EQ(b / 2.0, Point(1.5, 2.5));
}

TEST(PointTest, NormAndDistance) {
  EXPECT_DOUBLE_EQ(Point(3, 4).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Point(3, 4).SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(Distance(Point(0, 0), Point(3, 4)), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(Point(1, 1), Point(4, 5)), 25.0);
}

TEST(PointTest, EqualityRespectsDims) {
  EXPECT_FALSE(Point(1, 2) == Point(1, 2, 0));
  EXPECT_TRUE(Point(1, 2) != Point(1, 2, 0));
}

TEST(PointTest, ToStringFormats) {
  EXPECT_EQ(Point(1, 2).ToString(), "(1, 2)");
  EXPECT_EQ(Point(1, 2, 3).ToString(), "(1, 2, 3)");
}

TEST(VectorOpsTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot(Point(1, 2), Point(3, 4)), 11.0);
  EXPECT_DOUBLE_EQ(Dot(Point(1, 0, 2), Point(0, 5, 3)), 6.0);
}

TEST(VectorOpsTest, ProjectionCoefficientFormula4) {
  // Formula (4): u = (sp · se) / ||se||².
  const Point s(0, 0);
  const Point e(10, 0);
  EXPECT_DOUBLE_EQ(ProjectionCoefficient(Point(5, 3), s, e), 0.5);
  EXPECT_DOUBLE_EQ(ProjectionCoefficient(Point(0, 7), s, e), 0.0);
  EXPECT_DOUBLE_EQ(ProjectionCoefficient(Point(10, -2), s, e), 1.0);
  EXPECT_DOUBLE_EQ(ProjectionCoefficient(Point(15, 1), s, e), 1.5);
  EXPECT_DOUBLE_EQ(ProjectionCoefficient(Point(-5, 1), s, e), -0.5);
}

TEST(VectorOpsTest, ProjectionDegenerateBaseCollapsesToStart) {
  const Point s(2, 2);
  EXPECT_DOUBLE_EQ(ProjectionCoefficient(Point(9, 9), s, s), 0.0);
  EXPECT_EQ(ProjectOntoLine(Point(9, 9), s, s), s);
}

TEST(VectorOpsTest, PointToLineVsSegmentDistance) {
  const Point s(0, 0);
  const Point e(10, 0);
  // Beyond the end: line distance uses the perpendicular, segment distance the
  // endpoint.
  EXPECT_DOUBLE_EQ(PointToLineDistance(Point(15, 3), s, e), 3.0);
  EXPECT_DOUBLE_EQ(PointToSegmentDistance(Point(15, 0), s, e), 5.0);
  EXPECT_DOUBLE_EQ(PointToSegmentDistance(Point(5, 4), s, e), 4.0);
}

TEST(VectorOpsTest, AngleBetweenKnownVectors) {
  EXPECT_NEAR(AngleBetween(Point(1, 0), Point(0, 1)), M_PI / 2, 1e-12);
  EXPECT_NEAR(AngleBetween(Point(1, 0), Point(-1, 0)), M_PI, 1e-12);
  EXPECT_NEAR(AngleBetween(Point(1, 0), Point(1, 1)), M_PI / 4, 1e-12);
  EXPECT_NEAR(AngleBetween(Point(2, 0), Point(5, 0)), 0.0, 1e-12);
}

TEST(VectorOpsTest, CosAngleDegenerateVectorIsOne) {
  EXPECT_DOUBLE_EQ(CosAngleBetween(Point(0, 0), Point(1, 1)), 1.0);
}

TEST(SegmentTest, BasicAccessors) {
  const Segment s(Point(0, 0), Point(3, 4), /*id=*/7, /*trajectory_id=*/2, 1.5);
  EXPECT_DOUBLE_EQ(s.Length(), 5.0);
  EXPECT_EQ(s.Midpoint(), Point(1.5, 2.0));
  EXPECT_EQ(s.Direction(), Point(3, 4));
  EXPECT_EQ(s.id(), 7);
  EXPECT_EQ(s.trajectory_id(), 2);
  EXPECT_DOUBLE_EQ(s.weight(), 1.5);
}

TEST(SegmentTest, ReversedPreservesProvenance) {
  const Segment s(Point(0, 0), Point(1, 0), 7, 2, 1.5);
  const Segment r = s.Reversed();
  EXPECT_EQ(r.start(), Point(1, 0));
  EXPECT_EQ(r.end(), Point(0, 0));
  EXPECT_EQ(r.id(), 7);
  EXPECT_EQ(r.trajectory_id(), 2);
}

TEST(SegmentDistanceTest, IntersectingSegmentsHaveZeroDistance) {
  const Segment a(Point(0, 0), Point(10, 0));
  const Segment b(Point(5, -5), Point(5, 5));
  EXPECT_NEAR(SegmentToSegmentDistance(a, b), 0.0, 1e-12);
}

TEST(SegmentDistanceTest, ParallelSegments) {
  const Segment a(Point(0, 0), Point(10, 0));
  const Segment b(Point(0, 3), Point(10, 3));
  EXPECT_NEAR(SegmentToSegmentDistance(a, b), 3.0, 1e-12);
}

TEST(SegmentDistanceTest, CollinearDisjointSegments) {
  const Segment a(Point(0, 0), Point(10, 0));
  const Segment b(Point(14, 0), Point(20, 0));
  EXPECT_NEAR(SegmentToSegmentDistance(a, b), 4.0, 1e-12);
}

TEST(SegmentDistanceTest, DegeneratePointSegments) {
  const Segment a(Point(0, 0), Point(0, 0));
  const Segment b(Point(3, 4), Point(3, 4));
  EXPECT_NEAR(SegmentToSegmentDistance(a, b), 5.0, 1e-12);
  const Segment c(Point(0, 0), Point(10, 0));
  EXPECT_NEAR(SegmentToSegmentDistance(a, c), 0.0, 1e-12);
  EXPECT_NEAR(SegmentToSegmentDistance(b, c), 4.0, 1e-12);
}

TEST(SegmentDistanceTest, SymmetricByConstruction) {
  common::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const Segment a(Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)),
                    Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)));
    const Segment b(Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)),
                    Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)));
    EXPECT_NEAR(SegmentToSegmentDistance(a, b), SegmentToSegmentDistance(b, a),
                1e-9);
  }
}

TEST(SegmentDistanceTest, MatchesDenseSamplingLowerEnvelope) {
  // Property: the analytic distance equals the minimum over a dense sampling of
  // both segments (up to sampling resolution).
  common::Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const Segment a(Point(rng.Uniform(-5, 5), rng.Uniform(-5, 5)),
                    Point(rng.Uniform(-5, 5), rng.Uniform(-5, 5)));
    const Segment b(Point(rng.Uniform(-5, 5), rng.Uniform(-5, 5)),
                    Point(rng.Uniform(-5, 5), rng.Uniform(-5, 5)));
    const double analytic = SegmentToSegmentDistance(a, b);
    double sampled = std::numeric_limits<double>::infinity();
    const int kSteps = 60;
    for (int i = 0; i <= kSteps; ++i) {
      const Point pa =
          a.start() + a.Direction() * (static_cast<double>(i) / kSteps);
      sampled =
          std::min(sampled, PointToSegmentDistance(pa, b.start(), b.end()));
    }
    for (int j = 0; j <= kSteps; ++j) {
      const Point pb =
          b.start() + b.Direction() * (static_cast<double>(j) / kSteps);
      sampled =
          std::min(sampled, PointToSegmentDistance(pb, a.start(), a.end()));
    }
    EXPECT_LE(analytic, sampled + 1e-9);
    EXPECT_GE(analytic, sampled - 0.25);  // Sampling is only approximate.
  }
}

TEST(BBoxTest, EmptyBoxBehaviour) {
  BBox b;
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.Contains(Point(0, 0)));
  BBox other;
  other.Extend(Point(1, 1));
  EXPECT_TRUE(std::isinf(b.MinDist(other)));
}

TEST(BBoxTest, ExtendAndContains) {
  BBox b;
  b.Extend(Point(0, 0));
  b.Extend(Point(10, 5));
  EXPECT_TRUE(b.Contains(Point(5, 2)));
  EXPECT_TRUE(b.Contains(Point(0, 0)));
  EXPECT_TRUE(b.Contains(Point(10, 5)));
  EXPECT_FALSE(b.Contains(Point(10.01, 5)));
  EXPECT_DOUBLE_EQ(b.Extent(0), 10.0);
  EXPECT_DOUBLE_EQ(b.Extent(1), 5.0);
}

TEST(BBoxTest, ExtendWithSegmentAndBox) {
  BBox b;
  b.Extend(Segment(Point(1, 2), Point(3, -1)));
  EXPECT_DOUBLE_EQ(b.lo(1), -1.0);
  EXPECT_DOUBLE_EQ(b.hi(0), 3.0);
  BBox c;
  c.Extend(Point(10, 10));
  b.Extend(c);
  EXPECT_DOUBLE_EQ(b.hi(0), 10.0);
}

TEST(BBoxTest, MinDistDisjointAndOverlapping) {
  BBox a;
  a.Extend(Point(0, 0));
  a.Extend(Point(1, 1));
  BBox b;
  b.Extend(Point(4, 5));
  b.Extend(Point(6, 7));
  EXPECT_DOUBLE_EQ(a.MinDist(b), 5.0);  // dx=3, dy=4.
  BBox c;
  c.Extend(Point(0.5, 0.5));
  c.Extend(Point(2, 2));
  EXPECT_DOUBLE_EQ(a.MinDist(c), 0.0);
}

TEST(BBoxTest, MinDistLowerBoundsGeometryDistance) {
  // Property: MBR mindist never exceeds the true segment distance.
  common::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const Segment a(Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)),
                    Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)));
    const Segment b(Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)),
                    Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)));
    BBox ba;
    ba.Extend(a);
    BBox bb;
    bb.Extend(b);
    EXPECT_LE(ba.MinDist(bb), SegmentToSegmentDistance(a, b) + 1e-9);
  }
}

TEST(BBox3DTest, ThreeDimensionalMinDist) {
  BBox a;
  a.Extend(Point(0, 0, 0));
  a.Extend(Point(1, 1, 1));
  BBox b;
  b.Extend(Point(1, 1, 4));
  b.Extend(Point(2, 2, 5));
  EXPECT_DOUBLE_EQ(a.MinDist(b), 3.0);
}

}  // namespace
}  // namespace traclus::geom
