// Tests for representative trajectory generation (§4.3, Fig. 13-15) and the
// average direction vector (Definition 11).

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/representative.h"
#include "common/rng.h"

namespace traclus::cluster {
namespace {

using geom::Point;
using geom::Segment;

// Builds a cluster over all of `segs`.
Cluster AllOf(const std::vector<Segment>& segs) {
  Cluster c;
  c.id = 0;
  for (size_t i = 0; i < segs.size(); ++i) c.member_indices.push_back(i);
  return c;
}

RepresentativeOptions Options(double min_lns, double gamma = 0.0,
                              RepresentativeMethod method =
                                  RepresentativeMethod::kProjection) {
  RepresentativeOptions opt;
  opt.min_lns = min_lns;
  opt.gamma = gamma;
  opt.method = method;
  return opt;
}

TEST(AverageDirectionVectorTest, ParallelSegmentsAverageToSharedDirection) {
  std::vector<Segment> segs = {
      Segment(Point(0, 0), Point(10, 0)),
      Segment(Point(0, 1), Point(10, 1)),
      Segment(Point(0, 2), Point(10, 2)),
  };
  const Point v = AverageDirectionVector(segs, AllOf(segs));
  EXPECT_DOUBLE_EQ(v.x(), 10.0);
  EXPECT_DOUBLE_EQ(v.y(), 0.0);
}

TEST(AverageDirectionVectorTest, LongerSegmentsContributeMore) {
  // Definition 11 sums full vectors, not unit vectors.
  std::vector<Segment> segs = {
      Segment(Point(0, 0), Point(100, 0)),  // Long, east.
      Segment(Point(0, 0), Point(0, 1)),    // Short, north.
  };
  const Point v = AverageDirectionVector(segs, AllOf(segs));
  EXPECT_GT(v.x(), 10 * v.y());
}

TEST(AverageDirectionVectorTest, OpposingSegmentsFallBackToLongest) {
  std::vector<Segment> segs = {
      Segment(Point(0, 0), Point(10, 0)),
      Segment(Point(10, 1), Point(0, 1)),  // Exactly opposite.
  };
  const Point v = AverageDirectionVector(segs, AllOf(segs));
  EXPECT_GT(v.Norm(), 0.0);  // Fallback produced a usable axis.
}

TEST(RepresentativeTest, ParallelBundleYieldsCenterline) {
  // Three identical-span parallel segments at y = 0, 1, 2: the representative
  // must run along y = 1 across the full span.
  std::vector<Segment> segs = {
      Segment(Point(0, 0), Point(10, 0)),
      Segment(Point(0, 1), Point(10, 1)),
      Segment(Point(0, 2), Point(10, 2)),
  };
  const auto rep = RepresentativeTrajectory(segs, AllOf(segs), Options(3));
  ASSERT_GE(rep.size(), 2u);
  for (const auto& p : rep.points()) {
    EXPECT_NEAR(p.y(), 1.0, 1e-9);
  }
  EXPECT_NEAR(rep.points().front().x(), 0.0, 1e-9);
  EXPECT_NEAR(rep.points().back().x(), 10.0, 1e-9);
}

TEST(RepresentativeTest, SweepSkipsPositionsBelowMinLns) {
  // Staggered spans: only [4, 6] is covered by all three segments.
  std::vector<Segment> segs = {
      Segment(Point(0, 0), Point(6, 0)),
      Segment(Point(4, 1), Point(10, 1)),
      Segment(Point(4, 2), Point(6, 2)),
  };
  const auto rep = RepresentativeTrajectory(segs, AllOf(segs), Options(3));
  ASSERT_GE(rep.size(), 2u);
  for (const auto& p : rep.points()) {
    EXPECT_GE(p.x(), 4.0 - 1e-9);
    EXPECT_LE(p.x(), 6.0 + 1e-9);
  }
}

TEST(RepresentativeTest, EmptyWhenNoPositionReachesMinLns) {
  std::vector<Segment> segs = {
      Segment(Point(0, 0), Point(4, 0)),
      Segment(Point(6, 1), Point(10, 1)),  // Disjoint spans.
  };
  const auto rep = RepresentativeTrajectory(segs, AllOf(segs), Options(2));
  EXPECT_TRUE(rep.empty());
}

TEST(RepresentativeTest, GammaSmoothingThinsPoints) {
  std::vector<Segment> segs;
  // Twelve parallel segments with slightly staggered spans → many sweep stops.
  for (int i = 0; i < 12; ++i) {
    segs.emplace_back(Point(0.1 * i, 0.1 * i), Point(10 + 0.1 * i, 0.1 * i));
  }
  const auto dense =
      RepresentativeTrajectory(segs, AllOf(segs), Options(3, 0.0));
  const auto sparse =
      RepresentativeTrajectory(segs, AllOf(segs), Options(3, 2.0));
  EXPECT_GT(dense.size(), sparse.size());
  ASSERT_GE(sparse.size(), 2u);
  // Consecutive sweep gaps must respect γ.
  for (size_t i = 1; i < sparse.size(); ++i) {
    EXPECT_GE(geom::Distance(sparse[i - 1], sparse[i]), 2.0 - 1e-6);
  }
}

TEST(RepresentativeTest, RotationAndProjectionMethodsAgreeIn2D) {
  common::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    // A coherent bundle at a random orientation.
    const double angle = rng.Uniform(0, 2 * M_PI);
    const Point dir(std::cos(angle), std::sin(angle));
    const Point normal(-dir.y(), dir.x());
    std::vector<Segment> segs;
    for (int i = 0; i < 6; ++i) {
      const Point base = normal * (0.5 * i) + dir * rng.Uniform(-1.0, 0.0);
      segs.emplace_back(base, base + dir * rng.Uniform(8.0, 12.0));
    }
    const auto c = AllOf(segs);
    const auto rot = RepresentativeTrajectory(
        segs, c, Options(3, 0.0, RepresentativeMethod::kRotation2D));
    const auto proj = RepresentativeTrajectory(
        segs, c, Options(3, 0.0, RepresentativeMethod::kProjection));
    ASSERT_EQ(rot.size(), proj.size());
    for (size_t i = 0; i < rot.size(); ++i) {
      EXPECT_NEAR(rot[i].x(), proj[i].x(), 1e-9);
      EXPECT_NEAR(rot[i].y(), proj[i].y(), 1e-9);
    }
  }
}

TEST(RepresentativeTest, RepresentativeFollowsCurvedClusterTrend) {
  // Segments along a gentle arc: representative points should stay within the
  // band the member segments occupy.
  std::vector<Segment> segs;
  common::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const double x0 = i * 2.0;
    const double y0 = 0.05 * x0 * x0 + rng.Uniform(-0.3, 0.3);
    const double x1 = x0 + 4.0;
    const double y1 = 0.05 * x1 * x1 + rng.Uniform(-0.3, 0.3);
    segs.emplace_back(Point(x0, y0), Point(x1, y1));
  }
  const auto rep = RepresentativeTrajectory(segs, AllOf(segs), Options(3));
  ASSERT_GE(rep.size(), 2u);
  for (const auto& p : rep.points()) {
    const double expected = 0.05 * p.x() * p.x();
    EXPECT_NEAR(p.y(), expected, 3.0);
  }
}

TEST(RepresentativeTest, WeightedSweepCountsUseWeights) {
  std::vector<Segment> segs = {
      Segment(Point(0, 0), Point(10, 0), 0, 0, /*weight=*/3.0),
      Segment(Point(0, 1), Point(10, 1), 1, 1, /*weight=*/3.0),
  };
  RepresentativeOptions opt = Options(5);  // Count 2 < 5, weight 6 ≥ 5.
  const auto unweighted = RepresentativeTrajectory(segs, AllOf(segs), opt);
  EXPECT_TRUE(unweighted.empty());
  opt.use_weights = true;
  const auto weighted = RepresentativeTrajectory(segs, AllOf(segs), opt);
  EXPECT_GE(weighted.size(), 2u);
}

TEST(RepresentativeTest, SingleMemberClusterBehaves) {
  std::vector<Segment> segs = {Segment(Point(0, 0), Point(10, 5))};
  const auto rep = RepresentativeTrajectory(segs, AllOf(segs), Options(1));
  ASSERT_EQ(rep.size(), 2u);
  EXPECT_NEAR(rep[0].x(), 0.0, 1e-9);
  EXPECT_NEAR(rep[1].y(), 5.0, 1e-9);
}

TEST(RepresentativeTest, ReversedMembersStillProduceForwardSweep) {
  // Mixed orientations within a coherent flow (a few reversed segments) must
  // not break the sweep; the average direction still dominates.
  std::vector<Segment> segs = {
      Segment(Point(0, 0), Point(10, 0)),
      Segment(Point(0, 1), Point(10, 1)),
      Segment(Point(0, 2), Point(10, 2)),
      Segment(Point(10, 3), Point(0, 3)),  // Reversed.
  };
  const auto rep = RepresentativeTrajectory(segs, AllOf(segs), Options(3));
  ASSERT_GE(rep.size(), 2u);
  EXPECT_LT(rep.points().front().x(), rep.points().back().x());
}

}  // namespace
}  // namespace traclus::cluster
