// Tests for the TRACLUS line-segment distance function (§2.3, Definitions 1-3)
// and the naive endpoint baselines (Appendix A).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "distance/endpoint_distance.h"
#include "distance/segment_distance.h"

namespace traclus::distance {
namespace {

using geom::Point;
using geom::Segment;

// Worked example used throughout: Li horizontal (0,0)→(10,0), Lj = (2,2)→(5,4).
//   l⊥1 = 2, l⊥2 = 4            ⇒ d⊥ = (4 + 16) / (2 + 4) = 10/3
//   ps = (2,0) ⇒ l∥1 = 2; pe = (5,0) ⇒ l∥2 = 5 ⇒ d∥ = 2
//   sinθ = 2/√13, ‖Lj‖ = √13    ⇒ dθ = 2
class WorkedExampleTest : public ::testing::Test {
 protected:
  const Segment li_{Point(0, 0), Point(10, 0)};
  const Segment lj_{Point(2, 2), Point(5, 4)};
  const SegmentDistance dist_{};
};

TEST_F(WorkedExampleTest, PerpendicularIsLehmerMeanOfOrder2) {
  EXPECT_NEAR(dist_.Perpendicular(li_, lj_), 10.0 / 3.0, 1e-12);
}

TEST_F(WorkedExampleTest, ParallelIsMinOfProjectionGaps) {
  EXPECT_NEAR(dist_.Parallel(li_, lj_), 2.0, 1e-12);
}

TEST_F(WorkedExampleTest, AngleIsShorterLengthTimesSine) {
  EXPECT_NEAR(dist_.Angle(li_, lj_), 2.0, 1e-12);
}

TEST_F(WorkedExampleTest, TotalIsWeightedSum) {
  EXPECT_NEAR(dist_(li_, lj_), 10.0 / 3.0 + 2.0 + 2.0, 1e-12);
}

TEST_F(WorkedExampleTest, ComponentsBundleMatchesIndividualCalls) {
  const DistanceComponents c = dist_.Components(li_, lj_);
  EXPECT_DOUBLE_EQ(c.perpendicular, dist_.Perpendicular(li_, lj_));
  EXPECT_DOUBLE_EQ(c.parallel, dist_.Parallel(li_, lj_));
  EXPECT_DOUBLE_EQ(c.angle, dist_.Angle(li_, lj_));
}

TEST_F(WorkedExampleTest, CustomWeightsScaleComponents) {
  SegmentDistanceConfig cfg;
  cfg.w_perpendicular = 2.0;
  cfg.w_parallel = 0.5;
  cfg.w_angle = 3.0;
  const SegmentDistance weighted(cfg);
  EXPECT_NEAR(weighted(li_, lj_), 2.0 * 10.0 / 3.0 + 0.5 * 2.0 + 3.0 * 2.0,
              1e-12);
}

TEST(SegmentDistanceTest, IdenticalSegmentsHaveZeroDistance) {
  const Segment s(Point(3, 4), Point(8, 1));
  const SegmentDistance dist;
  EXPECT_DOUBLE_EQ(dist(s, s), 0.0);
}

TEST(SegmentDistanceTest, EnclosedParallelSegmentUsesNearestEndpointGap) {
  // Lj strictly inside Li's span, offset by 1 vertically.
  const Segment li(Point(0, 0), Point(100, 0));
  const Segment lj(Point(40, 1), Point(60, 1));
  const SegmentDistance dist;
  EXPECT_NEAR(dist.Perpendicular(li, lj), 1.0, 1e-12);
  // ps=(40,0): min(40,60)=40; pe=(60,0): min(60,40)=40 ⇒ d∥ = 40.
  EXPECT_NEAR(dist.Parallel(li, lj), 40.0, 1e-12);
  EXPECT_NEAR(dist.Angle(li, lj), 0.0, 1e-12);
}

TEST(SegmentDistanceTest, AdjacentSegmentsOfATrajectoryHaveZeroParallel) {
  // §4.1.1: "the parallel distance between two adjacent line segments in a
  // trajectory is always zero" — they share an endpoint, so one projection gap
  // is zero.
  const Segment a(Point(0, 0), Point(10, 0));
  const Segment b(Point(10, 0), Point(15, 7));
  const SegmentDistance dist;
  EXPECT_DOUBLE_EQ(dist.Parallel(a, b), 0.0);
}

TEST(SegmentDistanceTest, DirectedAngleUsesFullLengthBeyond90Degrees) {
  const Segment li(Point(0, 0), Point(10, 0));
  const Segment opposite(Point(5, 1), Point(1, 1));  // θ = 180°.
  const SegmentDistance dist;
  EXPECT_DOUBLE_EQ(dist.Angle(li, opposite), 4.0);  // ‖Lj‖.

  const Segment backward_diag(Point(5, 1), Point(2, 4));  // θ = 135°.
  EXPECT_DOUBLE_EQ(dist.Angle(li, backward_diag), backward_diag.Length());
}

TEST(SegmentDistanceTest, UndirectedAngleFoldsBeyond90Degrees) {
  SegmentDistanceConfig cfg;
  cfg.directed = false;
  const SegmentDistance dist(cfg);
  const Segment li(Point(0, 0), Point(10, 0));
  const Segment opposite(Point(5, 1), Point(1, 1));  // θ = 180° folds to 0°.
  EXPECT_NEAR(dist.Angle(li, opposite), 0.0, 1e-12);

  const Segment backward_diag(Point(5, 1), Point(2, 4));  // 135° folds to 45°.
  EXPECT_NEAR(dist.Angle(li, backward_diag),
              backward_diag.Length() * std::sin(M_PI / 4), 1e-12);
}

TEST(SegmentDistanceTest, PointLikeSegmentHasZeroAngle) {
  // §4.1.3: a very short segment has no directional strength; the limit case
  // (zero length) must contribute zero angle distance, not NaN.
  const Segment li(Point(0, 0), Point(10, 0));
  const Segment pt(Point(5, 3), Point(5, 3));
  const SegmentDistance dist;
  EXPECT_DOUBLE_EQ(dist.Angle(li, pt), 0.0);
  EXPECT_TRUE(std::isfinite(dist(li, pt)));
}

TEST(SegmentDistanceTest, ShortSegmentShrinksAngleDistanceFig11) {
  // Fig. 11: with L1 and L3 at a fixed mutual angle, a very short connector L2
  // yields small dθ to both, while a long L2 yields large dθ — the
  // over-clustering hazard the partition-suppression heuristic addresses.
  const Segment l1(Point(0, 0), Point(10, 0));
  const Segment short_l2(Point(11, 0.5), Point(11.5, 1.0));
  const Segment long_l2(Point(11, 0.5), Point(16, 5.5));
  const SegmentDistance dist;
  EXPECT_LT(dist.Angle(l1, short_l2), 0.51);
  EXPECT_GT(dist.Angle(l1, long_l2), 4.9);
}

// --- Symmetry (Lemma 2) as a parameterized property over random pairs. ---

class SymmetryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SymmetryPropertyTest, DistanceIsSymmetric) {
  common::Rng rng(GetParam());
  const SegmentDistance dist;
  SegmentDistanceConfig undirected_cfg;
  undirected_cfg.directed = false;
  const SegmentDistance undirected(undirected_cfg);
  for (int i = 0; i < 100; ++i) {
    Segment a(Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              /*id=*/2 * i, /*trajectory_id=*/0);
    Segment b(Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              /*id=*/2 * i + 1, /*trajectory_id=*/1);
    EXPECT_DOUBLE_EQ(dist(a, b), dist(b, a)) << a.ToString() << " / "
                                             << b.ToString();
    EXPECT_DOUBLE_EQ(undirected(a, b), undirected(b, a));
  }
}

TEST_P(SymmetryPropertyTest, EqualLengthTieBreakIsStillSymmetric) {
  // Equal-length pairs exercise the id / lexicographic tie-breaks.
  common::Rng rng(GetParam() + 1000);
  const SegmentDistance dist;
  for (int i = 0; i < 100; ++i) {
    const Point s1(rng.Uniform(-10, 10), rng.Uniform(-10, 10));
    const Point s2(rng.Uniform(-10, 10), rng.Uniform(-10, 10));
    const double angle1 = rng.Uniform(0, 2 * M_PI);
    const double angle2 = rng.Uniform(0, 2 * M_PI);
    const double len = rng.Uniform(0.5, 10.0);
    Segment a(s1, s1 + Point(std::cos(angle1), std::sin(angle1)) * len);
    Segment b(s2, s2 + Point(std::cos(angle2), std::sin(angle2)) * len);
    EXPECT_DOUBLE_EQ(dist(a, b), dist(b, a));
  }
}

TEST_P(SymmetryPropertyTest, ComponentsAreNonNegativeAndFinite) {
  common::Rng rng(GetParam() + 2000);
  const SegmentDistance dist;
  for (int i = 0; i < 100; ++i) {
    Segment a(Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)));
    Segment b(Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)));
    const DistanceComponents c = dist.Components(a, b);
    EXPECT_GE(c.perpendicular, 0.0);
    EXPECT_GE(c.parallel, 0.0);
    EXPECT_GE(c.angle, 0.0);
    EXPECT_TRUE(std::isfinite(c.perpendicular));
    EXPECT_TRUE(std::isfinite(c.parallel));
    EXPECT_TRUE(std::isfinite(c.angle));
  }
}

TEST_P(SymmetryPropertyTest, LowerBoundHoldsForRandomWeights) {
  // DESIGN.md §4.1: dist ≥ min(w⊥/2, w∥) · EuclideanSegmentDistance — the
  // inequality that makes exact grid-index pruning possible.
  common::Rng rng(GetParam() + 3000);
  for (int i = 0; i < 100; ++i) {
    SegmentDistanceConfig cfg;
    cfg.w_perpendicular = rng.Uniform(0.1, 3.0);
    cfg.w_parallel = rng.Uniform(0.1, 3.0);
    cfg.w_angle = rng.Uniform(0.0, 3.0);
    cfg.directed = rng.Bernoulli(0.5);
    const SegmentDistance dist(cfg);
    Segment a(Point(rng.Uniform(-30, 30), rng.Uniform(-30, 30)),
              Point(rng.Uniform(-30, 30), rng.Uniform(-30, 30)));
    Segment b(Point(rng.Uniform(-30, 30), rng.Uniform(-30, 30)),
              Point(rng.Uniform(-30, 30), rng.Uniform(-30, 30)));
    const double lower =
        dist.LowerBoundFactor() * geom::SegmentToSegmentDistance(a, b);
    EXPECT_GE(dist(a, b), lower - 1e-9)
        << a.ToString() << " / " << b.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetryPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(SegmentDistanceTest, TriangleInequalityCanFail) {
  // §4.2: the distance is not a metric. Collinear chain: L2 touches both L1 and
  // L3 (distance 0 each) while L1 and L3 are 10 apart.
  const SegmentDistance dist;
  const Segment l1(Point(0, 0), Point(10, 0));
  const Segment l2(Point(10, 0), Point(20, 0));
  const Segment l3(Point(20, 0), Point(30, 0));
  EXPECT_DOUBLE_EQ(dist(l1, l2), 0.0);
  EXPECT_DOUBLE_EQ(dist(l2, l3), 0.0);
  EXPECT_GT(dist(l1, l3), dist(l1, l2) + dist(l2, l3));
}

TEST(SegmentDistanceTest, ThreeDimensionalSegmentsSupported) {
  const SegmentDistance dist;
  const Segment a(Point(0, 0, 0), Point(10, 0, 0));
  const Segment b(Point(2, 3, 4), Point(7, 3, 4));
  const DistanceComponents c = dist.Components(a, b);
  EXPECT_NEAR(c.perpendicular, 5.0, 1e-12);  // Both offsets are √(9+16) = 5.
  EXPECT_NEAR(c.angle, 0.0, 1e-12);
  EXPECT_NEAR(c.parallel, 2.0, 1e-12);  // ps=(2,0,0) → min(2, 8) = 2.
}

TEST(SegmentDistanceTest, TranslationInvariance) {
  common::Rng rng(77);
  const SegmentDistance dist;
  for (int i = 0; i < 50; ++i) {
    const Point shift(rng.Uniform(-1000, 1000), rng.Uniform(-1000, 1000));
    Segment a(Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)),
              Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)));
    Segment b(Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)),
              Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)));
    Segment a2(a.start() + shift, a.end() + shift);
    Segment b2(b.start() + shift, b.end() + shift);
    EXPECT_NEAR(dist(a, b), dist(a2, b2), 1e-7);
  }
}

// --- Appendix A baselines. ---

TEST(EndpointDistanceTest, AppendixAExampleNaiveMeasureCannotRank) {
  const Segment l1(Point(0, 0), Point(200, 0));
  const Segment l2(Point(100, 100), Point(300, 100));
  const Segment l3(Point(100, 100), Point(200, 200));
  // Both nearest-endpoint sums are exactly 200·√2 — the naive measure ties.
  const double expected = 200.0 * std::sqrt(2.0);
  EXPECT_NEAR(DirectedNearestEndpointSum(l1, l2), expected, 1e-9);
  EXPECT_NEAR(DirectedNearestEndpointSum(l1, l3), expected, 1e-9);
  // The TRACLUS distance ranks L2 (parallel) closer than L3 (45° rotated).
  const SegmentDistance dist;
  EXPECT_LT(dist(l1, l2), dist(l1, l3));
}

TEST(EndpointDistanceTest, CorrespondingSumIsOrientationInsensitive) {
  const Segment a(Point(0, 0), Point(10, 0));
  const Segment b(Point(10, 1), Point(0, 1));  // Reversed parallel.
  EXPECT_NEAR(EndpointSumDistance(a, b), 2.0, 1e-12);
}

TEST(EndpointDistanceTest, SymmetrizedNearestEndpointIsSymmetric) {
  common::Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    Segment a(Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)),
              Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)));
    Segment b(Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)),
              Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)));
    EXPECT_DOUBLE_EQ(NearestEndpointSumDistance(a, b),
                     NearestEndpointSumDistance(b, a));
  }
}

TEST(EndpointDistanceTest, IdenticalSegmentsAreZeroUnderAllMeasures) {
  const Segment s(Point(1, 2), Point(3, 4));
  EXPECT_DOUBLE_EQ(EndpointSumDistance(s, s), 0.0);
  EXPECT_DOUBLE_EQ(NearestEndpointSumDistance(s, s), 0.0);
}

}  // namespace
}  // namespace traclus::distance
